// kccc — the Kernel-C compiler, as a command-line tool.
//
// Mirrors the nvcc-at-run-time workflow from the shell:
//
//   kccc kernel.kc -D TILE_W=16 -D CT_SHIFT=1 --device VC2070 --dump-miniptx
//
// Prints per-kernel statistics (instructions, registers, shared memory,
// unrolled loops, occupancy for a chosen block size) and optionally the
// MiniPTX listing — the artifacts the dissertation's Appendices C/D show.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "kcc/cache_key.hpp"
#include "kcc/compiler.hpp"
#include "kcc/preprocess.hpp"
#include "kcc/serialize.hpp"
#include "support/serialize.hpp"
#include "support/status.hpp"
#include "support/str.hpp"
#include "vgpu/device.hpp"

namespace {

void Usage() {
  std::cout <<
      "usage: kccc <source.kc> [options]\n"
      "  -D NAME=VALUE     define a specialization constant (repeatable)\n"
      "  --device NAME     occupancy target: VC1060 (default) or VC2070\n"
      "  --block N         threads per block for the occupancy report (default 128)\n"
      "  --max-unroll N    full-unroll budget per loop (default 512)\n"
      "  --no-opt          disable the optimizer (-O0)\n"
      "  --no-unroll       disable loop unrolling only\n"
      "  --cache-dir DIR   persistent specialization cache: reuse a previously\n"
      "                    compiled artifact for this exact (source, -D, options,\n"
      "                    device) key, and store fresh compiles there\n"
      "  --dump-miniptx    print each kernel's MiniPTX listing\n"
      "  --dump-preprocessed  print the post-preprocessor source and exit\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kspec;
  if (argc < 2) {
    Usage();
    return 2;
  }

  std::string path;
  kcc::CompileOptions opts;
  std::string cache_dir;
  std::string device = "VC1060";
  unsigned block = 128;
  bool dump_miniptx = false;
  bool dump_preprocessed = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-D" && i + 1 < argc) {
      std::string def = argv[++i];
      std::size_t eq = def.find('=');
      if (eq == std::string::npos) {
        opts.defines[def] = "1";
      } else {
        opts.defines[def.substr(0, eq)] = def.substr(eq + 1);
      }
    } else if (arg.rfind("-D", 0) == 0 && arg.size() > 2) {
      std::string def = arg.substr(2);
      std::size_t eq = def.find('=');
      if (eq == std::string::npos) opts.defines[def] = "1";
      else opts.defines[def.substr(0, eq)] = def.substr(eq + 1);
    } else if (arg == "--device" && i + 1 < argc) {
      device = argv[++i];
    } else if (arg == "--block" && i + 1 < argc) {
      block = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (arg == "--max-unroll" && i + 1 < argc) {
      opts.max_unroll = std::stoi(argv[++i]);
    } else if (arg == "--no-opt") {
      opts.optimize = false;
    } else if (arg == "--no-unroll") {
      opts.enable_unroll = false;
    } else if (arg == "--dump-miniptx") {
      dump_miniptx = true;
    } else if (arg == "--dump-preprocessed") {
      dump_preprocessed = true;
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "kccc: unknown option " << arg << "\n";
      return 2;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "kccc: cannot open " << path << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string source = buf.str();

  try {
    if (dump_preprocessed) {
      std::cout << kcc::Preprocess(source, opts.defines);
      return 0;
    }
    vgpu::DeviceProfile dev = vgpu::ProfileByName(device);

    kcc::CompiledModule mod;
    bool disk_hit = false;
    std::string artifact;
    if (!cache_dir.empty()) {
      kcc::ModuleCacheKey key = kcc::ModuleCacheKey::Make(source, opts, dev.name);
      artifact = cache_dir + "/" + key.FileName();
      std::vector<std::uint8_t> bytes;
      if (ReadFileBytes(artifact, &bytes)) {
        try {
          std::string stored_key;
          kcc::CompiledModule cached = kcc::Deserialize(bytes, &stored_key);
          if (stored_key == key.CanonicalText()) {
            mod = std::move(cached);
            disk_hit = true;
          } else {
            std::cerr << "kccc: cache artifact " << artifact
                      << " belongs to a different key (hash collision); recompiling\n";
          }
        } catch (const SerializeError& e) {
          std::cerr << "kccc: discarding unreadable cache artifact " << artifact << " ("
                    << e.what() << "); recompiling\n";
        }
      }
      if (!disk_hit) {
        mod = kcc::CompileModule(source, opts);
        std::error_code ec;
        std::filesystem::create_directories(cache_dir, ec);
        std::vector<std::uint8_t> out = kcc::Serialize(mod, key.CanonicalText());
        if (ec || !WriteFileAtomic(artifact, out)) {
          std::cerr << "kccc: warning: could not store cache artifact " << artifact << "\n";
          artifact.clear();
        }
      }
    } else {
      mod = kcc::CompileModule(source, opts);
    }

    std::cout << "kccc: " << path << "  (" << kcc::DefinesToString(opts.defines) << ")\n";
    if (!cache_dir.empty()) {
      if (disk_hit) {
        std::cout << "cache: disk hit (" << artifact << ")\n";
      } else {
        std::cout << "cache: miss — compiled in " << Format("%.3f", mod.compile_millis)
                  << " ms" << (artifact.empty() ? "" : ", stored " + artifact) << "\n";
      }
    }
    if (mod.const_bytes) {
      std::cout << "constant segment: " << mod.const_bytes << " bytes in "
                << mod.constants.size() << " array(s)\n";
    }
    for (const auto& k : mod.kernels) {
      vgpu::Occupancy occ = vgpu::ComputeOccupancy(
          dev, vgpu::Dim3(block), static_cast<unsigned>(k.stats.reg_count),
          k.static_smem_bytes);
      std::cout << Format(
          "kernel %-24s instrs=%-5d regs=%-3d smem=%-5uB unrolled=%d folded=%d "
          "strength-reduced=%d\n",
          k.name.c_str(), k.stats.static_instrs, k.stats.reg_count, k.static_smem_bytes,
          k.stats.unrolled_loops, k.stats.folded_consts, k.stats.strength_reduced);
      std::cout << Format(
          "  occupancy on %s @ %u threads/block: %.0f%% (%u warps, %u blocks/SM, "
          "limited by %s)\n",
          dev.name.c_str(), block, occ.occupancy * 100.0, occ.active_warps, occ.blocks_per_sm,
          occ.limiter);
      if (dump_miniptx) std::cout << k.listing << "\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "kccc: " << e.what() << "\n";
    return 1;
  }
}
