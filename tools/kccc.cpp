// kccc — the Kernel-C compiler, as a command-line tool.
//
// Mirrors the nvcc-at-run-time workflow from the shell:
//
//   kccc kernel.kc -D TILE_W=16 -D CT_SHIFT=1 --device VC2070 --dump-miniptx
//
// Prints per-kernel statistics (instructions, registers, shared memory,
// unrolled loops, occupancy for a chosen block size) and optionally the
// MiniPTX listing — the artifacts the dissertation's Appendices C/D show.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "kcc/cache_key.hpp"
#include "kcc/compiler.hpp"
#include "kcc/preprocess.hpp"
#include "kcc/serialize.hpp"
#include "serve/compile_executor.hpp"
#include "support/serialize.hpp"
#include "support/status.hpp"
#include "support/str.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/device.hpp"

namespace {

void Usage() {
  std::cout <<
      "usage: kccc <source.kc> [options]\n"
      "  -D NAME=VALUE     define a specialization constant (repeatable)\n"
      "  --device NAME     occupancy target: VC1060 (default) or VC2070\n"
      "  --block N         threads per block for the occupancy report (default 128)\n"
      "  --max-unroll N    full-unroll budget per loop (default 512)\n"
      "  --no-opt          disable the optimizer (-O0)\n"
      "  --no-unroll       disable loop unrolling only\n"
      "  --cache-dir DIR   persistent specialization cache: reuse a previously\n"
      "                    compiled artifact for this exact (source, -D, options,\n"
      "                    device) key, and store fresh compiles there\n"
      "  --jobs N          batch mode: compile through the async specialization\n"
      "                    service with N worker threads (duplicate -D sets\n"
      "                    coalesce into one compile)\n"
      "  --batch FILE      one -D set per line (\"TILE_W=16 CT_SHIFT=1\"), layered\n"
      "                    on the common -D flags; '#' starts a comment. Implies\n"
      "                    batch mode. With --cache-dir this precompiles every\n"
      "                    set's artifact for later processes.\n"
      "  --dump-miniptx    print each kernel's MiniPTX listing\n"
      "  --dump-preprocessed  print the post-preprocessor source and exit\n";
}

void AddDefine(kspec::kcc::CompileOptions& opts, const std::string& def) {
  std::size_t eq = def.find('=');
  if (eq == std::string::npos) {
    opts.defines[def] = "1";
  } else {
    opts.defines[def.substr(0, eq)] = def.substr(eq + 1);
  }
}

// Batch mode: precompile every -D set through the CompileExecutor, sharing
// one Context (so its in-memory and disk cache tiers dedupe across sets).
int RunBatch(const std::string& source, const std::vector<kspec::kcc::CompileOptions>& sets,
             const kspec::vgpu::DeviceProfile& dev, const std::string& cache_dir, int jobs) {
  using namespace kspec;
  vcuda::Context ctx(dev);
  if (!cache_dir.empty()) ctx.set_cache_dir(cache_dir);

  serve::ExecutorOptions ex_opts;
  ex_opts.workers = jobs;
  ex_opts.max_queue = sets.size() + 16;
  serve::CompileExecutor executor(ex_opts);
  ctx.set_async_service(&executor);

  std::vector<vcuda::SubmitResult> results;
  results.reserve(sets.size());
  for (const auto& set : sets) {
    results.push_back(ctx.LoadModuleAsync(source, set));
  }

  int failures = 0;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    std::string defines = kcc::DefinesToString(sets[i].defines);
    if (defines.empty()) defines = "(no defines)";
    if (!results[i].ok()) {
      std::cout << Format("set %-3zu REJECTED  %s\n", i, defines.c_str());
      ++failures;
      continue;
    }
    try {
      auto mod = results[i].future.get();
      std::cout << Format("set %-3zu ok        %-48s kernels=%zu\n", i, defines.c_str(),
                          mod->compiled().kernels.size());
    } catch (const std::exception& e) {
      std::cout << Format("set %-3zu FAILED    %s: %s\n", i, defines.c_str(), e.what());
      ++failures;
    }
  }
  executor.Drain();
  std::cout << executor.stats().Render();
  vcuda::CacheStats cs = ctx.cache_stats();
  std::cout << Format("cache: %zu compiled, %zu warm hits, %zu disk hits\n", cs.misses, cs.hits,
                      cs.disk_hits);
  return failures ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kspec;
  if (argc < 2) {
    Usage();
    return 2;
  }

  std::string path;
  kcc::CompileOptions opts;
  std::string cache_dir;
  std::string device = "VC1060";
  unsigned block = 128;
  int jobs = 0;
  std::string batch_path;
  bool dump_miniptx = false;
  bool dump_preprocessed = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-D" && i + 1 < argc) {
      AddDefine(opts, argv[++i]);
    } else if (arg.rfind("-D", 0) == 0 && arg.size() > 2) {
      AddDefine(opts, arg.substr(2));
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::stoi(argv[++i]);
    } else if (arg == "--batch" && i + 1 < argc) {
      batch_path = argv[++i];
    } else if (arg == "--device" && i + 1 < argc) {
      device = argv[++i];
    } else if (arg == "--block" && i + 1 < argc) {
      block = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (arg == "--max-unroll" && i + 1 < argc) {
      opts.max_unroll = std::stoi(argv[++i]);
    } else if (arg == "--no-opt") {
      opts.optimize = false;
    } else if (arg == "--no-unroll") {
      opts.enable_unroll = false;
    } else if (arg == "--dump-miniptx") {
      dump_miniptx = true;
    } else if (arg == "--dump-preprocessed") {
      dump_preprocessed = true;
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "kccc: unknown option " << arg << "\n";
      return 2;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "kccc: cannot open " << path << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string source = buf.str();

  try {
    if (dump_preprocessed) {
      std::cout << kcc::Preprocess(source, opts.defines);
      return 0;
    }
    vgpu::DeviceProfile dev = vgpu::ProfileByName(device);

    if (jobs > 0 || !batch_path.empty()) {
      if (jobs <= 0) jobs = 2;
      std::vector<kcc::CompileOptions> sets;
      if (batch_path.empty()) {
        sets.push_back(opts);
      } else {
        std::ifstream bf(batch_path);
        if (!bf) {
          std::cerr << "kccc: cannot open batch file " << batch_path << "\n";
          return 1;
        }
        std::string line;
        while (std::getline(bf, line)) {
          if (std::size_t hash = line.find('#'); hash != std::string::npos) {
            line.erase(hash);
          }
          kcc::CompileOptions set = opts;
          std::istringstream tokens(line);
          std::string tok;
          bool any = false;
          while (tokens >> tok) {
            AddDefine(set, tok);
            any = true;
          }
          if (any) sets.push_back(std::move(set));
        }
        if (sets.empty()) {
          std::cerr << "kccc: batch file " << batch_path << " contains no -D sets\n";
          return 1;
        }
      }
      std::cout << "kccc: " << path << " — batch of " << sets.size() << " set(s), " << jobs
                << " worker(s)" << (cache_dir.empty() ? "" : ", cache-dir " + cache_dir) << "\n";
      return RunBatch(source, sets, dev, cache_dir, jobs);
    }

    kcc::CompiledModule mod;
    bool disk_hit = false;
    std::string artifact;
    if (!cache_dir.empty()) {
      kcc::ModuleCacheKey key = kcc::ModuleCacheKey::Make(source, opts, dev.name);
      artifact = cache_dir + "/" + key.FileName();
      std::vector<std::uint8_t> bytes;
      if (ReadFileBytes(artifact, &bytes)) {
        try {
          std::string stored_key;
          kcc::CompiledModule cached = kcc::Deserialize(bytes, &stored_key);
          if (stored_key == key.CanonicalText()) {
            mod = std::move(cached);
            disk_hit = true;
          } else {
            std::cerr << "kccc: cache artifact " << artifact
                      << " belongs to a different key (hash collision); recompiling\n";
          }
        } catch (const SerializeError& e) {
          std::cerr << "kccc: discarding unreadable cache artifact " << artifact << " ("
                    << e.what() << "); recompiling\n";
        }
      }
      if (!disk_hit) {
        mod = kcc::CompileModule(source, opts);
        std::error_code ec;
        std::filesystem::create_directories(cache_dir, ec);
        std::vector<std::uint8_t> out = kcc::Serialize(mod, key.CanonicalText());
        if (ec || !WriteFileAtomic(artifact, out)) {
          std::cerr << "kccc: warning: could not store cache artifact " << artifact << "\n";
          artifact.clear();
        }
      }
    } else {
      mod = kcc::CompileModule(source, opts);
    }

    std::cout << "kccc: " << path << "  (" << kcc::DefinesToString(opts.defines) << ")\n";
    if (!cache_dir.empty()) {
      if (disk_hit) {
        std::cout << "cache: disk hit (" << artifact << ")\n";
      } else {
        std::cout << "cache: miss — compiled in " << Format("%.3f", mod.compile_millis)
                  << " ms" << (artifact.empty() ? "" : ", stored " + artifact) << "\n";
      }
    }
    if (mod.const_bytes) {
      std::cout << "constant segment: " << mod.const_bytes << " bytes in "
                << mod.constants.size() << " array(s)\n";
    }
    for (const auto& k : mod.kernels) {
      vgpu::Occupancy occ = vgpu::ComputeOccupancy(
          dev, vgpu::Dim3(block), static_cast<unsigned>(k.stats.reg_count),
          k.static_smem_bytes);
      std::cout << Format(
          "kernel %-24s instrs=%-5d regs=%-3d smem=%-5uB unrolled=%d folded=%d "
          "strength-reduced=%d\n",
          k.name.c_str(), k.stats.static_instrs, k.stats.reg_count, k.static_smem_bytes,
          k.stats.unrolled_loops, k.stats.folded_consts, k.stats.strength_reduced);
      std::cout << Format(
          "  occupancy on %s @ %u threads/block: %.0f%% (%u warps, %u blocks/SM, "
          "limited by %s)\n",
          dev.name.c_str(), block, occ.occupancy * 100.0, occ.active_warps, occ.blocks_per_sm,
          occ.limiter);
      if (dump_miniptx) std::cout << k.listing << "\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "kccc: " << e.what() << "\n";
    return 1;
  }
}
