// kccc — the Kernel-C compiler, as a command-line tool.
//
// Mirrors the nvcc-at-run-time workflow from the shell:
//
//   kccc kernel.kc -D TILE_W=16 -D CT_SHIFT=1 --device VC2070 --dump-miniptx
//
// Prints per-kernel statistics (instructions, registers, shared memory,
// unrolled loops, occupancy for a chosen block size) and optionally the
// MiniPTX listing — the artifacts the dissertation's Appendices C/D show.
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <sstream>

#include "kcc/cache_key.hpp"
#include "kcc/compiler.hpp"
#include "kcc/preprocess.hpp"
#include "kcc/serialize.hpp"
#include "native/build.hpp"
#include "native/build_executor.hpp"
#include "native/engine.hpp"
#include "netd/artifact_store.hpp"
#include "netd/daemon.hpp"
#include "netd/protocol.hpp"
#include "netd/remote_service.hpp"
#include "serve/compile_executor.hpp"
#include "support/serialize.hpp"
#include "support/status.hpp"
#include "support/str.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/device.hpp"

namespace {

void Usage() {
  std::cout <<
      "usage: kccc <source.kc> [options]\n"
      "  -D NAME=VALUE     define a specialization constant (repeatable)\n"
      "  --device NAME     occupancy target: VC1060 (default) or VC2070\n"
      "  --block N         threads per block for the occupancy report (default 128)\n"
      "  --max-unroll N    full-unroll budget per loop (default 512)\n"
      "  --no-opt          disable the optimizer (-O0)\n"
      "  --no-unroll       disable loop unrolling only\n"
      "  --cache-dir DIR   persistent specialization cache: reuse a previously\n"
      "                    compiled artifact for this exact (source, -D, options,\n"
      "                    device) key, and store fresh compiles there\n"
      "  --jobs N          batch mode: compile through the async specialization\n"
      "                    service with N worker threads (duplicate -D sets\n"
      "                    coalesce into one compile)\n"
      "  --batch FILE      one -D set per line (\"TILE_W=16 CT_SHIFT=1\"), layered\n"
      "                    on the common -D flags; '#' starts a comment. Implies\n"
      "                    batch mode. With --cache-dir this precompiles every\n"
      "                    set's artifact for later processes.\n"
      "  --tier NAME       execution tier to prepare artifacts for: auto (default),\n"
      "                    interp, decoded, or native. With native, compiles also\n"
      "                    build the specialized shared object (.nso beside .kmod in\n"
      "                    --cache-dir / --store) so later launches start native;\n"
      "                    a 'native:' counter line is appended to the report\n"
      "  --dump-miniptx    print each kernel's MiniPTX listing\n"
      "  --dump-preprocessed  print the post-preprocessor source and exit\n"
      "\n"
      "specialization service (kspecd):\n"
      "  --daemon          run the specialization daemon (no source file needed);\n"
      "                    requires --socket and --store. Stops on --stop.\n"
      "  --socket PATH     daemon listening socket (AF_UNIX)\n"
      "  --store DIR       shared artifact store directory\n"
      "  --connect PATH    batch mode compiles through the daemon at PATH instead\n"
      "                    of locally; pair with --store for the no-RPC fast path\n"
      "  --tenant NAME     admission-control identity sent with --connect requests\n"
      "  --stats           print the daemon's stats JSON (with --connect) and exit\n"
      "  --stop            ask the daemon (via --connect) to shut down and exit\n";
}

void AddDefine(kspec::kcc::CompileOptions& opts, const std::string& def) {
  std::size_t eq = def.find('=');
  if (eq == std::string::npos) {
    opts.defines[def] = "1";
  } else {
    opts.defines[def.substr(0, eq)] = def.substr(eq + 1);
  }
}

// Connection settings for the specialization service modes.
struct NetOptions {
  std::string connect;  // daemon socket for client modes; empty = local
  std::string socket;   // daemon listening socket (--daemon)
  std::string store;    // shared artifact store directory
  std::string tenant;
};

// The native-tier counter line, shaped like the netd: line so batch reports
// stay one-glance parsable across service kinds.
void PrintNativeReport(const kspec::native::NativeEngine& engine) {
  const kspec::native::NativeEngineStats ns = engine.stats();
  // served= counts every native-tier launch; generic= vs shape= splits them
  // by which artifact ran (the shape-generic TU or a shape-specialized
  // variant). shape-builds= covers eager and background variant compiles.
  std::cout << kspec::Format(
      "native: builds-started=%llu completed=%llu failures=%llu served=%llu "
      "generic=%llu shape=%llu shape-builds=%llu "
      "fallbacks=%llu disk-hits=%llu store-hits=%llu\n",
      static_cast<unsigned long long>(ns.builds_started),
      static_cast<unsigned long long>(ns.builds_completed),
      static_cast<unsigned long long>(ns.build_failures),
      static_cast<unsigned long long>(ns.served_launches),
      static_cast<unsigned long long>(ns.served_launches - ns.shape_served_launches),
      static_cast<unsigned long long>(ns.shape_served_launches),
      static_cast<unsigned long long>(ns.shape_builds_completed),
      static_cast<unsigned long long>(ns.fallbacks),
      static_cast<unsigned long long>(ns.disk_hits),
      static_cast<unsigned long long>(ns.store_hits));
}

// Batch mode: precompile every -D set through the async service — the local
// CompileExecutor, or (with --connect/--store) the RemoteCompileService
// fetching from the daemon and the shared store — sharing one Context (so
// its in-memory and disk cache tiers dedupe across sets). With --tier native
// the flights also make each set's specialized shared object ready, so this
// is the fleet's native warm-up tool.
int RunBatch(const std::string& source, const std::vector<kspec::kcc::CompileOptions>& sets,
             const kspec::vgpu::DeviceProfile& dev, const std::string& cache_dir, int jobs,
             const NetOptions& net, kspec::vgpu::ExecutionTier tier) {
  using namespace kspec;
  vcuda::Context ctx(dev);
  if (!cache_dir.empty()) ctx.set_cache_dir(cache_dir);

  std::unique_ptr<netd::ArtifactStore> native_store;
  std::unique_ptr<native::NativeEngine> engine;
  if (tier == vgpu::ExecutionTier::kNative) {
    if (!native::ToolchainAvailable()) {
      std::cerr << "kccc: --tier native: no usable host C++ compiler; "
                   "building decoded artifacts only\n";
    } else {
      native::NativeEngine::Options nopts;
      nopts.cache_dir = cache_dir;
      if (!net.store.empty()) {
        native_store = std::make_unique<netd::ArtifactStore>(net.store);
        nopts.store = native_store.get();
      }
      engine = std::make_unique<native::NativeEngine>(nopts);
      ctx.set_native_service(engine.get());
    }
  }

  std::unique_ptr<serve::CompileExecutor> executor;
  netd::RemoteCompileService* remote = nullptr;
  if (!net.connect.empty() || !net.store.empty()) {
    netd::RemoteServiceOptions ro;
    ro.socket_path = net.connect;
    ro.store_dir = net.store;
    ro.tenant = net.tenant;
    ro.workers = jobs;
    ro.max_queue = sets.size() + 16;
    auto svc = std::make_unique<netd::RemoteCompileService>(ro);
    remote = svc.get();
    executor = std::move(svc);
  } else if (engine) {
    serve::ExecutorOptions ex_opts;
    ex_opts.workers = jobs;
    ex_opts.max_queue = sets.size() + 16;
    executor = std::make_unique<native::NativeBuildExecutor>(engine.get(), ex_opts);
  } else {
    serve::ExecutorOptions ex_opts;
    ex_opts.workers = jobs;
    ex_opts.max_queue = sets.size() + 16;
    executor = std::make_unique<serve::CompileExecutor>(ex_opts);
  }
  ctx.set_async_service(executor.get());

  std::vector<vcuda::SubmitResult> results;
  results.reserve(sets.size());
  for (const auto& set : sets) {
    results.push_back(ctx.LoadModuleAsync(source, set));
  }

  int failures = 0;
  std::vector<std::shared_ptr<vcuda::Module>> mods;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    std::string defines = kcc::DefinesToString(sets[i].defines);
    if (defines.empty()) defines = "(no defines)";
    if (!results[i].ok()) {
      std::cout << Format("set %-3zu REJECTED  %s\n", i, defines.c_str());
      ++failures;
      continue;
    }
    try {
      auto mod = results[i].future.get();
      std::cout << Format("set %-3zu ok        %-48s kernels=%zu\n", i, defines.c_str(),
                          mod->compiled().kernels.size());
      mods.push_back(std::move(mod));
    } catch (const std::exception& e) {
      std::cout << Format("set %-3zu FAILED    %s: %s\n", i, defines.c_str(), e.what());
      ++failures;
    }
  }
  executor->Drain();
  // Remote flights compile through the daemon, not NativeBuildExecutor —
  // promote their artifacts here instead.
  if (engine && remote != nullptr) {
    for (const auto& mod : mods) {
      if (mod->cache_key()) engine->EnsureReady(*mod->cache_key(), mod->compiled());
    }
  }
  std::cout << serve::RenderServiceReport(executor->stats(), ctx.cache_stats());
  if (remote != nullptr) {
    const netd::RemoteStats rs = remote->remote_stats();
    std::cout << Format("netd: store-hits=%llu rpc-fetches=%llu throttled=%llu errors=%llu "
                        "local-fallbacks=%llu\n",
                        static_cast<unsigned long long>(rs.store_hits),
                        static_cast<unsigned long long>(rs.rpc_fetches),
                        static_cast<unsigned long long>(rs.remote_throttled),
                        static_cast<unsigned long long>(rs.rpc_errors),
                        static_cast<unsigned long long>(rs.local_fallbacks));
  }
  if (engine) PrintNativeReport(*engine);
  ctx.set_async_service(nullptr);
  ctx.set_native_service(nullptr);
  return failures ? 1 : 0;
}

// --daemon: serve until a kShutdownReq (kccc --stop) arrives.
int RunDaemon(const NetOptions& net, int jobs) {
  using namespace kspec;
  if (net.socket.empty() || net.store.empty()) {
    std::cerr << "kccc: --daemon requires --socket and --store\n";
    return 2;
  }
  netd::DaemonOptions dopts;
  dopts.socket_path = net.socket;
  dopts.store_dir = net.store;
  if (jobs > 0) dopts.workers = jobs;
  netd::SpecDaemon daemon(dopts);
  daemon.Start();
  // Parsable readiness line: integration tests poll for it before connecting.
  std::cout << "kspecd: ready on " << net.socket << "\n" << std::flush;
  daemon.Wait();
  daemon.Stop();
  std::cout << daemon.StatsJson() << "\n";
  return 0;
}

// --stats / --stop against a running daemon.
int RunControl(const NetOptions& net, bool stop) {
  using namespace kspec;
  if (net.connect.empty()) {
    std::cerr << "kccc: " << (stop ? "--stop" : "--stats") << " requires --connect\n";
    return 2;
  }
  const int fd = netd::ConnectUnix(net.connect);
  if (fd < 0) {
    std::cerr << "kccc: cannot connect to " << net.connect << "\n";
    return 1;
  }
  netd::SetRecvTimeout(fd, std::chrono::milliseconds(10000));
  const netd::FrameType req = stop ? netd::FrameType::kShutdownReq : netd::FrameType::kStatsReq;
  netd::Frame resp;
  bool ok = netd::SendFrame(fd, req, std::span<const std::uint8_t>{}) &&
            netd::RecvFrame(fd, &resp) == netd::RecvStatus::kOk;
  if (ok && !stop && resp.type == netd::FrameType::kStatsResp) {
    std::cout << std::string(resp.payload.begin(), resp.payload.end()) << "\n";
  } else if (ok && stop && resp.type == netd::FrameType::kOkResp) {
    std::cout << "kspecd: shutdown acknowledged\n";
  } else if (ok) {
    std::cerr << "kccc: unexpected response frame\n";
    ok = false;
  } else {
    std::cerr << "kccc: daemon did not answer\n";
  }
  ::close(fd);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kspec;
  if (argc < 2) {
    Usage();
    return 2;
  }

  std::string path;
  kcc::CompileOptions opts;
  std::string cache_dir;
  std::string device = "VC1060";
  unsigned block = 128;
  int jobs = 0;
  std::string batch_path;
  bool dump_miniptx = false;
  bool dump_preprocessed = false;
  NetOptions net;
  vgpu::ExecutionTier tier = vgpu::ExecutionTier::kAuto;
  bool daemon_mode = false;
  bool stats_mode = false;
  bool stop_mode = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--daemon") {
      daemon_mode = true;
    } else if (arg == "--stats") {
      stats_mode = true;
    } else if (arg == "--stop") {
      stop_mode = true;
    } else if (arg == "--socket" && i + 1 < argc) {
      net.socket = argv[++i];
    } else if (arg == "--connect" && i + 1 < argc) {
      net.connect = argv[++i];
    } else if (arg == "--store" && i + 1 < argc) {
      net.store = argv[++i];
    } else if (arg == "--tenant" && i + 1 < argc) {
      net.tenant = argv[++i];
    } else if (arg == "-D" && i + 1 < argc) {
      AddDefine(opts, argv[++i]);
    } else if (arg.rfind("-D", 0) == 0 && arg.size() > 2) {
      AddDefine(opts, arg.substr(2));
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::stoi(argv[++i]);
    } else if (arg == "--batch" && i + 1 < argc) {
      batch_path = argv[++i];
    } else if (arg == "--device" && i + 1 < argc) {
      device = argv[++i];
    } else if (arg == "--block" && i + 1 < argc) {
      block = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (arg == "--tier" && i + 1 < argc) {
      if (!vgpu::ParseTier(argv[++i], &tier)) {
        std::cerr << "kccc: unknown tier " << argv[i]
                  << " (expected auto, interp, decoded, or native)\n";
        return 2;
      }
    } else if (arg == "--max-unroll" && i + 1 < argc) {
      opts.max_unroll = std::stoi(argv[++i]);
    } else if (arg == "--no-opt") {
      opts.optimize = false;
    } else if (arg == "--no-unroll") {
      opts.enable_unroll = false;
    } else if (arg == "--dump-miniptx") {
      dump_miniptx = true;
    } else if (arg == "--dump-preprocessed") {
      dump_preprocessed = true;
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "kccc: unknown option " << arg << "\n";
      return 2;
    }
  }
  try {
    if (daemon_mode) return RunDaemon(net, jobs);
    if (stats_mode || stop_mode) return RunControl(net, stop_mode);
  } catch (const Error& e) {
    std::cerr << "kccc: " << e.what() << "\n";
    return 1;
  }

  if (path.empty()) {
    Usage();
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "kccc: cannot open " << path << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string source = buf.str();

  try {
    if (dump_preprocessed) {
      std::cout << kcc::Preprocess(source, opts.defines);
      return 0;
    }
    vgpu::DeviceProfile dev = vgpu::ProfileByName(device);

    // --connect (or --store) routes compiles through the specialization
    // service, which lives behind the batch path.
    if (jobs > 0 || !batch_path.empty() || !net.connect.empty() || !net.store.empty()) {
      if (jobs <= 0) jobs = 2;
      std::vector<kcc::CompileOptions> sets;
      if (batch_path.empty()) {
        sets.push_back(opts);
      } else {
        std::ifstream bf(batch_path);
        if (!bf) {
          std::cerr << "kccc: cannot open batch file " << batch_path << "\n";
          return 1;
        }
        std::string line;
        while (std::getline(bf, line)) {
          if (std::size_t hash = line.find('#'); hash != std::string::npos) {
            line.erase(hash);
          }
          kcc::CompileOptions set = opts;
          std::istringstream tokens(line);
          std::string tok;
          bool any = false;
          while (tokens >> tok) {
            AddDefine(set, tok);
            any = true;
          }
          if (any) sets.push_back(std::move(set));
        }
        if (sets.empty()) {
          std::cerr << "kccc: batch file " << batch_path << " contains no -D sets\n";
          return 1;
        }
      }
      std::cout << "kccc: " << path << " — batch of " << sets.size() << " set(s), " << jobs
                << " worker(s)" << (cache_dir.empty() ? "" : ", cache-dir " + cache_dir)
                << (net.connect.empty() ? "" : ", via " + net.connect) << "\n";
      return RunBatch(source, sets, dev, cache_dir, jobs, net, tier);
    }

    kcc::CompiledModule mod;
    bool disk_hit = false;
    std::string artifact;
    if (!cache_dir.empty()) {
      kcc::ModuleCacheKey key = kcc::ModuleCacheKey::Make(source, opts, dev.name);
      artifact = cache_dir + "/" + key.FileName();
      std::vector<std::uint8_t> bytes;
      if (ReadFileBytes(artifact, &bytes)) {
        try {
          std::string stored_key;
          kcc::CompiledModule cached = kcc::Deserialize(bytes, &stored_key);
          if (stored_key == key.CanonicalText()) {
            mod = std::move(cached);
            disk_hit = true;
          } else {
            std::cerr << "kccc: cache artifact " << artifact
                      << " belongs to a different key (hash collision); recompiling\n";
          }
        } catch (const SerializeError& e) {
          std::cerr << "kccc: discarding unreadable cache artifact " << artifact << " ("
                    << e.what() << "); recompiling\n";
        }
      }
      if (!disk_hit) {
        mod = kcc::CompileModule(source, opts);
        std::error_code ec;
        std::filesystem::create_directories(cache_dir, ec);
        std::vector<std::uint8_t> out = kcc::Serialize(mod, key.CanonicalText());
        if (ec || !WriteFileAtomic(artifact, out)) {
          std::cerr << "kccc: warning: could not store cache artifact " << artifact << "\n";
          artifact.clear();
        }
      }
    } else {
      mod = kcc::CompileModule(source, opts);
    }

    std::cout << "kccc: " << path << "  (" << kcc::DefinesToString(opts.defines) << ")\n";
    if (!cache_dir.empty()) {
      if (disk_hit) {
        std::cout << "cache: disk hit (" << artifact << ")\n";
      } else {
        std::cout << "cache: miss — compiled in " << Format("%.3f", mod.compile_millis)
                  << " ms" << (artifact.empty() ? "" : ", stored " + artifact) << "\n";
      }
    }
    if (mod.const_bytes) {
      std::cout << "constant segment: " << mod.const_bytes << " bytes in "
                << mod.constants.size() << " array(s)\n";
    }
    for (const auto& k : mod.kernels) {
      vgpu::Occupancy occ = vgpu::ComputeOccupancy(
          dev, vgpu::Dim3(block), static_cast<unsigned>(k.stats.reg_count),
          k.static_smem_bytes);
      std::cout << Format(
          "kernel %-24s instrs=%-5d regs=%-3d smem=%-5uB unrolled=%d folded=%d "
          "strength-reduced=%d\n",
          k.name.c_str(), k.stats.static_instrs, k.stats.reg_count, k.static_smem_bytes,
          k.stats.unrolled_loops, k.stats.folded_consts, k.stats.strength_reduced);
      std::cout << Format(
          "  occupancy on %s @ %u threads/block: %.0f%% (%u warps, %u blocks/SM, "
          "limited by %s)\n",
          dev.name.c_str(), block, occ.occupancy * 100.0, occ.active_warps, occ.blocks_per_sm,
          occ.limiter);
      if (dump_miniptx) std::cout << k.listing << "\n";
    }
    // --tier native: also make this specialization's shared object ready, so
    // a later process pointed at the same --cache-dir launches native from
    // the first call. A warm .nso reports as a disk hit with zero builds.
    if (tier == vgpu::ExecutionTier::kNative) {
      if (!native::ToolchainAvailable()) {
        std::cerr << "kccc: --tier native: no usable host C++ compiler; "
                     "decoded artifact only\n";
      } else {
        native::NativeEngine::Options nopts;
        nopts.cache_dir = cache_dir;
        native::NativeEngine engine(nopts);
        const kcc::ModuleCacheKey key = kcc::ModuleCacheKey::Make(source, opts, dev.name);
        if (!engine.EnsureReady(key, mod)) {
          std::cerr << "kccc: native artifact build failed\n";
        }
        PrintNativeReport(engine);
      }
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "kccc: " << e.what() << "\n";
    return 1;
  }
}
