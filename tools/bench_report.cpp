// bench_report: aggregates the --json outputs of bench binaries into one
// report file, so a benchmark trajectory across configurations or commits
// lives in a single reviewable artifact.
//
// Usage: bench_report [-o out.json] [--append] session1.json [session2.json ...]
//
// Without -o the output name is derived from the first session's "bench"
// field — bench_fleet -> BENCH_fleet.json, bench_autotune -> BENCH_tune.json,
// anything else -> BENCH_interp.json — so each bench family lands in its own
// artifact by default.
//
// Each input is a bench Session file ({"bench": ..., "records": [...]}); the
// output wraps them in {"benches": [...]}. Inputs are embedded verbatim, so
// the tool stays schema-agnostic — any valid JSON object per input works.
// With --append, sessions already in the output file are kept and the new
// inputs are folded onto the end (e.g. growing BENCH_tune.json across PRs);
// a missing or empty output file appends onto nothing.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::string Trim(std::string s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.pop_back();
  }
  std::size_t i = 0;
  while (i < s.size() && (s[i] == '\n' || s[i] == ' ' || s[i] == '\t' || s[i] == '\r')) ++i;
  return s.substr(i);
}

// Splits an existing {"benches": [...]} report into its top-level session
// bodies (balanced-brace scan; the embedded sessions are objects). Returns
// false when the file does not look like a report.
bool ExistingSessions(const std::string& text, std::vector<std::string>* out) {
  const std::size_t open = text.find('[');
  const std::size_t close = text.rfind(']');
  if (open == std::string::npos || close == std::string::npos || close < open) return false;
  int depth = 0;
  bool in_string = false;
  std::size_t start = std::string::npos;
  for (std::size_t i = open + 1; i < close; ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') {
      if (depth++ == 0) start = i;
    } else if (c == '}') {
      if (--depth == 0 && start != std::string::npos) {
        out->push_back(text.substr(start, i - start + 1));
        start = std::string::npos;
      }
    }
  }
  return depth == 0 && !in_string;
}

// Pulls the "bench" field out of a session body (flat string scan; the field
// is written by bench::Session, first in the object). Empty when absent.
std::string BenchName(const std::string& body) {
  const std::string tag = "\"bench\"";
  std::size_t pos = body.find(tag);
  if (pos == std::string::npos) return "";
  pos = body.find('"', body.find(':', pos + tag.size()));
  if (pos == std::string::npos) return "";
  const std::size_t end = body.find('"', pos + 1);
  if (end == std::string::npos) return "";
  return body.substr(pos + 1, end - pos - 1);
}

// Default report path for a session family: each bench binary's sessions
// aggregate into their own BENCH_*.json artifact.
std::string DefaultOutPath(const std::string& bench) {
  if (bench == "bench_fleet") return "BENCH_fleet.json";
  if (bench == "bench_netd") return "BENCH_netd.json";
  if (bench == "bench_autotune") return "BENCH_tune.json";
  if (bench == "bench_native") return "BENCH_native.json";
  return "BENCH_interp.json";
}

// Light field scans over one record object ({"name": ..., "wall_ms": ...}).
// The records are machine-written by bench::Session, so a flat find is
// reliable; absent fields return the fallback.
std::string StringField(const std::string& body, const std::string& field,
                        const std::string& fallback = "") {
  const std::string tag = "\"" + field + "\"";
  std::size_t pos = body.find(tag);
  if (pos == std::string::npos) return fallback;
  pos = body.find('"', body.find(':', pos + tag.size()));
  if (pos == std::string::npos) return fallback;
  const std::size_t end = body.find('"', pos + 1);
  if (end == std::string::npos) return fallback;
  return body.substr(pos + 1, end - pos - 1);
}

std::string NumberField(const std::string& body, const std::string& field) {
  const std::string tag = "\"" + field + "\"";
  std::size_t pos = body.find(tag);
  if (pos == std::string::npos) return "";
  pos = body.find(':', pos + tag.size());
  if (pos == std::string::npos) return "";
  ++pos;
  while (pos < body.size() && body[pos] == ' ') ++pos;
  std::size_t end = pos;
  while (end < body.size() && body[end] != ',' && body[end] != '}') ++end;
  return body.substr(pos, end - pos);
}

// Prints one line per record of every session: bench, record name, the tier
// that served (when the bench reports one), wall milliseconds, and speedup.
void PrintSummary(const std::vector<std::string>& bodies) {
  std::printf("  %-16s %-24s %-8s %12s %9s\n", "bench", "record", "tier", "wall_ms",
              "speedup");
  for (const std::string& session : bodies) {
    const std::string bench = BenchName(session);
    std::vector<std::string> records;
    const std::size_t recs = session.find("\"records\"");
    if (recs == std::string::npos) continue;
    if (!ExistingSessions(session.substr(recs), &records)) continue;
    for (const std::string& r : records) {
      const std::string tier = StringField(r, "tier", "-");
      const std::string wall = NumberField(r, "wall_ms");
      const std::string speedup = NumberField(r, "speedup");
      std::printf("  %-16s %-24s %-8s %12s %9s\n", bench.c_str(),
                  StringField(r, "name").c_str(), tier.c_str(), wall.c_str(),
                  speedup.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool append = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--append") {
      append = true;
    } else if (a == "-h" || a == "--help") {
      std::cout << "usage: bench_report [-o out.json] [--append] session1.json "
                   "[session2.json ...]\n";
      return 0;
    } else {
      inputs.push_back(a);
    }
  }
  if (inputs.empty()) {
    std::cerr << "bench_report: no input files (see --help)\n";
    return 1;
  }

  std::vector<std::string> session_bodies;
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "bench_report: cannot read " << path << "\n";
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string body = Trim(ss.str());
    if (body.empty()) {
      std::cerr << "bench_report: " << path << " is empty\n";
      return 1;
    }
    session_bodies.push_back(std::move(body));
  }
  if (out_path.empty()) out_path = DefaultOutPath(BenchName(session_bodies.front()));

  std::vector<std::string> bodies;
  if (append) {
    std::ifstream in(out_path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      const std::string existing = Trim(ss.str());
      if (!existing.empty() && !ExistingSessions(existing, &bodies)) {
        std::cerr << "bench_report: " << out_path << " is not a bench report; not appending\n";
        return 1;
      }
    }
  }
  for (std::string& body : session_bodies) bodies.push_back(std::move(body));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_report: cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n\"benches\": [\n";
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    out << bodies[i] << (i + 1 < bodies.size() ? "," : "") << "\n";
  }
  out << "]\n}\n";
  std::cout << "bench_report: wrote " << out_path << " (" << bodies.size() << " sessions)\n";
  PrintSummary(bodies);
  return 0;
}
