// bench_report: aggregates the --json outputs of bench binaries into one
// report file (default BENCH_interp.json), so a benchmark trajectory across
// configurations or commits lives in a single reviewable artifact.
//
// Usage: bench_report [-o out.json] session1.json [session2.json ...]
//
// Each input is a bench Session file ({"bench": ..., "records": [...]}); the
// output wraps them in {"benches": [...]}. Inputs are embedded verbatim, so
// the tool stays schema-agnostic — any valid JSON object per input works.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  std::string out_path = "BENCH_interp.json";
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "-h" || a == "--help") {
      std::cout << "usage: bench_report [-o out.json] session1.json [session2.json ...]\n";
      return 0;
    } else {
      inputs.push_back(a);
    }
  }
  if (inputs.empty()) {
    std::cerr << "bench_report: no input files (see --help)\n";
    return 1;
  }

  std::vector<std::string> bodies;
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "bench_report: cannot read " << path << "\n";
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string body = ss.str();
    // Trim trailing whitespace so the embedded object composes cleanly.
    while (!body.empty() && (body.back() == '\n' || body.back() == ' ' || body.back() == '\t')) {
      body.pop_back();
    }
    if (body.empty()) {
      std::cerr << "bench_report: " << path << " is empty\n";
      return 1;
    }
    bodies.push_back(std::move(body));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_report: cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n\"benches\": [\n";
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    out << bodies[i] << (i + 1 < bodies.size() ? "," : "") << "\n";
  }
  out << "]\n}\n";
  std::cout << "bench_report: wrote " << out_path << " (" << bodies.size() << " sessions)\n";
  return 0;
}
