// Native-tier benchmark: wall-clock time of the decoded interpreter vs the
// specialized C++ shared objects the native backend emits, across a hot
// compute kernel and the four applications.
//
// Every native run is checked against the decoded-serial reference in-bench:
// application outputs must match byte-for-byte and LaunchStats must be
// bit-identical (the determinism contract of DESIGN.md section 8 extended to
// the native tier in section 12) — a speedup that breaks the statistics is a
// bug, not a result. Both sides run the serial block schedule so the column
// isolates the execution-engine difference, not host threading. The native
// artifacts are built once during warmup (through the content-addressed .nso
// cache) and the build cost is reported separately, never inside the timed
// region — the same amortization argument the dissertation makes for
// run-time kernel specialization itself.
#include <cstring>

#include "apps/backproj/gpu.hpp"
#include "apps/matching/gpu.hpp"
#include "apps/piv/gpu.hpp"
#include "apps/rowfilter/rowfilter.hpp"
#include "bench_common.hpp"
#include "native/build.hpp"
#include "native/engine.hpp"
#include "support/temp_dir.hpp"
#include "vgpu/interp.hpp"
#include "vgpu/tier.hpp"

namespace {

using namespace kspec;

struct AppRun {
  std::vector<unsigned char> output;
  vgpu::LaunchStats stats;
  double sim_millis = 0;
};

template <typename T>
std::vector<unsigned char> Bytes(const std::vector<T>& v) {
  std::vector<unsigned char> out(v.size() * sizeof(T));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

struct AppCase {
  std::string name;
  std::function<AppRun(native::NativeEngine*)> run;
};

// A compute-bound kernel: a long data-dependent loop with divergence. This is
// the shape specialization pays off most on — issue-bound code where the
// decoded tier's per-instruction dispatch is the bottleneck.
constexpr const char* kHotSource = R"(
__kernel void hot(float* out, int iters) {
  float x = (float)threadIdx.x * 0.001f + (float)blockIdx.x * 0.01f;
  float acc = 0.0f;
  for (int i = 0; i < iters; i++) {
    x = x * 1.0000001f + 0.5f;
    if (x > 100.0f) {
      x = x - 100.0f;
    }
    acc += x;
  }
  out[blockIdx.x * blockDim.x + threadIdx.x] = acc;
}
)";

// Context is pinned in place (it owns mutexes), so each case constructs its
// own and attaches the engine when the native tier is under test.
void Attach(vcuda::Context& ctx, native::NativeEngine* engine) {
  if (engine) ctx.set_native_service(engine);
}

std::vector<AppCase> Cases() {
  std::vector<AppCase> cases;

  cases.push_back({"hotloop", [](native::NativeEngine* engine) {
    vcuda::Context ctx(vgpu::TeslaC2070());
    Attach(ctx, engine);
    auto mod = ctx.LoadModule(kHotSource);
    const unsigned blocks = 64, threads = 128;
    const int iters = 12000;
    vcuda::DevPtr d_out = ctx.Malloc(std::uint64_t{blocks} * threads * sizeof(float));
    vcuda::ArgPack args;
    args.Ptr(d_out).Int(iters);
    AppRun out;
    out.stats = ctx.Launch(*mod, "hot", vgpu::Dim3(blocks), vgpu::Dim3(threads), args);
    out.output = Bytes(vcuda::Download<float>(ctx, d_out, std::size_t{blocks} * threads));
    out.sim_millis = out.stats.sim_millis;
    ctx.Free(d_out);
    return out;
  }});

  cases.push_back({"piv", [](native::NativeEngine* engine) {
    static const apps::piv::Problem p = apps::piv::Generate("bench", 192, 16, 4, 12, 11);
    vcuda::Context ctx(vgpu::TeslaC2070());
    Attach(ctx, engine);
    apps::piv::PivConfig cfg;
    cfg.variant = apps::piv::Variant::kWarpSpec;
    cfg.threads = 64;
    apps::piv::PivGpuResult r = GpuPiv(ctx, p, cfg);
    AppRun out;
    out.output = Bytes(r.field.best_offset);
    auto scores = Bytes(r.field.best_score);
    out.output.insert(out.output.end(), scores.begin(), scores.end());
    out.stats = r.stats;
    out.sim_millis = r.stats.sim_millis;
    return out;
  }});

  cases.push_back({"rowfilter", [](native::NativeEngine* engine) {
    static const apps::rowfilter::Image img = apps::rowfilter::MakeTestImage(512, 192, 7);
    vcuda::Context ctx(vgpu::TeslaC2070());
    Attach(ctx, engine);
    apps::rowfilter::RowFilterConfig cfg;
    apps::rowfilter::RowFilterResult r =
        GpuRowFilter(ctx, img, apps::rowfilter::BoxFilter(9), cfg);
    AppRun out;
    out.output = Bytes(r.out);
    out.stats = r.stats;
    out.sim_millis = r.sim_millis;
    return out;
  }});

  cases.push_back({"matching", [](native::NativeEngine* engine) {
    static const apps::matching::Problem p = apps::matching::PatientSets().front();
    vcuda::Context ctx(vgpu::TeslaC2070());
    Attach(ctx, engine);
    apps::matching::MatcherConfig cfg;
    apps::matching::MatchResult r = GpuMatch(ctx, p, cfg);
    AppRun out;
    out.output = Bytes(r.scores);
    out.stats = r.breakdown.stages.back().launch;
    out.sim_millis = r.sim_millis;
    return out;
  }});

  cases.push_back({"backproj", [](native::NativeEngine* engine) {
    static const apps::backproj::Problem p = apps::backproj::BenchmarkSets().front();
    vcuda::Context ctx(vgpu::TeslaC2070());
    Attach(ctx, engine);
    apps::backproj::BackprojConfig cfg;
    apps::backproj::BackprojGpuResult r = GpuBackproject(ctx, p, cfg);
    AppRun out;
    out.output = Bytes(r.volume);
    out.stats = r.stats;
    out.sim_millis = r.sim_millis;
    return out;
  }});

  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kspec;
  bench::Session session("bench_native", argc, argv);

  bench::Banner("Native execution tier",
                "decoded interpreter vs emitted C++ shared objects (serial schedule)");
  if (!native::ToolchainAvailable()) {
    bench::Note("no host C++ toolchain available — native tier disabled, nothing to measure");
    return 0;
  }
  bench::Note("outputs and LaunchStats are checked bit-identical across tiers");

  // One engine for the whole session: artifacts build once (during warmup)
  // into a scratch cache and every timed run is a memory hit.
  ScopedTempDir cache("kspec-bench-native");
  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.valid() ? cache.path() : std::string();
  native::NativeEngine engine(nopts);

  std::cout << Format("  %-12s %10s %12s %12s %9s\n", "app", "tier", "wall_ms", "sim_ms",
                      "speedup");

  vgpu::ExecPolicy serial{vgpu::ExecMode::kSerial, 1};
  vgpu::SetExecPolicyOverride(&serial);

  int failures = 0;
  for (const auto& app : Cases()) {
    vgpu::ExecutionTier decoded = vgpu::ExecutionTier::kDecoded;
    vgpu::SetTierOverride(&decoded);
    const AppRun ref = app.run(nullptr);
    const double decoded_ms = session.TimeMs([&] { app.run(nullptr); });
    std::cout << Format("  %-12s %10s %12.1f %12.2f %9s\n", app.name.c_str(), "decoded",
                        decoded_ms, ref.sim_millis, "1.00x");
    session.Record(app.name + "/decoded", decoded_ms, ref.sim_millis, 1.0, 1, "decoded");

    vgpu::ExecutionTier native_tier = vgpu::ExecutionTier::kNative;
    vgpu::SetTierOverride(&native_tier);
    const std::uint64_t builds_before = engine.stats().builds_started;
    const AppRun got = app.run(&engine);  // first run pays the SO builds
    const std::uint64_t builds = engine.stats().builds_started - builds_before;
    if (got.output != ref.output) {
      std::cerr << "FAIL: " << app.name << " output differs on the native tier\n";
      ++failures;
      continue;
    }
    if (!vgpu::StatsBitIdentical(got.stats, ref.stats) || got.sim_millis != ref.sim_millis) {
      std::cerr << "FAIL: " << app.name << " LaunchStats differ on the native tier\n";
      ++failures;
      continue;
    }
    const double native_ms = session.TimeMs([&] { app.run(&engine); });
    const double speedup = native_ms > 0 ? decoded_ms / native_ms : 0;
    std::cout << Format("  %-12s %10s %12.1f %12.2f %8.2fx   (%llu SO builds, amortized)\n",
                        app.name.c_str(), "native", native_ms, got.sim_millis, speedup,
                        static_cast<unsigned long long>(builds));
    session.Record(app.name + "/native", native_ms, got.sim_millis, speedup, 1, "native");
  }
  vgpu::SetTierOverride(nullptr);
  vgpu::SetExecPolicyOverride(nullptr);

  const native::NativeEngineStats es = engine.stats();
  bench::Note(Format("engine: %llu builds, %llu native launches, %llu fallbacks",
                     static_cast<unsigned long long>(es.builds_completed),
                     static_cast<unsigned long long>(es.served_launches),
                     static_cast<unsigned long long>(es.fallbacks)));
  return failures == 0 ? 0 : 1;
}
