// Native-tier benchmark: wall-clock time of the decoded interpreter vs the
// specialized C++ shared objects the native backend emits — shape-generic and
// shape-specialized — across a hot compute kernel and the four applications.
//
// Every native run is checked against the decoded-serial reference in-bench:
// application outputs must match byte-for-byte and LaunchStats must be
// bit-identical across all four arms — interp, decoded, native-generic and
// native-shape (the determinism contract of DESIGN.md section 8 extended to
// the native tier in sections 12-13) — a speedup that breaks the statistics
// is a bug, not a result. Every arm runs the serial block schedule so the
// columns isolate the execution-engine difference, not host threading.
//
// Each arm owns one long-lived Context per app, so module compiles land in
// the context's cache on the first (untimed) run and every timed rep is a
// pure execution measurement. The native artifacts — generic TU and shape
// variants alike — are built once during warmup (through the
// content-addressed .nso cache) and the build cost is reported separately,
// never inside the timed region: the same amortization argument the
// dissertation makes for run-time kernel specialization itself.
#include <cstring>

#include "apps/backproj/gpu.hpp"
#include "apps/matching/gpu.hpp"
#include "apps/piv/gpu.hpp"
#include "apps/rowfilter/rowfilter.hpp"
#include "bench_common.hpp"
#include "native/build.hpp"
#include "native/engine.hpp"
#include "support/temp_dir.hpp"
#include "vgpu/interp.hpp"
#include "vgpu/tier.hpp"

namespace {

using namespace kspec;

struct AppRun {
  std::vector<unsigned char> output;
  vgpu::LaunchStats stats;
  double sim_millis = 0;
};

template <typename T>
std::vector<unsigned char> Bytes(const std::vector<T>& v) {
  std::vector<unsigned char> out(v.size() * sizeof(T));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

struct AppCase {
  std::string name;
  std::function<AppRun(vcuda::Context&)> run;
};

// A compute-bound kernel: a long data-dependent loop with divergence. This is
// the shape specialization pays off most on — issue-bound code where the
// decoded tier's per-instruction dispatch is the bottleneck.
constexpr const char* kHotSource = R"(
__kernel void hot(float* out, int iters) {
  float x = (float)threadIdx.x * 0.001f + (float)blockIdx.x * 0.01f;
  float acc = 0.0f;
  for (int i = 0; i < iters; i++) {
    x = x * 1.0000001f + 0.5f;
    if (x > 100.0f) {
      x = x - 100.0f;
    }
    acc += x;
  }
  out[blockIdx.x * blockDim.x + threadIdx.x] = acc;
}
)";

std::vector<AppCase> Cases() {
  std::vector<AppCase> cases;

  cases.push_back({"hotloop", [](vcuda::Context& ctx) {
    auto mod = ctx.LoadModule(kHotSource);
    const unsigned blocks = 64, threads = 128;
    const int iters = 12000;
    vcuda::DevPtr d_out = ctx.Malloc(std::uint64_t{blocks} * threads * sizeof(float));
    vcuda::ArgPack args;
    args.Ptr(d_out).Int(iters);
    AppRun out;
    out.stats = ctx.Launch(*mod, "hot", vgpu::Dim3(blocks), vgpu::Dim3(threads), args);
    out.output = Bytes(vcuda::Download<float>(ctx, d_out, std::size_t{blocks} * threads));
    out.sim_millis = out.stats.sim_millis;
    ctx.Free(d_out);
    return out;
  }});

  cases.push_back({"piv", [](vcuda::Context& ctx) {
    static const apps::piv::Problem p = apps::piv::Generate("bench", 192, 16, 4, 12, 11);
    apps::piv::PivConfig cfg;
    cfg.variant = apps::piv::Variant::kWarpSpec;
    cfg.threads = 64;
    apps::piv::PivGpuResult r = GpuPiv(ctx, p, cfg);
    AppRun out;
    out.output = Bytes(r.field.best_offset);
    auto scores = Bytes(r.field.best_score);
    out.output.insert(out.output.end(), scores.begin(), scores.end());
    out.stats = r.stats;
    out.sim_millis = r.stats.sim_millis;
    return out;
  }});

  cases.push_back({"rowfilter", [](vcuda::Context& ctx) {
    static const apps::rowfilter::Image img = apps::rowfilter::MakeTestImage(512, 192, 7);
    apps::rowfilter::RowFilterConfig cfg;
    apps::rowfilter::RowFilterResult r =
        GpuRowFilter(ctx, img, apps::rowfilter::BoxFilter(9), cfg);
    AppRun out;
    out.output = Bytes(r.out);
    out.stats = r.stats;
    out.sim_millis = r.sim_millis;
    return out;
  }});

  cases.push_back({"matching", [](vcuda::Context& ctx) {
    // Bench-sized problem: the PatientSets() entries are scaled for the
    // correctness suite and finish in ~2 ms interpreted, which measures
    // launch overhead rather than kernel execution. The template stays
    // modest (stage 3 unrolls TPL_H*TPL_W at compile time); the shift grid
    // is a runtime dimension and carries the extra work.
    static const apps::matching::Problem p =
        apps::matching::Generate("bench", 32, 24, 32, 32, 7);
    apps::matching::MatcherConfig cfg;
    // Run-time evaluated kernels: kcc's SK specialization fully unrolls the
    // per-template loops, and the transliterated native function for that
    // unrolled stream is large enough to fall out of the host i-cache —
    // which benchmarks code size, not the execution tier. The RE kernels
    // keep loops rolled, so all tiers execute the same compact stream.
    cfg.specialize = false;
    apps::matching::MatchResult r = GpuMatch(ctx, p, cfg);
    AppRun out;
    out.output = Bytes(r.scores);
    out.stats = r.breakdown.stages.back().launch;
    out.sim_millis = r.sim_millis;
    return out;
  }});

  cases.push_back({"backproj", [](vcuda::Context& ctx) {
    // Bench-sized geometry: the correctness-suite V1 set with vol_n raised
    // so kernel work dominates fixed per-launch overhead.
    static const apps::backproj::Problem p = [] {
      apps::backproj::Geometry g;
      g.vol_n = 64;
      g.vol_z = 12;
      g.det_u = 32;
      g.det_v = 24;
      g.n_angles = 12;
      return apps::backproj::Generate("bench", g, 3, 51);
    }();
    apps::backproj::BackprojConfig cfg;
    // Same reasoning as matching: the SK kernel's unrolled angle/z loops
    // transliterate to a ~20k-line native function that misses the host
    // i-cache; the RE kernel keeps them rolled. zpt stays 1 (RE requires it).
    cfg.specialize = false;
    apps::backproj::BackprojGpuResult r = GpuBackproject(ctx, p, cfg);
    AppRun out;
    out.output = Bytes(r.volume);
    out.stats = r.stats;
    out.sim_millis = r.sim_millis;
    return out;
  }});

  return cases;
}

bool CheckIdentical(const char* app, const char* arm, const AppRun& got, const AppRun& ref) {
  if (got.output != ref.output) {
    std::cerr << "FAIL: " << app << " output differs on the " << arm << " arm\n";
    return false;
  }
  if (!vgpu::StatsBitIdentical(got.stats, ref.stats) || got.sim_millis != ref.sim_millis) {
    std::cerr << "FAIL: " << app << " LaunchStats differ on the " << arm << " arm\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kspec;
  bench::Session session("bench_native", argc, argv);

  bench::Banner("Native execution tier",
                "decoded interpreter vs emitted shared objects, generic and "
                "shape-specialized (serial schedule)");
  if (!native::ToolchainAvailable()) {
    bench::Note("no host C++ toolchain available — native tier disabled, nothing to measure");
    return 0;
  }
  bench::Note("outputs and LaunchStats are checked bit-identical across "
              "interp/decoded/native/shape");

  // One engine for the whole session: generic artifacts and shape variants
  // build once (during warmup) into a scratch cache and every timed run is a
  // memory hit. Whether a launch may use shape variants is decided per arm
  // via SetShapeModeOverride, which outranks the engine's own option.
  ScopedTempDir cache("kspec-bench-native");
  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.valid() ? cache.path() : std::string();
  nopts.max_shape_variants = 8;  // apps launch several stage shapes per module
  native::NativeEngine engine(nopts);

  std::cout << Format("  %-12s %10s %12s %12s %9s\n", "app", "tier", "wall_ms", "sim_ms",
                      "speedup");

  vgpu::ExecPolicy serial{vgpu::ExecMode::kSerial, 1};
  vgpu::SetExecPolicyOverride(&serial);

  // Optional `--apps a,b` filter: restrict the run to a comma-separated
  // subset of app names (spot checks; the committed JSON uses the full set).
  std::string apps_filter;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--apps") apps_filter = argv[i + 1];
  }

  int failures = 0;
  for (const auto& app : Cases()) {
    if (!apps_filter.empty() &&
        ("," + apps_filter + ",").find("," + app.name + ",") == std::string::npos) {
      continue;
    }
    // One long-lived context per arm: the first (untimed) run pays the kcc
    // compiles and native builds; timed reps measure execution only.
    vcuda::Context interp_ctx(vgpu::TeslaC2070());
    vcuda::Context decoded_ctx(vgpu::TeslaC2070());
    vcuda::Context generic_ctx(vgpu::TeslaC2070());
    vcuda::Context shape_ctx(vgpu::TeslaC2070());
    generic_ctx.set_native_service(&engine);
    shape_ctx.set_native_service(&engine);

    vgpu::ExecutionTier decoded = vgpu::ExecutionTier::kDecoded;
    vgpu::SetTierOverride(&decoded);
    const AppRun ref = app.run(decoded_ctx);
    const double decoded_ms = session.TimeMs([&] { app.run(decoded_ctx); });
    std::cout << Format("  %-12s %10s %12.1f %12.2f %9s\n", app.name.c_str(), "decoded",
                        decoded_ms, ref.sim_millis, "1.00x");
    session.Record(app.name + "/decoded", decoded_ms, ref.sim_millis, 1.0, 1, "decoded");

    // Reference tier: decode-per-launch interpreter, run once for the
    // bit-identity check (it is not a performance arm).
    vgpu::ExecutionTier interp = vgpu::ExecutionTier::kInterp;
    vgpu::SetTierOverride(&interp);
    if (!CheckIdentical(app.name.c_str(), "interp", app.run(interp_ctx), ref)) {
      ++failures;
      continue;
    }

    vgpu::ExecutionTier native_tier = vgpu::ExecutionTier::kNative;
    vgpu::SetTierOverride(&native_tier);

    // Arm 1: shape-generic shared objects only.
    vgpu::ShapeMode shape_off = vgpu::ShapeMode::kOff;
    vgpu::SetShapeModeOverride(&shape_off);
    const std::uint64_t builds_before = engine.stats().builds_started;
    const AppRun got = app.run(generic_ctx);  // first run pays the SO builds
    const std::uint64_t builds = engine.stats().builds_started - builds_before;
    if (!CheckIdentical(app.name.c_str(), "native-generic", got, ref)) {
      ++failures;
      vgpu::SetShapeModeOverride(nullptr);
      continue;
    }
    const double native_ms = session.TimeMs([&] { app.run(generic_ctx); });
    const double speedup = native_ms > 0 ? decoded_ms / native_ms : 0;
    std::cout << Format("  %-12s %10s %12.1f %12.2f %8.2fx   (%llu SO builds, amortized)\n",
                        app.name.c_str(), "native", native_ms, got.sim_millis, speedup,
                        static_cast<unsigned long long>(builds));
    session.Record(app.name + "/native", native_ms, got.sim_millis, speedup, 1, "native");

    // Arm 2: shape-specialized variants, built inline on first encounter
    // (kEager) and served from memory in every timed rep.
    vgpu::ShapeMode shape_eager = vgpu::ShapeMode::kEager;
    vgpu::SetShapeModeOverride(&shape_eager);
    const std::uint64_t sbuilds_before = engine.stats().shape_builds_started;
    const AppRun sgot = app.run(shape_ctx);  // first run pays the variant builds
    const std::uint64_t sbuilds = engine.stats().shape_builds_started - sbuilds_before;
    if (!CheckIdentical(app.name.c_str(), "native-shape", sgot, ref)) {
      ++failures;
      vgpu::SetShapeModeOverride(nullptr);
      continue;
    }
    const double shape_ms = session.TimeMs([&] { app.run(shape_ctx); });
    const double shape_speedup = shape_ms > 0 ? decoded_ms / shape_ms : 0;
    std::cout << Format("  %-12s %10s %12.1f %12.2f %8.2fx   (%llu variant builds, amortized)\n",
                        app.name.c_str(), "shape", shape_ms, sgot.sim_millis, shape_speedup,
                        static_cast<unsigned long long>(sbuilds));
    session.Record(app.name + "/native_shape", shape_ms, sgot.sim_millis, shape_speedup, 1,
                   "native-shape");
    vgpu::SetShapeModeOverride(nullptr);
  }
  vgpu::SetTierOverride(nullptr);
  vgpu::SetExecPolicyOverride(nullptr);

  const native::NativeEngineStats es = engine.stats();
  bench::Note(Format("engine: %llu builds (%llu shape variants), %llu native launches "
                     "(%llu on shape variants), %llu fallbacks",
                     static_cast<unsigned long long>(es.builds_completed),
                     static_cast<unsigned long long>(es.shape_builds_completed),
                     static_cast<unsigned long long>(es.served_launches),
                     static_cast<unsigned long long>(es.shape_served_launches),
                     static_cast<unsigned long long>(es.fallbacks)));
  return failures == 0 ? 0 : 1;
}
