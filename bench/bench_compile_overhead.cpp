// Section 4.3 trade-offs: run-time compilation overhead and the binary
// cache. Uses google-benchmark for the host-side timing (these are real wall
// times, not simulated), covering the full load-time ladder — cold compile,
// warm in-memory cache hit, and persistent disk-cache hit (a fresh Context
// deserializing a previously stored artifact instead of recompiling) — plus
// the interpreter's launch overhead.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_common.hpp"

#include "apps/backproj/kernels.hpp"
#include "apps/matching/kernels.hpp"
#include "apps/piv/kernels.hpp"
#include "kcc/compiler.hpp"
#include "vcuda/device_buffer.hpp"
#include "vcuda/vcuda.hpp"

namespace {

using namespace kspec;

std::string PivWarpSpec() {
  std::string body = apps::piv::kPivWarpSpecSource;
  std::string tag = "__COMMON__";
  body.replace(body.find(tag), tag.size(), apps::piv::kPivCommonHeader);
  return body;
}

void BM_CompileCold_Matching(benchmark::State& state) {
  kcc::CompileOptions opts;
  opts.defines = {{"CT_TILE", "1"},   {"K_TILE_H", "8"},     {"K_TILE_W", "8"},
                  {"CT_SHIFT", "1"},  {"K_SHIFT_W", "12"},   {"K_N_SHIFTS", "144"},
                  {"CT_THREADS", "1"}, {"K_THREADS", "128"}};
  for (auto _ : state) {
    auto mod = kcc::CompileModule(apps::matching::kNumeratorSource, opts);
    benchmark::DoNotOptimize(mod);
  }
}
BENCHMARK(BM_CompileCold_Matching)->Unit(benchmark::kMillisecond);

void BM_CompileCold_PivWarpSpec(benchmark::State& state) {
  kcc::CompileOptions opts;
  opts.defines = {{"CT_MASK", "1"},    {"K_MASK_W", "16"},   {"K_MASK_AREA", "256"},
                  {"CT_SEARCH", "1"},  {"K_SEARCH_W", "7"},  {"K_N_OFFSETS", "49"},
                  {"CT_THREADS", "1"}, {"K_THREADS", "64"}};
  std::string src = PivWarpSpec();
  for (auto _ : state) {
    auto mod = kcc::CompileModule(src, opts);
    benchmark::DoNotOptimize(mod);
  }
}
BENCHMARK(BM_CompileCold_PivWarpSpec)->Unit(benchmark::kMillisecond);

void BM_CompileCold_Backproj(benchmark::State& state) {
  kcc::CompileOptions opts;
  opts.defines = {{"CT_ANGLES", "1"}, {"K_N_ANGLES", "16"}, {"CT_ZPT", "1"},
                  {"K_ZPT", "4"},     {"CT_VOL", "1"},      {"K_VOL_Z", "16"},
                  {"CT_THREADS", "1"}, {"K_THREADS", "64"}};
  for (auto _ : state) {
    auto mod = kcc::CompileModule(apps::backproj::kBackprojSource, opts);
    benchmark::DoNotOptimize(mod);
  }
}
BENCHMARK(BM_CompileCold_Backproj)->Unit(benchmark::kMillisecond);

// Warm cache hit: the Section 4.3 claim that re-encountering a parameter set
// loads "with speed similar to loading a dynamically linked shared object".
void BM_CacheHit_Warm(benchmark::State& state) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  kcc::CompileOptions opts;
  opts.defines = {{"CT_ANGLES", "1"}, {"K_N_ANGLES", "16"}};
  ctx.LoadModule(apps::backproj::kBackprojSource, opts);  // warm the cache
  for (auto _ : state) {
    auto mod = ctx.LoadModule(apps::backproj::kBackprojSource, opts);
    benchmark::DoNotOptimize(mod);
  }
}
BENCHMARK(BM_CacheHit_Warm)->Unit(benchmark::kMicrosecond);

// Disk cache hit: a brand-new Context (standing in for a second process)
// deserializes the stored artifact instead of invoking the compiler. Sits
// between the cold compile and the warm hit on the load-time ladder.
void BM_CacheHit_Disk(benchmark::State& state) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "kspec_bench_disk_cache";
  fs::create_directories(dir);
  kcc::CompileOptions opts;
  opts.defines = {{"CT_ANGLES", "1"}, {"K_N_ANGLES", "16"}};
  {
    vcuda::Context warmer(vgpu::TeslaC1060(), 1 << 20);
    warmer.set_cache_dir(dir.string());
    warmer.LoadModule(apps::backproj::kBackprojSource, opts);  // store the artifact
  }
  for (auto _ : state) {
    state.PauseTiming();
    vcuda::Context ctx(vgpu::TeslaC1060(), 1 << 20);
    ctx.set_cache_dir(dir.string());
    state.ResumeTiming();
    auto mod = ctx.LoadModule(apps::backproj::kBackprojSource, opts);
    benchmark::DoNotOptimize(mod);
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_CacheHit_Disk)->Unit(benchmark::kMicrosecond);

// Interpreter throughput: lane-operations per second on a dense kernel.
void BM_InterpreterThroughput(benchmark::State& state) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  const char* src = R"(
__kernel void saxpy(float* x, float* y, float a, int n) {
  int i = blockIdx.x * 64 + threadIdx.x;
  if (i < n) {
    y[i] = a * x[i] + y[i];
  }
}
)";
  auto mod = ctx.LoadModule(src, {});
  const int n = 64 * 64;
  vcuda::DeviceBuffer dx(ctx, n * 4), dy(ctx, n * 4);
  for (auto _ : state) {
    vcuda::ArgPack args;
    args.Ptr(dx.get()).Ptr(dy.get()).Float(2.0f).Int(n);
    auto stats = ctx.Launch(*mod, "saxpy", vgpu::Dim3(64), vgpu::Dim3(64), args);
    benchmark::DoNotOptimize(stats);
    state.counters["lane_ops"] = benchmark::Counter(
        static_cast<double>(stats.lane_instrs), benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_InterpreterThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the shared Session flags (--json/--reps/
// --warmup) coexist with google-benchmark's own argument parsing: Session
// consumes its flags, the remainder goes to benchmark::Initialize.
int main(int argc, char** argv) {
  kspec::bench::Session session("bench_compile_overhead", argc, argv);
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if ((a == "--json" || a == "--reps" || a == "--warmup") && i + 1 < argc) {
      ++i;
      continue;
    }
    rest.push_back(argv[i]);
  }
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
