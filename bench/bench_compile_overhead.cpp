// Section 4.3 trade-offs: run-time compilation overhead and the binary
// cache. Uses google-benchmark for the host-side timing (these are real wall
// times, not simulated), covering cold compiles of each application kernel,
// cache hits, and the interpreter's launch overhead.
#include <benchmark/benchmark.h>

#include "apps/backproj/kernels.hpp"
#include "apps/matching/kernels.hpp"
#include "apps/piv/kernels.hpp"
#include "kcc/compiler.hpp"
#include "vcuda/vcuda.hpp"

namespace {

using namespace kspec;

std::string PivWarpSpec() {
  std::string body = apps::piv::kPivWarpSpecSource;
  std::string tag = "__COMMON__";
  body.replace(body.find(tag), tag.size(), apps::piv::kPivCommonHeader);
  return body;
}

void BM_CompileCold_Matching(benchmark::State& state) {
  kcc::CompileOptions opts;
  opts.defines = {{"CT_TILE", "1"},   {"K_TILE_H", "8"},     {"K_TILE_W", "8"},
                  {"CT_SHIFT", "1"},  {"K_SHIFT_W", "12"},   {"K_N_SHIFTS", "144"},
                  {"CT_THREADS", "1"}, {"K_THREADS", "128"}};
  for (auto _ : state) {
    auto mod = kcc::CompileModule(apps::matching::kNumeratorSource, opts);
    benchmark::DoNotOptimize(mod);
  }
}
BENCHMARK(BM_CompileCold_Matching)->Unit(benchmark::kMillisecond);

void BM_CompileCold_PivWarpSpec(benchmark::State& state) {
  kcc::CompileOptions opts;
  opts.defines = {{"CT_MASK", "1"},    {"K_MASK_W", "16"},   {"K_MASK_AREA", "256"},
                  {"CT_SEARCH", "1"},  {"K_SEARCH_W", "7"},  {"K_N_OFFSETS", "49"},
                  {"CT_THREADS", "1"}, {"K_THREADS", "64"}};
  std::string src = PivWarpSpec();
  for (auto _ : state) {
    auto mod = kcc::CompileModule(src, opts);
    benchmark::DoNotOptimize(mod);
  }
}
BENCHMARK(BM_CompileCold_PivWarpSpec)->Unit(benchmark::kMillisecond);

void BM_CompileCold_Backproj(benchmark::State& state) {
  kcc::CompileOptions opts;
  opts.defines = {{"CT_ANGLES", "1"}, {"K_N_ANGLES", "16"}, {"CT_ZPT", "1"},
                  {"K_ZPT", "4"},     {"CT_VOL", "1"},      {"K_VOL_Z", "16"},
                  {"CT_THREADS", "1"}, {"K_THREADS", "64"}};
  for (auto _ : state) {
    auto mod = kcc::CompileModule(apps::backproj::kBackprojSource, opts);
    benchmark::DoNotOptimize(mod);
  }
}
BENCHMARK(BM_CompileCold_Backproj)->Unit(benchmark::kMillisecond);

// Cache hit: the Section 4.3 claim that re-encountering a parameter set
// loads "with speed similar to loading a dynamically linked shared object".
void BM_CacheHit(benchmark::State& state) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  kcc::CompileOptions opts;
  opts.defines = {{"CT_ANGLES", "1"}, {"K_N_ANGLES", "16"}};
  ctx.LoadModule(apps::backproj::kBackprojSource, opts);  // warm the cache
  for (auto _ : state) {
    auto mod = ctx.LoadModule(apps::backproj::kBackprojSource, opts);
    benchmark::DoNotOptimize(mod);
  }
}
BENCHMARK(BM_CacheHit)->Unit(benchmark::kMicrosecond);

// Interpreter throughput: lane-operations per second on a dense kernel.
void BM_InterpreterThroughput(benchmark::State& state) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  const char* src = R"(
__kernel void saxpy(float* x, float* y, float a, int n) {
  int i = blockIdx.x * 64 + threadIdx.x;
  if (i < n) {
    y[i] = a * x[i] + y[i];
  }
}
)";
  auto mod = ctx.LoadModule(src, {});
  const int n = 64 * 64;
  auto dx = ctx.Malloc(n * 4), dy = ctx.Malloc(n * 4);
  for (auto _ : state) {
    vcuda::ArgPack args;
    args.Ptr(dx).Ptr(dy).Float(2.0f).Int(n);
    auto stats = ctx.Launch(*mod, "saxpy", vgpu::Dim3(64), vgpu::Dim3(64), args);
    benchmark::DoNotOptimize(stats);
    state.counters["lane_ops"] = benchmark::Counter(
        static_cast<double>(stats.lane_instrs), benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_InterpreterThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
