// Table 6.19: performance comparisons for the backprojection kernels —
// run-time evaluated vs specialized across voxels-per-thread and thread
// counts, per data set and device.
#include <iostream>

#include "apps/backproj/gpu.hpp"
#include "apps/backproj/problem.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_table_6_19", argc, argv);
  using namespace kspec;
  using namespace kspec::apps::backproj;
  bench::Banner("Table 6.19", "Backprojection kernel comparisons (RE vs SK)");

  Table table({"device", "data set", "RE ms", "RE regs", "SK ms", "SK regs", "SK zpt",
               "SK thr", "speedup"});

  for (const auto& profile : bench::Devices()) {
    for (const Problem& p : BenchmarkSets()) {
      vcuda::Context ctx(profile);
      // RE: zpt pinned at 1; sweep thread count only.
      double re_ms = 1e300;
      int re_regs = 0;
      for (int threads : {32, 64, 128, 256}) {
        BackprojConfig cfg;
        cfg.threads = threads;
        cfg.zpt = 1;
        cfg.specialize = false;
        try {
          BackprojGpuResult r = GpuBackproject(ctx, p, cfg);
          if (r.sim_millis < re_ms) {
            re_ms = r.sim_millis;
            re_regs = r.reg_count;
          }
        } catch (const Error&) {
        }
      }
      // SK: sweep zpt x threads.
      double sk_ms = 1e300;
      int sk_regs = 0, sk_zpt = 0, sk_thr = 0;
      for (int threads : {32, 64, 128, 256}) {
        for (int zpt : {1, 2, 4, 8}) {
          if (p.geo.vol_z % zpt != 0) continue;
          BackprojConfig cfg;
          cfg.threads = threads;
          cfg.zpt = zpt;
          cfg.specialize = true;
          try {
            BackprojGpuResult r = GpuBackproject(ctx, p, cfg);
            if (r.sim_millis < sk_ms) {
              sk_ms = r.sim_millis;
              sk_regs = r.reg_count;
              sk_zpt = zpt;
              sk_thr = threads;
            }
          } catch (const Error&) {
          }
        }
      }
      table.Row() << profile.name << p.name << re_ms << re_regs << sk_ms << sk_regs << sk_zpt
                  << sk_thr << (re_ms / sk_ms);
    }
  }
  table.WriteAscii(std::cout);
  std::cout << "\nShape check: SK wins everywhere; z register blocking (zpt > 1) pays off by\n"
               "amortizing the per-angle geometry math across voxels.\n";
  return 0;
}
