// Sections 2.6 / 4.2 (Appendices E/F): the OpenCV row-filter case study.
// One adaptable source, specialized per (filter size, border mode, element
// type) on demand, versus the run-time evaluated fallback — and versus the
// 192-variant ahead-of-time matrix OpenCV compiles into its binary.
#include <iostream>

#include "apps/rowfilter/rowfilter.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_opencv_rowfilter", argc, argv);
  using namespace kspec;
  using namespace kspec::apps::rowfilter;
  bench::Banner("OpenCV row filter (Sections 2.6/4.2)",
                "specialized on demand vs run-time evaluated");

  Image img = MakeTestImage(192, 32, 77);

  for (const auto& profile : bench::Devices()) {
    std::cout << "\n--- " << profile.name << " ---\n";
    vcuda::Context ctx(profile);
    Table table({"ksize", "border", "RE ms", "RE regs", "SK ms", "SK regs", "speedup"});
    for (int ksize : {3, 7, 15, 31}) {
      for (Border border : {Border::kClamp, Border::kReflect, Border::kWrap}) {
        FilterSpec spec = BinomialFilter(ksize, border);
        RowFilterConfig cfg;
        cfg.specialize = false;
        auto re = GpuRowFilter(ctx, img, spec, cfg);
        cfg.specialize = true;
        auto sk = GpuRowFilter(ctx, img, spec, cfg);
        table.Row() << ksize << BorderName(border) << re.sim_millis << re.reg_count
                    << sk.sim_millis << sk.reg_count << (re.sim_millis / sk.sim_millis);
      }
    }
    table.WriteAscii(std::cout);
    std::cout << "  on-demand compiles this sweep: " << ctx.cache_stats().misses
              << " (OpenCV's ahead-of-time matrix: " << kAotVariantCount
              << " variants in the binary)\n";
  }
  std::cout << "\nShape check: specialization wins grow with filter size (deeper unrolled\n"
               "loops) and the border-mode switch vanishes from the specialized binary.\n";
  return 0;
}
