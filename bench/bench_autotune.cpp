// Autotuner companion bench (Chapter 3's "complementary" positioning):
// exhaustive grid search vs multi-start coordinate descent over the PIV
// register-blocking space — configurations measured, time to tune, and the
// quality of the chosen configuration, per data set and device.
#include <iostream>

#include "bench_common.hpp"
#include "support/timer.hpp"
#include "tune/tuner.hpp"

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_autotune", argc, argv);
  using namespace kspec;
  using namespace kspec::apps::piv;
  bench::Banner("Autotuning", "grid search vs coordinate descent for PIV (regblock)");
  bench::Note("Because specialization compiles in milliseconds and the cache absorbs");
  bench::Note("repeats, the tuner's cost is dominated by the measured launches.");

  std::vector<tune::ParamRange> space = {{"threads", {32, 64, 128, 256}},
                                         {"rb", {1, 2, 4, 8, 16}}};

  for (const auto& profile : bench::Devices()) {
    std::cout << "\n--- " << profile.name << " ---\n";
    Table table({"data set", "grid evals", "grid best ms", "cd evals", "cd best ms",
                 "cd quality %", "tune wall ms (cd)"});
    for (const Problem& p : MaskSizeSet()) {
      vcuda::Context ctx(profile);
      auto eval = [&](const tune::Config& c) -> double {
        PivConfig cfg;
        cfg.variant = Variant::kRegBlock;
        cfg.threads = static_cast<int>(c.at("threads"));
        cfg.rb = static_cast<int>(c.at("rb"));
        cfg.specialize = true;
        if (cfg.rb * cfg.threads < p.mask_area()) throw Error("uncoverable");
        return GpuPiv(ctx, p, cfg).stats.sim_millis;
      };
      tune::TuneResult grid = tune::GridSearch(space, eval);
      WallTimer timer;
      tune::TuneResult cd = tune::CoordinateDescent(space, eval);
      double cd_wall = timer.ElapsedMillis();
      table.Row() << p.name << static_cast<std::int64_t>(grid.evaluated) << grid.best_millis
                  << static_cast<std::int64_t>(cd.evaluated) << cd.best_millis
                  << (100.0 * grid.best_millis / cd.best_millis) << cd_wall;
    }
    table.WriteAscii(std::cout);
  }
  std::cout << "\nShape check: coordinate descent reaches >=90% of the exhaustive optimum\n"
               "with fewer measured configurations.\n";
  return 0;
}
