// Autotuner companion bench (Chapter 3's "complementary" positioning):
// exhaustive grid search vs multi-start coordinate descent vs the predictive
// (model-guided) tuner, over the PIV register-blocking space and the template
// matcher's (threads, tile) space, per device.
//
// The grid is ground truth: the vgpu cost model is deterministic, so regret
// is exact, not sampled. Targets: the predictive tuner lands within 5% of
// the exhaustive optimum with >= 10x fewer measured evaluations, and a
// second process reusing the persisted TuningCache measures nothing at all.
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "apps/matching/tune.hpp"
#include "apps/piv/tune.hpp"
#include "bench_common.hpp"
#include "support/timer.hpp"
#include "tune/tuner.hpp"

namespace {

using namespace kspec;

struct TuneCase {
  std::string app;  // record prefix, e.g. "piv"
  std::vector<tune::ParamRange> space;
  // Fresh evaluator/prune per run so each method pays its own compiles.
  std::function<tune::EvalFn(vcuda::Context&)> eval;
  std::function<tune::PruneFn(vcuda::Context&)> prune;
};

void RunCase(bench::Session& session, const vgpu::DeviceProfile& profile, const TuneCase& tc) {
  Table table({"method", "evals", "skipped", "pruned", "best ms", "regret %", "wall ms"});

  struct Outcome {
    tune::TuneResult r;
    double wall = 0;
  };
  auto run = [&](auto&& search) {
    vcuda::Context ctx(profile);  // fresh context: no shared compile cache
    WallTimer t;
    Outcome o;
    o.r = search(ctx);
    o.wall = t.ElapsedMillis();
    return o;
  };

  Outcome grid = run([&](vcuda::Context& ctx) {
    return tune::GridSearch(tc.space, tc.eval(ctx));
  });
  Outcome cd = run([&](vcuda::Context& ctx) {
    return tune::CoordinateDescent(tc.space, tc.eval(ctx), 4, tc.prune(ctx));
  });
  Outcome pred = run([&](vcuda::Context& ctx) {
    tune::PredictiveOptions opts;
    opts.prune = tc.prune(ctx);
    return tune::PredictiveSearch(tc.space, tc.eval(ctx), opts);
  });

  auto report = [&](const char* method, const Outcome& o) {
    const double regret =
        o.r.ok() && grid.r.ok() ? 100.0 * (o.r.best_millis / grid.r.best_millis - 1.0) : -1.0;
    const double evals_saved =
        o.r.evaluated > 0 ? static_cast<double>(grid.r.evaluated) / o.r.evaluated : 0.0;
    table.Row() << method << static_cast<std::int64_t>(o.r.evaluated)
                << static_cast<std::int64_t>(o.r.skipped)
                << static_cast<std::int64_t>(o.r.pruned_static) << o.r.best_millis << regret
                << o.wall;
    // JSON: wall = tuning wall time, sim = chosen config's cost, speedup =
    // evaluations saved vs the exhaustive grid, threads = evals performed.
    session.Record(tc.app + "/" + profile.name + "/" + method, o.wall, o.r.best_millis,
                   evals_saved, static_cast<unsigned>(o.r.evaluated));
  };
  report("grid", grid);
  report("cd", cd);
  report("predictive", pred);
  table.WriteAscii(std::cout);
  if (pred.r.used_fallback) {
    bench::Note("predictive fell back to coordinate descent (fit r2 = " +
                std::to_string(pred.r.fit_r2) + ")");
  }
}

}  // namespace

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_autotune", argc, argv);
  using namespace kspec;
  bench::Banner("Autotuning",
                "grid vs coordinate descent vs predictive (PIV regblock, matcher tiles)");
  bench::Note("The simulator's cost model is deterministic, so regret vs the exhaustive");
  bench::Note("grid optimum is exact. 'pruned' counts configurations the static");
  bench::Note("occupancy/coverage pre-pass rejected without compiling or launching.");

  const apps::piv::Problem piv_p = apps::piv::Generate("mask16", 80, 16, 3, 8, 23);
  const apps::matching::Problem match_p = apps::matching::Generate("patient2", 32, 24, 10, 14, 202);

  for (const auto& profile : bench::Devices()) {
    std::cout << "\n--- " << profile.name << " · PIV regblock (threads x rb) ---\n";
    RunCase(session, profile,
            {"piv", apps::piv::RegBlockSpace(),
             [&](vcuda::Context& ctx) { return apps::piv::RegBlockEval(ctx, piv_p); },
             [&](vcuda::Context& ctx) { return apps::piv::RegBlockPrune(ctx, piv_p); }});

    std::cout << "\n--- " << profile.name << " · matcher (threads x tile_h x tile_w) ---\n";
    RunCase(session, profile,
            {"matching", apps::matching::MatcherSpace(),
             [&](vcuda::Context& ctx) { return apps::matching::MatcherEval(ctx, match_p); },
             [&](vcuda::Context& ctx) { return apps::matching::MatcherPrune(ctx, match_p); }});
  }

  // Persistent-cache round trip: a fresh TuningCache object (standing in for
  // a second process) answers from disk with zero measured evaluations.
  {
    const auto path =
        (std::filesystem::temp_directory_path() / "kspec_bench_autotune_cache.bin").string();
    std::filesystem::remove(path);
    vcuda::Context ctx(bench::Devices().front());
    tune::TuningCache writer(path);
    WallTimer cold_t;
    apps::piv::TunedRegBlock(ctx, piv_p, &writer);
    const double cold = cold_t.ElapsedMillis();

    tune::TuningCache reader(path);
    tune::TuneResult hit;
    WallTimer warm_t;
    apps::piv::PivConfig cfg = apps::piv::TunedRegBlock(ctx, piv_p, &reader, &hit);
    const double warm = warm_t.ElapsedMillis();
    std::printf("\nTuningCache: cold tune %.1f ms -> cached reload %.3f ms, %zu evaluations, "
                "best = (threads %d, rb %d)\n",
                cold, warm, hit.evaluated, cfg.threads, cfg.rb);
    session.Record("piv/" + bench::Devices().front().name + "/cache-hit", warm, 0, 0,
                   static_cast<unsigned>(hit.evaluated));
    std::filesystem::remove(path);
  }

  std::cout << "\nShape check: predictive reaches <=5% regret with >=10x fewer evaluations\n"
               "than the exhaustive grid on both spaces; a cache hit evaluates nothing.\n";
  return 0;
}
