// The async specialization service, quantified:
//
//   (1) Tiered promotion latency — the Get() that triggers promotion pays the
//       full specialized-build compile when promotion is blocking, and only
//       the RE-serve time when the compile runs on the CompileExecutor. This
//       is the launch-path stall the service exists to remove.
//   (2) Single-flight coalescing — 16 threads request the same cold
//       specialization simultaneously; exactly one compile runs and the other
//       15 requests join its flight.
//
// Wall times are real host milliseconds (compilation is real work); the
// kernel's specialized build is made deliberately expensive (a fully unrolled
// multi-thousand-iteration loop) so the stall being removed is unmistakable.
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/compile_executor.hpp"
#include "support/timer.hpp"
#include "vcuda/tiered.hpp"

namespace {

using namespace kspec;

constexpr const char* kKernel = R"(
#ifndef N
#define N n
#endif
__kernel void f(float* out, int n) {
  float acc = 0.0f;
  for (int i = 0; i < N; i++) { acc += 1.0f; }
  out[threadIdx.x] = acc;
}
)";

// Expensive specialization: the loop fully unrolls to kHeavyN iterations.
constexpr int kHeavyN = 20000;

kcc::CompileOptions HeavyOpts() {
  kcc::CompileOptions opts;
  opts.defines["N"] = std::to_string(kHeavyN);
  opts.max_unroll = kHeavyN + 1;
  return opts;
}

// One tiered request; returns wall milliseconds and whether the specialized
// build answered.
struct GetSample {
  double wall_ms = 0;
  bool specialized = false;
};

GetSample TimedGet(vcuda::TieredLoader& tiered, const kcc::CompileOptions& opts) {
  WallTimer t;
  auto mod = tiered.Get(opts);
  GetSample s;
  s.wall_ms = t.ElapsedMillis();
  s.specialized = mod->GetKernel("f").stats.unrolled_loops > 0;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_serve", argc, argv);
  bench::Banner("serve", "async specialization service: promotion latency + coalescing");

  int failures = 0;

  // ------------------------------------------------------------------
  // (1) Blocking vs async promotion: per-request wall time ladder
  // ------------------------------------------------------------------
  bench::Note("Tiered promotion (hot threshold 3). 'get 3' is the request that");
  bench::Note("triggers promotion: blocking pays the compile there; async serves the");
  bench::Note("RE build and swaps the specialized build in once the service delivers.");

  constexpr int kGets = 5;
  GetSample blocking[kGets], async_mode[kGets];
  double blocking_compile_ms = 0;

  {
    vcuda::Context ctx(vgpu::TeslaC1060());
    vcuda::TieredLoader tiered(&ctx, kKernel, /*hot_threshold=*/3);
    for (int i = 0; i < kGets; ++i) blocking[i] = TimedGet(tiered, HeavyOpts());
    blocking_compile_ms = ctx.cache_stats().compile_millis_total;
  }
  {
    vcuda::Context ctx(vgpu::TeslaC1060());
    serve::CompileExecutor executor({.workers = 2, .max_queue = 16});
    ctx.set_async_service(&executor);
    vcuda::TieredLoader tiered(&ctx, kKernel, /*hot_threshold=*/3);
    for (int i = 0; i < kGets; ++i) {
      if (i == kGets - 1) executor.Drain();  // let the background build land
      async_mode[i] = TimedGet(tiered, HeavyOpts());
    }
    executor.Shutdown();
  }

  Table table({"request", "blocking ms", "async ms", "blocking build", "async build"});
  for (int i = 0; i < kGets; ++i) {
    table.AddRow({Format("get %d%s", i + 1, i == 2 ? " (hot)" : ""),
                  Format("%9.3f", blocking[i].wall_ms), Format("%9.3f", async_mode[i].wall_ms),
                  blocking[i].specialized ? "specialized" : "RE",
                  async_mode[i].specialized ? "specialized" : "RE"});
  }
  table.WriteAscii(std::cout);

  // The async hot request must complete in RE-serve time, not compile time:
  // well under the measured specialized-build compile.
  const double stall_cutoff_ms = blocking_compile_ms / 4;
  std::cout << Format("\n  specialized-build compile: %.1f ms; async 'get 3' took %.3f ms "
                      "(cutoff %.1f ms)\n",
                      blocking_compile_ms, async_mode[2].wall_ms, stall_cutoff_ms);
  if (!blocking[2].specialized) {
    std::cout << "  FAIL: blocking promotion did not specialize at the threshold\n";
    ++failures;
  }
  if (async_mode[2].specialized || async_mode[2].wall_ms >= stall_cutoff_ms) {
    std::cout << "  FAIL: async promotion stalled the triggering request\n";
    ++failures;
  } else if (!async_mode[kGets - 1].specialized) {
    std::cout << "  FAIL: background promotion never swapped in\n";
    ++failures;
  } else {
    std::cout << "  OK: promotion moved off the launch path (RE served while compiling)\n";
  }

  // ------------------------------------------------------------------
  // (2) 16 threads, one cold specialization: single-flight coalescing
  // ------------------------------------------------------------------
  bench::Note("");
  bench::Note("16 threads request the same cold specialization concurrently:");

  {
    vcuda::Context ctx(vgpu::TeslaC1060());
    serve::CompileExecutor executor({.workers = 4, .max_queue = 64});

    constexpr int kThreads = 16;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    WallTimer t;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&] {
        vcuda::CompileRequest req;
        req.source = kKernel;
        req.opts = HeavyOpts();
        vcuda::SubmitResult r = executor.SubmitLoad(ctx, req);
        if (r.ok()) r.future.get();
      });
    }
    for (auto& th : threads) th.join();
    double wall_ms = t.ElapsedMillis();
    executor.Drain();

    serve::ServeStats s = executor.stats();
    std::cout << serve::RenderServiceReport(s, ctx.cache_stats());
    std::cout << Format("  %d threads served in %.1f ms; compiles run: %zu\n", kThreads, wall_ms,
                        ctx.cache_stats().misses);
    if (s.coalesced == kThreads - 1 && ctx.cache_stats().misses == 1) {
      std::cout << Format("  OK: exactly 1 compile, %llu requests coalesced onto it\n",
                          static_cast<unsigned long long>(s.coalesced));
    } else {
      std::cout << "  FAIL: expected 1 compile and 15 coalesced requests\n";
      ++failures;
    }
    executor.Shutdown();
  }

  return failures ? 1 : 0;
}
