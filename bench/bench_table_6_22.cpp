// Table 6.22: percentage of peak performance for PIV with various FIXED data
// register counts and thread counts (register-blocked kernel), across the
// mask-size problem set.
#include <iostream>
#include <map>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_table_6_22", argc, argv);
  using namespace kspec;
  using namespace kspec::apps::piv;
  bench::Banner("Table 6.22", "PIV: % of per-problem peak with fixed rb/thread configs");

  const std::vector<int> rb_opts = {1, 2, 4, 8};
  const std::vector<int> thread_opts = {32, 64, 128};

  for (const auto& profile : bench::Devices()) {
    std::cout << "\n--- " << profile.name << " ---\n";
    std::vector<Problem> problems = MaskSizeSet();

    std::map<std::string, std::map<std::string, double>> ms;
    std::map<std::string, double> peak;
    for (const Problem& p : problems) peak[p.name] = 1e300;
    for (int rb : rb_opts) {
      for (int threads : thread_opts) {
        std::string cfg_name = Format("rb %d thr %3d", rb, threads);
        for (const Problem& p : problems) {
          if (rb * threads < p.mask_area()) continue;  // cannot cover the mask
          vcuda::Context ctx(profile);
          PivConfig cfg;
          cfg.variant = Variant::kRegBlock;
          cfg.threads = threads;
          cfg.rb = rb;
          cfg.specialize = true;
          try {
            PivGpuResult r = GpuPiv(ctx, p, cfg);
            ms[cfg_name][p.name] = r.stats.sim_millis;
            peak[p.name] = std::min(peak[p.name], r.stats.sim_millis);
          } catch (const Error&) {
          }
        }
      }
    }

    std::vector<std::string> header = {"fixed config"};
    for (const Problem& p : problems) header.push_back(p.name + " %peak");
    Table table(header);
    for (const auto& [cfg_name, per_problem] : ms) {
      auto row = table.Row();
      row << cfg_name;
      for (const Problem& p : problems) {
        auto it = per_problem.find(p.name);
        if (it == per_problem.end()) {
          row << "n/a";
        } else {
          row << 100.0 * peak[p.name] / it->second;
        }
      }
    }
    table.WriteAscii(std::cout);
  }
  std::cout << "\nShape check: configurations that can even run every problem trail the\n"
               "per-problem peak — fixed register blocking cannot fit all mask sizes.\n";
  return 0;
}
