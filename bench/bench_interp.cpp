// Execution-engine benchmark: wall-clock time of the interpreter across the
// four applications, serial vs the parallel block engine at 2/4/8 workers.
//
// Every parallel run is checked against the serial reference: application
// outputs must match byte-for-byte and LaunchStats must be bit-identical
// (the determinism contract of DESIGN.md section 8). Simulated milliseconds
// are invariant by construction — the speedup column is *host* wall time,
// i.e. how much faster the simulation itself runs, which is the number that
// matters for iterating on experiments. Results land in the --json output
// (aggregate with tools/bench_report).
#include <cstring>

#include "apps/backproj/gpu.hpp"
#include "apps/matching/gpu.hpp"
#include "apps/piv/gpu.hpp"
#include "apps/rowfilter/rowfilter.hpp"
#include "bench_common.hpp"
#include "vgpu/interp.hpp"

namespace {

using namespace kspec;

// One application's benchmark harness: runs the app under the current
// execution policy and returns its outputs (as raw bytes) plus launch stats.
struct AppRun {
  std::vector<unsigned char> output;
  vgpu::LaunchStats stats;
  double sim_millis = 0;
};

template <typename T>
std::vector<unsigned char> Bytes(const std::vector<T>& v) {
  std::vector<unsigned char> out(v.size() * sizeof(T));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

struct AppCase {
  std::string name;
  std::function<AppRun()> run;
};

std::vector<AppCase> Cases() {
  std::vector<AppCase> cases;

  cases.push_back({"piv", [] {
    static const apps::piv::Problem p = apps::piv::Generate("bench", 192, 16, 4, 12, 11);
    vcuda::Context ctx(vgpu::TeslaC2070());
    apps::piv::PivConfig cfg;
    cfg.variant = apps::piv::Variant::kWarpSpec;
    cfg.threads = 64;
    apps::piv::PivGpuResult r = GpuPiv(ctx, p, cfg);
    AppRun out;
    out.output = Bytes(r.field.best_offset);
    auto scores = Bytes(r.field.best_score);
    out.output.insert(out.output.end(), scores.begin(), scores.end());
    out.stats = r.stats;
    out.sim_millis = r.stats.sim_millis;
    return out;
  }});

  cases.push_back({"rowfilter", [] {
    static const apps::rowfilter::Image img = apps::rowfilter::MakeTestImage(512, 192, 7);
    vcuda::Context ctx(vgpu::TeslaC2070());
    apps::rowfilter::RowFilterConfig cfg;
    apps::rowfilter::RowFilterResult r =
        GpuRowFilter(ctx, img, apps::rowfilter::BoxFilter(9), cfg);
    AppRun out;
    out.output = Bytes(r.out);
    out.stats = r.stats;
    out.sim_millis = r.sim_millis;
    return out;
  }});

  cases.push_back({"matching", [] {
    static const apps::matching::Problem p = apps::matching::PatientSets().front();
    vcuda::Context ctx(vgpu::TeslaC2070());
    apps::matching::MatcherConfig cfg;
    apps::matching::MatchResult r = GpuMatch(ctx, p, cfg);
    AppRun out;
    out.output = Bytes(r.scores);
    // The matcher is a multi-launch pipeline: compare the final stage's
    // stats plus the accumulated simulated time.
    out.stats = r.breakdown.stages.back().launch;
    out.sim_millis = r.sim_millis;
    return out;
  }});

  cases.push_back({"backproj", [] {
    static const apps::backproj::Problem p = apps::backproj::BenchmarkSets().front();
    vcuda::Context ctx(vgpu::TeslaC2070());
    apps::backproj::BackprojConfig cfg;
    apps::backproj::BackprojGpuResult r = GpuBackproject(ctx, p, cfg);
    AppRun out;
    out.output = Bytes(r.volume);
    out.stats = r.stats;
    out.sim_millis = r.sim_millis;
    return out;
  }});

  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kspec;
  bench::Session session("bench_interp", argc, argv);

  bench::Banner("Execution engine", "interpreter wall time, serial vs parallel workers");
  bench::Note("outputs and LaunchStats are checked identical across modes");
  std::cout << Format("  %-12s %10s %12s %12s %9s\n", "app", "mode", "wall_ms", "sim_ms",
                      "speedup");

  const unsigned worker_counts[] = {2, 4, 8};
  for (const auto& app : Cases()) {
    // Serial reference: correctness baseline and speedup denominator.
    vgpu::ExecPolicy serial{vgpu::ExecMode::kSerial, 1};
    vgpu::SetExecPolicyOverride(&serial);
    const AppRun ref = app.run();
    const double serial_ms = session.TimeMs([&] { app.run(); });
    std::cout << Format("  %-12s %10s %12.1f %12.2f %9s\n", app.name.c_str(), "serial",
                        serial_ms, ref.sim_millis, "1.00x");
    session.Record(app.name + "/serial", serial_ms, ref.sim_millis, 1.0, 1);

    for (unsigned workers : worker_counts) {
      vgpu::ExecPolicy par{vgpu::ExecMode::kParallel, workers};
      vgpu::SetExecPolicyOverride(&par);
      const AppRun got = app.run();
      if (got.output != ref.output) {
        std::cerr << "FAIL: " << app.name << " output differs with " << workers
                  << " workers\n";
        return 1;
      }
      if (!vgpu::StatsBitIdentical(got.stats, ref.stats) ||
          got.sim_millis != ref.sim_millis) {
        std::cerr << "FAIL: " << app.name << " LaunchStats differ with " << workers
                  << " workers\n";
        return 1;
      }
      const double ms = session.TimeMs([&] { app.run(); });
      const double speedup = ms > 0 ? serial_ms / ms : 0;
      std::cout << Format("  %-12s %9uw %12.1f %12.2f %8.2fx\n", app.name.c_str(), workers,
                          ms, got.sim_millis, speedup);
      session.Record(app.name + Format("/w%u", workers), ms, got.sim_millis, speedup,
                     workers);
    }
    vgpu::SetExecPolicyOverride(nullptr);
  }
  return 0;
}
