// Table 6.17: PIV performance for the varying search-offset benchmark set
// (Table 6.5 problems), including optimal register blocking and threads.
#include "piv_sweep_table.hpp"

int main(int argc, char** argv) {
  return kspec::bench::PivSweepTableMain(
      "Table 6.17", "PIV: impact of search offset count (Table 6.5 problem set)",
      kspec::apps::piv::SearchSizeSet(),
      "bench_table_6_17", argc, argv);
}
