// Table 6.13: template matching partial sums — performance and optimal
// configuration characteristics for the tiled summation pipeline, run-time
// evaluated (RE) vs specialized kernel (SK), per data set and device, with
// the per-thread register counts the dissertation tracks.
#include <iostream>

#include "apps/matching/gpu.hpp"
#include "apps/matching/problem.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_table_6_13", argc, argv);
  using namespace kspec;
  using namespace kspec::apps::matching;
  bench::Banner("Table 6.13",
                "Template matching tiled summation: RE vs SK, optimal configurations");
  bench::Note("RE = run-time evaluated, SK = specialized kernel (paper's terminology).");

  Table table({"device", "data set", "variant", "best tile", "threads", "num regs",
               "sim ms", "SK speedup"});

  for (const auto& profile : bench::Devices()) {
    for (const Problem& p : PatientSets()) {
      vcuda::Context ctx(profile);
      double ms[2] = {1e300, 1e300};
      std::string tile_desc[2];
      int threads_best[2] = {0, 0};
      int regs[2] = {0, 0};
      for (int variant = 0; variant < 2; ++variant) {
        bool specialize = variant == 1;
        for (int tile : {4, 8, 16}) {
          for (int threads : {64, 128, 256}) {
            if (tile > p.tpl_h || tile > p.tpl_w) continue;
            MatcherConfig cfg;
            cfg.tile_h = tile;
            cfg.tile_w = tile;
            cfg.threads = threads;
            cfg.specialize = specialize;
            try {
              MatchResult r = GpuMatch(ctx, p, cfg);
              if (r.sim_millis < ms[variant]) {
                ms[variant] = r.sim_millis;
                tile_desc[variant] = Format("%dx%d", tile, tile);
                threads_best[variant] = threads;
                regs[variant] = r.breakdown.stages[0].reg_count;  // numerator stage
              }
            } catch (const Error&) {
            }
          }
        }
      }
      table.Row() << profile.name << p.name << "RE" << tile_desc[0] << threads_best[0]
                  << regs[0] << ms[0] << "";
      table.Row() << profile.name << p.name << "SK" << tile_desc[1] << threads_best[1]
                  << regs[1] << ms[1] << (ms[0] / ms[1]);
    }
  }
  table.WriteAscii(std::cout);
  std::cout << "\nShape check: SK beats RE on every data set and device; SK uses fewer (or\n"
               "equal) numerator-stage registers because folded parameters never occupy one.\n";
  return 0;
}
