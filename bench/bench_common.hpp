// Shared helpers for the per-table benchmark binaries.
//
// Every bench prints an ASCII table shaped like the corresponding table (or
// figure) in the dissertation's Chapter 6 and, where relevant, the expected
// qualitative shape being reproduced. Absolute numbers are simulated-device
// milliseconds (the vgpu cost model) and are deterministic across runs.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "apps/piv/gpu.hpp"
#include "support/csv.hpp"
#include "support/str.hpp"
#include "support/timer.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/device.hpp"

namespace kspec::bench {

// One measurement row of a bench session's machine-readable output.
struct BenchRecord {
  std::string name;
  double wall_ms = 0;   // host wall-clock time
  double sim_ms = 0;    // simulated-device milliseconds (0 when n/a)
  double speedup = 0;   // vs the bench's own baseline (0 when n/a)
  unsigned threads = 0; // host worker threads used (0 when n/a)
  std::string tier;     // execution tier that served ("" when n/a)
};

// Session: common command-line handling for every bench binary.
//
//   --json <path>   write the recorded measurements as JSON on exit
//   --reps N        timed repetitions for TimeMs (default 3)
//   --warmup N      untimed warmup runs for TimeMs (default 1)
//
// Records accumulate via Record(); the destructor writes the JSON file (if
// asked). Only explicitly recorded rows are emitted — the session's own wall
// time is process overhead (compiles, warmups, table printing), not a
// measurement, and would read as a bogus datapoint next to real rows.
// The ASCII tables benches print are unaffected — the JSON is an additional,
// machine-readable channel for tools/bench_report.
class Session {
 public:
  Session(std::string bench_name, int argc, char** argv) : bench_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
      if (a == "--json" && v) {
        json_path_ = v;
        ++i;
      } else if (a == "--reps" && v) {
        reps_ = std::max(1, std::atoi(v));
        ++i;
      } else if (a == "--warmup" && v) {
        warmup_ = std::max(0, std::atoi(v));
        ++i;
      }
    }
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  ~Session() {
    if (json_path_.empty()) return;
    std::ofstream out(json_path_);
    if (!out) {
      std::cerr << "bench: cannot write " << json_path_ << "\n";
      return;
    }
    out << "{\n  \"bench\": \"" << Escape(bench_) << "\",\n  \"records\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      out << "    {\"name\": \"" << Escape(r.name) << "\", \"wall_ms\": " << r.wall_ms
          << ", \"sim_ms\": " << r.sim_ms << ", \"speedup\": " << r.speedup
          << ", \"threads\": " << r.threads;
      if (!r.tier.empty()) out << ", \"tier\": \"" << Escape(r.tier) << "\"";
      out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

  int reps() const { return reps_; }
  int warmup() const { return warmup_; }

  // Runs fn `warmup` times untimed, then `reps` times timed; returns the
  // minimum wall-clock milliseconds (the standard noise-resistant estimator).
  double TimeMs(const std::function<void()>& fn) const {
    for (int i = 0; i < warmup_; ++i) fn();
    double best = 1e300;
    for (int i = 0; i < reps_; ++i) {
      WallTimer t;
      fn();
      best = std::min(best, t.ElapsedMillis());
    }
    return best;
  }

  void Record(std::string name, double wall_ms, double sim_ms = 0, double speedup = 0,
              unsigned threads = 0, std::string tier = "") {
    records_.push_back({std::move(name), wall_ms, sim_ms, speedup, threads, std::move(tier)});
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::string json_path_;
  int reps_ = 3;
  int warmup_ = 1;
  std::vector<BenchRecord> records_;
};

inline void Banner(const std::string& id, const std::string& caption) {
  std::cout << "\n============================================================\n"
            << id << " — " << caption << "\n"
            << "============================================================\n";
}

inline void Note(const std::string& text) { std::cout << "  " << text << "\n"; }

inline std::vector<vgpu::DeviceProfile> Devices() {
  return {vgpu::TeslaC1060(), vgpu::TeslaC2070()};
}

// Result of a PIV implementation-parameter sweep: the best (threads, rb)
// configuration by simulated time.
struct PivBest {
  apps::piv::PivGpuResult result;
  int threads = 0;
  int rb = 0;
};

// Sweeps thread counts (and register blocking for the regblock variant) and
// returns the fastest configuration — the "optimal configuration" columns of
// Tables 6.15-6.18.
inline PivBest SweepPiv(vcuda::Context& ctx, const apps::piv::Problem& p,
                        apps::piv::Variant variant, bool specialize,
                        const std::vector<int>& thread_options = {32, 64, 128, 256},
                        const std::vector<int>& rb_options = {0, 1, 2, 4, 8}) {
  using apps::piv::PivConfig;
  PivBest best;
  double best_ms = 1e300;
  for (int threads : thread_options) {
    std::vector<int> rbs =
        variant == apps::piv::Variant::kRegBlock ? rb_options : std::vector<int>{0};
    for (int rb : rbs) {
      if (rb > 0 && rb * threads < p.mask_area()) continue;  // cannot cover the mask
      PivConfig cfg;
      cfg.variant = variant;
      cfg.threads = threads;
      cfg.specialize = specialize;
      cfg.rb = rb;
      try {
        apps::piv::PivGpuResult r = GpuPiv(ctx, p, cfg);
        if (r.stats.sim_millis < best_ms) {
          best_ms = r.stats.sim_millis;
          best.result = std::move(r);
          best.threads = threads;
          best.rb = rb == 0 ? static_cast<int>((p.mask_area() + threads - 1) / threads) : rb;
        }
      } catch (const Error&) {
        // Configuration not launchable on this device (occupancy/limits);
        // real sweeps skip those too.
      }
    }
  }
  return best;
}

}  // namespace kspec::bench
