// Shared helpers for the per-table benchmark binaries.
//
// Every bench prints an ASCII table shaped like the corresponding table (or
// figure) in the dissertation's Chapter 6 and, where relevant, the expected
// qualitative shape being reproduced. Absolute numbers are simulated-device
// milliseconds (the vgpu cost model) and are deterministic across runs.
#pragma once

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "apps/piv/gpu.hpp"
#include "support/csv.hpp"
#include "support/str.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/device.hpp"

namespace kspec::bench {

inline void Banner(const std::string& id, const std::string& caption) {
  std::cout << "\n============================================================\n"
            << id << " — " << caption << "\n"
            << "============================================================\n";
}

inline void Note(const std::string& text) { std::cout << "  " << text << "\n"; }

inline std::vector<vgpu::DeviceProfile> Devices() {
  return {vgpu::TeslaC1060(), vgpu::TeslaC2070()};
}

// Result of a PIV implementation-parameter sweep: the best (threads, rb)
// configuration by simulated time.
struct PivBest {
  apps::piv::PivGpuResult result;
  int threads = 0;
  int rb = 0;
};

// Sweeps thread counts (and register blocking for the regblock variant) and
// returns the fastest configuration — the "optimal configuration" columns of
// Tables 6.15-6.18.
inline PivBest SweepPiv(vcuda::Context& ctx, const apps::piv::Problem& p,
                        apps::piv::Variant variant, bool specialize,
                        const std::vector<int>& thread_options = {32, 64, 128, 256},
                        const std::vector<int>& rb_options = {0, 1, 2, 4, 8}) {
  using apps::piv::PivConfig;
  PivBest best;
  double best_ms = 1e300;
  for (int threads : thread_options) {
    std::vector<int> rbs =
        variant == apps::piv::Variant::kRegBlock ? rb_options : std::vector<int>{0};
    for (int rb : rbs) {
      if (rb > 0 && rb * threads < p.mask_area()) continue;  // cannot cover the mask
      PivConfig cfg;
      cfg.variant = variant;
      cfg.threads = threads;
      cfg.specialize = specialize;
      cfg.rb = rb;
      try {
        apps::piv::PivGpuResult r = GpuPiv(ctx, p, cfg);
        if (r.stats.sim_millis < best_ms) {
          best_ms = r.stats.sim_millis;
          best.result = std::move(r);
          best.threads = threads;
          best.rb = rb == 0 ? static_cast<int>((p.mask_area() + threads - 1) / threads) : rb;
        }
      } catch (const Error&) {
        // Configuration not launchable on this device (occupancy/limits);
        // real sweeps skip those too.
      }
    }
  }
  return best;
}

}  // namespace kspec::bench
