// Table 6.12: cone-beam backprojection — OpenMP CPU implementation (four
// threads) vs the best-performing configuration on both GPUs.
#include <iostream>

#include "apps/backproj/cpu_ref.hpp"
#include "apps/cpu_model.hpp"
#include "apps/backproj/gpu.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_table_6_12", argc, argv);
  using namespace kspec;
  using namespace kspec::apps::backproj;
  bench::Banner("Table 6.12", "Backprojection: OpenMP CPU (4 threads) vs both GPUs");

  Table table({"data set", "voxels", "angles", "cpu wall ms", "cpu model ms", "VC1060 ms",
               "VC1060 cfg", "VC2070 ms", "VC2070 cfg", "best speedup"});
  apps::CpuModel cpu_model;

  for (const Problem& p : BenchmarkSets()) {
    CpuResult cpu = CpuBackproject(p, 4);
    std::vector<double> gpu_ms(2, 1e300);
    std::vector<std::string> cfg_desc(2);
    int di = 0;
    for (const auto& profile : bench::Devices()) {
      vcuda::Context ctx(profile);
      for (int threads : {32, 64, 128, 256}) {
        for (int zpt : {1, 2, 4}) {
          if (p.geo.vol_z % zpt != 0) continue;
          BackprojConfig cfg;
          cfg.threads = threads;
          cfg.zpt = zpt;
          cfg.specialize = true;
          try {
            BackprojGpuResult r = GpuBackproject(ctx, p, cfg);
            if (r.sim_millis < gpu_ms[di]) {
              gpu_ms[di] = r.sim_millis;
              cfg_desc[di] = Format("t%d z%d", threads, zpt);
            }
          } catch (const Error&) {
          }
        }
      }
      ++di;
    }
    double model_ms = cpu_model.Millis(apps::BackprojFlops(p.voxel_count(), p.geo.n_angles), 4);
    table.Row() << p.name << static_cast<std::int64_t>(p.voxel_count()) << p.geo.n_angles
                << cpu.wall_millis << model_ms << gpu_ms[0] << cfg_desc[0] << gpu_ms[1]
                << cfg_desc[1] << (cpu.wall_millis / std::min(gpu_ms[0], gpu_ms[1]));
  }
  table.WriteAscii(std::cout);
  std::cout << "\nShape check: both GPUs beat the 4-thread CPU; the optimal voxels-per-thread\n"
               "and thread-count configuration varies with the data set and device.\n";
  return 0;
}
