// bench_fleet: cache-affinity routing vs seeded-random routing on a mixed
// 4-shard fleet (2x VC1060 + 2x VC2070) under >= 1000 synthetic clients whose
// specialization keys follow a Zipf distribution — the standard model of
// serving traffic, where a few hot kernels dominate and a long tail stays
// cold.
//
// The claim under test is the scheduler's reason to exist: on a fleet, the
// specialization caches make placement matter. Affinity routing concentrates
// each key where its specialized build already lives, so the fleet compiles
// each key roughly once; random routing re-pays the compile on every shard a
// key happens to land on and serves more launches from the slower RE build.
// The headline comparison is p99 time-to-result (admission -> completion) and
// total specialized-build compiles.
//
//   --json <path>  machine-readable records for tools/bench_report
//                  (aggregate into BENCH_fleet.json)
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sched/fleet.hpp"
#include "vcuda/device_buffer.hpp"
#include "vgpu/device.hpp"

namespace kspec {
namespace {

constexpr const char* kKernel = R"(
#ifndef N
#define N n
#endif
__kernel void f(float* out, int n) {
  float acc = 0.0f;
  for (int i = 0; i < N; i++) { acc += 1.0f; }
  out[threadIdx.x] = acc;
}
)";

constexpr int kClients = 1200;  // >= 1000 synthetic clients
constexpr int kKeys = 48;       // distinct specializations in the traffic
constexpr double kZipfS = 1.1;  // classic web-traffic skew
constexpr std::uint64_t kTrafficSeed = 0x5eed5eed5eed5eedull;

std::uint64_t Xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

// Key sequence drawn from Zipf(kZipfS) over kKeys keys: key rank r has weight
// 1/(r+1)^s. Deterministic per seed, identical for both routing arms.
std::vector<int> ZipfTraffic() {
  std::vector<double> cdf(kKeys);
  double total = 0;
  for (int r = 0; r < kKeys; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), kZipfS);
    cdf[r] = total;
  }
  std::uint64_t s = kTrafficSeed;
  std::vector<int> keys;
  keys.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    const double u = total * (static_cast<double>(Xorshift(s) >> 11) /
                              static_cast<double>(1ull << 53));
    keys.push_back(static_cast<int>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin()));
  }
  return keys;
}

// One client's launch: key k runs the N = 16 + k specialization.
sched::LaunchRequest RequestFor(int key) {
  const int n = 16 + key;
  sched::LaunchRequest req;
  req.source = kKernel;
  req.opts.defines["N"] = std::to_string(n);
  req.kernel = "f";
  req.grid = vgpu::Dim3(1);
  req.block = vgpu::Dim3(32);
  req.prepare = [n](vcuda::Context& ctx, std::vector<vcuda::DeviceBuffer>& scratch) {
    scratch.emplace_back(ctx, 32 * sizeof(float));
    vcuda::ArgPack args;
    args.Ptr(scratch.back().get()).Int(n);
    return args;
  };
  return req;
}

struct ArmResult {
  double wall_ms = 0;        // submission of the first to completion of the last
  double throughput = 0;     // completed clients per wall second
  double p50_ms = 0;         // median time-to-result
  double p99_ms = 0;         // tail time-to-result
  double affinity_rate = 0;  // dispatches that hit a resident shard
  double sk_rate = 0;        // launches served by the specialized build
  std::uint64_t compiles = 0;  // module-cache misses summed over the shards
  double sim_ms = 0;           // simulated device time summed over the shards
};

double Percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  const std::size_t i =
      std::min(v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  return v[i];
}

ArmResult RunArm(sched::Routing routing, const std::vector<int>& traffic) {
  sched::FleetOptions opts;
  opts.routing = routing;
  opts.max_queue = kClients + 64;
  sched::FleetScheduler fleet(
      {vgpu::TeslaC1060(), vgpu::TeslaC2070(), vgpu::TeslaC2070(), vgpu::TeslaC1060()},
      opts);

  WallTimer timer;
  std::vector<std::shared_future<sched::LaunchResult>> futures;
  futures.reserve(traffic.size());
  for (int key : traffic) futures.push_back(fleet.Submit(RequestFor(key)).result);
  fleet.Drain();
  const double wall = timer.ElapsedMillis();

  ArmResult arm;
  arm.wall_ms = wall;
  std::vector<double> totals;
  totals.reserve(futures.size());
  std::uint64_t sk = 0;
  for (auto& f : futures) {
    const sched::LaunchResult r = f.get();
    totals.push_back(r.total_millis);
    sk += r.specialized ? 1 : 0;
  }
  arm.throughput = 1000.0 * static_cast<double>(totals.size()) / wall;
  arm.p50_ms = Percentile(totals, 0.50);
  arm.p99_ms = Percentile(totals, 0.99);
  const sched::FleetStats s = fleet.stats();
  arm.affinity_rate =
      static_cast<double>(s.affinity_hits) / static_cast<double>(s.dispatched);
  arm.sk_rate = static_cast<double>(sk) / static_cast<double>(totals.size());
  for (std::size_t i = 0; i < fleet.shard_count(); ++i) {
    arm.compiles += fleet.shard(i).ctx().cache_stats().misses;
    arm.sim_ms += fleet.shard_stats(i).sim_millis;
  }
  return arm;
}

}  // namespace
}  // namespace kspec

int main(int argc, char** argv) {
  using namespace kspec;
  bench::Session session("bench_fleet", argc, argv);

  bench::Banner("Fleet", "affinity vs random routing, 4 mixed shards, Zipf traffic");
  bench::Note(Format("%d clients, %d specializations, Zipf s=%.1f, fleet = "
                     "2x VC1060 + 2x VC2070",
                     kClients, kKeys, kZipfS));
  bench::Note("expected shape: affinity compiles each key ~once fleet-wide and");
  bench::Note("serves more launches specialized, so its p99 time-to-result beats");
  bench::Note("random routing, which re-compiles hot keys on every shard they");
  bench::Note("land on.");

  const std::vector<int> traffic = ZipfTraffic();
  const ArmResult affinity = RunArm(sched::Routing::kAffinity, traffic);
  const ArmResult random = RunArm(sched::Routing::kRandom, traffic);

  std::printf("\n  %-10s %10s %12s %9s %9s %9s %7s %9s\n", "routing", "wall ms",
              "req/s", "p50 ms", "p99 ms", "aff-hit", "sk", "compiles");
  auto row = [](const char* name, const ArmResult& a) {
    std::printf("  %-10s %10.1f %12.0f %9.2f %9.2f %8.1f%% %6.1f%% %9llu\n", name,
                a.wall_ms, a.throughput, a.p50_ms, a.p99_ms, 100.0 * a.affinity_rate,
                100.0 * a.sk_rate, static_cast<unsigned long long>(a.compiles));
  };
  row("affinity", affinity);
  row("random", random);

  const double p99_speedup = random.p99_ms / affinity.p99_ms;
  bench::Note(Format("affinity p99 speedup over random: %.2fx (%llu vs %llu compiles)",
                     p99_speedup, static_cast<unsigned long long>(affinity.compiles),
                     static_cast<unsigned long long>(random.compiles)));
  if (p99_speedup <= 1.0) {
    bench::Note("UNEXPECTED: affinity did not beat random on p99 time-to-result");
  }

  auto record = [&session](const std::string& arm, const ArmResult& a) {
    session.Record("fleet/" + arm + "/wall_ms", a.wall_ms, a.sim_ms);
    session.Record("fleet/" + arm + "/throughput_per_s", a.throughput);
    session.Record("fleet/" + arm + "/p50_ms", a.p50_ms);
    session.Record("fleet/" + arm + "/p99_ms", a.p99_ms);
    session.Record("fleet/" + arm + "/affinity_hit_rate", a.affinity_rate);
    session.Record("fleet/" + arm + "/specialized_rate", a.sk_rate);
    session.Record("fleet/" + arm + "/compiles", static_cast<double>(a.compiles));
  };
  record("affinity", affinity);
  record("random", random);
  session.Record("fleet/p99_speedup_affinity_vs_random", p99_speedup, 0, p99_speedup);
  return 0;
}
