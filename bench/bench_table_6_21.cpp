// Table 6.21: percentage of peak performance for template matching with
// various FIXED main tile sizes and thread counts — the adaptability
// argument: a configuration hard-coded ahead of time (as non-specialized
// CUDA practice requires) leaves performance behind on other problems.
#include <iostream>
#include <map>

#include "apps/matching/gpu.hpp"
#include "apps/matching/problem.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_table_6_21", argc, argv);
  using namespace kspec;
  using namespace kspec::apps::matching;
  bench::Banner("Table 6.21",
                "Template matching: % of per-problem peak with fixed tile/thread configs");

  const std::vector<int> tiles = {4, 8, 16};
  const std::vector<int> threads_opts = {64, 128, 256};

  for (const auto& profile : bench::Devices()) {
    std::cout << "\n--- " << profile.name << " ---\n";
    std::vector<Problem> problems = PatientSets();

    // All runs, then per-problem peaks.
    std::map<std::string, std::map<std::string, double>> ms;  // cfg -> problem -> ms
    std::map<std::string, double> peak;
    for (const Problem& p : problems) peak[p.name] = 1e300;
    for (int tile : tiles) {
      for (int threads : threads_opts) {
        std::string cfg_name = Format("tile %2dx%-2d thr %3d", tile, tile, threads);
        for (const Problem& p : problems) {
          if (tile > p.tpl_h || tile > p.tpl_w) continue;
          vcuda::Context ctx(profile);
          MatcherConfig cfg;
          cfg.tile_h = tile;
          cfg.tile_w = tile;
          cfg.threads = threads;
          cfg.specialize = true;
          try {
            MatchResult r = GpuMatch(ctx, p, cfg);
            ms[cfg_name][p.name] = r.sim_millis;
            peak[p.name] = std::min(peak[p.name], r.sim_millis);
          } catch (const Error&) {
          }
        }
      }
    }

    std::vector<std::string> header = {"fixed config"};
    for (const Problem& p : problems) header.push_back(p.name + " %peak");
    header.push_back("worst %");
    Table table(header);
    for (const auto& [cfg_name, per_problem] : ms) {
      auto row = table.Row();
      row << cfg_name;
      double worst = 100.0;
      for (const Problem& p : problems) {
        auto it = per_problem.find(p.name);
        if (it == per_problem.end()) {
          row << "n/a";
          worst = 0.0;
          continue;
        }
        double pct = 100.0 * peak[p.name] / it->second;
        worst = std::min(worst, pct);
        row << pct;
      }
      row << worst;
    }
    table.WriteAscii(std::cout);
  }
  std::cout << "\nShape check: no fixed configuration reaches 100% on every data set — the\n"
               "motivation for recompiling with per-problem parameters at run time.\n";
  return 0;
}
