// bench_netd: specialization-as-a-service vs per-process compilation under
// >= 512 concurrent synthetic clients whose keys follow a Zipf distribution.
//
// The daemon arm models a warm machine: one in-process kspecd owns every
// compile, clients take the client fast path (read the shared artifact store
// directly) and fall back to one RPC round trip when the artifact is not
// published yet. Cross-process single-flight means the fleet pays each
// distinct specialization exactly once — the bench *asserts* that
// (daemon compiled count == distinct keys in the traffic) and fails loudly if
// the invariant does not hold. The per-process arm is the world without the
// service: every client is its own process with its own cold cache and
// compiles its key itself.
//
// The headline comparison is p99 time-to-specialized-binary (request issued
// -> validated .kmod in hand) and total compiles across the fleet.
//
//   --json <path>  machine-readable records for tools/bench_report
//                  (aggregate into BENCH_netd.json)
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "kcc/cache_key.hpp"
#include "kcc/serialize.hpp"
#include "netd/artifact_store.hpp"
#include "netd/daemon.hpp"
#include "netd/protocol.hpp"
#include "support/temp_dir.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/device.hpp"

namespace kspec {
namespace {

namespace fs = std::filesystem;

constexpr const char* kKernel = R"(
#ifndef N
#define N n
#endif
__kernel void f(float* out, int n) {
  float acc = 0.0f;
  for (int i = 0; i < N; i++) { acc += 1.0f; }
  out[threadIdx.x] = acc;
}
)";

constexpr int kClients = 512;   // >= 512 concurrent synthetic clients
constexpr int kKeys = 48;       // distinct specializations in the traffic
constexpr double kZipfS = 1.1;  // classic web-traffic skew
constexpr std::uint64_t kTrafficSeed = 0x5eed5eed5eed5eedull;

std::uint64_t Xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

// Key sequence drawn from Zipf(kZipfS) over kKeys keys: key rank r has weight
// 1/(r+1)^s. Deterministic per seed, identical for both arms.
std::vector<int> ZipfTraffic() {
  std::vector<double> cdf(kKeys);
  double total = 0;
  for (int r = 0; r < kKeys; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), kZipfS);
    cdf[r] = total;
  }
  std::uint64_t s = kTrafficSeed;
  std::vector<int> keys;
  keys.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    const double u = total * (static_cast<double>(Xorshift(s) >> 11) /
                              static_cast<double>(1ull << 53));
    keys.push_back(static_cast<int>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin()));
  }
  return keys;
}

// Each key's specialization fully unrolls an N-iteration loop, N in the
// thousands — a deliberately expensive compile (this is the paper's premise:
// run-time specialization costs real time, which is exactly what the daemon
// amortizes fleet-wide). Without this, trivial microsecond compiles would
// make RPC overhead the whole measurement.
kcc::CompileOptions OptsFor(int key) {
  kcc::CompileOptions opts;
  opts.defines["N"] = std::to_string(1500 + 100 * key);
  opts.max_unroll = 1500 + 100 * kKeys;
  return opts;
}

kcc::ModuleCacheKey KeyFor(int key) {
  return kcc::ModuleCacheKey::Make(kKernel, OptsFor(key), vgpu::TeslaC1060().name);
}

// Releases all client threads at once so the arms measure genuine concurrency.
class StartGate {
 public:
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

struct ArmResult {
  double wall_ms = 0;          // gate open -> last client done
  double throughput = 0;       // clients per wall second
  double p50_ms = 0;           // median time-to-specialized-binary
  double p99_ms = 0;           // tail time-to-specialized-binary
  std::uint64_t compiles = 0;  // compiles paid across the whole fleet
  std::uint64_t store_hits = 0;   // clients served straight from the store
  std::uint64_t rpc_fetches = 0;  // clients served over the wire
  std::uint64_t failures = 0;     // clients that did not get a valid artifact
};

double Percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  const std::size_t i =
      std::min(v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  return v[i];
}

// One client in the daemon arm: try the shared store (the no-RPC fast path),
// then one compile RPC. Success = a deserialized artifact whose embedded key
// matches the request.
bool DaemonClient(const std::string& socket_path, netd::ArtifactStore& store,
                  const kcc::ModuleCacheKey& key, bool* via_store) {
  std::vector<std::uint8_t> bytes;
  *via_store = store.LoadBytes(key, &bytes);
  if (!*via_store) {
    const int fd = netd::ConnectUnix(socket_path);
    if (fd < 0) return false;
    netd::SetRecvTimeout(fd, std::chrono::milliseconds(120000));
    netd::CompileReq req;
    req.tenant = "bench";
    req.key_text = key.CanonicalText();
    const bool sent = netd::SendFrame(fd, netd::FrameType::kCompileReq,
                                      netd::EncodeCompileReq(req));
    netd::Frame frame;
    const bool got = sent && netd::RecvFrame(fd, &frame) == netd::RecvStatus::kOk &&
                     frame.type == netd::FrameType::kArtifactResp;
    ::close(fd);
    if (!got) return false;
    bytes = std::move(frame.payload);
  }
  try {
    std::string embedded;
    kcc::Deserialize(bytes, &embedded);
    return embedded == key.CanonicalText();
  } catch (const std::exception&) {
    return false;
  }
}

ArmResult RunDaemonArm(const std::vector<int>& traffic, std::size_t distinct_keys) {
  // Short /tmp path keeps the AF_UNIX socket under its length limit.
  ScopedTempDir scratch("kspec_bench_");
  netd::DaemonOptions opts;
  opts.socket_path = scratch.File("kspecd.sock");
  opts.store_dir = scratch.File("store");
  opts.workers = 4;
  opts.max_queue = kClients;
  opts.tenant_max_inflight = kClients;  // admission control is not under test
  opts.prewarm_top_k = 0;               // cold start: no persisted hot keys
  netd::SpecDaemon daemon(opts);
  daemon.Start();

  // The clients' direct read handle on the shared store (one per machine in
  // production; shared here, its internals are thread-safe).
  netd::ArtifactStore client_store(opts.store_dir);

  StartGate gate;
  std::vector<double> elapsed(traffic.size(), 0.0);
  std::atomic<std::uint64_t> store_hits{0}, rpc_fetches{0}, failures{0};
  std::vector<std::thread> clients;
  clients.reserve(traffic.size());
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    clients.emplace_back([&, i] {
      const kcc::ModuleCacheKey key = KeyFor(traffic[i]);
      gate.Wait();
      WallTimer timer;
      bool via_store = false;
      const bool ok = DaemonClient(opts.socket_path, client_store, key, &via_store);
      elapsed[i] = timer.ElapsedMillis();
      if (!ok) {
        failures.fetch_add(1);
      } else if (via_store) {
        store_hits.fetch_add(1);
      } else {
        rpc_fetches.fetch_add(1);
      }
    });
  }

  WallTimer wall;
  gate.Open();
  for (std::thread& t : clients) t.join();
  const double wall_ms = wall.ElapsedMillis();

  ArmResult arm;
  arm.wall_ms = wall_ms;
  arm.throughput = 1000.0 * static_cast<double>(traffic.size()) / wall_ms;
  arm.p50_ms = Percentile(elapsed, 0.50);
  arm.p99_ms = Percentile(elapsed, 0.99);
  arm.compiles = daemon.daemon_stats().compiled;
  arm.store_hits = store_hits.load();
  arm.rpc_fetches = rpc_fetches.load();
  arm.failures = failures.load();

  // The tentpole invariant: the daemon compiled each distinct key exactly
  // once, fleet-wide, no matter how many clients raced for it.
  if (arm.compiles != distinct_keys) {
    bench::Note(Format("UNEXPECTED: daemon compiled %llu times for %zu distinct keys",
                       static_cast<unsigned long long>(arm.compiles), distinct_keys));
    arm.failures += 1;
  }
  daemon.Stop();
  return arm;
}

ArmResult RunPerProcessArm(const std::vector<int>& traffic) {
  StartGate gate;
  std::vector<double> elapsed(traffic.size(), 0.0);
  std::atomic<std::uint64_t> compiles{0}, failures{0};
  std::vector<std::thread> clients;
  clients.reserve(traffic.size());
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    clients.emplace_back([&, i] {
      gate.Wait();
      WallTimer timer;
      try {
        // Its own process = its own cold cache: the compile is always paid.
        vcuda::Context ctx(vgpu::TeslaC1060(), 1ull << 20);
        ctx.LoadModule(kKernel, OptsFor(traffic[i]));
        compiles.fetch_add(ctx.cache_stats().misses);
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
      elapsed[i] = timer.ElapsedMillis();
    });
  }

  WallTimer wall;
  gate.Open();
  for (std::thread& t : clients) t.join();
  const double wall_ms = wall.ElapsedMillis();

  ArmResult arm;
  arm.wall_ms = wall_ms;
  arm.throughput = 1000.0 * static_cast<double>(traffic.size()) / wall_ms;
  arm.p50_ms = Percentile(elapsed, 0.50);
  arm.p99_ms = Percentile(elapsed, 0.99);
  arm.compiles = compiles.load();
  arm.failures = failures.load();
  return arm;
}

}  // namespace
}  // namespace kspec

int main(int argc, char** argv) {
  using namespace kspec;
  bench::Session session("bench_netd", argc, argv);

  bench::Banner("Netd", "kspecd daemon vs per-process compilation, Zipf traffic");
  bench::Note(Format("%d concurrent clients, %d specializations, Zipf s=%.1f",
                     kClients, kKeys, kZipfS));
  bench::Note("expected shape: the daemon compiles each distinct key exactly once");
  bench::Note("fleet-wide (asserted) and serves everyone else from the shared");
  bench::Note("store or a coalesced flight, so its p99 time-to-specialized-binary");
  bench::Note("and total compiles beat 512 processes each compiling for itself.");

  const std::vector<int> traffic = ZipfTraffic();
  const std::size_t distinct_keys =
      std::set<int>(traffic.begin(), traffic.end()).size();

  const ArmResult daemon = RunDaemonArm(traffic, distinct_keys);
  const ArmResult per_process = RunPerProcessArm(traffic);

  std::printf("\n  %-12s %10s %12s %9s %9s %9s %7s %7s\n", "arm", "wall ms",
              "clients/s", "p50 ms", "p99 ms", "compiles", "store", "rpc");
  auto row = [](const char* name, const ArmResult& a) {
    std::printf("  %-12s %10.1f %12.0f %9.2f %9.2f %9llu %7llu %7llu\n", name,
                a.wall_ms, a.throughput, a.p50_ms, a.p99_ms,
                static_cast<unsigned long long>(a.compiles),
                static_cast<unsigned long long>(a.store_hits),
                static_cast<unsigned long long>(a.rpc_fetches));
  };
  row("daemon", daemon);
  row("per-process", per_process);

  const double p99_speedup = per_process.p99_ms / daemon.p99_ms;
  bench::Note(Format("daemon p99 speedup over per-process: %.2fx (%llu vs %llu compiles, "
                     "%zu distinct keys)",
                     p99_speedup, static_cast<unsigned long long>(daemon.compiles),
                     static_cast<unsigned long long>(per_process.compiles),
                     distinct_keys));
  if (p99_speedup <= 1.0) {
    bench::Note("UNEXPECTED: the daemon did not beat per-process on p99");
  }

  auto record = [&session](const std::string& arm, const ArmResult& a) {
    session.Record("netd/" + arm + "/wall_ms", a.wall_ms);
    session.Record("netd/" + arm + "/throughput_per_s", a.throughput);
    session.Record("netd/" + arm + "/p50_ms", a.p50_ms);
    session.Record("netd/" + arm + "/p99_ms", a.p99_ms);
    session.Record("netd/" + arm + "/compiles", static_cast<double>(a.compiles));
  };
  record("daemon", daemon);
  record("per_process", per_process);
  session.Record("netd/daemon/store_hits", static_cast<double>(daemon.store_hits));
  session.Record("netd/daemon/rpc_fetches", static_cast<double>(daemon.rpc_fetches));
  session.Record("netd/distinct_keys", static_cast<double>(distinct_keys));
  session.Record("netd/p99_speedup_daemon_vs_per_process", p99_speedup, 0, p99_speedup);

  const std::uint64_t total_failures = daemon.failures + per_process.failures;
  if (total_failures != 0) {
    bench::Note(Format("UNEXPECTED: %llu client failures",
                       static_cast<unsigned long long>(total_failures)));
    return 1;
  }
  return 0;
}
