// Table 6.15: PIV performance data for the FPGA benchmark set, including
// optimal register blocking and thread counts.
#include "piv_sweep_table.hpp"

int main(int argc, char** argv) {
  return kspec::bench::PivSweepTableMain(
      "Table 6.15", "PIV: FPGA benchmark set with optimal register blocking / thread counts",
      kspec::apps::piv::FpgaBenchmarkSet(),
      "bench_table_6_15", argc, argv);
}
