// Listings 4.1/4.2 and Appendices B/C/D: the mathTest kernel compiled
// run-time evaluated and specialized from one source, with both MiniPTX
// listings printed (the dissertation's side-by-side PTX comparison) and the
// dynamic-execution contrast measured.
#include <iostream>

#include "bench_common.hpp"
#include "kcc/compiler.hpp"
#include "vcuda/device_buffer.hpp"
#include "vcuda/vcuda.hpp"

namespace {

constexpr const char* kMathTest = R"(
#ifndef CT_LOOP_COUNT
#define LOOP_COUNT loopCount
#endif
#ifndef CT_ARGS
#define STRIDE (argA * argB)
#else
#define STRIDE (ARG_A * ARG_B)
#endif
#ifndef CT_BLOCK_DIM
#define BLOCK_DIM_X blockDim.x
#endif

__kernel void mathTest(float* in, float* out, int argA, int argB, int loopCount) {
  float acc = 0.0f;
  const unsigned int stride = STRIDE;
  const unsigned int offset = blockIdx.x * BLOCK_DIM_X + threadIdx.x;
  for (int i = 0; i < LOOP_COUNT; i++) {
    acc += *(in + offset + i * stride);
  }
  *(out + offset) = acc;
  return;
}
)";

}  // namespace

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_mathtest", argc, argv);
  using namespace kspec;
  bench::Banner("Listings 4.1 / 4.2 + Appendices C / D",
                "mathTest: run-time evaluated vs specialized kernel");

  const int arg_a = 3, arg_b = 7, loops = 5;
  const unsigned threads = 128, blocks = 64;

  kcc::CompileOptions re_opts;  // fully run-time evaluated
  kcc::CompileOptions sk_opts;
  sk_opts.defines = {
      {"CT_LOOP_COUNT", "1"}, {"LOOP_COUNT", std::to_string(loops)},
      {"CT_ARGS", "1"},       {"ARG_A", std::to_string(arg_a)},
      {"ARG_B", std::to_string(arg_b)},
      {"CT_BLOCK_DIM", "1"},  {"BLOCK_DIM_X", std::to_string(threads)},
  };

  Table table({"device", "variant", "static instrs", "regs/thread", "warp instrs",
               "sim ms", "speedup vs RE"});

  std::string re_listing, sk_listing;
  for (const auto& profile : bench::Devices()) {
    vcuda::Context ctx(profile);
    const unsigned n = threads * blocks;
    std::vector<float> in(n + loops * arg_a * arg_b + 1, 1.0f);
    auto d_in = vcuda::UploadBuffer<float>(ctx, std::span<const float>(in));
    vcuda::TypedBuffer<float> d_out(ctx, n);

    double re_ms = 0;
    for (bool specialized : {false, true}) {
      auto mod = ctx.LoadModule(kMathTest, specialized ? sk_opts : re_opts);
      const auto& kernel = mod->GetKernel("mathTest");
      vcuda::ArgPack args;
      args.Ptr(d_in.get()).Ptr(d_out.get()).Int(arg_a).Int(arg_b).Int(loops);
      auto stats = ctx.Launch(*mod, "mathTest", vgpu::Dim3(blocks), vgpu::Dim3(threads), args);
      if (!specialized) re_ms = stats.sim_millis;
      table.Row() << profile.name << (specialized ? "SK" : "RE") << kernel.stats.static_instrs
                  << kernel.stats.reg_count << static_cast<std::int64_t>(stats.warp_instrs)
                  << stats.sim_millis << (re_ms / stats.sim_millis);
      if (profile.name == "VC1060") {
        (specialized ? sk_listing : re_listing) = kernel.listing;
      }
    }
  }
  table.WriteAscii(std::cout);

  std::cout << "\n--- Appendix C: run-time evaluated MiniPTX ---\n" << re_listing;
  std::cout << "\n--- Appendix D: specialized MiniPTX (no control flow) ---\n" << sk_listing;
  std::cout << "\nShape check: the SK listing contains no branches (Appendix D's \"no control\n"
               "flow\"), needs fewer registers, and issues ~2x fewer dynamic instructions.\n"
               "The end-to-end time gain is small because mathTest does one FLOP per loaded\n"
               "word — it is bandwidth-bound; the application kernels (Tables 6.13/6.14/6.19)\n"
               "show where removing issue pressure actually pays.\n";
  return 0;
}
