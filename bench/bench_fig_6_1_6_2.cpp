// Figures 6.1 / 6.2: contour plots of PIV performance relative to the peak
// over the (register blocking x thread count) configuration plane, for each
// Table 6.4 data set, on the VC1060 (Fig 6.1) and VC2070 (Fig 6.2). Emits an
// ASCII heat map per data set (peak marked '#', like the paper's white
// square) and writes the underlying grids as CSV for external plotting.
#include <fstream>
#include <iostream>
#include <map>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_fig_6_1_6_2", argc, argv);
  using namespace kspec;
  using namespace kspec::apps::piv;

  const std::vector<int> rb_opts = {1, 2, 4, 8, 16};
  const std::vector<int> thread_opts = {32, 64, 128, 256};

  int fig = 1;
  for (const auto& profile : bench::Devices()) {
    bench::Banner(Format("Figure 6.%d", fig),
                  Format("PIV perf relative to peak over (rb x threads), %s",
                         profile.name.c_str()));
    ++fig;
    for (const Problem& p : MaskSizeSet()) {
      WallTimer dataset_timer;
      std::map<std::pair<int, int>, double> grid;
      double peak = 1e300;
      std::pair<int, int> peak_cfg{-1, -1};
      for (int rb : rb_opts) {
        for (int threads : thread_opts) {
          if (rb * threads < p.mask_area()) continue;
          vcuda::Context ctx(profile);
          PivConfig cfg;
          cfg.variant = Variant::kRegBlock;
          cfg.threads = threads;
          cfg.rb = rb;
          cfg.specialize = true;
          try {
            PivGpuResult r = GpuPiv(ctx, p, cfg);
            grid[{rb, threads}] = r.stats.sim_millis;
            if (r.stats.sim_millis < peak) {
              peak = r.stats.sim_millis;
              peak_cfg = {rb, threads};
            }
          } catch (const Error&) {
          }
        }
      }

      // ASCII heat map: rows = rb, cols = threads; cells = % of peak.
      std::cout << "\n" << p.name << " (mask " << p.mask_w << "x" << p.mask_h
                << "): % of peak, '#' marks the peak configuration\n";
      std::cout << "  rb\\thr ";
      for (int threads : thread_opts) std::cout << Format("%8d", threads);
      std::cout << "\n";
      for (int rb : rb_opts) {
        std::cout << Format("  %4d   ", rb);
        for (int threads : thread_opts) {
          auto it = grid.find({rb, threads});
          if (it == grid.end()) {
            std::cout << Format("%8s", ".");
          } else if (std::make_pair(rb, threads) == peak_cfg) {
            std::cout << Format("%7s#", "100");
          } else {
            std::cout << Format("%8.0f", 100.0 * peak / it->second);
          }
        }
        std::cout << "\n";
      }

      // CSV artifact for external contour plotting.
      std::string csv_name =
          Format("fig_6_%d_%s.csv", fig - 1, p.name.c_str());
      std::ofstream csv(csv_name);
      csv << "rb,threads,sim_ms,pct_of_peak\n";
      for (const auto& [key, ms] : grid) {
        csv << key.first << "," << key.second << "," << ms << ","
            << 100.0 * peak / ms << "\n";
      }
      std::cout << "  (grid written to " << csv_name << ")\n";
      session.Record(Format("%s@%s", p.name.c_str(), profile.name.c_str()),
                     dataset_timer.ElapsedMillis(), peak);
    }
  }
  std::cout << "\nShape check: the peak marker moves across the (rb, threads) plane as mask\n"
               "size changes, and lands in different cells on the two devices — the paper's\n"
               "core argument for per-instance specialization over fixed configurations.\n";
  return 0;
}
