// Table 6.11: PIV — FPGA implementation vs the best-performing CUDA
// configuration on both GPUs, over the FPGA benchmark set (Tables 6.2/6.3).
#include <iostream>

#include "apps/piv/cpu_ref.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_table_6_11", argc, argv);
  using namespace kspec;
  using namespace kspec::apps::piv;
  bench::Banner("Table 6.11", "PIV: FPGA reference vs best CUDA configuration");
  bench::Note("The FPGA column is the analytic pipelined-FPGA model documented in DESIGN.md");
  bench::Note("(4 SSD pipelines at 133 MHz), functionally verified against the CPU search.");

  Table table({"data set", "masks", "offsets", "fpga ms", "VC1060 ms", "VC2070 ms",
               "best gpu/fpga"});

  for (const Problem& p : FpgaBenchmarkSet()) {
    VectorField fpga = FpgaModel(p);
    std::vector<double> gpu_ms;
    for (const auto& profile : bench::Devices()) {
      vcuda::Context ctx(profile);
      double best = 1e300;
      for (Variant v : {Variant::kBasic, Variant::kRegBlock, Variant::kWarpSpec}) {
        bench::PivBest b = bench::SweepPiv(ctx, p, v, /*specialize=*/true);
        if (b.threads && b.result.stats.sim_millis < best) best = b.result.stats.sim_millis;
      }
      gpu_ms.push_back(best);
    }
    double best_gpu = std::min(gpu_ms[0], gpu_ms[1]);
    table.Row() << p.name << p.n_masks() << p.n_offsets() << fpga.millis << gpu_ms[0]
                << gpu_ms[1] << (fpga.millis / best_gpu);
  }
  table.WriteAscii(std::cout);
  std::cout << "\nShape check: the GPUs are competitive with the fixed-function FPGA pipeline,\n"
               "with the Fermi-class VC2070 leading on the larger problem instances.\n";
  return 0;
}
