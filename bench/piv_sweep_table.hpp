// Shared generator for Tables 6.15-6.18: PIV performance with optimal
// register blocking and thread counts over a given problem family.
#pragma once

#include <iostream>

#include "bench_common.hpp"

namespace kspec::bench {

inline int PivSweepTableMain(const std::string& id, const std::string& caption,
                             const std::vector<apps::piv::Problem>& problems,
                             const std::string& bench_name, int argc, char** argv) {
  using namespace apps::piv;
  Session session(bench_name, argc, argv);
  Banner(id, caption);
  Note("'opt rb' / 'opt thr' are the register blocking depth and thread count of the");
  Note("fastest specialized regblock configuration (the paper's optimal-configuration");
  Note("columns); warpspec is the warp-specialized kernel at its own best thread count.");

  for (const auto& profile : Devices()) {
    std::cout << "\n--- " << profile.name << " ---\n";
    Table table({"data set", "masks", "mask px", "offsets", "basic SK ms", "regblock ms",
                 "opt rb", "opt thr", "regs", "warpspec ms", "warp thr"});
    for (const Problem& p : problems) {
      vcuda::Context ctx(profile);
      PivBest basic = SweepPiv(ctx, p, Variant::kBasic, true);
      PivBest reg = SweepPiv(ctx, p, Variant::kRegBlock, true);
      PivBest warp = SweepPiv(ctx, p, Variant::kWarpSpec, true);
      table.Row() << p.name << p.n_masks() << p.mask_area() << p.n_offsets()
                  << basic.result.stats.sim_millis << reg.result.stats.sim_millis << reg.rb
                  << reg.threads << reg.result.reg_count << warp.result.stats.sim_millis
                  << warp.threads;
    }
    table.WriteAscii(std::cout);
  }
  std::cout << "\nShape check: optimal rb/thread configurations shift with the problem\n"
               "geometry and between devices — no single configuration wins everywhere.\n";
  return 0;
}

}  // namespace kspec::bench
