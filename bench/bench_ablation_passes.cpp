// Ablation study (DESIGN.md design-choice index): which compile-time
// optimization contributes how much of the specialization speedup? Each row
// disables exactly one pass family for the specialized PIV regblock kernel
// and the backprojection kernel.
#include <iostream>

#include "apps/backproj/gpu.hpp"
#include "apps/piv/gpu.hpp"
#include "bench_common.hpp"
#include "launch/spec_builder.hpp"
#include "vcuda/device_buffer.hpp"
#include "support/math.hpp"
#include "kcc/compiler.hpp"
#include "apps/piv/kernels.hpp"
#include "apps/backproj/kernels.hpp"
#include "vcuda/vcuda.hpp"

namespace {

using namespace kspec;

struct Ablation {
  const char* label;
  bool unroll, sr, cse;
};

const Ablation kAblations[] = {
    {"all passes", true, true, true},
    {"no unroll", false, true, true},
    {"no strength-red.", true, false, true},
    {"no CSE", true, true, false},
    {"none (O0-ish)", false, false, false},
};

std::string PivSrc() {
  std::string body = apps::piv::kPivBasicSource;
  std::string tag = "__COMMON__";
  body.replace(body.find(tag), tag.size(), apps::piv::kPivCommonHeader);
  return body;
}

}  // namespace

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_ablation_passes", argc, argv);
  bench::Banner("Ablation", "contribution of each compile-time optimization (specialized builds)");
  bench::Note("Simulated time of the same specialized kernel with one pass family disabled;");
  bench::Note("'none' approximates compiling the specialized source without optimization.");

  apps::piv::Problem piv_p = apps::piv::Generate("ablate", 64, 16, 3, 8, 123);
  apps::backproj::Problem bp_p = apps::backproj::BenchmarkSets()[0];

  vcuda::Context ctx(vgpu::TeslaC1060());
  Table table({"config", "PIV ms", "PIV instrs", "PIV regs", "backproj ms",
               "bp instrs", "bp regs"});

  for (const auto& ab : kAblations) {
    // ---- PIV basic kernel, specialized ----
    kcc::CompileOptions pass_opts;
    pass_opts.enable_unroll = ab.unroll;
    pass_opts.enable_strength_reduction = ab.sr;
    pass_opts.enable_cse = ab.cse;
    launch::SpecBuilder piv_spec(true, &apps::piv::PivParams());
    piv_spec.Flag("CT_MASK").Value("K_MASK_W", piv_p.mask_w)
        .Value("K_MASK_AREA", piv_p.mask_area())
        .Flag("CT_SEARCH").Value("K_SEARCH_W", piv_p.search_w())
        .Value("K_N_OFFSETS", piv_p.n_offsets())
        .Flag("CT_THREADS").Value("K_THREADS", 64);
    auto piv_mod = ctx.LoadModule(PivSrc(), piv_spec.Build(pass_opts));
    auto d_a = vcuda::UploadBuffer<float>(ctx, std::span<const float>(piv_p.frame_a));
    auto d_b = vcuda::UploadBuffer<float>(ctx, std::span<const float>(piv_p.frame_b));
    vcuda::TypedBuffer<int> d_best(ctx, piv_p.n_masks());
    vcuda::TypedBuffer<float> d_score(ctx, piv_p.n_masks());
    vcuda::ArgPack piv_args;
    piv_args.Ptr(d_a.get()).Ptr(d_b.get()).Ptr(d_best.get()).Ptr(d_score.get())
        .Int(piv_p.img_w).Int(piv_p.mask_w).Int(piv_p.mask_area())
        .Int(piv_p.stride_x).Int(piv_p.stride_y).Int(piv_p.masks_x())
        .Int(piv_p.search_w()).Int(piv_p.n_offsets())
        .Int(piv_p.origin_x()).Int(piv_p.origin_y())
        .Int(-piv_p.range_x).Int(-piv_p.range_y);
    auto piv_stats = ctx.Launch(*piv_mod, "pivBasic",
                                vgpu::Dim3(static_cast<unsigned>(piv_p.n_masks())),
                                vgpu::Dim3(64), piv_args);
    const auto& piv_k = piv_mod->GetKernel("pivBasic");

    // ---- backprojection kernel, specialized ----
    launch::SpecBuilder bp_spec(true, &apps::backproj::BackprojParams());
    bp_spec.Flag("CT_ANGLES").Value("K_N_ANGLES", bp_p.geo.n_angles)
        .Flag("CT_ZPT").Value("K_ZPT", 4)
        .Flag("CT_VOL").Value("K_VOL_Z", bp_p.geo.vol_z)
        .Flag("CT_THREADS").Value("K_THREADS", 64);
    kcc::CompileOptions bp_opts = bp_spec.Build(pass_opts);

    double bp_ms = -1;
    int bp_instrs = -1, bp_regs = -1;
    try {
      auto bp_mod = ctx.LoadModule(apps::backproj::kBackprojSource, bp_opts);
      std::vector<float> cos_tab, sin_tab;
      apps::backproj::AngleTables(bp_p.geo, &cos_tab, &sin_tab);
      bp_mod->SetConstant("cosTab", cos_tab.data(), cos_tab.size() * 4);
      bp_mod->SetConstant("sinTab", sin_tab.data(), sin_tab.size() * 4);
      auto d_proj = vcuda::UploadBuffer<float>(ctx, std::span<const float>(bp_p.projections));
      vcuda::TypedBuffer<float> d_vol(ctx, bp_p.voxel_count());
      const auto& g = bp_p.geo;
      vcuda::ArgPack bp_args;
      bp_args.Ptr(d_proj.get()).Ptr(d_vol.get())
          .Int(g.vol_n).Int(g.vol_z).Int(g.det_u).Int(g.det_v).Int(g.n_angles)
          .Float(g.du).Float(g.dv).Float(g.cu()).Float(g.cv())
          .Float(g.sad).Float(g.vox_size);
      auto bp_stats = ctx.Launch(
          *bp_mod, "backproject",
          vgpu::Dim3(kspec::CeilDiv<unsigned>(static_cast<unsigned>(g.vol_n * g.vol_n), 64)),
          vgpu::Dim3(64), bp_args);
      bp_ms = bp_stats.sim_millis;
      const auto& bp_k = bp_mod->GetKernel("backproject");
      bp_instrs = bp_k.stats.static_instrs;
      bp_regs = bp_k.stats.reg_count;
    } catch (const Error&) {
      // zpt=4 without unrolling cannot scalarize the register array — a real
      // dependency between the passes worth surfacing in the table.
    }

    auto row = table.Row();
    row << ab.label << piv_stats.sim_millis << piv_k.stats.static_instrs
        << piv_k.stats.reg_count;
    if (bp_ms >= 0) {
      row << bp_ms << bp_instrs << bp_regs;
    } else {
      row << "needs unroll" << "-" << "-";
    }
  }
  table.WriteAscii(std::cout);
  std::cout << "\nShape check: unrolling is the dominant single contribution; strength\n"
               "reduction matters most where div/mod feed the inner loop; register\n"
               "blocking (backproj zpt) is impossible without unrolling at all.\n";
  return 0;
}
