// Table 6.10: template matching — multi-threaded CPU implementation vs the
// best-performing CUDA configuration on both GPUs (per patient data set).
#include <iostream>

#include "apps/cpu_model.hpp"
#include "apps/matching/cpu_ref.hpp"
#include "apps/matching/gpu.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_table_6_10", argc, argv);
  using namespace kspec;
  using namespace kspec::apps::matching;
  bench::Banner("Table 6.10",
                "Template matching: multi-threaded CPU vs best CUDA configuration");
  bench::Note("'cpu wall' is measured host time (4 std::thread workers on this 1-core");
  bench::Note("container); 'cpu model' is the analytic 4-core paper-era Xeon model");
  bench::Note("(src/apps/cpu_model.hpp). GPU columns are simulated-device milliseconds.");

  Table table({"data set", "shifts", "cpu wall ms", "cpu model ms", "VC1060 ms",
               "VC1060 cfg", "VC2070 ms", "VC2070 cfg", "best speedup"});
  apps::CpuModel cpu_model;

  for (const Problem& p : PatientSets()) {
    CpuResult cpu = CpuMatch(p, 4);

    std::vector<std::string> cfg_desc(2);
    std::vector<double> gpu_ms(2, 1e300);
    int di = 0;
    for (const auto& profile : bench::Devices()) {
      vcuda::Context ctx(profile);
      for (int tile : {4, 8, 16}) {
        for (int threads : {64, 128, 256}) {
          if (tile > p.tpl_h || tile > p.tpl_w) continue;
          MatcherConfig cfg;
          cfg.tile_h = tile;
          cfg.tile_w = tile;
          cfg.threads = threads;
          cfg.specialize = true;
          try {
            MatchResult r = GpuMatch(ctx, p, cfg);
            if (r.sim_millis < gpu_ms[di]) {
              gpu_ms[di] = r.sim_millis;
              cfg_desc[di] = Format("%dx%d t%d", tile, tile, threads);
            }
          } catch (const Error&) {
          }
        }
      }
      ++di;
    }
    double model_ms =
        cpu_model.Millis(apps::MatchingFlops(p.n_shifts(), p.tpl_h * p.tpl_w), 4);
    table.Row() << p.name << p.n_shifts() << cpu.wall_millis << model_ms << gpu_ms[0]
                << cfg_desc[0] << gpu_ms[1] << cfg_desc[1]
                << (cpu.wall_millis / std::min(gpu_ms[0], gpu_ms[1]));
  }
  table.WriteAscii(std::cout);
  std::cout << "\nShape check: both simulated GPUs beat the CPU on every data set, and the\n"
               "optimal tile/thread configuration differs across data sets and devices.\n";
  return 0;
}
