// Table 6.14: PIV GPU performance comparisons for several kernel variants
// across the FPGA benchmark set — run-time evaluated baseline, specialized
// baseline, register-blocked, and warp-specialized.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_table_6_14", argc, argv);
  using namespace kspec;
  using namespace kspec::apps::piv;
  bench::Banner("Table 6.14", "PIV kernel variants across the FPGA benchmark set");

  struct VariantSpec {
    const char* label;
    Variant variant;
    bool specialize;
  };
  const VariantSpec kVariants[] = {
      {"basic RE", Variant::kBasic, false},
      {"basic SK", Variant::kBasic, true},
      {"regblock SK", Variant::kRegBlock, true},
      {"warpspec SK", Variant::kWarpSpec, true},
  };

  for (const auto& profile : bench::Devices()) {
    std::cout << "\n--- " << profile.name << " ---\n";
    Table table({"data set", "basic RE ms", "basic SK ms", "regblock SK ms",
                 "warpspec SK ms", "best variant"});
    for (const Problem& p : FpgaBenchmarkSet()) {
      vcuda::Context ctx(profile);
      std::vector<double> ms;
      double best = 1e300;
      std::string best_name;
      for (const auto& vs : kVariants) {
        bench::PivBest b = bench::SweepPiv(ctx, p, vs.variant, vs.specialize);
        double t = b.threads ? b.result.stats.sim_millis : -1.0;
        ms.push_back(t);
        if (t > 0 && t < best) {
          best = t;
          best_name = vs.label;
        }
      }
      table.Row() << p.name << ms[0] << ms[1] << ms[2] << ms[3] << best_name;
    }
    table.WriteAscii(std::cout);
  }
  std::cout << "\nShape check: every SK variant beats the RE baseline; warp specialization\n"
               "and register blocking trade the lead depending on mask/search geometry.\n";
  return 0;
}
