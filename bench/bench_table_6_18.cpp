// Table 6.18: PIV performance for the varying interrogation-window-overlap
// benchmark set (Table 6.6 problems), including optimal register blocking
// and thread counts.
#include "piv_sweep_table.hpp"

int main(int argc, char** argv) {
  return kspec::bench::PivSweepTableMain(
      "Table 6.18", "PIV: impact of window overlap (Table 6.6 problem set)",
      kspec::apps::piv::OverlapSet(),
      "bench_table_6_18", argc, argv);
}
