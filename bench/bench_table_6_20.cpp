// Table 6.20: occupancy and execution data for the (simulated) C1060 on the
// V2 backprojection data set — per configuration: registers/thread, shared
// memory, blocks/SM, active warps, occupancy, the binding resource, and the
// modeled execution time.
#include <iostream>

#include "apps/backproj/gpu.hpp"
#include "apps/backproj/problem.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_table_6_20", argc, argv);
  using namespace kspec;
  using namespace kspec::apps::backproj;
  bench::Banner("Table 6.20", "Occupancy and execution data (VC1060, V2 data set)");

  Problem p = BenchmarkSets()[1];  // V2
  vcuda::Context ctx(vgpu::TeslaC1060());

  Table table({"threads", "zpt", "variant", "regs", "smem B", "blocks/SM", "active warps",
               "occupancy", "limiter", "sim ms"});
  for (int threads : {32, 64, 128, 256}) {
    for (int zpt : {1, 4}) {
      for (bool specialize : {false, true}) {
        if (!specialize && zpt != 1) continue;
        if (p.geo.vol_z % zpt != 0) continue;
        BackprojConfig cfg;
        cfg.threads = threads;
        cfg.zpt = zpt;
        cfg.specialize = specialize;
        try {
          BackprojGpuResult r = GpuBackproject(ctx, p, cfg);
          const auto& occ = r.stats.occupancy;
          table.Row() << threads << zpt << (specialize ? "SK" : "RE") << r.reg_count
                      << r.stats.smem_per_block << occ.blocks_per_sm << occ.active_warps
                      << occ.occupancy << occ.limiter << r.sim_millis;
        } catch (const Error& e) {
          table.Row() << threads << zpt << (specialize ? "SK" : "RE") << "-" << "-" << "-"
                      << "-" << "-" << "unlaunchable" << "-";
        }
      }
    }
  }
  table.WriteAscii(std::cout);
  std::cout << "\nShape check: RE builds carry more registers, which lowers blocks/SM on the\n"
               "register-file-limited VC1060; maximum occupancy does not always give the\n"
               "best time once register blocking raises per-thread ILP (Section 2.3).\n";
  return 0;
}
