// Table 6.16: PIV performance for the varying mask-size benchmark set
// (Table 6.4 problems), including optimal register blocking and threads.
#include "piv_sweep_table.hpp"

int main(int argc, char** argv) {
  return kspec::bench::PivSweepTableMain(
      "Table 6.16", "PIV: impact of mask size (Table 6.4 problem set)",
      kspec::apps::piv::MaskSizeSet(),
      "bench_table_6_16", argc, argv);
}
