// Sections 4.3 / 7.2.3: when does specialization pay? Total cost (real
// compile wall time + simulated launch time) of three policies over N
// launches of the same parameter set:
//   RE only   — compile the adaptable build once, never specialize
//   SK always — specialize up front
//   tiered    — serve RE while cold, promote to SK at the hot threshold
// Plus the non-blocking variant: a StageRunner in kAsyncPromote policy runs
// the PIV app repeatedly while a CompileExecutor builds the specialization in
// the background — the promotion stats advance without any launch stalling.
#include <iostream>

#include "apps/piv/gpu.hpp"
#include "apps/piv/kernels.hpp"
#include "bench_common.hpp"
#include "launch/stage_runner.hpp"
#include "serve/compile_executor.hpp"
#include "support/timer.hpp"
#include "vcuda/device_buffer.hpp"
#include "vcuda/tiered.hpp"

namespace {

using namespace kspec;

// The PIV basic kernel as a single-source RE/SK kernel (the Appendix B way).
std::string Source() {
  std::string body = apps::piv::kPivBasicSource;
  std::string tag = "__COMMON__";
  body.replace(body.find(tag), tag.size(), apps::piv::kPivCommonHeader);
  return body;
}

// The register-blocked kernel: the realistic "hot" build (bigger per-launch
// savings, only expressible specialized — Stivala et al.'s two-kernel
// pattern from Chapter 3).
std::string RegBlockSource() {
  std::string body = apps::piv::kPivRegBlockSource;
  std::string tag = "__COMMON__";
  body.replace(body.find(tag), tag.size(), apps::piv::kPivCommonHeader);
  return body;
}

}  // namespace

int main(int argc, char** argv) {
  kspec::bench::Session session("bench_tiered", argc, argv);
  using namespace kspec::apps::piv;
  bench::Banner("Section 4.3 / 7.2.3", "specialization break-even: RE vs SK vs tiered");
  bench::Note("'total' = measured compile wall time + simulated launch time; the");
  bench::Note("crossover is where per-launch SK savings have paid for the SK compile.");

  Problem p = Generate("tiered", 64, 16, 3, 8, 55);
  kcc::CompileOptions sk_opts;
  sk_opts.defines = {{"CT_MASK", "1"},    {"K_MASK_W", std::to_string(p.mask_w)},
                     {"K_MASK_AREA", std::to_string(p.mask_area())},
                     {"CT_SEARCH", "1"},  {"K_SEARCH_W", std::to_string(p.search_w())},
                     {"K_N_OFFSETS", std::to_string(p.n_offsets())},
                     {"CT_THREADS", "1"}, {"K_THREADS", "64"},
                     {"K_RB", "4"},       {"K_GUARD", "0"}};

  Table table({"launches", "RE-only total ms", "SK-always total ms", "tiered total ms",
               "winner"});

  for (int launches : {1, 3, 10, 30, 100, 300}) {
    double totals[3] = {0, 0, 0};
    const char* names[3] = {"RE", "SK", "tiered"};
    for (int policy = 0; policy < 3; ++policy) {
      vcuda::Context ctx(vgpu::TeslaC1060());
      auto d_a = vcuda::UploadBuffer<float>(ctx, std::span<const float>(p.frame_a));
      auto d_b = vcuda::UploadBuffer<float>(ctx, std::span<const float>(p.frame_b));
      vcuda::TypedBuffer<int> d_best(ctx, p.n_masks());
      vcuda::TypedBuffer<float> d_score(ctx, p.n_masks());
      double total = 0;
      for (int n = 0; n < launches; ++n) {
        WallTimer compile_timer;
        std::shared_ptr<vcuda::Module> mod;
        const char* kernel_name;
        bool hot = policy == 1 || (policy == 2 && n >= 2);  // tiered promotes at launch 3
        if (hot) {
          mod = ctx.LoadModule(RegBlockSource(), sk_opts);
          kernel_name = "pivRegBlock";
        } else {
          mod = ctx.LoadModule(Source(), {});
          kernel_name = "pivBasic";
        }
        total += compile_timer.ElapsedMillis();  // ~0 on cache hits

        vcuda::ArgPack args;
        args.Ptr(d_a.get()).Ptr(d_b.get()).Ptr(d_best.get()).Ptr(d_score.get())
            .Int(p.img_w).Int(p.mask_w).Int(p.mask_area())
            .Int(p.stride_x).Int(p.stride_y).Int(p.masks_x())
            .Int(p.search_w()).Int(p.n_offsets())
            .Int(p.origin_x()).Int(p.origin_y())
            .Int(-p.range_x).Int(-p.range_y);
        auto stats = ctx.Launch(*mod, kernel_name,
                                vgpu::Dim3(static_cast<unsigned>(p.n_masks())),
                                vgpu::Dim3(64), args);
        total += stats.sim_millis;
      }
      totals[policy] = total;
    }
    int win = 0;
    for (int k = 1; k < 3; ++k) {
      if (totals[k] < totals[win]) win = k;
    }
    table.Row() << launches << totals[0] << totals[1] << totals[2] << names[win];
  }
  table.WriteAscii(std::cout);
  std::cout << "\nShape check: RE-only wins one-shot and short runs (nothing to amortize);\n"
               "SK-always wins once the per-launch savings repay its compile (~10^2 launches\n"
               "here); tiered matches the winner at both extremes, paying a bounded premium\n"
               "mid-range (it buys both builds) without knowing the launch count in advance.\n";

  // ---- non-blocking promotion through the shared launch layer ----
  bench::Banner("PR 2-3 stack", "StageRunner kAsyncPromote: RE serves while SK compiles");
  {
    serve::CompileExecutor executor({.workers = 1, .max_queue = 16});
    vcuda::Context ctx(vgpu::TeslaC1060());
    ctx.set_async_service(&executor);
    launch::StageRunner runner(
        ctx, {.policy = launch::LoadPolicy::kAsyncPromote, .hot_threshold = 2});

    PivConfig cfg;
    cfg.variant = Variant::kWarpSpec;  // single-source: RE fallback is valid
    cfg.threads = 64;

    Table t2({"call", "re_served", "sk_served", "background", "re_while_compiling"});
    for (int call = 1; call <= 6; ++call) {
      GpuPiv(runner, p, cfg);
      if (call == 3) executor.Drain();  // let the background specialization land
      auto s = runner.tiered_stats();
      t2.Row() << call << static_cast<int>(s.re_served) << static_cast<int>(s.sk_served)
               << static_cast<int>(s.background_compiles)
               << static_cast<int>(s.re_served_while_compiling);
    }
    t2.WriteAscii(std::cout);
    std::cout << "\nCalls 1-2 heat the parameter set on the RE build; call 2 schedules the\n"
                 "specialized compile on the executor and is still answered RE (no stall);\n"
                 "after the drain the specialized build is swapped in and serves sk_served.\n";
    executor.Shutdown();
  }
  return 0;
}
