// Autotuning demo: specialization and search working together (the Chapter 3
// relationship). The tuner explores the (threads x register-blocking) space
// for the PIV kernel — each probe is a run-time specialization, compiled in
// milliseconds and cached — then the tuned configuration is remembered per
// problem signature so the next encounter skips the search.
#include <iostream>

#include "apps/piv/gpu.hpp"
#include "support/str.hpp"
#include "tune/tuner.hpp"

int main() {
  using namespace kspec;
  using namespace kspec::apps::piv;

  vcuda::Context ctx(vgpu::TeslaC2070());
  tune::TuningCache cache;

  std::vector<tune::ParamRange> space = {{"threads", {32, 64, 128, 256}},
                                         {"rb", {1, 2, 4, 8}}};

  for (const Problem& p : {Generate("runA", 64, 16, 3, 8, 1),
                           Generate("runB", 80, 16, 3, 8, 2),   // same signature class
                           Generate("runC", 96, 24, 3, 12, 3)}) {
    std::string signature =
        Format("piv/mask%dx%d/search%d/%s", p.mask_w, p.mask_h, p.search_w(),
               ctx.device().name.c_str());

    tune::Config best;
    if (auto hit = cache.Lookup(signature)) {
      best = *hit;
      std::cout << p.name << ": tuning cache hit for " << signature << "\n";
    } else {
      auto eval = [&](const tune::Config& c) -> double {
        PivConfig cfg;
        cfg.variant = Variant::kRegBlock;
        cfg.threads = static_cast<int>(c.at("threads"));
        cfg.rb = static_cast<int>(c.at("rb"));
        cfg.specialize = true;
        if (cfg.rb * cfg.threads < p.mask_area()) throw Error("uncoverable");
        return GpuPiv(ctx, p, cfg).stats.sim_millis;
      };
      tune::TuneResult r = tune::CoordinateDescent(space, eval);
      best = r.best;
      cache.Store(signature, best);
      std::cout << p.name << ": tuned " << signature << " in " << r.evaluated
                << " measured configs (skipped " << r.skipped << " infeasible)\n";
    }

    PivConfig cfg;
    cfg.variant = Variant::kRegBlock;
    cfg.threads = static_cast<int>(best.at("threads"));
    cfg.rb = static_cast<int>(best.at("rb"));
    cfg.specialize = true;
    PivGpuResult r = GpuPiv(ctx, p, cfg);
    std::cout << "    best = threads " << cfg.threads << ", rb " << cfg.rb << "  ->  "
              << r.stats.sim_millis << " ms simulated, " << r.reg_count
              << " regs/thread, occupancy " << r.stats.occupancy.occupancy << "\n";
  }

  std::cout << "\nKernel compiles this whole session: " << ctx.cache_stats().misses
            << " (cache hits: " << ctx.cache_stats().hits << ")\n";
  return 0;
}
