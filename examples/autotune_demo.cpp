// Autotuning demo: specialization and search working together (the Chapter 3
// relationship), now through the predictive tier. The tuner statically prunes
// infeasible (threads x register-blocking) points with the occupancy
// pre-pass, measures a small seed sample — each probe is a run-time
// specialization, compiled in milliseconds and cached — fits a cost model,
// and verifies only its best predictions. The winner is persisted in an
// on-disk TuningCache keyed by (kernel, device, problem signature), so a
// *separate process* encountering the same problem skips the search
// entirely.
#include <filesystem>
#include <iostream>

#include "apps/piv/gpu.hpp"
#include "apps/piv/tune.hpp"
#include "tune/tuner.hpp"

int main() {
  using namespace kspec;
  using namespace kspec::apps::piv;

  const std::string cache_path =
      (std::filesystem::temp_directory_path() / "kspec_autotune_demo.bin").string();
  std::filesystem::remove(cache_path);  // fresh demo, cold cache

  vcuda::Context ctx(vgpu::TeslaC2070());

  for (const Problem& p : {Generate("runA", 64, 16, 3, 8, 1),
                           Generate("runB", 80, 16, 3, 8, 2),   // same signature class
                           Generate("runC", 96, 24, 3, 12, 3)}) {
    // A fresh TuningCache per problem stands in for a new process: entry
    // lookups are answered from disk, not from this run's memory.
    tune::TuningCache cache(cache_path);
    tune::TuneResult r;
    PivConfig cfg = TunedRegBlock(ctx, p, &cache, &r);

    if (r.cache_hit) {
      std::cout << p.name << ": tuning cache hit (zero evaluations)\n";
    } else {
      std::cout << p.name << ": tuned in " << r.evaluated << " measured configs ("
                << r.pruned_static << " statically pruned, " << r.skipped << " skipped"
                << (r.used_fallback ? ", model fell back to descent" : "") << ")\n";
    }

    PivGpuResult result = GpuPiv(ctx, p, cfg);
    std::cout << "    best = threads " << cfg.threads << ", rb " << cfg.rb << "  ->  "
              << result.stats.sim_millis << " ms simulated, " << result.reg_count
              << " regs/thread, occupancy " << result.stats.occupancy.occupancy << "\n";
  }

  // runA and runB share a problem signature, so the second tune is a disk
  // hit; runC's signature differs and is searched on first sight.
  std::cout << "\nKernel compiles this whole session: " << ctx.cache_stats().misses
            << " (cache hits: " << ctx.cache_stats().hits << ")\n";
  std::filesystem::remove(cache_path);
  return 0;
}
