// GPU-PF streaming-pipeline demo (dissertation Section 4.4.1, Appendix G):
// a long-running pipeline that streams frames through a specialized kernel,
// then changes a specialization-bound parameter mid-run — the refresh phase
// recompiles exactly the affected module and the pipeline keeps going.
#include <iostream>

#include "gpupf/pipeline.hpp"
#include "support/log.hpp"

// Box filter whose WIDTH is a specialization constant: fixed width means a
// fully unrolled inner loop.
constexpr const char* kFilterKernel = R"(
#ifndef WIDTH
#define WIDTH width
#endif

__kernel void boxFilter(float* in, float* out, int n, int width) {
  int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
  if (i < n) {
    float acc = 0.0f;
    for (int k = 0; k < WIDTH; k++) {
      int j = i + k - WIDTH / 2;
      j = max(0, min(j, n - 1));
      acc += in[j];
    }
    out[i] = acc / (float)WIDTH;
  }
}
)";

int main() {
  using namespace kspec;
  using namespace kspec::gpupf;

  Logger::Instance().set_level(LogLevel::kInfo);  // show refresh activity

  vcuda::Context ctx(vgpu::TeslaC1060());
  Pipeline pipe(&ctx);

  const int kFrame = 256, kFrames = 6;

  // --- specification phase ---
  auto* full = pipe.AddExtent("recording", sizeof(float), kFrame * kFrames);
  auto* window = pipe.AddExtent("frame", sizeof(float), kFrame);
  auto* host_in = pipe.AddHostMemory("host-in", full);
  auto* host_out = pipe.AddHostMemory("host-out", window);
  auto* dev_in = pipe.AddGlobalMemory("dev-in", window);
  auto* dev_out = pipe.AddGlobalMemory("dev-out", window);
  auto* stream = pipe.AddSubset("stream", host_in, window, kFrame, kFrames);

  auto* width = pipe.AddInt("filter-width", 5);
  auto* module = pipe.AddModule("filter-mod", kFilterKernel);
  module->BindDefine("WIDTH", width);  // re-specializes when width changes
  auto* kernel = pipe.AddKernel("filter", module, "boxFilter");

  auto* n = pipe.AddInt("n", kFrame);
  auto* grid = pipe.AddTriplet("grid", vgpu::Dim3(kFrame / 64));
  auto* block = pipe.AddTriplet("block", vgpu::Dim3(64));
  auto* every = pipe.AddSchedule("every-frame", 1);

  pipe.AddCopy("upload", every, stream, dev_in);
  pipe.AddKernelExec("filter", every, kernel, grid, block, {dev_in, dev_out, n, width});
  pipe.AddCopy("download", every, dev_out, host_out);

  double checksum = 0;
  pipe.AddUserFn("consume", every, [&](Pipeline&, std::uint64_t iter) {
    auto out = host_out->host_span<float>();
    double s = 0;
    for (float v : out) s += v;
    checksum += s;
    std::cout << "  frame " << iter << ": output checksum " << s << "\n";
  });

  // --- refresh + execution phases ---
  pipe.Refresh();
  auto in = host_in->host_span<float>();
  for (int i = 0; i < kFrame * kFrames; ++i) in[i] = static_cast<float>(i % 17);

  std::cout << "Streaming with WIDTH=5 (specialized):\n";
  pipe.Run(3);

  std::cout << "\nOperator widens the filter; the module re-specializes once:\n";
  width->Set(9);
  pipe.Run(3);

  std::cout << "\n" << pipe.TimingReport();
  std::cout << "Compilations: " << ctx.cache_stats().misses
            << ", cache hits: " << ctx.cache_stats().hits << "\n";
  return 0;
}
