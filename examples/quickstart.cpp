// Quickstart: the kernel-specialization workflow in one file.
//
//   1. Write a Kernel-C kernel in terms of macros with run-time fallbacks
//      (the dissertation's Appendix B pattern).
//   2. Create a context for a simulated device.
//   3. Build the define set with launch::SpecBuilder and load the module
//      twice: once in RE mode (empty define set, run-time evaluated) and
//      once specialized for the current problem instance.
//   4. Launch both, compare results, statistics, and the MiniPTX listings.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "launch/spec_builder.hpp"
#include "vcuda/device_buffer.hpp"
#include "vcuda/vcuda.hpp"

// A dot-product-with-stride kernel. TILE (the per-thread work count) controls
// loop unrolling; when it is a compile-time constant the loop disappears.
constexpr const char* kKernel = R"(
#ifndef TILE
#define TILE tile          // run-time fallback: TILE is just the argument
#endif

__kernel void strideSum(float* in, float* out, int tile, int stride) {
  unsigned int t = blockIdx.x * blockDim.x + threadIdx.x;
  float acc = 0.0f;
  for (int i = 0; i < TILE; i++) {
    acc += in[(int)t + i * stride];
  }
  out[t] = acc;
}
)";

int main() {
  using namespace kspec;

  // A context owns one simulated device and its memory. Two device profiles
  // ship with the library: TeslaC1060 (cc 1.3) and TeslaC2070 (Fermi).
  vcuda::Context ctx(vgpu::TeslaC2070());

  const int tile = 8, stride = 4;
  const unsigned threads = 128, blocks = 8, n = threads * blocks;

  // RAII device buffers: freed when they go out of scope, leak-free even if
  // something below throws.
  std::vector<float> input(n + tile * stride, 1.0f);
  auto d_in = vcuda::UploadBuffer<float>(ctx, std::span<const float>(input));
  vcuda::TypedBuffer<float> d_out(ctx, n);

  // --- run-time evaluated: one binary adapts to any tile/stride ---
  // SpecBuilder in RE mode records the parameters but emits no defines.
  launch::SpecBuilder re_spec(/*specialize=*/false);
  re_spec.Value("TILE", tile);
  auto re = ctx.LoadModule(kKernel, re_spec.Build());

  // --- specialized: recompiled for THIS tile value (cached thereafter) ---
  launch::SpecBuilder sk_spec;
  sk_spec.Value("TILE", tile);
  auto sk = ctx.LoadModule(kKernel, sk_spec.Build());

  for (auto& [name, mod] : {std::pair{"RE", re}, std::pair{"SK", sk}}) {
    vcuda::ArgPack args;
    args.Ptr(d_in.get()).Ptr(d_out.get()).Int(tile).Int(stride);
    vgpu::LaunchStats stats =
        ctx.Launch(*mod, "strideSum", vgpu::Dim3(blocks), vgpu::Dim3(threads), args);

    auto result = d_out.Download();
    const auto& k = mod->GetKernel("strideSum");
    std::cout << name << ": result[0]=" << result[0]
              << "  static instrs=" << k.stats.static_instrs
              << "  regs/thread=" << k.stats.reg_count
              << "  dynamic warp instrs=" << stats.warp_instrs
              << "  simulated time=" << stats.sim_millis << " ms\n";
  }

  std::cout << "\nSpecialized MiniPTX (note: no loop, immediate strides):\n"
            << sk->GetKernel("strideSum").listing << "\n";
  std::cout << "Cache: " << ctx.cache_stats().misses << " compile(s), "
            << ctx.cache_stats().hits << " hit(s)\n";
  return 0;
}
