// Template matching demo (dissertation Section 5.1): find a template's
// planted location in a region of interest via normalized cross-correlation,
// on the CPU reference and on both simulated GPUs with specialized kernels.
#include <iostream>

#include "apps/matching/cpu_ref.hpp"
#include "apps/matching/gpu.hpp"
#include "support/csv.hpp"

int main() {
  using namespace kspec;
  using namespace kspec::apps::matching;

  Problem p = Generate("demo", 24, 20, 12, 12, 2026);
  std::cout << "Template " << p.tpl_h << "x" << p.tpl_w << ", shift region " << p.shift_h
            << "x" << p.shift_w << ", planted at shift (" << p.true_sy << "," << p.true_sx
            << ")\n\n";

  CpuResult cpu = CpuMatch(p, 4);
  std::cout << "CPU (4 threads): best shift ("
            << cpu.best_idx / p.shift_w << "," << cpu.best_idx % p.shift_w
            << ") score=" << cpu.best_score << "  wall=" << cpu.wall_millis << " ms\n";

  for (const char* dev : {"VC1060", "VC2070"}) {
    vcuda::Context ctx(vgpu::ProfileByName(dev));
    MatcherConfig cfg;
    cfg.tile_h = 8;
    cfg.tile_w = 8;
    cfg.threads = 128;
    cfg.specialize = true;
    MatchResult r = GpuMatch(ctx, p, cfg);
    std::cout << dev << ": best shift (" << r.best_idx / p.shift_w << ","
              << r.best_idx % p.shift_w << ") score=" << r.best_score
              << "  simulated=" << r.sim_millis << " ms (+ " << r.transfer_millis
              << " ms transfers)\n";
    Table stages({"stage", "sim ms", "regs", "occupancy"});
    for (const auto& s : r.breakdown.stages) {
      stages.Row() << s.name << s.sim_millis << s.reg_count << s.launch.occupancy.occupancy;
    }
    stages.WriteAscii(std::cout);
  }

  std::cout << "\nCorrelation surface around the peak (CPU scores):\n";
  int py = cpu.best_idx / p.shift_w, px = cpu.best_idx % p.shift_w;
  for (int dy = -2; dy <= 2; ++dy) {
    for (int dx = -2; dx <= 2; ++dx) {
      int sy = py + dy, sx = px + dx;
      if (sy < 0 || sy >= p.shift_h || sx < 0 || sx >= p.shift_w) {
        std::printf("   .    ");
      } else {
        std::printf("%7.4f ", cpu.scores[sy * p.shift_w + sx]);
      }
    }
    std::printf("\n");
  }
  return 0;
}
