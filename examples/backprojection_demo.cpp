// Cone-beam backprojection demo (dissertation Section 5.3): reconstruct a
// Gaussian-blob phantom from its analytic projections and display the central
// slice as an ASCII intensity map.
#include <algorithm>
#include <iostream>

#include "apps/backproj/cpu_ref.hpp"
#include "apps/backproj/gpu.hpp"

int main() {
  using namespace kspec;
  using namespace kspec::apps::backproj;

  Geometry g;
  g.vol_n = 24;
  g.vol_z = 16;
  g.det_u = 48;
  g.det_v = 32;
  g.n_angles = 16;
  Problem p = Generate("demo", g, 3, 7);

  std::cout << "Volume " << g.vol_n << "x" << g.vol_n << "x" << g.vol_z << ", "
            << g.n_angles << " projection angles, " << p.blobs.size() << " phantom blobs\n";
  for (const auto& b : p.blobs) {
    std::cout << "  blob at (" << b.x << ", " << b.y << ", " << b.z << ") amplitude "
              << b.amplitude << "\n";
  }

  CpuResult cpu = CpuBackproject(p, 4);
  std::cout << "\nCPU (OpenMP, 4 threads): " << cpu.wall_millis << " ms\n";

  vcuda::Context ctx(vgpu::TeslaC2070());
  BackprojConfig cfg;
  cfg.threads = 64;
  cfg.zpt = 4;
  cfg.specialize = true;
  BackprojGpuResult gpu = GpuBackproject(ctx, p, cfg);
  std::cout << "GPU (specialized, zpt=4): " << gpu.sim_millis
            << " ms simulated, regs/thread=" << gpu.reg_count
            << ", occupancy=" << gpu.stats.occupancy.occupancy << "\n";

  double max_err = 0;
  for (std::size_t i = 0; i < cpu.volume.size(); ++i) {
    max_err = std::max(max_err, static_cast<double>(std::abs(cpu.volume[i] - gpu.volume[i])));
  }
  std::cout << "max |CPU - GPU| = " << max_err << "\n";

  // ASCII view of the central z-slice.
  const int z = g.vol_z / 2;
  const int nxy = g.vol_n * g.vol_n;
  float vmax = 1e-6f;
  for (int i = 0; i < nxy; ++i) vmax = std::max(vmax, gpu.volume[z * nxy + i]);
  const char* shades = " .:-=+*#%@";
  std::cout << "\nCentral slice (z=" << z << "):\n";
  for (int y = 0; y < g.vol_n; ++y) {
    std::cout << "  ";
    for (int x = 0; x < g.vol_n; ++x) {
      float v = gpu.volume[z * nxy + y * g.vol_n + x] / vmax;
      int idx = std::clamp(static_cast<int>(v * 9.99f), 0, 9);
      std::cout << shades[idx] << shades[idx];
    }
    std::cout << "\n";
  }
  return 0;
}
