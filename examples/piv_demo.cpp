// PIV demo (dissertation Section 5.2): recover a particle-flow displacement
// field with the three GPU kernel variants and print the vector field.
#include <iostream>

#include "apps/piv/cpu_ref.hpp"
#include "apps/piv/gpu.hpp"
#include "support/csv.hpp"
#include "support/str.hpp"

int main() {
  using namespace kspec;
  using namespace kspec::apps::piv;

  Problem p = Generate("demo", 80, 16, 3, 8, 4242);
  std::cout << "Frames " << p.img_h << "x" << p.img_w << ", masks " << p.mask_h << "x"
            << p.mask_w << ", search ±" << p.range_y << ", planted displacement ("
            << p.true_dy << "," << p.true_dx << ")\n\n";

  VectorField cpu = CpuPiv(p, 4);
  VectorField fpga = FpgaModel(p);
  std::cout << "CPU wall: " << cpu.millis << " ms; FPGA model: " << fpga.millis << " ms\n\n";

  vcuda::Context ctx(vgpu::TeslaC2070());
  Table table({"variant", "sim ms", "regs", "barriers", "occupancy", "vectors correct"});
  for (Variant v : {Variant::kBasic, Variant::kRegBlock, Variant::kWarpSpec, Variant::kMultiMask}) {
    PivConfig cfg;
    cfg.variant = v;
    cfg.threads = 64;
    cfg.specialize = true;
    PivGpuResult r = GpuPiv(ctx, p, cfg);
    int correct = 0;
    for (std::size_t m = 0; m < r.field.best_offset.size(); ++m) {
      if (r.field.best_offset[m] == cpu.best_offset[m]) ++correct;
    }
    table.Row() << VariantName(v) << r.stats.sim_millis << r.reg_count
                << static_cast<std::int64_t>(r.stats.barriers)
                << r.stats.occupancy.occupancy
                << Format("%d/%zu", correct, cpu.best_offset.size());
  }
  table.WriteAscii(std::cout);

  // ASCII vector field: every mask's recovered displacement as an arrow.
  std::cout << "\nRecovered vector field (should be uniform):\n";
  auto arrow = [&](int off) {
    int dy = off / p.search_w() - p.range_y;
    int dx = off % p.search_w() - p.range_x;
    if (dy == 0 && dx == 0) return 'o';
    if (dy == 0) return dx > 0 ? '>' : '<';
    if (dx == 0) return dy > 0 ? 'v' : '^';
    return (dy > 0) == (dx > 0) ? '\\' : '/';
  };
  for (int my = 0; my < p.masks_y(); ++my) {
    std::cout << "  ";
    for (int mx = 0; mx < p.masks_x(); ++mx) {
      std::cout << arrow(cpu.best_offset[my * p.masks_x() + mx]) << ' ';
    }
    std::cout << "\n";
  }
  return 0;
}
