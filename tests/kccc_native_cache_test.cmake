# The native tier end to end across processes: run `kccc --tier native` twice
# with the same --cache-dir and assert the first process builds the shared
# object while the second serves it from disk with zero recompiles; then
# corrupt the artifact and require quarantine + rebuild instead of a failure.
# Invoked by ctest with -DKCCC=... -DKERNEL=... -DWORK_DIR=...
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(ARGS "${KERNEL}" -D CT_LOOP_COUNT=1 -D LOOP_COUNT=5
    --cache-dir "${WORK_DIR}/cache" --tier native)

execute_process(COMMAND "${KCCC}" ${ARGS}
  OUTPUT_VARIABLE out1 ERROR_VARIABLE err1 RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "first kccc run failed (rc=${rc1}):\n${out1}\n${err1}")
endif()
if(err1 MATCHES "no usable host C\\+\\+ compiler")
  # No toolchain on this host: the native tier is disabled by design and the
  # run above already proved the decoded path still succeeds.
  file(REMOVE_RECURSE "${WORK_DIR}")
  return()
endif()
if(NOT out1 MATCHES "native: builds-started=1 completed=1")
  message(FATAL_ERROR "first run should build the native artifact:\n${out1}")
endif()

execute_process(COMMAND "${KCCC}" ${ARGS}
  OUTPUT_VARIABLE out2 ERROR_VARIABLE err2 RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "second kccc run failed (rc=${rc2}):\n${out2}\n${err2}")
endif()
if(NOT out2 MATCHES "native: builds-started=0 completed=0 failures=0 served=0 generic=0 shape=0 shape-builds=0 fallbacks=0 disk-hits=1")
  message(FATAL_ERROR "second run should serve the native artifact from disk with zero recompiles:\n${out2}")
endif()

# A corrupted shared-object artifact must be quarantined and rebuilt, never
# served and never fatal.
file(GLOB artifacts "${WORK_DIR}/cache/*.nso")
list(LENGTH artifacts n_artifacts)
if(NOT n_artifacts EQUAL 1)
  message(FATAL_ERROR "expected exactly one native artifact, found ${n_artifacts}")
endif()
list(GET artifacts 0 artifact)
file(WRITE "${artifact}" "garbage, not a shared object envelope")
execute_process(COMMAND "${KCCC}" ${ARGS}
  OUTPUT_VARIABLE out3 ERROR_VARIABLE err3 RESULT_VARIABLE rc3)
if(NOT rc3 EQUAL 0)
  message(FATAL_ERROR "kccc crashed on a corrupt native artifact (rc=${rc3}):\n${out3}\n${err3}")
endif()
if(NOT out3 MATCHES "native: builds-started=1 completed=1")
  message(FATAL_ERROR "corrupt native artifact should quarantine and rebuild:\n${out3}")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
