// The asynchronous specialization service: single-flight coalescing, bounded
// queue backpressure, per-request deadlines, failure propagation, the
// non-blocking tiered promotion built on top of it, GPU-PF background
// re-specialization, and a multi-threaded stress run asserting
// exactly-one-compile-per-key and the ServeStats invariant
//   submitted == coalesced + completed + rejected   (after Drain).
//
// Determinism notes: tests that need a worker occupied use a "blocker" flight
// whose compile (a fully unrolled many-iteration loop) takes tens to hundreds
// of milliseconds — orders of magnitude longer than the microseconds of
// submission work raced against it — and poll executor gauges rather than
// sleep. No test asserts on a sleep-based ordering.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gpupf/pipeline.hpp"
#include "serve/compile_executor.hpp"
#include "vcuda/tiered.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/device.hpp"

namespace kspec {
namespace {

using serve::CompileExecutor;
using serve::ExecutorOptions;
using serve::ServeStats;

constexpr const char* kKernel = R"(
#ifndef N
#define N n
#endif
__kernel void f(float* out, int n) {
  float acc = 0.0f;
  for (int i = 0; i < N; i++) { acc += 1.0f; }
  out[threadIdx.x] = acc;
}
)";

kcc::CompileOptions OptsFor(int n) {
  kcc::CompileOptions opts;
  opts.defines["N"] = std::to_string(n);
  return opts;
}

// A deliberately slow-to-compile specialization: the loop fully unrolls to
// `n` iterations, so compile wall time grows with n.
kcc::CompileOptions BlockerOpts(int n = 20000) {
  kcc::CompileOptions opts = OptsFor(n);
  opts.max_unroll = n + 1;
  return opts;
}

vcuda::CompileRequest RequestFor(const kcc::CompileOptions& opts) {
  vcuda::CompileRequest req;
  req.source = kKernel;
  req.opts = opts;
  return req;
}

float RunOnce(vcuda::Context& ctx, vcuda::Module& mod, int n) {
  auto d_out = ctx.Malloc(32 * 4);
  vcuda::ArgPack args;
  args.Ptr(d_out).Int(n);
  ctx.Launch(mod, "f", vgpu::Dim3(1), vgpu::Dim3(32), args);
  float v = vcuda::Download<float>(ctx, d_out, 1)[0];
  ctx.Free(d_out);
  return v;
}

// Submits a heavy flight and returns once a worker has picked it up (the
// queue is drained), so subsequent submissions are guaranteed to queue behind
// it for the duration of its compile.
vcuda::ModuleFuture OccupyWorker(CompileExecutor& ex, vcuda::Context& ctx) {
  vcuda::SubmitResult r = ex.SubmitLoad(ctx, RequestFor(BlockerOpts()));
  EXPECT_EQ(r.status, vcuda::SubmitStatus::kScheduled);
  while (ex.queue_depth() != 0) std::this_thread::yield();
  return r.future;
}

void ExpectInvariant(const ServeStats& s) {
  EXPECT_EQ(s.submitted, s.coalesced + s.completed + s.rejected);
  EXPECT_EQ(s.completed, s.succeeded + s.failed + s.expired);
}

TEST(CompileExecutor, SingleFlightCoalescing) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  CompileExecutor ex({.workers = 1, .max_queue = 64});
  auto blocker = OccupyWorker(ex, ctx);

  // 16 requests for the same cold specialization while the only worker is
  // busy: one flight, 15 joins.
  std::vector<vcuda::ModuleFuture> futures;
  for (int i = 0; i < 16; ++i) {
    vcuda::SubmitResult r = ex.SubmitLoad(ctx, RequestFor(OptsFor(7)));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.status, i == 0 ? vcuda::SubmitStatus::kScheduled
                               : vcuda::SubmitStatus::kCoalesced);
    futures.push_back(r.future);
  }
  ex.Drain();

  std::shared_ptr<vcuda::Module> first = futures[0].get();
  ASSERT_NE(first, nullptr);
  for (auto& f : futures) EXPECT_EQ(f.get(), first);  // everyone shares the flight
  EXPECT_FLOAT_EQ(RunOnce(ctx, *first, 7), 7.0f);

  ServeStats s = ex.stats();
  EXPECT_EQ(s.submitted, 17u);  // blocker + 16
  EXPECT_EQ(s.coalesced, 15u);
  EXPECT_EQ(s.completed, 2u);  // blocker flight + the coalesced flight
  EXPECT_EQ(s.rejected, 0u);
  ExpectInvariant(s);
  EXPECT_EQ(ctx.cache_stats().misses, 2u);  // exactly one compile per key
}

TEST(CompileExecutor, BoundedQueueRejectsAndCallerFallsBack) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  CompileExecutor ex({.workers = 1, .max_queue = 2});
  auto blocker = OccupyWorker(ex, ctx);

  EXPECT_EQ(ex.SubmitLoad(ctx, RequestFor(OptsFor(11))).status,
            vcuda::SubmitStatus::kScheduled);
  EXPECT_EQ(ex.SubmitLoad(ctx, RequestFor(OptsFor(12))).status,
            vcuda::SubmitStatus::kScheduled);
  EXPECT_EQ(ex.queue_depth(), 2u);

  // Queue full: rejected, no future. The caller's fallback (an inline
  // compile) still works.
  vcuda::SubmitResult rejected = ex.SubmitLoad(ctx, RequestFor(OptsFor(13)));
  EXPECT_EQ(rejected.status, vcuda::SubmitStatus::kRejected);
  EXPECT_FALSE(rejected.ok());
  auto inline_mod = ctx.LoadModule(kKernel, OptsFor(13));
  EXPECT_FLOAT_EQ(RunOnce(ctx, *inline_mod, 13), 13.0f);

  ex.Drain();
  ServeStats s = ex.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.queue_depth_high_water, 2u);
  ExpectInvariant(s);
}

TEST(CompileExecutor, ExpiredDeadlineResolvesNull) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  CompileExecutor ex({.workers = 1, .max_queue = 8});

  vcuda::CompileRequest req = RequestFor(OptsFor(21));
  req.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  vcuda::SubmitResult r = ex.SubmitLoad(ctx, req);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.future.get(), nullptr);  // expired before any worker took it

  ex.Drain();
  ServeStats s = ex.stats();
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(ctx.cache_stats().misses, 0u);  // the compile was never paid
  ExpectInvariant(s);
}

TEST(CompileExecutor, CompileFailurePropagatesThroughFuture) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  CompileExecutor ex({.workers = 1, .max_queue = 8});

  vcuda::CompileRequest req;
  req.source = "__kernel void broken(";  // parse error
  vcuda::SubmitResult r = ex.SubmitLoad(ctx, req);
  ASSERT_TRUE(r.ok());
  EXPECT_THROW(r.future.get(), Error);

  ex.Drain();
  ServeStats s = ex.stats();
  EXPECT_EQ(s.failed, 1u);
  ExpectInvariant(s);
}

TEST(CompileExecutor, ShutdownCompletesAcceptedFlightsAndRejectsNew) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  CompileExecutor ex({.workers = 2, .max_queue = 8});
  vcuda::SubmitResult accepted = ex.SubmitLoad(ctx, RequestFor(OptsFor(5)));
  ASSERT_TRUE(accepted.ok());
  ex.Shutdown();
  ASSERT_NE(accepted.future.get(), nullptr);  // accepted work still completes
  EXPECT_EQ(ex.SubmitLoad(ctx, RequestFor(OptsFor(6))).status,
            vcuda::SubmitStatus::kRejected);
}

TEST(Context, LoadModuleAsyncWithoutServiceCompilesInline) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  vcuda::SubmitResult r = ctx.LoadModuleAsync(kKernel, OptsFor(4));
  EXPECT_EQ(r.status, vcuda::SubmitStatus::kInline);
  ASSERT_TRUE(r.ok());
  auto mod = r.future.get();  // already ready
  ASSERT_NE(mod, nullptr);
  EXPECT_FLOAT_EQ(RunOnce(ctx, *mod, 4), 4.0f);
  EXPECT_EQ(ctx.cache_stats().misses, 1u);
}

// ---------------------------------------------------------------------------
// Non-blocking tiered promotion
// ---------------------------------------------------------------------------

TEST(TieredAsync, PromotionServesReWhileCompilingThenSwaps) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  CompileExecutor ex({.workers = 1, .max_queue = 16});
  ctx.set_async_service(&ex);
  vcuda::TieredLoader tiered(&ctx, kKernel, /*hot_threshold=*/2);
  auto opts = OptsFor(9);

  // Cold: RE build.
  auto cold = tiered.Get(opts);
  EXPECT_EQ(cold->GetKernel("f").stats.unrolled_loops, 0);

  // Pin the worker so the promotion cannot finish during this test section.
  auto blocker = OccupyWorker(ex, ctx);

  // Hot: schedules the specialized build, keeps serving RE — this Get (the
  // launch that triggers promotion) does NOT stall for the compile.
  auto hot = tiered.Get(opts);
  EXPECT_EQ(hot->GetKernel("f").stats.unrolled_loops, 0);  // still the RE build
  EXPECT_FALSE(tiered.IsSpecialized(opts));
  {
    auto s = tiered.stats();
    EXPECT_EQ(s.background_compiles, 1u);
    EXPECT_EQ(s.promotions_pending, 1u);
    EXPECT_EQ(s.re_served_while_compiling, 1u);
    EXPECT_EQ(s.specializations, 0u);
  }

  ex.Drain();  // blocker + promotion both finish

  // First request after completion swaps the specialized build in.
  auto promoted = tiered.Get(opts);
  EXPECT_TRUE(tiered.IsSpecialized(opts));
  EXPECT_EQ(promoted->GetKernel("f").stats.unrolled_loops, 1);
  EXPECT_FLOAT_EQ(RunOnce(ctx, *promoted, 9), 9.0f);
  {
    auto s = tiered.stats();
    EXPECT_EQ(s.specializations, 1u);
    EXPECT_EQ(s.promotions_pending, 0u);
    EXPECT_EQ(s.failed_promotions, 0u);
  }
}

TEST(TieredAsync, RejectedPromotionFallsBackToReAndRetries) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  CompileExecutor ex({.workers = 1, .max_queue = 0});  // rejects everything
  ctx.set_async_service(&ex);
  vcuda::TieredLoader tiered(&ctx, kKernel, /*hot_threshold=*/1);
  auto opts = OptsFor(3);

  // Hot from the first request, but the service is saturated: serve RE.
  auto mod = tiered.Get(opts);
  EXPECT_EQ(mod->GetKernel("f").stats.unrolled_loops, 0);
  EXPECT_FALSE(tiered.IsSpecialized(opts));
  EXPECT_EQ(tiered.stats().background_compiles, 0u);
  EXPECT_EQ(ex.stats().rejected, 1u);

  // Service detached: the next hot request promotes inline (legacy blocking
  // path) — the loader retried rather than giving up.
  ctx.set_async_service(nullptr);
  auto promoted = tiered.Get(opts);
  EXPECT_TRUE(tiered.IsSpecialized(opts));
  EXPECT_EQ(promoted->GetKernel("f").stats.unrolled_loops, 1);
}

TEST(TieredAsync, ExpiredPromotionIsRescheduled) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  CompileExecutor ex({.workers = 1, .max_queue = 16});
  ctx.set_async_service(&ex);
  vcuda::TieredLoader tiered(&ctx, kKernel, /*hot_threshold=*/1);
  tiered.set_promotion_deadline(std::chrono::milliseconds(1));
  auto opts = OptsFor(15);

  auto blocker = OccupyWorker(ex, ctx);  // outlasts the 1 ms deadline
  auto mod = tiered.Get(opts);           // schedules; promotion expires queued
  EXPECT_EQ(mod->GetKernel("f").stats.unrolled_loops, 0);
  ex.Drain();
  EXPECT_EQ(ex.stats().expired, 1u);

  // The next hot request consumes the null result and reschedules.
  tiered.set_promotion_deadline(std::chrono::milliseconds(0));
  auto re_again = tiered.Get(opts);
  EXPECT_EQ(re_again->GetKernel("f").stats.unrolled_loops, 0);
  EXPECT_EQ(tiered.stats().background_compiles, 2u);
  ex.Drain();
  auto promoted = tiered.Get(opts);
  EXPECT_TRUE(tiered.IsSpecialized(opts));
  EXPECT_EQ(promoted->GetKernel("f").stats.unrolled_loops, 1);
  EXPECT_EQ(tiered.stats().failed_promotions, 0u);
}

TEST(TieredAsync, FailedPromotionKeepsServingReWithoutRetrying) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  CompileExecutor ex({.workers = 1, .max_queue = 16});
  ctx.set_async_service(&ex);
  vcuda::TieredLoader tiered(&ctx, kKernel, /*hot_threshold=*/1);

  // N must be an integer literal; this specialization cannot compile (the RE
  // build, with N left run-time, is fine).
  kcc::CompileOptions bad;
  bad.defines["N"] = "@not_a_number@";

  auto first = tiered.Get(bad);  // schedules the doomed promotion
  EXPECT_EQ(first->GetKernel("f").stats.unrolled_loops, 0);
  ex.Drain();
  auto second = tiered.Get(bad);  // consumes the failure
  EXPECT_EQ(second->GetKernel("f").stats.unrolled_loops, 0);
  auto third = tiered.Get(bad);  // no resubmission after a hard failure
  EXPECT_EQ(third->GetKernel("f").stats.unrolled_loops, 0);

  auto s = tiered.stats();
  EXPECT_EQ(s.failed_promotions, 1u);
  EXPECT_EQ(s.background_compiles, 1u);
  EXPECT_FALSE(tiered.IsSpecialized(bad));
  EXPECT_EQ(ex.stats().failed, 1u);
}

// ---------------------------------------------------------------------------
// Regression: a finished background promotion must be observable through
// IsSpecialized alone. Only Get swaps the ready future into `specialized`, so
// IsSpecialized used to report false forever on the drain-then-poll path —
// which also blinded any residency-based router to completed promotions.
// ---------------------------------------------------------------------------

TEST(TieredAsync, IsSpecializedObservesFinishedPromotionWithoutAnotherGet) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  CompileExecutor ex({.workers = 1, .max_queue = 16});
  ctx.set_async_service(&ex);
  vcuda::TieredLoader tiered(&ctx, kKernel, /*hot_threshold=*/1);
  auto opts = OptsFor(21);

  EXPECT_FALSE(tiered.IsSpecialized(opts));  // cold: no state at all
  auto mod = tiered.Get(opts);               // hot at once: schedules, serves RE
  EXPECT_EQ(mod->GetKernel("f").stats.unrolled_loops, 0);
  ex.Drain();  // the background build is now finished — but no Get consumed it

  EXPECT_TRUE(tiered.IsSpecialized(opts))
      << "a finished promotion must be visible without another Get";
  EXPECT_TRUE(tiered.IsSpecialized(opts));  // polling is idempotent

  // The poll did not perturb the swap-in path: the next Get still consumes
  // the pending future normally.
  auto promoted = tiered.Get(opts);
  EXPECT_EQ(promoted->GetKernel("f").stats.unrolled_loops, 1);
  EXPECT_EQ(tiered.stats().promotions_pending, 0u);
  EXPECT_EQ(tiered.stats().specializations, 1u);
}

// ---------------------------------------------------------------------------
// Regression: the blocking promotion path (no service attached) must compile
// once per key. M threads crossing the hot threshold together used to each
// call LoadModule — M-1 discarded duplicate compiles of a
// hundreds-of-milliseconds build.
// ---------------------------------------------------------------------------

TEST(TieredBlocking, ConcurrentHotPromotionCompilesExactlyOnce) {
  constexpr int kThreads = 8;
  vcuda::Context ctx(vgpu::TeslaC1060());
  vcuda::TieredLoader tiered(&ctx, kKernel, /*hot_threshold=*/1);

  // Threshold 1 sends every first Get straight into the promotion path, and
  // the blocker specialization compiles slowly enough that all 8 threads are
  // inside the promotion together — before the single-flight latch each one
  // ran (and cache-miss-counted) its own compile.
  const kcc::CompileOptions opts = BlockerOpts();
  std::atomic<int> ready{0};
  std::vector<std::shared_ptr<vcuda::Module>> modules(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      modules[t] = tiered.Get(opts);
    });
  }
  for (auto& w : workers) w.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(modules[t], nullptr) << "thread " << t;
    EXPECT_EQ(modules[t], modules[0]) << "thread " << t << " got its own build";
  }
  // Exactly one compile happened fleet-wide for this key (the RE build was
  // never needed: threshold 1 promotes before it is ever served).
  EXPECT_EQ(ctx.cache_stats().misses, 1u);
  auto s = tiered.stats();
  EXPECT_EQ(s.specializations, 1u);
  EXPECT_EQ(s.sk_served, static_cast<std::uint64_t>(kThreads));
  EXPECT_TRUE(tiered.IsSpecialized(opts));
}

// ---------------------------------------------------------------------------
// Prewarm: fleet-style cache seeding through the executor.
// ---------------------------------------------------------------------------

TEST(CompileExecutor, PrewarmSeedsTheTargetContextCache) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  CompileExecutor ex({.workers = 1, .max_queue = 16});
  auto opts = OptsFor(33);

  ASSERT_FALSE(ctx.HasCachedModule(kKernel, opts));
  vcuda::SubmitResult r = ex.Prewarm(ctx, RequestFor(opts));
  ASSERT_TRUE(r.ok());
  ex.Drain();
  ASSERT_NE(r.future.get(), nullptr);
  EXPECT_TRUE(ctx.HasCachedModule(kKernel, opts));

  ServeStats s = ex.stats();
  EXPECT_EQ(s.prewarmed, 1u);
  EXPECT_EQ(s.submitted, 1u);
  ExpectInvariant(s);
}

// ---------------------------------------------------------------------------
// Stress: one TieredLoader + one CompileExecutor, >= 8 threads, overlapping
// parameter sets
// ---------------------------------------------------------------------------

TEST(Stress, TieredAndExecutorExactlyOneCompilePerKey) {
  constexpr int kThreads = 8;
  constexpr int kIters = 40;
  constexpr int kKeys = 4;  // parameter sets N = 1..4

  vcuda::Context ctx(vgpu::TeslaC1060());
  CompileExecutor ex({.workers = 4, .max_queue = 256});
  ctx.set_async_service(&ex);
  vcuda::TieredLoader tiered(&ctx, kKernel, /*hot_threshold=*/3);

  std::atomic<std::uint64_t> tiered_gets{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Key and action selectors must be independent mod 2, or half the
        // keys would only ever see one kind of request.
        const int n = 1 + (t * 7 + i) % kKeys;
        if (i % 2 == 0) {
          auto mod = tiered.Get(OptsFor(n));
          tiered_gets.fetch_add(1);
          // Torn-promotion check: whatever build we got must be complete and
          // hold the kernel. (RE and SK both expose "f".)
          if (!mod || !mod->HasKernel("f")) torn.store(true);
        } else {
          vcuda::SubmitResult r = ex.SubmitLoad(ctx, RequestFor(OptsFor(n)));
          if (r.ok()) {
            auto mod = r.future.get();
            if (!mod || !mod->HasKernel("f")) torn.store(true);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  ex.Drain();
  EXPECT_FALSE(torn.load());

  // Every key saw far more than hot_threshold requests, so after the drain
  // one more Get per key swaps in (or already serves) its specialized build —
  // and it must be the *right* one (same cached binary as a direct load).
  for (int n = 1; n <= kKeys; ++n) {
    auto final_mod = tiered.Get(OptsFor(n));
    tiered_gets.fetch_add(1);
    EXPECT_TRUE(tiered.IsSpecialized(OptsFor(n))) << "key N=" << n;
    auto reference = ctx.LoadModule(kKernel, OptsFor(n));
    EXPECT_EQ(&final_mod->compiled(), &reference->compiled()) << "key N=" << n;
  }

  // Exactly one compile per key: the RE build plus one specialized build per
  // parameter set, no matter how the 8 threads interleaved.
  EXPECT_EQ(ctx.cache_stats().misses, 1u + kKeys);
  EXPECT_EQ(ctx.cache_stats().collisions_detected, 0u);

  ServeStats s = ex.stats();
  ExpectInvariant(s);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.failed, 0u);

  auto ts = tiered.stats();
  EXPECT_EQ(ts.re_served + ts.sk_served, tiered_gets.load());
  EXPECT_EQ(ts.specializations, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(ts.background_compiles, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(ts.promotions_pending, 0u);
  EXPECT_EQ(ts.failed_promotions, 0u);
}

// ---------------------------------------------------------------------------
// GPU-PF: background re-specialization on parameter change
// ---------------------------------------------------------------------------

TEST(GpupfAsync, ParameterChangeRespecializesWithoutStallingExecution) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  CompileExecutor ex({.workers = 1, .max_queue = 16});
  ctx.set_async_service(&ex);

  gpupf::Pipeline pipe(&ctx);
  auto* n = pipe.AddInt("n", 5);
  auto* extent = pipe.AddExtent("out", sizeof(float), 32);
  auto* grid = pipe.AddTriplet("grid", vgpu::Dim3(1));
  auto* block = pipe.AddTriplet("block", vgpu::Dim3(32));
  auto* mod = pipe.AddModule("mod", kKernel);
  mod->BindDefine("N", n);
  mod->set_async_refresh(true);
  auto* kernel = pipe.AddKernel("k", mod, "f");
  auto* out = pipe.AddGlobalMemory("buf", extent);
  auto* host = pipe.AddHostMemory("host", extent);
  pipe.AddKernelExec("run", nullptr, kernel, grid, block, {out, n});
  pipe.AddCopy("readback", nullptr, out, host);

  // First build is always blocking: the pipeline cannot execute without it.
  pipe.Run(1);
  EXPECT_FLOAT_EQ(host->host_span<float>()[0], 5.0f);
  EXPECT_FALSE(mod->respecialization_pending());

  // Pin the worker, then change the parameter: the next iteration schedules
  // the recompile and keeps serving the previous build (stale N) instead of
  // stalling for the compile.
  auto blocker = OccupyWorker(ex, ctx);
  n->Set(9);
  pipe.Run(1);
  EXPECT_TRUE(mod->respecialization_pending());
  EXPECT_FLOAT_EQ(host->host_span<float>()[0], 5.0f);  // previous specialization

  ex.Drain();
  pipe.Run(1);  // swap-in happens in this iteration's refresh
  EXPECT_FALSE(mod->respecialization_pending());
  EXPECT_FLOAT_EQ(host->host_span<float>()[0], 9.0f);

  // Without async_refresh the same change would have recompiled inline; with
  // it, the compile ran on the service.
  EXPECT_GE(ex.stats().succeeded, 1u);
}

}  // namespace
}  // namespace kspec
