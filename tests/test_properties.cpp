// Property-based sweeps (TEST_P) over the library's core invariants:
//
//  P1  SK == RE: for every application and every configuration, the
//      specialized kernel computes exactly what the run-time-evaluated one
//      does — the soundness property of the whole technique.
//  P2  Occupancy never violates any per-SM resource limit.
//  P3  In-block reductions are correct for every power-of-two block size.
//  P4  Unrolled loops compute what rolled loops compute, for every trip
//      count and step pattern.
//  P5  The cost model is monotone: more work never models faster.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/backproj/gpu.hpp"
#include "apps/matching/cpu_ref.hpp"
#include "apps/matching/gpu.hpp"
#include "apps/piv/cpu_ref.hpp"
#include "apps/piv/gpu.hpp"
#include "kcc/compiler.hpp"
#include "support/str.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/cost.hpp"

namespace kspec {
namespace {

// ---------------------------------------------------------------------------
// P1: SK == RE across applications and configurations
// ---------------------------------------------------------------------------

struct MatchCase {
  int tile;
  int threads;
  const char* device;
};

class MatchingSkReEquivalence : public ::testing::TestWithParam<MatchCase> {};

TEST_P(MatchingSkReEquivalence, ScoresIdentical) {
  const MatchCase& c = GetParam();
  apps::matching::Problem p = apps::matching::Generate("p1", 14, 11, 6, 7, 42);
  vcuda::Context ctx(vgpu::ProfileByName(c.device));
  apps::matching::MatcherConfig cfg;
  cfg.tile_h = cfg.tile_w = c.tile;
  cfg.threads = c.threads;
  cfg.specialize = false;
  auto re = apps::matching::GpuMatch(ctx, p, cfg);
  cfg.specialize = true;
  auto sk = apps::matching::GpuMatch(ctx, p, cfg);
  ASSERT_EQ(re.scores.size(), sk.scores.size());
  for (std::size_t i = 0; i < re.scores.size(); ++i) {
    // Same arithmetic in the same order: bit-identical.
    EXPECT_EQ(re.scores[i], sk.scores[i]) << i;
  }
  EXPECT_EQ(re.best_idx, sk.best_idx);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatchingSkReEquivalence,
                         ::testing::Values(MatchCase{4, 32, "VC1060"},
                                           MatchCase{4, 64, "VC2070"},
                                           MatchCase{8, 64, "VC1060"},
                                           MatchCase{8, 128, "VC2070"},
                                           // 11 spans the full template width (14x11):
                                           // exercises the remainder-row decomposition.
                                           MatchCase{11, 256, "VC1060"}),
                         [](const auto& info) {
                           return Format("tile%d_t%d_%s", info.param.tile, info.param.threads,
                                         info.param.device);
                         });

struct PivCase {
  apps::piv::Variant variant;
  int threads;
};

class PivSkReEquivalence : public ::testing::TestWithParam<PivCase> {};

TEST_P(PivSkReEquivalence, VectorsIdentical) {
  const PivCase& c = GetParam();
  apps::piv::Problem p = apps::piv::Generate("p1", 48, 8, 2, 8, 17);
  vcuda::Context ctx(vgpu::TeslaC2070());
  apps::piv::PivConfig cfg;
  cfg.variant = c.variant;
  cfg.threads = c.threads;
  cfg.specialize = true;
  auto sk = apps::piv::GpuPiv(ctx, p, cfg);
  if (c.variant == apps::piv::Variant::kRegBlock) {
    // No RE twin exists (register blocking requires specialization); compare
    // against the CPU reference instead.
    auto cpu = apps::piv::CpuPiv(p, 1);
    EXPECT_EQ(sk.field.best_offset, cpu.best_offset);
    return;
  }
  cfg.specialize = false;
  auto re = apps::piv::GpuPiv(ctx, p, cfg);
  EXPECT_EQ(re.field.best_offset, sk.field.best_offset);
  for (std::size_t i = 0; i < re.field.best_score.size(); ++i) {
    EXPECT_EQ(re.field.best_score[i], sk.field.best_score[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PivSkReEquivalence,
    ::testing::Values(PivCase{apps::piv::Variant::kBasic, 32},
                      PivCase{apps::piv::Variant::kBasic, 128},
                      PivCase{apps::piv::Variant::kRegBlock, 64},
                      PivCase{apps::piv::Variant::kWarpSpec, 64},
                      PivCase{apps::piv::Variant::kWarpSpec, 128}),
    [](const auto& info) {
      return Format("%s_t%d", apps::piv::VariantName(info.param.variant), info.param.threads);
    });

// ---------------------------------------------------------------------------
// P2: occupancy respects every limit
// ---------------------------------------------------------------------------

struct OccCase {
  unsigned threads, regs, smem;
};

class OccupancyInvariants
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, unsigned>> {};

TEST_P(OccupancyInvariants, NoResourceOversubscribed) {
  const OccCase c{std::get<0>(GetParam()), std::get<1>(GetParam()), std::get<2>(GetParam())};
  for (const auto& dev : {vgpu::TeslaC1060(), vgpu::TeslaC2070()}) {
    vgpu::Occupancy occ = vgpu::ComputeOccupancy(dev, vgpu::Dim3(c.threads), c.regs, c.smem);
    if (occ.blocks_per_sm == 0) continue;  // unlaunchable is a valid answer
    unsigned warps_per_block = (c.threads + dev.warp_size - 1) / dev.warp_size;
    EXPECT_LE(occ.blocks_per_sm * warps_per_block, dev.max_warps_per_sm);
    EXPECT_LE(occ.blocks_per_sm, dev.max_blocks_per_sm);
    unsigned regs_per_warp = ((c.regs * dev.warp_size + dev.register_alloc_unit - 1) /
                              dev.register_alloc_unit) *
                             dev.register_alloc_unit;
    EXPECT_LE(occ.blocks_per_sm * warps_per_block * regs_per_warp, dev.registers_per_sm);
    unsigned smem_block = ((std::max(c.smem, 1u) + 127) / 128) * 128;
    EXPECT_LE(occ.blocks_per_sm * smem_block, dev.shared_mem_per_sm);
    EXPECT_EQ(occ.active_warps, occ.blocks_per_sm * warps_per_block);
    EXPECT_LE(occ.occupancy, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OccupancyInvariants,
                         ::testing::Combine(::testing::Values(32u, 96u, 128u, 256u, 512u),
                                            ::testing::Values(8u, 21u, 40u, 63u),
                                            ::testing::Values(0u, 2048u, 12288u)),
                         [](const auto& info) {
                           return Format("t%u_r%u_s%u", std::get<0>(info.param),
                                         std::get<1>(info.param), std::get<2>(info.param));
                         });

// ---------------------------------------------------------------------------
// P3: reductions correct at every power-of-two block size
// ---------------------------------------------------------------------------

class ReductionSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReductionSweep, BlockSumMatchesSerial) {
  unsigned threads = GetParam();
  std::string src = Format(R"(
__kernel void blockSum(float* in, float* out) {
  __shared float red[%u];
  unsigned int t = threadIdx.x;
  red[t] = in[blockIdx.x * %uu + t];
  __syncthreads();
  for (unsigned int step = %uu; step > 0u; step = step >> 1) {
    if (t < step) {
      red[t] += red[t + step];
    }
    __syncthreads();
  }
  if (t == 0u) {
    out[blockIdx.x] = red[0];
  }
}
)", threads, threads, threads / 2);
  vcuda::Context ctx(vgpu::TeslaC1060());
  auto mod = ctx.LoadModule(src, {});
  const unsigned blocks = 3;
  std::vector<float> in(threads * blocks);
  std::iota(in.begin(), in.end(), 1.0f);
  auto d_in = vcuda::Upload<float>(ctx, std::span<const float>(in));
  auto d_out = ctx.Malloc(blocks * 4);
  vcuda::ArgPack args;
  args.Ptr(d_in).Ptr(d_out);
  ctx.Launch(*mod, "blockSum", vgpu::Dim3(blocks), vgpu::Dim3(threads), args);
  auto out = vcuda::Download<float>(ctx, d_out, blocks);
  for (unsigned b = 0; b < blocks; ++b) {
    float expect = 0;
    for (unsigned t = 0; t < threads; ++t) expect += in[b * threads + t];
    EXPECT_FLOAT_EQ(out[b], expect) << "block " << b << " threads " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Pow2, ReductionSweep, ::testing::Values(2u, 4u, 32u, 64u, 128u, 256u, 512u));

// ---------------------------------------------------------------------------
// P4: unrolled == rolled for assorted trip patterns
// ---------------------------------------------------------------------------

struct LoopCase {
  int start, bound, step;
  const char* cmp;
};

class UnrollEquivalence : public ::testing::TestWithParam<LoopCase> {};

TEST_P(UnrollEquivalence, SameSumEitherWay) {
  const LoopCase& c = GetParam();
  // N as a macro (constant -> unrolls); same loop with a runtime bound stays
  // rolled. The iteration space is identical; sums must match bit-exactly.
  std::string body = Format(R"(
  float acc = 0.0f;
  for (int i = %d; i %s BOUND; i += %d) {
    acc += (float)(i * 3 - 1);
  }
  out[threadIdx.x] = acc;
)", c.start, c.cmp, c.step);
  std::string src_const = "#define BOUND " + std::to_string(c.bound) +
                          "\n__kernel void f(float* out, int bound) {" + body + "}";
  std::string src_runtime =
      "#define BOUND bound\n__kernel void f(float* out, int bound) {" + body + "}";

  auto run = [&](const std::string& src) {
    vcuda::Context ctx(vgpu::TeslaC1060());
    auto mod = ctx.LoadModule(src, {});
    auto d_out = ctx.Malloc(32 * 4);
    vcuda::ArgPack args;
    args.Ptr(d_out).Int(c.bound);
    ctx.Launch(*mod, "f", vgpu::Dim3(1), vgpu::Dim3(32), args);
    return vcuda::Download<float>(ctx, d_out, 32)[0];
  };
  EXPECT_EQ(run(src_const), run(src_runtime));
}

INSTANTIATE_TEST_SUITE_P(Patterns, UnrollEquivalence,
                         ::testing::Values(LoopCase{0, 8, 1, "<"}, LoopCase{0, 0, 1, "<"},
                                           LoopCase{0, 1, 1, "<"}, LoopCase{2, 17, 3, "<"},
                                           LoopCase{0, 9, 2, "<="}, LoopCase{5, 33, 7, "<"}),
                         [](const auto& info) {
                           return Format("s%d_b%d_st%d_%s", info.param.start, info.param.bound,
                                         info.param.step,
                                         std::string(info.param.cmp) == "<" ? "lt" : "le");
                         });

// ---------------------------------------------------------------------------
// P5: cost model monotonicity over a parameter grid
// ---------------------------------------------------------------------------

TEST(CostModelProperty, MonotoneInWorkAndOccupancy) {
  vgpu::DeviceProfile dev = vgpu::TeslaC1060();
  for (double issue : {1e4, 1e5, 1e6}) {
    for (std::uint64_t mem : {std::uint64_t{1000}, std::uint64_t{50000}}) {
      for (unsigned regs : {10u, 30u, 60u}) {
        vgpu::LaunchStats a;
        a.blocks = 120;
        a.threads_per_block = 128;
        a.issue_cycles = issue;
        a.memory_cycles = static_cast<double>(mem);
        a.global_instrs = mem / 10;
        a.warp_instrs = static_cast<std::uint64_t>(issue);
        a.occupancy = vgpu::ComputeOccupancy(dev, vgpu::Dim3(128), regs, 1024);
        vgpu::LaunchStats more_compute = a;
        more_compute.issue_cycles *= 1.5;
        vgpu::LaunchStats more_mem = a;
        more_mem.memory_cycles *= 1.5;
        vgpu::ApplyCostModel(dev, a);
        vgpu::ApplyCostModel(dev, more_compute);
        vgpu::ApplyCostModel(dev, more_mem);
        EXPECT_GE(more_compute.sim_millis, a.sim_millis);
        EXPECT_GE(more_mem.sim_millis, a.sim_millis);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Backprojection zpt partition property: any zpt dividing vol_z gives the
// same volume bit-for-bit.
// ---------------------------------------------------------------------------

class BackprojZptSweep : public ::testing::TestWithParam<int> {};

TEST_P(BackprojZptSweep, PartitionInvariant) {
  int zpt = GetParam();
  apps::backproj::Geometry g;
  g.vol_n = 10;
  g.vol_z = 8;
  g.det_u = 20;
  g.det_v = 14;
  g.n_angles = 6;
  apps::backproj::Problem p = apps::backproj::Generate("prop", g, 2, 88);
  vcuda::Context ctx(vgpu::TeslaC2070());
  apps::backproj::BackprojConfig base;
  base.threads = 32;
  base.zpt = 1;
  base.specialize = true;
  auto ref = apps::backproj::GpuBackproject(ctx, p, base);
  apps::backproj::BackprojConfig cfg = base;
  cfg.zpt = zpt;
  auto r = apps::backproj::GpuBackproject(ctx, p, cfg);
  ASSERT_EQ(ref.volume.size(), r.volume.size());
  for (std::size_t i = 0; i < ref.volume.size(); ++i) {
    EXPECT_EQ(ref.volume[i], r.volume[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Divisors, BackprojZptSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace kspec
