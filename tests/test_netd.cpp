// The specialization service (netd): wire-protocol framing and malformed-input
// handling, the content-addressed artifact store's crash/corruption matrix
// (torn write, checksum flip, format-version bump, hash collision, concurrent
// publishers), the RemoteCompileService's inherited executor semantics
// (single-flight coalescing, bounded-queue backpressure, deadlines) and its
// store/RPC/fallback fetch ladder, TieredLoader promotion through the remote
// service, and the in-process SpecDaemon end to end: cross-process
// single-flight, per-tenant throttling, malformed requests, stats/shutdown
// control frames, restart with a warm store (zero recompiles), and hot-key
// prewarm after a restart with a cold store.
//
// Determinism: daemon tests never sleep-and-hope. The daemon object lives
// in-process, so tests pin its state by polling its stats gauges (e.g. "the
// blocker flight is submitted") before issuing the racing request, exactly
// like test_serve's OccupyWorker pattern.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "kcc/cache_key.hpp"
#include "kcc/serialize.hpp"
#include "netd/artifact_store.hpp"
#include "netd/daemon.hpp"
#include "netd/protocol.hpp"
#include "netd/remote_service.hpp"
#include "serve/compile_executor.hpp"
#include "support/serialize.hpp"
#include "support/status.hpp"
#include "support/temp_dir.hpp"
#include "vcuda/tiered.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/device.hpp"

namespace kspec {
namespace {

namespace fs = std::filesystem;
using netd::ArtifactStore;
using netd::CompileReq;
using netd::DaemonOptions;
using netd::ErrorBody;
using netd::ErrorCode;
using netd::Frame;
using netd::FrameType;
using netd::RecvStatus;
using netd::RemoteCompileService;
using netd::RemoteServiceOptions;
using netd::SpecDaemon;

constexpr const char* kKernel = R"(
#ifndef N
#define N n
#endif
__kernel void f(float* out, int n) {
  float acc = 0.0f;
  for (int i = 0; i < N; i++) { acc += 1.0f; }
  out[threadIdx.x] = acc;
}
)";

kcc::CompileOptions OptsFor(int n) {
  kcc::CompileOptions opts;
  opts.defines["N"] = std::to_string(n);
  return opts;
}

// A deliberately slow-to-compile specialization (fully unrolled many-iteration
// loop): the window it holds a worker or daemon flight open dwarfs the
// microseconds of protocol work raced against it.
kcc::CompileOptions BlockerOpts(int n = 20000) {
  kcc::CompileOptions opts = OptsFor(n);
  opts.max_unroll = n + 1;
  return opts;
}

kcc::ModuleCacheKey KeyFor(const kcc::CompileOptions& opts,
                           const std::string& device = "VC1060") {
  return kcc::ModuleCacheKey::Make(kKernel, opts, device);
}

vcuda::CompileRequest RequestFor(const kcc::CompileOptions& opts) {
  vcuda::CompileRequest req;
  req.source = kKernel;
  req.opts = opts;
  return req;
}

float RunOnce(vcuda::Context& ctx, vcuda::Module& mod, int n) {
  auto d_out = ctx.Malloc(32 * 4);
  vcuda::ArgPack args;
  args.Ptr(d_out).Int(n);
  ctx.Launch(mod, "f", vgpu::Dim3(1), vgpu::Dim3(32), args);
  float v = vcuda::Download<float>(ctx, d_out, 1)[0];
  ctx.Free(d_out);
  return v;
}

// A unique scratch directory (store dirs, daemon sockets), removed on scope
// exit. ScopedTempDir roots under /tmp (or TMPDIR) so the AF_UNIX socket path
// stays well inside sockaddr_un's ~108-byte limit regardless of the build
// tree's depth.
struct ScratchDir : ScopedTempDir {
  ScratchDir() : ScopedTempDir("kspec_netd_") { EXPECT_TRUE(valid()); }
};

std::vector<std::uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// Deliberately non-atomic overwrite: tests forge the on-disk states a crashed
// or buggy publisher would leave behind.
void WriteAll(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

std::size_t CountEntriesMatching(const std::string& dir, const std::string& needle) {
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().find(needle) != std::string::npos) ++n;
  }
  return n;
}

// A raw wire-protocol client against a daemon socket, with a retry loop on
// connect (the accept thread may still be coming up) and a generous receive
// timeout so a daemon bug fails the test instead of hanging it.
struct RawClient {
  int fd = -1;
  explicit RawClient(const std::string& socket_path) {
    for (int i = 0; i < 500 && fd < 0; ++i) {
      fd = netd::ConnectUnix(socket_path);
      if (fd < 0) std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(fd, 0) << "could not connect to " << socket_path;
    if (fd >= 0) netd::SetRecvTimeout(fd, std::chrono::milliseconds(60000));
  }
  ~RawClient() {
    if (fd >= 0) ::close(fd);
  }
  RawClient(const RawClient&) = delete;
  RawClient& operator=(const RawClient&) = delete;

  bool SendCompile(const std::string& tenant, const kcc::ModuleCacheKey& key,
                   std::uint32_t deadline_ms = 0) {
    CompileReq req;
    req.tenant = tenant;
    req.key_text = key.CanonicalText();
    req.deadline_ms = deadline_ms;
    return netd::SendFrame(fd, FrameType::kCompileReq, netd::EncodeCompileReq(req));
  }
};

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(NetdProtocol, CompileReqAndErrorBodiesRoundTrip) {
  CompileReq req;
  req.tenant = "tenant-7";
  req.key_text = KeyFor(OptsFor(9)).CanonicalText();  // binary-safe payload
  req.deadline_ms = 1234;
  std::vector<std::uint8_t> enc = netd::EncodeCompileReq(req);
  CompileReq back = netd::DecodeCompileReq(enc);
  EXPECT_EQ(back.tenant, req.tenant);
  EXPECT_EQ(back.key_text, req.key_text);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);

  // Trailing garbage is malformed, not silently ignored.
  enc.push_back(0x00);
  EXPECT_THROW(netd::DecodeCompileReq(enc), SerializeError);
  EXPECT_THROW(netd::DecodeCompileReq(std::vector<std::uint8_t>{0xFF}), SerializeError);

  ErrorBody err;
  err.code = ErrorCode::kThrottled;
  err.message = "quota";
  ErrorBody eback = netd::DecodeError(netd::EncodeError(err));
  EXPECT_EQ(eback.code, ErrorCode::kThrottled);
  EXPECT_EQ(eback.message, "quota");
}

TEST(NetdProtocol, FramesRoundTripAndRejectMalformedHeaders) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  // Empty-payload and binary-payload frames round trip.
  ASSERT_TRUE(netd::SendFrame(sv[0], FrameType::kPing, std::string()));
  std::vector<std::uint8_t> body = {0x00, 0x01, 0xFE, 0xFF};
  ASSERT_TRUE(netd::SendFrame(sv[0], FrameType::kArtifactResp,
                              std::span<const std::uint8_t>(body)));
  Frame f;
  ASSERT_EQ(netd::RecvFrame(sv[1], &f), RecvStatus::kOk);
  EXPECT_EQ(f.type, FrameType::kPing);
  EXPECT_TRUE(f.payload.empty());
  ASSERT_EQ(netd::RecvFrame(sv[1], &f), RecvStatus::kOk);
  EXPECT_EQ(f.type, FrameType::kArtifactResp);
  EXPECT_EQ(f.payload, body);

  // Bad magic: malformed, not a crash.
  std::uint8_t junk[netd::kFrameHeaderBytes] = {0xDE, 0xAD, 0xBE, 0xEF};
  ASSERT_EQ(::write(sv[0], junk, sizeof(junk)), static_cast<ssize_t>(sizeof(junk)));
  EXPECT_EQ(netd::RecvFrame(sv[1], &f), RecvStatus::kMalformed);
  ::close(sv[0]);
  ::close(sv[1]);

  // An over-large declared payload is rejected from the header alone.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::uint8_t huge[netd::kFrameHeaderBytes] = {};
  const std::uint32_t magic = netd::kFrameMagic;
  std::memcpy(huge, &magic, 4);
  huge[4] = netd::kProtocolVersion;
  huge[5] = static_cast<std::uint8_t>(FrameType::kCompileReq);
  const std::uint64_t too_big = netd::kMaxFramePayload + 1;
  std::memcpy(huge + 8, &too_big, 8);
  ASSERT_EQ(::write(sv[0], huge, sizeof(huge)), static_cast<ssize_t>(sizeof(huge)));
  EXPECT_EQ(netd::RecvFrame(sv[1], &f), RecvStatus::kTooLarge);

  // Clean EOF before any byte is kClosed (how an idle peer hangs up).
  ::close(sv[0]);
  EXPECT_EQ(netd::RecvFrame(sv[1], &f), RecvStatus::kClosed);
  ::close(sv[1]);
}

// ---------------------------------------------------------------------------
// Artifact store: the crash/corruption matrix
// ---------------------------------------------------------------------------

TEST(NetdArtifactStore, PublishThenLoadRoundTrips) {
  ScratchDir scratch;
  ArtifactStore store(scratch.File("store"));
  vcuda::Context ctx(vgpu::TeslaC1060());
  auto mod = ctx.LoadModule(kKernel, OptsFor(7));
  const kcc::ModuleCacheKey key = KeyFor(OptsFor(7));

  EXPECT_FALSE(store.Contains(key));
  EXPECT_EQ(store.Load(key), nullptr);  // miss, counted
  ASSERT_TRUE(store.Publish(key, mod->compiled()));
  EXPECT_TRUE(store.Contains(key));

  auto loaded = store.Load(key);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->kernels.size(), mod->compiled().kernels.size());

  netd::StoreStats s = store.stats();
  EXPECT_EQ(s.publishes, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.corrupt_quarantined, 0u);
  EXPECT_EQ(s.collisions, 0u);
}

TEST(NetdArtifactStore, TornWriteIsQuarantinedAndRepublishable) {
  ScratchDir scratch;
  ArtifactStore store(scratch.File("store"));
  vcuda::Context ctx(vgpu::TeslaC1060());
  auto mod = ctx.LoadModule(kKernel, OptsFor(8));
  const kcc::ModuleCacheKey key = KeyFor(OptsFor(8));
  ASSERT_TRUE(store.Publish(key, mod->compiled()));

  // A crashed publisher's torn write: the file ends mid-payload.
  const std::string path = store.PathFor(key);
  std::vector<std::uint8_t> bytes = ReadAll(path);
  bytes.resize(bytes.size() / 2);
  WriteAll(path, bytes);

  EXPECT_EQ(store.Load(key), nullptr);
  EXPECT_EQ(store.stats().corrupt_quarantined, 1u);
  EXPECT_FALSE(store.Contains(key)) << "a quarantined entry must not be re-read";
  EXPECT_EQ(CountEntriesMatching(store.dir(), ".bad."), 1u)
      << "the bad entry is renamed aside, not served";

  // The next publish lands cleanly on the vacated name.
  ASSERT_TRUE(store.Publish(key, mod->compiled()));
  EXPECT_NE(store.Load(key), nullptr);
}

TEST(NetdArtifactStore, ChecksumMismatchIsQuarantined) {
  ScratchDir scratch;
  ArtifactStore store(scratch.File("store"));
  vcuda::Context ctx(vgpu::TeslaC1060());
  auto mod = ctx.LoadModule(kKernel, OptsFor(9));
  const kcc::ModuleCacheKey key = KeyFor(OptsFor(9));
  ASSERT_TRUE(store.Publish(key, mod->compiled()));

  const std::string path = store.PathFor(key);
  std::vector<std::uint8_t> bytes = ReadAll(path);
  bytes.back() ^= 0x5A;  // flip payload bits; header still parses
  WriteAll(path, bytes);

  EXPECT_EQ(store.Load(key), nullptr);
  EXPECT_EQ(store.stats().corrupt_quarantined, 1u);
  EXPECT_FALSE(store.Contains(key));
}

TEST(NetdArtifactStore, FormatVersionBumpIsTreatedAsMiss) {
  ScratchDir scratch;
  ArtifactStore store(scratch.File("store"));
  vcuda::Context ctx(vgpu::TeslaC1060());
  auto mod = ctx.LoadModule(kKernel, OptsFor(10));
  const kcc::ModuleCacheKey key = KeyFor(OptsFor(10));
  ASSERT_TRUE(store.Publish(key, mod->compiled()));

  // An artifact from a future format version must never be half-parsed.
  const std::string path = store.PathFor(key);
  std::vector<std::uint8_t> bytes = ReadAll(path);
  const std::uint32_t future_version = kcc::kModuleFormatVersion + 1;
  std::memcpy(bytes.data() + kcc::kFormatVersionOffset, &future_version, 4);
  WriteAll(path, bytes);

  EXPECT_EQ(store.Load(key), nullptr);
  EXPECT_EQ(store.stats().corrupt_quarantined, 1u);
  EXPECT_FALSE(store.Contains(key));
}

TEST(NetdArtifactStore, HashCollisionIsAMissButNotQuarantined) {
  ScratchDir scratch;
  ArtifactStore store(scratch.File("store"));
  vcuda::Context ctx(vgpu::TeslaC1060());
  auto mod = ctx.LoadModule(kKernel, OptsFor(11));
  const kcc::ModuleCacheKey owner = KeyFor(OptsFor(11));
  const kcc::ModuleCacheKey other = KeyFor(OptsFor(12));
  ASSERT_TRUE(store.Publish(owner, mod->compiled()));

  // Forge a hash collision: a perfectly valid artifact for `owner` sitting at
  // `other`'s path. It belongs to its embedded key, so it is a miss for
  // `other` — but NOT corruption, and it must be left in place.
  fs::copy_file(store.PathFor(owner), store.PathFor(other));
  EXPECT_EQ(store.Load(other), nullptr);
  netd::StoreStats s = store.stats();
  EXPECT_EQ(s.collisions, 1u);
  EXPECT_EQ(s.corrupt_quarantined, 0u);
  EXPECT_TRUE(fs::exists(store.PathFor(other))) << "colliding entries are not destroyed";
}

TEST(NetdArtifactStore, PublishBytesRejectsAnArtifactForADifferentKey) {
  ScratchDir scratch;
  ArtifactStore store(scratch.File("store"));
  vcuda::Context ctx(vgpu::TeslaC1060());
  auto mod = ctx.LoadModule(kKernel, OptsFor(13));
  const kcc::ModuleCacheKey real = KeyFor(OptsFor(13));
  const kcc::ModuleCacheKey victim = KeyFor(OptsFor(14));

  const std::vector<std::uint8_t> bytes =
      kcc::Serialize(mod->compiled(), real.CanonicalText());
  EXPECT_FALSE(store.PublishBytes(victim, bytes))
      << "a response for one key must not be publishable under another";
  EXPECT_FALSE(store.Contains(victim));
  EXPECT_TRUE(store.PublishBytes(real, bytes));
  EXPECT_NE(store.Load(real), nullptr);
}

TEST(NetdArtifactStore, ConcurrentPublishersOneFileAndReadersNeverSeePartialData) {
  constexpr int kPublishers = 6;
  constexpr int kReaders = 4;
  constexpr int kRounds = 25;

  ScratchDir scratch;
  const std::string dir = scratch.File("store");
  ArtifactStore writer_store(dir);
  ArtifactStore reader_store(dir);  // a second process's view of the same dir
  vcuda::Context ctx(vgpu::TeslaC1060());
  auto mod = ctx.LoadModule(kKernel, OptsFor(15));
  const kcc::ModuleCacheKey key = KeyFor(OptsFor(15));
  const std::size_t kernel_count = mod->compiled().kernels.size();

  std::atomic<bool> stop{false};
  std::atomic<bool> bad_read{false};
  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        auto loaded = reader_store.Load(key);
        // Every read is all-or-nothing: a miss before the first publish, or a
        // complete validated artifact — never a torn one.
        if (loaded && loaded->kernels.size() != kernel_count) bad_read.store(true);
      }
    });
  }
  std::vector<std::thread> publishers;
  for (int p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        if (!writer_store.Publish(key, mod->compiled())) bad_read.store(true);
      }
    });
  }
  for (auto& t : publishers) t.join();
  stop.store(true);
  for (auto& t : threads) t.join();

  EXPECT_FALSE(bad_read.load());
  // Atomic renames mean readers can never hit a torn file, so the reader
  // store must have quarantined nothing.
  EXPECT_EQ(reader_store.stats().corrupt_quarantined, 0u);
  EXPECT_EQ(writer_store.stats().publishes,
            static_cast<std::uint64_t>(kPublishers * kRounds));

  // Exactly one artifact remains; every temp file was renamed or cleaned up.
  EXPECT_EQ(CountEntriesMatching(dir, ".kmod"), 1u);
  EXPECT_EQ(CountEntriesMatching(dir, ".tmp"), 0u);
  auto final_mod = reader_store.Load(key);
  ASSERT_NE(final_mod, nullptr);
  EXPECT_EQ(final_mod->kernels.size(), kernel_count);
}

// ---------------------------------------------------------------------------
// RemoteCompileService: the executor contract survives the subclassing
// ---------------------------------------------------------------------------

// With no daemon and no store, fallback_local compiles in-process — so the
// service must behave exactly like the local executor it subclasses.
RemoteServiceOptions LocalOnlyOptions(const std::string& store_dir = {}) {
  RemoteServiceOptions ro;
  ro.store_dir = store_dir;
  ro.workers = 1;
  ro.max_queue = 64;
  return ro;
}

vcuda::ModuleFuture OccupyWorker(serve::CompileExecutor& ex, vcuda::Context& ctx) {
  vcuda::SubmitResult r = ex.SubmitLoad(ctx, RequestFor(BlockerOpts()));
  EXPECT_EQ(r.status, vcuda::SubmitStatus::kScheduled);
  while (ex.queue_depth() != 0) std::this_thread::yield();
  return r.future;
}

TEST(RemoteService, SingleFlightCoalescingAndStorePublishOnFallback) {
  ScratchDir scratch;
  vcuda::Context ctx(vgpu::TeslaC1060());
  RemoteCompileService svc(LocalOnlyOptions(scratch.File("store")));
  auto blocker = OccupyWorker(svc, ctx);

  std::vector<vcuda::ModuleFuture> futures;
  for (int i = 0; i < 16; ++i) {
    vcuda::SubmitResult r = svc.SubmitLoad(ctx, RequestFor(OptsFor(7)));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.status, i == 0 ? vcuda::SubmitStatus::kScheduled
                               : vcuda::SubmitStatus::kCoalesced);
    futures.push_back(r.future);
  }
  svc.Drain();

  std::shared_ptr<vcuda::Module> first = futures[0].get();
  ASSERT_NE(first, nullptr);
  for (auto& f : futures) EXPECT_EQ(f.get(), first);
  EXPECT_FLOAT_EQ(RunOnce(ctx, *first, 7), 7.0f);

  serve::ServeStats s = svc.stats();
  EXPECT_EQ(s.submitted, 17u);
  EXPECT_EQ(s.coalesced, 15u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.submitted, s.coalesced + s.completed + s.rejected);
  EXPECT_EQ(ctx.cache_stats().misses, 2u);  // exactly one compile per key

  // Both fallback compiles were published for the rest of the fleet.
  netd::RemoteStats rs = svc.remote_stats();
  EXPECT_EQ(rs.local_fallbacks, 2u);
  EXPECT_EQ(rs.store_hits, 0u);
  ArtifactStore probe(scratch.File("store"));
  EXPECT_TRUE(probe.Contains(KeyFor(OptsFor(7))));
  EXPECT_TRUE(probe.Contains(KeyFor(BlockerOpts())));
}

TEST(RemoteService, SecondProcessAdoptsFromTheStoreWithoutCompiling) {
  ScratchDir scratch;
  const std::string store_dir = scratch.File("store");
  {
    vcuda::Context ctx(vgpu::TeslaC1060());
    RemoteCompileService svc(LocalOnlyOptions(store_dir));
    vcuda::SubmitResult r = svc.SubmitLoad(ctx, RequestFor(OptsFor(21)));
    ASSERT_TRUE(r.ok());
    ASSERT_NE(r.future.get(), nullptr);
  }

  // "Another process": fresh context, fresh service, same store directory.
  vcuda::Context ctx2(vgpu::TeslaC1060());
  RemoteCompileService svc2(LocalOnlyOptions(store_dir));
  vcuda::SubmitResult r = svc2.SubmitLoad(ctx2, RequestFor(OptsFor(21)));
  ASSERT_TRUE(r.ok());
  auto mod = r.future.get();
  ASSERT_NE(mod, nullptr);
  EXPECT_FLOAT_EQ(RunOnce(ctx2, *mod, 21), 21.0f);

  EXPECT_EQ(ctx2.cache_stats().misses, 0u) << "the compile must come from the store";
  EXPECT_EQ(ctx2.cache_stats().adopted, 1u);
  netd::RemoteStats rs = svc2.remote_stats();
  EXPECT_EQ(rs.store_hits, 1u);
  EXPECT_EQ(rs.local_fallbacks, 0u);
}

TEST(RemoteService, BoundedQueueAndDeadlinesMatchTheLocalExecutor) {
  ScratchDir scratch;
  vcuda::Context ctx(vgpu::TeslaC1060());
  RemoteServiceOptions ro = LocalOnlyOptions(scratch.File("store"));
  ro.max_queue = 2;
  RemoteCompileService svc(ro);
  auto blocker = OccupyWorker(svc, ctx);

  EXPECT_EQ(svc.SubmitLoad(ctx, RequestFor(OptsFor(31))).status,
            vcuda::SubmitStatus::kScheduled);
  EXPECT_EQ(svc.SubmitLoad(ctx, RequestFor(OptsFor(32))).status,
            vcuda::SubmitStatus::kScheduled);
  vcuda::SubmitResult rejected = svc.SubmitLoad(ctx, RequestFor(OptsFor(33)));
  EXPECT_EQ(rejected.status, vcuda::SubmitStatus::kRejected);
  EXPECT_FALSE(rejected.ok());
  svc.Drain();  // reopen the queue before the deadline check

  // An already-expired deadline resolves null without paying any fetch.
  vcuda::CompileRequest late = RequestFor(OptsFor(34));
  late.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  vcuda::SubmitResult r = svc.SubmitLoad(ctx, late);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.future.get(), nullptr);

  svc.Drain();
  serve::ServeStats s = svc.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.submitted, s.coalesced + s.completed + s.rejected);
}

TEST(RemoteService, NoDaemonNoFallbackFailsTheFlightLoudly) {
  RemoteServiceOptions ro;  // no socket, no store
  ro.workers = 1;
  ro.fallback_local = false;
  RemoteCompileService svc(ro);
  vcuda::Context ctx(vgpu::TeslaC1060());

  vcuda::SubmitResult r = svc.SubmitLoad(ctx, RequestFor(OptsFor(41)));
  ASSERT_TRUE(r.ok());
  EXPECT_THROW(r.future.get(), Error);
  svc.Drain();
  EXPECT_EQ(svc.stats().failed, 1u);
  EXPECT_EQ(ctx.cache_stats().misses, 0u);
}

TEST(RemoteService, TieredLoaderPromotesThroughTheRemoteServiceUnchanged) {
  ScratchDir scratch;
  const std::string store_dir = scratch.File("store");
  {
    vcuda::Context ctx(vgpu::TeslaC1060());
    RemoteCompileService svc(LocalOnlyOptions(store_dir));
    ctx.set_async_service(&svc);
    vcuda::TieredLoader tiered(&ctx, kKernel, /*hot_threshold=*/1);
    auto opts = OptsFor(9);

    auto first = tiered.Get(opts);  // hot at once: schedules, serves RE
    EXPECT_EQ(first->GetKernel("f").stats.unrolled_loops, 0);
    svc.Drain();
    auto promoted = tiered.Get(opts);
    EXPECT_TRUE(tiered.IsSpecialized(opts));
    EXPECT_EQ(promoted->GetKernel("f").stats.unrolled_loops, 1);
    EXPECT_FLOAT_EQ(RunOnce(ctx, *promoted, 9), 9.0f);
    ctx.set_async_service(nullptr);
  }

  // A second process's TieredLoader promotes from the store: the promotion is
  // adopted, not recompiled.
  vcuda::Context ctx2(vgpu::TeslaC1060());
  RemoteCompileService svc2(LocalOnlyOptions(store_dir));
  ctx2.set_async_service(&svc2);
  vcuda::TieredLoader tiered2(&ctx2, kKernel, /*hot_threshold=*/1);
  auto first = tiered2.Get(OptsFor(9));
  svc2.Drain();
  auto promoted = tiered2.Get(OptsFor(9));
  EXPECT_TRUE(tiered2.IsSpecialized(OptsFor(9)));
  EXPECT_EQ(promoted->GetKernel("f").stats.unrolled_loops, 1);
  EXPECT_EQ(svc2.remote_stats().store_hits, 1u);
  EXPECT_EQ(ctx2.cache_stats().adopted, 1u);
  ctx2.set_async_service(nullptr);
}

// ---------------------------------------------------------------------------
// SpecDaemon end to end (in-process)
// ---------------------------------------------------------------------------

DaemonOptions BaseDaemonOptions(const ScratchDir& scratch, const std::string& sock) {
  DaemonOptions d;
  d.socket_path = scratch.File(sock);
  d.store_dir = scratch.File("store");
  d.workers = 2;
  return d;
}

// Polls a daemon gauge until `pred` holds; fails the test on timeout.
template <typename Pred>
void AwaitDaemon(Pred pred, const char* what) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!pred()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "timed out awaiting " << what;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(NetdDaemon, CrossProcessSingleFlightCompilesOnceAndPublishesOnce) {
  ScratchDir scratch;
  SpecDaemon daemon(BaseDaemonOptions(scratch, "d.sock"));
  daemon.Start();
  const kcc::ModuleCacheKey key = KeyFor(BlockerOpts());

  // Tenant "a" starts the flight; once the daemon has scheduled it (the
  // compile runs for tens of milliseconds), tenant "b" asks for the same key.
  RawClient a(daemon.socket_path());
  ASSERT_TRUE(a.SendCompile("a", key));
  AwaitDaemon([&] { return daemon.serve_stats().submitted >= 1; }, "flight scheduled");

  RawClient b(daemon.socket_path());
  ASSERT_TRUE(b.SendCompile("b", key));
  AwaitDaemon([&] { return daemon.serve_stats().submitted >= 2; }, "second submit");

  Frame fa, fb;
  ASSERT_EQ(netd::RecvFrame(a.fd, &fa), RecvStatus::kOk);
  ASSERT_EQ(netd::RecvFrame(b.fd, &fb), RecvStatus::kOk);
  ASSERT_EQ(fa.type, FrameType::kArtifactResp);
  ASSERT_EQ(fb.type, FrameType::kArtifactResp);
  EXPECT_EQ(fa.payload, fb.payload) << "both tenants share one artifact";

  // The artifact is a valid envelope for exactly this key.
  std::string embedded;
  kcc::CompiledModule mod = kcc::Deserialize(fa.payload, &embedded);
  EXPECT_EQ(embedded, key.CanonicalText());
  EXPECT_GE(mod.kernels.size(), 1u);

  netd::DaemonStats d = daemon.daemon_stats();
  EXPECT_EQ(d.requests, 2u);
  EXPECT_EQ(d.compiled, 1u) << "one compile fleet-wide";
  EXPECT_EQ(d.cross_process_coalesced, 1u);
  EXPECT_EQ(d.store_hits, 0u);
  // Both coalesced handlers may race the publish (atomic rename makes that
  // safe), but the store converges on exactly one artifact either way.
  EXPECT_GE(daemon.store_stats().publishes, 1u);
  EXPECT_EQ(CountEntriesMatching(scratch.File("store"), ".kmod"), 1u);

  // A third request for the now-published key is a pure store hit.
  RawClient c(daemon.socket_path());
  ASSERT_TRUE(c.SendCompile("c", key));
  Frame fc;
  ASSERT_EQ(netd::RecvFrame(c.fd, &fc), RecvStatus::kOk);
  EXPECT_EQ(fc.type, FrameType::kArtifactResp);
  d = daemon.daemon_stats();
  EXPECT_EQ(d.store_hits, 1u);
  EXPECT_EQ(d.compiled, 1u) << "the store hit must not recompile";

  // Per-tenant accounting reached the merged ServeStats.
  serve::ServeStats s = daemon.serve_stats();
  EXPECT_EQ(s.tenants.at("a").submitted + s.tenants.at("b").submitted, 2u);
  EXPECT_EQ(s.coalesced, 1u);

  daemon.Stop();
  EXPECT_FALSE(daemon.running());
}

TEST(NetdDaemon, RemoteServiceAgainstLiveDaemonFetchesOverRpc) {
  ScratchDir scratch;
  SpecDaemon daemon(BaseDaemonOptions(scratch, "d.sock"));
  daemon.Start();

  // No store_dir on the client: every cold key must travel the RPC path.
  RemoteServiceOptions ro;
  ro.socket_path = daemon.socket_path();
  ro.tenant = "rpc-client";
  ro.workers = 2;
  RemoteCompileService svc(ro);
  vcuda::Context ctx(vgpu::TeslaC1060());

  vcuda::SubmitResult r = svc.SubmitLoad(ctx, RequestFor(OptsFor(51)));
  ASSERT_TRUE(r.ok());
  auto mod = r.future.get();
  ASSERT_NE(mod, nullptr);
  EXPECT_FLOAT_EQ(RunOnce(ctx, *mod, 51), 51.0f);

  EXPECT_EQ(ctx.cache_stats().misses, 0u) << "the daemon compiled, not this process";
  EXPECT_EQ(ctx.cache_stats().adopted, 1u);
  netd::RemoteStats rs = svc.remote_stats();
  EXPECT_EQ(rs.rpc_fetches, 1u);
  EXPECT_EQ(rs.local_fallbacks, 0u);
  EXPECT_EQ(daemon.daemon_stats().compiled, 1u);

  // A compile error comes back typed and rethrows at the client's future.
  vcuda::CompileRequest broken;
  broken.source = "__kernel void broken(";
  vcuda::SubmitResult bad = svc.SubmitLoad(ctx, broken);
  ASSERT_TRUE(bad.ok());
  EXPECT_THROW(bad.future.get(), CompileError);

  daemon.Stop();
}

TEST(NetdDaemon, OverQuotaTenantIsThrottledNotQueuedForever) {
  ScratchDir scratch;
  DaemonOptions opts = BaseDaemonOptions(scratch, "d.sock");
  opts.tenant_max_inflight = 1;
  opts.tenant_wait_cap = std::chrono::milliseconds(0);  // bounce immediately
  SpecDaemon daemon(opts);
  daemon.Start();

  // First request holds tenant "t"'s only slot for the whole blocker compile.
  RawClient first(daemon.socket_path());
  ASSERT_TRUE(first.SendCompile("t", KeyFor(BlockerOpts())));
  AwaitDaemon([&] { return daemon.serve_stats().submitted >= 1; }, "flight in progress");

  // Same tenant, different key: over quota, bounced with kThrottled.
  RawClient second(daemon.socket_path());
  ASSERT_TRUE(second.SendCompile("t", KeyFor(OptsFor(61))));
  Frame f;
  ASSERT_EQ(netd::RecvFrame(second.fd, &f), RecvStatus::kOk);
  ASSERT_EQ(f.type, FrameType::kErrorResp);
  EXPECT_EQ(netd::DecodeError(f.payload).code, ErrorCode::kThrottled);

  // A different tenant is not collateral damage of "t"'s quota.
  RawClient other(daemon.socket_path());
  ASSERT_TRUE(other.SendCompile("u", KeyFor(OptsFor(62))));
  Frame fo;
  ASSERT_EQ(netd::RecvFrame(other.fd, &fo), RecvStatus::kOk);
  EXPECT_EQ(fo.type, FrameType::kArtifactResp);

  // The throttled tenant's original request still completes.
  ASSERT_EQ(netd::RecvFrame(first.fd, &f), RecvStatus::kOk);
  EXPECT_EQ(f.type, FrameType::kArtifactResp);

  netd::DaemonStats d = daemon.daemon_stats();
  EXPECT_EQ(d.throttled, 1u);
  serve::ServeStats s = daemon.serve_stats();
  EXPECT_EQ(s.throttled, 1u);
  EXPECT_EQ(s.tenants.at("t").throttled, 1u);
  daemon.Stop();
}

TEST(NetdDaemon, MalformedRequestsAnswerBadRequestAndKeepTheConnection) {
  ScratchDir scratch;
  SpecDaemon daemon(BaseDaemonOptions(scratch, "d.sock"));
  daemon.Start();

  RawClient client(daemon.socket_path());
  // Garbage CompileReq payload: typed kBadRequest, connection survives.
  std::vector<std::uint8_t> junk = {0xFF, 0xFE, 0xFD};
  ASSERT_TRUE(netd::SendFrame(client.fd, FrameType::kCompileReq,
                              std::span<const std::uint8_t>(junk)));
  Frame f;
  ASSERT_EQ(netd::RecvFrame(client.fd, &f), RecvStatus::kOk);
  ASSERT_EQ(f.type, FrameType::kErrorResp);
  EXPECT_EQ(netd::DecodeError(f.payload).code, ErrorCode::kBadRequest);

  // A well-formed key naming a device this daemon cannot create.
  kcc::ModuleCacheKey key = KeyFor(OptsFor(71), "NoSuchGPU");
  ASSERT_TRUE(client.SendCompile("t", key));
  ASSERT_EQ(netd::RecvFrame(client.fd, &f), RecvStatus::kOk);
  ASSERT_EQ(f.type, FrameType::kErrorResp);
  EXPECT_EQ(netd::DecodeError(f.payload).code, ErrorCode::kBadRequest);

  // The connection is still serviceable after both errors.
  ASSERT_TRUE(netd::SendFrame(client.fd, FrameType::kPing, std::string()));
  ASSERT_EQ(netd::RecvFrame(client.fd, &f), RecvStatus::kOk);
  EXPECT_EQ(f.type, FrameType::kOkResp);
  EXPECT_EQ(daemon.daemon_stats().errors, 2u);

  // A corrupted frame header, by contrast, is unrecoverable: the daemon
  // reports it once, then hangs up rather than resynchronize a byte stream
  // it cannot trust.
  std::uint8_t garbage[netd::kFrameHeaderBytes] = {0x00, 0x11, 0x22};
  ASSERT_EQ(::write(client.fd, garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));
  ASSERT_EQ(netd::RecvFrame(client.fd, &f), RecvStatus::kOk);
  ASSERT_EQ(f.type, FrameType::kErrorResp);
  EXPECT_EQ(netd::DecodeError(f.payload).code, ErrorCode::kBadRequest);
  EXPECT_EQ(netd::RecvFrame(client.fd, &f), RecvStatus::kClosed);
  daemon.Stop();
}

TEST(NetdDaemon, PingStatsAndShutdownControlFrames) {
  ScratchDir scratch;
  SpecDaemon daemon(BaseDaemonOptions(scratch, "d.sock"));
  daemon.Start();
  EXPECT_TRUE(daemon.running());

  RawClient client(daemon.socket_path());
  Frame f;
  ASSERT_TRUE(netd::SendFrame(client.fd, FrameType::kPing, std::string()));
  ASSERT_EQ(netd::RecvFrame(client.fd, &f), RecvStatus::kOk);
  EXPECT_EQ(f.type, FrameType::kOkResp);

  ASSERT_TRUE(netd::SendFrame(client.fd, FrameType::kStatsReq, std::string()));
  ASSERT_EQ(netd::RecvFrame(client.fd, &f), RecvStatus::kOk);
  ASSERT_EQ(f.type, FrameType::kStatsResp);
  const std::string json(f.payload.begin(), f.payload.end());
  EXPECT_NE(json.find("\"serve\""), std::string::npos);
  EXPECT_NE(json.find("\"store\""), std::string::npos);
  EXPECT_NE(json.find("\"daemon\""), std::string::npos);

  ASSERT_TRUE(netd::SendFrame(client.fd, FrameType::kShutdownReq, std::string()));
  ASSERT_EQ(netd::RecvFrame(client.fd, &f), RecvStatus::kOk);
  EXPECT_EQ(f.type, FrameType::kOkResp);

  daemon.Wait();  // returns because of the shutdown request
  daemon.Stop();
  EXPECT_FALSE(daemon.running());
  EXPECT_FALSE(fs::exists(daemon.socket_path())) << "Stop unlinks the socket";
}

TEST(NetdDaemon, RestartWithWarmStoreRecompilesNothing) {
  ScratchDir scratch;
  const std::vector<int> ns = {81, 82, 83};

  {
    SpecDaemon daemon(BaseDaemonOptions(scratch, "d1.sock"));
    daemon.Start();
    RawClient client(daemon.socket_path());
    for (int n : ns) {
      ASSERT_TRUE(client.SendCompile("warmup", KeyFor(OptsFor(n))));
      Frame f;
      ASSERT_EQ(netd::RecvFrame(client.fd, &f), RecvStatus::kOk);
      ASSERT_EQ(f.type, FrameType::kArtifactResp) << "N=" << n;
    }
    EXPECT_EQ(daemon.daemon_stats().compiled, ns.size());
    daemon.Stop();
  }

  // Same store, new daemon: every key is served from disk, zero recompiles.
  SpecDaemon daemon(BaseDaemonOptions(scratch, "d2.sock"));
  daemon.Start();
  RawClient client(daemon.socket_path());
  for (int n : ns) {
    ASSERT_TRUE(client.SendCompile("after-restart", KeyFor(OptsFor(n))));
    Frame f;
    ASSERT_EQ(netd::RecvFrame(client.fd, &f), RecvStatus::kOk);
    ASSERT_EQ(f.type, FrameType::kArtifactResp) << "N=" << n;
  }
  netd::DaemonStats d = daemon.daemon_stats();
  EXPECT_EQ(d.compiled, 0u) << "a warm store means zero recompiles";
  EXPECT_EQ(d.store_hits, ns.size());
  // The persisted hot keys were already on disk, so the startup prewarm had
  // nothing to do either.
  EXPECT_EQ(d.prewarm_submitted, 0u);
  daemon.Stop();
}

TEST(NetdDaemon, PersistedHotKeysArePrewarmedAfterRestart) {
  ScratchDir scratch;
  const kcc::ModuleCacheKey hot = KeyFor(OptsFor(91));

  {
    SpecDaemon daemon(BaseDaemonOptions(scratch, "d1.sock"));
    daemon.Start();
    RawClient client(daemon.socket_path());
    for (int i = 0; i < 3; ++i) {  // make the key unambiguously hot
      ASSERT_TRUE(client.SendCompile("traffic", hot));
      Frame f;
      ASSERT_EQ(netd::RecvFrame(client.fd, &f), RecvStatus::kOk);
      ASSERT_EQ(f.type, FrameType::kArtifactResp);
    }
    daemon.Stop();  // persists the per-key counts next to the store
  }

  // Simulate an artifact-store wipe (e.g. a format bump) that left the
  // telemetry intact: the new daemon must re-specialize the hot key *before*
  // traffic asks for it.
  const std::string artifact = scratch.File("store") + "/" + hot.FileName();
  ASSERT_TRUE(fs::remove(artifact));

  SpecDaemon daemon(BaseDaemonOptions(scratch, "d2.sock"));
  daemon.Start();
  AwaitDaemon([&] { return fs::exists(artifact); }, "prewarm to publish the hot key");
  EXPECT_GE(daemon.daemon_stats().prewarm_submitted, 1u);

  // The first real request after the restart is already a store hit.
  RawClient client(daemon.socket_path());
  ASSERT_TRUE(client.SendCompile("traffic", hot));
  Frame f;
  ASSERT_EQ(netd::RecvFrame(client.fd, &f), RecvStatus::kOk);
  EXPECT_EQ(f.type, FrameType::kArtifactResp);
  EXPECT_EQ(daemon.daemon_stats().store_hits, 1u);
  daemon.Stop();
}

}  // namespace
}  // namespace kspec
