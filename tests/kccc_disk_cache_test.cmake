# Runs kccc twice with the same --cache-dir and asserts that the first run
# compiles (cache miss) while the second is served from disk (cache hit).
# Invoked by ctest with -DKCCC=... -DKERNEL=... -DWORK_DIR=...
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(ARGS "${KERNEL}" -D CT_LOOP_COUNT=1 -D LOOP_COUNT=5 --cache-dir "${WORK_DIR}/cache")

execute_process(COMMAND "${KCCC}" ${ARGS}
  OUTPUT_VARIABLE out1 ERROR_VARIABLE err1 RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "first kccc run failed (rc=${rc1}):\n${out1}\n${err1}")
endif()
if(NOT out1 MATCHES "cache: miss")
  message(FATAL_ERROR "first run should report a cache miss:\n${out1}")
endif()

execute_process(COMMAND "${KCCC}" ${ARGS}
  OUTPUT_VARIABLE out2 ERROR_VARIABLE err2 RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "second kccc run failed (rc=${rc2}):\n${out2}\n${err2}")
endif()
if(NOT out2 MATCHES "cache: disk hit")
  message(FATAL_ERROR "second run should report a disk hit:\n${out2}")
endif()

# A corrupted artifact must fall back to recompilation, not crash.
file(GLOB artifacts "${WORK_DIR}/cache/*.kmod")
list(LENGTH artifacts n_artifacts)
if(NOT n_artifacts EQUAL 1)
  message(FATAL_ERROR "expected exactly one cache artifact, found ${n_artifacts}")
endif()
list(GET artifacts 0 artifact)
file(WRITE "${artifact}" "garbage, not a module artifact")
execute_process(COMMAND "${KCCC}" ${ARGS}
  OUTPUT_VARIABLE out3 ERROR_VARIABLE err3 RESULT_VARIABLE rc3)
if(NOT rc3 EQUAL 0)
  message(FATAL_ERROR "kccc crashed on a corrupt cache artifact (rc=${rc3}):\n${out3}\n${err3}")
endif()
if(NOT out3 MATCHES "cache: miss")
  message(FATAL_ERROR "corrupt artifact should fall back to a miss:\n${out3}")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
