// Unit tests for the vgpu simulator: device profiles, occupancy, memory,
// SIMT divergence/reconvergence, barriers, coalescing and bank-conflict
// accounting, atomics, and the cost model's monotonicities.
#include <gtest/gtest.h>

#include <functional>

#include "support/str.hpp"

#include "kcc/compiler.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/cost.hpp"
#include "vgpu/device.hpp"
#include "vgpu/interp.hpp"
#include "vgpu/memory.hpp"

namespace kspec::vgpu {
namespace {

// ---------------------------------------------------------------------------
// Occupancy (Table 2.1/2.2 rules)
// ---------------------------------------------------------------------------

TEST(Occupancy, WarpLimited) {
  DeviceProfile d = TeslaC1060();
  Occupancy occ = ComputeOccupancy(d, Dim3(128), /*regs=*/8, /*smem=*/256);
  // 128 threads = 4 warps; 32 warps/SM -> 8 blocks, but max_blocks_per_sm = 8.
  EXPECT_EQ(occ.blocks_per_sm, 8u);
  EXPECT_EQ(occ.active_warps, 32u);
  EXPECT_DOUBLE_EQ(occ.occupancy, 1.0);
}

TEST(Occupancy, RegisterLimited) {
  DeviceProfile d = TeslaC1060();  // 16K registers/SM
  Occupancy occ = ComputeOccupancy(d, Dim3(256), /*regs=*/32, /*smem=*/256);
  // 256 threads * 32 regs = 8192 regs/block -> 2 blocks/SM.
  EXPECT_EQ(occ.blocks_per_sm, 2u);
  EXPECT_STREQ(occ.limiter, "registers");
}

TEST(Occupancy, SharedMemoryLimited) {
  DeviceProfile d = TeslaC1060();  // 16 KB shared/SM
  Occupancy occ = ComputeOccupancy(d, Dim3(64), /*regs=*/8, /*smem=*/8192);
  EXPECT_EQ(occ.blocks_per_sm, 2u);
  EXPECT_STREQ(occ.limiter, "shared-mem");
}

TEST(Occupancy, FermiHasMoreHeadroom) {
  Dim3 block(256);
  Occupancy old_gen = ComputeOccupancy(TeslaC1060(), block, 30, 2048);
  Occupancy fermi = ComputeOccupancy(TeslaC2070(), block, 30, 2048);
  EXPECT_GT(fermi.active_warps, old_gen.active_warps);
}

TEST(Occupancy, OverLimitYieldsZero) {
  DeviceProfile d = TeslaC2070();
  EXPECT_EQ(ComputeOccupancy(d, Dim3(2048), 8, 0).blocks_per_sm, 0u);
  EXPECT_EQ(ComputeOccupancy(d, Dim3(64), 200, 0).blocks_per_sm, 0u);
  EXPECT_EQ(ComputeOccupancy(d, Dim3(64), 8, 1 << 20).blocks_per_sm, 0u);
}

// ---------------------------------------------------------------------------
// Global memory
// ---------------------------------------------------------------------------

TEST(Memory, AllocFreeReuse) {
  GlobalMemory mem(1 << 20);
  DevPtr a = mem.Alloc(1000);
  DevPtr b = mem.Alloc(1000);
  EXPECT_NE(a, b);
  mem.Free(a);
  DevPtr c = mem.Alloc(500);  // fits in the freed block
  EXPECT_EQ(c, a);
  EXPECT_THROW(mem.Free(12345), DeviceError);
}

TEST(Memory, BoundsChecked) {
  GlobalMemory mem(4096);
  DevPtr p = mem.Alloc(64);
  std::vector<unsigned char> buf(64);
  EXPECT_NO_THROW(mem.Write(p, buf.data(), 64));
  EXPECT_THROW(mem.Read(buf.data(), 0, 8), DeviceError);  // null guard region
  EXPECT_THROW(mem.Alloc(1 << 20), DeviceError);          // beyond capacity
}

TEST(Memory, RoundTrip) {
  GlobalMemory mem(1 << 16);
  std::vector<float> in = {1.5f, -2.0f, 3.25f};
  DevPtr p = mem.Alloc(in.size() * 4);
  mem.WriteSpan<float>(p, in);
  std::vector<float> out(3);
  mem.ReadSpan<float>(p, out);
  EXPECT_EQ(in, out);
}

// ---------------------------------------------------------------------------
// Execution semantics (via kcc-compiled kernels)
// ---------------------------------------------------------------------------

struct Runner {
  vcuda::Context ctx{TeslaC1060()};

  LaunchStats Run(const std::string& src, const std::string& kernel, Dim3 grid, Dim3 block,
                  const std::function<void(vcuda::ArgPack&, vcuda::Context&)>& bind,
                  std::vector<float>* out = nullptr, DevPtr* out_ptr = nullptr) {
    auto mod = ctx.LoadModule(src, {});
    vcuda::ArgPack args;
    bind(args, ctx);
    auto stats = ctx.Launch(*mod, kernel, grid, block, args);
    if (out && out_ptr) *out = vcuda::Download<float>(ctx, *out_ptr, out->size());
    return stats;
  }
};

TEST(Simt, NestedDivergenceReconverges) {
  Runner r;
  const char* src = R"(
__kernel void f(float* o) {
  unsigned int t = threadIdx.x;
  float v = 0.0f;
  if (t < 16u) {
    if (t < 8u) { v = 1.0f; } else { v = 2.0f; }
  } else {
    if (t % 2u == 0u) { v = 3.0f; }
    else { v = 4.0f; }
  }
  o[t] = v + 10.0f;  // executed by ALL threads after reconvergence
}
)";
  DevPtr out_ptr = 0;
  std::vector<float> out(32);
  r.Run(src, "f", Dim3(1), Dim3(32),
        [&](vcuda::ArgPack& a, vcuda::Context& c) {
          out_ptr = c.Malloc(32 * 4);
          a.Ptr(out_ptr);
        },
        &out, &out_ptr);
  for (unsigned t = 0; t < 32; ++t) {
    float expect = t < 8 ? 11.0f : t < 16 ? 12.0f : (t % 2 == 0 ? 13.0f : 14.0f);
    EXPECT_FLOAT_EQ(out[t], expect) << t;
  }
}

TEST(Simt, EarlyReturnRetiresLanes) {
  Runner r;
  const char* src = R"(
__kernel void f(float* o, int n) {
  int t = (int)threadIdx.x;
  if (t >= n) {
    return;
  }
  o[t] = 5.0f;
}
)";
  DevPtr out_ptr = 0;
  std::vector<float> out(32);
  r.Run(src, "f", Dim3(1), Dim3(32),
        [&](vcuda::ArgPack& a, vcuda::Context& c) {
          out_ptr = c.Malloc(32 * 4);
          c.Memset(out_ptr, 0, 32 * 4);
          a.Ptr(out_ptr).Int(10);
        },
        &out, &out_ptr);
  for (int t = 0; t < 32; ++t) EXPECT_FLOAT_EQ(out[t], t < 10 ? 5.0f : 0.0f) << t;
}

TEST(Simt, LoopTripCountVariesPerLane) {
  Runner r;
  const char* src = R"(
__kernel void f(float* o) {
  int t = (int)threadIdx.x;
  float acc = 0.0f;
  for (int i = 0; i < t; i++) { acc += 1.0f; }
  o[t] = acc;
}
)";
  DevPtr out_ptr = 0;
  std::vector<float> out(32);
  r.Run(src, "f", Dim3(1), Dim3(32),
        [&](vcuda::ArgPack& a, vcuda::Context& c) {
          out_ptr = c.Malloc(32 * 4);
          a.Ptr(out_ptr);
        },
        &out, &out_ptr);
  for (int t = 0; t < 32; ++t) EXPECT_FLOAT_EQ(out[t], static_cast<float>(t)) << t;
}

TEST(Simt, BarrierCoordinatesWarps) {
  Runner r;
  // 64 threads = 2 warps; warp 1 reads what warp 0 wrote before the barrier.
  const char* src = R"(
__kernel void f(float* o) {
  __shared float s[64];
  unsigned int t = threadIdx.x;
  s[t] = (float)t;
  __syncthreads();
  o[t] = s[63u - t];
}
)";
  DevPtr out_ptr = 0;
  std::vector<float> out(64);
  auto stats = r.Run(src, "f", Dim3(1), Dim3(64),
                     [&](vcuda::ArgPack& a, vcuda::Context& c) {
                       out_ptr = c.Malloc(64 * 4);
                       a.Ptr(out_ptr);
                     },
                     &out, &out_ptr);
  for (unsigned t = 0; t < 64; ++t) EXPECT_FLOAT_EQ(out[t], static_cast<float>(63 - t));
  EXPECT_EQ(stats.barriers, 1u);
}

TEST(Simt, DivergentBarrierIsAnError) {
  Runner r;
  const char* src = R"(
__kernel void f(float* o) {
  __shared float s[32];
  unsigned int t = threadIdx.x;
  if (t < 16u) {
    s[t] = 1.0f;
    __syncthreads();
  }
  o[t] = 0.0f;
}
)";
  EXPECT_THROW(r.Run(src, "f", Dim3(1), Dim3(32),
                     [&](vcuda::ArgPack& a, vcuda::Context& c) { a.Ptr(c.Malloc(32 * 4)); }),
               DeviceError);
}

TEST(Simt, AtomicsAccumulateAcrossBlocks) {
  Runner r;
  const char* src = R"(
__kernel void f(float* o, int* counter) {
  atomicAdd(o, 1.0f);
  atomicMax(counter, (int)threadIdx.x);
}
)";
  DevPtr sum_ptr = 0, max_ptr = 0;
  r.Run(src, "f", Dim3(4), Dim3(32), [&](vcuda::ArgPack& a, vcuda::Context& c) {
    sum_ptr = c.Malloc(4);
    max_ptr = c.Malloc(4);
    c.Memset(sum_ptr, 0, 4);
    c.Memset(max_ptr, 0, 4);
    a.Ptr(sum_ptr).Ptr(max_ptr);
  });
  float sum = vcuda::Download<float>(r.ctx, sum_ptr, 1)[0];
  int max_tid = vcuda::Download<int>(r.ctx, max_ptr, 1)[0];
  EXPECT_FLOAT_EQ(sum, 128.0f);
  EXPECT_EQ(max_tid, 31);
}

TEST(Simt, OutOfBoundsLoadDiagnosed) {
  Runner r;
  const char* src = R"(
__kernel void f(float* o) {
  o[1000000] = 1.0f;
}
)";
  EXPECT_THROW(r.Run(src, "f", Dim3(1), Dim3(1),
                     [&](vcuda::ArgPack& a, vcuda::Context& c) { a.Ptr(c.Malloc(64)); }),
               DeviceError);
}

// ---------------------------------------------------------------------------
// Memory-system accounting
// ---------------------------------------------------------------------------

LaunchStats RunAccessPattern(const char* src, const DeviceProfile& dev) {
  vcuda::Context ctx(dev);
  auto mod = ctx.LoadModule(src, {});
  auto buf = ctx.Malloc(1 << 16);
  vcuda::ArgPack args;
  args.Ptr(buf);
  return ctx.Launch(*mod, "f", Dim3(1), Dim3(32), args);
}

TEST(MemorySystem, CoalescedVsStridedTransactions) {
  const char* coalesced = R"(
__kernel void f(float* p) {
  unsigned int t = threadIdx.x;
  p[t] = 1.0f;
}
)";
  const char* strided = R"(
__kernel void f(float* p) {
  unsigned int t = threadIdx.x;
  p[t * 32u] = 1.0f;
}
)";
  auto c = RunAccessPattern(coalesced, TeslaC1060());
  auto s = RunAccessPattern(strided, TeslaC1060());
  EXPECT_LT(c.mem_transactions, s.mem_transactions);
  // 32 consecutive floats = 128 bytes: one segment per half-warp on cc1.x.
  EXPECT_EQ(c.mem_transactions, 2u);
  EXPECT_EQ(s.mem_transactions, 32u);

  // Fermi coalesces the full warp through one cache line.
  auto c2 = RunAccessPattern(coalesced, TeslaC2070());
  EXPECT_EQ(c2.mem_transactions, 1u);
}

TEST(MemorySystem, SharedBankConflictsCounted) {
  const char* conflict_free = R"(
__kernel void f(float* p) {
  __shared float s[1024];
  unsigned int t = threadIdx.x;
  s[t] = 1.0f;
  p[t] = s[t];
}
)";
  const char* conflicted = R"(
__kernel void f(float* p) {
  __shared float s[1024];
  unsigned int t = threadIdx.x;
  s[t * 16u] = 1.0f;   // 16-way conflict on a 16-bank device
  p[t] = s[t * 16u];
}
)";
  auto free_stats = RunAccessPattern(conflict_free, TeslaC1060());
  auto conf_stats = RunAccessPattern(conflicted, TeslaC1060());
  EXPECT_EQ(free_stats.shared_conflict_cycles, 0u);
  EXPECT_GT(conf_stats.shared_conflict_cycles, 20u);
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

LaunchStats BaseStats() {
  LaunchStats s;
  s.blocks = 60;
  s.threads_per_block = 128;
  s.warp_instrs = 100000;
  s.issue_cycles = 100000;
  s.memory_cycles = 40000;
  s.global_instrs = 5000;
  s.avg_ilp = 2.0;
  s.occupancy = ComputeOccupancy(TeslaC1060(), Dim3(128), 16, 1024);
  return s;
}

TEST(CostModel, MoreIssueCyclesCostMore) {
  DeviceProfile d = TeslaC1060();
  LaunchStats a = BaseStats();
  LaunchStats b = BaseStats();
  b.issue_cycles *= 2;
  ApplyCostModel(d, a);
  ApplyCostModel(d, b);
  EXPECT_GT(b.sim_millis, a.sim_millis);
}

TEST(CostModel, LowerOccupancyCostsMore) {
  DeviceProfile d = TeslaC1060();
  LaunchStats a = BaseStats();
  LaunchStats b = BaseStats();
  b.occupancy = ComputeOccupancy(d, Dim3(128), 60, 1024);  // register-starved
  ApplyCostModel(d, a);
  ApplyCostModel(d, b);
  EXPECT_LT(b.occupancy.active_warps, a.occupancy.active_warps);
  EXPECT_GT(b.sim_millis, a.sim_millis);
}

TEST(CostModel, HigherIlpHidesLatencyAtLowOccupancy) {
  DeviceProfile d = TeslaC1060();
  LaunchStats a = BaseStats();
  a.occupancy = ComputeOccupancy(d, Dim3(64), 60, 1024);
  LaunchStats b = a;
  b.avg_ilp = 6.0;
  ApplyCostModel(d, a);
  ApplyCostModel(d, b);
  EXPECT_LT(b.sim_millis, a.sim_millis);
}

TEST(CostModel, DeterministicAcrossCalls) {
  DeviceProfile d = TeslaC2070();
  LaunchStats a = BaseStats();
  LaunchStats b = BaseStats();
  ApplyCostModel(d, a);
  ApplyCostModel(d, b);
  EXPECT_DOUBLE_EQ(a.sim_millis, b.sim_millis);
}


TEST(Simt, DynamicSharedMemory) {
  // extern __shared__: the array is sized by the launch configuration and
  // based after any static shared arrays.
  vcuda::Context ctx(TeslaC1060());
  const char* src = R"(
__kernel void f(float* o, int n) {
  __shared float fixed[8];
  extern __shared float dyn[];
  unsigned int t = threadIdx.x;
  fixed[t % 8u] = 1.0f;
  dyn[t] = (float)t * 2.0f;
  __syncthreads();
  o[t] = dyn[(unsigned int)(n - 1) - t] + fixed[t % 8u];
}
)";
  auto mod = ctx.LoadModule(src, {});
  const unsigned n = 32;
  auto d_out = ctx.Malloc(n * 4);
  vcuda::ArgPack args;
  args.Ptr(d_out).Int(static_cast<int>(n));
  // Launch with n floats of dynamic shared memory.
  auto stats = ctx.Launch(*mod, "f", Dim3(1), Dim3(n), args, n * 4);
  EXPECT_EQ(stats.smem_per_block, mod->GetKernel("f").static_smem_bytes + n * 4);
  auto out = vcuda::Download<float>(ctx, d_out, n);
  for (unsigned t = 0; t < n; ++t) {
    EXPECT_FLOAT_EQ(out[t], 2.0f * (n - 1 - t) + 1.0f) << t;
  }
}

TEST(Simt, DynamicSharedOutOfBoundsCaught) {
  vcuda::Context ctx(TeslaC1060());
  const char* src = R"(
__kernel void f(float* o) {
  extern __shared float dyn[];
  dyn[threadIdx.x] = 1.0f;
  o[threadIdx.x] = dyn[threadIdx.x];
}
)";
  auto mod = ctx.LoadModule(src, {});
  auto d_out = ctx.Malloc(32 * 4);
  vcuda::ArgPack args;
  args.Ptr(d_out);
  // Only 16 floats of dynamic shared for 32 threads: lanes 16+ go OOB.
  EXPECT_THROW(ctx.Launch(*mod, "f", Dim3(1), Dim3(32), args, 16 * 4), DeviceError);
}


TEST(Simt, WatchdogKillsRunawayKernels) {
  DeviceProfile dev = TeslaC1060();
  dev.watchdog_warp_instrs = 10000;  // tiny budget
  vcuda::Context ctx(dev);
  const char* src = R"(
__kernel void f(float* o, int n) {
  float acc = 0.0f;
  unsigned int i = 0u;
  while (i < (unsigned int)n) {
    acc += 1.0f;
    // The "increment" never fires for n == 0x7fffffff lanes... emulate a
    // stuck loop by a condition the data keeps true.
    i = i + (unsigned int)(n > 100000000 ? 0 : 1);
  }
  o[threadIdx.x] = acc;
}
)";
  auto mod = ctx.LoadModule(src, {});
  auto d_out = ctx.Malloc(32 * 4);
  vcuda::ArgPack args;
  args.Ptr(d_out).Int(2000000000);  // i never advances
  try {
    ctx.Launch(*mod, "f", Dim3(1), Dim3(32), args);
    FAIL() << "watchdog should have fired";
  } catch (const DeviceError& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos);
  }
}


TEST(Simt, RegisterSpillingRunsCorrectlyButSlower) {
  // 100 accumulators exceed the VC2070's 63-register limit: the kernel must
  // still produce correct results, report spills, and model slower than a
  // fitting variant doing the same per-register work.
  auto make_src = [](int n) {
    // Loads (not foldable) held live across the whole second loop force a
    // peak register demand of ~n.
    return Format(R"(
__kernel void f(float* in, float* out) {
  unsigned int t = threadIdx.x;
  float acc[%d];
  for (int k = 0; k < %d; k++) { acc[k] = in[t + (unsigned int)k * 32u]; }
  float total = 0.0f;
  for (int k = 0; k < %d; k++) { total += acc[k]; }
  out[t] = total;
}
)", n, n, n);
  };
  vcuda::Context ctx(TeslaC2070());
  std::vector<float> input(32 * 128, 1.0f);
  auto d_in = vcuda::Upload<float>(ctx, std::span<const float>(input));
  auto run = [&](int n) {
    auto mod = ctx.LoadModule(make_src(n), {});
    auto d = ctx.Malloc(32 * 4);
    vcuda::ArgPack args;
    args.Ptr(d_in).Ptr(d);
    auto stats = ctx.Launch(*mod, "f", Dim3(1), Dim3(32), args);
    float v = vcuda::Download<float>(ctx, d, 1)[0];
    ctx.Free(d);
    return std::pair<LaunchStats, float>(stats, v);
  };
  auto [big_stats, big_v] = run(100);
  EXPECT_FLOAT_EQ(big_v, 100.0f);
  EXPECT_GT(big_stats.spilled_regs, 0u);
  EXPECT_EQ(big_stats.regs_per_thread, TeslaC2070().max_regs_per_thread);

  auto [small_stats, small_v] = run(8);
  EXPECT_FLOAT_EQ(small_v, 8.0f);
  EXPECT_EQ(small_stats.spilled_regs, 0u);
  // Per warp-instruction, the spilled kernel pays more.
  double big_per = big_stats.sim_millis / static_cast<double>(big_stats.warp_instrs);
  double small_per = small_stats.sim_millis / static_cast<double>(small_stats.warp_instrs);
  EXPECT_GT(big_per, small_per);
}

}  // namespace
}  // namespace kspec::vgpu
