// Autotuner tests: search correctness on synthetic surfaces, infeasible-point
// handling, the tuning cache, coordinate-descent economy, end-to-end PIV
// tuning against the exhaustive optimum, and the source-to-source
// specialization alternative.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/piv/gpu.hpp"
#include "kcc/compiler.hpp"
#include "kcc/preprocess.hpp"
#include "tune/tuner.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec::tune {
namespace {

double Bowl(const Config& c) {
  // Convex in both parameters; minimum at (threads=128, rb=4).
  double t = static_cast<double>(c.at("threads"));
  double r = static_cast<double>(c.at("rb"));
  return std::pow(std::log2(t) - 7.0, 2.0) + std::pow(r - 4.0, 2.0) + 1.0;
}

std::vector<ParamRange> BowlSpace() {
  return {{"threads", {32, 64, 128, 256}}, {"rb", {1, 2, 4, 8, 16}}};
}

TEST(GridSearch, FindsGlobalMinimum) {
  TuneResult r = GridSearch(BowlSpace(), Bowl);
  EXPECT_EQ(r.best.at("threads"), 128);
  EXPECT_EQ(r.best.at("rb"), 4);
  EXPECT_DOUBLE_EQ(r.best_millis, 1.0);
  EXPECT_EQ(r.evaluated, 20u);
}

TEST(GridSearch, SkipsInfeasiblePoints) {
  auto eval = [](const Config& c) -> double {
    if (c.at("rb") * c.at("threads") < 256) throw Error("cannot cover mask");
    return Bowl(c);
  };
  TuneResult r = GridSearch(BowlSpace(), eval);
  EXPECT_GT(r.skipped, 0u);
  EXPECT_GE(r.best.at("rb") * r.best.at("threads"), 256);
}

TEST(CoordinateDescent, FindsMinimumOnConvexSurface) {
  TuneResult r = CoordinateDescent(BowlSpace(), Bowl);
  EXPECT_EQ(r.best.at("threads"), 128);
  EXPECT_EQ(r.best.at("rb"), 4);
  // Much cheaper than the exhaustive 20 evaluations... it may tie on tiny
  // spaces, but must never exceed the grid.
  EXPECT_LE(r.evaluated, 20u);
}

TEST(CoordinateDescent, SurvivesInfeasibleStart) {
  auto eval = [](const Config& c) -> double {
    if (c.at("threads") < 128) return std::nan("");  // first values infeasible
    return Bowl(c);
  };
  TuneResult r = CoordinateDescent(BowlSpace(), eval);
  EXPECT_EQ(r.best.at("threads"), 128);
}

TEST(CoordinateDescent, AllInfeasibleYieldsEmptyBest) {
  auto eval = [](const Config&) -> double { return std::nan(""); };
  TuneResult r = CoordinateDescent(BowlSpace(), eval);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, TuneStatus::kNoFeasibleConfig);
  EXPECT_TRUE(r.best.empty());
  EXPECT_EQ(r.evaluated, 0u);
}

TEST(TuningCache, StoreAndLookup) {
  TuningCache cache;
  EXPECT_FALSE(cache.Lookup("piv/mask16/VC1060").has_value());
  cache.Store("piv/mask16/VC1060", {{"threads", 64}, {"rb", 4}});
  auto hit = cache.Lookup("piv/mask16/VC1060");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->at("rb"), 4);
  EXPECT_EQ(cache.size(), 1u);
}

// End to end: tune the PIV regblock kernel; coordinate descent must land
// within 10% of the exhaustive optimum with fewer evaluations.
TEST(Integration, TunesPivRegBlock) {
  using namespace kspec::apps::piv;
  Problem p = Generate("tune", 56, 16, 2, 8, 321);
  vcuda::Context ctx(vgpu::TeslaC1060());

  auto eval = [&](const Config& c) -> double {
    PivConfig cfg;
    cfg.variant = Variant::kRegBlock;
    cfg.threads = static_cast<int>(c.at("threads"));
    cfg.rb = static_cast<int>(c.at("rb"));
    cfg.specialize = true;
    if (cfg.rb * cfg.threads < p.mask_area()) throw Error("uncoverable");
    return GpuPiv(ctx, p, cfg).stats.sim_millis;
  };
  std::vector<ParamRange> space = {{"threads", {32, 64, 128, 256}}, {"rb", {1, 2, 4, 8}}};

  TuneResult grid = GridSearch(space, eval);
  TuneResult cd = CoordinateDescent(space, eval);
  ASSERT_TRUE(grid.ok());
  ASSERT_TRUE(cd.ok());
  EXPECT_LE(cd.best_millis, grid.best_millis * 1.10);
  EXPECT_LE(cd.evaluated, grid.evaluated);
}

TEST(SourceToSource, EquivalentToDashD) {
  const char* src = R"(
#ifndef N
#define N n
#endif
__kernel void f(float* o, int n) {
  float acc = 0.0f;
  for (int i = 0; i < N; i++) { acc += (float)i; }
  o[0] = acc;
}
)";
  std::map<std::string, std::string> defines = {{"N", "6"}};

  kcc::CompileOptions with_d;
  with_d.defines = defines;
  auto via_d = kcc::CompileModule(src, with_d);

  std::string customized = kcc::SpecializeSource(src, defines);
  auto via_src = kcc::CompileModule(customized, {});  // NO options

  ASSERT_EQ(via_d.kernels.size(), via_src.kernels.size());
  EXPECT_EQ(via_d.kernels[0].stats.static_instrs, via_src.kernels[0].stats.static_instrs);
  EXPECT_EQ(via_d.kernels[0].stats.reg_count, via_src.kernels[0].stats.reg_count);
  EXPECT_EQ(via_d.kernels[0].stats.unrolled_loops, via_src.kernels[0].stats.unrolled_loops);
  // The instruction streams themselves must match.
  ASSERT_EQ(via_d.kernels[0].code.size(), via_src.kernels[0].code.size());
  for (std::size_t i = 0; i < via_d.kernels[0].code.size(); ++i) {
    EXPECT_EQ(vgpu::Disassemble(via_d.kernels[0].code[i], i),
              vgpu::Disassemble(via_src.kernels[0].code[i], i));
  }
}

}  // namespace
}  // namespace kspec::tune
