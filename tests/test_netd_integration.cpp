// Multi-process integration test of the specialization service: a real
// `kccc --daemon` process, two `kccc --connect` client processes sharing one
// compile through the daemon and the artifact store, the `--stats` control
// channel, and a clean `--stop` shutdown.
//
// The kccc binary and a kernel source are injected by CMake as KCCC_PATH and
// KERNEL_PATH. Scratch state (socket, store, logs) lives in a mkdtemp
// directory under /tmp so the AF_UNIX path stays short.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>

#include "netd/protocol.hpp"
#include "support/temp_dir.hpp"

namespace kspec {
namespace {

namespace fs = std::filesystem;

// Scratch directory; ScopedTempDir roots under /tmp (or TMPDIR) so the
// daemon's AF_UNIX socket path stays short.
struct ScratchDir : ScopedTempDir {
  ScratchDir() : ScopedTempDir("kspec_it_") { EXPECT_TRUE(valid()); }
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// Runs a command through the shell, capturing combined stdout/stderr.
struct CmdResult {
  int exit_code = -1;
  std::string output;
};

CmdResult RunCmd(const std::string& cmd, const std::string& capture_path) {
  const std::string full = cmd + " > " + capture_path + " 2>&1";
  const int rc = std::system(full.c_str());
  CmdResult result;
  result.output = ReadFile(capture_path);
  if (rc != -1 && WIFEXITED(rc)) result.exit_code = WEXITSTATUS(rc);
  return result;
}

TEST(NetdIntegration, DaemonAndTwoClientsShareOneCompileAcrossProcesses) {
  ScratchDir scratch;
  const std::string socket = scratch.File("d.sock");
  const std::string store = scratch.File("store");
  const std::string daemon_log = scratch.File("daemon.log");

  // Launch the daemon as its own process (backgrounded by the shell).
  const std::string daemon_cmd = std::string(KCCC_PATH) + " --daemon --socket " + socket +
                                 " --store " + store + " > " + daemon_log + " 2>&1 &";
  ASSERT_EQ(std::system(daemon_cmd.c_str()), 0);

  // Readiness: the socket accepts a connection.
  int probe = -1;
  for (int i = 0; i < 1000 && probe < 0; ++i) {
    probe = netd::ConnectUnix(socket);
    if (probe < 0) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(probe, 0) << "daemon never came up; log:\n" << ReadFile(daemon_log);
  ::close(probe);

  const std::string client_base = std::string(KCCC_PATH) + " " + KERNEL_PATH +
                                  " --connect " + socket + " --store " + store +
                                  " -D TILE_W=16";

  // Client 1: cold store, so the compile travels the RPC path — the daemon
  // compiles once and publishes the artifact.
  CmdResult c1 = RunCmd(client_base + " --tenant alpha", scratch.File("c1.log"));
  EXPECT_EQ(c1.exit_code, 0) << c1.output;
  EXPECT_NE(c1.output.find("rpc-fetches=1"), std::string::npos) << c1.output;
  EXPECT_NE(c1.output.find("store-hits=0"), std::string::npos) << c1.output;
  EXPECT_NE(c1.output.find("local-fallbacks=0"), std::string::npos) << c1.output;

  // Client 2, same key: served from the shared store with no RPC and no
  // recompile anywhere — this is the "two clients, one compile" contract.
  CmdResult c2 = RunCmd(client_base + " --tenant beta", scratch.File("c2.log"));
  EXPECT_EQ(c2.exit_code, 0) << c2.output;
  EXPECT_NE(c2.output.find("store-hits=1"), std::string::npos) << c2.output;
  EXPECT_NE(c2.output.find("rpc-fetches=0"), std::string::npos) << c2.output;
  EXPECT_NE(c2.output.find("local-fallbacks=0"), std::string::npos) << c2.output;
  EXPECT_NE(c2.output.find("0 compiled"), std::string::npos)
      << "client 2 must not compile anything:\n"
      << c2.output;
  EXPECT_NE(c2.output.find("1 adopted"), std::string::npos) << c2.output;

  // --stats: the daemon reports one request, one compile, one publish.
  CmdResult stats = RunCmd(std::string(KCCC_PATH) + " --stats --connect " + socket,
                        scratch.File("stats.log"));
  EXPECT_EQ(stats.exit_code, 0) << stats.output;
  EXPECT_NE(stats.output.find("\"requests\":1"), std::string::npos) << stats.output;
  EXPECT_NE(stats.output.find("\"compiled\":1"), std::string::npos) << stats.output;
  EXPECT_NE(stats.output.find("\"publishes\":1"), std::string::npos) << stats.output;
  EXPECT_NE(stats.output.find("\"tenants\""), std::string::npos) << stats.output;

  // Exactly one artifact in the store, readable by any process.
  std::size_t artifacts = 0;
  for (const auto& entry : fs::directory_iterator(store)) {
    if (entry.path().extension() == ".kmod") ++artifacts;
  }
  EXPECT_EQ(artifacts, 1u);

  // --stop: acknowledged, and the daemon actually exits (it unlinks its
  // socket on the way down).
  CmdResult stop = RunCmd(std::string(KCCC_PATH) + " --stop --connect " + socket,
                       scratch.File("stop.log"));
  EXPECT_EQ(stop.exit_code, 0) << stop.output;
  EXPECT_NE(stop.output.find("shutdown acknowledged"), std::string::npos) << stop.output;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fs::exists(socket)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "daemon did not exit after --stop; log:\n"
        << ReadFile(daemon_log);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace
}  // namespace kspec
