// Unit tests for the support library.
#include <gtest/gtest.h>

#include <sstream>

#include "support/csv.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/str.hpp"

namespace kspec {
namespace {

TEST(Math, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0);
  EXPECT_EQ(CeilDiv(1, 4), 1);
  EXPECT_EQ(CeilDiv(4, 4), 1);
  EXPECT_EQ(CeilDiv(5, 4), 2);
  EXPECT_EQ(CeilDiv(8u, 3u), 3u);
}

TEST(Math, AlignUpDown) {
  EXPECT_EQ(AlignUp(0, 16), 0);
  EXPECT_EQ(AlignUp(1, 16), 16);
  EXPECT_EQ(AlignUp(16, 16), 16);
  EXPECT_EQ(AlignUp(17, 16), 32);
  EXPECT_EQ(AlignDown(17, 16), 16);
  EXPECT_EQ(AlignDown(15, 16), 0);
}

TEST(Math, Pow2Helpers) {
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(64));
  EXPECT_FALSE(IsPow2(0));
  EXPECT_FALSE(IsPow2(48));
  EXPECT_EQ(ILog2(1), 0u);
  EXPECT_EQ(ILog2(64), 6u);
  EXPECT_EQ(ILog2(65), 6u);
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(33), 64u);
}

TEST(Str, SplitTrimJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Join({"x", "y"}, "--"), "x--y");
}

TEST(Str, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("kernel.cu", "kern"));
  EXPECT_FALSE(StartsWith("k", "kern"));
  EXPECT_TRUE(EndsWith("kernel.cu", ".cu"));
  EXPECT_FALSE(EndsWith("cu", ".cu"));
}

TEST(Str, Format) {
  EXPECT_EQ(Format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(Format("%.2f", 1.5), "1.50");
}

TEST(Str, Fnv1aDistinguishes) {
  EXPECT_NE(Fnv1a("a"), Fnv1a("b"));
  EXPECT_EQ(Fnv1a("same"), Fnv1a("same"));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double v = r.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    auto n = r.NextInt(3, 9);
    EXPECT_GE(n, 3);
    EXPECT_LE(n, 9);
  }
}

TEST(Csv, EscapingAndLayout) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("q\"q"), "\"q\"\"q\"");

  Table t({"name", "value"});
  t.Row() << "x" << 1.25;
  t.Row() << "y" << std::int64_t{42};
  std::ostringstream csv;
  t.WriteCsv(csv);
  EXPECT_EQ(csv.str(), "name,value\nx,1.25\ny,42\n");

  std::ostringstream ascii;
  t.WriteAscii(ascii);
  EXPECT_NE(ascii.str().find("| name | value |"), std::string::npos);
}

TEST(Status, CheckThrowsInternalError) {
  EXPECT_THROW(KSPEC_CHECK_MSG(false, "boom"), InternalError);
  EXPECT_NO_THROW(KSPEC_CHECK(true));
  try {
    KSPEC_CHECK_MSG(1 == 2, "context");
    FAIL() << "should have thrown";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("context"), std::string::npos);
  }
}


}  // namespace
}  // namespace kspec

#include "apps/cpu_model.hpp"

namespace kspec::apps {
namespace {

TEST(CpuModel, ScalesWithWorkAndCores) {
  CpuModel m;
  EXPECT_GT(m.Millis(2e6, 1), m.Millis(1e6, 1));          // more work, more time
  EXPECT_GT(m.Millis(1e6, 1), m.Millis(1e6, 4));          // more cores, less time
  EXPECT_DOUBLE_EQ(m.Millis(1e6, 8), m.Millis(1e6, 4));   // capped at physical cores
  EXPECT_DOUBLE_EQ(m.Millis(0, 4), 0.0);
}

TEST(CpuModel, FlopCountsScaleWithProblem) {
  EXPECT_GT(MatchingFlops(200, 400), MatchingFlops(100, 400));
  EXPECT_GT(PivFlops(10, 49, 256), PivFlops(10, 25, 256));
  EXPECT_GT(BackprojFlops(1000, 20), BackprojFlops(1000, 10));
}

}  // namespace
}  // namespace kspec::apps
