// PIV application tests: CPU/FPGA reference agreement, all three GPU kernel
// variants vs the reference, planted-displacement recovery, register blocking
// constraints, and the warp-specialization performance claim.
#include <gtest/gtest.h>

#include "apps/piv/cpu_ref.hpp"
#include "apps/piv/gpu.hpp"
#include "apps/piv/problem.hpp"
#include "apps/piv/stream.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec::apps::piv {
namespace {

Problem SmallProblem() { return Generate("small", 48, 8, 2, 8, 99); }

TEST(PivProblem, GeometryDerivations) {
  Problem p = SmallProblem();
  EXPECT_EQ(p.search_w(), 5);
  EXPECT_EQ(p.n_offsets(), 25);
  EXPECT_EQ(p.mask_area(), 64);
  EXPECT_GT(p.n_masks(), 0);
  EXPECT_LE(p.true_dy, p.range_y);
  EXPECT_GE(p.true_dy, -p.range_y);
}

TEST(PivCpu, RecoversPlantedDisplacement) {
  Problem p = SmallProblem();
  VectorField f = CpuPiv(p, 2);
  int expected = p.true_offset_index();
  int correct = 0;
  for (int v : f.best_offset) {
    if (v == expected) ++correct;
  }
  // Border effects can perturb a few masks; the overwhelming majority must
  // recover the planted vector.
  EXPECT_GE(correct, static_cast<int>(f.best_offset.size() * 9 / 10));
}

TEST(PivFpgaModel, MatchesCpuAnswers) {
  Problem p = SmallProblem();
  VectorField cpu = CpuPiv(p, 1);
  VectorField fpga = FpgaModel(p);
  EXPECT_EQ(cpu.best_offset, fpga.best_offset);
  EXPECT_GT(fpga.millis, 0.0);
}

class PivVariantTest : public ::testing::TestWithParam<std::tuple<Variant, bool>> {};

TEST_P(PivVariantTest, MatchesCpuReference) {
  auto [variant, specialize] = GetParam();
  if (variant == Variant::kRegBlock && !specialize) GTEST_SKIP();
  Problem p = SmallProblem();
  VectorField cpu = CpuPiv(p, 1);

  vcuda::Context ctx(vgpu::TeslaC1060());
  PivConfig cfg;
  cfg.variant = variant;
  cfg.threads = 64;
  cfg.specialize = specialize;
  PivGpuResult gpu = GpuPiv(ctx, p, cfg);

  ASSERT_EQ(gpu.field.best_offset.size(), cpu.best_offset.size());
  for (std::size_t m = 0; m < cpu.best_offset.size(); ++m) {
    EXPECT_EQ(gpu.field.best_offset[m], cpu.best_offset[m]) << "mask " << m;
    EXPECT_NEAR(gpu.field.best_score[m], cpu.best_score[m],
                1e-3f * (1.0f + cpu.best_score[m]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, PivVariantTest,
    ::testing::Combine(::testing::Values(Variant::kBasic, Variant::kRegBlock,
                                         Variant::kWarpSpec),
                       ::testing::Values(false, true)),
    [](const auto& info) {
      return std::string(VariantName(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_sk" : "_re");
    });

TEST(PivGpu, RegBlockRequiresSpecialization) {
  Problem p = SmallProblem();
  vcuda::Context ctx(vgpu::TeslaC1060());
  PivConfig cfg;
  cfg.variant = Variant::kRegBlock;
  cfg.specialize = false;
  EXPECT_THROW(GpuPiv(ctx, p, cfg), DeviceError);
}

TEST(PivGpu, WarpSpecRemovesBarrierBottleneck) {
  Problem p = Generate("perf", 64, 16, 3, 8, 5);
  vcuda::Context ctx(vgpu::TeslaC2070());
  PivConfig basic{Variant::kBasic, 64, true, 0};
  PivConfig warp{Variant::kWarpSpec, 64, true, 0};
  PivGpuResult rb = GpuPiv(ctx, p, basic);
  PivGpuResult rw = GpuPiv(ctx, p, warp);
  // Same answers, far fewer block-wide barriers, faster simulated time.
  EXPECT_EQ(rb.field.best_offset, rw.field.best_offset);
  EXPECT_LT(rw.stats.barriers, rb.stats.barriers / 4);
  EXPECT_LT(rw.stats.sim_millis, rb.stats.sim_millis);
}

TEST(PivGpu, SpecializationReducesRegistersOrTime) {
  Problem p = Generate("skre", 64, 16, 2, 8, 6);
  vcuda::Context ctx(vgpu::TeslaC1060());
  PivConfig re{Variant::kBasic, 64, false, 0};
  PivConfig sk{Variant::kBasic, 64, true, 0};
  PivGpuResult r_re = GpuPiv(ctx, p, re);
  PivGpuResult r_sk = GpuPiv(ctx, p, sk);
  EXPECT_EQ(r_re.field.best_offset, r_sk.field.best_offset);
  EXPECT_LT(r_sk.stats.sim_millis, r_re.stats.sim_millis);
  EXPECT_LE(r_sk.reg_count, r_re.reg_count);
}

TEST(PivGpu, AutoRbCoversMask) {
  Problem p = Generate("rb", 56, 12, 2, 6, 7);  // 144 pixels, 64 threads -> RB 3
  vcuda::Context ctx(vgpu::TeslaC2070());
  PivConfig cfg{Variant::kRegBlock, 64, true, 0};
  PivGpuResult r = GpuPiv(ctx, p, cfg);
  VectorField cpu = CpuPiv(p, 1);
  EXPECT_EQ(r.field.best_offset, cpu.best_offset);
}

TEST(PivGpu, ExplicitRbSweepStaysCorrect) {
  Problem p = Generate("rbsweep", 48, 8, 2, 8, 8);  // 64 pixels
  VectorField cpu = CpuPiv(p, 1);
  for (int rb : {1, 2, 4}) {
    if (rb * 64 < p.mask_area()) continue;
    vcuda::Context ctx(vgpu::TeslaC2070());
    PivConfig cfg{Variant::kRegBlock, 64, true, rb};
    PivGpuResult r = GpuPiv(ctx, p, cfg);
    EXPECT_EQ(r.field.best_offset, cpu.best_offset) << "rb=" << rb;
  }
}


TEST(PivStream, StreamsPairsAndRetunesMidRun) {
  Recording rec = GenerateRecording(/*img=*/56, /*n_pairs=*/6, /*range=*/2, 777);
  vcuda::Context ctx(vgpu::TeslaC1060());
  PivStream stream(&ctx, rec, /*mask=*/8, /*range=*/2, /*stride=*/8);

  stream.Run(3);
  auto misses_before_retune = ctx.cache_stats().misses;

  // Operator widens the interrogation windows mid-stream; the module
  // re-specializes and buffers resize on the next iteration.
  stream.SetMaskSize(16);
  stream.Run(3);
  EXPECT_GT(ctx.cache_stats().misses, misses_before_retune);

  const auto& results = stream.results();
  ASSERT_EQ(results.size(), 6u);
  for (int f = 0; f < 6; ++f) {
    int expect = (rec.true_dy[f] + 2) * stream.search_w() + (rec.true_dx[f] + 2);
    int correct = 0;
    for (int v : results[f]) {
      if (v == expect) ++correct;
    }
    // Nearly all masks recover the planted displacement in every frame pair,
    // before and after the retune.
    EXPECT_GE(correct, static_cast<int>(results[f].size() * 9 / 10)) << "pair " << f;
  }
  // The retune changed the mask grid, hence the per-pair vector count.
  EXPECT_NE(results[0].size(), results[5].size());
}

}  // namespace
}  // namespace kspec::apps::piv
