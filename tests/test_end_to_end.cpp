// End-to-end smoke tests: the dissertation's mathTest kernel (Listings 4.1 and
// 4.2, Appendix B) compiled and executed both run-time evaluated (RE) and
// specialized (SK), verifying identical results plus the structural claims the
// paper makes about the specialized binary: no control flow, fewer
// instructions, fewer registers.
#include <gtest/gtest.h>

#include "kcc/compiler.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec {
namespace {

using vcuda::ArgPack;
using vcuda::Context;
using vgpu::Dim3;

// The Appendix B "flexibly specializable kernel": compiles fully RE when no
// CT_* macros are defined, fully SK when they all are.
constexpr const char* kMathTest = R"(
#ifndef CT_LOOP_COUNT
#define LOOP_COUNT loopCount
#endif
#ifndef CT_ARGS
#define STRIDE (argA * argB)
#else
#define STRIDE (ARG_A * ARG_B)
#endif
#ifndef CT_BLOCK_DIM
#define BLOCK_DIM_X blockDim.x
#endif

__kernel void mathTest(float* in, float* out, int argA, int argB, int loopCount) {
  float acc = 0.0f;
  const unsigned int stride = STRIDE;
  const unsigned int offset = blockIdx.x * BLOCK_DIM_X + threadIdx.x;
  for (int i = 0; i < LOOP_COUNT; i++) {
    acc += *(in + offset + i * stride);
  }
  *(out + offset) = acc;
  return;
}
)";

class MathTestFixture : public ::testing::Test {
 protected:
  static constexpr int kArgA = 3;
  static constexpr int kArgB = 7;
  static constexpr int kLoop = 5;
  static constexpr unsigned kThreads = 128;
  static constexpr unsigned kBlocks = 4;

  std::vector<float> RunVariant(Context& ctx, const kcc::CompileOptions& opts,
                                vgpu::LaunchStats* stats_out = nullptr,
                                const vgpu::CompiledKernel** kernel_out = nullptr) {
    auto mod = ctx.LoadModule(kMathTest, opts);
    if (kernel_out) *kernel_out = &mod->GetKernel("mathTest");

    const unsigned n = kThreads * kBlocks;
    const unsigned in_len = n + kLoop * kArgA * kArgB + 1;
    std::vector<float> in(in_len);
    for (unsigned i = 0; i < in_len; ++i) in[i] = 0.25f * static_cast<float>(i % 97);

    auto d_in = vcuda::Upload<float>(ctx, in);
    auto d_out = ctx.Malloc(n * sizeof(float));
    ctx.Memset(d_out, 0, n * sizeof(float));

    ArgPack args;
    args.Ptr(d_in).Ptr(d_out).Int(kArgA).Int(kArgB).Int(kLoop);
    vgpu::LaunchStats st = ctx.Launch(*mod, "mathTest", Dim3(kBlocks), Dim3(kThreads), args);
    if (stats_out) *stats_out = st;

    auto out = vcuda::Download<float>(ctx, d_out, n);
    ctx.Free(d_in);
    ctx.Free(d_out);
    return out;
  }

  static std::vector<float> Reference() {
    const unsigned n = kThreads * kBlocks;
    const unsigned in_len = n + kLoop * kArgA * kArgB + 1;
    std::vector<float> in(in_len);
    for (unsigned i = 0; i < in_len; ++i) in[i] = 0.25f * static_cast<float>(i % 97);
    std::vector<float> out(n, 0.0f);
    for (unsigned t = 0; t < n; ++t) {
      float acc = 0;
      for (int i = 0; i < kLoop; ++i) acc += in[t + i * kArgA * kArgB];
      out[t] = acc;
    }
    return out;
  }

  static kcc::CompileOptions SpecializedOptions() {
    kcc::CompileOptions opts;
    opts.defines["CT_LOOP_COUNT"] = "1";
    opts.defines["LOOP_COUNT"] = std::to_string(kLoop);
    opts.defines["CT_ARGS"] = "1";
    opts.defines["ARG_A"] = std::to_string(kArgA);
    opts.defines["ARG_B"] = std::to_string(kArgB);
    opts.defines["CT_BLOCK_DIM"] = "1";
    opts.defines["BLOCK_DIM_X"] = std::to_string(kThreads);
    return opts;
  }
};

TEST_F(MathTestFixture, RunTimeEvaluatedMatchesReference) {
  Context ctx(vgpu::TeslaC1060());
  auto out = RunVariant(ctx, {});
  auto ref = Reference();
  ASSERT_EQ(out.size(), ref.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_FLOAT_EQ(out[i], ref[i]) << "at " << i;
  }
}

TEST_F(MathTestFixture, SpecializedMatchesReference) {
  Context ctx(vgpu::TeslaC1060());
  auto out = RunVariant(ctx, SpecializedOptions());
  auto ref = Reference();
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_FLOAT_EQ(out[i], ref[i]) << "at " << i;
  }
}

TEST_F(MathTestFixture, SpecializedKernelHasNoControlFlow) {
  Context ctx(vgpu::TeslaC1060());
  const vgpu::CompiledKernel* k = nullptr;
  RunVariant(ctx, SpecializedOptions(), nullptr, &k);
  ASSERT_NE(k, nullptr);
  for (const auto& instr : k->code) {
    EXPECT_NE(instr.op, vgpu::Opcode::kBra) << "specialized kernel should be fully unrolled";
    EXPECT_NE(instr.op, vgpu::Opcode::kBraPred);
  }
  EXPECT_EQ(k->stats.unrolled_loops, 1);
}

TEST_F(MathTestFixture, SpecializationReducesInstructionsAndRegisters) {
  Context ctx(vgpu::TeslaC1060());
  const vgpu::CompiledKernel* re = nullptr;
  const vgpu::CompiledKernel* sk = nullptr;
  vgpu::LaunchStats st_re, st_sk;
  auto out_re = RunVariant(ctx, {}, &st_re, &re);
  auto out_sk = RunVariant(ctx, SpecializedOptions(), &st_sk, &sk);

  // Identical numerics.
  for (std::size_t i = 0; i < out_re.size(); ++i) ASSERT_FLOAT_EQ(out_re[i], out_sk[i]);

  // The specialized kernel executes fewer dynamic instructions, uses no more
  // registers, and models faster.
  EXPECT_LT(st_sk.warp_instrs, st_re.warp_instrs);
  EXPECT_LE(sk->stats.reg_count, re->stats.reg_count);
  EXPECT_LT(st_sk.sim_millis, st_re.sim_millis);
}

TEST_F(MathTestFixture, ListingsAreEmitted) {
  Context ctx(vgpu::TeslaC1060());
  const vgpu::CompiledKernel* sk = nullptr;
  RunVariant(ctx, SpecializedOptions(), nullptr, &sk);
  EXPECT_NE(sk->listing.find(".entry mathTest"), std::string::npos);
  EXPECT_NE(sk->listing.find("regs/thread"), std::string::npos);
}

TEST(Cache, SecondLoadIsAHit) {
  Context ctx(vgpu::TeslaC1060());
  kcc::CompileOptions opts;
  opts.defines["CT_LOOP_COUNT"] = "1";
  opts.defines["LOOP_COUNT"] = "4";
  auto m1 = ctx.LoadModule(kMathTest, opts);
  auto m2 = ctx.LoadModule(kMathTest, opts);
  EXPECT_EQ(ctx.cache_stats().misses, 1u);
  EXPECT_EQ(ctx.cache_stats().hits, 1u);
  // Different defines miss again.
  opts.defines["LOOP_COUNT"] = "8";
  auto m3 = ctx.LoadModule(kMathTest, opts);
  EXPECT_EQ(ctx.cache_stats().misses, 2u);
}

TEST(Devices, BothProfilesExecuteTheSameKernel) {
  for (auto profile : {vgpu::TeslaC1060(), vgpu::TeslaC2070()}) {
    Context ctx(profile);
    auto mod = ctx.LoadModule(kMathTest, {});
    const unsigned n = 64;
    std::vector<float> in(n + 200, 1.0f);
    auto d_in = vcuda::Upload<float>(ctx, std::span<const float>(in));
    auto d_out = ctx.Malloc(n * sizeof(float));
    ArgPack args;
    args.Ptr(d_in).Ptr(d_out).Int(2).Int(3).Int(4);
    auto st = ctx.Launch(*mod, "mathTest", Dim3(1), Dim3(n), args);
    auto out = vcuda::Download<float>(ctx, d_out, n);
    for (float v : out) EXPECT_FLOAT_EQ(v, 4.0f);
    EXPECT_GT(st.sim_millis, 0.0);
  }
}

}  // namespace
}  // namespace kspec
