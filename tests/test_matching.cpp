// Template matching application tests: CPU reference sanity, GPU-vs-CPU
// agreement for RE and SK variants across tile configurations and devices,
// and the structural specialization claims.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/matching/cpu_ref.hpp"
#include "apps/matching/gpu.hpp"
#include "apps/matching/problem.hpp"
#include "apps/matching/sequence.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec::apps::matching {
namespace {

Problem SmallProblem() { return Generate("small", 12, 10, 6, 8, 77); }

TEST(MatchingProblem, GeneratorPlantsTemplate) {
  Problem p = SmallProblem();
  EXPECT_EQ(p.roi.size(), static_cast<std::size_t>(p.roi_h() * p.roi_w()));
  EXPECT_EQ(p.tpl.size(), static_cast<std::size_t>(p.tpl_h * p.tpl_w));
  EXPECT_GE(p.true_sy, 0);
  EXPECT_LT(p.true_sy, p.shift_h);
  EXPECT_GE(p.true_sx, 0);
  EXPECT_LT(p.true_sx, p.shift_w);
}

TEST(MatchingProblem, GeneratorIsDeterministic) {
  Problem a = Generate("a", 8, 8, 4, 4, 5);
  Problem b = Generate("b", 8, 8, 4, 4, 5);
  EXPECT_EQ(a.roi, b.roi);
  EXPECT_EQ(a.tpl, b.tpl);
  EXPECT_EQ(a.true_sy, b.true_sy);
}

TEST(MatchingCpu, FindsPlantedShift) {
  Problem p = SmallProblem();
  CpuResult r = CpuMatch(p, 2);
  EXPECT_EQ(r.best_idx, p.true_sy * p.shift_w + p.true_sx);
  EXPECT_GT(r.best_score, 0.9f);  // planted with only 2% noise
  EXPECT_LE(r.best_score, 1.0f + 1e-3f);
}

TEST(MatchingCpu, ThreadCountDoesNotChangeResult) {
  Problem p = SmallProblem();
  CpuResult r1 = CpuMatch(p, 1);
  CpuResult r4 = CpuMatch(p, 4);
  ASSERT_EQ(r1.scores.size(), r4.scores.size());
  for (std::size_t i = 0; i < r1.scores.size(); ++i) {
    EXPECT_FLOAT_EQ(r1.scores[i], r4.scores[i]);
  }
}

void ExpectScoresClose(const std::vector<float>& a, const std::vector<float>& b, float tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "score mismatch at shift " << i;
  }
}

TEST(MatchingGpu, SpecializedMatchesCpu) {
  Problem p = SmallProblem();
  CpuResult cpu = CpuMatch(p, 1);
  vcuda::Context ctx(vgpu::TeslaC1060());
  MatcherConfig cfg;
  cfg.tile_h = 4;
  cfg.tile_w = 4;
  cfg.threads = 64;
  cfg.specialize = true;
  MatchResult gpu = GpuMatch(ctx, p, cfg);
  ExpectScoresClose(gpu.scores, cpu.scores, 2e-3f);
  EXPECT_EQ(gpu.best_idx, cpu.best_idx);
}

TEST(MatchingGpu, RunTimeEvaluatedMatchesCpu) {
  Problem p = SmallProblem();
  CpuResult cpu = CpuMatch(p, 1);
  vcuda::Context ctx(vgpu::TeslaC1060());
  MatcherConfig cfg;
  cfg.tile_h = 4;
  cfg.tile_w = 4;
  cfg.threads = 64;
  cfg.specialize = false;
  MatchResult gpu = GpuMatch(ctx, p, cfg);
  ExpectScoresClose(gpu.scores, cpu.scores, 2e-3f);
  EXPECT_EQ(gpu.best_idx, cpu.best_idx);
}

// Non-divisible template dimensions exercise all four tile regions.
TEST(MatchingGpu, EdgeTileRegionsAreCorrect) {
  Problem p = Generate("edges", 11, 13, 5, 7, 31);
  CpuResult cpu = CpuMatch(p, 1);
  for (bool spec : {false, true}) {
    vcuda::Context ctx(vgpu::TeslaC2070());
    MatcherConfig cfg;
    cfg.tile_h = 4;
    cfg.tile_w = 8;  // 11x13 -> main 2x1, right edge (w=5), bottom (h=3), corner
    cfg.threads = 32;
    cfg.specialize = spec;
    MatchResult gpu = GpuMatch(ctx, p, cfg);
    ExpectScoresClose(gpu.scores, cpu.scores, 2e-3f);
    EXPECT_EQ(gpu.best_idx, cpu.best_idx) << "specialize=" << spec;
  }
}

TEST(MatchingGpu, SpecializationImprovesSimTimeAndRegisters) {
  Problem p = Generate("perfcmp", 16, 16, 8, 8, 9);
  vcuda::Context ctx(vgpu::TeslaC1060());
  MatcherConfig cfg;
  cfg.tile_h = 4;  // at small tiles, parameter folding dominates the register
  cfg.tile_w = 4;  // count; at large tiles unrolling can raise it (as nvcc does)
  cfg.threads = 64;

  cfg.specialize = false;
  MatchResult re = GpuMatch(ctx, p, cfg);
  cfg.specialize = true;
  MatchResult sk = GpuMatch(ctx, p, cfg);

  EXPECT_LT(sk.sim_millis, re.sim_millis);
  // The numerator stage is the register-pressure hot spot.
  EXPECT_LT(sk.breakdown.stages[0].reg_count, re.breakdown.stages[0].reg_count);
  ExpectScoresClose(sk.scores, re.scores, 1e-4f);
}

TEST(MatchingGpu, RePathRejectsOversizedTiles) {
  Problem p = Generate("big", 40, 40, 4, 4, 3);
  vcuda::Context ctx(vgpu::TeslaC2070());
  MatcherConfig cfg;
  cfg.tile_h = 40;
  cfg.tile_w = 40;  // 1600 > 1024 fixed RE allocation
  cfg.threads = 32;
  cfg.specialize = false;
  EXPECT_THROW(GpuMatch(ctx, p, cfg), DeviceError);
  // Specialization lifts the ceiling (the Section 4.1 benefit).
  cfg.specialize = true;
  EXPECT_NO_THROW(GpuMatch(ctx, p, cfg));
}

TEST(MatchingGpu, AllPatientSetsFindPlantedShift) {
  for (const Problem& p : PatientSets()) {
    vcuda::Context ctx(vgpu::TeslaC2070());
    MatcherConfig cfg;
    cfg.tile_h = 8;
    cfg.tile_w = 8;
    cfg.threads = 64;
    cfg.specialize = true;
    MatchResult gpu = GpuMatch(ctx, p, cfg);
    EXPECT_EQ(gpu.best_idx, p.true_sy * p.shift_w + p.true_sx) << p.name;
  }
}


TEST(MatchingSequence, TracksDriftingTemplateWithOneCompilePass) {
  SequenceProblem seq = GenerateSequence("seq", 14, 12, 8, 8, 10, 321);
  vcuda::Context ctx(vgpu::TeslaC2070());
  MatcherConfig cfg;
  cfg.tile_h = cfg.tile_w = 4;
  cfg.threads = 64;
  cfg.specialize = true;
  SequenceResult r = RunSequence(ctx, seq, cfg);

  // Every frame's drifted shift is recovered.
  ASSERT_EQ(r.best_idx.size(), static_cast<std::size_t>(seq.n_frames));
  for (int f = 0; f < seq.n_frames; ++f) {
    EXPECT_EQ(r.best_idx[f], seq.true_sy[f] * seq.shift_w + seq.true_sx[f]) << "frame " << f;
  }
  // The whole sequence compiles each stage exactly once; later frames are
  // cache hits (Section 4.3 amortization).
  EXPECT_LE(r.compiles, 6u);  // <= number of distinct (kernel, defines) pairs
  EXPECT_GE(r.cache_hits, static_cast<std::size_t>((seq.n_frames - 1) * 4));
}

TEST(MatchingSequence, ReAndSkSequencesAgree) {
  SequenceProblem seq = GenerateSequence("seqcmp", 12, 12, 6, 6, 5, 11);
  vcuda::Context ctx(vgpu::TeslaC1060());
  MatcherConfig cfg;
  cfg.tile_h = cfg.tile_w = 4;
  cfg.threads = 64;
  cfg.specialize = false;
  SequenceResult re = RunSequence(ctx, seq, cfg);
  cfg.specialize = true;
  SequenceResult sk = RunSequence(ctx, seq, cfg);
  EXPECT_EQ(re.best_idx, sk.best_idx);
  EXPECT_LT(sk.sim_millis, re.sim_millis);
}

}  // namespace
}  // namespace kspec::apps::matching
