// Tests for the future-work extensions (dissertation Section 7.2): tiered
// (lazy) specialization and the multi-mask PIV kernel variant.
#include <gtest/gtest.h>

#include "apps/piv/cpu_ref.hpp"
#include "apps/piv/gpu.hpp"
#include "vcuda/tiered.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec {
namespace {

constexpr const char* kTieredKernel = R"(
#ifndef N
#define N n
#endif
__kernel void f(float* out, int n) {
  float acc = 0.0f;
  for (int i = 0; i < N; i++) { acc += 1.0f; }
  out[threadIdx.x] = acc;
}
)";

kcc::CompileOptions OptsFor(int n) {
  kcc::CompileOptions opts;
  opts.defines["N"] = std::to_string(n);
  return opts;
}

float RunOnce(vcuda::Context& ctx, vcuda::Module& mod, int n) {
  auto d_out = ctx.Malloc(32 * 4);
  vcuda::ArgPack args;
  args.Ptr(d_out).Int(n);
  ctx.Launch(mod, "f", vgpu::Dim3(1), vgpu::Dim3(32), args);
  float v = vcuda::Download<float>(ctx, d_out, 1)[0];
  ctx.Free(d_out);
  return v;
}

TEST(TieredLoader, ColdSetsServeReThenPromote) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  vcuda::TieredLoader tiered(&ctx, kTieredKernel, /*hot_threshold=*/3);

  auto opts = OptsFor(7);
  EXPECT_FALSE(tiered.IsSpecialized(opts));
  // Requests 1 and 2: the shared RE build (one compile total).
  auto m1 = tiered.Get(opts);
  auto m2 = tiered.Get(opts);
  EXPECT_FALSE(tiered.IsSpecialized(opts));
  EXPECT_EQ(ctx.cache_stats().misses, 1u);  // only the RE build compiled
  EXPECT_FLOAT_EQ(RunOnce(ctx, *m1, 7), 7.0f);

  // Request 3: promoted — the specialized build compiles now.
  auto m3 = tiered.Get(opts);
  EXPECT_TRUE(tiered.IsSpecialized(opts));
  EXPECT_EQ(ctx.cache_stats().misses, 2u);
  EXPECT_FLOAT_EQ(RunOnce(ctx, *m3, 7), 7.0f);

  // A DIFFERENT parameter set is still cold and reuses the RE build.
  auto other = tiered.Get(OptsFor(11));
  EXPECT_EQ(ctx.cache_stats().misses, 2u);
  EXPECT_FLOAT_EQ(RunOnce(ctx, *other, 11), 11.0f);

  EXPECT_EQ(tiered.stats().specializations, 1u);
  EXPECT_EQ(tiered.stats().re_served, 3u);
  EXPECT_EQ(tiered.stats().sk_served, 1u);
}

TEST(TieredLoader, PromotedBuildIsActuallySpecialized) {
  vcuda::Context ctx(vgpu::TeslaC2070());
  vcuda::TieredLoader tiered(&ctx, kTieredKernel, 2);
  auto opts = OptsFor(6);
  auto cold = tiered.Get(opts);
  auto hot = tiered.Get(opts);
  // The RE build keeps its loop; the specialized build unrolled it away.
  EXPECT_EQ(cold->GetKernel("f").stats.unrolled_loops, 0);
  EXPECT_EQ(hot->GetKernel("f").stats.unrolled_loops, 1);
}

TEST(PivMultiMask, MatchesCpuReference) {
  apps::piv::Problem p = apps::piv::Generate("mm", 48, 8, 2, 8, 99);
  apps::piv::VectorField cpu = apps::piv::CpuPiv(p, 1);
  for (bool spec : {false, true}) {
    for (int threads : {32, 64, 128}) {
      vcuda::Context ctx(vgpu::TeslaC2070());
      apps::piv::PivConfig cfg;
      cfg.variant = apps::piv::Variant::kMultiMask;
      cfg.threads = threads;
      cfg.specialize = spec;
      auto r = GpuPiv(ctx, p, cfg);
      EXPECT_EQ(r.field.best_offset, cpu.best_offset)
          << "spec=" << spec << " threads=" << threads;
    }
  }
}

TEST(PivMultiMask, UsesFewerBlocksAndNoBarriers) {
  apps::piv::Problem p = apps::piv::Generate("mmperf", 64, 16, 2, 8, 13);
  vcuda::Context ctx(vgpu::TeslaC1060());
  apps::piv::PivConfig one{apps::piv::Variant::kWarpSpec, 64, true, 0};
  apps::piv::PivConfig multi{apps::piv::Variant::kMultiMask, 64, true, 0};
  auto r1 = GpuPiv(ctx, p, one);
  auto rm = GpuPiv(ctx, p, multi);
  EXPECT_EQ(r1.field.best_offset, rm.field.best_offset);
  EXPECT_LT(rm.stats.blocks, r1.stats.blocks);
  EXPECT_EQ(rm.stats.barriers, 0u);  // warps never need block-level sync
}

TEST(PivMultiMask, HandlesMaskCountNotMultipleOfWarps) {
  // masks_x * masks_y deliberately not divisible by threads/32.
  apps::piv::Problem p = apps::piv::Generate("odd", 48, 8, 2, 6, 7);  // 49 masks
  ASSERT_NE(p.n_masks() % (128 / 32), 0);
  apps::piv::VectorField cpu = apps::piv::CpuPiv(p, 1);
  vcuda::Context ctx(vgpu::TeslaC1060());
  apps::piv::PivConfig cfg{apps::piv::Variant::kMultiMask, 128, true, 0};
  auto r = GpuPiv(ctx, p, cfg);
  EXPECT_EQ(r.field.best_offset, cpu.best_offset);
}

}  // namespace
}  // namespace kspec
