// GPU-PF framework tests: parameter semantics, the refresh phase's selective
// re-derivation (including kernel re-specialization on parameter change),
// copy/kernel/user/file actions, subset windows, schedules, and timing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "gpupf/pipeline.hpp"
#include "vgpu/device.hpp"

namespace kspec::gpupf {
namespace {

using vcuda::Context;
using vgpu::Dim3;

// ---------------------------------------------------------------------------
// Parameters
// ---------------------------------------------------------------------------

TEST(Params, VersionBumpsOnChangeOnly) {
  IntParam p("n", 5);
  auto v0 = p.version();
  p.Set(5);
  EXPECT_EQ(p.version(), v0);
  p.Set(6);
  EXPECT_GT(p.version(), v0);
}

TEST(Params, ScheduleFiring) {
  ScheduleParam s("sched", 3, 2);
  EXPECT_FALSE(s.FiresAt(0));
  EXPECT_FALSE(s.FiresAt(1));
  EXPECT_TRUE(s.FiresAt(2));
  EXPECT_FALSE(s.FiresAt(3));
  EXPECT_TRUE(s.FiresAt(5));
}

TEST(Params, StepWrapsAndTouches) {
  StepParam s("sweep", 2, 8, 2);
  EXPECT_EQ(s.value(), 2);
  EXPECT_FALSE(s.Advance());
  EXPECT_EQ(s.value(), 4);
  s.Advance();
  s.Advance();
  EXPECT_EQ(s.value(), 8);
  EXPECT_TRUE(s.Advance());  // wraps
  EXPECT_EQ(s.value(), 2);
}

TEST(Params, ExtentGeometry) {
  ExtentParam e("buf", sizeof(float), 8, 4, 2);
  EXPECT_EQ(e.count(), 64u);
  EXPECT_EQ(e.bytes(), 256u);
  e.Set(16);
  EXPECT_EQ(e.bytes(), 64u);
}

// ---------------------------------------------------------------------------
// Pipeline: refresh semantics
// ---------------------------------------------------------------------------

constexpr const char* kScaleKernel = R"(
#ifndef SCALE
#define SCALE scale
#endif
__kernel void scaleBuf(float* data, float scale, int n) {
  int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
  if (i < n) {
    data[i] = data[i] * SCALE;
  }
}
)";

TEST(Pipeline, RefreshOnlyTouchesStaleResources) {
  Context ctx(vgpu::TeslaC1060());
  Pipeline pipe(&ctx);
  auto* n = pipe.AddInt("n", 64);
  auto* extent = pipe.AddExtent("extent", sizeof(float), 64);
  auto* mod = pipe.AddModule("mod", kScaleKernel);
  auto* mem = pipe.AddGlobalMemory("buf", extent);
  (void)n;
  (void)mem;
  (void)mod;

  EXPECT_EQ(pipe.Refresh(), 2);  // module + memory
  EXPECT_EQ(pipe.Refresh(), 0);  // nothing stale
  extent->Set(128);
  EXPECT_EQ(pipe.Refresh(), 1);  // only the memory
}

TEST(Pipeline, ParameterChangeTriggersRespecialization) {
  Context ctx(vgpu::TeslaC1060());
  Pipeline pipe(&ctx);
  auto* scale = pipe.AddInt("scale_const", 3);
  auto* mod = pipe.AddModule("mod", kScaleKernel);
  mod->BindDefine("SCALE", scale);
  pipe.Refresh();
  auto misses0 = ctx.cache_stats().misses;
  scale->Set(5);
  pipe.Refresh();
  EXPECT_EQ(ctx.cache_stats().misses, misses0 + 1);  // recompiled
  scale->Set(3);
  pipe.Refresh();
  EXPECT_EQ(ctx.cache_stats().misses, misses0 + 1);  // back to a cached binary
  EXPECT_GE(ctx.cache_stats().hits, 1u);
}

// ---------------------------------------------------------------------------
// Full pipeline execution
// ---------------------------------------------------------------------------

TEST(Pipeline, EndToEndScalePipeline) {
  Context ctx(vgpu::TeslaC1060());
  Pipeline pipe(&ctx);

  const int n = 64;
  auto* extent = pipe.AddExtent("extent", sizeof(float), n);
  auto* host = pipe.AddHostMemory("host", extent);
  auto* dev = pipe.AddGlobalMemory("dev", extent);
  auto* mod = pipe.AddModule("mod", kScaleKernel);
  auto* kernel = pipe.AddKernel("scale", mod, "scaleBuf");
  auto* scale = pipe.AddFloat("scale", 2.0f);
  auto* count = pipe.AddInt("n", n);
  auto* grid = pipe.AddTriplet("grid", Dim3(2));
  auto* block = pipe.AddTriplet("block", Dim3(32));
  auto* every = pipe.AddSchedule("every", 1);

  pipe.AddCopy("upload", every, host, dev);
  pipe.AddKernelExec("scale", every, kernel, grid, block,
                     {dev, scale, count});
  pipe.AddCopy("download", every, dev, host);

  pipe.Refresh();
  auto span = host->host_span<float>();
  for (int i = 0; i < n; ++i) span[i] = static_cast<float>(i);

  pipe.Run(1);
  for (int i = 0; i < n; ++i) EXPECT_FLOAT_EQ(span[i], 2.0f * i);

  // Change the scale parameter and run again: same buffers, new value.
  scale->Set(10.0);
  pipe.Run(1);
  for (int i = 0; i < n; ++i) EXPECT_FLOAT_EQ(span[i], 20.0f * i);

  EXPECT_GT(pipe.TotalSimMillis(), 0.0);
  std::string report = pipe.TimingReport();
  EXPECT_NE(report.find("upload"), std::string::npos);
  EXPECT_NE(report.find("TOTAL"), std::string::npos);
}

TEST(Pipeline, SubsetWindowAdvancesPerIteration) {
  Context ctx(vgpu::TeslaC1060());
  Pipeline pipe(&ctx);

  // An 8-frame host buffer streamed one 16-element frame per iteration.
  const int frame = 16, frames = 8;
  auto* full = pipe.AddExtent("full", sizeof(float), frame * frames);
  auto* window = pipe.AddExtent("window", sizeof(float), frame);
  auto* host = pipe.AddHostMemory("host", full);
  auto* dev = pipe.AddGlobalMemory("dev", window);
  auto* sub = pipe.AddSubset("stream", host, window, frame, frames);
  auto* every = pipe.AddSchedule("every", 1);
  pipe.AddCopy("upload", every, sub, dev);

  std::vector<float> seen;
  pipe.AddUserFn("check", every, [&](Pipeline& p, std::uint64_t) {
    float v = 0;
    p.ctx().MemcpyDtoH(&v, dev->dev_ptr(), sizeof(float));
    seen.push_back(v);
  });

  pipe.Refresh();
  auto span = host->host_span<float>();
  for (int f = 0; f < frames; ++f) {
    for (int i = 0; i < frame; ++i) span[f * frame + i] = static_cast<float>(f);
  }
  pipe.Run(frames + 2);  // wraps past the end

  ASSERT_EQ(seen.size(), static_cast<std::size_t>(frames + 2));
  for (int f = 0; f < frames; ++f) EXPECT_FLOAT_EQ(seen[f], static_cast<float>(f));
  EXPECT_FLOAT_EQ(seen[frames], 0.0f);  // wrapped
  EXPECT_FLOAT_EQ(seen[frames + 1], 1.0f);
}

TEST(Pipeline, ScheduledActionsFireOnTheirPeriod) {
  Context ctx(vgpu::TeslaC1060());
  Pipeline pipe(&ctx);
  auto* every = pipe.AddSchedule("every", 1);
  auto* third = pipe.AddSchedule("third", 3, 1);
  int every_count = 0, third_count = 0;
  pipe.AddUserFn("always", every, [&](Pipeline&, std::uint64_t) { ++every_count; });
  pipe.AddUserFn("sometimes", third, [&](Pipeline&, std::uint64_t) { ++third_count; });
  pipe.Run(9);
  EXPECT_EQ(every_count, 9);
  EXPECT_EQ(third_count, 3);  // iterations 1, 4, 7
}

TEST(Pipeline, ConstantMemoryCopyEndpoint) {
  Context ctx(vgpu::TeslaC1060());
  Pipeline pipe(&ctx);
  const char* src = R"(
__constant float coeffs[4];
__kernel void apply(float* out) {
  unsigned int t = threadIdx.x;
  out[t] = coeffs[t % 4u] * 2.0f;
}
)";
  auto* mod = pipe.AddModule("mod", src);
  auto* kernel = pipe.AddKernel("apply", mod, "apply");
  auto* cext = pipe.AddExtent("cext", sizeof(float), 4);
  auto* chost = pipe.AddHostMemory("chost", cext);
  auto* cmem = pipe.AddConstantMemory("coeffs", cext, mod, "coeffs");
  auto* oext = pipe.AddExtent("oext", sizeof(float), 32);
  auto* dev = pipe.AddGlobalMemory("out", oext);
  auto* ohost = pipe.AddHostMemory("outh", oext);
  auto* every = pipe.AddSchedule("every", 1);
  auto* grid = pipe.AddTriplet("grid", Dim3(1));
  auto* block = pipe.AddTriplet("block", Dim3(32));

  pipe.AddCopy("set-coeffs", every, chost, cmem);
  pipe.AddKernelExec("apply", every, kernel, grid, block, {dev});
  pipe.AddCopy("download", every, dev, ohost);

  pipe.Refresh();
  auto cspan = chost->host_span<float>();
  for (int i = 0; i < 4; ++i) cspan[i] = static_cast<float>(i + 1);
  pipe.Run(1);
  auto ospan = ohost->host_span<float>();
  for (int t = 0; t < 32; ++t) EXPECT_FLOAT_EQ(ospan[t], 2.0f * (t % 4 + 1));
}

TEST(Pipeline, FileIoRoundTrip) {
  Context ctx(vgpu::TeslaC1060());
  std::string path = std::filesystem::temp_directory_path() / "gpupf_io_test.bin";

  {
    Pipeline writer(&ctx);
    auto* ext = writer.AddExtent("ext", sizeof(float), 8);
    auto* host = writer.AddHostMemory("host", ext);
    auto* every = writer.AddSchedule("every", 1);
    writer.AddFileIO("save", every, host, path, FileIOAction::Dir::kWrite);
    writer.Refresh();
    auto span = host->host_span<float>();
    for (int i = 0; i < 8; ++i) span[i] = static_cast<float>(i * i);
    writer.Run(1);
  }
  {
    Pipeline reader(&ctx);
    auto* ext = reader.AddExtent("ext", sizeof(float), 8);
    auto* host = reader.AddHostMemory("host", ext);
    auto* every = reader.AddSchedule("every", 1);
    reader.AddFileIO("load", every, host, path, FileIOAction::Dir::kRead);
    reader.Run(1);
    auto span = host->host_span<float>();
    for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(span[i], static_cast<float>(i * i));
  }
  std::remove(path.c_str());
}

TEST(Pipeline, KernelArgMismatchDiagnosed) {
  Context ctx(vgpu::TeslaC1060());
  Pipeline pipe(&ctx);
  auto* mod = pipe.AddModule("mod", kScaleKernel);
  auto* kernel = pipe.AddKernel("k", mod, "scaleBuf");
  auto* grid = pipe.AddTriplet("grid", Dim3(1));
  auto* block = pipe.AddTriplet("block", Dim3(32));
  auto* every = pipe.AddSchedule("every", 1);
  auto* ext = pipe.AddExtent("ext", sizeof(float), 32);
  auto* dev = pipe.AddGlobalMemory("dev", ext);
  // Missing the scale and n arguments.
  pipe.AddKernelExec("bad", every, kernel, grid, block, {dev});
  EXPECT_THROW(pipe.Run(1), PipelineError);
}


TEST(Pipeline, TextureResourceRebindsOnRespecialization) {
  Context ctx(vgpu::TeslaC1060());
  Pipeline pipe(&ctx);
  const char* src = R"(
#ifndef GAIN
#define GAIN 1
#endif
__texture float img;
__kernel void sampleRow(float* out, int w) {
  int i = (int)threadIdx.x;
  if (i < w) {
    out[i] = tex2D(img, (float)i, 0.0f) * (float)GAIN;
  }
}
)";
  const int w = 16;
  auto* gain = pipe.AddInt("gain", 2);
  auto* mod = pipe.AddModule("mod", src);
  mod->BindDefine("GAIN", gain);
  auto* kernel = pipe.AddKernel("k", mod, "sampleRow");
  auto* tex_ext = pipe.AddExtent("tex-ext", sizeof(float), w);
  auto* tex_host = pipe.AddHostMemory("tex-host", tex_ext);
  auto* tex_dev = pipe.AddGlobalMemory("tex-dev", tex_ext);
  pipe.AddTexture("tex", mod, "img", tex_dev, tex_ext);
  auto* out_dev = pipe.AddGlobalMemory("out-dev", tex_ext);
  auto* out_host = pipe.AddHostMemory("out-host", tex_ext);
  auto* every = pipe.AddSchedule("every", 1);
  auto* grid = pipe.AddTriplet("grid", Dim3(1));
  auto* block = pipe.AddTriplet("block", Dim3(32));
  auto* width = pipe.AddInt("w", w);

  pipe.AddCopy("upload", every, tex_host, tex_dev);
  pipe.AddKernelExec("sample", every, kernel, grid, block, {out_dev, width});
  pipe.AddCopy("download", every, out_dev, out_host);

  pipe.Refresh();
  auto in = tex_host->host_span<float>();
  for (int i = 0; i < w; ++i) in[i] = static_cast<float>(i + 1);

  pipe.Run(1);
  auto out = out_host->host_span<float>();
  for (int i = 0; i < w; ++i) EXPECT_FLOAT_EQ(out[i], 2.0f * (i + 1)) << i;

  // Changing the bound define recompiles the module — a NEW module instance
  // whose texture binding must be re-established by the TextureRes.
  gain->Set(5);
  pipe.Run(1);
  for (int i = 0; i < w; ++i) EXPECT_FLOAT_EQ(out[i], 5.0f * (i + 1)) << i;
}

}  // namespace
}  // namespace kspec::gpupf
