// FleetScheduler tests: cache-affinity routing determinism (prewarm then
// route), shard failure isolation, bounded-admission backpressure and the
// FleetStats invariant, bit-identical launch statistics across same-profile
// shards, seeded-random routing reproducibility, the fleet-shared TuningCache
// single-search guarantee, and explicit failure of never-dispatched requests
// on Shutdown.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sched/fleet.hpp"
#include "serve/compile_executor.hpp"
#include "tune/tuner.hpp"
#include "vcuda/device_buffer.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/device.hpp"
#include "vgpu/launch.hpp"

namespace kspec {
namespace {

using sched::FleetOptions;
using sched::FleetScheduler;
using sched::FleetStats;
using sched::LaunchRequest;
using sched::LaunchResult;
using sched::Routing;

constexpr const char* kKernel = R"(
#ifndef N
#define N n
#endif
__kernel void f(float* out, int n) {
  float acc = 0.0f;
  for (int i = 0; i < N; i++) { acc += 1.0f; }
  out[threadIdx.x] = acc;
}
)";

kcc::CompileOptions OptsFor(int n) {
  kcc::CompileOptions opts;
  opts.defines["N"] = std::to_string(n);
  return opts;
}

// A request for kKernel's f over a 32-float output buffer; `result` (when
// given) receives lane 0 of the output in the finish hook, on whichever shard
// ran the request.
LaunchRequest RequestFor(int n, std::shared_ptr<float> result = nullptr,
                         vgpu::Dim3 block = vgpu::Dim3(32)) {
  LaunchRequest req;
  req.source = kKernel;
  req.opts = OptsFor(n);
  req.kernel = "f";
  req.grid = vgpu::Dim3(1);
  req.block = block;
  auto out_ptr = std::make_shared<vcuda::DevPtr>(0);
  req.prepare = [n, out_ptr](vcuda::Context& ctx,
                             std::vector<vcuda::DeviceBuffer>& scratch) {
    scratch.emplace_back(ctx, 32 * sizeof(float));
    *out_ptr = scratch.back().get();
    vcuda::ArgPack args;
    args.Ptr(*out_ptr).Int(n);
    return args;
  };
  if (result) {
    req.finish = [out_ptr, result](vcuda::Context& ctx) {
      ctx.MemcpyDtoH(result.get(), *out_ptr, sizeof(float));
    };
  }
  return req;
}

std::vector<vgpu::DeviceProfile> MixedFleet() {
  return {vgpu::TeslaC1060(), vgpu::TeslaC2070(), vgpu::TeslaC2070(),
          vgpu::TeslaC1060()};
}

// The documented FleetStats contract once Drain has returned.
void ExpectDrainedInvariant(const FleetStats& s) {
  EXPECT_EQ(s.submitted, s.dispatched);
  EXPECT_EQ(s.dispatched, s.completed + s.failed);
}

// ---------------------------------------------------------------------------
// Affinity routing: a prewarmed shard is the deterministic home for its key.
// ---------------------------------------------------------------------------

TEST(FleetScheduler, AffinityRoutesEveryRequestToThePrewarmedShard) {
  FleetScheduler fleet(MixedFleet());
  ASSERT_EQ(fleet.shard_count(), 4u);

  // Seed the build on shard 2 only: from then on it is the single resident
  // home for this specialization, so routing is fully deterministic.
  ASSERT_EQ(fleet.Prewarm(kKernel, OptsFor(8), /*shard=*/2), 2);

  constexpr int kRequests = 16;
  std::vector<std::shared_ptr<float>> outputs;
  std::vector<std::shared_future<LaunchResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    outputs.push_back(std::make_shared<float>(0.0f));
    FleetScheduler::Ticket t = fleet.Submit(RequestFor(8, outputs.back()));
    ASSERT_TRUE(t.accepted);
    futures.push_back(t.result);
  }
  fleet.Drain();

  for (int i = 0; i < kRequests; ++i) {
    LaunchResult r = futures[i].get();
    EXPECT_EQ(r.shard, 2) << "request " << i << " strayed from its resident shard";
    EXPECT_TRUE(r.affinity_hit);
    EXPECT_TRUE(r.specialized);  // hot_threshold=1 promotes on first use
    EXPECT_GE(r.total_millis, r.queue_millis);
    EXPECT_FLOAT_EQ(*outputs[i], 8.0f);
  }

  FleetStats s = fleet.stats();
  ExpectDrainedInvariant(s);
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(s.affinity_hits, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.prewarms, 1u);
  EXPECT_EQ(fleet.shard_stats(2).launches, static_cast<std::uint64_t>(kRequests));
  for (std::size_t i : {0u, 1u, 3u}) {
    EXPECT_EQ(fleet.shard_stats(i).launches, 0u) << "shard " << i;
  }
}

TEST(FleetScheduler, ColdKeyFallsBackToLeastLoadedWithoutAffinityHit) {
  FleetScheduler fleet(MixedFleet());
  FleetScheduler::Ticket t = fleet.Submit(RequestFor(5));
  ASSERT_TRUE(t.accepted);
  fleet.Drain();
  LaunchResult r = t.result.get();
  EXPECT_FALSE(r.affinity_hit);  // nothing resident anywhere yet
  EXPECT_EQ(r.shard, 0);         // all queues empty: ties break to shard 0
  EXPECT_EQ(fleet.stats().affinity_hits, 0u);
}

// ---------------------------------------------------------------------------
// Failure isolation: one bad request fails its own future, nothing else.
// ---------------------------------------------------------------------------

TEST(FleetScheduler, ShardFailureIsolatesToTheOffendingRequest) {
  // VC1060 caps blocks at 512 threads: a 1024-thread block is a DeviceError
  // at launch, after routing and module load already succeeded.
  FleetScheduler fleet({vgpu::TeslaC1060(), vgpu::TeslaC1060()});

  LaunchRequest bad = RequestFor(8, nullptr, vgpu::Dim3(1024));
  bad.pin_shard = 0;
  FleetScheduler::Ticket bad_ticket = fleet.Submit(bad);
  ASSERT_TRUE(bad_ticket.accepted);

  constexpr int kGood = 6;
  std::vector<std::shared_future<LaunchResult>> good;
  for (int i = 0; i < kGood; ++i) {
    LaunchRequest req = RequestFor(8);
    req.pin_shard = 0;  // same shard, same queue, right behind the failure
    FleetScheduler::Ticket t = fleet.Submit(req);
    ASSERT_TRUE(t.accepted);
    good.push_back(t.result);
  }
  fleet.Drain();

  EXPECT_THROW(bad_ticket.result.get(), Error);
  for (auto& f : good) EXPECT_EQ(f.get().shard, 0);  // shard stayed healthy

  FleetStats s = fleet.stats();
  ExpectDrainedInvariant(s);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kGood));
  EXPECT_EQ(fleet.shard_stats(0).failures, 1u);
  EXPECT_EQ(fleet.shard_stats(0).launches, static_cast<std::uint64_t>(kGood));
  EXPECT_EQ(fleet.shard_stats(1).failures, 0u);
}

// ---------------------------------------------------------------------------
// Backpressure: the bounded admission queue rejects, never blocks or drops.
// ---------------------------------------------------------------------------

TEST(FleetScheduler, BoundedAdmissionQueueRejectsBeyondCapacity) {
  FleetOptions opts;
  opts.autostart = false;  // paused: admissions accumulate deterministically
  opts.max_queue = 2;
  FleetScheduler fleet({vgpu::TeslaC1060()}, opts);

  std::vector<FleetScheduler::Ticket> tickets;
  for (int i = 0; i < 5; ++i) tickets.push_back(fleet.Submit(RequestFor(8)));
  EXPECT_TRUE(tickets[0].accepted);
  EXPECT_TRUE(tickets[1].accepted);
  for (int i = 2; i < 5; ++i) {
    EXPECT_FALSE(tickets[i].accepted) << "admission " << i << " should have bounced";
  }

  fleet.Start();
  fleet.Drain();
  FleetStats s = fleet.stats();
  ExpectDrainedInvariant(s);
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.rejected, 3u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.queue_high_water, 2u);

  // The queue reopened once drained: a post-drain submit is accepted.
  FleetScheduler::Ticket again = fleet.Submit(RequestFor(8));
  EXPECT_TRUE(again.accepted);
  fleet.Drain();
  EXPECT_EQ(fleet.stats().submitted, 3u);
}

TEST(FleetScheduler, OutOfRangePinShardThrowsAtSubmit) {
  FleetScheduler fleet({vgpu::TeslaC1060()});
  LaunchRequest req = RequestFor(8);
  req.pin_shard = 7;
  EXPECT_THROW(fleet.Submit(req), Error);
}

// ---------------------------------------------------------------------------
// Determinism: same profile => bit-identical simulated statistics; different
// profile => a genuinely different simulated execution.
// ---------------------------------------------------------------------------

TEST(FleetScheduler, SameProfileShardsProduceBitIdenticalLaunchStats) {
  FleetScheduler fleet(MixedFleet());  // shards 0 and 3 are both VC1060

  auto pinned = [&](int shard) {
    LaunchRequest req = RequestFor(8);
    req.pin_shard = shard;
    FleetScheduler::Ticket t = fleet.Submit(req);
    EXPECT_TRUE(t.accepted);
    return t.result;
  };
  auto first = pinned(0);
  auto mirror = pinned(3);
  auto other = pinned(1);  // VC2070
  fleet.Drain();

  const vgpu::LaunchStats a = first.get().stats;
  const vgpu::LaunchStats b = mirror.get().stats;
  const vgpu::LaunchStats c = other.get().stats;
  EXPECT_TRUE(vgpu::StatsBitIdentical(a, b))
      << "the same request on two same-profile shards must simulate identically";
  EXPECT_FALSE(vgpu::StatsBitIdentical(a, c))
      << "a different device profile must change the simulated execution";
}

TEST(FleetScheduler, RandomRoutingIsReproduciblePerSeed) {
  auto placements = [](std::uint64_t seed) {
    FleetOptions opts;
    opts.routing = Routing::kRandom;
    opts.random_seed = seed;
    FleetScheduler fleet(MixedFleet(), opts);
    std::vector<std::shared_future<LaunchResult>> futures;
    for (int i = 0; i < 32; ++i) {
      FleetScheduler::Ticket t = fleet.Submit(RequestFor(8));
      EXPECT_TRUE(t.accepted);
      futures.push_back(t.result);
    }
    fleet.Drain();
    std::vector<int> shards;
    for (auto& f : futures) shards.push_back(f.get().shard);
    return shards;
  };

  const std::vector<int> a = placements(1234);
  EXPECT_EQ(a, placements(1234));  // same seed, same traffic: same placement
  bool spread = false;
  for (int s : a) spread = spread || s != a[0];
  EXPECT_TRUE(spread) << "32 random placements over 4 shards should use >1 shard";
}

// ---------------------------------------------------------------------------
// Fleet-shared tuning cache: one search per (kernel, device kind, signature).
// ---------------------------------------------------------------------------

TEST(FleetScheduler, SharedTuningCacheSearchesOncePerDeviceKind) {
  tune::TuningCache cache;  // in-memory; thread-safe per the tuner.hpp contract
  FleetOptions opts;
  opts.tuning_cache = &cache;
  FleetScheduler fleet(MixedFleet(), opts);

  int searches = 0;
  auto search = [&searches] {
    ++searches;
    return tune::Config{{"threads", 64}};
  };

  tune::Config a = fleet.shard(0).TunedConfig("f", "n=8", search);  // VC1060: search
  tune::Config b = fleet.shard(3).TunedConfig("f", "n=8", search);  // VC1060: cache hit
  EXPECT_EQ(searches, 1);
  EXPECT_EQ(a.at("threads"), b.at("threads"));

  fleet.shard(1).TunedConfig("f", "n=8", search);  // VC2070: its own key
  EXPECT_EQ(searches, 2);
  fleet.shard(0).TunedConfig("f", "n=16", search);  // new signature: new search
  EXPECT_EQ(searches, 3);
}

// ---------------------------------------------------------------------------
// Shutdown: accepted-but-never-dispatched requests fail loudly.
// ---------------------------------------------------------------------------

TEST(FleetScheduler, ShutdownFailsRequestsItNeverDispatched) {
  FleetOptions opts;
  opts.autostart = false;
  FleetScheduler fleet({vgpu::TeslaC1060()}, opts);
  FleetScheduler::Ticket t1 = fleet.Submit(RequestFor(8));
  FleetScheduler::Ticket t2 = fleet.Submit(RequestFor(9));
  ASSERT_TRUE(t1.accepted);
  ASSERT_TRUE(t2.accepted);

  fleet.Shutdown();
  EXPECT_THROW(t1.result.get(), Error);
  EXPECT_THROW(t2.result.get(), Error);
  FleetStats s = fleet.stats();
  EXPECT_EQ(s.failed, 2u);
  EXPECT_EQ(s.dispatched, 0u);
  EXPECT_FALSE(fleet.Submit(RequestFor(8)).accepted);  // closed for business
}

// ---------------------------------------------------------------------------
// Work stealing: idle shards relieve a skewed one, pinned work stays put.
// ---------------------------------------------------------------------------

TEST(FleetScheduler, WorkStealingRelievesASkewedShard) {
  // One hot key resident on shard 0 only, routed by affinity: without
  // stealing the whole batch serializes there while three shards idle.
  auto run = [](bool stealing) {
    FleetOptions opts;
    opts.work_stealing = stealing;
    opts.autostart = false;  // accumulate the burst into one dispatch batch
    FleetScheduler fleet({vgpu::TeslaC1060(), vgpu::TeslaC1060(), vgpu::TeslaC1060(),
                          vgpu::TeslaC1060()},
                         opts);
    EXPECT_EQ(fleet.Prewarm(kKernel, OptsFor(2000), /*shard=*/0), 0);

    constexpr int kRequests = 48;
    std::vector<std::shared_ptr<float>> outputs;
    std::vector<std::shared_future<LaunchResult>> futures;
    for (int i = 0; i < kRequests; ++i) {
      outputs.push_back(std::make_shared<float>(0.0f));
      FleetScheduler::Ticket t = fleet.Submit(RequestFor(2000, outputs.back()));
      EXPECT_TRUE(t.accepted);
      futures.push_back(t.result);
    }
    fleet.Start();
    fleet.Drain();

    for (int i = 0; i < kRequests; ++i) {
      EXPECT_FLOAT_EQ(*outputs[i], 2000.0f) << "request " << i;
    }
    FleetStats s = fleet.stats();
    ExpectDrainedInvariant(s);
    EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(s.failed, 0u);
    // Routing happened before any stealing, so affinity accounting is intact.
    EXPECT_EQ(s.affinity_hits, static_cast<std::uint64_t>(kRequests));

    std::uint64_t run_total = 0;
    for (std::size_t i = 0; i < fleet.shard_count(); ++i) {
      run_total += fleet.shard_stats(i).launches;
    }
    EXPECT_EQ(run_total, static_cast<std::uint64_t>(kRequests));
    // Every launch shard 0 did not run was a steal, and vice versa.
    EXPECT_EQ(s.steals,
              static_cast<std::uint64_t>(kRequests) - fleet.shard_stats(0).launches);
    return s.steals;
  };

  EXPECT_EQ(run(/*stealing=*/false), 0u) << "the flag must gate the behavior";
  EXPECT_GT(run(/*stealing=*/true), 0u)
      << "three idle shards must relieve a 48-deep queue";
}

TEST(FleetScheduler, PinnedRequestsAreNeverStolen) {
  FleetOptions opts;
  opts.work_stealing = true;
  opts.autostart = false;
  FleetScheduler fleet({vgpu::TeslaC1060(), vgpu::TeslaC1060()}, opts);

  constexpr int kRequests = 16;
  std::vector<std::shared_future<LaunchResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    LaunchRequest req = RequestFor(2000);
    req.pin_shard = 0;  // an explicit placement is a promise, not a hint
    FleetScheduler::Ticket t = fleet.Submit(req);
    ASSERT_TRUE(t.accepted);
    futures.push_back(t.result);
  }
  fleet.Start();
  fleet.Drain();

  for (auto& f : futures) EXPECT_EQ(f.get().shard, 0);
  FleetStats s = fleet.stats();
  ExpectDrainedInvariant(s);
  EXPECT_EQ(s.steals, 0u);
  EXPECT_EQ(fleet.shard_stats(0).launches, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(fleet.shard_stats(1).launches, 0u);
}

}  // namespace
}  // namespace kspec
