// Unit tests for the kcc front-end: preprocessor, lexer, parser, and
// semantic analysis diagnostics.
#include <gtest/gtest.h>

#include "kcc/lexer.hpp"
#include "kcc/parser.hpp"
#include "kcc/preprocess.hpp"
#include "kcc/sema.hpp"
#include "support/status.hpp"

namespace kspec::kcc {
namespace {

// ---------------------------------------------------------------------------
// Preprocessor
// ---------------------------------------------------------------------------

TEST(Preprocess, DefineSubstitution) {
  std::string out = Preprocess("int x = N;", {{"N", "42"}});
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_EQ(out.find(" N "), std::string::npos);
}

TEST(Preprocess, IdentifierBoundariesRespected) {
  // "N" must not replace inside "N2" or "xN".
  std::string out = Preprocess("int N2 = N + xN;", {{"N", "7"}});
  EXPECT_NE(out.find("N2"), std::string::npos);
  EXPECT_NE(out.find("xN"), std::string::npos);
  EXPECT_NE(out.find("7"), std::string::npos);
}

TEST(Preprocess, NestedMacroExpansion) {
  std::string out = Preprocess("#define A B\n#define B 5\nint x = A;", {});
  EXPECT_NE(out.find("5"), std::string::npos);
}

TEST(Preprocess, SelfReferenceDoesNotLoop) {
  std::string out = Preprocess("#define X X\nint X = 1;", {});
  EXPECT_NE(out.find("X"), std::string::npos);
}

TEST(Preprocess, IfdefElseEndif) {
  std::string with = Preprocess("#ifdef F\nyes\n#else\nno\n#endif", {{"F", "1"}});
  EXPECT_NE(with.find("yes"), std::string::npos);
  EXPECT_EQ(with.find("no"), std::string::npos);
  std::string without = Preprocess("#ifdef F\nyes\n#else\nno\n#endif", {});
  EXPECT_EQ(without.find("yes"), std::string::npos);
  EXPECT_NE(without.find("no"), std::string::npos);
}

TEST(Preprocess, IfExpressionArithmetic) {
  std::string out = Preprocess("#if N * 2 > 10\nbig\n#else\nsmall\n#endif", {{"N", "6"}});
  EXPECT_NE(out.find("big"), std::string::npos);
  out = Preprocess("#if N * 2 > 10\nbig\n#else\nsmall\n#endif", {{"N", "4"}});
  EXPECT_NE(out.find("small"), std::string::npos);
}

TEST(Preprocess, IfDefinedOperator) {
  std::string out = Preprocess("#if defined(A) && !defined(B)\nok\n#endif", {{"A", "1"}});
  EXPECT_NE(out.find("ok"), std::string::npos);
}

TEST(Preprocess, ElifChain) {
  const char* src = "#if N == 1\none\n#elif N == 2\ntwo\n#else\nmany\n#endif";
  EXPECT_NE(Preprocess(src, {{"N", "1"}}).find("one"), std::string::npos);
  EXPECT_NE(Preprocess(src, {{"N", "2"}}).find("two"), std::string::npos);
  EXPECT_NE(Preprocess(src, {{"N", "9"}}).find("many"), std::string::npos);
}

TEST(Preprocess, UndefinedIdentifierIsZeroInIf) {
  std::string out = Preprocess("#if UNDEF\nyes\n#else\nno\n#endif", {});
  EXPECT_NE(out.find("no"), std::string::npos);
}

TEST(Preprocess, ErrorDirectiveThrows) {
  EXPECT_THROW(Preprocess("#error boom", {}), CompileError);
  EXPECT_NO_THROW(Preprocess("#ifdef X\n#error boom\n#endif", {}));
}

TEST(Preprocess, UnterminatedIfThrows) {
  EXPECT_THROW(Preprocess("#ifdef X\nint a;\n", {}), CompileError);
}

TEST(Preprocess, FunctionLikeMacroRejected) {
  EXPECT_THROW(Preprocess("#define F(x) x\n", {}), CompileError);
}

TEST(Preprocess, CommentsStripped) {
  std::string out = Preprocess("int a; // c1 N\n/* N */ int b;", {{"N", "9"}});
  EXPECT_EQ(out.find("9"), std::string::npos);
  EXPECT_EQ(out.find("c1"), std::string::npos);
}

TEST(Preprocess, LineContinuation) {
  std::string out = Preprocess("#define V 1 + \\\n 2\nint x = V;", {});
  EXPECT_NE(out.find("1 +"), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(Preprocess, PragmaIgnored) {
  EXPECT_NO_THROW(Preprocess("#pragma unroll\nint x;", {}));
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, IntegerLiterals) {
  auto toks = Lex("42 0x1F 7u 9ULL");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[0].int_value, 42u);
  EXPECT_EQ(toks[1].int_value, 0x1Fu);
  EXPECT_TRUE(toks[2].is_unsigned);
  EXPECT_TRUE(toks[3].is_unsigned);
  EXPECT_TRUE(toks[3].is_wide);
}

TEST(Lexer, FloatLiterals) {
  auto toks = Lex("1.5 2.0f 1e3 2.5e-2f");
  EXPECT_EQ(toks[0].kind, Tok::kFloatLit);
  EXPECT_DOUBLE_EQ(toks[0].float_value, 1.5);
  EXPECT_TRUE(toks[1].is_f32);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 1000.0);
  EXPECT_TRUE(toks[3].is_f32);
  EXPECT_NEAR(toks[3].float_value, 0.025, 1e-12);
}

TEST(Lexer, OperatorsGreedy) {
  auto toks = Lex("<<= >>= << >> <= >= == != && || ++ --");
  std::vector<Tok> expect = {Tok::kShlEq, Tok::kShrEq, Tok::kShl, Tok::kShr,
                             Tok::kLessEq, Tok::kGreaterEq, Tok::kEqEq, Tok::kBangEq,
                             Tok::kAmpAmp, Tok::kPipePipe, Tok::kPlusPlus, Tok::kMinusMinus};
  for (std::size_t i = 0; i < expect.size(); ++i) EXPECT_EQ(toks[i].kind, expect[i]) << i;
}

TEST(Lexer, TracksLineNumbers) {
  auto toks = Lex("a\nb\n  c");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 3);
  EXPECT_EQ(toks[2].col, 3);
}

TEST(Lexer, RejectsGarbage) { EXPECT_THROW(Lex("int @"), CompileError); }

// ---------------------------------------------------------------------------
// Parser diagnostics
// ---------------------------------------------------------------------------

ModuleAst ParseOk(const std::string& src) {
  ModuleAst m = Parse(src);
  Analyze(m);
  return m;
}

TEST(Parser, MinimalKernel) {
  ModuleAst m = ParseOk("__kernel void f(float* p) { p[0] = 1.0f; }");
  ASSERT_EQ(m.kernels.size(), 1u);
  EXPECT_EQ(m.kernels[0].name, "f");
  ASSERT_EQ(m.kernels[0].params.size(), 1u);
  EXPECT_TRUE(m.kernels[0].params[0].type.is_pointer);
}

TEST(Parser, BreakContinueRejectedWithGuidance) {
  try {
    Parse("__kernel void f(int n) { for (int i = 0; i < n; i++) { break; } }");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("break/continue"), std::string::npos);
  }
}

TEST(Parser, NonVoidKernelRejected) {
  EXPECT_THROW(Parse("__kernel int f() { }"), CompileError);
}

TEST(Parser, ThreadGeometryBuiltins) {
  EXPECT_NO_THROW(ParseOk(
      "__kernel void f(int* o) { o[0] = (int)(threadIdx.x + blockIdx.y * gridDim.z); }"));
  EXPECT_THROW(Parse("__kernel void f() { int a = threadIdx.w; }"), CompileError);
}

TEST(Parser, CastVsParenDisambiguation) {
  EXPECT_NO_THROW(ParseOk("__kernel void f(float* o, int a) { o[0] = (float)a * (a + 1); }"));
}

// ---------------------------------------------------------------------------
// Sema diagnostics
// ---------------------------------------------------------------------------

TEST(Sema, UndeclaredIdentifier) {
  try {
    ParseOk("__kernel void f() { int a = MISSING_CONST; }");
    FAIL();
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("specialization"), std::string::npos);
  }
}

TEST(Sema, ShadowingRejected) {
  EXPECT_THROW(ParseOk("__kernel void f(int n) { int x = 0; { int x = 1; } }"), CompileError);
  EXPECT_THROW(ParseOk("__kernel void f(int n) { int n = 0; }"), CompileError);
}

TEST(Sema, SharedArrayNeedsConstantSize) {
  EXPECT_THROW(ParseOk("__kernel void f(int n) { __shared float s[n]; }"), CompileError);
  EXPECT_NO_THROW(ParseOk("__kernel void f(int n) { __shared float s[2 * 8]; s[0] = 1.0f; }"));
}

TEST(Sema, SharedArrayMustBeTopLevel) {
  EXPECT_THROW(
      ParseOk("__kernel void f(int n) { if (n > 0) { __shared float s[8]; } }"),
      CompileError);
}

TEST(Sema, ConstVariableNotAssignable) {
  EXPECT_THROW(ParseOk("__kernel void f() { const int a = 1; a = 2; }"), CompileError);
}

TEST(Sema, ConstantMemoryReadOnly) {
  EXPECT_THROW(ParseOk("__constant float c[4];\n__kernel void f() { c[0] = 1.0f; }"),
               CompileError);
  EXPECT_NO_THROW(ParseOk("__constant float c[4];\n__kernel void f(float* o) { o[0] = c[1]; }"));
}

TEST(Sema, ConstantMemorySizeLimit) {
  EXPECT_THROW(ParseOk("__constant float c[20000];\n__constant float d[20000];\n"
                       "__kernel void f() { }"),
               CompileError);
}

TEST(Sema, PointerArithmeticRules) {
  EXPECT_NO_THROW(ParseOk("__kernel void f(float* p, int i) { *(p + i) = 1.0f; }"));
  EXPECT_THROW(ParseOk("__kernel void f(float* p, float x) { *(p + x) = 1.0f; }"),
               CompileError);
  EXPECT_THROW(ParseOk("__kernel void f(float* p, float* q) { float x = *(p * q); }"),
               CompileError);
}

TEST(Sema, UnknownFunctionRejected) {
  EXPECT_THROW(ParseOk("__kernel void f() { float x = myhelper(1.0f); }"), CompileError);
}

TEST(Sema, IntrinsicArityChecked) {
  EXPECT_THROW(ParseOk("__kernel void f() { float x = fminf(1.0f); }"), CompileError);
  EXPECT_NO_THROW(ParseOk("__kernel void f(float* o) { o[0] = fminf(1.0f, 2.0f); }"));
}

TEST(Sema, AtomicsNeedPointerFirstArg) {
  EXPECT_THROW(ParseOk("__kernel void f(float x) { atomicAdd(x, 1.0f); }"), CompileError);
  EXPECT_NO_THROW(ParseOk("__kernel void f(float* p) { atomicAdd(p, 1.0f); }"));
}

TEST(Sema, BitwiseOnFloatsRejected) {
  EXPECT_THROW(ParseOk("__kernel void f(float a, float b) { float c = a & b; }"),
               CompileError);
  EXPECT_THROW(ParseOk("__kernel void f(float a) { float c = a << 2; }"), CompileError);
}

}  // namespace
}  // namespace kspec::kcc
