// MiniPTX assembler tests: hand-written programs executed directly on the
// simulator, plus the disassemble/assemble round-trip property over every
// application kernel (RE and SK builds).
#include <gtest/gtest.h>

#include "apps/backproj/kernels.hpp"
#include "apps/matching/kernels.hpp"
#include "apps/piv/kernels.hpp"
#include "kcc/compiler.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/asm.hpp"
#include "vgpu/interp.hpp"

namespace kspec::vgpu {
namespace {

bool SameOperand(const Operand& a, const Operand& b) {
  if (a.kind != b.kind) return false;
  if (a.is_reg()) return a.reg == b.reg;
  if (a.is_imm()) return a.imm == b.imm;
  return true;
}

bool SameInstr(const Instr& a, const Instr& b) {
  return a.op == b.op && a.type == b.type &&
         (a.op != Opcode::kCvt || a.type2 == b.type2) &&
         (a.op != Opcode::kSetp || a.cmp == b.cmp) &&
         ((a.op != Opcode::kLd && a.op != Opcode::kSt &&
           a.op != Opcode::kAtomAdd && a.op != Opcode::kAtomMin &&
           a.op != Opcode::kAtomMax && a.op != Opcode::kAtomExch &&
           a.op != Opcode::kAtomCas) ||
          a.space == b.space) &&
         a.neg == b.neg && a.dst == b.dst && SameOperand(a.a, b.a) && SameOperand(a.b, b.b) &&
         SameOperand(a.c, b.c) &&
         ((a.op != Opcode::kBra && a.op != Opcode::kBraPred && a.op != Opcode::kTex2D &&
           a.op != Opcode::kTex1D) ||
          a.target == b.target) &&
         (a.op != Opcode::kBraPred || a.reconv == b.reconv);
}

TEST(MiniPtxAsm, HandWrittenSaxpyRuns) {
  // y[t] = 2*x[t] + y[t] for 32 threads, written directly in MiniPTX.
  // Params: vreg0 = x pointer, vreg1 = y pointer.
  const char* text = R"(
    mov.u32 %r2, %tid.x
    cvt.u64.u32 %r3, %r2
    shl.u64 %r4, %r3, 2
    add.u64 %r5, %r0, %r4
    add.u64 %r6, %r1, %r4
    ld.global.f32 %r7, [%r5+0]
    ld.global.f32 %r8, [%r6+0]
    mad.f32 %r9, %r7, 0f40000000, %r8
    st.global.f32 [%r6+0], %r9
    exit
)";
  CompiledKernel k;
  k.name = "saxpy";
  k.code = Assemble(text);
  k.params = {{"x", Type::kU64}, {"y", Type::kU64}};
  k.num_vregs = 10;
  k.stats.reg_count = 8;

  GlobalMemory mem(1 << 20);
  DevPtr x = mem.Alloc(32 * 4), y = mem.Alloc(32 * 4);
  std::vector<float> xs(32), ys(32);
  for (int i = 0; i < 32; ++i) {
    xs[i] = static_cast<float>(i);
    ys[i] = 100.0f;
  }
  mem.WriteSpan<float>(x, xs);
  mem.WriteSpan<float>(y, ys);

  DeviceProfile dev = TeslaC1060();
  Interpreter interp(dev, &mem);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(32);
  cfg.args = {x, y};
  interp.Launch(k, cfg);

  std::vector<float> out(32);
  mem.ReadSpan<float>(y, std::span<float>(out));
  for (int i = 0; i < 32; ++i) EXPECT_FLOAT_EQ(out[i], 2.0f * i + 100.0f) << i;
}

TEST(MiniPtxAsm, HandWrittenDivergentBranch) {
  // out[t] = t < 16 ? 1.0 : 2.0 with an explicit reconvergence point:
  //   pc 2 branches lanes with t >= 16 to the else-move at pc 5; the
  //   then-side runs pc 3 and jumps over it; both sides join at pc 6.
  const char* good = R"(
    mov.u32 %r1, %tid.x
    setp.lt.u32 %p2, %r1, 16
    @!%p2 bra L5  // reconv L6
    mov.f32 %r3, 0f3F800000
    bra L6
    mov.f32 %r3, 0f40000000
    cvt.u64.u32 %r4, %r1
    shl.u64 %r5, %r4, 2
    add.u64 %r6, %r0, %r5
    st.global.f32 [%r6+0], %r3
    exit
)";
  CompiledKernel k;
  k.name = "branchy";
  k.code = Assemble(good);
  k.params = {{"out", Type::kU64}};
  k.num_vregs = 7;
  k.stats.reg_count = 6;

  GlobalMemory mem(1 << 20);
  DevPtr out = mem.Alloc(32 * 4);
  DeviceProfile dev = TeslaC1060();
  Interpreter interp(dev, &mem);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(32);
  cfg.args = {out};
  interp.Launch(k, cfg);
  std::vector<float> res(32);
  mem.ReadSpan<float>(out, std::span<float>(res));
  for (int t = 0; t < 32; ++t) EXPECT_FLOAT_EQ(res[t], t < 16 ? 1.0f : 2.0f) << t;
}

TEST(MiniPtxAsm, DiagnosticsCarryLineNumbers) {
  try {
    Assemble("add.s32 %r1, %r2,\n  frobnicate.f32 %r1");
    FAIL() << "expected DeviceError";
  } catch (const DeviceError& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
}

// Round trip over every application kernel, RE and SK.
TEST(MiniPtxAsm, RoundTripsAllApplicationKernels) {
  struct Case {
    std::string source;
    kcc::CompileOptions opts;
  };
  auto piv_src = [](const char* body) {
    std::string s = body;
    std::string tag = "__COMMON__";
    s.replace(s.find(tag), tag.size(), apps::piv::kPivCommonHeader);
    return s;
  };
  kcc::CompileOptions piv_sk;
  piv_sk.defines = {{"CT_MASK", "1"},    {"K_MASK_W", "8"},   {"K_MASK_AREA", "64"},
                    {"CT_SEARCH", "1"},  {"K_SEARCH_W", "5"}, {"K_N_OFFSETS", "25"},
                    {"CT_THREADS", "1"}, {"K_THREADS", "64"}};
  kcc::CompileOptions piv_rb = piv_sk;
  piv_rb.defines["K_RB"] = "1";
  kcc::CompileOptions bp_sk;
  bp_sk.defines = {{"CT_ANGLES", "1"}, {"K_N_ANGLES", "4"}, {"CT_ZPT", "1"},
                   {"K_ZPT", "2"},     {"CT_VOL", "1"},     {"K_VOL_Z", "4"},
                   {"CT_THREADS", "1"}, {"K_THREADS", "32"}};

  std::vector<Case> cases = {
      {apps::matching::kNumeratorSource, {}},
      {apps::matching::kSummationSource, {}},
      {apps::matching::kWindowStatsSource, {}},
      {apps::matching::kScorePeakSource, {}},
      {piv_src(apps::piv::kPivBasicSource), {}},
      {piv_src(apps::piv::kPivBasicSource), piv_sk},
      {piv_src(apps::piv::kPivRegBlockSource), piv_rb},
      {piv_src(apps::piv::kPivWarpSpecSource), piv_sk},
      {piv_src(apps::piv::kPivMultiMaskSource), {}},
      {apps::backproj::kBackprojSource, {}},
      {apps::backproj::kBackprojSource, bp_sk},
      {apps::backproj::kBackprojTexSource, {}},
  };

  for (std::size_t n = 0; n < cases.size(); ++n) {
    kcc::CompiledModule mod = kcc::CompileModule(cases[n].source, cases[n].opts);
    for (const auto& k : mod.kernels) {
      std::string text = Disassemble(k.code);
      std::vector<Instr> back = Assemble(text);
      ASSERT_EQ(back.size(), k.code.size()) << "case " << n << " kernel " << k.name;
      for (std::size_t pc = 0; pc < k.code.size(); ++pc) {
        ASSERT_TRUE(SameInstr(k.code[pc], back[pc]))
            << "case " << n << " kernel " << k.name << " pc " << pc << "\n  orig: "
            << Disassemble(k.code[pc], pc) << "\n  back: " << Disassemble(back[pc], pc);
      }
    }
  }
}

}  // namespace
}  // namespace kspec::vgpu
