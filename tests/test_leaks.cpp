// Device-memory leak regression (the RAII guarantee of the launch layer).
//
// Before the DeviceBuffer refactor every app driver paired raw Malloc/Free
// calls, so any throw between them stranded the buffers already uploaded —
// GpuMatch could leak nine allocations from a single bad configuration. These
// tests pin the fix: after an app call returns OR throws, the context's
// GlobalMemory must report zero outstanding allocations and zero bytes in
// use. The throwing paths are driven two ways: a configuration check that
// fires mid-pipeline (after uploads), and a heap-size sweep that makes an
// allocation fail at a different depth of each driver.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/backproj/gpu.hpp"
#include "apps/backproj/problem.hpp"
#include "apps/matching/gpu.hpp"
#include "apps/matching/problem.hpp"
#include "apps/piv/gpu.hpp"
#include "apps/piv/problem.hpp"
#include "apps/rowfilter/rowfilter.hpp"
#include "support/status.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec {
namespace {

void ExpectNoLiveAllocations(vcuda::Context& ctx) {
  EXPECT_EQ(ctx.memory().allocation_count(), 0u);
  EXPECT_EQ(ctx.memory().bytes_in_use(), 0u);
}

TEST(LeakRegression, MatchingThrowAfterUploadsLeaksNothing) {
  // A 6x6 template with 8x8 tiles fails the tiling check — which fires AFTER
  // the ROI and centered template are already on the device. Pre-refactor
  // this stranded both uploads.
  apps::matching::Problem p = apps::matching::Generate("tiny", 6, 6, 2, 2, 3);
  vcuda::Context ctx(vgpu::TeslaC2070());
  apps::matching::MatcherConfig cfg;
  cfg.tile_h = 8;
  cfg.tile_w = 8;
  EXPECT_THROW(apps::matching::GpuMatch(ctx, p, cfg), Error);
  ExpectNoLiveAllocations(ctx);
}

TEST(LeakRegression, MatchingOversizedReTileLeaksNothing) {
  // The adaptability ceiling from matching/gpu.cpp: an RE tile above the
  // fixed shared allocation throws DeviceError.
  apps::matching::Problem p = apps::matching::Generate("big", 40, 40, 4, 4, 3);
  vcuda::Context ctx(vgpu::TeslaC2070());
  apps::matching::MatcherConfig cfg;
  cfg.tile_h = 40;
  cfg.tile_w = 40;
  cfg.threads = 32;
  cfg.specialize = false;
  EXPECT_THROW(apps::matching::GpuMatch(ctx, p, cfg), DeviceError);
  ExpectNoLiveAllocations(ctx);
}

// Runs `call` against contexts whose heaps shrink from roomy to hopeless, so
// the out-of-memory DeviceError fires at a different allocation in each run.
// Every outcome — success or throw — must leave the heap empty.
template <typename Fn>
void SweepHeapSizes(Fn call) {
  int threw = 0, succeeded = 0;
  for (std::uint64_t heap : {std::uint64_t{1} << 24, std::uint64_t{1} << 16,
                             std::uint64_t{1} << 13, std::uint64_t{1} << 10,
                             std::uint64_t{256}}) {
    vcuda::Context ctx(vgpu::TeslaC2070(), heap);
    try {
      call(ctx);
      ++succeeded;
    } catch (const Error&) {
      ++threw;
    }
    ExpectNoLiveAllocations(ctx);
  }
  // The sweep must actually exercise both paths: the largest heap fits the
  // whole problem, the smallest cannot fit the first upload.
  EXPECT_GE(succeeded, 1);
  EXPECT_GE(threw, 1);
}

TEST(LeakRegression, MatchingHeapExhaustionSweep) {
  apps::matching::Problem p = apps::matching::Generate("sweep", 12, 10, 6, 8, 77);
  SweepHeapSizes([&](vcuda::Context& ctx) {
    apps::matching::MatcherConfig cfg;
    cfg.tile_h = 4;
    cfg.tile_w = 4;
    apps::matching::GpuMatch(ctx, p, cfg);
  });
}

TEST(LeakRegression, PivHeapExhaustionSweep) {
  apps::piv::Problem p = apps::piv::Generate("sweep", 32, 8, 2, 4, 7);
  SweepHeapSizes([&](vcuda::Context& ctx) {
    apps::piv::PivConfig cfg;
    cfg.threads = 32;
    apps::piv::GpuPiv(ctx, p, cfg);
  });
}

TEST(LeakRegression, BackprojHeapExhaustionSweep) {
  apps::backproj::Geometry geo;  // default 24^2 x 16 volume, 48x32x16 detector
  apps::backproj::Problem p = apps::backproj::Generate("sweep", geo, 2, 11);
  SweepHeapSizes([&](vcuda::Context& ctx) {
    apps::backproj::BackprojConfig cfg;
    apps::backproj::GpuBackproject(ctx, p, cfg);
  });
}

TEST(LeakRegression, RowFilterHeapExhaustionSweep) {
  apps::rowfilter::Image img = apps::rowfilter::MakeTestImage(48, 24, 5);
  apps::rowfilter::FilterSpec filter = apps::rowfilter::BoxFilter(5);
  SweepHeapSizes([&](vcuda::Context& ctx) {
    apps::rowfilter::RowFilterConfig cfg;
    apps::rowfilter::GpuRowFilter(ctx, img, filter, cfg);
  });
}

}  // namespace
}  // namespace kspec
