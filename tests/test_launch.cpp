// Launch-layer tests: SpecBuilder stringification and validation, RAII device
// buffers, StageRunner accounting, MakeRegions tiling edge cases, and tiered /
// async promotion through a shared runner (the PR 2-3 stack exercised by an
// actual app driver).
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "apps/matching/gpu.hpp"
#include "apps/matching/problem.hpp"
#include "apps/piv/cpu_ref.hpp"
#include "apps/piv/gpu.hpp"
#include "apps/piv/problem.hpp"
#include "launch/spec_builder.hpp"
#include "launch/stage_runner.hpp"
#include "launch/transfer_model.hpp"
#include "serve/compile_executor.hpp"
#include "vcuda/device_buffer.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec {
namespace {

using launch::LoadPolicy;
using launch::ParamTable;
using launch::SpecBuilder;
using launch::SpecError;
using launch::StageRunner;
using launch::TransferModel;

// ---------------------------------------------------------------- SpecBuilder

TEST(SpecBuilder, StringificationRules) {
  SpecBuilder spec;
  spec.Flag("CT_FLAG")
      .Value("K_INT", 7)
      .Value("K_NEG", -3)
      .Value("K_BIG", 0xFFFFFFFFFFFFull)
      .Value("K_BOOL_T", true)
      .Value("K_BOOL_F", false)
      .Value("K_HALF", 0.5)
      .Value("K_QUARTER", 0.25f)
      .Value("SRC_T", "float")
      .Pointer("K_TABLE", 0xdeadbeefull);
  const auto& d = spec.defines();
  EXPECT_EQ(d.at("CT_FLAG"), "1");
  EXPECT_EQ(d.at("K_INT"), "7");
  EXPECT_EQ(d.at("K_NEG"), "-3");
  EXPECT_EQ(d.at("K_BIG"), "281474976710655");
  EXPECT_EQ(d.at("K_BOOL_T"), "1");
  EXPECT_EQ(d.at("K_BOOL_F"), "0");
  EXPECT_EQ(d.at("K_HALF"), "0.5f");     // %.9g + 'f' suffix
  EXPECT_EQ(d.at("K_QUARTER"), "0.25f");
  EXPECT_EQ(d.at("SRC_T"), "float");     // verbatim text
  EXPECT_EQ(d.at("K_TABLE"), "0xdeadbeef");
}

TEST(SpecBuilder, DuplicateDefineRejected) {
  SpecBuilder spec;
  spec.Value("K_N", 4);
  EXPECT_THROW(spec.Value("K_N", 4), SpecError);

  // RE mode emits nothing but still rejects duplicates: the misuse is in the
  // call sites, not the define set.
  SpecBuilder re(/*specialize=*/false);
  re.Value("K_N", 4);
  EXPECT_THROW(re.Value("K_N", 5), SpecError);
}

TEST(SpecBuilder, ReuseDocumentsAnExistingDefineOnly) {
  SpecBuilder spec;
  spec.Value("K_N_SHIFTS", 48);
  EXPECT_NO_THROW(spec.Reuse("K_N_SHIFTS"));        // intentional cross-stage read
  EXPECT_THROW(spec.Reuse("K_UNDEFINED"), SpecError);  // the reuse must be real
  EXPECT_EQ(spec.defines().size(), 1u);             // Reuse never adds defines
}

TEST(SpecBuilder, ReModeProducesEmptyDefineSet) {
  SpecBuilder re(/*specialize=*/false);
  re.Flag("CT_SHIFT").Value("K_SHIFT_W", 8).Value("K_F", 1.5);
  EXPECT_FALSE(re.specializing());
  EXPECT_TRUE(re.defines().empty());
  EXPECT_TRUE(re.Build().defines.empty());
}

TEST(SpecBuilder, ParamTableValidation) {
  ParamTable table("demo");
  table.Flag("CT_CAP", "capability flag").Value("K_N", "element count");
  EXPECT_TRUE(table.Knows("CT_CAP"));
  EXPECT_TRUE(table.IsFlag("CT_CAP"));
  EXPECT_FALSE(table.IsFlag("K_N"));
  EXPECT_NE(table.Describe().find("CT_CAP"), std::string::npos);

  SpecBuilder spec(/*specialize=*/true, &table);
  EXPECT_NO_THROW(spec.Flag("CT_CAP"));
  EXPECT_NO_THROW(spec.Value("K_N", 16));
  SpecBuilder bad1(true, &table);
  EXPECT_THROW(bad1.Value("K_TYPO", 1), SpecError);  // undeclared macro
  SpecBuilder bad2(true, &table);
  EXPECT_THROW(bad2.Value("CT_CAP", 3), SpecError);  // flag used as value
  SpecBuilder bad3(true, &table);
  EXPECT_THROW(bad3.Flag("K_N"), SpecError);         // value used as flag
}

TEST(SpecBuilder, BuildPreservesBaseOptions) {
  SpecBuilder spec;
  spec.Value("K_N", 4);
  kcc::CompileOptions base;
  base.max_unroll = 7;
  base.optimize = false;
  kcc::CompileOptions built = spec.Build(base);
  EXPECT_EQ(built.max_unroll, 7);
  EXPECT_FALSE(built.optimize);
  EXPECT_EQ(built.defines.at("K_N"), "4");
}

TEST(SpecBuilder, AppTablesValidateTheirOwnDrivers) {
  // The declared tables (Table 4.1 analogues) know the macros the drivers use.
  EXPECT_TRUE(apps::matching::MatcherParams().Knows("K_N_SHIFTS"));
  EXPECT_TRUE(apps::matching::MatcherParams().IsFlag("CT_SUM"));
  EXPECT_TRUE(apps::piv::PivParams().Knows("K_RB"));
}

// --------------------------------------------------------------- DeviceBuffer

TEST(DeviceBuffer, FreesOnDestruction) {
  vcuda::Context ctx(vgpu::TeslaC2070());
  {
    vcuda::DeviceBuffer b(ctx, 256);
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_EQ(ctx.memory().allocation_count(), 1u);
  }
  EXPECT_EQ(ctx.memory().allocation_count(), 0u);
  EXPECT_EQ(ctx.memory().bytes_in_use(), 0u);
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
  vcuda::Context ctx(vgpu::TeslaC2070());
  vcuda::DeviceBuffer a(ctx, 64);
  vgpu::DevPtr p = a.get();
  vcuda::DeviceBuffer b(std::move(a));
  EXPECT_EQ(b.get(), p);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_EQ(ctx.memory().allocation_count(), 1u);
  vcuda::DeviceBuffer c(ctx, 32);
  c = std::move(b);  // move-assign frees c's old allocation
  EXPECT_EQ(c.get(), p);
  EXPECT_EQ(ctx.memory().allocation_count(), 1u);
  c.Reset();
  EXPECT_EQ(ctx.memory().allocation_count(), 0u);
}

TEST(DeviceBuffer, ZeroBytesAllocatesNothing) {
  vcuda::Context ctx(vgpu::TeslaC2070());
  vcuda::DeviceBuffer b(ctx, 0);
  EXPECT_FALSE(static_cast<bool>(b));
  EXPECT_EQ(ctx.memory().allocation_count(), 0u);
}

TEST(DeviceBuffer, TypedRoundTrip) {
  vcuda::Context ctx(vgpu::TeslaC2070());
  std::vector<float> host = {1.0f, 2.5f, -3.0f, 0.0f};
  auto buf = vcuda::UploadBuffer<float>(ctx, std::span<const float>(host));
  EXPECT_EQ(buf.count(), host.size());
  EXPECT_EQ(buf.Download(), host);
  EXPECT_THROW(buf.Upload(std::span<const float>(host.data(), 2)), Error);
}

// ---------------------------------------------------------------- StageRunner

// A single-source RE/SK kernel (Appendix B shape) for runner tests.
constexpr const char* kScaleKernel = R"(
#ifndef K_SCALE
#define K_SCALE scale
#endif

__kernel void scaleK(float* in, float* out, float scale, int n) {
  unsigned int t = blockIdx.x * blockDim.x + threadIdx.x;
  if ((int)t < n) out[t] = in[t] * K_SCALE;
}
)";

TEST(StageRunner, UploadChargesTheSharedTransferModel) {
  vcuda::Context ctx(vgpu::TeslaC2070());
  StageRunner runner(ctx);
  std::vector<float> host(1000, 1.0f);
  auto d_in = runner.Upload<float>(std::span<const float>(host));
  TransferModel model;
  EXPECT_DOUBLE_EQ(runner.breakdown().transfer_millis, model.HtoDMillis(host.size() * 4));
  auto back = runner.Download(d_in);
  EXPECT_DOUBLE_EQ(runner.breakdown().transfer_millis,
                   model.HtoDMillis(host.size() * 4) + model.DtoHMillis(host.size() * 4));
  EXPECT_EQ(back, host);
}

TEST(StageRunner, RecordsStagesAndTakeBreakdownResets) {
  vcuda::Context ctx(vgpu::TeslaC2070());
  StageRunner runner(ctx);
  std::vector<float> host(64, 2.0f);
  auto d_in = runner.Upload<float>(std::span<const float>(host));
  auto d_out = runner.Alloc<float>(host.size());

  SpecBuilder spec;
  spec.Value("K_SCALE", 3.0f);
  vcuda::ArgPack args;
  args.Ptr(d_in.get()).Ptr(d_out.get()).Float(3.0f).Int(64);
  runner.Run("scale", kScaleKernel, spec, "scaleK", vgpu::Dim3(1), vgpu::Dim3(64), args);
  runner.Run("scale", kScaleKernel, spec, "scaleK", vgpu::Dim3(1), vgpu::Dim3(64), args);

  const auto& bd = runner.breakdown();
  ASSERT_EQ(bd.stages.size(), 1u);  // same-name launches merge into one record
  const launch::StageRecord* rec = bd.Stage("scale");
  ASSERT_NE(rec, nullptr);
  EXPECT_GT(rec->reg_count, 0);
  EXPECT_GT(rec->sim_millis, 0.0);
  EXPECT_DOUBLE_EQ(bd.sim_millis, rec->sim_millis);
  EXPECT_EQ(runner.Download(d_out), std::vector<float>(64, 6.0f));

  launch::LaunchBreakdown taken = runner.TakeBreakdown();
  EXPECT_EQ(taken.stages.size(), 1u);
  EXPECT_TRUE(runner.breakdown().stages.empty());
  EXPECT_EQ(runner.breakdown().transfer_millis, 0.0);
  EXPECT_EQ(runner.breakdown().sim_millis, 0.0);
}

TEST(StageRunner, InlinePolicyAlwaysSpecialized) {
  vcuda::Context ctx(vgpu::TeslaC2070());
  StageRunner runner(ctx);
  SpecBuilder spec;
  spec.Value("K_SCALE", 2.0f);
  EXPECT_TRUE(runner.IsSpecialized(kScaleKernel, spec));
}

TEST(StageRunner, AsyncPromoteRequiresAttachedService) {
  vcuda::Context ctx(vgpu::TeslaC2070());
  EXPECT_THROW(StageRunner(ctx, {.policy = LoadPolicy::kAsyncPromote}), Error);
}

TEST(StageRunner, TieredPolicyPromotesAtThreshold) {
  vcuda::Context ctx(vgpu::TeslaC2070());
  StageRunner runner(ctx, {.policy = LoadPolicy::kTiered, .hot_threshold = 2});
  std::vector<float> host(64, 2.0f);
  auto d_in = runner.Upload<float>(std::span<const float>(host));
  auto d_out = runner.Alloc<float>(host.size());
  SpecBuilder spec;
  spec.Value("K_SCALE", 3.0f);
  vcuda::ArgPack args;
  args.Ptr(d_in.get()).Ptr(d_out.get()).Float(3.0f).Int(64);

  runner.Run("scale", kScaleKernel, spec, "scaleK", vgpu::Dim3(1), vgpu::Dim3(64), args);
  EXPECT_FALSE(runner.IsSpecialized(kScaleKernel, spec));  // cold: served RE
  EXPECT_EQ(runner.tiered_stats().re_served, 1u);

  // No async service attached: the threshold promotion blocks and serves SK.
  runner.Run("scale", kScaleKernel, spec, "scaleK", vgpu::Dim3(1), vgpu::Dim3(64), args);
  EXPECT_TRUE(runner.IsSpecialized(kScaleKernel, spec));
  EXPECT_EQ(runner.tiered_stats().sk_served, 1u);
  EXPECT_EQ(runner.tiered_stats().specializations, 1u);
  EXPECT_EQ(runner.Download(d_out), std::vector<float>(64, 6.0f));
}

// The acceptance-criterion demo as a test: a repeated-problem app run under
// the tiered policy shows promotion stats advancing — the RE build answers
// while the specialized build compiles on the background executor.
TEST(StageRunnerTiered, AppRunServesReWhileSpecializationCompiles) {
  serve::CompileExecutor executor({.workers = 1, .max_queue = 16});
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_async_service(&executor);
  StageRunner runner(ctx, {.policy = LoadPolicy::kAsyncPromote, .hot_threshold = 2});

  apps::piv::Problem p = apps::piv::Generate("hot", 32, 8, 2, 4, 7);
  apps::piv::PivConfig cfg;
  cfg.variant = apps::piv::Variant::kWarpSpec;  // single-source: RE fallback is valid
  cfg.threads = 32;

  // Call 1: cold — the RE build answers, nothing scheduled.
  apps::piv::PivGpuResult r1 = GpuPiv(runner, p, cfg);
  auto s = runner.tiered_stats();
  EXPECT_EQ(s.re_served, 1u);
  EXPECT_EQ(s.background_compiles, 0u);
  EXPECT_EQ(s.sk_served, 0u);

  // Call 2: the heat threshold schedules the specialized compile on the
  // executor and this call is still answered RE — no stall.
  apps::piv::PivGpuResult r2 = GpuPiv(runner, p, cfg);
  s = runner.tiered_stats();
  EXPECT_EQ(s.re_served, 2u);
  EXPECT_EQ(s.background_compiles, 1u);
  EXPECT_GE(s.re_served_while_compiling, 1u);
  EXPECT_EQ(s.sk_served, 0u);

  // Once the background build lands, the next call swaps it in.
  executor.Drain();
  apps::piv::PivGpuResult r3 = GpuPiv(runner, p, cfg);
  s = runner.tiered_stats();
  EXPECT_EQ(s.sk_served, 1u);
  EXPECT_EQ(s.specializations, 1u);
  EXPECT_EQ(s.promotions_pending, 0u);

  // The tier that answered must not change the numbers (RE == SK).
  EXPECT_EQ(r1.field.best_offset, r3.field.best_offset);
  ASSERT_EQ(r1.field.best_score.size(), r3.field.best_score.size());
  for (std::size_t i = 0; i < r1.field.best_score.size(); ++i) {
    EXPECT_FLOAT_EQ(r1.field.best_score[i], r3.field.best_score[i]) << "mask " << i;
  }
  EXPECT_EQ(r2.field.best_offset, r3.field.best_offset);
  executor.Shutdown();
}

// ---------------------------------------------------------------- MakeRegions

namespace matching = apps::matching;

int CoveredArea(const std::vector<matching::TileRegion>& regions) {
  int area = 0;
  for (const auto& r : regions) area += r.th * r.tw * r.tiles();
  return area;
}

TEST(MakeRegions, TemplateExactlyOneTile) {
  matching::Problem p = matching::Generate("one", 8, 8, 2, 2, 1);
  matching::MatcherConfig cfg;
  cfg.tile_h = 8;
  cfg.tile_w = 8;
  auto regions = matching::MakeRegions(p, cfg);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].th, 8);
  EXPECT_EQ(regions[0].tw, 8);
  EXPECT_EQ(regions[0].tiles(), 1);
  EXPECT_EQ(CoveredArea(regions), p.tpl_h * p.tpl_w);
}

TEST(MakeRegions, FourRegionDecompositionCoversTemplate) {
  // 11x13 with 4x8 tiles: main 2x1, right edge (w=5), bottom (h=3), corner.
  matching::Problem p = matching::Generate("edges", 11, 13, 3, 3, 1);
  matching::MatcherConfig cfg;
  cfg.tile_h = 4;
  cfg.tile_w = 8;
  auto regions = matching::MakeRegions(p, cfg);
  ASSERT_EQ(regions.size(), 4u);
  EXPECT_EQ(CoveredArea(regions), p.tpl_h * p.tpl_w);
}

TEST(MakeRegions, RemainderOnlyColumns) {
  // Template narrower than one tile: the full width is a single remainder
  // column, tiled down the rows.
  matching::Problem p = matching::Generate("cols", 8, 3, 2, 2, 1);
  matching::MatcherConfig cfg;
  cfg.tile_h = 4;
  cfg.tile_w = 8;
  auto regions = matching::MakeRegions(p, cfg);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].th, 4);
  EXPECT_EQ(regions[0].tw, 3);
  EXPECT_EQ(regions[0].tiles_y, 2);
  EXPECT_EQ(CoveredArea(regions), p.tpl_h * p.tpl_w);
}

TEST(MakeRegions, RemainderOnlyRows) {
  matching::Problem p = matching::Generate("rows", 3, 8, 2, 2, 1);
  matching::MatcherConfig cfg;
  cfg.tile_h = 8;
  cfg.tile_w = 4;
  auto regions = matching::MakeRegions(p, cfg);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].th, 3);
  EXPECT_EQ(regions[0].tiles_x, 2);
  EXPECT_EQ(CoveredArea(regions), p.tpl_h * p.tpl_w);
}

TEST(MakeRegions, TemplateSmallerThanOneTileThrows) {
  matching::Problem p = matching::Generate("tiny", 4, 4, 2, 2, 1);
  matching::MatcherConfig cfg;
  cfg.tile_h = 8;
  cfg.tile_w = 8;
  EXPECT_THROW(matching::MakeRegions(p, cfg), Error);
}

}  // namespace
}  // namespace kspec
