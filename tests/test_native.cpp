// Native execution tier: bit-identical LaunchStats against the decoded tier
// (serial and parallel), warm-cache cross-engine reuse with zero recompiles,
// corrupt/stale/version-bump artifact degradation, store round-trips,
// background promotion through NativeBuildExecutor, tier-selection precedence,
// cross-tier identity over all four applications, and the shape-specialized
// variant ladder: eager/auto variant serving, variant-vs-generic cache-key
// separation, per-variant corruption quarantine, and the per-module variant
// cap with LRU eviction.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>

#include "apps/backproj/gpu.hpp"
#include "apps/backproj/problem.hpp"
#include "apps/matching/gpu.hpp"
#include "apps/matching/problem.hpp"
#include "apps/piv/gpu.hpp"
#include "apps/piv/problem.hpp"
#include "apps/rowfilter/rowfilter.hpp"
#include "kcc/cache_key.hpp"
#include "kcc/serialize.hpp"
#include "native/build.hpp"
#include "native/build_executor.hpp"
#include "native/engine.hpp"
#include "netd/artifact_store.hpp"
#include "support/serialize.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/interp.hpp"
#include "vgpu/tier.hpp"

namespace kspec {
namespace {

namespace fs = std::filesystem;
using vgpu::ExecutionTier;

// This suite exercises every level of the tier-precedence chain itself, so a
// VGPU_TIER forced in the environment (the CI native leg runs the rest of the
// suite that way) would invalidate the request-level assertions. Drop it
// before any launch — EnvTier() parses lazily on first use.
const bool kEnvTierNeutralized = [] {
  ::unsetenv("VGPU_TIER");
  return true;
}();

// A nontrivial kernel exercising the features the emitter must get right:
// data-dependent divergence, a strided loop, shared memory, an in-block
// reduction with barriers, and a specializable bound.
constexpr const char* kKernel = R"(
#ifndef SCALE
#define SCALE scale
#endif
__kernel void reduce(float* out, float* in, int n, int scale) {
  __shared float sums[64];
  int t = threadIdx.x;
  float acc = 0.0f;
  for (int i = t; i < n; i += 64) {
    float v = in[i + blockIdx.x * n];
    if (v > 0.5f) {
      acc += v * 2.0f;
    } else {
      acc -= v;
    }
  }
  sums[t] = acc;
  __syncthreads();
  for (int s = 32; s > 0; s = s / 2) {
    if (t < s) {
      sums[t] = sums[t] + sums[t + s];
    }
    __syncthreads();
  }
  out[blockIdx.x * 64 + t] = sums[0] + acc * (float)SCALE;
}
)";

kcc::CompileOptions OptsFor(int scale) {
  kcc::CompileOptions opts;
  opts.defines["SCALE"] = std::to_string(scale);
  return opts;
}

// A scratch cache directory, fresh per test, removed on destruction. The tag
// keeps multiple directories within one test distinct.
struct TempCacheDir {
  explicit TempCacheDir(const std::string& tag = "") {
    dir = fs::temp_directory_path() /
          ("kspec_native_test_" + std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~TempCacheDir() { fs::remove_all(dir); }
  std::string str() const { return dir.string(); }
  fs::path dir;
};

// RAII guards for the process-wide overrides so a failing test cannot leak
// its tier or worker policy into the next one.
struct TierGuard {
  explicit TierGuard(ExecutionTier t) { vgpu::SetTierOverride(&t); }
  ~TierGuard() { vgpu::SetTierOverride(nullptr); }
};
struct PolicyGuard {
  explicit PolicyGuard(vgpu::ExecPolicy p) { vgpu::SetExecPolicyOverride(&p); }
  ~PolicyGuard() { vgpu::SetExecPolicyOverride(nullptr); }
};
struct ShapeGuard {
  explicit ShapeGuard(vgpu::ShapeMode m) { vgpu::SetShapeModeOverride(&m); }
  ~ShapeGuard() { vgpu::SetShapeModeOverride(nullptr); }
};

vgpu::ExecPolicy Parallel4() {
  vgpu::ExecPolicy p;
  p.mode = vgpu::ExecMode::kParallel;
  p.workers = 4;
  return p;
}

struct LaunchOutcome {
  vgpu::LaunchStats stats;
  std::vector<float> out;
  vcuda::LaunchExecution exec;
};

// One launch of kKernel's reduce over `blocks` blocks on the given tier.
LaunchOutcome RunReduce(vcuda::Context& ctx, vcuda::Module& mod, ExecutionTier request,
                        int blocks = 4, int n = 256, int scale = 3) {
  std::vector<float> in(static_cast<std::size_t>(blocks) * n);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>((i * 37 % 100)) / 100.0f;
  }
  vcuda::DevPtr d_in = vcuda::Upload<float>(ctx, in);
  vcuda::DevPtr d_out = ctx.Malloc(static_cast<std::uint64_t>(blocks) * 64 * sizeof(float));
  vcuda::ArgPack args;
  args.Ptr(d_out).Ptr(d_in).Int(n).Int(scale);
  LaunchOutcome r;
  r.exec.request = request;
  r.stats = ctx.Launch(mod, "reduce", vgpu::Dim3(static_cast<unsigned>(blocks)),
                       vgpu::Dim3(64), args, 0, &r.exec);
  r.out = vcuda::Download<float>(ctx, d_out, static_cast<std::size_t>(blocks) * 64);
  ctx.Free(d_out);
  ctx.Free(d_in);
  return r;
}

#define SKIP_WITHOUT_TOOLCHAIN()                                          \
  if (!native::ToolchainAvailable()) {                                    \
    GTEST_SKIP() << "no host C++ toolchain; native tier disabled";        \
  }

// ---------------------------------------------------------------------------
// Tier selection plumbing (no toolchain needed).
// ---------------------------------------------------------------------------

TEST(TierSelection, ParseAndNameRoundTrip) {
  for (ExecutionTier t : {ExecutionTier::kAuto, ExecutionTier::kInterp,
                          ExecutionTier::kDecoded, ExecutionTier::kNative}) {
    ExecutionTier parsed = ExecutionTier::kAuto;
    EXPECT_TRUE(vgpu::ParseTier(vgpu::TierName(t), &parsed));
    EXPECT_EQ(parsed, t);
  }
  ExecutionTier parsed = ExecutionTier::kDecoded;
  EXPECT_FALSE(vgpu::ParseTier("warp-drive", &parsed));
  EXPECT_EQ(parsed, ExecutionTier::kDecoded) << "failed parse must not touch out";
  EXPECT_FALSE(vgpu::ParseTier("", &parsed));
}

TEST(TierSelection, ResolvePrecedence) {
  // Request beats context default; kAuto request defers to the default.
  EXPECT_EQ(vgpu::ResolveTier(ExecutionTier::kInterp, ExecutionTier::kNative),
            ExecutionTier::kInterp);
  EXPECT_EQ(vgpu::ResolveTier(ExecutionTier::kAuto, ExecutionTier::kDecoded),
            ExecutionTier::kDecoded);
  EXPECT_EQ(vgpu::ResolveTier(ExecutionTier::kAuto, ExecutionTier::kAuto),
            ExecutionTier::kAuto);
  // The test override beats everything.
  {
    TierGuard g(ExecutionTier::kInterp);
    EXPECT_EQ(vgpu::ResolveTier(ExecutionTier::kNative, ExecutionTier::kDecoded),
              ExecutionTier::kInterp);
  }
  EXPECT_EQ(vgpu::ResolveTier(ExecutionTier::kNative), ExecutionTier::kNative);
}

TEST(TierSelection, ContextCountsServedTiers) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  auto mod = ctx.LoadModule(kKernel, OptsFor(3));
  LaunchOutcome interp = RunReduce(ctx, *mod, ExecutionTier::kInterp);
  LaunchOutcome decoded = RunReduce(ctx, *mod, ExecutionTier::kDecoded);
  EXPECT_EQ(interp.exec.served, ExecutionTier::kInterp);
  EXPECT_EQ(decoded.exec.served, ExecutionTier::kDecoded);
  EXPECT_TRUE(vgpu::StatsBitIdentical(interp.stats, decoded.stats));
  EXPECT_EQ(interp.out, decoded.out);
  vcuda::TierStats ts = ctx.tier_stats();
  EXPECT_EQ(ts.launches_interp, 1u);
  EXPECT_EQ(ts.launches_decoded, 1u);
  EXPECT_EQ(ts.launches_native, 0u);
}

TEST(TierSelection, NativeRequestWithoutServiceFallsBack) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  auto mod = ctx.LoadModule(kKernel, OptsFor(3));
  LaunchOutcome native = RunReduce(ctx, *mod, ExecutionTier::kNative);
  EXPECT_EQ(native.exec.served, ExecutionTier::kDecoded);
  EXPECT_TRUE(native.exec.native_fallback);
  EXPECT_EQ(ctx.tier_stats().native_fallbacks, 1u);
}

// ---------------------------------------------------------------------------
// The native tier proper.
// ---------------------------------------------------------------------------

TEST(NativeTier, ForcedNativeBitIdenticalToDecoded) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir cache;
  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.str();
  native::NativeEngine engine(nopts);
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_native_service(&engine);
  auto mod = ctx.LoadModule(kKernel, OptsFor(3));

  LaunchOutcome decoded = RunReduce(ctx, *mod, ExecutionTier::kDecoded);
  LaunchOutcome native = RunReduce(ctx, *mod, ExecutionTier::kNative);

  EXPECT_EQ(native.exec.served, ExecutionTier::kNative);
  EXPECT_FALSE(native.exec.native_fallback);
  EXPECT_TRUE(vgpu::StatsBitIdentical(decoded.stats, native.stats))
      << "decoded vs native LaunchStats diverged";
  EXPECT_EQ(decoded.out, native.out);

  native::NativeEngineStats es = engine.stats();
  EXPECT_EQ(es.builds_started, 1u);
  EXPECT_EQ(es.builds_completed, 1u);
  EXPECT_EQ(es.build_failures, 0u);
  EXPECT_EQ(es.served_launches, 1u);
  // The artifact landed on disk under the content-addressed name.
  kcc::ModuleCacheKey key =
      kcc::ModuleCacheKey::Make(kKernel, OptsFor(3), ctx.device().name);
  EXPECT_TRUE(fs::exists(cache.dir / native::NativeEngine::ArtifactFileName(key)));

  vcuda::TierStats ts = ctx.tier_stats();
  EXPECT_EQ(ts.launches_native, 1u);
  EXPECT_EQ(ts.native_fallbacks, 0u);
}

TEST(NativeTier, ParallelWorkersBitIdentical) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir cache;
  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.str();
  native::NativeEngine engine(nopts);
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_native_service(&engine);
  auto mod = ctx.LoadModule(kKernel, OptsFor(3));

  // Enough blocks for several chunks so the parallel path genuinely shards.
  LaunchOutcome serial = RunReduce(ctx, *mod, ExecutionTier::kNative, /*blocks=*/32);
  LaunchOutcome decoded_par = [&] {
    PolicyGuard g(Parallel4());
    return RunReduce(ctx, *mod, ExecutionTier::kDecoded, /*blocks=*/32);
  }();
  LaunchOutcome native_par = [&] {
    PolicyGuard g(Parallel4());
    return RunReduce(ctx, *mod, ExecutionTier::kNative, /*blocks=*/32);
  }();

  EXPECT_EQ(serial.exec.served, ExecutionTier::kNative);
  EXPECT_EQ(native_par.exec.served, ExecutionTier::kNative);
  EXPECT_TRUE(vgpu::StatsBitIdentical(serial.stats, decoded_par.stats));
  EXPECT_TRUE(vgpu::StatsBitIdentical(serial.stats, native_par.stats));
  EXPECT_EQ(serial.out, native_par.out);
}

TEST(NativeTier, AutoServesOnlyAfterEnsureReady) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir cache;
  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.str();
  native::NativeEngine engine(nopts);
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_native_service(&engine);
  auto mod = ctx.LoadModule(kKernel, OptsFor(3));
  kcc::ModuleCacheKey key =
      kcc::ModuleCacheKey::Make(kKernel, OptsFor(3), ctx.device().name);

  // kAuto with nothing built: the launch must not block on a build.
  LaunchOutcome cold = RunReduce(ctx, *mod, ExecutionTier::kAuto);
  EXPECT_EQ(cold.exec.served, ExecutionTier::kDecoded);
  EXPECT_EQ(engine.stats().builds_started, 0u);
  EXPECT_FALSE(engine.IsReady(key));

  ASSERT_TRUE(engine.EnsureReady(key, mod->compiled()));
  EXPECT_TRUE(engine.IsReady(key));

  LaunchOutcome warm = RunReduce(ctx, *mod, ExecutionTier::kAuto);
  EXPECT_EQ(warm.exec.served, ExecutionTier::kNative);
  EXPECT_TRUE(vgpu::StatsBitIdentical(cold.stats, warm.stats));
  EXPECT_EQ(cold.out, warm.out);
}

TEST(NativeTier, SecondEngineServesFromWarmDiskCacheWithZeroRebuilds) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir cache;
  kcc::ModuleCacheKey key;
  {
    native::NativeEngine::Options nopts;
    nopts.cache_dir = cache.str();
    native::NativeEngine engine(nopts);
    vcuda::Context ctx(vgpu::TeslaC1060());
    ctx.set_native_service(&engine);
    auto mod = ctx.LoadModule(kKernel, OptsFor(3));
    key = kcc::ModuleCacheKey::Make(kKernel, OptsFor(3), ctx.device().name);
    ASSERT_TRUE(engine.EnsureReady(key, mod->compiled()));
    EXPECT_EQ(engine.stats().builds_started, 1u);
  }
  // A fresh engine (standing in for a second process) over the same cache
  // directory: served from disk, no compiler invocation.
  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.str();
  native::NativeEngine engine2(nopts);
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_native_service(&engine2);
  auto mod = ctx.LoadModule(kKernel, OptsFor(3));
  LaunchOutcome r = RunReduce(ctx, *mod, ExecutionTier::kNative);
  EXPECT_EQ(r.exec.served, ExecutionTier::kNative);
  native::NativeEngineStats es = engine2.stats();
  EXPECT_EQ(es.disk_hits, 1u);
  EXPECT_EQ(es.builds_started, 0u);
  EXPECT_EQ(es.served_launches, 1u);
}

TEST(NativeTier, CorruptArtifactDegradesThenRebuilds) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir cache;
  kcc::ModuleCacheKey key;
  {
    native::NativeEngine::Options nopts;
    nopts.cache_dir = cache.str();
    native::NativeEngine engine(nopts);
    vcuda::Context ctx(vgpu::TeslaC1060());
    ctx.set_native_service(&engine);
    auto mod = ctx.LoadModule(kKernel, OptsFor(3));
    key = kcc::ModuleCacheKey::Make(kKernel, OptsFor(3), ctx.device().name);
    ASSERT_TRUE(engine.EnsureReady(key, mod->compiled()));
  }
  const fs::path artifact = cache.dir / native::NativeEngine::ArtifactFileName(key);
  ASSERT_TRUE(fs::exists(artifact));

  // Flip a byte deep in the payload: the checksum catches it.
  {
    std::fstream f(artifact, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(artifact) / 2));
    char c = 0;
    f.seekg(f.tellp());
    f.read(&c, 1);
    f.seekp(-1, std::ios::cur);
    c = static_cast<char>(c ^ 0x5a);
    f.write(&c, 1);
  }

  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.str();
  native::NativeEngine engine2(nopts);
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_native_service(&engine2);
  auto mod = ctx.LoadModule(kKernel, OptsFor(3));

  // kAuto: the corrupt artifact is quarantined and the launch quietly runs
  // decoded — never an error.
  LaunchOutcome degraded = RunReduce(ctx, *mod, ExecutionTier::kAuto);
  EXPECT_EQ(degraded.exec.served, ExecutionTier::kDecoded);
  native::NativeEngineStats es = engine2.stats();
  EXPECT_EQ(es.corrupt_quarantined, 1u);
  EXPECT_EQ(es.builds_started, 0u);
  EXPECT_FALSE(fs::exists(artifact)) << "corrupt artifact must be renamed aside";
  EXPECT_TRUE(fs::exists(artifact.string() + ".bad"));

  // A forced native launch may build, and the rebuild replaces the artifact.
  LaunchOutcome forced = RunReduce(ctx, *mod, ExecutionTier::kNative);
  EXPECT_EQ(forced.exec.served, ExecutionTier::kNative);
  EXPECT_EQ(engine2.stats().builds_completed, 1u);
  EXPECT_TRUE(fs::exists(artifact));
  EXPECT_TRUE(vgpu::StatsBitIdentical(degraded.stats, forced.stats));
  EXPECT_EQ(degraded.out, forced.out);
}

TEST(NativeTier, FormatVersionBumpQuarantines) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir cache;
  kcc::ModuleCacheKey key;
  {
    native::NativeEngine::Options nopts;
    nopts.cache_dir = cache.str();
    native::NativeEngine engine(nopts);
    vcuda::Context ctx(vgpu::TeslaC1060());
    ctx.set_native_service(&engine);
    auto mod = ctx.LoadModule(kKernel, OptsFor(3));
    key = kcc::ModuleCacheKey::Make(kKernel, OptsFor(3), ctx.device().name);
    ASSERT_TRUE(engine.EnsureReady(key, mod->compiled()));
  }
  const fs::path artifact = cache.dir / native::NativeEngine::ArtifactFileName(key);
  {
    // Pretend a future writer produced this file.
    std::fstream f(artifact, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(kcc::kNativeFormatVersionOffset));
    const std::uint32_t bumped = kcc::kNativeFormatVersion + 1;
    f.write(reinterpret_cast<const char*>(&bumped), sizeof(bumped));
  }
  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.str();
  native::NativeEngine engine2(nopts);
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_native_service(&engine2);
  auto mod = ctx.LoadModule(kKernel, OptsFor(3));
  LaunchOutcome r = RunReduce(ctx, *mod, ExecutionTier::kAuto);
  EXPECT_EQ(r.exec.served, ExecutionTier::kDecoded);
  EXPECT_EQ(engine2.stats().corrupt_quarantined, 1u);
  EXPECT_FALSE(fs::exists(artifact));
}

TEST(NativeTier, HashCollisionArtifactLeftInPlace) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir cache;
  vcuda::Context ctx(vgpu::TeslaC1060());
  kcc::ModuleCacheKey key3 =
      kcc::ModuleCacheKey::Make(kKernel, OptsFor(3), ctx.device().name);
  kcc::ModuleCacheKey key5 =
      kcc::ModuleCacheKey::Make(kKernel, OptsFor(5), ctx.device().name);
  {
    native::NativeEngine::Options nopts;
    nopts.cache_dir = cache.str();
    native::NativeEngine engine(nopts);
    vcuda::Context build_ctx(vgpu::TeslaC1060());
    build_ctx.set_native_service(&engine);
    auto mod = build_ctx.LoadModule(kKernel, OptsFor(3));
    ASSERT_TRUE(engine.EnsureReady(key3, mod->compiled()));
  }
  // Plant key3's (valid) artifact under key5's file name — a simulated hash
  // collision. It is someone else's artifact, not corruption: discarded as a
  // miss but left on disk.
  const fs::path planted = cache.dir / native::NativeEngine::ArtifactFileName(key5);
  fs::copy_file(cache.dir / native::NativeEngine::ArtifactFileName(key3), planted);

  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.str();
  native::NativeEngine engine2(nopts);
  ctx.set_native_service(&engine2);
  auto mod5 = ctx.LoadModule(kKernel, OptsFor(5));
  LaunchOutcome r = RunReduce(ctx, *mod5, ExecutionTier::kAuto, 4, 256, /*scale=*/5);
  EXPECT_EQ(r.exec.served, ExecutionTier::kDecoded);
  EXPECT_EQ(engine2.stats().stale_discarded, 1u);
  EXPECT_EQ(engine2.stats().corrupt_quarantined, 0u);
  EXPECT_TRUE(fs::exists(planted));
}

TEST(NativeTier, KeylessModuleDegrades) {
  SKIP_WITHOUT_TOOLCHAIN();
  native::NativeEngine engine;
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_native_service(&engine);
  auto keyed = ctx.LoadModule(kKernel, OptsFor(3));
  // A directly constructed Module has no specialization identity; the
  // content-addressed native tier cannot serve it.
  vcuda::Module keyless(keyed->compiled_ptr());
  std::vector<float> in(1024, 0.25f);
  vcuda::DevPtr d_in = vcuda::Upload<float>(ctx, in);
  vcuda::DevPtr d_out = ctx.Malloc(4 * 64 * sizeof(float));
  vcuda::ArgPack args;
  args.Ptr(d_out).Ptr(d_in).Int(256).Int(3);
  vcuda::LaunchExecution exec;
  exec.request = ExecutionTier::kNative;
  ctx.Launch(keyless, "reduce", vgpu::Dim3(4), vgpu::Dim3(64), args, 0, &exec);
  EXPECT_EQ(exec.served, ExecutionTier::kDecoded);
  EXPECT_TRUE(exec.native_fallback);
  EXPECT_EQ(engine.stats().builds_started, 0u);
  ctx.Free(d_out);
  ctx.Free(d_in);
}

TEST(NativeTier, ArtifactStoreRoundTripWithWriteThrough) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir store_dir("_store");
  TempCacheDir disk1("_disk1");
  TempCacheDir disk2("_disk2");
  netd::ArtifactStore store(store_dir.str());
  kcc::ModuleCacheKey key;
  {
    native::NativeEngine::Options nopts;
    nopts.cache_dir = disk1.str();
    nopts.store = &store;
    native::NativeEngine engine(nopts);
    vcuda::Context ctx(vgpu::TeslaC1060());
    ctx.set_native_service(&engine);
    auto mod = ctx.LoadModule(kKernel, OptsFor(3));
    key = kcc::ModuleCacheKey::Make(kKernel, OptsFor(3), ctx.device().name);
    ASSERT_TRUE(engine.EnsureReady(key, mod->compiled()));
    EXPECT_EQ(store.stats().native_publishes, 1u);
    EXPECT_TRUE(store.ContainsNative(key));
  }
  // Engine 2 has a cold private disk cache but shares the store: the artifact
  // comes from the store and is written through to the local disk tier.
  native::NativeEngine::Options nopts;
  nopts.cache_dir = disk2.str();
  nopts.store = &store;
  native::NativeEngine engine2(nopts);
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_native_service(&engine2);
  auto mod = ctx.LoadModule(kKernel, OptsFor(3));
  LaunchOutcome r = RunReduce(ctx, *mod, ExecutionTier::kNative);
  EXPECT_EQ(r.exec.served, ExecutionTier::kNative);
  native::NativeEngineStats es = engine2.stats();
  EXPECT_EQ(es.store_hits, 1u);
  EXPECT_EQ(es.disk_hits, 0u);
  EXPECT_EQ(es.builds_started, 0u);
  EXPECT_EQ(store.stats().native_hits, 1u);
  EXPECT_TRUE(fs::exists(disk2.dir / native::NativeEngine::ArtifactFileName(key)));
}

TEST(NativeTier, BuildExecutorPromotesInBackground) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir cache;
  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.str();
  native::NativeEngine engine(nopts);
  native::NativeBuildExecutor exec(&engine);
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_native_service(&engine);
  ctx.set_async_service(&exec);
  auto mod = ctx.LoadModule(kKernel, OptsFor(3));
  kcc::ModuleCacheKey key =
      kcc::ModuleCacheKey::Make(kKernel, OptsFor(3), ctx.device().name);
  EXPECT_FALSE(engine.IsReady(key));

  // The compile flight completes, then hands the module to the engine so the
  // native artifact is ready before any launch forced a build.
  vcuda::SubmitResult sr = ctx.LoadModuleAsync(kKernel, OptsFor(3));
  ASSERT_TRUE(sr.future.valid());
  exec.Drain();
  EXPECT_TRUE(engine.IsReady(key));
  EXPECT_EQ(engine.stats().builds_completed, 1u);

  LaunchOutcome r = RunReduce(ctx, *mod, ExecutionTier::kAuto);
  EXPECT_EQ(r.exec.served, ExecutionTier::kNative);
}

TEST(NativeTier, RuntimeDeviceTweaksFlowThroughCostConstants) {
  SKIP_WITHOUT_TOOLCHAIN();
  // The cache key only carries the device *name* — per-launch cost constants
  // (transaction cycles, bank count, watchdog budget) must reach the SO at
  // run time, not be baked in at emit time.
  vgpu::DeviceProfile dev = vgpu::TeslaC1060();
  dev.cycles_per_global_tx *= 3;
  dev.shared_access_cost += 2;
  TempCacheDir cache;
  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.str();
  native::NativeEngine engine(nopts);
  vcuda::Context ctx(dev);
  ctx.set_native_service(&engine);
  auto mod = ctx.LoadModule(kKernel, OptsFor(3));
  LaunchOutcome decoded = RunReduce(ctx, *mod, ExecutionTier::kDecoded);
  LaunchOutcome native = RunReduce(ctx, *mod, ExecutionTier::kNative);
  ASSERT_EQ(native.exec.served, ExecutionTier::kNative);
  EXPECT_TRUE(vgpu::StatsBitIdentical(decoded.stats, native.stats));
  EXPECT_EQ(decoded.out, native.out);
}

TEST(NativeTier, KernelFaultsKeepInterpreterErrorText) {
  SKIP_WITHOUT_TOOLCHAIN();
  constexpr const char* kDivergentBarrier = R"(
__kernel void bad(float* out) {
  if (threadIdx.x < 16u) {
    __syncthreads();
  }
  out[threadIdx.x] = 1.0f;
}
)";
  TempCacheDir cache;
  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.str();
  native::NativeEngine engine(nopts);
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_native_service(&engine);
  auto mod = ctx.LoadModule(kDivergentBarrier);
  vcuda::DevPtr d_out = ctx.Malloc(32 * sizeof(float));
  vcuda::ArgPack args;
  args.Ptr(d_out);
  auto run = [&](ExecutionTier request) -> std::string {
    vcuda::LaunchExecution exec;
    exec.request = request;
    try {
      ctx.Launch(*mod, "bad", vgpu::Dim3(1), vgpu::Dim3(32), args, 0, &exec);
    } catch (const DeviceError& e) {
      return e.what();
    }
    return "<no error>";
  };
  const std::string decoded_msg = run(ExecutionTier::kDecoded);
  const std::string native_msg = run(ExecutionTier::kNative);
  EXPECT_NE(decoded_msg, "<no error>");
  EXPECT_EQ(decoded_msg, native_msg)
      << "a native-tier kernel fault must raise the interpreter's exact text";
  ctx.Free(d_out);
}

// ---------------------------------------------------------------------------
// Cross-tier identity over the four applications: decoded-serial,
// decoded-parallel(4), interp, native-generic and native-shape runs of the
// same problem must agree on every LaunchStats bit and every output element.
// ---------------------------------------------------------------------------

struct AppRun {
  vgpu::LaunchStats stats;
  std::vector<float> out;
  std::size_t native_launches = 0;
  std::size_t shape_launches = 0;
};

template <typename Fn>
void ExpectCrossTierIdentity(Fn run_app) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir cache;
  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.str();
  native::NativeEngine engine(nopts);

  AppRun serial = run_app(nullptr, ExecutionTier::kAuto);
  AppRun parallel = [&] {
    PolicyGuard g(Parallel4());
    return run_app(nullptr, ExecutionTier::kAuto);
  }();
  AppRun itp = [&] {
    TierGuard g(ExecutionTier::kInterp);
    return run_app(nullptr, ExecutionTier::kInterp);
  }();
  AppRun nat = [&] {
    TierGuard g(ExecutionTier::kNative);
    ShapeGuard s(vgpu::ShapeMode::kOff);  // generic artifacts only
    return run_app(&engine, ExecutionTier::kNative);
  }();
  AppRun shaped = [&] {
    TierGuard g(ExecutionTier::kNative);
    ShapeGuard s(vgpu::ShapeMode::kEager);  // every launch shape specialized
    return run_app(&engine, ExecutionTier::kNative);
  }();

  EXPECT_TRUE(vgpu::StatsBitIdentical(serial.stats, parallel.stats))
      << "decoded-serial vs decoded-parallel stats diverged";
  EXPECT_TRUE(vgpu::StatsBitIdentical(serial.stats, itp.stats))
      << "decoded vs interp stats diverged";
  EXPECT_TRUE(vgpu::StatsBitIdentical(serial.stats, nat.stats))
      << "decoded vs native-generic stats diverged";
  EXPECT_TRUE(vgpu::StatsBitIdentical(serial.stats, shaped.stats))
      << "decoded vs native-shape stats diverged";
  EXPECT_EQ(serial.out, parallel.out);
  EXPECT_EQ(serial.out, itp.out);
  EXPECT_EQ(serial.out, nat.out);
  EXPECT_EQ(serial.out, shaped.out);
  EXPECT_GT(nat.native_launches, 0u) << "the native run never hit the native tier";
  EXPECT_GT(shaped.shape_launches, 0u)
      << "the shape run was never served by a shape-specialized variant";
  EXPECT_EQ(engine.stats().build_failures, 0u);
  EXPECT_EQ(engine.stats().shape_build_failures, 0u);
}

AppRun WithContext(native::NativeEngine* engine,
                   const std::function<AppRun(vcuda::Context&)>& body) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  if (engine) ctx.set_native_service(engine);
  AppRun r = body(ctx);
  r.native_launches = ctx.tier_stats().launches_native;
  r.shape_launches = ctx.tier_stats().launches_native_shape;
  return r;
}

TEST(NativeTierApps, RowFilter) {
  ExpectCrossTierIdentity([](native::NativeEngine* engine, ExecutionTier) {
    return WithContext(engine, [](vcuda::Context& ctx) {
      apps::rowfilter::Image img = apps::rowfilter::MakeTestImage(64, 24, 42);
      apps::rowfilter::FilterSpec spec = apps::rowfilter::BinomialFilter(7);
      apps::rowfilter::RowFilterConfig cfg;
      auto res = apps::rowfilter::GpuRowFilter(ctx, img, spec, cfg);
      return AppRun{res.stats, std::move(res.out)};
    });
  });
}

TEST(NativeTierApps, Piv) {
  ExpectCrossTierIdentity([](native::NativeEngine* engine, ExecutionTier) {
    return WithContext(engine, [](vcuda::Context& ctx) {
      apps::piv::Problem p = apps::piv::Generate("native", 48, 8, 2, 8, 99);
      apps::piv::PivConfig cfg;
      auto res = apps::piv::GpuPiv(ctx, p, cfg);
      std::vector<float> out;
      for (std::size_t i = 0; i < res.field.best_offset.size(); ++i) {
        out.push_back(static_cast<float>(res.field.best_offset[i]));
        out.push_back(res.field.best_score[i]);
      }
      return AppRun{res.stats, std::move(out)};
    });
  });
}

TEST(NativeTierApps, Matching) {
  ExpectCrossTierIdentity([](native::NativeEngine* engine, ExecutionTier) {
    return WithContext(engine, [](vcuda::Context& ctx) {
      apps::matching::Problem p = apps::matching::Generate("native", 12, 10, 6, 8, 77);
      apps::matching::MatcherConfig cfg;
      auto res = apps::matching::GpuMatch(ctx, p, cfg);
      std::vector<float> out = std::move(res.scores);
      out.push_back(static_cast<float>(res.best_idx));
      out.push_back(res.best_score);
      // Multi-stage pipeline: fold every stage's stats bit-relevant counters
      // through the last stage's record; stage-level identity is implied by
      // identical outputs + the final stage stats below.
      vgpu::LaunchStats last{};
      if (!res.breakdown.stages.empty()) last = res.breakdown.stages.back().launch;
      return AppRun{last, std::move(out)};
    });
  });
}

TEST(NativeTierApps, Backproj) {
  ExpectCrossTierIdentity([](native::NativeEngine* engine, ExecutionTier) {
    return WithContext(engine, [](vcuda::Context& ctx) {
      apps::backproj::Geometry g;
      g.vol_n = 12;
      g.vol_z = 8;
      g.det_u = 24;
      g.det_v = 16;
      g.n_angles = 8;
      apps::backproj::Problem p = apps::backproj::Generate("native", g, 2, 77);
      apps::backproj::BackprojConfig cfg;
      cfg.use_texture = true;  // exercise the texture path on the native tier
      auto res = apps::backproj::GpuBackproject(ctx, p, cfg);
      return AppRun{res.stats, std::move(res.volume)};
    });
  });
}

// ---------------------------------------------------------------------------
// Shape-specialized native variants.
// ---------------------------------------------------------------------------

// The launch shape RunReduce(blocks) produces: `blocks` x 1 x 1 grid of
// 64-thread blocks.
native::ShapeSpec ShapeFor(int blocks) {
  native::ShapeSpec s;
  s.block_x = 64;
  s.grid_x = static_cast<unsigned>(blocks);
  return s;
}

TEST(NativeShape, EagerVariantServesBitIdentical) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir cache;
  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.str();
  native::NativeEngine engine(nopts);
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_native_service(&engine);
  auto mod = ctx.LoadModule(kKernel, OptsFor(3));

  LaunchOutcome decoded = RunReduce(ctx, *mod, ExecutionTier::kDecoded);
  LaunchOutcome interp = RunReduce(ctx, *mod, ExecutionTier::kInterp);
  LaunchOutcome generic = [&] {
    ShapeGuard g(vgpu::ShapeMode::kOff);
    return RunReduce(ctx, *mod, ExecutionTier::kNative);
  }();
  LaunchOutcome shaped = [&] {
    ShapeGuard g(vgpu::ShapeMode::kEager);
    return RunReduce(ctx, *mod, ExecutionTier::kNative);
  }();

  EXPECT_EQ(generic.exec.served, ExecutionTier::kNative);
  EXPECT_FALSE(generic.exec.native_shape);
  EXPECT_EQ(shaped.exec.served, ExecutionTier::kNative);
  EXPECT_TRUE(shaped.exec.native_shape);

  // The whole point: four tiers, one LaunchStats, one output.
  EXPECT_TRUE(vgpu::StatsBitIdentical(decoded.stats, interp.stats));
  EXPECT_TRUE(vgpu::StatsBitIdentical(decoded.stats, generic.stats));
  EXPECT_TRUE(vgpu::StatsBitIdentical(decoded.stats, shaped.stats))
      << "shape-specialized variant diverged from the decoded tier";
  EXPECT_EQ(decoded.out, interp.out);
  EXPECT_EQ(decoded.out, generic.out);
  EXPECT_EQ(decoded.out, shaped.out);

  const kcc::ModuleCacheKey key =
      kcc::ModuleCacheKey::Make(kKernel, OptsFor(3), ctx.device().name);
  const native::ShapeSpec shape = ShapeFor(4);
  EXPECT_TRUE(engine.IsVariantReady(key, shape));
  EXPECT_TRUE(fs::exists(cache.dir / native::NativeEngine::VariantFileName(key, shape)));

  const native::NativeEngineStats es = engine.stats();
  EXPECT_EQ(es.shape_builds_started, 1u);
  EXPECT_EQ(es.shape_builds_completed, 1u);
  EXPECT_EQ(es.shape_build_failures, 0u);
  EXPECT_EQ(es.shape_served_launches, 1u);
  EXPECT_EQ(es.served_launches, 2u);

  const vcuda::TierStats ts = ctx.tier_stats();
  EXPECT_EQ(ts.launches_native, 2u);
  EXPECT_EQ(ts.launches_native_shape, 1u);
}

TEST(NativeShape, VariantCacheKeySeparation) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir cache;
  kcc::ModuleCacheKey key;
  const native::ShapeSpec shape4 = ShapeFor(4);
  const native::ShapeSpec shape8 = ShapeFor(8);
  LaunchOutcome ref4, ref8;
  {
    native::NativeEngine::Options nopts;
    nopts.cache_dir = cache.str();
    native::NativeEngine engine(nopts);
    vcuda::Context ctx(vgpu::TeslaC1060());
    ctx.set_native_service(&engine);
    auto mod = ctx.LoadModule(kKernel, OptsFor(3));
    key = kcc::ModuleCacheKey::Make(kKernel, OptsFor(3), ctx.device().name);
    ShapeGuard g(vgpu::ShapeMode::kEager);
    ref4 = RunReduce(ctx, *mod, ExecutionTier::kNative, /*blocks=*/4);
    ref8 = RunReduce(ctx, *mod, ExecutionTier::kNative, /*blocks=*/8);
    EXPECT_TRUE(ref4.exec.native_shape);
    EXPECT_TRUE(ref8.exec.native_shape);
  }
  // Generic and per-shape artifacts occupy distinct content-addressed names,
  // so they can never collide in one cache directory.
  const std::string generic_name = native::NativeEngine::ArtifactFileName(key);
  const std::string name4 = native::NativeEngine::VariantFileName(key, shape4);
  const std::string name8 = native::NativeEngine::VariantFileName(key, shape8);
  EXPECT_NE(generic_name, name4);
  EXPECT_NE(generic_name, name8);
  EXPECT_NE(name4, name8);
  ASSERT_TRUE(fs::exists(cache.dir / generic_name));
  ASSERT_TRUE(fs::exists(cache.dir / name4));
  ASSERT_TRUE(fs::exists(cache.dir / name8));
  // The embedded build keys differ too: a variant envelope can never
  // validate as the generic artifact or as another shape's variant.
  EXPECT_NE(native::NativeEngine::VariantKeyText(key, shape4),
            native::NativeEngine::VariantKeyText(key, shape8));
  EXPECT_NE(native::NativeEngine::VariantKeyText(key, shape4), key.CanonicalText());

  // Corrupt shape4's variant only. A fresh engine must quarantine and rebuild
  // exactly that variant: shape8 and the generic artifact serve from disk.
  const fs::path bad = cache.dir / name4;
  {
    std::fstream f(bad, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(bad) / 2));
    char c = 0;
    f.seekg(f.tellp());
    f.read(&c, 1);
    f.seekp(-1, std::ios::cur);
    c = static_cast<char>(c ^ 0x5a);
    f.write(&c, 1);
  }
  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.str();
  native::NativeEngine engine2(nopts);
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_native_service(&engine2);
  auto mod = ctx.LoadModule(kKernel, OptsFor(3));
  ShapeGuard g(vgpu::ShapeMode::kEager);

  LaunchOutcome warm8 = RunReduce(ctx, *mod, ExecutionTier::kNative, /*blocks=*/8);
  EXPECT_TRUE(warm8.exec.native_shape);
  EXPECT_EQ(engine2.stats().shape_disk_hits, 1u);
  EXPECT_EQ(engine2.stats().corrupt_quarantined, 0u);

  LaunchOutcome rebuilt4 = RunReduce(ctx, *mod, ExecutionTier::kNative, /*blocks=*/4);
  EXPECT_TRUE(rebuilt4.exec.native_shape);
  EXPECT_EQ(engine2.stats().corrupt_quarantined, 1u);
  EXPECT_EQ(engine2.stats().shape_builds_completed, 1u) << "only shape4 may rebuild";
  EXPECT_EQ(engine2.stats().builds_started, 0u) << "the generic artifact was never suspect";
  EXPECT_TRUE(fs::exists(bad)) << "the rebuild must re-publish shape4's artifact";

  EXPECT_TRUE(vgpu::StatsBitIdentical(ref4.stats, rebuilt4.stats));
  EXPECT_TRUE(vgpu::StatsBitIdentical(ref8.stats, warm8.stats));
  EXPECT_EQ(ref4.out, rebuilt4.out);
  EXPECT_EQ(ref8.out, warm8.out);
}

TEST(NativeShape, VariantCapAndLruEviction) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir cache;
  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.str();
  nopts.max_shape_variants = 2;
  native::NativeEngine engine(nopts);
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_native_service(&engine);
  auto mod = ctx.LoadModule(kKernel, OptsFor(3));
  const kcc::ModuleCacheKey key =
      kcc::ModuleCacheKey::Make(kKernel, OptsFor(3), ctx.device().name);
  ShapeGuard g(vgpu::ShapeMode::kEager);

  RunReduce(ctx, *mod, ExecutionTier::kNative, /*blocks=*/2);
  RunReduce(ctx, *mod, ExecutionTier::kNative, /*blocks=*/4);
  EXPECT_TRUE(engine.IsVariantReady(key, ShapeFor(2)));
  EXPECT_TRUE(engine.IsVariantReady(key, ShapeFor(4)));
  EXPECT_EQ(engine.stats().shape_evicted, 0u);

  // A third shape exceeds the cap: the least-recently-served variant (shape 2)
  // is evicted from memory; its disk artifact survives.
  RunReduce(ctx, *mod, ExecutionTier::kNative, /*blocks=*/8);
  EXPECT_EQ(engine.stats().shape_evicted, 1u);
  EXPECT_FALSE(engine.IsVariantReady(key, ShapeFor(2)));
  EXPECT_TRUE(engine.IsVariantReady(key, ShapeFor(4)));
  EXPECT_TRUE(engine.IsVariantReady(key, ShapeFor(8)));
  EXPECT_TRUE(fs::exists(cache.dir / native::NativeEngine::VariantFileName(key, ShapeFor(2))));

  // Relaunching the evicted shape reloads it from disk — no rebuild — and
  // LRU now turns over shape 4.
  const std::uint64_t builds = engine.stats().shape_builds_started;
  LaunchOutcome back2 = RunReduce(ctx, *mod, ExecutionTier::kNative, /*blocks=*/2);
  EXPECT_TRUE(back2.exec.native_shape);
  EXPECT_EQ(engine.stats().shape_builds_started, builds);
  EXPECT_GE(engine.stats().shape_disk_hits, 1u);
  EXPECT_EQ(engine.stats().shape_evicted, 2u);
  EXPECT_TRUE(engine.IsVariantReady(key, ShapeFor(2)));
  EXPECT_FALSE(engine.IsVariantReady(key, ShapeFor(4)));
  EXPECT_TRUE(engine.IsVariantReady(key, ShapeFor(8)));
}

TEST(NativeShape, AutoPromotesHotShapeInBackground) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir cache;
  native::NativeEngine::Options nopts;
  nopts.cache_dir = cache.str();
  nopts.shape_hot_threshold = 2;
  native::NativeEngine engine(nopts);
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_native_service(&engine);
  auto mod = ctx.LoadModule(kKernel, OptsFor(3));
  const kcc::ModuleCacheKey key =
      kcc::ModuleCacheKey::Make(kKernel, OptsFor(3), ctx.device().name);
  ASSERT_TRUE(engine.EnsureReady(key, mod->compiled()));
  ShapeGuard g(vgpu::ShapeMode::kAuto);

  // Below the threshold every launch is served by the generic artifact and
  // nothing builds — kAuto never blocks a launch on a variant compile.
  LaunchOutcome first = RunReduce(ctx, *mod, ExecutionTier::kAuto);
  EXPECT_EQ(first.exec.served, ExecutionTier::kNative);
  EXPECT_FALSE(first.exec.native_shape);
  EXPECT_EQ(engine.stats().shape_builds_started, 0u);

  // The threshold-crossing launch still serves generic but queues the
  // background promotion.
  LaunchOutcome second = RunReduce(ctx, *mod, ExecutionTier::kAuto);
  EXPECT_FALSE(second.exec.native_shape);
  engine.DrainShapeBuilds();
  EXPECT_EQ(engine.stats().shape_builds_completed, 1u);
  EXPECT_TRUE(engine.IsVariantReady(key, ShapeFor(4)));

  LaunchOutcome hot = RunReduce(ctx, *mod, ExecutionTier::kAuto);
  EXPECT_EQ(hot.exec.served, ExecutionTier::kNative);
  EXPECT_TRUE(hot.exec.native_shape);
  EXPECT_TRUE(vgpu::StatsBitIdentical(first.stats, hot.stats));
  EXPECT_EQ(first.out, hot.out);
  EXPECT_EQ(ctx.tier_stats().launches_native_shape, 1u);
  EXPECT_EQ(engine.stats().shape_served_launches, 1u);
}

}  // namespace
}  // namespace kspec
