// Tests for the kcc middle/back end: constant folding, loop unrolling,
// scalarization, strength reduction, DCE/CSE, register accounting, and the
// MiniPTX structure of compiled kernels.
#include <gtest/gtest.h>

#include <set>

#include "kcc/compiler.hpp"
#include "support/status.hpp"
#include "support/str.hpp"
#include "vgpu/isa.hpp"

namespace kspec::kcc {
namespace {

using vgpu::Opcode;

const vgpu::CompiledKernel& CompileOne(CompiledModule& storage, const std::string& src,
                                       const CompileOptions& opts = {}) {
  storage = CompileModule(src, opts);
  KSPEC_CHECK(!storage.kernels.empty());
  return storage.kernels[0];
}

int CountOp(const vgpu::CompiledKernel& k, Opcode op) {
  int n = 0;
  for (const auto& i : k.code) {
    if (i.op == op) ++n;
  }
  return n;
}

bool HasBranches(const vgpu::CompiledKernel& k) {
  return CountOp(k, Opcode::kBra) + CountOp(k, Opcode::kBraPred) > 0;
}

TEST(Unroll, ConstantTripLoopFullyUnrolls) {
  CompiledModule m;
  const auto& k = CompileOne(m, R"(
__kernel void f(float* o) {
  float acc = 0.0f;
  for (int i = 0; i < 8; i++) { acc += (float)i; }
  o[threadIdx.x] = acc;
}
)");
  EXPECT_FALSE(HasBranches(k));
  EXPECT_EQ(k.stats.unrolled_loops, 1);
}

TEST(Unroll, RuntimeBoundStaysRolled) {
  CompiledModule m;
  const auto& k = CompileOne(m, R"(
__kernel void f(float* o, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; i++) { acc += (float)i; }
  o[threadIdx.x] = acc;
}
)");
  EXPECT_TRUE(HasBranches(k));
  EXPECT_EQ(k.stats.unrolled_loops, 0);
}

TEST(Unroll, DefineTurnsRuntimeIntoUnrolled) {
  const char* src = R"(
#ifndef N
#define N n
#endif
__kernel void f(float* o, int n) {
  float acc = 0.0f;
  for (int i = 0; i < N; i++) { acc += (float)i; }
  o[threadIdx.x] = acc;
}
)";
  CompiledModule m1, m2;
  const auto& re = CompileOne(m1, src);
  CompileOptions opts;
  opts.defines["N"] = "6";
  const auto& sk = CompileOne(m2, src, opts);
  EXPECT_TRUE(HasBranches(re));
  EXPECT_FALSE(HasBranches(sk));
}

TEST(Unroll, GeometricReductionLoopUnrolls) {
  CompiledModule m;
  const auto& k = CompileOne(m, R"(
__kernel void f(float* o) {
  float acc = 0.0f;
  for (unsigned int step = 16; step > 0; step = step >> 1) { acc += (float)step; }
  o[0] = acc;
}
)");
  EXPECT_FALSE(HasBranches(k));
  // 16+8+4+2+1 = 31 folds into a single constant store.
  EXPECT_GE(k.stats.folded_consts, 1);
}

TEST(Unroll, NestedLoopsUnrollInsideOut) {
  CompiledModule m;
  const auto& k = CompileOne(m, R"(
__kernel void f(float* o) {
  float acc = 0.0f;
  for (int y = 0; y < 3; y++) {
    for (int x = 0; x < y + 2; x++) { acc += 1.0f; }
  }
  o[0] = acc;
}
)");
  // Inner bound depends on the outer induction variable: both unroll once the
  // outer is expanded.
  EXPECT_FALSE(HasBranches(k));
}

TEST(Unroll, OverBudgetLoopStaysRolled) {
  CompiledModule m;
  CompileOptions opts;
  opts.max_unroll = 16;
  const auto& k = CompileOne(m, R"(
__kernel void f(float* o) {
  float acc = 0.0f;
  for (int i = 0; i < 100; i++) { acc += 1.0f; }
  o[0] = acc;
}
)", opts);
  EXPECT_TRUE(HasBranches(k));
}

TEST(Scalarize, RegisterArrayBecomesRegisters) {
  CompiledModule m;
  const auto& k = CompileOne(m, R"(
__kernel void f(float* o) {
  float acc[4];
  for (int i = 0; i < 4; i++) { acc[i] = (float)i; }
  float total = 0.0f;
  for (int i = 0; i < 4; i++) { total += acc[i]; }
  o[threadIdx.x] = total;
}
)");
  // No local-memory traffic: the only memory op is the final global store.
  EXPECT_EQ(CountOp(k, Opcode::kSt), 1);
  EXPECT_EQ(CountOp(k, Opcode::kLd), 0);
}

TEST(Scalarize, DynamicIndexDiagnosed) {
  try {
    CompiledModule m;
    CompileOne(m, R"(
__kernel void f(float* o, int j) {
  float acc[4];
  acc[j] = 1.0f;
  o[0] = acc[0];
}
)");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("indirectly addressed"), std::string::npos);
  }
}

TEST(Scalarize, OutOfBoundsConstantIndexDiagnosed) {
  CompiledModule m;
  EXPECT_THROW(CompileOne(m, R"(
__kernel void f(float* o) {
  float acc[2];
  acc[5] = 1.0f;
  o[0] = acc[0];
}
)"),
               CompileError);
}

TEST(Passes, StrengthReductionOnSpecializedValues) {
  const char* src = R"(
#ifndef W
#define W w
#endif
__kernel void f(float* o, unsigned int w) {
  unsigned int i = threadIdx.x;
  o[i / W] = (float)(i % W);
}
)";
  CompiledModule m1, m2;
  const auto& re = CompileOne(m1, src);
  CompileOptions opts;
  opts.defines["W"] = "16";  // power of two -> shift/mask
  const auto& sk = CompileOne(m2, src, opts);
  EXPECT_EQ(CountOp(re, Opcode::kDiv) + CountOp(re, Opcode::kRem), 2);
  EXPECT_EQ(CountOp(sk, Opcode::kDiv) + CountOp(sk, Opcode::kRem), 0);
  EXPECT_GE(sk.stats.strength_reduced, 2);

  // A non-power-of-two constant cannot be strength-reduced this way.
  CompiledModule m3;
  opts.defines["W"] = "12";
  const auto& sk12 = CompileOne(m3, src, opts);
  EXPECT_GE(CountOp(sk12, Opcode::kDiv) + CountOp(sk12, Opcode::kRem), 1);
}

TEST(Passes, ConstantBranchElimination) {
  CompiledModule m;
  CompileOptions opts;
  opts.defines["FLAG"] = "0";
  const auto& k = CompileOne(m, R"(
__kernel void f(float* o) {
  if (FLAG) {
    o[0] = 1.0f;
  } else {
    o[0] = 2.0f;
  }
}
)", opts);
  EXPECT_FALSE(HasBranches(k));
  EXPECT_EQ(CountOp(k, Opcode::kSt), 1);
}

TEST(Passes, DeadCodeEliminated) {
  CompiledModule m;
  const auto& k = CompileOne(m, R"(
__kernel void f(float* o) {
  float unused = 3.0f * 4.0f + 1.0f;
  float kept = 2.0f;
  o[0] = kept;
}
)");
  // Everything except the store's operands must be gone.
  EXPECT_LE(k.stats.static_instrs, 3);
}

TEST(Passes, CseDeduplicatesAddressMath) {
  CompiledModule m;
  const auto& k = CompileOne(m, R"(
__kernel void f(float* a, float* b, int i) {
  b[i * 4 + 1] = a[i * 4 + 1] + 1.0f;
}
)");
  // The i*4 computation appears once thanks to local CSE (mul or shl).
  EXPECT_LE(CountOp(k, Opcode::kMul) + CountOp(k, Opcode::kShl), 2);
}

TEST(Regalloc, SpecializationReducesRegisterCount) {
  const char* src = R"(
#ifndef N
#define N n
#endif
#ifndef S
#define S s
#endif
__kernel void f(float* in, float* out, int n, int s) {
  float acc = 0.0f;
  unsigned int base = blockIdx.x * blockDim.x + threadIdx.x;
  for (int i = 0; i < N; i++) { acc += in[base + i * S]; }
  out[base] = acc;
}
)";
  CompiledModule m1, m2;
  const auto& re = CompileOne(m1, src);
  CompileOptions opts;
  opts.defines["N"] = "4";
  opts.defines["S"] = "8";
  const auto& sk = CompileOne(m2, src, opts);
  EXPECT_LT(sk.stats.reg_count, re.stats.reg_count);
}

TEST(Regalloc, RegisterBlockingIncreasesRegisterCount) {
  auto compile_rb = [](int rb) {
    std::string src = Format(R"(
__kernel void f(float* in, float* out) {
  float acc[%d];
  unsigned int t = threadIdx.x;
  for (int k = 0; k < %d; k++) { acc[k] = in[t + (unsigned int)k * 32u]; }
  float total = 0.0f;
  for (int k = 0; k < %d; k++) { total += acc[k] * acc[k]; }
  out[t] = total;
}
)", rb, rb, rb);
    return CompileModule(src, {}).kernels[0].stats.reg_count;
  };
  EXPECT_LT(compile_rb(2), compile_rb(8));
}

TEST(Regalloc, IlpGrowsWithUnrolledIndependentWork) {
  auto avg_ilp = [](const vgpu::CompiledKernel& k) {
    double sum = 0;
    for (float v : k.ilp_at_pc) sum += v;
    return sum / static_cast<double>(k.ilp_at_pc.size());
  };
  CompiledModule m1, m2;
  // Serial dependency chain vs independent accumulators.
  const auto& serial = CompileOne(m1, R"(
__kernel void f(float* o, float x) {
  float a = x;
  a = a * a + 1.0f;
  a = a * a + 1.0f;
  a = a * a + 1.0f;
  a = a * a + 1.0f;
  o[0] = a;
}
)");
  const auto& parallel = CompileOne(m2, R"(
__kernel void f(float* o, float x) {
  float a = x * 2.0f;
  float b = x * 3.0f;
  float c = x * 4.0f;
  float d = x * 5.0f;
  o[0] = a + b + c + d;
}
)");
  EXPECT_GT(avg_ilp(parallel), avg_ilp(serial));
}

TEST(Listing, ContainsEntryAndDefines) {
  CompileOptions opts;
  opts.defines["N"] = "4";
  CompiledModule m = CompileModule(
      "__kernel void k(float* o) { for (int i = 0; i < N; i++) { o[i] = 0.0f; } }", opts);
  const std::string& listing = m.kernels[0].listing;
  EXPECT_NE(listing.find(".entry k"), std::string::npos);
  EXPECT_NE(listing.find("-D N=4"), std::string::npos);
}

TEST(Compiler, MultipleKernelsPerModule) {
  CompiledModule m = CompileModule(R"(
__kernel void a(float* o) { o[0] = 1.0f; }
__kernel void b(float* o) { o[0] = 2.0f; }
)");
  EXPECT_EQ(m.kernels.size(), 2u);
  EXPECT_NE(m.FindKernel("a"), nullptr);
  EXPECT_NE(m.FindKernel("b"), nullptr);
  EXPECT_EQ(m.FindKernel("c"), nullptr);
}

TEST(Compiler, ConstantLayout) {
  CompiledModule m = CompileModule(R"(
__constant float table[8];
__constant double wide[2];
__kernel void k(float* o) { o[0] = table[3] + (float)wide[1]; }
)");
  ASSERT_EQ(m.constants.size(), 2u);
  EXPECT_EQ(m.constants[0].offset, 0u);
  EXPECT_EQ(m.constants[0].bytes, 32u);
  EXPECT_EQ(m.constants[1].offset % 8, 0u);
  EXPECT_EQ(m.const_bytes, m.constants[1].offset + 16u);
}

}  // namespace
}  // namespace kspec::kcc
