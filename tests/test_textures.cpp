// Texture-path tests: tex2D bilinear sampling semantics, tex1Dfetch, binding
// diagnostics, the texture-cache cost accounting, and the texture variant of
// the backprojection application.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/backproj/cpu_ref.hpp"
#include "apps/backproj/gpu.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec {
namespace {

using vcuda::ArgPack;
using vcuda::Context;
using vgpu::Dim3;

constexpr const char* kSampleKernel = R"(
__texture float img;

__kernel void sample(float* xs, float* ys, float* out, int n) {
  int i = (int)threadIdx.x;
  if (i < n) {
    out[i] = tex2D(img, xs[i], ys[i]);
  }
}
)";

TEST(Texture, BilinearSamplingMatchesManual) {
  Context ctx(vgpu::TeslaC2070());
  auto mod = ctx.LoadModule(kSampleKernel, {});

  // A 4x3 texture with known values.
  const int w = 4, h = 3;
  std::vector<float> tex(w * h);
  for (int i = 0; i < w * h; ++i) tex[i] = static_cast<float>(i * i % 7) + 0.5f;
  auto d_tex = vcuda::Upload<float>(ctx, std::span<const float>(tex));
  mod->BindTexture("img", d_tex, w, h);

  std::vector<float> xs = {0.0f, 1.5f, 2.25f, 0.75f, 3.0f, -1.0f, 10.0f};
  std::vector<float> ys = {0.0f, 0.5f, 1.75f, 2.0f, 2.0f, -2.0f, 10.0f};
  const int n = static_cast<int>(xs.size());
  auto d_xs = vcuda::Upload<float>(ctx, std::span<const float>(xs));
  auto d_ys = vcuda::Upload<float>(ctx, std::span<const float>(ys));
  auto d_out = ctx.Malloc(n * 4);

  ArgPack args;
  args.Ptr(d_xs).Ptr(d_ys).Ptr(d_out).Int(n);
  auto stats = ctx.Launch(*mod, "sample", Dim3(1), Dim3(32), args);
  EXPECT_GT(stats.texture_fetches, 0u);
  auto out = vcuda::Download<float>(ctx, d_out, n);

  auto fetch = [&](int x, int y) {
    x = std::clamp(x, 0, w - 1);
    y = std::clamp(y, 0, h - 1);
    return tex[y * w + x];
  };
  for (int i = 0; i < n; ++i) {
    float fx = xs[i], fy = ys[i];
    int x0 = static_cast<int>(std::floor(fx));
    int y0 = static_cast<int>(std::floor(fy));
    float ax = fx - x0, ay = fy - y0;
    float top = fetch(x0, y0) + ax * (fetch(x0 + 1, y0) - fetch(x0, y0));
    float bot = fetch(x0, y0 + 1) + ax * (fetch(x0 + 1, y0 + 1) - fetch(x0, y0 + 1));
    float expect = top + ay * (bot - top);
    EXPECT_NEAR(out[i], expect, 1e-5f) << "sample " << i << " (" << fx << "," << fy << ")";
  }
}

TEST(Texture, Tex1DFetch) {
  Context ctx(vgpu::TeslaC1060());
  const char* src = R"(
__texture float buf;

__kernel void gather(int* idx, float* out) {
  int i = (int)threadIdx.x;
  out[i] = tex1Dfetch(buf, idx[i]);
}
)";
  auto mod = ctx.LoadModule(src, {});
  std::vector<float> data = {10.f, 20.f, 30.f, 40.f};
  auto d_data = vcuda::Upload<float>(ctx, std::span<const float>(data));
  mod->BindTexture("buf", d_data, 4, 1);
  std::vector<int> idx = {3, 0, 2, 1};
  auto d_idx = vcuda::Upload<int>(ctx, std::span<const int>(idx));
  auto d_out = ctx.Malloc(4 * 4);
  ArgPack args;
  args.Ptr(d_idx).Ptr(d_out);
  ctx.Launch(*mod, "gather", Dim3(1), Dim3(4), args);
  auto out = vcuda::Download<float>(ctx, d_out, 4);
  EXPECT_FLOAT_EQ(out[0], 40.f);
  EXPECT_FLOAT_EQ(out[1], 10.f);
  EXPECT_FLOAT_EQ(out[2], 30.f);
  EXPECT_FLOAT_EQ(out[3], 20.f);
}

TEST(Texture, UnboundTextureDiagnosed) {
  Context ctx(vgpu::TeslaC1060());
  auto mod = ctx.LoadModule(kSampleKernel, {});
  auto d = ctx.Malloc(64);
  ArgPack args;
  args.Ptr(d).Ptr(d).Ptr(d).Int(1);
  EXPECT_THROW(ctx.Launch(*mod, "sample", Dim3(1), Dim3(32), args), DeviceError);
}

TEST(Texture, BindDiagnostics) {
  Context ctx(vgpu::TeslaC1060());
  auto mod = ctx.LoadModule(kSampleKernel, {});
  auto d = ctx.Malloc(64);
  EXPECT_THROW(mod->BindTexture("nosuch", d, 4, 4), DeviceError);
  EXPECT_THROW(mod->BindTexture("img", d, 0, 4), DeviceError);
  EXPECT_NO_THROW(mod->BindTexture("img", d, 4, 4));
}

TEST(Texture, MisuseDiagnosedAtCompileTime) {
  Context ctx(vgpu::TeslaC1060());
  // A texture used as a plain variable.
  EXPECT_THROW(ctx.LoadModule(R"(
__texture float t;
__kernel void f(float* o) { o[0] = t; }
)", {}),
               CompileError);
  // tex2D on a non-texture.
  EXPECT_THROW(ctx.LoadModule(R"(
__kernel void f(float* o, float x) { o[0] = tex2D(x, 1.0f, 1.0f); }
)", {}),
               CompileError);
}

TEST(BackprojTexture, MatchesCpuReference) {
  apps::backproj::Geometry g;
  g.vol_n = 12;
  g.vol_z = 8;
  g.det_u = 24;
  g.det_v = 16;
  g.n_angles = 8;
  apps::backproj::Problem p = apps::backproj::Generate("tex", g, 2, 66);
  apps::backproj::CpuResult cpu = apps::backproj::CpuBackproject(p, 1);

  Context ctx(vgpu::TeslaC2070());
  apps::backproj::BackprojConfig cfg;
  cfg.threads = 32;
  cfg.zpt = 2;
  cfg.specialize = true;
  cfg.use_texture = true;
  auto gpu = GpuBackproject(ctx, p, cfg);
  EXPECT_GT(gpu.stats.texture_fetches, 0u);

  // The texture path clamps float coordinates rather than integer texel
  // indices, so border voxels can differ slightly; interior voxels must be
  // near-identical and the global structure preserved.
  ASSERT_EQ(cpu.volume.size(), gpu.volume.size());
  double max_rel = 0;
  for (std::size_t i = 0; i < cpu.volume.size(); ++i) {
    double denom = 1.0 + std::abs(cpu.volume[i]);
    max_rel = std::max(max_rel, std::abs(cpu.volume[i] - gpu.volume[i]) / denom);
  }
  EXPECT_LT(max_rel, 0.02);
}

TEST(BackprojTexture, TextureVariantUsesFewerMemoryCycles) {
  apps::backproj::Problem p = apps::backproj::BenchmarkSets()[0];
  Context ctx(vgpu::TeslaC1060());
  apps::backproj::BackprojConfig manual;
  manual.threads = 64;
  manual.zpt = 2;
  manual.specialize = true;
  apps::backproj::BackprojConfig tex = manual;
  tex.use_texture = true;
  auto rm = GpuBackproject(ctx, p, manual);
  auto rt = GpuBackproject(ctx, p, tex);
  // The texture cache model charges less memory-pipe time than four
  // uncoalesced global loads per sample.
  EXPECT_LT(rt.stats.memory_cycles, rm.stats.memory_cycles);
}

}  // namespace
}  // namespace kspec
