// Row-filter (OpenCV case study) tests: all border modes, element types,
// filter sizes, RE/SK equivalence, and the specialization-vs-AOT-variant
// behaviors the dissertation discusses in Sections 2.6/4.2.
#include <gtest/gtest.h>

#include "apps/rowfilter/rowfilter.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec::apps::rowfilter {
namespace {

void ExpectClose(const std::vector<float>& a, const std::vector<float>& b, float tol = 1e-4f) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol * (1.0f + std::abs(a[i]))) << "pixel " << i;
  }
}

TEST(RowFilterCpu, BoxFilterPreservesConstantImage) {
  Image img;
  img.w = 16;
  img.h = 4;
  img.data.assign(64, 5.0f);
  auto out = CpuRowFilter(img, BoxFilter(5));
  for (float v : out) EXPECT_NEAR(v, 5.0f, 1e-5f);
}

TEST(RowFilterCpu, BinomialTapsNormalized) {
  for (int k : {1, 3, 5, 9}) {
    FilterSpec spec = BinomialFilter(k);
    float sum = 0;
    for (float t : spec.taps) sum += t;
    EXPECT_NEAR(sum, 1.0f, 1e-6f) << k;
  }
}

class BorderModeTest : public ::testing::TestWithParam<Border> {};

TEST_P(BorderModeTest, GpuMatchesCpuSpecialized) {
  Border border = GetParam();
  Image img = MakeTestImage(40, 6, 11);
  FilterSpec spec = BinomialFilter(7, border);
  auto cpu = CpuRowFilter(img, spec);
  vcuda::Context ctx(vgpu::TeslaC2070());
  RowFilterConfig cfg;
  cfg.specialize = true;
  auto gpu = GpuRowFilter(ctx, img, spec, cfg);
  ExpectClose(gpu.out, cpu);
}

TEST_P(BorderModeTest, GpuMatchesCpuRunTimeEvaluated) {
  Border border = GetParam();
  Image img = MakeTestImage(40, 6, 12);
  FilterSpec spec = BoxFilter(5, border);
  auto cpu = CpuRowFilter(img, spec);
  vcuda::Context ctx(vgpu::TeslaC1060());
  RowFilterConfig cfg;
  cfg.specialize = false;
  auto gpu = GpuRowFilter(ctx, img, spec, cfg);
  ExpectClose(gpu.out, cpu);
}

INSTANTIATE_TEST_SUITE_P(AllBorders, BorderModeTest,
                         ::testing::Values(Border::kClamp, Border::kReflect, Border::kWrap),
                         [](const auto& info) { return BorderName(info.param); });

class KsizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(KsizeSweep, SpecializedCorrectAcrossSizes) {
  int ksize = GetParam();
  Image img = MakeTestImage(32, 4, 21);
  FilterSpec spec = BoxFilter(ksize, Border::kReflect);
  auto cpu = CpuRowFilter(img, spec);
  vcuda::Context ctx(vgpu::TeslaC2070());
  RowFilterConfig cfg;
  cfg.specialize = true;
  auto gpu = GpuRowFilter(ctx, img, spec, cfg);
  ExpectClose(gpu.out, cpu);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KsizeSweep, ::testing::Values(1, 2, 3, 7, 15, 31, 32));

TEST(RowFilter, IntElementTypeViaTypeSpecialization) {
  Image img = MakeTestImage(24, 4, 5);
  FilterSpec spec = BoxFilter(3);
  spec.elem = ElemType::kInt;
  auto cpu = CpuRowFilter(img, spec);
  vcuda::Context ctx(vgpu::TeslaC2070());
  RowFilterConfig cfg;
  cfg.specialize = true;
  auto gpu = GpuRowFilter(ctx, img, spec, cfg);
  ExpectClose(gpu.out, cpu);

  // The RE fallback covers only the default type (OpenCV needs a
  // pre-compiled variant for each).
  cfg.specialize = false;
  EXPECT_THROW(GpuRowFilter(ctx, img, spec, cfg), DeviceError);
}

TEST(RowFilter, SpecializedRemovesBranchesAndWins) {
  Image img = MakeTestImage(64, 8, 31);
  FilterSpec spec = BinomialFilter(9, Border::kClamp);
  auto cpu = CpuRowFilter(img, spec);
  vcuda::Context ctx(vgpu::TeslaC1060());
  RowFilterConfig cfg;
  cfg.specialize = false;
  auto re = GpuRowFilter(ctx, img, spec, cfg);
  cfg.specialize = true;
  auto sk = GpuRowFilter(ctx, img, spec, cfg);
  ExpectClose(re.out, cpu);
  ExpectClose(sk.out, cpu);
  EXPECT_LT(sk.stats.warp_instrs, re.stats.warp_instrs);
  EXPECT_LT(sk.sim_millis, re.sim_millis);
}

TEST(RowFilter, OversizedFilterHitsConstantCeiling) {
  Image img = MakeTestImage(16, 2, 1);
  FilterSpec spec;
  spec.taps.assign(33, 1.0f / 33.0f);
  vcuda::Context ctx(vgpu::TeslaC2070());
  EXPECT_THROW(GpuRowFilter(ctx, img, spec, {}), Error);
}

TEST(RowFilter, EveryCombinationIsOneCachedModule) {
  // 3 sizes x 3 borders x 2 types = 18 on-demand compiles, vs the 192-variant
  // ahead-of-time matrix (kAotVariantCount).
  Image img = MakeTestImage(16, 2, 9);
  vcuda::Context ctx(vgpu::TeslaC2070());
  RowFilterConfig cfg;
  cfg.threads = 32;
  int combos = 0;
  for (int ksize : {3, 5, 7}) {
    for (Border b : {Border::kClamp, Border::kReflect, Border::kWrap}) {
      for (ElemType t : {ElemType::kFloat, ElemType::kInt}) {
        FilterSpec spec = BoxFilter(ksize, b);
        spec.elem = t;
        auto gpu = GpuRowFilter(ctx, img, spec, cfg);
        auto cpu = CpuRowFilter(img, spec);
        ExpectClose(gpu.out, cpu);
        ++combos;
      }
    }
  }
  EXPECT_EQ(ctx.cache_stats().misses, static_cast<std::size_t>(combos));
  EXPECT_LT(combos, kAotVariantCount);
}

}  // namespace
}  // namespace kspec::apps::rowfilter
