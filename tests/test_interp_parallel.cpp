// Parallel execution engine tests (DESIGN.md section 8): the determinism
// contract (bit-identical outputs and LaunchStats for any worker count),
// exact cross-block atomic reductions under the worker pool, error
// propagation out of worker threads, and the dynamic-instruction-weighted
// LaunchStats fold.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include "apps/backproj/gpu.hpp"
#include "apps/matching/gpu.hpp"
#include "apps/piv/gpu.hpp"
#include "apps/rowfilter/rowfilter.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/cost.hpp"
#include "vgpu/interp.hpp"
#include "vgpu/launch.hpp"

namespace kspec::vgpu {
namespace {

// Scoped process-wide execution-policy override (wins over LaunchConfig and
// the VGPU_WORKERS environment variable). Restores the default on exit.
class ScopedPolicy {
 public:
  explicit ScopedPolicy(ExecMode mode, unsigned workers) : policy_{mode, workers} {
    SetExecPolicyOverride(&policy_);
  }
  ~ScopedPolicy() { SetExecPolicyOverride(nullptr); }
  ScopedPolicy(const ScopedPolicy&) = delete;
  ScopedPolicy& operator=(const ScopedPolicy&) = delete;

 private:
  ExecPolicy policy_;
};

// ---------------------------------------------------------------------------
// FoldBlockStats: the dynamic-instruction-weighted average
// ---------------------------------------------------------------------------

TEST(FoldStats, AvgIlpIsDynamicInstructionWeighted) {
  // Chunk A: 100 issues at average ILP 4.0; chunk B: 300 issues at 1.0.
  // Weighted: (400 + 300) / 400 = 1.75. A mean of the per-chunk averages
  // would report 2.5 — wrong by 43%.
  BlockStats a, b;
  a.warp_instrs = 100;
  a.ilp_sum = 400.0;
  b.warp_instrs = 300;
  b.ilp_sum = 300.0;
  const BlockStats parts[] = {a, b};
  LaunchStats out;
  FoldBlockStats(parts, out);
  EXPECT_EQ(out.warp_instrs, 400u);
  EXPECT_DOUBLE_EQ(out.avg_ilp, 1.75);
}

TEST(FoldStats, FoldIsOrderSensitiveButChunkOrderIsFixed) {
  // The fold accumulates doubles in chunk-index order; callers guarantee the
  // chunk decomposition depends only on the grid, so this is deterministic.
  BlockStats a, b;
  a.warp_instrs = 1;
  a.issue_cycles = 1e16;
  a.ilp_sum = 1.0;
  b.warp_instrs = 1;
  b.issue_cycles = 1.0;
  b.ilp_sum = 1.0;
  const BlockStats ab[] = {a, b};
  LaunchStats s1, s2;
  FoldBlockStats(ab, s1);
  FoldBlockStats(ab, s2);
  EXPECT_TRUE(StatsBitIdentical(s1, s2));
}

TEST(FoldStats, EmptyIlpLeavesDefaultUntouched) {
  BlockStats a;
  a.warp_instrs = 0;
  a.ilp_sum = 0.0;
  const BlockStats parts[] = {a};
  LaunchStats out;
  const double before = out.avg_ilp;
  FoldBlockStats(parts, out);
  EXPECT_DOUBLE_EQ(out.avg_ilp, before);
}

// ---------------------------------------------------------------------------
// Determinism contract across the four applications
// ---------------------------------------------------------------------------

struct AppRun {
  std::vector<unsigned char> output;
  LaunchStats stats;
  double sim_millis = 0;
};

template <typename T>
std::vector<unsigned char> Bytes(const std::vector<T>& v) {
  std::vector<unsigned char> out(v.size() * sizeof(T));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

// Runs `run` serially and with 2/4/8 workers; outputs must be byte-equal and
// LaunchStats bit-identical in every mode.
void CheckDeterminism(const char* app, const std::function<AppRun()>& run) {
  AppRun ref;
  {
    ScopedPolicy serial(ExecMode::kSerial, 1);
    ref = run();
  }
  for (unsigned workers : {2u, 4u, 8u}) {
    ScopedPolicy par(ExecMode::kParallel, workers);
    const AppRun got = run();
    EXPECT_EQ(got.output, ref.output) << app << " output differs with " << workers
                                      << " workers";
    EXPECT_TRUE(StatsBitIdentical(got.stats, ref.stats))
        << app << " LaunchStats differ with " << workers << " workers:\n"
        << got.stats.ToString() << "\nvs serial:\n"
        << ref.stats.ToString();
    EXPECT_EQ(got.sim_millis, ref.sim_millis) << app;
  }
}

TEST(ParallelDeterminism, Piv) {
  const apps::piv::Problem p = apps::piv::Generate("det", 96, 16, 4, 12, 3);
  CheckDeterminism("piv", [&] {
    vcuda::Context ctx(TeslaC2070());
    apps::piv::PivConfig cfg;
    cfg.variant = apps::piv::Variant::kWarpSpec;
    cfg.threads = 64;
    apps::piv::PivGpuResult r = GpuPiv(ctx, p, cfg);
    AppRun out;
    out.output = Bytes(r.field.best_offset);
    auto scores = Bytes(r.field.best_score);
    out.output.insert(out.output.end(), scores.begin(), scores.end());
    out.stats = r.stats;
    out.sim_millis = r.stats.sim_millis;
    return out;
  });
}

TEST(ParallelDeterminism, Rowfilter) {
  const apps::rowfilter::Image img = apps::rowfilter::MakeTestImage(256, 96, 5);
  CheckDeterminism("rowfilter", [&] {
    vcuda::Context ctx(TeslaC2070());
    apps::rowfilter::RowFilterConfig cfg;
    apps::rowfilter::RowFilterResult r =
        GpuRowFilter(ctx, img, apps::rowfilter::BoxFilter(7), cfg);
    AppRun out;
    out.output = Bytes(r.out);
    out.stats = r.stats;
    out.sim_millis = r.sim_millis;
    return out;
  });
}

TEST(ParallelDeterminism, Matching) {
  const apps::matching::Problem p = apps::matching::PatientSets().front();
  CheckDeterminism("matching", [&] {
    vcuda::Context ctx(TeslaC2070());
    apps::matching::MatcherConfig cfg;
    apps::matching::MatchResult r = GpuMatch(ctx, p, cfg);
    AppRun out;
    out.output = Bytes(r.scores);
    out.stats = r.breakdown.stages.back().launch;
    out.sim_millis = r.sim_millis;
    return out;
  });
}

TEST(ParallelDeterminism, Backproj) {
  const apps::backproj::Problem p = apps::backproj::BenchmarkSets().front();
  CheckDeterminism("backproj", [&] {
    vcuda::Context ctx(TeslaC2070());
    apps::backproj::BackprojConfig cfg;
    apps::backproj::BackprojGpuResult r = GpuBackproject(ctx, p, cfg);
    AppRun out;
    out.output = Bytes(r.volume);
    out.stats = r.stats;
    out.sim_millis = r.sim_millis;
    return out;
  });
}

// ---------------------------------------------------------------------------
// Cross-block atomics under the worker pool
// ---------------------------------------------------------------------------

// 64 blocks x 128 threads hammer a 16-bin histogram through global atomicAdd
// while every worker thread streams through the same arena. Integer atomic
// addition is associative and commutative, so the totals must be *exact*
// regardless of interleaving — and TSan must see no data race on the bins.
TEST(ParallelAtomics, CrossBlockHistogramSumsExactly) {
  const char* src = R"(
__kernel void hist(int* bins, int* total) {
  unsigned int gid = blockIdx.x * 128u + threadIdx.x;
  unsigned int bin = (gid * 2654435761u) % 16u;
  atomicAdd(bins + bin, 1);
  atomicAdd(total, 1);
}
)";
  ScopedPolicy par(ExecMode::kParallel, 8);
  vcuda::Context ctx(TeslaC1060());
  auto mod = ctx.LoadModule(src, {});
  DevPtr bins = ctx.Malloc(16 * 4);
  DevPtr total = ctx.Malloc(4);
  ctx.Memset(bins, 0, 16 * 4);
  ctx.Memset(total, 0, 4);
  vcuda::ArgPack args;
  args.Ptr(bins).Ptr(total);
  ctx.Launch(*mod, "hist", Dim3(64), Dim3(128), args);

  std::vector<int> h = vcuda::Download<int>(ctx, bins, 16);
  std::vector<int> expect(16, 0);
  for (unsigned gid = 0; gid < 64 * 128; ++gid) expect[(gid * 2654435761u) % 16u]++;
  EXPECT_EQ(h, expect);
  EXPECT_EQ(vcuda::Download<int>(ctx, total, 1)[0], 64 * 128);
}

// ---------------------------------------------------------------------------
// Errors cross the worker-thread boundary as DeviceError
// ---------------------------------------------------------------------------

TEST(ParallelErrors, DivergentBarrierPropagatesFromWorkers) {
  const char* src = R"(
__kernel void f(float* o) {
  __shared float s[32];
  unsigned int t = threadIdx.x;
  if (t < 16u) {
    s[t] = 1.0f;
    __syncthreads();
  }
  o[t] = 0.0f;
}
)";
  ScopedPolicy par(ExecMode::kParallel, 8);
  vcuda::Context ctx(TeslaC1060());
  auto mod = ctx.LoadModule(src, {});
  vcuda::ArgPack args;
  args.Ptr(ctx.Malloc(32 * 4));
  EXPECT_THROW(ctx.Launch(*mod, "f", Dim3(16), Dim3(32), args), DeviceError);
}

TEST(ParallelErrors, OutOfBoundsStorePropagatesFromWorkers) {
  const char* src = R"(
__kernel void f(float* o) {
  o[1000000u + blockIdx.x] = 1.0f;
}
)";
  ScopedPolicy par(ExecMode::kParallel, 8);
  vcuda::Context ctx(TeslaC1060());
  auto mod = ctx.LoadModule(src, {});
  vcuda::ArgPack args;
  args.Ptr(ctx.Malloc(64));
  EXPECT_THROW(ctx.Launch(*mod, "f", Dim3(32), Dim3(32), args), DeviceError);
}

// A launch after a worker-thread failure must still work: the pool drains
// cleanly and the next launch succeeds.
TEST(ParallelErrors, PoolSurvivesFailedLaunch) {
  const char* bad = R"(
__kernel void f(float* o) { o[1000000] = 1.0f; }
)";
  const char* good = R"(
__kernel void g(float* o) {
  o[blockIdx.x * 32u + threadIdx.x] = 2.0f;
}
)";
  ScopedPolicy par(ExecMode::kParallel, 8);
  vcuda::Context ctx(TeslaC1060());
  auto bad_mod = ctx.LoadModule(bad, {});
  auto good_mod = ctx.LoadModule(good, {});
  DevPtr p = ctx.Malloc(8 * 32 * 4);
  {
    vcuda::ArgPack args;
    args.Ptr(p);
    EXPECT_THROW(ctx.Launch(*bad_mod, "f", Dim3(8), Dim3(32), args), DeviceError);
  }
  vcuda::ArgPack args;
  args.Ptr(p);
  ctx.Launch(*good_mod, "g", Dim3(8), Dim3(32), args);
  std::vector<float> out = vcuda::Download<float>(ctx, p, 8 * 32);
  for (float v : out) EXPECT_FLOAT_EQ(v, 2.0f);
}

// ---------------------------------------------------------------------------
// Peak-allocation accounting stays consistent under concurrency
// ---------------------------------------------------------------------------

TEST(Memory, PeakBytesInUseTracksHighWaterMark) {
  GlobalMemory mem(1 << 20);
  EXPECT_EQ(mem.peak_bytes_in_use(), 0u);
  DevPtr a = mem.Alloc(1000);
  DevPtr b = mem.Alloc(2000);
  mem.Free(a);
  mem.Free(b);
  // Peak counts both live allocations (sizes may be alignment-padded).
  EXPECT_GE(mem.peak_bytes_in_use(), 3000u);
  mem.Alloc(100);
  EXPECT_GE(mem.peak_bytes_in_use(), 3000u);  // high-water mark never drops
}

}  // namespace
}  // namespace kspec::vgpu
