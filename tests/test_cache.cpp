// Specialization-cache behavior: hit/miss/collision accounting, the
// collision-safe full-key verification, persistent disk artifacts (round-trip
// equality, corrupt-file and version-bump fallback), LRU eviction, concurrent
// loads, and tiered-loader keying over the full option set.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "kcc/cache_key.hpp"
#include "kcc/serialize.hpp"
#include "support/serialize.hpp"
#include "support/temp_dir.hpp"
#include "vcuda/module_cache.hpp"
#include "vcuda/tiered.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec {
namespace {

namespace fs = std::filesystem;

constexpr const char* kKernel = R"(
#ifndef N
#define N n
#endif
__kernel void f(float* out, int n) {
  float acc = 0.0f;
  for (int i = 0; i < N; i++) { acc += 1.0f; }
  out[threadIdx.x] = acc;
}
)";

kcc::CompileOptions OptsFor(int n) {
  kcc::CompileOptions opts;
  opts.defines["N"] = std::to_string(n);
  return opts;
}

float RunOnce(vcuda::Context& ctx, vcuda::Module& mod, int n) {
  auto d_out = ctx.Malloc(32 * 4);
  vcuda::ArgPack args;
  args.Ptr(d_out).Int(n);
  ctx.Launch(mod, "f", vgpu::Dim3(1), vgpu::Dim3(32), args);
  float v = vcuda::Download<float>(ctx, d_out, 1)[0];
  ctx.Free(d_out);
  return v;
}

// A scratch cache directory, fresh per test, removed on destruction.
struct TempCacheDir {
  TempCacheDir() : owner("kspec_cache_test_"), dir(owner.path()) {
    EXPECT_TRUE(owner.valid());
  }
  std::string str() const { return owner.path(); }
  ScopedTempDir owner;
  fs::path dir;
};

fs::path OnlyArtifact(const fs::path& dir) {
  fs::path found;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".kmod") {
      EXPECT_TRUE(found.empty()) << "expected exactly one artifact";
      found = e.path();
    }
  }
  EXPECT_FALSE(found.empty()) << "no .kmod artifact in " << dir;
  return found;
}

TEST(ModuleCacheKey, CoversEveryField) {
  kcc::CompileOptions opts = OptsFor(4);
  kcc::ModuleCacheKey base = kcc::ModuleCacheKey::Make(kKernel, opts, "VC1060");

  auto differs = [&](const kcc::ModuleCacheKey& other) {
    EXPECT_FALSE(base == other);
    EXPECT_NE(base.CanonicalText(), other.CanonicalText());
  };

  differs(kcc::ModuleCacheKey::Make(std::string(kKernel) + " ", opts, "VC1060"));
  differs(kcc::ModuleCacheKey::Make(kKernel, OptsFor(5), "VC1060"));
  differs(kcc::ModuleCacheKey::Make(kKernel, opts, "VC2070"));
  kcc::CompileOptions tweaked = opts;
  tweaked.max_unroll = 7;
  differs(kcc::ModuleCacheKey::Make(kKernel, tweaked, "VC1060"));
  tweaked = opts;
  tweaked.optimize = false;
  differs(kcc::ModuleCacheKey::Make(kKernel, tweaked, "VC1060"));
  tweaked = opts;
  tweaked.enable_unroll = false;
  differs(kcc::ModuleCacheKey::Make(kKernel, tweaked, "VC1060"));
  tweaked = opts;
  tweaked.enable_strength_reduction = false;
  differs(kcc::ModuleCacheKey::Make(kKernel, tweaked, "VC1060"));
  tweaked = opts;
  tweaked.enable_cse = false;
  differs(kcc::ModuleCacheKey::Make(kKernel, tweaked, "VC1060"));

  EXPECT_EQ(base, kcc::ModuleCacheKey::Make(kKernel, OptsFor(4), "VC1060"));
  EXPECT_EQ(base.Hash(), kcc::ModuleCacheKey::Make(kKernel, OptsFor(4), "VC1060").Hash());
  // Defines must not smear together: {AB:C} vs {A:BC}.
  kcc::CompileOptions ab, a_bc;
  ab.defines["AB"] = "C";
  a_bc.defines["A"] = "BC";
  EXPECT_NE(kcc::ModuleCacheKey::Make(kKernel, ab, "VC1060").CanonicalText(),
            kcc::ModuleCacheKey::Make(kKernel, a_bc, "VC1060").CanonicalText());
}

TEST(CacheStats, HitMissAccounting) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  auto m1 = ctx.LoadModule(kKernel, OptsFor(4));
  auto m2 = ctx.LoadModule(kKernel, OptsFor(4));
  auto m3 = ctx.LoadModule(kKernel, OptsFor(8));
  auto stats = ctx.cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.disk_hits, 0u);
  EXPECT_EQ(stats.collisions_detected, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_GT(stats.bytes_cached, 0u);
  EXPECT_GT(stats.compile_millis_total, 0.0);
}

// The compile_millis regression: a module without kernels must still account
// its compile time (the old code read kernels.front() and dropped it).
TEST(CacheStats, KernellessModuleCompileTimeCounted) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  auto mod = ctx.LoadModule("__constant float lut[4];\n", {});
  EXPECT_TRUE(mod->compiled().kernels.empty());
  EXPECT_GT(mod->compiled().compile_millis, 0.0);
  EXPECT_GT(ctx.cache_stats().compile_millis_total, 0.0);
}

// Two different keys forged onto the same hash must never alias: the cache
// verifies the full key, reports the wrong-key probe as a miss, and counts
// the collision. (FNV-1a collisions can't be produced on demand, so the test
// drives ModuleCache directly with a forged bucket hash.)
TEST(ModuleCache, HashCollisionNeverServesWrongModule) {
  auto mod_a = std::make_shared<const kcc::CompiledModule>(
      kcc::CompileModule("__kernel void a(float* o) { o[0] = 1.0f; }"));
  auto mod_b = std::make_shared<const kcc::CompiledModule>(
      kcc::CompileModule("__kernel void b(float* o) { o[0] = 2.0f; }"));
  kcc::ModuleCacheKey key_a = kcc::ModuleCacheKey::Make("src_a", {}, "VC1060");
  kcc::ModuleCacheKey key_b = kcc::ModuleCacheKey::Make("src_b", {}, "VC1060");
  ASSERT_FALSE(key_a == key_b);

  const std::uint64_t forged_hash = 42;
  vcuda::ModuleCache cache;
  cache.Put(forged_hash, key_a, mod_a);

  // Before the fix this lookup returned mod_a — the wrong specialization.
  EXPECT_EQ(cache.Get(forged_hash, key_b), nullptr);
  EXPECT_EQ(cache.collisions_detected(), 1u);

  // Both keys coexist in one bucket, each serving its own module.
  cache.Put(forged_hash, key_b, mod_b);
  ASSERT_NE(cache.Get(forged_hash, key_a), nullptr);
  ASSERT_NE(cache.Get(forged_hash, key_b), nullptr);
  EXPECT_TRUE(cache.Get(forged_hash, key_a)->FindKernel("a"));
  EXPECT_TRUE(cache.Get(forged_hash, key_b)->FindKernel("b"));
  EXPECT_EQ(cache.entry_count(), 2u);
}

TEST(ModuleCache, PutReturnsExistingOnCompileRace) {
  auto first = std::make_shared<const kcc::CompiledModule>(
      kcc::CompileModule("__kernel void a(float* o) { o[0] = 1.0f; }"));
  auto second = std::make_shared<const kcc::CompiledModule>(*first);
  kcc::ModuleCacheKey key = kcc::ModuleCacheKey::Make("src", {}, "VC1060");
  vcuda::ModuleCache cache;
  EXPECT_EQ(cache.Put(key.Hash(), key, first), first);
  EXPECT_EQ(cache.Put(key.Hash(), key, second), first);  // winner kept
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(ModuleCache, LruEvictionRespectsByteBudget) {
  vcuda::ModuleCache cache;
  std::vector<kcc::ModuleCacheKey> keys;
  std::size_t per_module = 0;
  for (int n = 1; n <= 3; ++n) {
    auto mod = std::make_shared<const kcc::CompiledModule>(
        kcc::CompileModule(kKernel, OptsFor(n)));
    per_module = kcc::ApproxModuleBytes(*mod);
    keys.push_back(kcc::ModuleCacheKey::Make(kKernel, OptsFor(n), "VC1060"));
    cache.Put(keys.back().Hash(), keys.back(), mod);
  }
  ASSERT_EQ(cache.entry_count(), 3u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Budget for ~2 modules: the least recently used (n=1) goes first.
  cache.set_byte_budget(per_module * 2 + per_module / 2);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_LE(cache.bytes_cached(), cache.byte_budget());
  EXPECT_EQ(cache.Get(keys[0].Hash(), keys[0]), nullptr);
  EXPECT_NE(cache.Get(keys[1].Hash(), keys[1]), nullptr);
  EXPECT_NE(cache.Get(keys[2].Hash(), keys[2]), nullptr);

  // Even a budget below one module keeps the most recently used entry
  // (keys[2], bumped by the probe above).
  cache.set_byte_budget(1);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_NE(cache.Get(keys[2].Hash(), keys[2]), nullptr);
}

TEST(Serialize, RoundTripPreservesEverything) {
  const char* src = R"(
__constant float coeffs[4];
__texture float tex;
__kernel void f(float* out, int n) {
  __shared float tile[32];
  int i = blockIdx.x * 32 + threadIdx.x;
  tile[threadIdx.x] = coeffs[threadIdx.x & 3];
  __syncthreads();
  if (i < n) { out[i] = tile[0] + tex2D(tex, 0.5f, 0.5f); }
}
)";
  kcc::CompiledModule mod = kcc::CompileModule(src, OptsFor(16));
  std::string key_text = kcc::ModuleCacheKey::Make(src, OptsFor(16), "VC1060").CanonicalText();

  std::vector<std::uint8_t> bytes = kcc::Serialize(mod, key_text);
  std::string stored_key;
  kcc::CompiledModule back = kcc::Deserialize(bytes, &stored_key);

  EXPECT_EQ(stored_key, key_text);
  EXPECT_EQ(back.const_bytes, mod.const_bytes);
  EXPECT_EQ(back.compile_millis, mod.compile_millis);
  ASSERT_EQ(back.textures, mod.textures);
  ASSERT_EQ(back.constants.size(), mod.constants.size());
  for (std::size_t i = 0; i < mod.constants.size(); ++i) {
    EXPECT_EQ(back.constants[i].name, mod.constants[i].name);
    EXPECT_EQ(back.constants[i].elem, mod.constants[i].elem);
    EXPECT_EQ(back.constants[i].count, mod.constants[i].count);
    EXPECT_EQ(back.constants[i].offset, mod.constants[i].offset);
    EXPECT_EQ(back.constants[i].bytes, mod.constants[i].bytes);
  }
  ASSERT_EQ(back.kernels.size(), mod.kernels.size());
  for (std::size_t i = 0; i < mod.kernels.size(); ++i) {
    const auto& k0 = mod.kernels[i];
    const auto& k1 = back.kernels[i];
    EXPECT_EQ(k1.name, k0.name);
    EXPECT_EQ(k1.listing, k0.listing);
    EXPECT_EQ(k1.num_vregs, k0.num_vregs);
    EXPECT_EQ(k1.static_smem_bytes, k0.static_smem_bytes);
    EXPECT_EQ(k1.ilp_at_pc, k0.ilp_at_pc);
    EXPECT_EQ(k1.stats.reg_count, k0.stats.reg_count);
    EXPECT_EQ(k1.stats.static_instrs, k0.stats.static_instrs);
    EXPECT_EQ(k1.stats.unrolled_loops, k0.stats.unrolled_loops);
    EXPECT_EQ(k1.stats.folded_consts, k0.stats.folded_consts);
    EXPECT_EQ(k1.stats.strength_reduced, k0.stats.strength_reduced);
    ASSERT_EQ(k1.params.size(), k0.params.size());
    for (std::size_t p = 0; p < k0.params.size(); ++p) {
      EXPECT_EQ(k1.params[p].name, k0.params[p].name);
      EXPECT_EQ(k1.params[p].type, k0.params[p].type);
    }
    ASSERT_EQ(k1.code.size(), k0.code.size());
    // The disassembly covers every instruction field we execute.
    EXPECT_EQ(vgpu::Disassemble(k1.code), vgpu::Disassemble(k0.code));
  }
}

// Acceptance: a second Context pointed at the same cache_dir loads from disk
// without compiling, and the deserialized module launches identically.
TEST(DiskCache, SecondContextGetsDiskHit) {
  TempCacheDir tmp;
  float warm_result;
  {
    vcuda::Context ctx(vgpu::TeslaC1060());
    ctx.set_cache_dir(tmp.str());
    auto mod = ctx.LoadModule(kKernel, OptsFor(9));
    warm_result = RunOnce(ctx, *mod, 9);
    EXPECT_EQ(ctx.cache_stats().misses, 1u);
  }
  EXPECT_FALSE(OnlyArtifact(tmp.dir).empty());

  vcuda::Context ctx2(vgpu::TeslaC1060());
  ctx2.set_cache_dir(tmp.str());
  auto mod = ctx2.LoadModule(kKernel, OptsFor(9));
  auto stats = ctx2.cache_stats();
  EXPECT_EQ(stats.disk_hits, 1u);
  EXPECT_EQ(stats.misses, 0u);  // kcc::CompileModule never ran
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(RunOnce(ctx2, *mod, 9), warm_result);
  EXPECT_GT(mod->compiled().compile_millis, 0.0);  // original compile cost travels along

  // The disk artifact seeds the in-memory tier: the next load is a warm hit.
  ctx2.LoadModule(kKernel, OptsFor(9));
  EXPECT_EQ(ctx2.cache_stats().hits, 1u);
}

TEST(DiskCache, DeviceIsPartOfTheKey) {
  TempCacheDir tmp;
  {
    vcuda::Context ctx(vgpu::TeslaC1060());
    ctx.set_cache_dir(tmp.str());
    ctx.LoadModule(kKernel, OptsFor(9));
  }
  // A different device must not reuse the VC1060 artifact.
  vcuda::Context ctx(vgpu::TeslaC2070());
  ctx.set_cache_dir(tmp.str());
  ctx.LoadModule(kKernel, OptsFor(9));
  EXPECT_EQ(ctx.cache_stats().disk_hits, 0u);
  EXPECT_EQ(ctx.cache_stats().misses, 1u);
}

TEST(DiskCache, CorruptArtifactFallsBackToRecompile) {
  TempCacheDir tmp;
  {
    vcuda::Context ctx(vgpu::TeslaC1060());
    ctx.set_cache_dir(tmp.str());
    ctx.LoadModule(kKernel, OptsFor(9));
  }
  fs::path artifact = OnlyArtifact(tmp.dir);

  // Flip a payload byte: the checksum catches it.
  {
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(ReadFileBytes(artifact.string(), &bytes));
    ASSERT_GT(bytes.size(), 5u);
    bytes[bytes.size() - 5] ^= 0x5a;
    ASSERT_TRUE(WriteFileAtomic(artifact.string(), bytes));
  }
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_cache_dir(tmp.str());
  auto mod = ctx.LoadModule(kKernel, OptsFor(9));  // must not throw
  EXPECT_EQ(ctx.cache_stats().disk_hits, 0u);
  EXPECT_EQ(ctx.cache_stats().misses, 1u);
  EXPECT_EQ(RunOnce(ctx, *mod, 9), 9.0f);

  // Truncation is also survived.
  fs::resize_file(artifact, 10);
  vcuda::Context ctx3(vgpu::TeslaC1060());
  ctx3.set_cache_dir(tmp.str());
  EXPECT_NO_THROW(ctx3.LoadModule(kKernel, OptsFor(9)));
  EXPECT_EQ(ctx3.cache_stats().misses, 1u);
}

TEST(DiskCache, VersionBumpFallsBackToRecompile) {
  TempCacheDir tmp;
  {
    vcuda::Context ctx(vgpu::TeslaC1060());
    ctx.set_cache_dir(tmp.str());
    ctx.LoadModule(kKernel, OptsFor(9));
  }
  fs::path artifact = OnlyArtifact(tmp.dir);
  {
    // Forge a future format version in the header.
    std::fstream f(artifact, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(kcc::kFormatVersionOffset));
    f.put(static_cast<char>(kcc::kModuleFormatVersion + 1));
  }
  vcuda::Context ctx(vgpu::TeslaC1060());
  ctx.set_cache_dir(tmp.str());
  auto mod = ctx.LoadModule(kKernel, OptsFor(9));
  EXPECT_EQ(ctx.cache_stats().disk_hits, 0u);
  EXPECT_EQ(ctx.cache_stats().misses, 1u);
  EXPECT_EQ(RunOnce(ctx, *mod, 9), 9.0f);
}

TEST(Concurrency, ParallelLoadsAreSafeAndAccounted) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  constexpr int kThreads = 8;
  constexpr int kIters = 16;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ctx, t] {
      for (int i = 0; i < kIters; ++i) {
        auto mod = ctx.LoadModule(kKernel, OptsFor(1 + (t + i) % 4));
        ASSERT_TRUE(mod->HasKernel("f"));
      }
    });
  }
  for (auto& w : workers) w.join();
  auto stats = ctx.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kIters);
  // Each of the 4 parameter sets compiled at least once; racing threads may
  // duplicate a compile, but the cache keeps one module per key.
  EXPECT_GE(stats.misses, 4u);
  EXPECT_EQ(stats.collisions_detected, 0u);
}

// Tiered promotion must distinguish parameter sets whose defines are equal
// but whose other compile options differ (the old defines-only key shared
// one heat counter between them).
TEST(TieredLoader, OptionsDifferingSetsHeatSeparately) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  vcuda::TieredLoader tiered(&ctx, kKernel, /*hot_threshold=*/2);

  kcc::CompileOptions hot = OptsFor(6);
  kcc::CompileOptions cold = OptsFor(6);
  cold.enable_unroll = false;  // same defines, different binary

  tiered.Get(hot);
  tiered.Get(hot);  // promoted
  EXPECT_TRUE(tiered.IsSpecialized(hot));
  EXPECT_FALSE(tiered.IsSpecialized(cold));  // aliased before the fix
  EXPECT_EQ(tiered.stats().specializations, 1u);

  // The options-differing set starts cold and promotes on its own schedule —
  // to its own binary, with the loop left rolled.
  auto first = tiered.Get(cold);
  EXPECT_FALSE(tiered.IsSpecialized(cold));
  EXPECT_EQ(first->GetKernel("f").stats.unrolled_loops, 0);  // served RE
  auto promoted = tiered.Get(cold);
  EXPECT_TRUE(tiered.IsSpecialized(cold));
  EXPECT_EQ(promoted->GetKernel("f").stats.unrolled_loops, 0);
  EXPECT_EQ(tiered.Get(hot)->GetKernel("f").stats.unrolled_loops, 1);
  EXPECT_EQ(tiered.stats().specializations, 2u);
}

}  // namespace
}  // namespace kspec
