// Predictive-tuner tier tests: predictive-vs-grid agreement, regret bounds,
// static-prune correctness against real app evaluations, the persistent
// TuningCache (round trip, corruption fallback, cross-writer merge, and the
// second-process zero-evaluation path), plus the two runtime-layer
// regressions this PR fixes (stage compile-time double-charging and the
// tiered loader's RE compile under its mutex).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <future>
#include <thread>

#include "apps/matching/tune.hpp"
#include "apps/piv/tune.hpp"
#include "launch/stage_runner.hpp"
#include "support/temp_dir.hpp"
#include "tune/prepass.hpp"
#include "tune/tuner.hpp"
#include "vcuda/tiered.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/device.hpp"

namespace kspec {
namespace {

namespace fs = std::filesystem;
using tune::Config;
using tune::ParamRange;
using tune::TuneResult;

// A scratch directory, fresh per test, removed on destruction.
struct TempDir : ScopedTempDir {
  TempDir() : ScopedTempDir("kspec_tune_test_") { EXPECT_TRUE(valid()); }
};

// log(cost) is smooth, separable, and quadratic in log2 of each parameter —
// exactly the family PredictiveSearch fits — so the model (and therefore the
// ranking) should be exact.
double LogBowl(const Config& c) {
  const double a = std::log2(static_cast<double>(c.at("a")));
  const double b = std::log2(static_cast<double>(c.at("b")));
  const double d = std::log2(static_cast<double>(c.at("d")));
  return std::exp(std::pow(a - 3.0, 2.0) + 0.5 * std::pow(b - 2.0, 2.0) +
                  0.25 * std::pow(d - 4.0, 2.0) + 2.0);
}

std::vector<ParamRange> Pow2Space() {
  std::vector<std::int64_t> v = {1, 2, 4, 8, 16, 32, 64, 128};
  return {{"a", v}, {"b", v}, {"d", v}};
}

TEST(Predictive, ExhaustiveOnSmallSpace) {
  // 12 points fit inside the default budget: the search must degenerate to
  // an exact exhaustive measurement and agree with the grid bit-for-bit.
  std::vector<ParamRange> space = {{"a", {1, 2, 4, 8}}, {"b", {1, 4, 16}}};
  auto eval = [](const Config& c) {
    return LogBowl({{"a", c.at("a")}, {"b", c.at("b")}, {"d", 16}});
  };
  TuneResult grid = tune::GridSearch(space, eval);
  TuneResult pred = tune::PredictiveSearch(space, eval);
  ASSERT_TRUE(grid.ok());
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred.best, grid.best);
  EXPECT_DOUBLE_EQ(pred.best_millis, grid.best_millis);
  EXPECT_EQ(pred.evaluated, 12u);
  EXPECT_DOUBLE_EQ(pred.fit_r2, 1.0);
}

TEST(Predictive, RegretBoundAtTenthTheEvaluations) {
  TuneResult grid = tune::GridSearch(Pow2Space(), LogBowl);
  TuneResult pred = tune::PredictiveSearch(Pow2Space(), LogBowl);
  ASSERT_TRUE(grid.ok());
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(grid.evaluated, 512u);
  EXPECT_LE(pred.evaluated, grid.evaluated / 10);
  EXPECT_LE(pred.best_millis, grid.best_millis * 1.05);
  EXPECT_FALSE(pred.used_fallback);
  EXPECT_GE(pred.fit_r2, 0.5);
}

TEST(Predictive, HonorsEvaluationBudget) {
  tune::PredictiveOptions opts;
  opts.max_evaluations = 7;
  TuneResult pred = tune::PredictiveSearch(Pow2Space(), LogBowl, opts);
  ASSERT_TRUE(pred.ok());
  EXPECT_LE(pred.evaluated, 7u);
}

TEST(Predictive, FallsBackToDescentOnPoorFit) {
  // A surface with no log-polynomial structure: a deterministic hash. The
  // fit's R^2 collapses and the search must descend instead (and still
  // return a real measured best).
  auto eval = [](const Config& c) {
    std::uint64_t h = 1469598103934665603ull;
    for (const auto& [k, v] : c) h = (h ^ static_cast<std::uint64_t>(v)) * 1099511628211ull;
    return 1.0 + static_cast<double>(h % 1024);
  };
  TuneResult pred = tune::PredictiveSearch(Pow2Space(), eval);
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(pred.used_fallback);
  EXPECT_LT(pred.fit_r2, 0.5);
  EXPECT_GT(pred.evaluated, 0u);
}

TEST(Predictive, AllPrunedYieldsNotOk) {
  tune::PredictiveOptions opts;
  opts.prune = [](const Config&) { return true; };
  TuneResult pred = tune::PredictiveSearch(Pow2Space(), LogBowl, opts);
  EXPECT_FALSE(pred.ok());
  EXPECT_TRUE(pred.best.empty());
  EXPECT_EQ(pred.evaluated, 0u);
  EXPECT_EQ(pred.pruned_static, 512u);
  EXPECT_TRUE(std::isinf(pred.best_millis));
}

TEST(Predictive, AllInfeasibleEvaluationsYieldNotOk) {
  auto eval = [](const Config&) -> double { throw Error("infeasible"); };
  for (TuneResult r : {tune::GridSearch(Pow2Space(), eval),
                       tune::CoordinateDescent(Pow2Space(), eval),
                       tune::PredictiveSearch(Pow2Space(), eval)}) {
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.best.empty());
    EXPECT_EQ(r.evaluated, 0u);
  }
}

TEST(OccupancyPrune, ReplaysLaunchAdmission) {
  const vgpu::DeviceProfile dev = vgpu::TeslaC1060();
  tune::ResourceFn resources = [](const Config& c) -> std::optional<tune::ResourceEstimate> {
    if (c.at("threads") < 0) return std::nullopt;  // structural stand-in
    return tune::ResourceEstimate{static_cast<unsigned>(c.at("threads")),
                                  static_cast<unsigned>(c.at("regs")),
                                  static_cast<unsigned>(c.at("smem"))};
  };
  tune::PruneFn prune = tune::OccupancyPrune(dev, resources);

  auto cfg = [](std::int64_t t, std::int64_t r, std::int64_t s) {
    return Config{{"threads", t}, {"regs", r}, {"smem", s}};
  };
  EXPECT_TRUE(prune(cfg(-1, 8, 0)));     // structurally infeasible
  EXPECT_TRUE(prune(cfg(1024, 8, 0)));   // block larger than the device allows
  EXPECT_TRUE(prune(cfg(64, 8, 20000))); // shared request above the SM's 16 KB
  // C1060, 256-thread block: zero occupancy exactly from 65 regs/thread.
  EXPECT_TRUE(prune(cfg(256, 65, 0)));
  EXPECT_FALSE(prune(cfg(256, 64, 0)));
  // Above the per-thread maximum the interpreter clamps (spills) and
  // launches; the pre-pass must agree, not reject.
  EXPECT_FALSE(prune(cfg(64, 200, 0)));
}

// Every configuration the PIV pre-pass prunes must REALLY be infeasible:
// measuring it throws. (The deterministic simulator makes this exact.)
TEST(StaticPrune, PivPrunedPointsAreTrulyInfeasible) {
  apps::piv::Problem p = apps::piv::Generate("prune", 56, 16, 2, 8, 321);
  vcuda::Context ctx(vgpu::TeslaC1060());
  tune::PruneFn prune = apps::piv::RegBlockPrune(ctx, p);
  tune::EvalFn eval = apps::piv::RegBlockEval(ctx, p);

  const std::vector<ParamRange> space = apps::piv::RegBlockSpace();
  std::size_t pruned = 0, kept = 0;
  for (std::int64_t t : space[0].values) {
    for (std::int64_t rb = 1; rb <= 48; ++rb) {
      Config c{{"threads", t}, {"rb", rb}};
      if (prune(c)) {
        ++pruned;
        EXPECT_THROW(eval(c), Error) << "pruned but launchable: threads=" << t << " rb=" << rb;
      } else {
        ++kept;
      }
    }
  }
  EXPECT_GT(pruned, 0u);  // both coverage and register pruning fire on C1060
  EXPECT_GT(kept, 0u);
}

TEST(StaticPrune, MatcherPrunedPointsAreTrulyInfeasible) {
  // Template smaller than the biggest tiles: exercises the degenerate-tiling
  // screen on top of the thread-axis screens.
  apps::matching::Problem p = apps::matching::Generate("tiny", 8, 8, 4, 4, 9);
  vcuda::Context ctx(vgpu::TeslaC1060());
  tune::PruneFn prune = apps::matching::MatcherPrune(ctx, p);
  tune::EvalFn eval = apps::matching::MatcherEval(ctx, p);

  const std::vector<ParamRange> space = apps::matching::MatcherSpace();
  std::size_t pruned = 0;
  for (std::int64_t threads : space[0].values) {
    for (std::int64_t th : space[1].values) {
      for (std::int64_t tw : space[2].values) {
        Config c{{"threads", threads}, {"tile_h", th}, {"tile_w", tw}};
        if (prune(c)) {
          ++pruned;
          EXPECT_THROW(eval(c), Error)
              << "pruned but launchable: threads=" << threads << " tile=" << th << "x" << tw;
        }
      }
    }
  }
  EXPECT_GT(pruned, 0u);
}

TEST(TuningCache, DiskRoundTrip) {
  TempDir tmp;
  const std::string path = tmp.File("tune.bin");
  {
    tune::TuningCache cache(path);
    cache.Store(tune::TuningCache::MakeKey("piv/regblock", "VC1060", "mask16"),
                {{"threads", 128}, {"rb", 2}});
    cache.Store(tune::TuningCache::MakeKey("matching/pipeline", "VC2070", "tpl32x24"),
                {{"threads", 256}, {"tile_h", 8}, {"tile_w", 12}});
  }
  tune::TuningCache reloaded(path);
  EXPECT_EQ(reloaded.size(), 2u);
  auto hit = reloaded.Lookup(tune::TuningCache::MakeKey("piv/regblock", "VC1060", "mask16"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->at("threads"), 128);
  EXPECT_EQ(hit->at("rb"), 2);
}

TEST(TuningCache, CorruptFileFallsBackToEmpty) {
  TempDir tmp;
  const std::string path = tmp.File("tune.bin");
  {
    tune::TuningCache cache(path);
    cache.Store("k", {{"threads", 64}});
  }
  // Flip a payload byte: the checksum must reject the artifact.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\x5a');
  }
  tune::TuningCache corrupt(path);
  EXPECT_EQ(corrupt.size(), 0u);
  EXPECT_FALSE(corrupt.Lookup("k").has_value());
  // Storing over the corpse works and persists.
  corrupt.Store("k2", {{"threads", 32}});
  tune::TuningCache again(path);
  EXPECT_TRUE(again.Lookup("k2").has_value());

  // Truncation and garbage are equally non-fatal.
  { std::ofstream(path, std::ios::binary) << "KSPC"; }
  EXPECT_EQ(tune::TuningCache(path).size(), 0u);
  { std::ofstream(path, std::ios::binary) << "not a cache at all"; }
  EXPECT_EQ(tune::TuningCache(path).size(), 0u);
}

TEST(TuningCache, StoreMergesOtherWritersEntries) {
  TempDir tmp;
  const std::string path = tmp.File("tune.bin");
  tune::TuningCache a(path);
  tune::TuningCache b(path);  // opened before a stores anything
  a.Store("alpha", {{"x", 1}});
  b.Store("beta", {{"x", 2}});  // must not drop a's on-disk entry
  tune::TuningCache c(path);
  EXPECT_TRUE(c.Lookup("alpha").has_value());
  EXPECT_TRUE(c.Lookup("beta").has_value());
}

// Regression: TuningCache is shared by every shard of a fleet, but Store and
// Lookup used to touch the entries map with no synchronization at all — a
// data race TSan flags the moment two schedulers' shards tune concurrently.
// This test is in the TSan CI job; it also checks nothing is lost or torn.
TEST(TuningCache, ConcurrentStoreLookupFlushIsSafe) {
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  constexpr int kKeys = 16;
  TempDir tmp;
  tune::TuningCache cache(tmp.File("tune.bin"));

  std::atomic<int> ready{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kIters; ++i) {
        const std::string key = "k" + std::to_string((t * 13 + i) % kKeys);
        switch (i % 4) {
          case 0:
            cache.Store(key, {{"threads", 32 + (i % 4) * 32}});
            break;
          case 1:
            if (auto hit = cache.Lookup(key)) {
              EXPECT_GT(hit->at("threads"), 0);  // never torn
            }
            break;
          case 2:
            (void)cache.size();
            break;
          default:
            if (i % 32 == 3) cache.Flush();  // read-merge-write under fire
            break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  // Every key was stored at least once; all of them survive the storm, both
  // in memory and (after one more flush) on disk.
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_TRUE(cache.Lookup("k" + std::to_string(k)).has_value()) << "key " << k;
  }
  cache.Flush();
  tune::TuningCache reread(tmp.File("tune.bin"));
  EXPECT_EQ(reread.size(), static_cast<std::size_t>(kKeys));
}

// LookupOrCompute is the fleet's single-search guarantee: N shards asking for
// the same (kernel, device, signature) key concurrently run the search once
// and share the result.
TEST(TuningCache, LookupOrComputeRunsComputeOncePerKey) {
  constexpr int kThreads = 8;
  tune::TuningCache cache;  // in-memory is enough: the contract is per-process

  std::atomic<int> computes{0};
  std::atomic<int> ready{0};
  std::vector<tune::Config> results(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      results[t] = cache.LookupOrCompute("piv|VC1060|n=8", [&] {
        computes.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return tune::Config{{"threads", 64}, {"rb", 4}};
      });
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(computes.load(), 1) << "the search ran more than once for one key";
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(results[t].at("threads"), 64) << "thread " << t;
    EXPECT_EQ(results[t].at("rb"), 4) << "thread " << t;
  }
  EXPECT_TRUE(cache.Lookup("piv|VC1060|n=8").has_value());
  EXPECT_EQ(cache.size(), 1u);
}

// A failed compute must propagate to every waiter and leave nothing cached —
// the next call retries with a fresh flight.
TEST(TuningCache, LookupOrComputeFailureIsNotCached) {
  tune::TuningCache cache;
  std::atomic<int> computes{0};
  EXPECT_THROW(cache.LookupOrCompute("bad",
                                     [&]() -> tune::Config {
                                       computes.fetch_add(1);
                                       throw Error("search blew up");
                                     }),
               Error);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("bad").has_value());

  tune::Config ok = cache.LookupOrCompute("bad", [&] {
    computes.fetch_add(1);
    return tune::Config{{"threads", 128}};
  });
  EXPECT_EQ(computes.load(), 2);  // the failure was not latched forever
  EXPECT_EQ(ok.at("threads"), 128);
  EXPECT_TRUE(cache.Lookup("bad").has_value());
}

// The acceptance path: a second process (modeled by a fresh TuningCache
// instance over the same file) reuses the persisted entry and performs ZERO
// evaluations.
TEST(TuningCache, SecondProcessSkipsSearchEntirely) {
  TempDir tmp;
  const std::string path = tmp.File("tune.bin");
  apps::piv::Problem p = apps::piv::Generate("cached", 56, 16, 2, 8, 321);
  vcuda::Context ctx(vgpu::TeslaC1060());

  // Coverage-only prune keeps the first tune quick (no reference compiles).
  tune::PredictiveOptions opts;
  opts.prune = [&p](const Config& c) {
    return c.at("rb") * c.at("threads") < p.mask_area();
  };

  tune::TuningCache writer(path);
  tune::TuneResult first;
  apps::piv::PivConfig tuned = apps::piv::TunedRegBlock(ctx, p, &writer, &first, opts);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_GT(first.evaluated, 0u);

  tune::TuningCache reader(path);  // fresh load from disk
  tune::TuneResult second;
  apps::piv::PivConfig cached = apps::piv::TunedRegBlock(ctx, p, &reader, &second, opts);
  EXPECT_TRUE(second.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.evaluated, 0u);
  EXPECT_EQ(second.pruned_static, 0u);
  EXPECT_EQ(cached.threads, tuned.threads);
  EXPECT_EQ(cached.rb, tuned.rb);
}

TEST(TunedApps, ThrowOnAllInfeasibleSpace) {
  apps::piv::Problem p = apps::piv::Generate("none", 56, 16, 2, 8, 321);
  vcuda::Context ctx(vgpu::TeslaC1060());
  tune::PredictiveOptions opts;
  opts.prune = [](const Config&) { return true; };
  EXPECT_THROW(apps::piv::TunedRegBlock(ctx, p, nullptr, nullptr, opts), Error);

  apps::matching::Problem mp = apps::matching::Generate("none", 16, 16, 4, 4, 9);
  EXPECT_THROW(apps::matching::TunedMatcher(ctx, mp, nullptr, nullptr, opts), Error);
}

// ---------------------------------------------------------------------------
// Regression: StageRunner must charge a module's compile time once per
// (stage, binary) per breakdown, not once per launch.
// ---------------------------------------------------------------------------

constexpr const char* kTinyKernel = R"(
#ifndef N
#define N n
#endif
__kernel void f(float* out, int n) {
  float acc = 0.0f;
  for (int i = 0; i < N; i++) { acc += 1.0f; }
  out[threadIdx.x] = acc;
}
)";

TEST(StageRunner, CompileChargedOncePerStagePerBreakdown) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  launch::StageRunner runner(ctx);
  auto d_out = runner.Alloc<float>(32);
  vcuda::ArgPack args;
  args.Ptr(d_out.get()).Int(8);
  launch::SpecBuilder spec(/*specialize=*/true);
  spec.Value("N", 8);

  runner.Run("stage", kTinyKernel, spec, "f", vgpu::Dim3(1), vgpu::Dim3(32), args);
  const double once = runner.breakdown().compile_millis;
  ASSERT_GT(once, 0.0);

  // Launch the same stage/binary repeatedly: the compile charge stays flat.
  for (int i = 0; i < 5; ++i) {
    runner.Run("stage", kTinyKernel, spec, "f", vgpu::Dim3(1), vgpu::Dim3(32), args);
  }
  EXPECT_DOUBLE_EQ(runner.breakdown().compile_millis, once);
  EXPECT_DOUBLE_EQ(runner.breakdown().Stage("stage")->compile_millis, once);

  // A fresh breakdown charges the (cached) module's original cost afresh —
  // once, regardless of launch count within the new breakdown.
  launch::LaunchBreakdown taken = runner.TakeBreakdown();
  EXPECT_DOUBLE_EQ(taken.compile_millis, once);
  runner.Run("stage", kTinyKernel, spec, "f", vgpu::Dim3(1), vgpu::Dim3(32), args);
  runner.Run("stage", kTinyKernel, spec, "f", vgpu::Dim3(1), vgpu::Dim3(32), args);
  EXPECT_DOUBLE_EQ(runner.breakdown().compile_millis, once);
}

// ---------------------------------------------------------------------------
// Regression: a cold RE build must not serialize unrelated Gets behind the
// loader mutex.
// ---------------------------------------------------------------------------

TEST(TieredLoader, ColdReBuildDoesNotSerializeUnrelatedGet) {
  vcuda::Context ctx(vgpu::TeslaC1060());
  vcuda::TieredLoader loader(&ctx, kTinyKernel, /*hot_threshold=*/1);

  // Promote parameter set X immediately (threshold 1, blocking promotion):
  // the RE build is never touched, so it stays cold.
  kcc::CompileOptions x;
  x.defines["N"] = "8";
  ASSERT_NE(loader.Get(x), nullptr);
  ASSERT_TRUE(loader.IsSpecialized(x));

  // Now stall the RE compile the moment someone triggers it.
  std::promise<void> entered_promise;
  auto entered = entered_promise.get_future();
  std::atomic<bool> release{false};
  loader.set_test_compile_hook([&] {
    entered_promise.set_value();
    while (!release.load()) std::this_thread::yield();
  });
  loader.set_hot_threshold(10);

  kcc::CompileOptions y;
  y.defines["N"] = "16";
  std::thread cold([&] { loader.Get(y); });  // cold set: compiles RE, blocks in hook
  ASSERT_EQ(entered.wait_for(std::chrono::seconds(10)), std::future_status::ready);

  // While the RE build is (artificially) stuck mid-compile, a Get for the
  // already-specialized set must complete — before the fix it deadlocked
  // behind mu_ until the compile finished.
  auto specialized = std::async(std::launch::async, [&] { return loader.Get(x); });
  EXPECT_EQ(specialized.wait_for(std::chrono::seconds(10)), std::future_status::ready)
      << "Get(specialized) serialized behind the cold RE compile";
  release.store(true);
  cold.join();
  EXPECT_NE(specialized.get(), nullptr);

  auto stats = loader.stats();
  EXPECT_GE(stats.sk_served, 2u);
  EXPECT_GE(stats.re_served, 1u);
}

}  // namespace
}  // namespace kspec
