// Second battery of end-to-end Kernel-C semantics tests: multi-dimensional
// thread geometry, double precision, 64-bit integers, pointer walking,
// ternaries, logical operators, the static-vs-dynamic shared memory
// equivalence of Section 4.1, and driver-level diagnostics.
#include <gtest/gtest.h>

#include <cmath>

#include "vcuda/vcuda.hpp"

namespace kspec {
namespace {

using vcuda::ArgPack;
using vcuda::Context;
using vgpu::Dim3;

struct Gpu {
  Context ctx{vgpu::TeslaC2070()};

  template <typename T>
  std::vector<T> Run(const char* src, Dim3 grid, Dim3 block, std::size_t out_count,
                     const std::function<void(ArgPack&, vcuda::DevPtr)>& bind,
                     const kcc::CompileOptions& opts = {}) {
    auto mod = ctx.LoadModule(src, opts);
    auto d_out = ctx.Malloc(out_count * sizeof(T));
    ctx.Memset(d_out, 0, out_count * sizeof(T));
    ArgPack args;
    bind(args, d_out);
    ctx.Launch(*mod, "f", grid, block, args);
    auto out = vcuda::Download<T>(ctx, d_out, out_count);
    ctx.Free(d_out);
    return out;
  }
};

TEST(KernelC, TwoDimensionalBlocksAndGrids) {
  Gpu g;
  const char* src = R"(
__kernel void f(int* out, int w) {
  unsigned int x = blockIdx.x * blockDim.x + threadIdx.x;
  unsigned int y = blockIdx.y * blockDim.y + threadIdx.y;
  out[y * (unsigned int)w + x] = (int)(y * 100u + x);
}
)";
  const int w = 8, h = 6;
  auto out = g.Run<int>(src, Dim3(2, 3), Dim3(4, 2), static_cast<std::size_t>(w) * h,
                        [&](ArgPack& a, vcuda::DevPtr d) { a.Ptr(d).Int(w); });
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      EXPECT_EQ(out[y * w + x], y * 100 + x) << x << "," << y;
    }
  }
}

TEST(KernelC, ThreeDimensionalThreadIndexing) {
  Gpu g;
  const char* src = R"(
__kernel void f(int* out) {
  unsigned int i = (threadIdx.z * blockDim.y + threadIdx.y) * blockDim.x + threadIdx.x;
  out[i] = (int)(threadIdx.z * 100u + threadIdx.y * 10u + threadIdx.x);
}
)";
  auto out = g.Run<int>(src, Dim3(1), Dim3(4, 3, 2), 24,
                        [&](ArgPack& a, vcuda::DevPtr d) { a.Ptr(d); });
  for (int z = 0; z < 2; ++z) {
    for (int y = 0; y < 3; ++y) {
      for (int x = 0; x < 4; ++x) {
        EXPECT_EQ(out[(z * 3 + y) * 4 + x], z * 100 + y * 10 + x);
      }
    }
  }
}

TEST(KernelC, DoublePrecisionArithmetic) {
  Gpu g;
  const char* src = R"(
__kernel void f(double* out, double a, double b) {
  int t = (int)threadIdx.x;
  double x = a * (double)t + b;
  out[t] = sqrt(x * x) + fabs(-b);
}
)";
  auto out = g.Run<double>(src, Dim3(1), Dim3(16), 16, [&](ArgPack& a, vcuda::DevPtr d) {
    a.Ptr(d).Double(1.5).Double(0.25);
  });
  for (int t = 0; t < 16; ++t) {
    double x = 1.5 * t + 0.25;
    EXPECT_DOUBLE_EQ(out[t], std::sqrt(x * x) + 0.25) << t;
  }
}

TEST(KernelC, LongLongArithmetic) {
  Gpu g;
  const char* src = R"(
__kernel void f(long long* out, long long base) {
  int t = (int)threadIdx.x;
  long long v = base + (long long)t * 1000000000LL;
  out[t] = v * 3LL - 7LL;
}
)";
  auto out = g.Run<std::int64_t>(src, Dim3(1), Dim3(8), 8, [&](ArgPack& a, vcuda::DevPtr d) {
    a.Ptr(d).Long(5000000000LL);
  });
  for (int t = 0; t < 8; ++t) {
    std::int64_t v = 5000000000LL + static_cast<std::int64_t>(t) * 1000000000LL;
    EXPECT_EQ(out[t], v * 3 - 7) << t;
  }
}

TEST(KernelC, PointerWalking) {
  Gpu g;
  // Pointers are mutable: walk a row pointer down a matrix.
  const char* src = R"(
__kernel void f(float* m, float* out, int rows, int cols) {
  int t = (int)threadIdx.x;
  if (t < cols) {
    float* p = m + t;
    float acc = 0.0f;
    for (int r = 0; r < rows; r++) {
      acc += *p;
      p += cols;
    }
    out[t] = acc;
  }
}
)";
  const int rows = 5, cols = 8;
  std::vector<float> matrix(rows * cols);
  for (int i = 0; i < rows * cols; ++i) matrix[i] = static_cast<float>(i % 11);
  auto d_m = vcuda::Upload<float>(g.ctx, std::span<const float>(matrix));
  auto out = g.Run<float>(src, Dim3(1), Dim3(32), cols, [&](ArgPack& a, vcuda::DevPtr d) {
    a.Ptr(d_m).Ptr(d).Int(rows).Int(cols);
  });
  for (int c = 0; c < cols; ++c) {
    float expect = 0;
    for (int r = 0; r < rows; ++r) expect += matrix[r * cols + c];
    EXPECT_FLOAT_EQ(out[c], expect) << c;
  }
}

TEST(KernelC, TernaryAndLogicalOperators) {
  Gpu g;
  const char* src = R"(
__kernel void f(int* out, int lo, int hi) {
  int t = (int)threadIdx.x;
  bool in_range = t >= lo && t < hi;
  bool edge = t == lo || t == hi - 1;
  out[t] = in_range ? (edge ? 2 : 1) : 0;
}
)";
  auto out = g.Run<int>(src, Dim3(1), Dim3(32), 32, [&](ArgPack& a, vcuda::DevPtr d) {
    a.Ptr(d).Int(5).Int(20);
  });
  for (int t = 0; t < 32; ++t) {
    int expect = (t >= 5 && t < 20) ? ((t == 5 || t == 19) ? 2 : 1) : 0;
    EXPECT_EQ(out[t], expect) << t;
  }
}

// Section 4.1: specialization lets kernels keep the simpler static shared
// syntax yet size it per problem like dynamic allocation would — the two
// must behave identically.
TEST(KernelC, StaticSpecializedSharedEqualsDynamicShared) {
  Gpu g;
  const char* dynamic_src = R"(
__kernel void f(float* out, int n) {
  extern __shared float buf[];
  unsigned int t = threadIdx.x;
  buf[t] = (float)t;
  __syncthreads();
  out[t] = buf[(t + 1u) % (unsigned int)n];
}
)";
  const char* static_src = R"(
__kernel void f(float* out, int n) {
  __shared float buf[BUF_N];
  unsigned int t = threadIdx.x;
  buf[t] = (float)t;
  __syncthreads();
  out[t] = buf[(t + 1u) % (unsigned int)n];
}
)";
  const int n = 64;
  auto out_dyn = [&] {
    auto mod = g.ctx.LoadModule(dynamic_src, {});
    auto d = g.ctx.Malloc(n * 4);
    ArgPack a;
    a.Ptr(d).Int(n);
    g.ctx.Launch(*mod, "f", Dim3(1), Dim3(n), a, n * 4);
    return vcuda::Download<float>(g.ctx, d, n);
  }();
  kcc::CompileOptions opts;
  opts.defines["BUF_N"] = std::to_string(n);
  auto out_static = g.Run<float>(static_src, Dim3(1), Dim3(n), n,
                                 [&](ArgPack& a, vcuda::DevPtr d) { a.Ptr(d).Int(n); }, opts);
  EXPECT_EQ(out_dyn, out_static);
  for (int t = 0; t < n; ++t) EXPECT_FLOAT_EQ(out_static[t], static_cast<float>((t + 1) % n));
}

TEST(KernelC, SharedAtomicsWithinBlock) {
  Gpu g;
  const char* src = R"(
__kernel void f(int* out) {
  __shared int counter[1];
  unsigned int t = threadIdx.x;
  if (t == 0u) {
    counter[0] = 0;
  }
  __syncthreads();
  atomicAdd(counter, 1);
  __syncthreads();
  if (t == 0u) {
    out[blockIdx.x] = counter[0];
  }
}
)";
  auto out = g.Run<int>(src, Dim3(3), Dim3(96), 3,
                        [&](ArgPack& a, vcuda::DevPtr d) { a.Ptr(d); });
  for (int b = 0; b < 3; ++b) EXPECT_EQ(out[b], 96) << b;
}

TEST(Driver, ArgumentTypeMismatchDiagnosed) {
  Context ctx(vgpu::TeslaC1060());
  auto mod = ctx.LoadModule("__kernel void f(float* p, float x) { p[0] = x; }");
  auto d = ctx.Malloc(16);
  ArgPack wrong_count;
  wrong_count.Ptr(d);
  EXPECT_THROW(ctx.Launch(*mod, "f", Dim3(1), Dim3(1), wrong_count), DeviceError);
  ArgPack wrong_type;
  wrong_type.Ptr(d).Int(3);  // float argument given an int
  EXPECT_THROW(ctx.Launch(*mod, "f", Dim3(1), Dim3(1), wrong_type), DeviceError);
  ArgPack ok;
  ok.Ptr(d).Float(3.0f);
  EXPECT_NO_THROW(ctx.Launch(*mod, "f", Dim3(1), Dim3(1), ok));
}

TEST(Driver, MissingKernelAndOversizedBlockDiagnosed) {
  Context ctx(vgpu::TeslaC1060());  // max 512 threads/block
  auto mod = ctx.LoadModule("__kernel void f(float* p) { p[0] = 1.0f; }");
  auto d = ctx.Malloc(16);
  ArgPack args;
  args.Ptr(d);
  EXPECT_THROW(ctx.Launch(*mod, "nosuch", Dim3(1), Dim3(1), args), DeviceError);
  EXPECT_THROW(ctx.Launch(*mod, "f", Dim3(1), Dim3(1024), args), DeviceError);
}

TEST(Driver, GridDimensionsVisibleToKernels) {
  Gpu g;
  const char* src = R"(
__kernel void f(int* out) {
  if (threadIdx.x == 0u && blockIdx.x == 0u && blockIdx.y == 0u) {
    out[0] = (int)gridDim.x;
    out[1] = (int)gridDim.y;
    out[2] = (int)blockDim.x;
  }
}
)";
  auto out = g.Run<int>(src, Dim3(5, 3), Dim3(32), 3,
                        [&](ArgPack& a, vcuda::DevPtr d) { a.Ptr(d); });
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[1], 3);
  EXPECT_EQ(out[2], 32);
}

}  // namespace
}  // namespace kspec
