// Backprojection application tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apps/backproj/cpu_ref.hpp"
#include "apps/backproj/gpu.hpp"
#include "apps/backproj/problem.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec::apps::backproj {
namespace {

Problem SmallProblem() {
  Geometry g;
  g.vol_n = 12;
  g.vol_z = 8;
  g.det_u = 24;
  g.det_v = 16;
  g.n_angles = 8;
  return Generate("small", g, 2, 77);
}

TEST(BackprojProblem, ProjectionsNonTrivial) {
  Problem p = SmallProblem();
  EXPECT_EQ(p.projections.size(), p.proj_count());
  float max_val = *std::max_element(p.projections.begin(), p.projections.end());
  EXPECT_GT(max_val, 0.1f);
}

TEST(BackprojCpu, PeaksNearPlantedBlob) {
  Geometry g;
  g.vol_n = 16;
  g.vol_z = 12;
  g.det_u = 32;
  g.det_v = 24;
  g.n_angles = 16;
  Problem p = Generate("single", g, 1, 3);
  CpuResult r = CpuBackproject(p, 1);

  // Find the voxel with the maximum reconstructed value.
  auto it = std::max_element(r.volume.begin(), r.volume.end());
  std::size_t idx = static_cast<std::size_t>(it - r.volume.begin());
  int nxy = g.vol_n * g.vol_n;
  int z = static_cast<int>(idx) / nxy;
  int y = (static_cast<int>(idx) % nxy) / g.vol_n;
  int x = static_cast<int>(idx) % g.vol_n;
  float xc = (x - 0.5f * g.vol_n + 0.5f) * g.vox_size;
  float yc = (y - 0.5f * g.vol_n + 0.5f) * g.vox_size;
  float zc = (z - 0.5f * g.vol_z + 0.5f) * g.vox_size;
  // Backprojection smears, but the peak should land within ~2.5 voxels.
  EXPECT_NEAR(xc, p.blobs[0].x, 2.5f);
  EXPECT_NEAR(yc, p.blobs[0].y, 2.5f);
  EXPECT_NEAR(zc, p.blobs[0].z, 2.5f);
}

void ExpectVolumesClose(const std::vector<float>& a, const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], 1e-4f * (1.0f + std::fabs(a[i]))) << "voxel " << i;
  }
}

TEST(BackprojGpu, SpecializedMatchesCpu) {
  Problem p = SmallProblem();
  CpuResult cpu = CpuBackproject(p, 1);
  vcuda::Context ctx(vgpu::TeslaC1060());
  BackprojConfig cfg;
  cfg.threads = 32;
  cfg.zpt = 2;
  cfg.specialize = true;
  BackprojGpuResult gpu = GpuBackproject(ctx, p, cfg);
  ExpectVolumesClose(cpu.volume, gpu.volume);
}

TEST(BackprojGpu, RunTimeEvaluatedMatchesCpu) {
  Problem p = SmallProblem();
  CpuResult cpu = CpuBackproject(p, 1);
  vcuda::Context ctx(vgpu::TeslaC2070());
  BackprojConfig cfg;
  cfg.threads = 64;
  cfg.zpt = 1;
  cfg.specialize = false;
  BackprojGpuResult gpu = GpuBackproject(ctx, p, cfg);
  ExpectVolumesClose(cpu.volume, gpu.volume);
}

TEST(BackprojGpu, ZptSweepStaysCorrect) {
  Problem p = SmallProblem();  // vol_z = 8
  CpuResult cpu = CpuBackproject(p, 1);
  for (int zpt : {1, 2, 4, 8}) {
    vcuda::Context ctx(vgpu::TeslaC2070());
    BackprojConfig cfg;
    cfg.threads = 32;
    cfg.zpt = zpt;
    cfg.specialize = true;
    BackprojGpuResult gpu = GpuBackproject(ctx, p, cfg);
    ExpectVolumesClose(cpu.volume, gpu.volume);
  }
}

TEST(BackprojGpu, ZBlockingRequiresSpecialization) {
  Problem p = SmallProblem();
  vcuda::Context ctx(vgpu::TeslaC1060());
  BackprojConfig cfg;
  cfg.zpt = 2;
  cfg.specialize = false;
  EXPECT_THROW(GpuBackproject(ctx, p, cfg), DeviceError);
}

TEST(BackprojGpu, SpecializationImprovesTime) {
  Problem p = SmallProblem();
  vcuda::Context ctx(vgpu::TeslaC1060());
  BackprojConfig re;
  re.threads = 64;
  re.zpt = 1;
  re.specialize = false;
  BackprojConfig sk = re;
  sk.specialize = true;
  BackprojGpuResult r_re = GpuBackproject(ctx, p, re);
  BackprojGpuResult r_sk = GpuBackproject(ctx, p, sk);
  ExpectVolumesClose(r_re.volume, r_sk.volume);
  EXPECT_LT(r_sk.sim_millis, r_re.sim_millis);
  EXPECT_LE(r_sk.reg_count, r_re.reg_count);
}

TEST(BackprojGpu, ConstantMemoryAngleCapEnforced) {
  Geometry g;
  g.vol_n = 8;
  g.vol_z = 4;
  g.det_u = 16;
  g.det_v = 12;
  g.n_angles = 80;  // beyond the RE build's fixed 64-entry tables
  Problem p = Generate("manyangles", g, 1, 9);
  vcuda::Context ctx(vgpu::TeslaC2070());
  BackprojConfig cfg;
  cfg.threads = 32;
  cfg.specialize = false;
  EXPECT_THROW(GpuBackproject(ctx, p, cfg), DeviceError);
  cfg.specialize = true;  // exact-size constant tables
  EXPECT_NO_THROW(GpuBackproject(ctx, p, cfg));
}

}  // namespace
}  // namespace kspec::apps::backproj
