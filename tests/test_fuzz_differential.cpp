// Differential fuzzing of the compiler + interpreter stack.
//
// Random Kernel-C programs are generated together with a host-side mirror
// evaluator; every program is compiled BOTH with and without the optimizer
// and executed on the simulator, and all three answers (host, -O0, -O2) must
// agree exactly. This catches miscompilations in folding, strength
// reduction, CSE, DCE, unrolling, lowering, and the SIMT execution machinery
// (the control-flow fuzzer intentionally produces heavy divergence).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "kcc/compiler.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec {
namespace {

using HostIntFn = std::function<std::uint32_t(std::uint32_t t, std::uint32_t a, std::uint32_t b)>;
using HostFloatFn = std::function<float(std::uint32_t t, float x, float y)>;

struct IntExpr {
  std::string text;
  HostIntFn eval;
};

// Random unsigned-integer expression over {t, a, b, literals}. Unsigned
// arithmetic keeps the host mirror free of signed-overflow UB and matches
// Kernel-C's wrapping semantics exactly.
IntExpr GenIntExpr(Rng& rng, int depth) {
  if (depth <= 0 || rng.NextInt(0, 4) == 0) {
    switch (rng.NextInt(0, 3)) {
      case 0: return {"t", [](std::uint32_t t, std::uint32_t, std::uint32_t) { return t; }};
      case 1: return {"a", [](std::uint32_t, std::uint32_t a, std::uint32_t) { return a; }};
      case 2: return {"b", [](std::uint32_t, std::uint32_t, std::uint32_t b) { return b; }};
      default: {
        std::uint32_t lit = static_cast<std::uint32_t>(rng.NextInt(0, 100));
        return {Format("%uu", lit),
                [lit](std::uint32_t, std::uint32_t, std::uint32_t) { return lit; }};
      }
    }
  }
  IntExpr lhs = GenIntExpr(rng, depth - 1);
  IntExpr rhs = GenIntExpr(rng, depth - 1);
  auto l = lhs.eval, r = rhs.eval;
  switch (rng.NextInt(0, 8)) {
    case 0:
      return {"(" + lhs.text + " + " + rhs.text + ")",
              [l, r](auto t, auto a, auto b) { return l(t, a, b) + r(t, a, b); }};
    case 1:
      return {"(" + lhs.text + " - " + rhs.text + ")",
              [l, r](auto t, auto a, auto b) { return l(t, a, b) - r(t, a, b); }};
    case 2:
      return {"(" + lhs.text + " * " + rhs.text + ")",
              [l, r](auto t, auto a, auto b) { return l(t, a, b) * r(t, a, b); }};
    case 3:
      return {"(" + lhs.text + " & " + rhs.text + ")",
              [l, r](auto t, auto a, auto b) { return l(t, a, b) & r(t, a, b); }};
    case 4:
      return {"(" + lhs.text + " | " + rhs.text + ")",
              [l, r](auto t, auto a, auto b) { return l(t, a, b) | r(t, a, b); }};
    case 5:
      return {"(" + lhs.text + " ^ " + rhs.text + ")",
              [l, r](auto t, auto a, auto b) { return l(t, a, b) ^ r(t, a, b); }};
    case 6:
      // Shift amount masked so host/device agree without clamp semantics.
      return {"(" + lhs.text + " << (" + rhs.text + " & 7u))",
              [l, r](auto t, auto a, auto b) { return l(t, a, b) << (r(t, a, b) & 7u); }};
    default:
      // Division made safe with | 1.
      return {"(" + lhs.text + " / (" + rhs.text + " | 1u))",
              [l, r](auto t, auto a, auto b) { return l(t, a, b) / (r(t, a, b) | 1u); }};
  }
}

struct FloatExpr {
  std::string text;
  HostFloatFn eval;
};

FloatExpr GenFloatExpr(Rng& rng, int depth) {
  if (depth <= 0 || rng.NextInt(0, 4) == 0) {
    switch (rng.NextInt(0, 3)) {
      case 0:
        return {"(float)t", [](std::uint32_t t, float, float) { return static_cast<float>(t); }};
      case 1: return {"x", [](std::uint32_t, float x, float) { return x; }};
      case 2: return {"y", [](std::uint32_t, float, float y) { return y; }};
      default: {
        float lit = static_cast<float>(rng.NextInt(1, 40)) * 0.25f;
        return {Format("%.2ff", lit), [lit](std::uint32_t, float, float) { return lit; }};
      }
    }
  }
  FloatExpr lhs = GenFloatExpr(rng, depth - 1);
  FloatExpr rhs = GenFloatExpr(rng, depth - 1);
  auto l = lhs.eval, r = rhs.eval;
  switch (rng.NextInt(0, 5)) {
    case 0:
      return {"(" + lhs.text + " + " + rhs.text + ")",
              [l, r](auto t, auto x, auto y) { return l(t, x, y) + r(t, x, y); }};
    case 1:
      return {"(" + lhs.text + " - " + rhs.text + ")",
              [l, r](auto t, auto x, auto y) { return l(t, x, y) - r(t, x, y); }};
    case 2:
      return {"(" + lhs.text + " * " + rhs.text + ")",
              [l, r](auto t, auto x, auto y) { return l(t, x, y) * r(t, x, y); }};
    case 3:
      return {"fminf(" + lhs.text + ", " + rhs.text + ")",
              [l, r](auto t, auto x, auto y) { return std::min(l(t, x, y), r(t, x, y)); }};
    default:
      return {"fmaxf(" + lhs.text + ", " + rhs.text + ")",
              [l, r](auto t, auto x, auto y) { return std::max(l(t, x, y), r(t, x, y)); }};
  }
}

// Runs `source` (kernel f, one output per thread) optimized and unoptimized;
// returns both outputs.
template <typename T>
std::pair<std::vector<T>, std::vector<T>> RunBothWays(
    const std::string& source, unsigned threads,
    const std::function<void(vcuda::ArgPack&)>& bind_scalars) {
  std::pair<std::vector<T>, std::vector<T>> out;
  for (bool optimize : {true, false}) {
    vcuda::Context ctx(vgpu::TeslaC1060());
    kcc::CompileOptions opts;
    opts.optimize = optimize;
    auto mod = ctx.LoadModule(source, opts);
    auto d_out = ctx.Malloc(threads * sizeof(T));
    vcuda::ArgPack args;
    args.Ptr(d_out);
    bind_scalars(args);
    ctx.Launch(*mod, "f", vgpu::Dim3(1), vgpu::Dim3(threads), args);
    auto res = vcuda::Download<T>(ctx, d_out, threads);
    (optimize ? out.first : out.second) = std::move(res);
  }
  return out;
}

TEST(FuzzDifferential, IntegerExpressions) {
  Rng rng(20260705);
  const unsigned threads = 32;
  for (int trial = 0; trial < 60; ++trial) {
    IntExpr e = GenIntExpr(rng, 4);
    std::uint32_t a = static_cast<std::uint32_t>(rng.NextInt(0, 1000));
    std::uint32_t b = static_cast<std::uint32_t>(rng.NextInt(0, 1000));
    std::string src = Format(R"(
__kernel void f(unsigned int* out, unsigned int a, unsigned int b) {
  unsigned int t = threadIdx.x;
  out[t] = %s;
}
)", e.text.c_str());
    auto [opt, noopt] = RunBothWays<std::uint32_t>(
        src, threads, [&](vcuda::ArgPack& args) { args.Uint(a).Uint(b); });
    for (unsigned t = 0; t < threads; ++t) {
      std::uint32_t expect = e.eval(t, a, b);
      ASSERT_EQ(opt[t], expect) << "trial " << trial << " lane " << t << " expr " << e.text;
      ASSERT_EQ(noopt[t], expect) << "(unoptimized) trial " << trial << " expr " << e.text;
    }
  }
}

TEST(FuzzDifferential, FloatExpressions) {
  Rng rng(77001122);
  const unsigned threads = 32;
  for (int trial = 0; trial < 60; ++trial) {
    FloatExpr e = GenFloatExpr(rng, 4);
    float x = 0.5f * static_cast<float>(rng.NextInt(-8, 8));
    float y = 0.25f * static_cast<float>(rng.NextInt(1, 16));
    std::string src = Format(R"(
__kernel void f(float* out, float x, float y) {
  unsigned int t = threadIdx.x;
  out[t] = %s;
}
)", e.text.c_str());
    auto [opt, noopt] = RunBothWays<float>(
        src, threads, [&](vcuda::ArgPack& args) { args.Float(x).Float(y); });
    for (unsigned t = 0; t < threads; ++t) {
      // Same single-precision operations in the same order: exact equality.
      float expect = e.eval(t, x, y);
      ASSERT_EQ(opt[t], expect) << "trial " << trial << " lane " << t << " expr " << e.text;
      ASSERT_EQ(noopt[t], expect) << "(unoptimized) trial " << trial;
    }
  }
}

// Random nested control flow: heavy intra-warp divergence with data-dependent
// branches and loops, mirrored on the host.
TEST(FuzzDifferential, DivergentControlFlow) {
  Rng rng(31415926);
  const unsigned threads = 64;
  for (int trial = 0; trial < 40; ++trial) {
    std::uint32_t k1 = static_cast<std::uint32_t>(rng.NextInt(1, 63));
    std::uint32_t k2 = static_cast<std::uint32_t>(rng.NextInt(2, 7));
    // k3 <= k1 keeps `j -= k3` from wrapping below k1 (j > k1 >= k3 implies
    // j - k3 >= 0): the while loop provably terminates in both mirrors.
    std::uint32_t k3 =
        static_cast<std::uint32_t>(rng.NextInt(1, std::min<std::int64_t>(k1, 5)));
    std::uint32_t c1 = static_cast<std::uint32_t>(rng.NextInt(1, 9));
    std::uint32_t c2 = static_cast<std::uint32_t>(rng.NextInt(1, 9));

    std::string src = Format(R"(
__kernel void f(unsigned int* out, unsigned int k1, unsigned int k2, unsigned int k3) {
  unsigned int t = threadIdx.x;
  unsigned int acc = 0u;
  if (t < k1) {
    if (t %% k2 == 0u) {
      acc += %uu;
    } else {
      acc += t * %uu;
    }
    for (unsigned int i = 0u; i < (t %% k3) + 1u; i = i + 1u) {
      acc += i;
    }
  } else {
    unsigned int j = t;
    while (j > k1) {
      j = j - k3;
      acc += 1u;
    }
  }
  out[t] = acc;
}
)", c1, c2);

    auto host = [&](std::uint32_t t) {
      std::uint32_t acc = 0;
      if (t < k1) {
        if (t % k2 == 0) acc += c1;
        else acc += t * c2;
        for (std::uint32_t i = 0; i < (t % k3) + 1; ++i) acc += i;
      } else {
        std::uint32_t j = t;
        while (j > k1) {
          j -= k3;
          acc += 1;
        }
      }
      return acc;
    };

    auto [opt, noopt] = RunBothWays<std::uint32_t>(
        src, threads, [&](vcuda::ArgPack& args) { args.Uint(k1).Uint(k2).Uint(k3); });
    for (unsigned t = 0; t < threads; ++t) {
      ASSERT_EQ(opt[t], host(t)) << "trial " << trial << " lane " << t;
      ASSERT_EQ(noopt[t], host(t)) << "(unoptimized) trial " << trial << " lane " << t;
    }
  }
}

// Specialization equivalence under fuzz: for random expressions, compiling
// with the scalars baked in as -D constants must produce the same values as
// passing them at run time (the core soundness property of the technique).
TEST(FuzzDifferential, SpecializedEqualsRunTimeEvaluated) {
  Rng rng(998877);
  const unsigned threads = 32;
  for (int trial = 0; trial < 40; ++trial) {
    IntExpr e = GenIntExpr(rng, 4);
    std::uint32_t a = static_cast<std::uint32_t>(rng.NextInt(0, 500));
    std::uint32_t b = static_cast<std::uint32_t>(rng.NextInt(0, 500));
    std::string src = Format(R"(
#ifndef A_VAL
#define A_VAL a
#endif
#ifndef B_VAL
#define B_VAL b
#endif
__kernel void f(unsigned int* out, unsigned int a, unsigned int b) {
  unsigned int t = threadIdx.x;
  out[t] = %s;
}
)", e.text.c_str());
    // Rewrite variable references to the macro names.
    // (The generator uses bare a/b; substitute at the text level.)
    std::string spec_src;
    for (std::size_t i = 0; i < src.size(); ++i) {
      char c = src[i];
      bool prev_ident = i > 0 && (std::isalnum(static_cast<unsigned char>(src[i - 1])) || src[i - 1] == '_');
      bool next_ident =
          i + 1 < src.size() && (std::isalnum(static_cast<unsigned char>(src[i + 1])) || src[i + 1] == '_');
      if ((c == 'a' || c == 'b') && !prev_ident && !next_ident && i > src.find("{")) {
        spec_src += c == 'a' ? "A_VAL" : "B_VAL";
      } else {
        spec_src += c;
      }
    }

    vcuda::Context ctx(vgpu::TeslaC1060());
    auto run = [&](const kcc::CompileOptions& opts) {
      auto mod = ctx.LoadModule(spec_src, opts);
      auto d_out = ctx.Malloc(threads * 4);
      vcuda::ArgPack args;
      args.Ptr(d_out).Uint(a).Uint(b);
      ctx.Launch(*mod, "f", vgpu::Dim3(1), vgpu::Dim3(threads), args);
      auto res = vcuda::Download<std::uint32_t>(ctx, d_out, threads);
      ctx.Free(d_out);
      return res;
    };
    kcc::CompileOptions sk;
    sk.defines["A_VAL"] = Format("%uu", a);
    sk.defines["B_VAL"] = Format("%uu", b);
    auto re = run({});
    auto skr = run(sk);
    for (unsigned t = 0; t < threads; ++t) {
      ASSERT_EQ(re[t], skr[t]) << "trial " << trial << " lane " << t << " expr " << e.text;
      ASSERT_EQ(re[t], e.eval(t, a, b)) << "host mismatch, trial " << trial;
    }
  }
}

}  // namespace
}  // namespace kspec
