file(REMOVE_RECURSE
  "CMakeFiles/kccc.dir/kccc.cpp.o"
  "CMakeFiles/kccc.dir/kccc.cpp.o.d"
  "kccc"
  "kccc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kccc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
