# Empty dependencies file for kccc.
# This may be replaced when dependencies are built.
