file(REMOVE_RECURSE
  "CMakeFiles/bench_table_6_15.dir/bench_table_6_15.cpp.o"
  "CMakeFiles/bench_table_6_15.dir/bench_table_6_15.cpp.o.d"
  "bench_table_6_15"
  "bench_table_6_15.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_6_15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
