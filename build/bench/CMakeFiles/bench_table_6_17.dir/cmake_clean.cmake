file(REMOVE_RECURSE
  "CMakeFiles/bench_table_6_17.dir/bench_table_6_17.cpp.o"
  "CMakeFiles/bench_table_6_17.dir/bench_table_6_17.cpp.o.d"
  "bench_table_6_17"
  "bench_table_6_17.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_6_17.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
