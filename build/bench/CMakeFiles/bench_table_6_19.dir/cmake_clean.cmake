file(REMOVE_RECURSE
  "CMakeFiles/bench_table_6_19.dir/bench_table_6_19.cpp.o"
  "CMakeFiles/bench_table_6_19.dir/bench_table_6_19.cpp.o.d"
  "bench_table_6_19"
  "bench_table_6_19.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_6_19.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
