file(REMOVE_RECURSE
  "CMakeFiles/bench_table_6_14.dir/bench_table_6_14.cpp.o"
  "CMakeFiles/bench_table_6_14.dir/bench_table_6_14.cpp.o.d"
  "bench_table_6_14"
  "bench_table_6_14.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_6_14.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
