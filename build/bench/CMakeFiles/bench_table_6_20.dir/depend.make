# Empty dependencies file for bench_table_6_20.
# This may be replaced when dependencies are built.
