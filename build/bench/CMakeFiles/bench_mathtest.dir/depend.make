# Empty dependencies file for bench_mathtest.
# This may be replaced when dependencies are built.
