file(REMOVE_RECURSE
  "CMakeFiles/bench_mathtest.dir/bench_mathtest.cpp.o"
  "CMakeFiles/bench_mathtest.dir/bench_mathtest.cpp.o.d"
  "bench_mathtest"
  "bench_mathtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mathtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
