file(REMOVE_RECURSE
  "CMakeFiles/bench_table_6_21.dir/bench_table_6_21.cpp.o"
  "CMakeFiles/bench_table_6_21.dir/bench_table_6_21.cpp.o.d"
  "bench_table_6_21"
  "bench_table_6_21.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_6_21.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
