# Empty dependencies file for bench_fig_6_1_6_2.
# This may be replaced when dependencies are built.
