file(REMOVE_RECURSE
  "CMakeFiles/bench_tiered.dir/bench_tiered.cpp.o"
  "CMakeFiles/bench_tiered.dir/bench_tiered.cpp.o.d"
  "bench_tiered"
  "bench_tiered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tiered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
