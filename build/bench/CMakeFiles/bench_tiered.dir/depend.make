# Empty dependencies file for bench_tiered.
# This may be replaced when dependencies are built.
