file(REMOVE_RECURSE
  "CMakeFiles/bench_opencv_rowfilter.dir/bench_opencv_rowfilter.cpp.o"
  "CMakeFiles/bench_opencv_rowfilter.dir/bench_opencv_rowfilter.cpp.o.d"
  "bench_opencv_rowfilter"
  "bench_opencv_rowfilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_opencv_rowfilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
