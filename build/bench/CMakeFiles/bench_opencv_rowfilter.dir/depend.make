# Empty dependencies file for bench_opencv_rowfilter.
# This may be replaced when dependencies are built.
