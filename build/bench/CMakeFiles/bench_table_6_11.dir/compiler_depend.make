# Empty compiler generated dependencies file for bench_table_6_11.
# This may be replaced when dependencies are built.
