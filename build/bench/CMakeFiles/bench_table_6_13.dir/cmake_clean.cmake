file(REMOVE_RECURSE
  "CMakeFiles/bench_table_6_13.dir/bench_table_6_13.cpp.o"
  "CMakeFiles/bench_table_6_13.dir/bench_table_6_13.cpp.o.d"
  "bench_table_6_13"
  "bench_table_6_13.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_6_13.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
