
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/backproj/cpu_ref.cpp" "src/apps/CMakeFiles/kspec_apps.dir/backproj/cpu_ref.cpp.o" "gcc" "src/apps/CMakeFiles/kspec_apps.dir/backproj/cpu_ref.cpp.o.d"
  "/root/repo/src/apps/backproj/gpu.cpp" "src/apps/CMakeFiles/kspec_apps.dir/backproj/gpu.cpp.o" "gcc" "src/apps/CMakeFiles/kspec_apps.dir/backproj/gpu.cpp.o.d"
  "/root/repo/src/apps/backproj/problem.cpp" "src/apps/CMakeFiles/kspec_apps.dir/backproj/problem.cpp.o" "gcc" "src/apps/CMakeFiles/kspec_apps.dir/backproj/problem.cpp.o.d"
  "/root/repo/src/apps/matching/cpu_ref.cpp" "src/apps/CMakeFiles/kspec_apps.dir/matching/cpu_ref.cpp.o" "gcc" "src/apps/CMakeFiles/kspec_apps.dir/matching/cpu_ref.cpp.o.d"
  "/root/repo/src/apps/matching/gpu.cpp" "src/apps/CMakeFiles/kspec_apps.dir/matching/gpu.cpp.o" "gcc" "src/apps/CMakeFiles/kspec_apps.dir/matching/gpu.cpp.o.d"
  "/root/repo/src/apps/matching/problem.cpp" "src/apps/CMakeFiles/kspec_apps.dir/matching/problem.cpp.o" "gcc" "src/apps/CMakeFiles/kspec_apps.dir/matching/problem.cpp.o.d"
  "/root/repo/src/apps/matching/sequence.cpp" "src/apps/CMakeFiles/kspec_apps.dir/matching/sequence.cpp.o" "gcc" "src/apps/CMakeFiles/kspec_apps.dir/matching/sequence.cpp.o.d"
  "/root/repo/src/apps/piv/cpu_ref.cpp" "src/apps/CMakeFiles/kspec_apps.dir/piv/cpu_ref.cpp.o" "gcc" "src/apps/CMakeFiles/kspec_apps.dir/piv/cpu_ref.cpp.o.d"
  "/root/repo/src/apps/piv/gpu.cpp" "src/apps/CMakeFiles/kspec_apps.dir/piv/gpu.cpp.o" "gcc" "src/apps/CMakeFiles/kspec_apps.dir/piv/gpu.cpp.o.d"
  "/root/repo/src/apps/piv/problem.cpp" "src/apps/CMakeFiles/kspec_apps.dir/piv/problem.cpp.o" "gcc" "src/apps/CMakeFiles/kspec_apps.dir/piv/problem.cpp.o.d"
  "/root/repo/src/apps/piv/stream.cpp" "src/apps/CMakeFiles/kspec_apps.dir/piv/stream.cpp.o" "gcc" "src/apps/CMakeFiles/kspec_apps.dir/piv/stream.cpp.o.d"
  "/root/repo/src/apps/rowfilter/rowfilter.cpp" "src/apps/CMakeFiles/kspec_apps.dir/rowfilter/rowfilter.cpp.o" "gcc" "src/apps/CMakeFiles/kspec_apps.dir/rowfilter/rowfilter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpupf/CMakeFiles/kspec_gpupf.dir/DependInfo.cmake"
  "/root/repo/build/src/vcuda/CMakeFiles/kspec_vcuda.dir/DependInfo.cmake"
  "/root/repo/build/src/kcc/CMakeFiles/kspec_kcc.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/kspec_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/kspec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
