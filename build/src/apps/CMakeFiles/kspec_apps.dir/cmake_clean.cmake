file(REMOVE_RECURSE
  "CMakeFiles/kspec_apps.dir/backproj/cpu_ref.cpp.o"
  "CMakeFiles/kspec_apps.dir/backproj/cpu_ref.cpp.o.d"
  "CMakeFiles/kspec_apps.dir/backproj/gpu.cpp.o"
  "CMakeFiles/kspec_apps.dir/backproj/gpu.cpp.o.d"
  "CMakeFiles/kspec_apps.dir/backproj/problem.cpp.o"
  "CMakeFiles/kspec_apps.dir/backproj/problem.cpp.o.d"
  "CMakeFiles/kspec_apps.dir/matching/cpu_ref.cpp.o"
  "CMakeFiles/kspec_apps.dir/matching/cpu_ref.cpp.o.d"
  "CMakeFiles/kspec_apps.dir/matching/gpu.cpp.o"
  "CMakeFiles/kspec_apps.dir/matching/gpu.cpp.o.d"
  "CMakeFiles/kspec_apps.dir/matching/problem.cpp.o"
  "CMakeFiles/kspec_apps.dir/matching/problem.cpp.o.d"
  "CMakeFiles/kspec_apps.dir/matching/sequence.cpp.o"
  "CMakeFiles/kspec_apps.dir/matching/sequence.cpp.o.d"
  "CMakeFiles/kspec_apps.dir/piv/cpu_ref.cpp.o"
  "CMakeFiles/kspec_apps.dir/piv/cpu_ref.cpp.o.d"
  "CMakeFiles/kspec_apps.dir/piv/gpu.cpp.o"
  "CMakeFiles/kspec_apps.dir/piv/gpu.cpp.o.d"
  "CMakeFiles/kspec_apps.dir/piv/problem.cpp.o"
  "CMakeFiles/kspec_apps.dir/piv/problem.cpp.o.d"
  "CMakeFiles/kspec_apps.dir/piv/stream.cpp.o"
  "CMakeFiles/kspec_apps.dir/piv/stream.cpp.o.d"
  "CMakeFiles/kspec_apps.dir/rowfilter/rowfilter.cpp.o"
  "CMakeFiles/kspec_apps.dir/rowfilter/rowfilter.cpp.o.d"
  "libkspec_apps.a"
  "libkspec_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kspec_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
