file(REMOVE_RECURSE
  "libkspec_apps.a"
)
