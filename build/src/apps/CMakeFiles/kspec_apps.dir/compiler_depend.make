# Empty compiler generated dependencies file for kspec_apps.
# This may be replaced when dependencies are built.
