# Empty compiler generated dependencies file for kspec_gpupf.
# This may be replaced when dependencies are built.
