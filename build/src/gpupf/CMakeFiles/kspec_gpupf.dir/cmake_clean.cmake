file(REMOVE_RECURSE
  "CMakeFiles/kspec_gpupf.dir/pipeline.cpp.o"
  "CMakeFiles/kspec_gpupf.dir/pipeline.cpp.o.d"
  "libkspec_gpupf.a"
  "libkspec_gpupf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kspec_gpupf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
