file(REMOVE_RECURSE
  "libkspec_gpupf.a"
)
