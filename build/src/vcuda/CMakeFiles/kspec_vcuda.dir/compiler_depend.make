# Empty compiler generated dependencies file for kspec_vcuda.
# This may be replaced when dependencies are built.
