
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vcuda/module_cache.cpp" "src/vcuda/CMakeFiles/kspec_vcuda.dir/module_cache.cpp.o" "gcc" "src/vcuda/CMakeFiles/kspec_vcuda.dir/module_cache.cpp.o.d"
  "/root/repo/src/vcuda/tiered.cpp" "src/vcuda/CMakeFiles/kspec_vcuda.dir/tiered.cpp.o" "gcc" "src/vcuda/CMakeFiles/kspec_vcuda.dir/tiered.cpp.o.d"
  "/root/repo/src/vcuda/vcuda.cpp" "src/vcuda/CMakeFiles/kspec_vcuda.dir/vcuda.cpp.o" "gcc" "src/vcuda/CMakeFiles/kspec_vcuda.dir/vcuda.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kcc/CMakeFiles/kspec_kcc.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/kspec_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/kspec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
