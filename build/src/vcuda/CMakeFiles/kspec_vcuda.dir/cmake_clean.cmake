file(REMOVE_RECURSE
  "CMakeFiles/kspec_vcuda.dir/module_cache.cpp.o"
  "CMakeFiles/kspec_vcuda.dir/module_cache.cpp.o.d"
  "CMakeFiles/kspec_vcuda.dir/tiered.cpp.o"
  "CMakeFiles/kspec_vcuda.dir/tiered.cpp.o.d"
  "CMakeFiles/kspec_vcuda.dir/vcuda.cpp.o"
  "CMakeFiles/kspec_vcuda.dir/vcuda.cpp.o.d"
  "libkspec_vcuda.a"
  "libkspec_vcuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kspec_vcuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
