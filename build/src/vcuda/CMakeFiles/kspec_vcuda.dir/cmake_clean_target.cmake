file(REMOVE_RECURSE
  "libkspec_vcuda.a"
)
