# Empty compiler generated dependencies file for kspec_kcc.
# This may be replaced when dependencies are built.
