file(REMOVE_RECURSE
  "CMakeFiles/kspec_kcc.dir/ast.cpp.o"
  "CMakeFiles/kspec_kcc.dir/ast.cpp.o.d"
  "CMakeFiles/kspec_kcc.dir/cache_key.cpp.o"
  "CMakeFiles/kspec_kcc.dir/cache_key.cpp.o.d"
  "CMakeFiles/kspec_kcc.dir/compiler.cpp.o"
  "CMakeFiles/kspec_kcc.dir/compiler.cpp.o.d"
  "CMakeFiles/kspec_kcc.dir/fold.cpp.o"
  "CMakeFiles/kspec_kcc.dir/fold.cpp.o.d"
  "CMakeFiles/kspec_kcc.dir/lexer.cpp.o"
  "CMakeFiles/kspec_kcc.dir/lexer.cpp.o.d"
  "CMakeFiles/kspec_kcc.dir/lower.cpp.o"
  "CMakeFiles/kspec_kcc.dir/lower.cpp.o.d"
  "CMakeFiles/kspec_kcc.dir/parser.cpp.o"
  "CMakeFiles/kspec_kcc.dir/parser.cpp.o.d"
  "CMakeFiles/kspec_kcc.dir/passes.cpp.o"
  "CMakeFiles/kspec_kcc.dir/passes.cpp.o.d"
  "CMakeFiles/kspec_kcc.dir/preprocess.cpp.o"
  "CMakeFiles/kspec_kcc.dir/preprocess.cpp.o.d"
  "CMakeFiles/kspec_kcc.dir/regalloc.cpp.o"
  "CMakeFiles/kspec_kcc.dir/regalloc.cpp.o.d"
  "CMakeFiles/kspec_kcc.dir/sema.cpp.o"
  "CMakeFiles/kspec_kcc.dir/sema.cpp.o.d"
  "CMakeFiles/kspec_kcc.dir/serialize.cpp.o"
  "CMakeFiles/kspec_kcc.dir/serialize.cpp.o.d"
  "CMakeFiles/kspec_kcc.dir/unroll.cpp.o"
  "CMakeFiles/kspec_kcc.dir/unroll.cpp.o.d"
  "libkspec_kcc.a"
  "libkspec_kcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kspec_kcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
