
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kcc/ast.cpp" "src/kcc/CMakeFiles/kspec_kcc.dir/ast.cpp.o" "gcc" "src/kcc/CMakeFiles/kspec_kcc.dir/ast.cpp.o.d"
  "/root/repo/src/kcc/cache_key.cpp" "src/kcc/CMakeFiles/kspec_kcc.dir/cache_key.cpp.o" "gcc" "src/kcc/CMakeFiles/kspec_kcc.dir/cache_key.cpp.o.d"
  "/root/repo/src/kcc/compiler.cpp" "src/kcc/CMakeFiles/kspec_kcc.dir/compiler.cpp.o" "gcc" "src/kcc/CMakeFiles/kspec_kcc.dir/compiler.cpp.o.d"
  "/root/repo/src/kcc/fold.cpp" "src/kcc/CMakeFiles/kspec_kcc.dir/fold.cpp.o" "gcc" "src/kcc/CMakeFiles/kspec_kcc.dir/fold.cpp.o.d"
  "/root/repo/src/kcc/lexer.cpp" "src/kcc/CMakeFiles/kspec_kcc.dir/lexer.cpp.o" "gcc" "src/kcc/CMakeFiles/kspec_kcc.dir/lexer.cpp.o.d"
  "/root/repo/src/kcc/lower.cpp" "src/kcc/CMakeFiles/kspec_kcc.dir/lower.cpp.o" "gcc" "src/kcc/CMakeFiles/kspec_kcc.dir/lower.cpp.o.d"
  "/root/repo/src/kcc/parser.cpp" "src/kcc/CMakeFiles/kspec_kcc.dir/parser.cpp.o" "gcc" "src/kcc/CMakeFiles/kspec_kcc.dir/parser.cpp.o.d"
  "/root/repo/src/kcc/passes.cpp" "src/kcc/CMakeFiles/kspec_kcc.dir/passes.cpp.o" "gcc" "src/kcc/CMakeFiles/kspec_kcc.dir/passes.cpp.o.d"
  "/root/repo/src/kcc/preprocess.cpp" "src/kcc/CMakeFiles/kspec_kcc.dir/preprocess.cpp.o" "gcc" "src/kcc/CMakeFiles/kspec_kcc.dir/preprocess.cpp.o.d"
  "/root/repo/src/kcc/regalloc.cpp" "src/kcc/CMakeFiles/kspec_kcc.dir/regalloc.cpp.o" "gcc" "src/kcc/CMakeFiles/kspec_kcc.dir/regalloc.cpp.o.d"
  "/root/repo/src/kcc/sema.cpp" "src/kcc/CMakeFiles/kspec_kcc.dir/sema.cpp.o" "gcc" "src/kcc/CMakeFiles/kspec_kcc.dir/sema.cpp.o.d"
  "/root/repo/src/kcc/serialize.cpp" "src/kcc/CMakeFiles/kspec_kcc.dir/serialize.cpp.o" "gcc" "src/kcc/CMakeFiles/kspec_kcc.dir/serialize.cpp.o.d"
  "/root/repo/src/kcc/unroll.cpp" "src/kcc/CMakeFiles/kspec_kcc.dir/unroll.cpp.o" "gcc" "src/kcc/CMakeFiles/kspec_kcc.dir/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/kspec_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/kspec_vgpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
