file(REMOVE_RECURSE
  "libkspec_kcc.a"
)
