file(REMOVE_RECURSE
  "libkspec_tune.a"
)
