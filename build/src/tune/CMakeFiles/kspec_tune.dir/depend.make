# Empty dependencies file for kspec_tune.
# This may be replaced when dependencies are built.
