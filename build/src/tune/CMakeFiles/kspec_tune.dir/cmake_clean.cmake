file(REMOVE_RECURSE
  "CMakeFiles/kspec_tune.dir/tuner.cpp.o"
  "CMakeFiles/kspec_tune.dir/tuner.cpp.o.d"
  "libkspec_tune.a"
  "libkspec_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kspec_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
