file(REMOVE_RECURSE
  "CMakeFiles/kspec_support.dir/csv.cpp.o"
  "CMakeFiles/kspec_support.dir/csv.cpp.o.d"
  "CMakeFiles/kspec_support.dir/log.cpp.o"
  "CMakeFiles/kspec_support.dir/log.cpp.o.d"
  "CMakeFiles/kspec_support.dir/serialize.cpp.o"
  "CMakeFiles/kspec_support.dir/serialize.cpp.o.d"
  "CMakeFiles/kspec_support.dir/str.cpp.o"
  "CMakeFiles/kspec_support.dir/str.cpp.o.d"
  "libkspec_support.a"
  "libkspec_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kspec_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
