
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/csv.cpp" "src/support/CMakeFiles/kspec_support.dir/csv.cpp.o" "gcc" "src/support/CMakeFiles/kspec_support.dir/csv.cpp.o.d"
  "/root/repo/src/support/log.cpp" "src/support/CMakeFiles/kspec_support.dir/log.cpp.o" "gcc" "src/support/CMakeFiles/kspec_support.dir/log.cpp.o.d"
  "/root/repo/src/support/serialize.cpp" "src/support/CMakeFiles/kspec_support.dir/serialize.cpp.o" "gcc" "src/support/CMakeFiles/kspec_support.dir/serialize.cpp.o.d"
  "/root/repo/src/support/str.cpp" "src/support/CMakeFiles/kspec_support.dir/str.cpp.o" "gcc" "src/support/CMakeFiles/kspec_support.dir/str.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
