# Empty dependencies file for kspec_support.
# This may be replaced when dependencies are built.
