file(REMOVE_RECURSE
  "libkspec_support.a"
)
