file(REMOVE_RECURSE
  "CMakeFiles/kspec_vgpu.dir/asm.cpp.o"
  "CMakeFiles/kspec_vgpu.dir/asm.cpp.o.d"
  "CMakeFiles/kspec_vgpu.dir/cost.cpp.o"
  "CMakeFiles/kspec_vgpu.dir/cost.cpp.o.d"
  "CMakeFiles/kspec_vgpu.dir/device.cpp.o"
  "CMakeFiles/kspec_vgpu.dir/device.cpp.o.d"
  "CMakeFiles/kspec_vgpu.dir/interp.cpp.o"
  "CMakeFiles/kspec_vgpu.dir/interp.cpp.o.d"
  "CMakeFiles/kspec_vgpu.dir/isa.cpp.o"
  "CMakeFiles/kspec_vgpu.dir/isa.cpp.o.d"
  "CMakeFiles/kspec_vgpu.dir/memory.cpp.o"
  "CMakeFiles/kspec_vgpu.dir/memory.cpp.o.d"
  "libkspec_vgpu.a"
  "libkspec_vgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kspec_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
