file(REMOVE_RECURSE
  "libkspec_vgpu.a"
)
