# Empty dependencies file for kspec_vgpu.
# This may be replaced when dependencies are built.
