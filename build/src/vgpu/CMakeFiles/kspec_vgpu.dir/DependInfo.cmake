
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vgpu/asm.cpp" "src/vgpu/CMakeFiles/kspec_vgpu.dir/asm.cpp.o" "gcc" "src/vgpu/CMakeFiles/kspec_vgpu.dir/asm.cpp.o.d"
  "/root/repo/src/vgpu/cost.cpp" "src/vgpu/CMakeFiles/kspec_vgpu.dir/cost.cpp.o" "gcc" "src/vgpu/CMakeFiles/kspec_vgpu.dir/cost.cpp.o.d"
  "/root/repo/src/vgpu/device.cpp" "src/vgpu/CMakeFiles/kspec_vgpu.dir/device.cpp.o" "gcc" "src/vgpu/CMakeFiles/kspec_vgpu.dir/device.cpp.o.d"
  "/root/repo/src/vgpu/interp.cpp" "src/vgpu/CMakeFiles/kspec_vgpu.dir/interp.cpp.o" "gcc" "src/vgpu/CMakeFiles/kspec_vgpu.dir/interp.cpp.o.d"
  "/root/repo/src/vgpu/isa.cpp" "src/vgpu/CMakeFiles/kspec_vgpu.dir/isa.cpp.o" "gcc" "src/vgpu/CMakeFiles/kspec_vgpu.dir/isa.cpp.o.d"
  "/root/repo/src/vgpu/memory.cpp" "src/vgpu/CMakeFiles/kspec_vgpu.dir/memory.cpp.o" "gcc" "src/vgpu/CMakeFiles/kspec_vgpu.dir/memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/kspec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
