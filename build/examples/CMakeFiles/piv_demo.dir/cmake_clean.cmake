file(REMOVE_RECURSE
  "CMakeFiles/piv_demo.dir/piv_demo.cpp.o"
  "CMakeFiles/piv_demo.dir/piv_demo.cpp.o.d"
  "piv_demo"
  "piv_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piv_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
