# Empty dependencies file for piv_demo.
# This may be replaced when dependencies are built.
