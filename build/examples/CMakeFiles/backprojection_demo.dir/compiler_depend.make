# Empty compiler generated dependencies file for backprojection_demo.
# This may be replaced when dependencies are built.
