file(REMOVE_RECURSE
  "CMakeFiles/backprojection_demo.dir/backprojection_demo.cpp.o"
  "CMakeFiles/backprojection_demo.dir/backprojection_demo.cpp.o.d"
  "backprojection_demo"
  "backprojection_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backprojection_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
