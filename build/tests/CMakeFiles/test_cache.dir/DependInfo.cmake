
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/test_cache.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/test_cache.dir/test_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/kspec_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/tune/CMakeFiles/kspec_tune.dir/DependInfo.cmake"
  "/root/repo/build/src/gpupf/CMakeFiles/kspec_gpupf.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/kspec_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/kspec_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/kcc/CMakeFiles/kspec_kcc.dir/DependInfo.cmake"
  "/root/repo/build/src/vcuda/CMakeFiles/kspec_vcuda.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
