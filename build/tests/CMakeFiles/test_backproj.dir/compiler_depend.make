# Empty compiler generated dependencies file for test_backproj.
# This may be replaced when dependencies are built.
