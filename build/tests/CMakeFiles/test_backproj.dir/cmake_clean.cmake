file(REMOVE_RECURSE
  "CMakeFiles/test_backproj.dir/test_backproj.cpp.o"
  "CMakeFiles/test_backproj.dir/test_backproj.cpp.o.d"
  "test_backproj"
  "test_backproj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backproj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
