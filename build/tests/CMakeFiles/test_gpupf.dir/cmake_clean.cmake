file(REMOVE_RECURSE
  "CMakeFiles/test_gpupf.dir/test_gpupf.cpp.o"
  "CMakeFiles/test_gpupf.dir/test_gpupf.cpp.o.d"
  "test_gpupf"
  "test_gpupf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpupf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
