# Empty compiler generated dependencies file for test_gpupf.
# This may be replaced when dependencies are built.
