file(REMOVE_RECURSE
  "CMakeFiles/test_textures.dir/test_textures.cpp.o"
  "CMakeFiles/test_textures.dir/test_textures.cpp.o.d"
  "test_textures"
  "test_textures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_textures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
