# Empty compiler generated dependencies file for test_textures.
# This may be replaced when dependencies are built.
