file(REMOVE_RECURSE
  "CMakeFiles/test_miniptx_asm.dir/test_miniptx_asm.cpp.o"
  "CMakeFiles/test_miniptx_asm.dir/test_miniptx_asm.cpp.o.d"
  "test_miniptx_asm"
  "test_miniptx_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miniptx_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
