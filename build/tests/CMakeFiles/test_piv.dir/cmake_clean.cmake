file(REMOVE_RECURSE
  "CMakeFiles/test_piv.dir/test_piv.cpp.o"
  "CMakeFiles/test_piv.dir/test_piv.cpp.o.d"
  "test_piv"
  "test_piv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_piv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
