# Empty compiler generated dependencies file for test_piv.
# This may be replaced when dependencies are built.
