file(REMOVE_RECURSE
  "CMakeFiles/test_rowfilter.dir/test_rowfilter.cpp.o"
  "CMakeFiles/test_rowfilter.dir/test_rowfilter.cpp.o.d"
  "test_rowfilter"
  "test_rowfilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rowfilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
