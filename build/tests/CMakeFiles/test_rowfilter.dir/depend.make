# Empty dependencies file for test_rowfilter.
# This may be replaced when dependencies are built.
