file(REMOVE_RECURSE
  "CMakeFiles/test_kernelc_semantics.dir/test_kernelc_semantics.cpp.o"
  "CMakeFiles/test_kernelc_semantics.dir/test_kernelc_semantics.cpp.o.d"
  "test_kernelc_semantics"
  "test_kernelc_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernelc_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
