# Empty compiler generated dependencies file for test_kernelc_semantics.
# This may be replaced when dependencies are built.
