file(REMOVE_RECURSE
  "CMakeFiles/test_kcc_optimizer.dir/test_kcc_optimizer.cpp.o"
  "CMakeFiles/test_kcc_optimizer.dir/test_kcc_optimizer.cpp.o.d"
  "test_kcc_optimizer"
  "test_kcc_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kcc_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
