# Empty dependencies file for test_kcc_optimizer.
# This may be replaced when dependencies are built.
