file(REMOVE_RECURSE
  "CMakeFiles/test_kcc_frontend.dir/test_kcc_frontend.cpp.o"
  "CMakeFiles/test_kcc_frontend.dir/test_kcc_frontend.cpp.o.d"
  "test_kcc_frontend"
  "test_kcc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kcc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
