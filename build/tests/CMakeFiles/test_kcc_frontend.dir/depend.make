# Empty dependencies file for test_kcc_frontend.
# This may be replaced when dependencies are built.
