// Counter block for the asynchronous specialization service.
//
// The executor's accounting obeys one invariant the concurrency tests assert:
// every SubmitLoad call lands in exactly one of a new flight (which shows up
// in `completed` once it finishes), `coalesced`, or `rejected` — so once the
// executor has drained, submitted == coalesced + completed + rejected.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace kspec::serve {

// Upper edges (exclusive) of the compile-wall-time histogram buckets, in
// milliseconds; a final open-ended bucket catches everything beyond.
inline constexpr std::array<double, 6> kCompileMsBucketUpper = {1, 10, 50, 100, 250, 500};
inline constexpr std::size_t kCompileMsBuckets = kCompileMsBucketUpper.size() + 1;

struct ServeStats {
  std::uint64_t submitted = 0;  // every SubmitLoad call
  std::uint64_t coalesced = 0;  // joined an in-flight compile of the same key
  std::uint64_t completed = 0;  // flights finished: succeeded + failed + expired
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;     // compile threw; waiters rethrow on get()
  std::uint64_t expired = 0;    // deadline passed while queued; null result
  std::uint64_t rejected = 0;   // bounded queue full at submit time
  // Submissions that came in through Prewarm (scheduler-driven warm-up of a
  // shard's cache ahead of traffic). A side tally: every prewarm is also
  // counted in submitted/coalesced/rejected, so the invariant above holds
  // unchanged.
  std::uint64_t prewarmed = 0;
  std::size_t queue_depth_high_water = 0;

  // Wall time of each flight's LoadModule call (a cache hit lands in the
  // lowest bucket, a cold compile in the hundreds-of-ms ones).
  std::array<std::uint64_t, kCompileMsBuckets> compile_ms_hist{};
  double compile_millis_total = 0;

  void RecordCompileMillis(double ms);

  // Multi-line human-readable block for benches and kccc --jobs.
  std::string Render() const;
};

}  // namespace kspec::serve
