// Counter block for the asynchronous specialization service.
//
// The executor's accounting obeys one invariant the concurrency tests assert:
// every SubmitLoad call lands in exactly one of a new flight (which shows up
// in `completed` once it finishes), `coalesced`, or `rejected` — so once the
// executor has drained, submitted == coalesced + completed + rejected.
//
// The same struct serves the specialization daemon (src/netd/): per-tenant
// and per-key tallies feed its admission control and hot-key telemetry, and
// ToJson() is what `kccc --stats` ships over the wire.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace kspec::vcuda {
struct CacheStats;
}

namespace kspec::serve {

// Upper edges (exclusive) of the compile-wall-time histogram buckets, in
// milliseconds; a final open-ended bucket catches everything beyond.
inline constexpr std::array<double, 6> kCompileMsBucketUpper = {1, 10, 50, 100, 250, 500};
inline constexpr std::size_t kCompileMsBuckets = kCompileMsBucketUpper.size() + 1;

struct ServeStats {
  std::uint64_t submitted = 0;  // every SubmitLoad call
  std::uint64_t coalesced = 0;  // joined an in-flight compile of the same key
  std::uint64_t completed = 0;  // flights finished: succeeded + failed + expired
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;     // compile threw; waiters rethrow on get()
  std::uint64_t expired = 0;    // deadline passed while queued; null result
  std::uint64_t rejected = 0;   // bounded queue full at submit time
  // Submissions that came in through Prewarm (scheduler-driven warm-up of a
  // shard's cache ahead of traffic). A side tally: every prewarm is also
  // counted in submitted/coalesced/rejected, so the invariant above holds
  // unchanged.
  std::uint64_t prewarmed = 0;
  // Demand submissions that coalesced onto a flight Prewarm originated: the
  // prewarm landed before (or while) traffic wanted the key, which is the
  // telemetry the daemon's hot-key predictor is scored on.
  std::uint64_t prewarm_hits = 0;
  // Daemon-level tallies (the executor itself never sets these; the daemon
  // copies its executor's stats and fills them in from its own accounting):
  // coalesced flights whose joiner belonged to a different tenant/process
  // than the flight's originator, and submissions parked or bounced by
  // per-tenant admission control.
  std::uint64_t cross_process_coalesced = 0;
  std::uint64_t throttled = 0;
  std::size_t queue_depth_high_water = 0;

  // Wall time of each flight's LoadModule call (a cache hit lands in the
  // lowest bucket, a cold compile in the hundreds-of-ms ones).
  std::array<std::uint64_t, kCompileMsBuckets> compile_ms_hist{};
  double compile_millis_total = 0;

  struct TenantCounters {
    std::uint64_t submitted = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t rejected = 0;
    std::uint64_t throttled = 0;
  };
  // Keyed by CompileRequest::tenant ("" = anonymous local callers).
  std::map<std::string, TenantCounters> tenants;

  // Submissions per specialization key, keyed by the key's hash id
  // ("k%016llx", matching the artifact file stem). std::map keeps the JSON
  // and rendered output deterministic.
  std::map<std::string, std::uint64_t> key_requests;

  void RecordCompileMillis(double ms);

  // Multi-line human-readable block for benches and kccc --jobs.
  std::string Render() const;

  // Single-line JSON object carrying every counter, the histogram, and the
  // per-tenant / per-key maps; what the daemon answers kStatsReq with.
  std::string ToJson() const;
};

// The service report benches and kccc print after a drain: the ServeStats
// block plus the owning context's cache counters on one extra line. One
// implementation so bench_serve, bench_netd, and kccc stay in sync.
std::string RenderServiceReport(const ServeStats& stats, const vcuda::CacheStats& cache);

}  // namespace kspec::serve
