#include "serve/serve_stats.hpp"

#include "support/str.hpp"

namespace kspec::serve {

void ServeStats::RecordCompileMillis(double ms) {
  compile_millis_total += ms;
  std::size_t bucket = 0;
  while (bucket < kCompileMsBucketUpper.size() && ms >= kCompileMsBucketUpper[bucket]) {
    ++bucket;
  }
  ++compile_ms_hist[bucket];
}

std::string ServeStats::Render() const {
  std::string out = Format(
      "serve: submitted=%llu coalesced=%llu completed=%llu (ok=%llu failed=%llu expired=%llu) "
      "rejected=%llu prewarmed=%llu queue-high-water=%zu\n",
      static_cast<unsigned long long>(submitted), static_cast<unsigned long long>(coalesced),
      static_cast<unsigned long long>(completed), static_cast<unsigned long long>(succeeded),
      static_cast<unsigned long long>(failed), static_cast<unsigned long long>(expired),
      static_cast<unsigned long long>(rejected), static_cast<unsigned long long>(prewarmed),
      queue_depth_high_water);
  out += "serve: compile wall ms:";
  double lo = 0;
  for (std::size_t i = 0; i < kCompileMsBuckets; ++i) {
    if (i < kCompileMsBucketUpper.size()) {
      out += Format(" [%g,%g)=%llu", lo, kCompileMsBucketUpper[i],
                    static_cast<unsigned long long>(compile_ms_hist[i]));
      lo = kCompileMsBucketUpper[i];
    } else {
      out += Format(" [%g,inf)=%llu", lo, static_cast<unsigned long long>(compile_ms_hist[i]));
    }
  }
  out += Format("  total=%.1f ms\n", compile_millis_total);
  return out;
}

}  // namespace kspec::serve
