#include "serve/serve_stats.hpp"

#include <algorithm>

#include "support/str.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec::serve {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += Format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void ServeStats::RecordCompileMillis(double ms) {
  compile_millis_total += ms;
  std::size_t bucket = 0;
  while (bucket < kCompileMsBucketUpper.size() && ms >= kCompileMsBucketUpper[bucket]) {
    ++bucket;
  }
  ++compile_ms_hist[bucket];
}

std::string ServeStats::Render() const {
  std::string out = Format(
      "serve: submitted=%llu coalesced=%llu completed=%llu (ok=%llu failed=%llu expired=%llu) "
      "rejected=%llu prewarmed=%llu queue-high-water=%zu\n",
      static_cast<unsigned long long>(submitted), static_cast<unsigned long long>(coalesced),
      static_cast<unsigned long long>(completed), static_cast<unsigned long long>(succeeded),
      static_cast<unsigned long long>(failed), static_cast<unsigned long long>(expired),
      static_cast<unsigned long long>(rejected), static_cast<unsigned long long>(prewarmed),
      queue_depth_high_water);
  if (prewarm_hits || cross_process_coalesced || throttled) {
    out += Format("serve: prewarm-hits=%llu cross-process-coalesced=%llu throttled=%llu\n",
                  static_cast<unsigned long long>(prewarm_hits),
                  static_cast<unsigned long long>(cross_process_coalesced),
                  static_cast<unsigned long long>(throttled));
  }
  out += "serve: compile wall ms:";
  double lo = 0;
  for (std::size_t i = 0; i < kCompileMsBuckets; ++i) {
    if (i < kCompileMsBucketUpper.size()) {
      out += Format(" [%g,%g)=%llu", lo, kCompileMsBucketUpper[i],
                    static_cast<unsigned long long>(compile_ms_hist[i]));
      lo = kCompileMsBucketUpper[i];
    } else {
      out += Format(" [%g,inf)=%llu", lo, static_cast<unsigned long long>(compile_ms_hist[i]));
    }
  }
  out += Format("  total=%.1f ms\n", compile_millis_total);

  // Per-tenant lines only when someone identified themselves: local benches
  // with anonymous traffic keep the compact three-line block above.
  const bool named_tenants =
      !tenants.empty() && !(tenants.size() == 1 && tenants.begin()->first.empty());
  if (named_tenants) {
    for (const auto& [name, t] : tenants) {
      out += Format("serve: tenant %-12s submitted=%llu coalesced=%llu rejected=%llu "
                    "throttled=%llu\n",
                    name.empty() ? "(anonymous)" : name.c_str(),
                    static_cast<unsigned long long>(t.submitted),
                    static_cast<unsigned long long>(t.coalesced),
                    static_cast<unsigned long long>(t.rejected),
                    static_cast<unsigned long long>(t.throttled));
    }
  }
  if (!key_requests.empty()) {
    const auto hottest = std::max_element(
        key_requests.begin(), key_requests.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    out += Format("serve: %zu distinct keys, hottest %s x%llu\n", key_requests.size(),
                  hottest->first.c_str(), static_cast<unsigned long long>(hottest->second));
  }
  return out;
}

std::string ServeStats::ToJson() const {
  std::string out = Format(
      "{\"submitted\":%llu,\"coalesced\":%llu,\"completed\":%llu,\"succeeded\":%llu,"
      "\"failed\":%llu,\"expired\":%llu,\"rejected\":%llu,\"prewarmed\":%llu,"
      "\"prewarm_hits\":%llu,\"cross_process_coalesced\":%llu,\"throttled\":%llu,"
      "\"queue_depth_high_water\":%zu,\"compile_millis_total\":%.3f",
      static_cast<unsigned long long>(submitted), static_cast<unsigned long long>(coalesced),
      static_cast<unsigned long long>(completed), static_cast<unsigned long long>(succeeded),
      static_cast<unsigned long long>(failed), static_cast<unsigned long long>(expired),
      static_cast<unsigned long long>(rejected), static_cast<unsigned long long>(prewarmed),
      static_cast<unsigned long long>(prewarm_hits),
      static_cast<unsigned long long>(cross_process_coalesced),
      static_cast<unsigned long long>(throttled), queue_depth_high_water, compile_millis_total);
  out += ",\"compile_ms_hist\":[";
  for (std::size_t i = 0; i < kCompileMsBuckets; ++i) {
    if (i) out += ",";
    out += Format("%llu", static_cast<unsigned long long>(compile_ms_hist[i]));
  }
  out += "],\"tenants\":{";
  bool first = true;
  for (const auto& [name, t] : tenants) {
    if (!first) out += ",";
    first = false;
    out += Format("\"%s\":{\"submitted\":%llu,\"coalesced\":%llu,\"rejected\":%llu,"
                  "\"throttled\":%llu}",
                  JsonEscape(name).c_str(), static_cast<unsigned long long>(t.submitted),
                  static_cast<unsigned long long>(t.coalesced),
                  static_cast<unsigned long long>(t.rejected),
                  static_cast<unsigned long long>(t.throttled));
  }
  out += "},\"keys\":{";
  first = true;
  for (const auto& [id, count] : key_requests) {
    if (!first) out += ",";
    first = false;
    out += Format("\"%s\":%llu", JsonEscape(id).c_str(),
                  static_cast<unsigned long long>(count));
  }
  out += "}}";
  return out;
}

std::string RenderServiceReport(const ServeStats& stats, const vcuda::CacheStats& cache) {
  std::string out = stats.Render();
  out += Format("cache: %zu compiled, %zu warm hits, %zu disk hits, %zu adopted\n", cache.misses,
                cache.hits, cache.disk_hits, cache.adopted);
  return out;
}

}  // namespace kspec::serve
