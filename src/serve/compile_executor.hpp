// The asynchronous specialization service: a bounded worker pool compiling
// (source, CompileOptions, device) requests off the launch path.
//
// The dissertation's Section 4.3 trade-off — run-time compilation costs
// hundreds of milliseconds and must be amortized — is paid here in the
// background instead of inline in Context::LoadModule. KLARAPTOR and the
// parametric-kernel literature frame per-parameter-set code generation as a
// service invoked at launch time; this is that service:
//
//   * SubmitLoad returns a shared future immediately; worker threads run the
//     compile through the Context's two-tier cache.
//   * Single-flight coalescing, keyed on kcc::ModuleCacheKey (plus the
//     context's identity): N concurrent requests for the same specialization
//     trigger exactly one compile, and the other N-1 share its future.
//   * Bounded queue with backpressure: at the cap, SubmitLoad rejects and the
//     caller falls back (serve the RE build, compile inline, skip).
//   * Per-request deadlines: a flight still queued when its deadline passes
//     resolves to a null module instead of burning a worker.
//   * A ServeStats counter block, including a compile-wall-time histogram.
//
// Thread-safe throughout; Contexts attach it with set_async_service to make
// LoadModuleAsync, TieredLoader promotion, and GPU-PF re-specialization
// non-blocking.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/serve_stats.hpp"
#include "vcuda/async.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec::serve {

struct ExecutorOptions {
  // Worker threads compiling in parallel. Only distinct keys occupy workers;
  // same-key requests coalesce onto one flight.
  int workers = 2;
  // Maximum flights waiting for a worker (running flights don't count). At
  // the cap SubmitLoad returns kRejected.
  std::size_t max_queue = 64;
};

// Not final: netd::RemoteCompileService subclasses it, overriding only
// ExecuteFlight so every coalescing/backpressure/deadline guarantee here is
// inherited rather than reimplemented.
class CompileExecutor : public vcuda::AsyncCompileService {
 public:
  explicit CompileExecutor(ExecutorOptions options = {});
  // Runs Shutdown(). Subclasses overriding ExecuteFlight MUST call Shutdown()
  // from their own destructor: by the time the base destructor runs, the
  // derived object is gone and a still-live worker would call the base
  // ExecuteFlight (or worse) mid-teardown.
  ~CompileExecutor() override;

  CompileExecutor(const CompileExecutor&) = delete;
  CompileExecutor& operator=(const CompileExecutor&) = delete;

  vcuda::SubmitResult SubmitLoad(vcuda::Context& ctx,
                                 const vcuda::CompileRequest& req) override;

  // Scheduler-driven warm-up: submits `req` so the specialization lands in
  // `ctx`'s module cache before traffic needs it (sched::FleetScheduler uses
  // this to seed cache affinity on a chosen shard). Identical semantics to
  // SubmitLoad — coalescing, backpressure, deadlines — plus a `prewarmed`
  // tally in ServeStats. Returns the submit result so callers can observe
  // rejection and retry or fall back to a blocking load.
  vcuda::SubmitResult Prewarm(vcuda::Context& ctx, const vcuda::CompileRequest& req);

  // Blocks until every flight accepted so far has completed (the queue is
  // empty and no worker is mid-compile).
  void Drain();

  // Stops accepting work (further submits are rejected), completes the
  // already-accepted flights, and joins the workers. Idempotent; the
  // destructor runs it.
  void Shutdown();

  ServeStats stats() const;
  std::size_t queue_depth() const;

 protected:
  // Produces the module for one accepted flight. Runs on a worker thread with
  // no executor lock held; a throw propagates to every waiter through the
  // flight's future. The base implementation is the local path —
  // ctx.LoadModule through the context's two-tier cache. RemoteCompileService
  // overrides it to consult the shared artifact store and the daemon first.
  virtual std::shared_ptr<vcuda::Module> ExecuteFlight(vcuda::Context& ctx,
                                                       const vcuda::CompileRequest& req);

 private:
  struct Flight {
    vcuda::Context* ctx = nullptr;
    vcuda::CompileRequest req;
    std::string key;
    bool prewarm = false;  // originated by Prewarm (for prewarm_hits scoring)
    std::promise<std::shared_ptr<vcuda::Module>> promise;
    vcuda::ModuleFuture future;
  };

  // Shared body of SubmitLoad and Prewarm.
  vcuda::SubmitResult Submit(vcuda::Context& ctx, const vcuda::CompileRequest& req,
                             bool prewarm);
  void WorkerLoop();
  // Fulfills the flight's promise, then retires it from the in-flight map and
  // updates counters. `error`/`ms` describe the compile outcome; an expired
  // flight passes `expired`.
  void Finish(const std::shared_ptr<Flight>& flight, std::shared_ptr<vcuda::Module> module,
              std::exception_ptr error, double compile_ms, bool expired);

  ExecutorOptions options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for queue items
  std::condition_variable idle_cv_;  // Drain waits for an empty backlog
  bool stopping_ = false;
  std::size_t active_ = 0;  // flights currently on a worker
  std::deque<std::shared_ptr<Flight>> queue_;
  // key -> flight, from submit until the flight's promise is fulfilled; this
  // map is what makes coalescing single-flight.
  std::unordered_map<std::string, std::shared_ptr<Flight>> in_flight_;
  ServeStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace kspec::serve
