#include "serve/compile_executor.hpp"

#include <algorithm>
#include <chrono>

#include "kcc/cache_key.hpp"
#include "support/log.hpp"
#include "support/str.hpp"
#include "support/timer.hpp"

namespace kspec::serve {

CompileExecutor::CompileExecutor(ExecutorOptions options) : options_(options) {
  if (options_.workers < 1) options_.workers = 1;
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CompileExecutor::~CompileExecutor() { Shutdown(); }

vcuda::SubmitResult CompileExecutor::SubmitLoad(vcuda::Context& ctx,
                                                const vcuda::CompileRequest& req) {
  return Submit(ctx, req, /*prewarm=*/false);
}

vcuda::SubmitResult CompileExecutor::Prewarm(vcuda::Context& ctx,
                                             const vcuda::CompileRequest& req) {
  return Submit(ctx, req, /*prewarm=*/true);
}

vcuda::SubmitResult CompileExecutor::Submit(vcuda::Context& ctx,
                                            const vcuda::CompileRequest& req, bool prewarm) {
  const kcc::ModuleCacheKey mkey =
      kcc::ModuleCacheKey::Make(req.source, req.opts, ctx.device().name);
  // Two Contexts may share one executor, and equal sources/options targeting
  // different contexts must not coalesce (each context owns its cache and its
  // Module instances), so the flight key prefixes the canonical module key
  // with the context's identity.
  std::string key = Format("%p|", static_cast<void*>(&ctx)) + mkey.CanonicalText();
  const std::string key_id = Format("k%016llx", static_cast<unsigned long long>(mkey.Hash()));

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.submitted;
  ++stats_.key_requests[key_id];
  ServeStats::TenantCounters& tenant = stats_.tenants[req.tenant];
  ++tenant.submitted;
  if (auto it = in_flight_.find(key); it != in_flight_.end()) {
    ++stats_.coalesced;
    ++tenant.coalesced;
    if (prewarm) ++stats_.prewarmed;
    // A demand request landing on a prewarm-originated flight is the prewarm
    // paying off — the telemetry the daemon's hot-key predictor is scored on.
    if (!prewarm && it->second->prewarm) ++stats_.prewarm_hits;
    return {vcuda::SubmitStatus::kCoalesced, it->second->future};
  }
  if (stopping_ || queue_.size() >= options_.max_queue) {
    ++stats_.rejected;
    ++tenant.rejected;
    return {vcuda::SubmitStatus::kRejected, {}};
  }
  auto flight = std::make_shared<Flight>();
  flight->ctx = &ctx;
  flight->req = req;
  flight->key = std::move(key);
  flight->prewarm = prewarm;
  flight->future = flight->promise.get_future().share();
  in_flight_.emplace(flight->key, flight);
  queue_.push_back(flight);
  stats_.queue_depth_high_water = std::max(stats_.queue_depth_high_water, queue_.size());
  if (prewarm) ++stats_.prewarmed;
  work_cv_.notify_one();
  return {vcuda::SubmitStatus::kScheduled, flight->future};
}

void CompileExecutor::Finish(const std::shared_ptr<Flight>& flight,
                             std::shared_ptr<vcuda::Module> module, std::exception_ptr error,
                             double compile_ms, bool expired) {
  // Fulfill before retiring the flight so that anything woken by Drain (which
  // waits on the backlog counters updated below) observes a ready future. A
  // submit landing between fulfillment and retirement coalesces onto an
  // already-ready future, which is harmless.
  if (error) {
    flight->promise.set_exception(error);
  } else {
    flight->promise.set_value(std::move(module));
  }
  std::lock_guard<std::mutex> lock(mu_);
  in_flight_.erase(flight->key);
  ++stats_.completed;
  if (expired) {
    ++stats_.expired;
  } else if (error) {
    ++stats_.failed;
    stats_.RecordCompileMillis(compile_ms);
  } else {
    ++stats_.succeeded;
    stats_.RecordCompileMillis(compile_ms);
  }
  --active_;
  if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
}

void CompileExecutor::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Flight> flight;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with the backlog drained
      flight = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }

    if (flight->req.HasDeadline() && std::chrono::steady_clock::now() > flight->req.deadline) {
      // Expired while queued: don't burn a worker on a result nobody can use
      // in time. The null module tells waiters to keep their fallback.
      Finish(flight, nullptr, nullptr, 0, /*expired=*/true);
      continue;
    }

    WallTimer timer;
    std::shared_ptr<vcuda::Module> module;
    std::exception_ptr error;
    try {
      module = ExecuteFlight(*flight->ctx, flight->req);
    } catch (...) {
      error = std::current_exception();
      KSPEC_LOG_WARN << "serve: background compile failed for a flight — waiters will rethrow";
    }
    Finish(flight, std::move(module), error, timer.ElapsedMillis(), /*expired=*/false);
  }
}

std::shared_ptr<vcuda::Module> CompileExecutor::ExecuteFlight(vcuda::Context& ctx,
                                                              const vcuda::CompileRequest& req) {
  return ctx.LoadModule(req.source, req.opts);
}

void CompileExecutor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void CompileExecutor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    work_cv_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

ServeStats CompileExecutor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t CompileExecutor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace kspec::serve
