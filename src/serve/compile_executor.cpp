#include "serve/compile_executor.hpp"

#include <algorithm>
#include <chrono>

#include "kcc/cache_key.hpp"
#include "support/log.hpp"
#include "support/str.hpp"
#include "support/timer.hpp"

namespace kspec::serve {

namespace {

// Two Contexts may share one executor, and equal sources/options targeting
// different contexts must not coalesce (each context owns its cache and its
// Module instances), so the flight key prefixes the canonical module key with
// the context's identity.
std::string FlightKey(vcuda::Context& ctx, const vcuda::CompileRequest& req) {
  return Format("%p|", static_cast<void*>(&ctx)) +
         kcc::ModuleCacheKey::Make(req.source, req.opts, ctx.device().name).CanonicalText();
}

}  // namespace

CompileExecutor::CompileExecutor(ExecutorOptions options) : options_(options) {
  if (options_.workers < 1) options_.workers = 1;
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CompileExecutor::~CompileExecutor() { Shutdown(); }

vcuda::SubmitResult CompileExecutor::SubmitLoad(vcuda::Context& ctx,
                                                const vcuda::CompileRequest& req) {
  std::string key = FlightKey(ctx, req);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.submitted;
  if (auto it = in_flight_.find(key); it != in_flight_.end()) {
    ++stats_.coalesced;
    return {vcuda::SubmitStatus::kCoalesced, it->second->future};
  }
  if (stopping_ || queue_.size() >= options_.max_queue) {
    ++stats_.rejected;
    return {vcuda::SubmitStatus::kRejected, {}};
  }
  auto flight = std::make_shared<Flight>();
  flight->ctx = &ctx;
  flight->req = req;
  flight->key = std::move(key);
  flight->future = flight->promise.get_future().share();
  in_flight_.emplace(flight->key, flight);
  queue_.push_back(flight);
  stats_.queue_depth_high_water = std::max(stats_.queue_depth_high_water, queue_.size());
  work_cv_.notify_one();
  return {vcuda::SubmitStatus::kScheduled, flight->future};
}

vcuda::SubmitResult CompileExecutor::Prewarm(vcuda::Context& ctx,
                                             const vcuda::CompileRequest& req) {
  vcuda::SubmitResult r = SubmitLoad(ctx, req);
  if (r.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.prewarmed;
  }
  return r;
}

void CompileExecutor::Finish(const std::shared_ptr<Flight>& flight,
                             std::shared_ptr<vcuda::Module> module, std::exception_ptr error,
                             double compile_ms, bool expired) {
  // Fulfill before retiring the flight so that anything woken by Drain (which
  // waits on the backlog counters updated below) observes a ready future. A
  // submit landing between fulfillment and retirement coalesces onto an
  // already-ready future, which is harmless.
  if (error) {
    flight->promise.set_exception(error);
  } else {
    flight->promise.set_value(std::move(module));
  }
  std::lock_guard<std::mutex> lock(mu_);
  in_flight_.erase(flight->key);
  ++stats_.completed;
  if (expired) {
    ++stats_.expired;
  } else if (error) {
    ++stats_.failed;
    stats_.RecordCompileMillis(compile_ms);
  } else {
    ++stats_.succeeded;
    stats_.RecordCompileMillis(compile_ms);
  }
  --active_;
  if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
}

void CompileExecutor::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Flight> flight;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with the backlog drained
      flight = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }

    if (flight->req.HasDeadline() && std::chrono::steady_clock::now() > flight->req.deadline) {
      // Expired while queued: don't burn a worker on a result nobody can use
      // in time. The null module tells waiters to keep their fallback.
      Finish(flight, nullptr, nullptr, 0, /*expired=*/true);
      continue;
    }

    WallTimer timer;
    std::shared_ptr<vcuda::Module> module;
    std::exception_ptr error;
    try {
      module = flight->ctx->LoadModule(flight->req.source, flight->req.opts);
    } catch (...) {
      error = std::current_exception();
      KSPEC_LOG_WARN << "serve: background compile failed for a flight — waiters will rethrow";
    }
    Finish(flight, std::move(module), error, timer.ElapsedMillis(), /*expired=*/false);
  }
}

void CompileExecutor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void CompileExecutor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    work_cv_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

ServeStats CompileExecutor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t CompileExecutor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace kspec::serve
