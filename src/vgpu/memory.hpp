// Simulated device global memory with a simple allocator and bounds checking.
//
// Device pointers are plain 64-bit offsets into one flat arena, biased so a
// null pointer never aliases a live allocation. The host reads and writes
// through typed spans, mirroring cudaMemcpy semantics in the driver layer.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <vector>

#include "support/status.hpp"

namespace kspec::vgpu {

using DevPtr = std::uint64_t;

class GlobalMemory {
 public:
  explicit GlobalMemory(std::uint64_t capacity_bytes);

  // Allocates `bytes` (16-byte aligned); throws DeviceError when exhausted.
  DevPtr Alloc(std::uint64_t bytes);

  // Frees an allocation returned by Alloc (exact pointer required).
  void Free(DevPtr ptr);

  std::uint64_t bytes_in_use() const { return in_use_; }
  // Number of live (not yet freed) allocations — the leak-regression hook:
  // a well-behaved driver leaves this at zero, including on throwing paths.
  std::size_t allocation_count() const { return live_.size(); }
  std::uint64_t capacity() const { return capacity_; }

  // Host <-> device transfers.
  void Write(DevPtr dst, const void* src, std::uint64_t bytes);
  void Read(void* dst, DevPtr src, std::uint64_t bytes) const;
  void Memset(DevPtr dst, unsigned char value, std::uint64_t bytes);

  template <typename T>
  void WriteSpan(DevPtr dst, std::span<const T> src) {
    Write(dst, src.data(), src.size_bytes());
  }
  template <typename T>
  void ReadSpan(DevPtr src, std::span<T> dst) const {
    Read(dst.data(), src, dst.size_bytes());
  }

  // Raw access for the interpreter. Validates [addr, addr+bytes) is inside a
  // live allocation region.
  unsigned char* Access(DevPtr addr, std::uint64_t bytes);
  const unsigned char* Access(DevPtr addr, std::uint64_t bytes) const;

 private:
  void CheckRange(DevPtr addr, std::uint64_t bytes) const;

  static constexpr DevPtr kBase = 0x10000;  // null-pointer guard region
  std::uint64_t capacity_;
  std::uint64_t bump_;
  std::uint64_t in_use_ = 0;
  std::vector<unsigned char> data_;
  std::map<DevPtr, std::uint64_t> live_;  // ptr -> size
  std::vector<std::pair<DevPtr, std::uint64_t>> free_list_;
};

}  // namespace kspec::vgpu
