// Simulated device global memory with a simple allocator and bounds checking.
//
// Device pointers are plain 64-bit offsets into one flat arena, biased so a
// null pointer never aliases a live allocation. The host reads and writes
// through typed spans, mirroring cudaMemcpy semantics in the driver layer.
//
// Thread-safety contract (the parallel execution engine's lock plan):
//   - Alloc/Free/getters serialize on one mutex; the arena is *reserved* at
//     full capacity up front, so growing it never moves data_ and a worker
//     holding a raw pointer across an Alloc on another thread stays valid.
//   - Access/CheckRange are the lane-load hot path and take the lock only on
//     a cache miss: each thread keeps a small thread-local table of recently
//     hit allocations, invalidated by a generation counter that Alloc/Free
//     bump. A hit costs a few compares and no atomics beyond two relaxed
//     loads.
//   - Accesses are validated against the *live allocation* containing them,
//     not just the arena, so use-after-free and inter-allocation overruns
//     surface as DeviceError even when the address lands inside the heap.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "support/status.hpp"

namespace kspec::vgpu {

using DevPtr = std::uint64_t;

class GlobalMemory {
 public:
  explicit GlobalMemory(std::uint64_t capacity_bytes);

  // Allocates `bytes` (256-byte aligned, like cuMemAlloc); throws
  // DeviceError when exhausted.
  DevPtr Alloc(std::uint64_t bytes);

  // Frees an allocation returned by Alloc (exact pointer required).
  void Free(DevPtr ptr);

  std::uint64_t bytes_in_use() const;
  // Number of live (not yet freed) allocations — the leak-regression hook:
  // a well-behaved driver leaves this at zero, including on throwing paths.
  std::size_t allocation_count() const;
  // High-water mark of bytes_in_use over the arena's lifetime.
  std::uint64_t peak_bytes_in_use() const;
  std::uint64_t capacity() const { return capacity_; }

  // Host <-> device transfers.
  void Write(DevPtr dst, const void* src, std::uint64_t bytes);
  void Read(void* dst, DevPtr src, std::uint64_t bytes) const;
  void Memset(DevPtr dst, unsigned char value, std::uint64_t bytes);

  template <typename T>
  void WriteSpan(DevPtr dst, std::span<const T> src) {
    Write(dst, src.data(), src.size_bytes());
  }
  template <typename T>
  void ReadSpan(DevPtr src, std::span<T> dst) const {
    Read(dst.data(), src, dst.size_bytes());
  }

  // Raw access for the interpreter. Validates that [addr, addr+bytes) lies
  // inside one live allocation.
  unsigned char* Access(DevPtr addr, std::uint64_t bytes);
  const unsigned char* Access(DevPtr addr, std::uint64_t bytes) const;

  // Like Access, but returns nullptr instead of throwing when the range does
  // not sit inside a single live allocation. The interpreter resolves a whole
  // warp's address span with one call and falls back to per-lane Access (for
  // the precise error) when this fails.
  const unsigned char* TryAccess(DevPtr addr, std::uint64_t bytes) const;

 private:
  struct CacheEntry {  // one thread-local recently-hit allocation
    const GlobalMemory* owner = nullptr;
    std::uint64_t gen = 0;
    DevPtr base = 0;
    std::uint64_t end = 0;  // base + size
  };
  // Looks `addr` up in live_ under the lock, fills a cache slot, and returns
  // the containing allocation's [base, end) — or {0, 0} when none contains it.
  std::pair<DevPtr, std::uint64_t> LookupSlow(DevPtr addr) const;
  const unsigned char* CheckedPointer(DevPtr addr, std::uint64_t bytes) const;
  [[noreturn]] void ThrowBadAccess(DevPtr addr, std::uint64_t bytes) const;

  static constexpr DevPtr kBase = 0x10000;  // null-pointer guard region
  std::uint64_t capacity_;

  mutable std::mutex mu_;  // guards the allocator state and data_ growth
  std::uint64_t bump_;
  std::uint64_t in_use_ = 0;
  std::uint64_t peak_in_use_ = 0;
  std::vector<unsigned char> data_;
  std::map<DevPtr, std::uint64_t> live_;  // ptr -> size
  std::vector<std::pair<DevPtr, std::uint64_t>> free_list_;

  // Committed arena bytes (== data_.size()), readable without the lock.
  std::atomic<std::uint64_t> limit_{0};
  // Bumped by every Alloc/Free; stale thread-local cache entries miss.
  mutable std::atomic<std::uint64_t> alloc_gen_{1};
};

}  // namespace kspec::vgpu
