#include "vgpu/tier.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "support/math.hpp"
#include "support/status.hpp"
#include "support/str.hpp"
#include "vgpu/cost.hpp"

namespace kspec::vgpu {

namespace {

ExecutionTier g_tier_override = ExecutionTier::kAuto;
std::atomic<bool> g_has_tier_override{false};

ExecPolicy g_policy_override;
std::atomic<bool> g_has_policy_override{false};

ShapeMode g_shape_override = ShapeMode::kAuto;
std::atomic<bool> g_has_shape_override{false};

// VGPU_WORKERS: 1 = force serial, N > 1 = force parallel with N workers,
// 0/unset/garbage = no override. Parsed once.
const ExecPolicy& EnvPolicy() {
  static const ExecPolicy env = [] {
    ExecPolicy p;  // workers == 0 doubles as the "not set" sentinel
    if (const char* s = std::getenv("VGPU_WORKERS"); s && *s) {
      const long v = std::strtol(s, nullptr, 10);
      if (v == 1) {
        p.mode = ExecMode::kSerial;
        p.workers = 1;
      } else if (v > 1) {
        p.mode = ExecMode::kParallel;
        p.workers = static_cast<unsigned>(v);
      }
    }
    return p;
  }();
  return env;
}

}  // namespace

const char* TierName(ExecutionTier tier) {
  switch (tier) {
    case ExecutionTier::kAuto: return "auto";
    case ExecutionTier::kInterp: return "interp";
    case ExecutionTier::kDecoded: return "decoded";
    case ExecutionTier::kNative: return "native";
  }
  return "?";
}

bool ParseTier(std::string_view text, ExecutionTier* out) {
  if (text == "auto") *out = ExecutionTier::kAuto;
  else if (text == "interp") *out = ExecutionTier::kInterp;
  else if (text == "decoded") *out = ExecutionTier::kDecoded;
  else if (text == "native") *out = ExecutionTier::kNative;
  else return false;
  return true;
}

ExecutionTier EnvTier() {
  static const ExecutionTier env = [] {
    ExecutionTier t = ExecutionTier::kAuto;  // kAuto doubles as "not set"
    if (const char* s = std::getenv("VGPU_TIER"); s && *s) ParseTier(s, &t);
    return t;
  }();
  return env;
}

const char* ShapeModeName(ShapeMode mode) {
  switch (mode) {
    case ShapeMode::kOff: return "off";
    case ShapeMode::kAuto: return "auto";
    case ShapeMode::kEager: return "eager";
  }
  return "?";
}

bool ParseShapeMode(std::string_view text, ShapeMode* out) {
  if (text == "off") *out = ShapeMode::kOff;
  else if (text == "auto") *out = ShapeMode::kAuto;
  else if (text == "eager") *out = ShapeMode::kEager;
  else return false;
  return true;
}

ShapeMode EnvShapeMode() {
  static const ShapeMode env = [] {
    ShapeMode m = ShapeMode::kAuto;  // kAuto doubles as "not set"
    if (const char* s = std::getenv("KSPEC_NATIVE_SHAPE"); s && *s) ParseShapeMode(s, &m);
    return m;
  }();
  return env;
}

void SetShapeModeOverride(const ShapeMode* mode) {
  if (mode) {
    g_shape_override = *mode;
    g_has_shape_override.store(true, std::memory_order_release);
  } else {
    g_has_shape_override.store(false, std::memory_order_release);
  }
}

ShapeMode ResolveShapeMode(ShapeMode fallback) {
  if (g_has_shape_override.load(std::memory_order_acquire)) return g_shape_override;
  if (EnvShapeMode() != ShapeMode::kAuto) return EnvShapeMode();
  return fallback;
}

void SetTierOverride(const ExecutionTier* tier) {
  if (tier) {
    g_tier_override = *tier;
    g_has_tier_override.store(true, std::memory_order_release);
  } else {
    g_has_tier_override.store(false, std::memory_order_release);
  }
}

ExecutionTier ResolveTier(ExecutionTier request, ExecutionTier context_default) {
  if (g_has_tier_override.load(std::memory_order_acquire)) return g_tier_override;
  if (EnvTier() != ExecutionTier::kAuto) return EnvTier();
  if (request != ExecutionTier::kAuto) return request;
  return context_default;
}

void SetExecPolicyOverride(const ExecPolicy* policy) {
  if (policy) {
    g_policy_override = *policy;
    g_has_policy_override.store(true, std::memory_order_release);
  } else {
    g_has_policy_override.store(false, std::memory_order_release);
  }
}

ExecPolicy ResolveExecPolicy(const ExecPolicy& requested) {
  ExecPolicy pol = requested;
  if (EnvPolicy().workers > 0) pol = EnvPolicy();
  if (g_has_policy_override.load(std::memory_order_acquire)) pol = g_policy_override;
  return pol;
}

LaunchShell PrepareLaunch(const DeviceProfile& dev, const LaunchConfig& cfg,
                          int reg_count, unsigned static_smem_bytes,
                          bool has_global_atomic) {
  if (cfg.block.Count() == 0 || cfg.grid.Count() == 0) {
    throw DeviceError("empty grid or block");
  }
  if (cfg.block.Count() > dev.max_threads_per_block) {
    throw DeviceError(Format("block of %llu threads exceeds device limit %u",
                             cfg.block.Count(), dev.max_threads_per_block));
  }
  const unsigned smem = static_smem_bytes + cfg.dynamic_smem_bytes;
  if (smem > dev.shared_mem_per_sm) {
    throw DeviceError(Format("shared memory per block %u exceeds device limit %u", smem,
                             dev.shared_mem_per_sm));
  }

  LaunchShell shell;
  // Register demand beyond the device limit spills to local memory, exactly
  // as nvcc would: the kernel still runs, but every spilled value pays
  // memory traffic (and the clamped count is what occupancy sees).
  shell.wanted_regs = std::max(reg_count, 1);
  unsigned regs = shell.wanted_regs;
  if (regs > dev.max_regs_per_thread) {
    shell.spilled = regs - dev.max_regs_per_thread;
    regs = dev.max_regs_per_thread;
  }

  shell.stats.spilled_regs = shell.spilled;
  shell.stats.blocks = static_cast<unsigned>(cfg.grid.Count());
  shell.stats.threads_per_block = static_cast<unsigned>(cfg.block.Count());
  shell.stats.regs_per_thread = regs;
  shell.stats.smem_per_block = smem;
  shell.stats.occupancy = ComputeOccupancy(dev, cfg.block, regs, smem);
  if (shell.stats.occupancy.blocks_per_sm == 0) {
    throw DeviceError(Format("kernel cannot be launched: zero occupancy (limited by %s)",
                             shell.stats.occupancy.limiter));
  }

  const ExecPolicy pol = ResolveExecPolicy(cfg.exec);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  shell.workers = pol.workers > 0 ? pol.workers : hw;
  shell.nblocks = cfg.grid.Count();
  switch (pol.mode) {
    case ExecMode::kSerial:
      break;
    case ExecMode::kParallel:
      shell.parallel = shell.workers > 1 && shell.nblocks > 1;
      break;
    case ExecMode::kAuto:
      // Global atomics return schedule-dependent old values; keep those
      // kernels on the reference serial schedule unless parallelism is
      // requested explicitly.
      shell.parallel = shell.workers > 1 && shell.nblocks >= 4 && !has_global_atomic;
      break;
  }

  // Chunking depends only on the grid — never on the worker count or mode —
  // so the per-chunk partial stats and their fold order are invariant.
  shell.chunk =
      CeilDiv<std::uint64_t>(shell.nblocks, std::min<std::uint64_t>(shell.nblocks, 256));
  shell.nparts = static_cast<std::size_t>(CeilDiv<std::uint64_t>(shell.nblocks, shell.chunk));
  return shell;
}

void FinalizeLaunchStats(const DeviceProfile& dev, LaunchShell& shell,
                         std::span<const BlockStats> parts) {
  FoldBlockStats(parts, shell.stats);
  if (shell.spilled > 0) {
    // Approximate spill traffic: the fraction of values living in local
    // memory forces a load+store round trip on roughly that fraction of
    // instructions (local accesses coalesce, so charge throughput cost).
    double spill_frac = std::min(1.0, 2.0 * static_cast<double>(shell.spilled) /
                                          static_cast<double>(shell.wanted_regs));
    shell.stats.memory_cycles += static_cast<double>(shell.stats.warp_instrs) * spill_frac *
                                 0.5 * dev.cycles_per_global_tx;
  }
  ApplyCostModel(dev, shell.stats);
}

Dim3 LinearToCta(const Dim3& grid, std::uint64_t b) {
  return Dim3(static_cast<unsigned>(b % grid.x),
              static_cast<unsigned>((b / grid.x) % grid.y),
              static_cast<unsigned>(b / (static_cast<std::uint64_t>(grid.x) * grid.y)));
}

}  // namespace kspec::vgpu
