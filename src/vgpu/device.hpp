// Device profiles and the occupancy calculator.
//
// Two profiles model the GPUs used in the dissertation's evaluation
// (Section 6.1.1): the Tesla C1060 (compute capability 1.3) and the Tesla
// C2070 (Fermi, compute capability 2.0). The per-SM resource limits follow
// Tables 2.1 and 2.2 of the dissertation.
#pragma once

#include <cstdint>
#include <string>

#include "vgpu/types.hpp"

namespace kspec::vgpu {

struct DeviceProfile {
  std::string name;
  int compute_major = 1;
  int compute_minor = 3;

  // Grid/block limits.
  unsigned max_threads_per_block = 512;
  unsigned warp_size = 32;
  unsigned max_warps_per_sm = 32;
  unsigned max_blocks_per_sm = 8;

  // Per-SM resources (Table 2.2).
  unsigned registers_per_sm = 16 * 1024;  // 32-bit registers
  unsigned shared_mem_per_sm = 16 * 1024;  // bytes
  unsigned max_regs_per_thread = 124;
  unsigned shared_mem_banks = 16;

  // Register allocation granularity (registers are allocated per block in
  // units of `register_alloc_unit` per warp).
  unsigned register_alloc_unit = 512;

  // Chip-level resources.
  unsigned num_sms = 30;
  double clock_ghz = 1.3;
  std::uint64_t global_mem_bytes = 512ull << 20;
  unsigned const_mem_bytes = 64 * 1024;

  // Cost-model knobs (see cost.hpp).
  // Cycles charged per global-memory transaction (per 128-byte segment on
  // cc2.x, per half-warp segment on cc1.x).
  double cycles_per_global_tx = 36.0;
  // Pipeline latency of a dependent instruction; exposed when too few warps
  // are resident to hide it.
  double dependent_latency = 22.0;
  // Number of resident warps per SM needed to fully hide latency.
  double latency_hiding_warps = 20.0;
  // Extra issue cost multiplier for shared-memory accesses relative to
  // register operands (the C2070 derates shared memory relative to registers;
  // Section 2.4).
  double shared_access_cost = 1.0;

  // Watchdog: a launch that issues more warp-instructions than this is
  // killed with DeviceError (the simulator's analogue of the driver's
  // kernel-timeout; catches accidentally non-terminating kernels).
  std::uint64_t watchdog_warp_instrs = 2000ull * 1000 * 1000;

  bool IsFermi() const { return compute_major >= 2; }
};

// The simulated Tesla C1060 (cc 1.3): 30 SMs, 16 K registers/SM, 16 KB shared
// memory, 16 banks, half-warp coalescing.
DeviceProfile TeslaC1060();

// The simulated Tesla C2070 (cc 2.0): 14 SMs, 32 K registers/SM, 48 KB shared
// memory, 32 banks, cache-line coalescing, larger register file.
DeviceProfile TeslaC2070();

DeviceProfile ProfileByName(const std::string& name);

// Occupancy for one kernel configuration, computed the way the CUDA occupancy
// calculator does: the binding resource among warps, registers, shared memory,
// and the block-count limit determines blocks/SM.
struct Occupancy {
  unsigned blocks_per_sm = 0;
  unsigned active_warps = 0;       // warps resident per SM
  double occupancy = 0.0;          // active_warps / max_warps_per_sm
  const char* limiter = "none";    // which resource bound the result
};

// `regs_per_thread` is the allocated register count; `smem_per_block` includes
// static + dynamic shared memory.
Occupancy ComputeOccupancy(const DeviceProfile& dev, Dim3 block, unsigned regs_per_thread,
                           unsigned smem_per_block);

}  // namespace kspec::vgpu
