// Launch configuration and per-launch statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vgpu/device.hpp"
#include "vgpu/types.hpp"

namespace kspec::vgpu {

// A 2D (or 1D when h == 1) float texture bound to linear global memory.
struct TextureBinding {
  std::uint64_t base = 0;  // device pointer to float data
  int w = 0, h = 1;        // texels
};

struct LaunchConfig {
  Dim3 grid;
  Dim3 block;
  unsigned dynamic_smem_bytes = 0;
  // One 64-bit slot per kernel parameter, encoded per the parameter type.
  std::vector<std::uint64_t> args;
  // Texture slot bindings (indexed by the slot in Instr::target).
  std::vector<TextureBinding> textures;
};

// Raw counters collected by the interpreter plus the modeled execution time.
struct LaunchStats {
  // Dynamic counts.
  std::uint64_t warp_instrs = 0;   // warp-level instruction issues
  std::uint64_t lane_instrs = 0;   // per-lane executed operations
  std::uint64_t global_instrs = 0; // warp-level global ld/st issues
  std::uint64_t mem_transactions = 0;
  std::uint64_t texture_fetches = 0;
  std::uint64_t shared_conflict_cycles = 0;
  std::uint64_t barriers = 0;

  // Cost-model inputs.
  double issue_cycles = 0;     // compute-pipe cycles (incl. bank conflicts)
  double memory_cycles = 0;    // memory-throughput cycles
  double avg_ilp = 2.0;        // dynamic-weighted static ILP estimate

  // Configuration echo.
  unsigned blocks = 0;
  unsigned threads_per_block = 0;
  unsigned regs_per_thread = 0;   // after clamping to the device limit
  unsigned spilled_regs = 0;      // registers demoted to local memory
  unsigned smem_per_block = 0;
  Occupancy occupancy;

  // Modeled result.
  double sim_cycles = 0;
  double sim_millis = 0;

  std::string ToString() const;
};

}  // namespace kspec::vgpu
