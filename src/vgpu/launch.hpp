// Launch configuration and per-launch statistics.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "vgpu/device.hpp"
#include "vgpu/types.hpp"

namespace kspec::vgpu {

// A 2D (or 1D when h == 1) float texture bound to linear global memory.
struct TextureBinding {
  std::uint64_t base = 0;  // device pointer to float data
  int w = 0, h = 1;        // texels
};

// How the interpreter maps thread blocks onto host threads.
//
//   kAuto      — parallel when the grid is large enough and the kernel has no
//                global-space atomics (whose *returned* old values are
//                schedule-dependent); serial otherwise.
//   kSerial    — one host thread, the reference schedule.
//   kParallel  — always use the worker pool, even for kernels with global
//                atomics. Integer reductions (atomicAdd/Min/Max) still sum
//                exactly; only the old-value *observations* may differ
//                between runs.
//
// The statistics contract is mode-independent: blocks are partitioned into
// chunks by a rule that depends only on the grid, each chunk accumulates its
// own partial counters in block order, and the partials are folded in chunk
// order — so LaunchStats (including the floating-point cycle sums and
// avg_ilp) are bit-identical for any worker count, serial included.
enum class ExecMode { kAuto, kSerial, kParallel };

struct ExecPolicy {
  ExecMode mode = ExecMode::kAuto;
  unsigned workers = 0;  // 0 = std::thread::hardware_concurrency()
};

struct LaunchConfig {
  Dim3 grid;
  Dim3 block;
  unsigned dynamic_smem_bytes = 0;
  // One 64-bit slot per kernel parameter, encoded per the parameter type.
  std::vector<std::uint64_t> args;
  // Texture slot bindings (indexed by the slot in Instr::target).
  std::vector<TextureBinding> textures;
  // Host execution policy (overridable process-wide via VGPU_WORKERS).
  ExecPolicy exec;
};

// Raw counters collected by the interpreter plus the modeled execution time.
struct LaunchStats {
  // Dynamic counts.
  std::uint64_t warp_instrs = 0;   // warp-level instruction issues
  std::uint64_t lane_instrs = 0;   // per-lane executed operations
  std::uint64_t global_instrs = 0; // warp-level global ld/st issues
  std::uint64_t mem_transactions = 0;
  std::uint64_t texture_fetches = 0;
  std::uint64_t shared_conflict_cycles = 0;
  std::uint64_t barriers = 0;

  // Cost-model inputs.
  double issue_cycles = 0;     // compute-pipe cycles (incl. bank conflicts)
  double memory_cycles = 0;    // memory-throughput cycles
  double avg_ilp = 2.0;        // dynamic-weighted static ILP estimate

  // Configuration echo.
  unsigned blocks = 0;
  unsigned threads_per_block = 0;
  unsigned regs_per_thread = 0;   // after clamping to the device limit
  unsigned spilled_regs = 0;      // registers demoted to local memory
  unsigned smem_per_block = 0;
  Occupancy occupancy;

  // Modeled result.
  double sim_cycles = 0;
  double sim_millis = 0;

  std::string ToString() const;
};

// Partial dynamic counters for one chunk of thread blocks. Workers accumulate
// into their chunk's BlockStats; FoldBlockStats combines the partials in chunk
// order so the result does not depend on which host thread ran which chunk.
struct BlockStats {
  std::uint64_t warp_instrs = 0;
  std::uint64_t lane_instrs = 0;
  std::uint64_t global_instrs = 0;
  std::uint64_t mem_transactions = 0;
  std::uint64_t texture_fetches = 0;
  std::uint64_t shared_conflict_cycles = 0;
  std::uint64_t barriers = 0;
  double issue_cycles = 0;
  double memory_cycles = 0;
  double ilp_sum = 0;  // sum over warp issues of the static ILP at each pc
};

// Folds chunk partials (in index order) into `into`. avg_ilp is the
// dynamic-instruction-weighted average: total ilp_sum / total warp_instrs —
// NOT the mean of per-chunk averages, which would weight a one-instruction
// chunk the same as a million-instruction one. When no ILP metadata was
// recorded (ilp_sum == 0) the default avg_ilp is left untouched.
void FoldBlockStats(std::span<const BlockStats> parts, LaunchStats& into);

// True when every dynamic counter, cycle sum, and modeled result of the two
// stats is bit-identical (doubles compared exactly). The serial-vs-parallel
// determinism contract, as a testable predicate.
bool StatsBitIdentical(const LaunchStats& a, const LaunchStats& b);

}  // namespace kspec::vgpu
