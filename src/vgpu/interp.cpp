#include "vgpu/interp.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <vector>

#include "support/math.hpp"
#include "support/str.hpp"
#include "vgpu/cost.hpp"

namespace kspec::vgpu {

namespace {

constexpr std::uint32_t kNoReconv = 0xffffffffu;

struct StackEntry {
  std::uint32_t pc;
  std::uint32_t mask;
  std::uint32_t rpc;
};

struct Warp {
  std::uint32_t pc = 0;
  std::uint32_t mask = 0;   // active lanes
  std::uint32_t live = 0;   // non-retired lanes
  std::uint32_t rpc = kNoReconv;
  std::vector<StackEntry> stack;
  enum class State { kRunnable, kAtBarrier, kDone } state = State::kRunnable;
};

// Issue cost in compute-pipe cycles. Device dependent where the dissertation
// calls out generation differences (Section 2.4: the relative throughput of
// `*` and __[u]mul24() inverted between cc 1.3 and cc 2.0; double precision
// rates differ strongly).
double IssueCost(const DeviceProfile& dev, const Instr& i) {
  const bool f64 = i.type == Type::kF64;
  switch (i.op) {
    case Opcode::kMul:
    case Opcode::kMad:
      if (i.type == Type::kI32 || i.type == Type::kU32) return dev.IsFermi() ? 1.0 : 2.0;
      if (f64) return dev.IsFermi() ? 2.0 : 8.0;
      return 1.0;
    case Opcode::kMul24:
      return dev.IsFermi() ? 3.0 : 1.0;
    case Opcode::kDiv:
    case Opcode::kRem:
      if (IsIntType(i.type)) return 16.0;
      return f64 ? 24.0 : 8.0;
    case Opcode::kSqrt:
    case Opcode::kRsqrt:
    case Opcode::kExp:
    case Opcode::kLog:
    case Opcode::kSin:
    case Opcode::kCos:
      return f64 ? 24.0 : 8.0;
    case Opcode::kBarSync:
      return 2.0;
    case Opcode::kAdd:
    case Opcode::kSub:
      if (f64) return dev.IsFermi() ? 2.0 : 8.0;
      return 1.0;
    default:
      return 1.0;
  }
}

class BlockRunner {
 public:
  BlockRunner(const DeviceProfile& dev, GlobalMemory* gmem, const CompiledKernel& kernel,
              const LaunchConfig& cfg, std::span<const unsigned char> const_mem,
              LaunchStats* stats)
      : dev_(dev),
        gmem_(gmem),
        kernel_(kernel),
        cfg_(cfg),
        const_mem_(const_mem),
        stats_(stats) {
    nthreads_ = static_cast<unsigned>(cfg.block.Count());
    nwarps_ = CeilDiv(nthreads_, dev.warp_size);
    stride_ = nwarps_ * dev.warp_size;
    regs_.resize(static_cast<std::size_t>(kernel.num_vregs) * stride_);
    shared_.resize(kernel.static_smem_bytes + cfg.dynamic_smem_bytes);
    // Per-lane thread coordinates (identical across blocks).
    tid_x_.resize(stride_);
    tid_y_.resize(stride_);
    tid_z_.resize(stride_);
    for (unsigned t = 0; t < stride_; ++t) {
      unsigned lin = std::min(t, nthreads_ - 1);
      tid_x_[t] = lin % cfg.block.x;
      tid_y_[t] = (lin / cfg.block.x) % cfg.block.y;
      tid_z_[t] = lin / (cfg.block.x * cfg.block.y);
    }
    has_ilp_ = kernel.ilp_at_pc.size() == kernel.code.size();
  }

  void RunBlock(Dim3 ctaid) {
    ctaid_ = ctaid;
    std::fill(shared_.begin(), shared_.end(), 0);
    InitWarps();
    // Scheduler: run each runnable warp to its next barrier (or retirement);
    // when all live warps have arrived, release the barrier.
    while (true) {
      bool any_runnable = false;
      for (auto& w : warps_) {
        if (w.state == Warp::State::kRunnable) {
          RunWarp(w);
          any_runnable = true;
        }
      }
      bool all_done = true;
      bool any_barrier = false;
      for (auto& w : warps_) {
        if (w.state != Warp::State::kDone) all_done = false;
        if (w.state == Warp::State::kAtBarrier) any_barrier = true;
      }
      if (all_done) return;
      if (!any_barrier) {
        if (!any_runnable) throw DeviceError("block made no progress (scheduler deadlock)");
        continue;
      }
      // Every non-done warp must be at the barrier to release it.
      for (auto& w : warps_) {
        if (w.state == Warp::State::kRunnable) {
          throw DeviceError("__syncthreads deadlock: a warp retired or diverged past the barrier");
        }
      }
      for (auto& w : warps_) {
        if (w.state == Warp::State::kAtBarrier) w.state = Warp::State::kRunnable;
      }
      ++stats_->barriers;
    }
  }

 private:
  void InitWarps() {
    warps_.assign(nwarps_, Warp{});
    for (unsigned w = 0; w < nwarps_; ++w) {
      unsigned first = w * dev_.warp_size;
      unsigned count = std::min(dev_.warp_size, nthreads_ - first);
      std::uint32_t mask = count == 32 ? 0xffffffffu : ((1u << count) - 1u);
      warps_[w].pc = 0;
      warps_[w].mask = mask;
      warps_[w].live = mask;
      warps_[w].rpc = kNoReconv;
      warps_[w].state = Warp::State::kRunnable;
    }
    // Kernel parameters land in virtual registers [0, nparams).
    KSPEC_CHECK_MSG(cfg_.args.size() == kernel_.params.size(), "argument count mismatch");
    for (std::size_t p = 0; p < cfg_.args.size(); ++p) {
      std::uint64_t* row = regs_.data() + p * stride_;
      std::fill(row, row + stride_, cfg_.args[p]);
    }
  }

  std::uint64_t* Row(std::int32_t reg) { return regs_.data() + static_cast<std::size_t>(reg) * stride_; }

  std::uint64_t OperandVal(const Operand& o, unsigned lane_base, unsigned lane) {
    return o.is_reg() ? Row(o.reg)[lane_base + lane] : o.imm;
  }

  // Pops reconvergence-stack entries until one with live lanes is found.
  // Returns false when the warp has fully retired.
  static bool PopState(Warp& w) {
    while (!w.stack.empty()) {
      StackEntry e = w.stack.back();
      w.stack.pop_back();
      e.mask &= w.live;
      if (e.mask) {
        w.pc = e.pc;
        w.mask = e.mask;
        w.rpc = e.rpc;
        return true;
      }
    }
    return false;
  }

  void RunWarp(Warp& w);

  void ExecAlu(const Instr& i, Warp& w, unsigned lane_base);
  void ExecMemory(const Instr& i, Warp& w, unsigned lane_base);
  void ExecAtomic(const Instr& i, Warp& w, unsigned lane_base);
  void ExecTexture(const Instr& i, Warp& w, unsigned lane_base);

  // Charges global-memory transactions for the active lanes' addresses.
  void ChargeGlobal(const std::uint64_t* addrs, std::uint32_t mask);
  // Charges shared-memory bank conflicts.
  void ChargeShared(const std::uint64_t* addrs, std::uint32_t mask);

  unsigned char* ResolveAddress(Space space, std::uint64_t addr, std::size_t bytes,
                                bool for_write);

  const DeviceProfile& dev_;
  GlobalMemory* gmem_;
  const CompiledKernel& kernel_;
  const LaunchConfig& cfg_;
  std::span<const unsigned char> const_mem_;
  LaunchStats* stats_;

  unsigned nthreads_ = 0;
  unsigned nwarps_ = 0;
  unsigned stride_ = 0;
  Dim3 ctaid_;
  std::vector<std::uint64_t> regs_;
  std::vector<unsigned char> shared_;
  std::vector<std::uint32_t> tid_x_, tid_y_, tid_z_;
  std::vector<Warp> warps_;
  bool has_ilp_ = false;
  double ilp_sum_ = 0;

 public:
  double ilp_sum() const { return ilp_sum_; }
};

unsigned char* BlockRunner::ResolveAddress(Space space, std::uint64_t addr, std::size_t bytes,
                                           bool for_write) {
  switch (space) {
    case Space::kGlobal:
      return gmem_->Access(addr, bytes);
    case Space::kShared:
      if (addr + bytes > shared_.size()) {
        throw DeviceError(Format("shared-memory access out of bounds: 0x%llx (+%zu) of %zu bytes",
                                 static_cast<unsigned long long>(addr), bytes, shared_.size()));
      }
      return shared_.data() + addr;
    case Space::kConst:
      if (for_write) throw DeviceError("store to constant memory");
      if (addr + bytes > const_mem_.size()) {
        throw DeviceError(Format("constant-memory access out of bounds: 0x%llx of %zu bytes",
                                 static_cast<unsigned long long>(addr), const_mem_.size()));
      }
      return const_cast<unsigned char*>(const_mem_.data() + addr);
    default:
      throw DeviceError("unsupported memory space in ld/st");
  }
}

void BlockRunner::ChargeGlobal(const std::uint64_t* addrs, std::uint32_t mask) {
  // Transactions are 128-byte segments. cc1.x coalesces per half-warp,
  // cc2.x per full warp through the L1 line.
  auto count_segments = [&](std::uint32_t m) {
    std::uint64_t segs[32];
    int n = 0;
    while (m) {
      int lane = std::countr_zero(m);
      m &= m - 1;
      std::uint64_t seg = addrs[lane] >> 7;
      bool seen = false;
      for (int k = 0; k < n; ++k) {
        if (segs[k] == seg) {
          seen = true;
          break;
        }
      }
      if (!seen) segs[n++] = seg;
    }
    return n;
  };
  int tx = 0;
  if (dev_.IsFermi()) {
    tx = count_segments(mask);
  } else {
    tx = count_segments(mask & 0xffffu) + count_segments(mask >> 16 << 16);
  }
  stats_->mem_transactions += tx;
  stats_->memory_cycles += tx * dev_.cycles_per_global_tx;
  ++stats_->global_instrs;
}

void BlockRunner::ChargeShared(const std::uint64_t* addrs, std::uint32_t mask) {
  // Conflict degree = max number of distinct addresses mapping to one bank.
  auto degree = [&](std::uint32_t m) {
    int counts[32] = {0};
    std::uint64_t seen_addr[32];
    int seen_n = 0;
    while (m) {
      int lane = std::countr_zero(m);
      m &= m - 1;
      std::uint64_t a = addrs[lane];
      bool dup = false;
      for (int k = 0; k < seen_n; ++k) {
        if (seen_addr[k] == a) {
          dup = true;  // same word: broadcast, no extra cycle
          break;
        }
      }
      if (dup) continue;
      if (seen_n < 32) seen_addr[seen_n++] = a;
      ++counts[(a >> 2) % dev_.shared_mem_banks];
    }
    int d = 1;
    for (int b = 0; b < 32; ++b) d = std::max(d, counts[b]);
    return d;
  };
  int extra;
  if (dev_.IsFermi()) {
    extra = degree(mask) - 1;
  } else {
    extra = (degree(mask & 0xffffu) - 1) + (degree(mask >> 16 << 16) - 1);
  }
  if (extra > 0) {
    stats_->shared_conflict_cycles += extra;
    stats_->issue_cycles += extra;
  }
  stats_->issue_cycles += (dev_.shared_access_cost - 1.0);
}

void BlockRunner::ExecMemory(const Instr& i, Warp& w, unsigned lane_base) {
  std::uint64_t addrs[32];
  std::uint32_t m = w.mask;
  const std::size_t esz = TypeSize(i.type);
  while (m) {
    int lane = std::countr_zero(m);
    m &= m - 1;
    addrs[lane] = OperandVal(i.a, lane_base, lane) + static_cast<std::int64_t>(i.b.imm);
  }
  if (i.space == Space::kGlobal) {
    ChargeGlobal(addrs, w.mask);
  } else if (i.space == Space::kShared) {
    ChargeShared(addrs, w.mask);
  }
  m = w.mask;
  if (i.op == Opcode::kLd) {
    std::uint64_t* dst = Row(i.dst);
    while (m) {
      int lane = std::countr_zero(m);
      m &= m - 1;
      const unsigned char* p = ResolveAddress(i.space, addrs[lane], esz, false);
      std::uint64_t raw = 0;
      std::memcpy(&raw, p, esz);
      if (i.type == Type::kI32) raw = EncodeI32(static_cast<std::int32_t>(raw));  // sign handling
      dst[lane_base + lane] = raw;
    }
  } else {
    while (m) {
      int lane = std::countr_zero(m);
      m &= m - 1;
      unsigned char* p = ResolveAddress(i.space, addrs[lane], esz, true);
      std::uint64_t raw = OperandVal(i.c, lane_base, lane);
      std::memcpy(p, &raw, esz);
    }
  }
}

void BlockRunner::ExecAtomic(const Instr& i, Warp& w, unsigned lane_base) {
  std::uint32_t m = w.mask;
  const std::size_t esz = TypeSize(i.type);
  // Atomics serialize: one transaction per active lane.
  int lanes = std::popcount(m);
  if (i.space == Space::kGlobal) {
    stats_->mem_transactions += lanes;
    stats_->memory_cycles += lanes * dev_.cycles_per_global_tx;
    ++stats_->global_instrs;
  } else {
    stats_->issue_cycles += lanes;
  }
  std::uint64_t* dst = i.dst >= 0 ? Row(i.dst) : nullptr;
  while (m) {
    int lane = std::countr_zero(m);
    m &= m - 1;
    std::uint64_t addr = OperandVal(i.a, lane_base, lane);
    unsigned char* p = ResolveAddress(i.space, addr, esz, true);
    std::uint64_t old = 0;
    std::memcpy(&old, p, esz);
    std::uint64_t operand = OperandVal(i.b, lane_base, lane);
    std::uint64_t result = old;
    switch (i.op) {
      case Opcode::kAtomAdd:
        if (i.type == Type::kF32) result = EncodeF32(DecodeF32(old) + DecodeF32(operand));
        else if (i.type == Type::kF64) result = EncodeF64(DecodeF64(old) + DecodeF64(operand));
        else result = old + operand;
        break;
      case Opcode::kAtomMin:
        if (i.type == Type::kI32) {
          result = EncodeI32(std::min(DecodeI32(old), DecodeI32(operand)));
        } else if (i.type == Type::kI64) {
          result = static_cast<std::uint64_t>(std::min(static_cast<std::int64_t>(old),
                                                       static_cast<std::int64_t>(operand)));
        } else if (i.type == Type::kF32) {
          result = EncodeF32(std::min(DecodeF32(old), DecodeF32(operand)));
        } else {
          result = std::min(old, operand);
        }
        break;
      case Opcode::kAtomMax:
        if (i.type == Type::kI32) {
          result = EncodeI32(std::max(DecodeI32(old), DecodeI32(operand)));
        } else if (i.type == Type::kI64) {
          result = static_cast<std::uint64_t>(std::max(static_cast<std::int64_t>(old),
                                                       static_cast<std::int64_t>(operand)));
        } else if (i.type == Type::kF32) {
          result = EncodeF32(std::max(DecodeF32(old), DecodeF32(operand)));
        } else {
          result = std::max(old, operand);
        }
        break;
      case Opcode::kAtomExch:
        result = operand;
        break;
      case Opcode::kAtomCas: {
        std::uint64_t desired = OperandVal(i.c, lane_base, lane);
        if (esz == 4 ? (static_cast<std::uint32_t>(old) == static_cast<std::uint32_t>(operand))
                     : (old == operand)) {
          result = desired;
        }
        break;
      }
      default:
        throw InternalError("bad atomic opcode");
    }
    std::memcpy(p, &result, esz);
    if (dst) dst[lane_base + lane] = old;
  }
}


void BlockRunner::ExecTexture(const Instr& i, Warp& w, unsigned lane_base) {
  if (i.target < 0 || static_cast<std::size_t>(i.target) >= cfg_.textures.size()) {
    throw DeviceError(Format("texture slot %d is not bound at launch", i.target));
  }
  const TextureBinding& tex = cfg_.textures[static_cast<std::size_t>(i.target)];
  if (tex.base == 0 || tex.w <= 0 || tex.h <= 0) {
    throw DeviceError(Format("texture slot %d has an invalid binding", i.target));
  }
  // Texture reads go through the (simulated) texture cache: charge a reduced
  // per-fetch memory cost compared to uncached global loads.
  int lanes = std::popcount(w.mask);
  stats_->texture_fetches += static_cast<std::uint64_t>(lanes);
  stats_->memory_cycles += 0.25 * dev_.cycles_per_global_tx *
                           std::max(1, lanes / 8);
  ++stats_->global_instrs;

  auto fetch = [&](int x, int y) -> float {
    x = std::clamp(x, 0, tex.w - 1);
    y = std::clamp(y, 0, tex.h - 1);
    std::uint64_t addr = tex.base +
                         (static_cast<std::uint64_t>(y) * tex.w + static_cast<std::uint64_t>(x)) * 4;
    const unsigned char* p = gmem_->Access(addr, 4);
    float v;
    std::memcpy(&v, p, 4);
    return v;
  };

  std::uint64_t* dst = Row(i.dst);
  std::uint32_t m = w.mask;
  while (m) {
    int lane = std::countr_zero(m);
    m &= m - 1;
    if (i.op == Opcode::kTex1D) {
      std::int32_t idx = DecodeI32(OperandVal(i.a, lane_base, lane));
      dst[lane_base + lane] = EncodeF32(fetch(idx % std::max(tex.w, 1),
                                              idx / std::max(tex.w, 1)));
      continue;
    }
    // tex2D with bilinear filtering, texel centers at integer coordinates
    // (matching the manual bilinear code in the CPU references).
    float fx = DecodeF32(OperandVal(i.a, lane_base, lane));
    float fy = DecodeF32(OperandVal(i.b, lane_base, lane));
    int x0 = static_cast<int>(std::floor(fx));
    int y0 = static_cast<int>(std::floor(fy));
    float ax = fx - static_cast<float>(x0);
    float ay = fy - static_cast<float>(y0);
    float p00 = fetch(x0, y0);
    float p01 = fetch(x0 + 1, y0);
    float p10 = fetch(x0, y0 + 1);
    float p11 = fetch(x0 + 1, y0 + 1);
    float top = p00 + ax * (p01 - p00);
    float bot = p10 + ax * (p11 - p10);
    dst[lane_base + lane] = EncodeF32(top + ay * (bot - top));
  }
}

void BlockRunner::ExecAlu(const Instr& i, Warp& w, unsigned lane_base) {
  std::uint64_t* dst = Row(i.dst);
  std::uint32_t m = w.mask;

  auto for_lanes = [&](auto&& fn) {
    std::uint32_t mm = m;
    while (mm) {
      int lane = std::countr_zero(mm);
      mm &= mm - 1;
      dst[lane_base + lane] = fn(lane);
    }
  };
  auto A = [&](int lane) { return OperandVal(i.a, lane_base, lane); };
  auto B = [&](int lane) { return OperandVal(i.b, lane_base, lane); };
  auto C = [&](int lane) { return OperandVal(i.c, lane_base, lane); };

  switch (i.op) {
    case Opcode::kMov:
      for_lanes([&](int l) { return A(l); });
      return;
    case Opcode::kSreg: {
      auto sr = static_cast<SpecialReg>(i.a.imm);
      for_lanes([&](int l) -> std::uint64_t {
        unsigned t = lane_base + l;
        switch (sr) {
          case SpecialReg::kTidX: return tid_x_[t];
          case SpecialReg::kTidY: return tid_y_[t];
          case SpecialReg::kTidZ: return tid_z_[t];
          case SpecialReg::kNtidX: return cfg_.block.x;
          case SpecialReg::kNtidY: return cfg_.block.y;
          case SpecialReg::kNtidZ: return cfg_.block.z;
          case SpecialReg::kCtaidX: return ctaid_.x;
          case SpecialReg::kCtaidY: return ctaid_.y;
          case SpecialReg::kCtaidZ: return ctaid_.z;
          case SpecialReg::kNctaidX: return cfg_.grid.x;
          case SpecialReg::kNctaidY: return cfg_.grid.y;
          case SpecialReg::kNctaidZ: return cfg_.grid.z;
          case SpecialReg::kLaneId: return static_cast<unsigned>(l);
          case SpecialReg::kWarpId: return t / dev_.warp_size;
        }
        return 0;
      });
      return;
    }
    case Opcode::kSetp: {
      auto cmp_int = [&](std::int64_t x, std::int64_t y) -> bool {
        switch (i.cmp) {
          case CmpOp::kEq: return x == y;
          case CmpOp::kNe: return x != y;
          case CmpOp::kLt: return x < y;
          case CmpOp::kLe: return x <= y;
          case CmpOp::kGt: return x > y;
          case CmpOp::kGe: return x >= y;
        }
        return false;
      };
      auto cmp_f = [&](double x, double y) -> bool {
        switch (i.cmp) {
          case CmpOp::kEq: return x == y;
          case CmpOp::kNe: return x != y;
          case CmpOp::kLt: return x < y;
          case CmpOp::kLe: return x <= y;
          case CmpOp::kGt: return x > y;
          case CmpOp::kGe: return x >= y;
        }
        return false;
      };
      switch (i.type) {
        case Type::kI32:
          for_lanes([&](int l) -> std::uint64_t { return cmp_int(DecodeI32(A(l)), DecodeI32(B(l))); });
          return;
        case Type::kU32:
          for_lanes([&](int l) -> std::uint64_t {
            return cmp_int(static_cast<std::uint32_t>(A(l)), static_cast<std::uint32_t>(B(l)));
          });
          return;
        case Type::kI64:
          for_lanes([&](int l) -> std::uint64_t {
            return cmp_int(static_cast<std::int64_t>(A(l)), static_cast<std::int64_t>(B(l)));
          });
          return;
        case Type::kU64:
        case Type::kPred:
          for_lanes([&](int l) -> std::uint64_t {
            std::uint64_t x = A(l), y = B(l);
            switch (i.cmp) {
              case CmpOp::kEq: return x == y;
              case CmpOp::kNe: return x != y;
              case CmpOp::kLt: return x < y;
              case CmpOp::kLe: return x <= y;
              case CmpOp::kGt: return x > y;
              case CmpOp::kGe: return x >= y;
            }
            return 0;
          });
          return;
        case Type::kF32:
          for_lanes([&](int l) -> std::uint64_t { return cmp_f(DecodeF32(A(l)), DecodeF32(B(l))); });
          return;
        case Type::kF64:
          for_lanes([&](int l) -> std::uint64_t { return cmp_f(DecodeF64(A(l)), DecodeF64(B(l))); });
          return;
      }
      return;
    }
    case Opcode::kSel:
      for_lanes([&](int l) { return C(l) ? A(l) : B(l); });
      return;
    case Opcode::kCvt: {
      auto load_src = [&](int l) -> double {
        switch (i.type2) {
          case Type::kI32: return DecodeI32(A(l));
          case Type::kU32: return static_cast<std::uint32_t>(A(l));
          case Type::kI64: return static_cast<double>(static_cast<std::int64_t>(A(l)));
          case Type::kU64: return static_cast<double>(A(l));
          case Type::kF32: return DecodeF32(A(l));
          case Type::kF64: return DecodeF64(A(l));
          case Type::kPred: return A(l) ? 1.0 : 0.0;
        }
        return 0;
      };
      // Integer->integer conversions must not round-trip through double
      // (precision loss on 64-bit); handle them on the integer path.
      if (IsIntType(i.type) && (IsIntType(i.type2) || i.type2 == Type::kPred)) {
        for_lanes([&](int l) -> std::uint64_t {
          std::uint64_t v = A(l);
          std::int64_t sv;
          switch (i.type2) {
            case Type::kI32: sv = DecodeI32(v); break;
            case Type::kU32: sv = static_cast<std::uint32_t>(v); break;
            default: sv = static_cast<std::int64_t>(v); break;
          }
          switch (i.type) {
            case Type::kI32: return EncodeI32(static_cast<std::int32_t>(sv));
            case Type::kU32: return static_cast<std::uint32_t>(sv);
            default: return static_cast<std::uint64_t>(sv);
          }
        });
        return;
      }
      for_lanes([&](int l) -> std::uint64_t {
        double v = load_src(l);
        switch (i.type) {
          case Type::kI32: return EncodeI32(static_cast<std::int32_t>(v));
          case Type::kU32: return static_cast<std::uint32_t>(static_cast<std::int64_t>(v));
          case Type::kI64: return static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
          case Type::kU64: return static_cast<std::uint64_t>(v);
          case Type::kF32: return EncodeF32(static_cast<float>(v));
          case Type::kF64: return EncodeF64(v);
          case Type::kPred: return v != 0.0;
        }
        return 0;
      });
      return;
    }
    default:
      break;
  }

  // Generic arithmetic by type.
  switch (i.type) {
    case Type::kF32: {
      auto af = [&](int l) { return DecodeF32(A(l)); };
      auto bf = [&](int l) { return DecodeF32(B(l)); };
      auto cf = [&](int l) { return DecodeF32(C(l)); };
      switch (i.op) {
        case Opcode::kAdd: for_lanes([&](int l) { return EncodeF32(af(l) + bf(l)); }); return;
        case Opcode::kSub: for_lanes([&](int l) { return EncodeF32(af(l) - bf(l)); }); return;
        case Opcode::kMul: for_lanes([&](int l) { return EncodeF32(af(l) * bf(l)); }); return;
        case Opcode::kDiv: for_lanes([&](int l) { return EncodeF32(af(l) / bf(l)); }); return;
        case Opcode::kRem: for_lanes([&](int l) { return EncodeF32(std::fmod(af(l), bf(l))); }); return;
        case Opcode::kMad: for_lanes([&](int l) { return EncodeF32(af(l) * bf(l) + cf(l)); }); return;
        case Opcode::kMin: for_lanes([&](int l) { return EncodeF32(std::min(af(l), bf(l))); }); return;
        case Opcode::kMax: for_lanes([&](int l) { return EncodeF32(std::max(af(l), bf(l))); }); return;
        case Opcode::kNeg: for_lanes([&](int l) { return EncodeF32(-af(l)); }); return;
        case Opcode::kAbs: for_lanes([&](int l) { return EncodeF32(std::fabs(af(l))); }); return;
        case Opcode::kSqrt: for_lanes([&](int l) { return EncodeF32(std::sqrt(af(l))); }); return;
        case Opcode::kRsqrt: for_lanes([&](int l) { return EncodeF32(1.0f / std::sqrt(af(l))); }); return;
        case Opcode::kFloor: for_lanes([&](int l) { return EncodeF32(std::floor(af(l))); }); return;
        case Opcode::kCeil: for_lanes([&](int l) { return EncodeF32(std::ceil(af(l))); }); return;
        case Opcode::kExp: for_lanes([&](int l) { return EncodeF32(std::exp(af(l))); }); return;
        case Opcode::kLog: for_lanes([&](int l) { return EncodeF32(std::log(af(l))); }); return;
        case Opcode::kSin: for_lanes([&](int l) { return EncodeF32(std::sin(af(l))); }); return;
        case Opcode::kCos: for_lanes([&](int l) { return EncodeF32(std::cos(af(l))); }); return;
        default: throw InternalError(Format("op %s invalid for f32", OpcodeName(i.op)));
      }
    }
    case Type::kF64: {
      auto ad = [&](int l) { return DecodeF64(A(l)); };
      auto bd = [&](int l) { return DecodeF64(B(l)); };
      auto cd = [&](int l) { return DecodeF64(C(l)); };
      switch (i.op) {
        case Opcode::kAdd: for_lanes([&](int l) { return EncodeF64(ad(l) + bd(l)); }); return;
        case Opcode::kSub: for_lanes([&](int l) { return EncodeF64(ad(l) - bd(l)); }); return;
        case Opcode::kMul: for_lanes([&](int l) { return EncodeF64(ad(l) * bd(l)); }); return;
        case Opcode::kDiv: for_lanes([&](int l) { return EncodeF64(ad(l) / bd(l)); }); return;
        case Opcode::kRem: for_lanes([&](int l) { return EncodeF64(std::fmod(ad(l), bd(l))); }); return;
        case Opcode::kMad: for_lanes([&](int l) { return EncodeF64(ad(l) * bd(l) + cd(l)); }); return;
        case Opcode::kMin: for_lanes([&](int l) { return EncodeF64(std::min(ad(l), bd(l))); }); return;
        case Opcode::kMax: for_lanes([&](int l) { return EncodeF64(std::max(ad(l), bd(l))); }); return;
        case Opcode::kNeg: for_lanes([&](int l) { return EncodeF64(-ad(l)); }); return;
        case Opcode::kAbs: for_lanes([&](int l) { return EncodeF64(std::fabs(ad(l))); }); return;
        case Opcode::kSqrt: for_lanes([&](int l) { return EncodeF64(std::sqrt(ad(l))); }); return;
        case Opcode::kRsqrt: for_lanes([&](int l) { return EncodeF64(1.0 / std::sqrt(ad(l))); }); return;
        case Opcode::kFloor: for_lanes([&](int l) { return EncodeF64(std::floor(ad(l))); }); return;
        case Opcode::kCeil: for_lanes([&](int l) { return EncodeF64(std::ceil(ad(l))); }); return;
        default: throw InternalError(Format("op %s invalid for f64", OpcodeName(i.op)));
      }
    }
    default:
      break;
  }

  // Integer types. Arithmetic wraps; shifts clamp at the type width; integer
  // division by zero yields zero (PTX leaves it undefined; a defined result
  // keeps the simulator deterministic).
  const bool is64 = i.type == Type::kI64 || i.type == Type::kU64;
  const bool is_signed = IsSignedInt(i.type);
  auto norm = [&](std::uint64_t v) -> std::uint64_t {
    if (is64) return v;
    std::uint32_t t = static_cast<std::uint32_t>(v);
    if (is_signed) return EncodeI32(static_cast<std::int32_t>(t));
    return t;
  };
  auto as_signed = [&](std::uint64_t v) -> std::int64_t {
    if (is64) return static_cast<std::int64_t>(v);
    return DecodeI32(v);
  };
  switch (i.op) {
    case Opcode::kAdd: for_lanes([&](int l) { return norm(A(l) + B(l)); }); return;
    case Opcode::kSub: for_lanes([&](int l) { return norm(A(l) - B(l)); }); return;
    case Opcode::kMul: for_lanes([&](int l) { return norm(A(l) * B(l)); }); return;
    case Opcode::kMul24:
      for_lanes([&](int l) {
        std::uint64_t x = A(l) & 0xffffffu, y = B(l) & 0xffffffu;
        if (is_signed) {
          std::int64_t sx = static_cast<std::int64_t>(x << 40) >> 40;
          std::int64_t sy = static_cast<std::int64_t>(y << 40) >> 40;
          return norm(static_cast<std::uint64_t>(sx * sy));
        }
        return norm(x * y);
      });
      return;
    case Opcode::kMad: for_lanes([&](int l) { return norm(A(l) * B(l) + C(l)); }); return;
    case Opcode::kDiv:
      for_lanes([&](int l) -> std::uint64_t {
        if (is_signed) {
          std::int64_t d = as_signed(B(l));
          return d == 0 ? 0 : norm(static_cast<std::uint64_t>(as_signed(A(l)) / d));
        }
        std::uint64_t d = is64 ? B(l) : static_cast<std::uint32_t>(B(l));
        std::uint64_t n = is64 ? A(l) : static_cast<std::uint32_t>(A(l));
        return d == 0 ? 0 : norm(n / d);
      });
      return;
    case Opcode::kRem:
      for_lanes([&](int l) -> std::uint64_t {
        if (is_signed) {
          std::int64_t d = as_signed(B(l));
          return d == 0 ? 0 : norm(static_cast<std::uint64_t>(as_signed(A(l)) % d));
        }
        std::uint64_t d = is64 ? B(l) : static_cast<std::uint32_t>(B(l));
        std::uint64_t n = is64 ? A(l) : static_cast<std::uint32_t>(A(l));
        return d == 0 ? 0 : norm(n % d);
      });
      return;
    case Opcode::kMin:
      for_lanes([&](int l) {
        if (is_signed) return norm(static_cast<std::uint64_t>(std::min(as_signed(A(l)), as_signed(B(l)))));
        std::uint64_t x = is64 ? A(l) : static_cast<std::uint32_t>(A(l));
        std::uint64_t y = is64 ? B(l) : static_cast<std::uint32_t>(B(l));
        return norm(std::min(x, y));
      });
      return;
    case Opcode::kMax:
      for_lanes([&](int l) {
        if (is_signed) return norm(static_cast<std::uint64_t>(std::max(as_signed(A(l)), as_signed(B(l)))));
        std::uint64_t x = is64 ? A(l) : static_cast<std::uint32_t>(A(l));
        std::uint64_t y = is64 ? B(l) : static_cast<std::uint32_t>(B(l));
        return norm(std::max(x, y));
      });
      return;
    case Opcode::kNeg: for_lanes([&](int l) { return norm(~A(l) + 1); }); return;
    case Opcode::kAbs:
      for_lanes([&](int l) {
        std::int64_t v = as_signed(A(l));
        return norm(static_cast<std::uint64_t>(v < 0 ? -v : v));
      });
      return;
    case Opcode::kAnd: for_lanes([&](int l) { return norm(A(l) & B(l)); }); return;
    case Opcode::kOr: for_lanes([&](int l) { return norm(A(l) | B(l)); }); return;
    case Opcode::kXor: for_lanes([&](int l) { return norm(A(l) ^ B(l)); }); return;
    case Opcode::kNot: for_lanes([&](int l) { return norm(~A(l)); }); return;
    case Opcode::kShl:
      for_lanes([&](int l) -> std::uint64_t {
        unsigned width = is64 ? 64 : 32;
        std::uint64_t sh = B(l);
        if (sh >= width) return 0;
        return norm(A(l) << sh);
      });
      return;
    case Opcode::kShr:
      for_lanes([&](int l) -> std::uint64_t {
        unsigned width = is64 ? 64 : 32;
        std::uint64_t sh = B(l);
        if (is_signed) {
          std::int64_t v = as_signed(A(l));
          if (sh >= width) return norm(static_cast<std::uint64_t>(v < 0 ? -1 : 0));
          return norm(static_cast<std::uint64_t>(v >> sh));
        }
        if (sh >= width) return 0;
        std::uint64_t v = is64 ? A(l) : static_cast<std::uint32_t>(A(l));
        return norm(v >> sh);
      });
      return;
    default:
      throw InternalError(Format("unhandled opcode %s for type %s", OpcodeName(i.op),
                                 TypeName(i.type)));
  }
}

void BlockRunner::RunWarp(Warp& w) {
  const std::vector<Instr>& code = kernel_.code;
  const unsigned lane_base = (&w - warps_.data()) * dev_.warp_size;

  while (true) {
    if (w.pc == w.rpc) {
      if (!PopState(w)) {
        w.state = Warp::State::kDone;
        return;
      }
      continue;
    }
    if (w.pc >= code.size()) {
      // Fell off the end: implicit exit of all active lanes.
      w.live &= ~w.mask;
      if (!PopState(w)) {
        w.state = Warp::State::kDone;
        return;
      }
      continue;
    }
    const Instr& inst = code[w.pc];

    if (++stats_->warp_instrs > dev_.watchdog_warp_instrs) {
      throw DeviceError(
          "kernel exceeded the simulator watchdog limit (likely a non-terminating loop); "
          "raise DeviceProfile::watchdog_warp_instrs if the workload is legitimately huge");
    }
    stats_->lane_instrs += std::popcount(w.mask);
    stats_->issue_cycles += IssueCost(dev_, inst);
    if (has_ilp_) ilp_sum_ += kernel_.ilp_at_pc[w.pc];

    switch (inst.op) {
      case Opcode::kBra:
        w.pc = static_cast<std::uint32_t>(inst.target);
        continue;
      case Opcode::kBraPred: {
        const std::uint64_t* preds = Row(inst.a.reg);
        std::uint32_t taken = 0;
        std::uint32_t m = w.mask;
        while (m) {
          int lane = std::countr_zero(m);
          m &= m - 1;
          bool p = preds[lane_base + lane] != 0;
          if (p != inst.neg) taken |= (1u << lane);
        }
        if (taken == w.mask) {
          w.pc = static_cast<std::uint32_t>(inst.target);
        } else if (taken == 0) {
          ++w.pc;
        } else {
          KSPEC_CHECK_MSG(inst.reconv >= 0, "divergent branch without reconvergence point");
          // Join continuation first, then the fall-through side; the taken
          // side executes now.
          w.stack.push_back({static_cast<std::uint32_t>(inst.reconv), w.mask, w.rpc});
          w.stack.push_back({w.pc + 1, w.mask & ~taken,
                             static_cast<std::uint32_t>(inst.reconv)});
          w.mask = taken;
          w.rpc = static_cast<std::uint32_t>(inst.reconv);
          w.pc = static_cast<std::uint32_t>(inst.target);
        }
        continue;
      }
      case Opcode::kBarSync:
        if (w.mask != w.live) {
          throw DeviceError("__syncthreads() executed in divergent control flow");
        }
        ++w.pc;
        w.state = Warp::State::kAtBarrier;
        return;
      case Opcode::kExit: {
        w.live &= ~w.mask;
        for (auto& e : w.stack) e.mask &= w.live;
        if (!PopState(w)) {
          w.state = Warp::State::kDone;
          return;
        }
        continue;
      }
      case Opcode::kLd:
      case Opcode::kSt:
        ExecMemory(inst, w, lane_base);
        ++w.pc;
        continue;
      case Opcode::kAtomAdd:
      case Opcode::kAtomMin:
      case Opcode::kAtomMax:
      case Opcode::kAtomExch:
      case Opcode::kAtomCas:
        ExecAtomic(inst, w, lane_base);
        ++w.pc;
        continue;
      case Opcode::kTex2D:
      case Opcode::kTex1D:
        ExecTexture(inst, w, lane_base);
        ++w.pc;
        continue;
      case Opcode::kNop:
        ++w.pc;
        continue;
      default:
        ExecAlu(inst, w, lane_base);
        ++w.pc;
        continue;
    }
  }
}

}  // namespace

LaunchStats Interpreter::Launch(const CompiledKernel& kernel, const LaunchConfig& cfg,
                                std::span<const unsigned char> const_mem) {
  if (cfg.block.Count() == 0 || cfg.grid.Count() == 0) {
    throw DeviceError("empty grid or block");
  }
  if (cfg.block.Count() > dev_.max_threads_per_block) {
    throw DeviceError(Format("block of %llu threads exceeds device limit %u",
                             cfg.block.Count(), dev_.max_threads_per_block));
  }
  unsigned smem = kernel.static_smem_bytes + cfg.dynamic_smem_bytes;
  if (smem > dev_.shared_mem_per_sm) {
    throw DeviceError(Format("shared memory per block %u exceeds device limit %u", smem,
                             dev_.shared_mem_per_sm));
  }
  // Register demand beyond the device limit spills to local memory, exactly
  // as nvcc would: the kernel still runs, but every spilled value pays
  // memory traffic (and the clamped count is what occupancy sees).
  const unsigned wanted_regs = std::max(kernel.stats.reg_count, 1);
  unsigned regs = wanted_regs;
  unsigned spilled = 0;
  if (regs > dev_.max_regs_per_thread) {
    spilled = regs - dev_.max_regs_per_thread;
    regs = dev_.max_regs_per_thread;
  }

  LaunchStats stats;
  stats.spilled_regs = spilled;
  stats.blocks = static_cast<unsigned>(cfg.grid.Count());
  stats.threads_per_block = static_cast<unsigned>(cfg.block.Count());
  stats.regs_per_thread = regs;
  stats.smem_per_block = smem;
  stats.occupancy = ComputeOccupancy(dev_, cfg.block, regs, smem);
  if (stats.occupancy.blocks_per_sm == 0) {
    throw DeviceError(Format("kernel cannot be launched: zero occupancy (limited by %s)",
                             stats.occupancy.limiter));
  }

  BlockRunner runner(dev_, gmem_, kernel, cfg, const_mem, &stats);
  for (unsigned z = 0; z < cfg.grid.z; ++z) {
    for (unsigned y = 0; y < cfg.grid.y; ++y) {
      for (unsigned x = 0; x < cfg.grid.x; ++x) {
        runner.RunBlock(Dim3(x, y, z));
      }
    }
  }
  if (stats.warp_instrs > 0 && runner.ilp_sum() > 0) {
    stats.avg_ilp = runner.ilp_sum() / static_cast<double>(stats.warp_instrs);
  }
  if (spilled > 0) {
    // Approximate spill traffic: the fraction of values living in local
    // memory forces a load+store round trip on roughly that fraction of
    // instructions (local accesses coalesce, so charge throughput cost).
    double spill_frac =
        std::min(1.0, 2.0 * static_cast<double>(spilled) / static_cast<double>(wanted_regs));
    stats.memory_cycles += static_cast<double>(stats.warp_instrs) * spill_frac *
                           0.5 * dev_.cycles_per_global_tx;
  }
  ApplyCostModel(dev_, stats);
  return stats;
}

}  // namespace kspec::vgpu
