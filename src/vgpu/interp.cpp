// Interpreter internals: the decoded-dispatch fast path and the block-level
// parallel execution engine. See the header comment and DESIGN.md section 8
// for the architecture; the short version:
//
//   decode once   — DecodeKernel turns the static instruction stream into a
//                   table of {handler fn, issue cost, static ILP, kind}. The
//                   per-issue switches over opcode, operand type, and issue
//                   cost run once per *static* instruction instead of once
//                   per *dynamic* one; the inner loop is a kind dispatch plus
//                   one indirect call with the operand rows hoisted.
//   run chunked   — the grid is split into chunks by a rule that depends only
//                   on the grid (never on the worker count); each chunk
//                   accumulates its own BlockStats in block order, partials
//                   fold in chunk order, so stats are bit-identical across
//                   worker counts, serial included.
//   real atomics  — global-space atomics are std::atomic_ref RMW on the
//                   arena, so cross-block reductions stay exact when blocks
//                   execute concurrently.
#include "vgpu/interp.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/math.hpp"
#include "support/str.hpp"
#include "vgpu/cost.hpp"
#include "vgpu/exec_pool.hpp"
#include "vgpu/tier.hpp"

namespace kspec::vgpu {

// Internal machinery. Deliberately *not* in an anonymous namespace:
// DecodedKernel has external linkage (it is forward-declared in the header),
// so the types it embeds must too.
namespace interp_detail {

constexpr std::uint32_t kNoReconv = 0xffffffffu;
constexpr std::uint32_t kFullMask = 0xffffffffu;

struct StackEntry {
  std::uint32_t pc;
  std::uint32_t mask;
  std::uint32_t rpc;
};

struct Warp {
  std::uint32_t pc = 0;
  std::uint32_t mask = 0;   // active lanes
  std::uint32_t live = 0;   // non-retired lanes
  std::uint32_t rpc = kNoReconv;
  std::vector<StackEntry> stack;
  enum class State { kRunnable, kAtBarrier, kDone } state = State::kRunnable;
};

class BlockRunner;

// One decoded-instruction handler. The Instr is passed alongside so handlers
// stay stateless function pointers (operand registers, immediates, and the
// compare/space/target fields live on the Instr row).
using ExecFn = void (*)(BlockRunner&, const Instr&, Warp&, unsigned lane_base);

enum class DKind : std::uint8_t {
  kBra, kBraPred, kBarSync, kExit, kMem, kAtomic, kTex, kNop, kAlu,
};

struct DecodedInstr {
  ExecFn fn = nullptr;     // kAlu only
  double issue_cost = 1.0;
  float ilp = 0.0f;
  DKind kind = DKind::kAlu;
};

// An operand with its per-lane row pointer hoisted: resolved once per
// warp-instruction instead of once per lane access.
struct LaneSrc {
  const std::uint64_t* row;  // pre-offset by lane_base; nullptr -> immediate
  std::uint64_t imm;
  std::uint64_t operator[](unsigned l) const { return row ? row[l] : imm; }
};

// Writes f(l) to dst[l] for every active lane. The full-mask case — the hot
// one by far — is a plain countable loop the compiler can unroll/vectorize.
template <typename F>
inline void StoreLanes(std::uint32_t mask, std::uint64_t* dst, F&& f) {
  if (mask == kFullMask) {
    for (unsigned l = 0; l < 32; ++l) dst[l] = f(l);
    return;
  }
  while (mask) {
    const unsigned l = static_cast<unsigned>(std::countr_zero(mask));
    mask &= mask - 1;
    dst[l] = f(l);
  }
}

template <Type TY>
struct FTraits;
template <>
struct FTraits<Type::kF32> {
  using T = float;
  static T Get(std::uint64_t v) { return DecodeF32(v); }
  static std::uint64_t Put(T v) { return EncodeF32(v); }
};
template <>
struct FTraits<Type::kF64> {
  using T = double;
  static T Get(std::uint64_t v) { return DecodeF64(v); }
  static std::uint64_t Put(T v) { return EncodeF64(v); }
};

// Integer semantics shared with the pre-decoded interpreter: arithmetic wraps;
// results are normalized to the type's width (signed 32-bit values re-encoded
// sign-extended); shifts clamp at the width; division by zero yields zero.
template <bool is64, bool sg>
inline std::uint64_t INorm(std::uint64_t v) {
  if constexpr (is64) {
    return v;
  } else {
    const std::uint32_t t = static_cast<std::uint32_t>(v);
    if constexpr (sg) return EncodeI32(static_cast<std::int32_t>(t));
    return t;
  }
}

template <bool is64>
inline std::int64_t IAsSigned(std::uint64_t v) {
  if constexpr (is64) return static_cast<std::int64_t>(v);
  return DecodeI32(v);
}

// Constexpr mirror of IsIntType (isa.cpp) for `if constexpr` template bodies.
constexpr bool IsIntTypeC(Type t) {
  return t == Type::kI32 || t == Type::kU32 || t == Type::kI64 || t == Type::kU64;
}

template <CmpOp CMP, typename T>
inline bool CmpApply(T x, T y) {
  if constexpr (CMP == CmpOp::kEq) return x == y;
  if constexpr (CMP == CmpOp::kNe) return x != y;
  if constexpr (CMP == CmpOp::kLt) return x < y;
  if constexpr (CMP == CmpOp::kLe) return x <= y;
  if constexpr (CMP == CmpOp::kGt) return x > y;
  if constexpr (CMP == CmpOp::kGe) return x >= y;
}

}  // namespace interp_detail

using namespace interp_detail;

struct DecodedKernel {
  std::string name;
  std::vector<Instr> code;
  std::vector<DecodedInstr> dec;
  std::size_t num_params = 0;
  int num_vregs = 0;
  unsigned static_smem_bytes = 0;
  int reg_count = 0;  // compile-time register demand (pre-clamp)
  // Any atomic on global space: the *returned* old values are
  // schedule-dependent, so the auto policy keeps such kernels serial.
  bool has_global_atomic = false;
};

namespace interp_detail {

// Executes the blocks of one chunk on one host thread. A runner owns the
// per-block state (register file, shared memory, warps) and is reused across
// blocks — and across chunks, through the runner free-list in Launch — so the
// per-block cost is a reset, not an allocation.
class BlockRunner {
 public:
  BlockRunner(const DeviceProfile& dev, GlobalMemory* gmem, const DecodedKernel& dk,
              const LaunchConfig& cfg, std::span<const unsigned char> const_mem)
      : dev_(dev), gmem_(gmem), dk_(dk), cfg_(cfg), const_mem_(const_mem) {
    nthreads_ = static_cast<unsigned>(cfg.block.Count());
    nwarps_ = CeilDiv(nthreads_, dev.warp_size);
    stride_ = nwarps_ * dev.warp_size;
    regs_.resize(static_cast<std::size_t>(dk.num_vregs) * stride_);
    shared_.resize(dk.static_smem_bytes + cfg.dynamic_smem_bytes);
    warps_.resize(nwarps_);
    // Per-lane thread coordinates (identical across blocks).
    tid_x_.resize(stride_);
    tid_y_.resize(stride_);
    tid_z_.resize(stride_);
    for (unsigned t = 0; t < stride_; ++t) {
      unsigned lin = std::min(t, nthreads_ - 1);
      tid_x_[t] = lin % cfg.block.x;
      tid_y_[t] = (lin / cfg.block.x) % cfg.block.y;
      tid_z_[t] = lin / (cfg.block.x * cfg.block.y);
    }
    KSPEC_CHECK_MSG(cfg.args.size() == dk.num_params, "argument count mismatch");
  }

  void set_stats(BlockStats* s) { bstats_ = s; }

  void RunBlock(Dim3 ctaid) {
    ctaid_ = ctaid;
    std::fill(shared_.begin(), shared_.end(), 0);
    InitWarps();
    // Scheduler: run each runnable warp to its next barrier (or retirement);
    // when all live warps have arrived, release the barrier.
    while (true) {
      bool any_runnable = false;
      for (auto& w : warps_) {
        if (w.state == Warp::State::kRunnable) {
          RunWarp(w);
          any_runnable = true;
        }
      }
      bool all_done = true;
      bool any_barrier = false;
      for (auto& w : warps_) {
        if (w.state != Warp::State::kDone) all_done = false;
        if (w.state == Warp::State::kAtBarrier) any_barrier = true;
      }
      if (all_done) return;
      if (!any_barrier) {
        if (!any_runnable) throw DeviceError("block made no progress (scheduler deadlock)");
        continue;
      }
      // Every non-done warp must be at the barrier to release it.
      for (auto& w : warps_) {
        if (w.state == Warp::State::kRunnable) {
          throw DeviceError("__syncthreads deadlock: a warp retired or diverged past the barrier");
        }
      }
      for (auto& w : warps_) {
        if (w.state == Warp::State::kAtBarrier) w.state = Warp::State::kRunnable;
      }
      ++bstats_->barriers;
    }
  }

  std::uint64_t* Row(std::int32_t reg) {
    return regs_.data() + static_cast<std::size_t>(reg) * stride_;
  }
  LaneSrc Src(const Operand& o, unsigned lane_base) {
    if (o.is_reg()) return {Row(o.reg) + lane_base, 0};
    return {nullptr, o.imm};
  }

  // ---- ALU handlers (selected at decode, one indirect call per issue) ----

  template <Opcode OP, Type TY>
  static void AluOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base);
  template <Type TY, CmpOp CMP>
  static void SetpOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base);
  template <Type DT, Type ST>
  static void CvtOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base);
  static void MovOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base);
  static void SelOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base);
  static void SregOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base);
  // Invalid (opcode, type) pairs decode to this: the error still fires at
  // execution time (not decode time), exactly like the pre-decoded switch.
  static void BadOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base);

  // Memory handler specialized at decode on (space, direction, element size,
  // i32 sign handling): the per-issue space/size branching disappears and the
  // copy loops use fixed-width accesses. Combinations outside the templates
  // (const stores, exotic sizes) decode to GenericMemOp.
  template <Space SP, bool LOAD, int ESZ, bool SEXT>
  static void MemOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base);
  static void GenericMemOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base);

 private:
  void InitWarps() {
    for (unsigned w = 0; w < nwarps_; ++w) {
      unsigned first = w * dev_.warp_size;
      unsigned count = std::min(dev_.warp_size, nthreads_ - first);
      std::uint32_t mask = count == 32 ? kFullMask : ((1u << count) - 1u);
      warps_[w].pc = 0;
      warps_[w].mask = mask;
      warps_[w].live = mask;
      warps_[w].rpc = kNoReconv;
      warps_[w].state = Warp::State::kRunnable;
      warps_[w].stack.clear();
    }
    // Kernel parameters land in virtual registers [0, nparams). Refilled per
    // block: parameter registers are ordinary vregs a kernel may overwrite.
    for (std::size_t p = 0; p < cfg_.args.size(); ++p) {
      std::uint64_t* row = regs_.data() + p * stride_;
      std::fill(row, row + stride_, cfg_.args[p]);
    }
  }

  // Pops reconvergence-stack entries until one with live lanes is found.
  // Returns false when the warp has fully retired.
  static bool PopState(Warp& w) {
    while (!w.stack.empty()) {
      StackEntry e = w.stack.back();
      w.stack.pop_back();
      e.mask &= w.live;
      if (e.mask) {
        w.pc = e.pc;
        w.mask = e.mask;
        w.rpc = e.rpc;
        return true;
      }
    }
    return false;
  }

  void RunWarp(Warp& w);

  void ExecMemory(const Instr& i, Warp& w, unsigned lane_base);
  // Per-lane ResolveAddress copy loops — the precise-diagnostics slow path
  // shared by the generic and the specialized memory handlers.
  void MemSlowLoop(const Instr& i, Warp& w, unsigned lane_base, const std::uint64_t* addrs);
  void ExecAtomic(const Instr& i, Warp& w, unsigned lane_base);
  void ExecTexture(const Instr& i, Warp& w, unsigned lane_base);

  // Charges global-memory transactions for the active lanes' addresses.
  // lo/hi are the min/max lane addresses (single-segment fast path).
  void ChargeGlobal(const std::uint64_t* addrs, std::uint32_t mask, std::uint64_t lo,
                    std::uint64_t hi);
  // Charges shared-memory bank conflicts. `conflict_free` skips the counting
  // scan for address patterns the caller has proven conflict-free.
  void ChargeShared(const std::uint64_t* addrs, std::uint32_t mask, bool conflict_free);

  unsigned char* ResolveAddress(Space space, std::uint64_t addr, std::size_t bytes,
                                bool for_write);

  std::uint64_t AtomicRmwGlobal(const Instr& i, unsigned char* p, std::uint64_t operand,
                                std::uint64_t cval);
  std::uint64_t PlainRmw(const Instr& i, unsigned char* p, std::uint64_t operand,
                         std::uint64_t cval);

  const DeviceProfile& dev_;
  GlobalMemory* gmem_;
  const DecodedKernel& dk_;
  const LaunchConfig& cfg_;
  std::span<const unsigned char> const_mem_;
  BlockStats* bstats_ = nullptr;

  unsigned nthreads_ = 0;
  unsigned nwarps_ = 0;
  unsigned stride_ = 0;
  Dim3 ctaid_;
  std::vector<std::uint64_t> regs_;
  std::vector<unsigned char> shared_;
  std::vector<std::uint32_t> tid_x_, tid_y_, tid_z_;
  std::vector<Warp> warps_;
  // Warp instructions retired by this runner so far (across blocks): the
  // watchdog budget is per runner, so a non-terminating loop still trips it.
  std::uint64_t wd_accum_ = 0;
};

template <Opcode OP, Type TY>
void BlockRunner::AluOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base) {
  std::uint64_t* dst = R.Row(i.dst) + lane_base;
  const LaneSrc a = R.Src(i.a, lane_base);
  [[maybe_unused]] const LaneSrc b = R.Src(i.b, lane_base);
  [[maybe_unused]] const LaneSrc c = R.Src(i.c, lane_base);

  if constexpr (TY == Type::kF32 || TY == Type::kF64) {
    using FT = FTraits<TY>;
    using T = typename FT::T;
    StoreLanes(w.mask, dst, [&](unsigned l) -> std::uint64_t {
      const T av = FT::Get(a[l]);
      if constexpr (OP == Opcode::kAdd) return FT::Put(av + FT::Get(b[l]));
      else if constexpr (OP == Opcode::kSub) return FT::Put(av - FT::Get(b[l]));
      else if constexpr (OP == Opcode::kMul) return FT::Put(av * FT::Get(b[l]));
      else if constexpr (OP == Opcode::kDiv) return FT::Put(av / FT::Get(b[l]));
      else if constexpr (OP == Opcode::kRem) return FT::Put(std::fmod(av, FT::Get(b[l])));
      else if constexpr (OP == Opcode::kMad) return FT::Put(av * FT::Get(b[l]) + FT::Get(c[l]));
      else if constexpr (OP == Opcode::kMin) return FT::Put(std::min(av, FT::Get(b[l])));
      else if constexpr (OP == Opcode::kMax) return FT::Put(std::max(av, FT::Get(b[l])));
      else if constexpr (OP == Opcode::kNeg) return FT::Put(-av);
      else if constexpr (OP == Opcode::kAbs) return FT::Put(std::fabs(av));
      else if constexpr (OP == Opcode::kSqrt) return FT::Put(std::sqrt(av));
      else if constexpr (OP == Opcode::kRsqrt) return FT::Put(T(1) / std::sqrt(av));
      else if constexpr (OP == Opcode::kFloor) return FT::Put(std::floor(av));
      else if constexpr (OP == Opcode::kCeil) return FT::Put(std::ceil(av));
      else if constexpr (OP == Opcode::kExp) return FT::Put(std::exp(av));
      else if constexpr (OP == Opcode::kLog) return FT::Put(std::log(av));
      else if constexpr (OP == Opcode::kSin) return FT::Put(std::sin(av));
      else if constexpr (OP == Opcode::kCos) return FT::Put(std::cos(av));
    });
  } else {
    constexpr bool is64 = TY == Type::kI64 || TY == Type::kU64;
    constexpr bool sg = TY == Type::kI32 || TY == Type::kI64;
    StoreLanes(w.mask, dst, [&](unsigned l) -> std::uint64_t {
      const std::uint64_t av = a[l];
      if constexpr (OP == Opcode::kAdd) return INorm<is64, sg>(av + b[l]);
      else if constexpr (OP == Opcode::kSub) return INorm<is64, sg>(av - b[l]);
      else if constexpr (OP == Opcode::kMul) return INorm<is64, sg>(av * b[l]);
      else if constexpr (OP == Opcode::kMad) return INorm<is64, sg>(av * b[l] + c[l]);
      else if constexpr (OP == Opcode::kMul24) {
        const std::uint64_t x = av & 0xffffffu, y = b[l] & 0xffffffu;
        if constexpr (sg) {
          const std::int64_t sx = static_cast<std::int64_t>(x << 40) >> 40;
          const std::int64_t sy = static_cast<std::int64_t>(y << 40) >> 40;
          return INorm<is64, sg>(static_cast<std::uint64_t>(sx * sy));
        } else {
          return INorm<is64, sg>(x * y);
        }
      } else if constexpr (OP == Opcode::kDiv) {
        if constexpr (sg) {
          const std::int64_t d = IAsSigned<is64>(b[l]);
          return d == 0 ? 0
                        : INorm<is64, sg>(static_cast<std::uint64_t>(IAsSigned<is64>(av) / d));
        } else {
          const std::uint64_t d = is64 ? b[l] : static_cast<std::uint32_t>(b[l]);
          const std::uint64_t n = is64 ? av : static_cast<std::uint32_t>(av);
          return d == 0 ? 0 : INorm<is64, sg>(n / d);
        }
      } else if constexpr (OP == Opcode::kRem) {
        if constexpr (sg) {
          const std::int64_t d = IAsSigned<is64>(b[l]);
          return d == 0 ? 0
                        : INorm<is64, sg>(static_cast<std::uint64_t>(IAsSigned<is64>(av) % d));
        } else {
          const std::uint64_t d = is64 ? b[l] : static_cast<std::uint32_t>(b[l]);
          const std::uint64_t n = is64 ? av : static_cast<std::uint32_t>(av);
          return d == 0 ? 0 : INorm<is64, sg>(n % d);
        }
      } else if constexpr (OP == Opcode::kMin || OP == Opcode::kMax) {
        if constexpr (sg) {
          const std::int64_t x = IAsSigned<is64>(av), y = IAsSigned<is64>(b[l]);
          const std::int64_t r = OP == Opcode::kMin ? std::min(x, y) : std::max(x, y);
          return INorm<is64, sg>(static_cast<std::uint64_t>(r));
        } else {
          const std::uint64_t x = is64 ? av : static_cast<std::uint32_t>(av);
          const std::uint64_t y = is64 ? b[l] : static_cast<std::uint32_t>(b[l]);
          return INorm<is64, sg>(OP == Opcode::kMin ? std::min(x, y) : std::max(x, y));
        }
      } else if constexpr (OP == Opcode::kNeg) {
        return INorm<is64, sg>(~av + 1);
      } else if constexpr (OP == Opcode::kAbs) {
        const std::int64_t v = IAsSigned<is64>(av);
        return INorm<is64, sg>(static_cast<std::uint64_t>(v < 0 ? -v : v));
      } else if constexpr (OP == Opcode::kAnd) {
        return INorm<is64, sg>(av & b[l]);
      } else if constexpr (OP == Opcode::kOr) {
        return INorm<is64, sg>(av | b[l]);
      } else if constexpr (OP == Opcode::kXor) {
        return INorm<is64, sg>(av ^ b[l]);
      } else if constexpr (OP == Opcode::kNot) {
        return INorm<is64, sg>(~av);
      } else if constexpr (OP == Opcode::kShl) {
        constexpr unsigned width = is64 ? 64 : 32;
        const std::uint64_t sh = b[l];
        if (sh >= width) return 0;
        return INorm<is64, sg>(av << sh);
      } else if constexpr (OP == Opcode::kShr) {
        constexpr unsigned width = is64 ? 64 : 32;
        const std::uint64_t sh = b[l];
        if constexpr (sg) {
          const std::int64_t v = IAsSigned<is64>(av);
          if (sh >= width) return INorm<is64, sg>(static_cast<std::uint64_t>(v < 0 ? -1 : 0));
          return INorm<is64, sg>(static_cast<std::uint64_t>(v >> sh));
        } else {
          if (sh >= width) return 0;
          const std::uint64_t v = is64 ? av : static_cast<std::uint32_t>(av);
          return INorm<is64, sg>(v >> sh);
        }
      }
    });
  }
}

template <Type TY, CmpOp CMP>
void BlockRunner::SetpOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base) {
  std::uint64_t* dst = R.Row(i.dst) + lane_base;
  const LaneSrc a = R.Src(i.a, lane_base);
  const LaneSrc b = R.Src(i.b, lane_base);
  StoreLanes(w.mask, dst, [&](unsigned l) -> std::uint64_t {
    if constexpr (TY == Type::kI32) {
      return CmpApply<CMP, std::int64_t>(DecodeI32(a[l]), DecodeI32(b[l]));
    } else if constexpr (TY == Type::kU32) {
      return CmpApply<CMP, std::int64_t>(static_cast<std::uint32_t>(a[l]),
                                         static_cast<std::uint32_t>(b[l]));
    } else if constexpr (TY == Type::kI64) {
      return CmpApply<CMP, std::int64_t>(static_cast<std::int64_t>(a[l]),
                                         static_cast<std::int64_t>(b[l]));
    } else if constexpr (TY == Type::kU64 || TY == Type::kPred) {
      return CmpApply<CMP, std::uint64_t>(a[l], b[l]);
    } else if constexpr (TY == Type::kF32) {
      return CmpApply<CMP, double>(DecodeF32(a[l]), DecodeF32(b[l]));
    } else {
      return CmpApply<CMP, double>(DecodeF64(a[l]), DecodeF64(b[l]));
    }
  });
}

template <Type DT, Type ST>
void BlockRunner::CvtOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base) {
  std::uint64_t* dst = R.Row(i.dst) + lane_base;
  const LaneSrc a = R.Src(i.a, lane_base);
  // Integer->integer conversions must not round-trip through double
  // (precision loss on 64-bit); handle them on the integer path.
  if constexpr (IsIntTypeC(DT) && (IsIntTypeC(ST) || ST == Type::kPred)) {
    StoreLanes(w.mask, dst, [&](unsigned l) -> std::uint64_t {
      const std::uint64_t v = a[l];
      std::int64_t sv;
      if constexpr (ST == Type::kI32) sv = DecodeI32(v);
      else if constexpr (ST == Type::kU32) sv = static_cast<std::uint32_t>(v);
      else sv = static_cast<std::int64_t>(v);
      if constexpr (DT == Type::kI32) return EncodeI32(static_cast<std::int32_t>(sv));
      else if constexpr (DT == Type::kU32) return static_cast<std::uint32_t>(sv);
      else return static_cast<std::uint64_t>(sv);
    });
  } else {
    StoreLanes(w.mask, dst, [&](unsigned l) -> std::uint64_t {
      double v;
      if constexpr (ST == Type::kI32) v = DecodeI32(a[l]);
      else if constexpr (ST == Type::kU32) v = static_cast<std::uint32_t>(a[l]);
      else if constexpr (ST == Type::kI64) v = static_cast<double>(static_cast<std::int64_t>(a[l]));
      else if constexpr (ST == Type::kU64) v = static_cast<double>(a[l]);
      else if constexpr (ST == Type::kF32) v = DecodeF32(a[l]);
      else if constexpr (ST == Type::kF64) v = DecodeF64(a[l]);
      else v = a[l] ? 1.0 : 0.0;
      if constexpr (DT == Type::kI32) return EncodeI32(static_cast<std::int32_t>(v));
      else if constexpr (DT == Type::kU32)
        return static_cast<std::uint32_t>(static_cast<std::int64_t>(v));
      else if constexpr (DT == Type::kI64)
        return static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
      else if constexpr (DT == Type::kU64) return static_cast<std::uint64_t>(v);
      else if constexpr (DT == Type::kF32) return EncodeF32(static_cast<float>(v));
      else if constexpr (DT == Type::kF64) return EncodeF64(v);
      else return v != 0.0;
    });
  }
}

void BlockRunner::MovOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base) {
  std::uint64_t* dst = R.Row(i.dst) + lane_base;
  const LaneSrc a = R.Src(i.a, lane_base);
  StoreLanes(w.mask, dst, [&](unsigned l) { return a[l]; });
}

void BlockRunner::SelOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base) {
  std::uint64_t* dst = R.Row(i.dst) + lane_base;
  const LaneSrc a = R.Src(i.a, lane_base);
  const LaneSrc b = R.Src(i.b, lane_base);
  const LaneSrc c = R.Src(i.c, lane_base);
  StoreLanes(w.mask, dst, [&](unsigned l) { return c[l] ? a[l] : b[l]; });
}

void BlockRunner::SregOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base) {
  std::uint64_t* dst = R.Row(i.dst) + lane_base;
  const auto sr = static_cast<SpecialReg>(i.a.imm);
  StoreLanes(w.mask, dst, [&](unsigned l) -> std::uint64_t {
    const unsigned t = lane_base + l;
    switch (sr) {
      case SpecialReg::kTidX: return R.tid_x_[t];
      case SpecialReg::kTidY: return R.tid_y_[t];
      case SpecialReg::kTidZ: return R.tid_z_[t];
      case SpecialReg::kNtidX: return R.cfg_.block.x;
      case SpecialReg::kNtidY: return R.cfg_.block.y;
      case SpecialReg::kNtidZ: return R.cfg_.block.z;
      case SpecialReg::kCtaidX: return R.ctaid_.x;
      case SpecialReg::kCtaidY: return R.ctaid_.y;
      case SpecialReg::kCtaidZ: return R.ctaid_.z;
      case SpecialReg::kNctaidX: return R.cfg_.grid.x;
      case SpecialReg::kNctaidY: return R.cfg_.grid.y;
      case SpecialReg::kNctaidZ: return R.cfg_.grid.z;
      case SpecialReg::kLaneId: return l;
      case SpecialReg::kWarpId: return t / R.dev_.warp_size;
    }
    return 0;
  });
}

void BlockRunner::BadOp(BlockRunner&, const Instr& i, Warp&, unsigned) {
  if (i.type == Type::kF32) throw InternalError(Format("op %s invalid for f32", OpcodeName(i.op)));
  if (i.type == Type::kF64) throw InternalError(Format("op %s invalid for f64", OpcodeName(i.op)));
  throw InternalError(
      Format("unhandled opcode %s for type %s", OpcodeName(i.op), TypeName(i.type)));
}

unsigned char* BlockRunner::ResolveAddress(Space space, std::uint64_t addr, std::size_t bytes,
                                           bool for_write) {
  switch (space) {
    case Space::kGlobal:
      return gmem_->Access(addr, bytes);
    case Space::kShared:
      if (addr + bytes > shared_.size()) {
        throw DeviceError(Format("shared-memory access out of bounds: 0x%llx (+%zu) of %zu bytes",
                                 static_cast<unsigned long long>(addr), bytes, shared_.size()));
      }
      return shared_.data() + addr;
    case Space::kConst:
      if (for_write) throw DeviceError("store to constant memory");
      if (addr + bytes > const_mem_.size()) {
        throw DeviceError(Format("constant-memory access out of bounds: 0x%llx of %zu bytes",
                                 static_cast<unsigned long long>(addr), const_mem_.size()));
      }
      return const_cast<unsigned char*>(const_mem_.data() + addr);
    default:
      throw DeviceError("unsupported memory space in ld/st");
  }
}

void BlockRunner::ChargeGlobal(const std::uint64_t* addrs, std::uint32_t mask,
                               std::uint64_t lo, std::uint64_t hi) {
  // Transactions are 128-byte segments. cc1.x coalesces per half-warp,
  // cc2.x per full warp through the L1 line.
  //
  // Fully-coalesced accesses — the whole warp inside one segment — are the
  // overwhelmingly common case and need no dedup scan: one transaction per
  // non-empty coalescing group.
  if ((lo >> 7) == (hi >> 7)) {
    int tx;
    if (dev_.IsFermi()) {
      tx = 1;
    } else {
      tx = ((mask & 0xffffu) ? 1 : 0) + ((mask >> 16) ? 1 : 0);
    }
    bstats_->mem_transactions += tx;
    bstats_->memory_cycles += tx * dev_.cycles_per_global_tx;
    ++bstats_->global_instrs;
    return;
  }
  auto count_segments = [&](std::uint32_t m) {
    std::uint64_t segs[32];
    int n = 0;
    std::uint64_t last = ~0ull;
    while (m) {
      int lane = std::countr_zero(m);
      m &= m - 1;
      std::uint64_t seg = addrs[lane] >> 7;
      // Consecutive lanes overwhelmingly hit the same segment (coalesced
      // access): skip the dedup scan for runs.
      if (seg == last) continue;
      last = seg;
      bool seen = false;
      for (int k = 0; k < n; ++k) {
        if (segs[k] == seg) {
          seen = true;
          break;
        }
      }
      if (!seen) segs[n++] = seg;
    }
    return n;
  };
  int tx = 0;
  if (dev_.IsFermi()) {
    tx = count_segments(mask);
  } else {
    tx = count_segments(mask & 0xffffu) + count_segments(mask >> 16 << 16);
  }
  bstats_->mem_transactions += tx;
  bstats_->memory_cycles += tx * dev_.cycles_per_global_tx;
  ++bstats_->global_instrs;
}

void BlockRunner::ChargeShared(const std::uint64_t* addrs, std::uint32_t mask,
                               bool conflict_free) {
  // `conflict_free` is proven by the caller during its address sweep: either
  // every active lane reads the same word (a broadcast — served in one cycle
  // on both generations) or lane addresses are word-linear in the lane index
  // with a lane span smaller than the bank count, which touches every bank at
  // most once per conflict group. Both yield degree 1 in the general scan
  // below, so skipping it charges exactly the same cycles.
  if (conflict_free) {
    bstats_->issue_cycles += (dev_.shared_access_cost - 1.0);
    return;
  }
  // Conflict degree = max number of distinct addresses mapping to one bank.
  auto degree = [&](std::uint32_t m) {
    int counts[32] = {0};
    std::uint64_t seen_addr[32];
    int seen_n = 0;
    while (m) {
      int lane = std::countr_zero(m);
      m &= m - 1;
      std::uint64_t a = addrs[lane];
      bool dup = false;
      for (int k = 0; k < seen_n; ++k) {
        if (seen_addr[k] == a) {
          dup = true;  // same word: broadcast, no extra cycle
          break;
        }
      }
      if (dup) continue;
      if (seen_n < 32) seen_addr[seen_n++] = a;
      ++counts[(a >> 2) % dev_.shared_mem_banks];
    }
    int d = 1;
    for (int b = 0; b < 32; ++b) d = std::max(d, counts[b]);
    return d;
  };
  int extra;
  if (dev_.IsFermi()) {
    extra = degree(mask) - 1;
  } else {
    extra = (degree(mask & 0xffffu) - 1) + (degree(mask >> 16 << 16) - 1);
  }
  if (extra > 0) {
    bstats_->shared_conflict_cycles += extra;
    bstats_->issue_cycles += extra;
  }
  bstats_->issue_cycles += (dev_.shared_access_cost - 1.0);
}

void BlockRunner::ExecMemory(const Instr& i, Warp& w, unsigned lane_base) {
  std::uint64_t addrs[32];
  const std::size_t esz = TypeSize(i.type);
  const LaneSrc aop = Src(i.a, lane_base);
  const std::uint64_t off = static_cast<std::uint64_t>(static_cast<std::int64_t>(i.b.imm));
  // One sweep computes the lane addresses, the span, and the two address-
  // pattern flags the cost charges exploit (broadcast / word-linear).
  const int lane0 = std::countr_zero(w.mask);
  const std::uint64_t a0 = aop[lane0] + off;
  std::uint64_t lo = a0, hi = a0;
  bool all_same = true, linear4 = true;
  addrs[lane0] = a0;
  {
    std::uint32_t m = w.mask & (w.mask - 1);  // lanes after the first
    while (m) {
      const int lane = std::countr_zero(m);
      m &= m - 1;
      const std::uint64_t addr = aop[lane] + off;
      addrs[lane] = addr;
      lo = std::min(lo, addr);
      hi = std::max(hi, addr);
      all_same &= (addr == a0);
      linear4 &= (addr - a0 == 4ull * static_cast<unsigned>(lane - lane0));
    }
  }
  if (i.space == Space::kGlobal) {
    ChargeGlobal(addrs, w.mask, lo, hi);
  } else if (i.space == Space::kShared) {
    const unsigned lane_span =
        static_cast<unsigned>(31 - std::countl_zero(w.mask)) - static_cast<unsigned>(lane0);
    ChargeShared(addrs, w.mask,
                 all_same || (linear4 && lane_span < dev_.shared_mem_banks));
  }

  // Fast path: resolve the whole warp's address span with one bounds check,
  // then run tight per-lane copy loops. Falls back to per-lane
  // ResolveAddress (and its precise DeviceError) when the span is not
  // contained — global: in a single live allocation; shared/const: in the
  // region — or on a store to constant memory.
  unsigned char* base = nullptr;
  std::uint64_t rebase = 0;
  if (i.space == Space::kGlobal) {
    const unsigned char* span = gmem_->TryAccess(lo, hi + esz - lo);
    if (span) {
      base = const_cast<unsigned char*>(span);
      rebase = lo;
    }
  } else if (i.space == Space::kShared) {
    if (hi + esz <= shared_.size()) base = shared_.data();
  } else if (i.space == Space::kConst && i.op == Opcode::kLd) {
    if (hi + esz <= const_mem_.size()) {
      base = const_cast<unsigned char*>(const_mem_.data());
    }
  }
  if (base) {
    if (i.op == Opcode::kLd) {
      std::uint64_t* dst = Row(i.dst) + lane_base;
      const bool sext = i.type == Type::kI32;
      if (w.mask == kFullMask) {
        for (int lane = 0; lane < 32; ++lane) {
          std::uint64_t raw = 0;
          std::memcpy(&raw, base + (addrs[lane] - rebase), esz);
          if (sext) raw = EncodeI32(static_cast<std::int32_t>(raw));  // sign handling
          dst[lane] = raw;
        }
      } else {
        std::uint32_t m = w.mask;
        while (m) {
          const int lane = std::countr_zero(m);
          m &= m - 1;
          std::uint64_t raw = 0;
          std::memcpy(&raw, base + (addrs[lane] - rebase), esz);
          if (sext) raw = EncodeI32(static_cast<std::int32_t>(raw));  // sign handling
          dst[lane] = raw;
        }
      }
    } else {
      const LaneSrc cop = Src(i.c, lane_base);
      if (w.mask == kFullMask) {
        for (int lane = 0; lane < 32; ++lane) {
          const std::uint64_t raw = cop[lane];
          std::memcpy(base + (addrs[lane] - rebase), &raw, esz);
        }
      } else {
        std::uint32_t m = w.mask;
        while (m) {
          const int lane = std::countr_zero(m);
          m &= m - 1;
          const std::uint64_t raw = cop[lane];
          std::memcpy(base + (addrs[lane] - rebase), &raw, esz);
        }
      }
    }
    return;
  }

  MemSlowLoop(i, w, lane_base, addrs);
}

void BlockRunner::MemSlowLoop(const Instr& i, Warp& w, unsigned lane_base,
                              const std::uint64_t* addrs) {
  const std::size_t esz = TypeSize(i.type);
  std::uint32_t m = w.mask;
  if (i.op == Opcode::kLd) {
    std::uint64_t* dst = Row(i.dst) + lane_base;
    while (m) {
      const int lane = std::countr_zero(m);
      m &= m - 1;
      const unsigned char* p = ResolveAddress(i.space, addrs[lane], esz, false);
      std::uint64_t raw = 0;
      std::memcpy(&raw, p, esz);
      if (i.type == Type::kI32) raw = EncodeI32(static_cast<std::int32_t>(raw));  // sign handling
      dst[lane] = raw;
    }
  } else {
    const LaneSrc cop = Src(i.c, lane_base);
    while (m) {
      const int lane = std::countr_zero(m);
      m &= m - 1;
      unsigned char* p = ResolveAddress(i.space, addrs[lane], esz, true);
      const std::uint64_t raw = cop[lane];
      std::memcpy(p, &raw, esz);
    }
  }
}

void BlockRunner::GenericMemOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base) {
  R.ExecMemory(i, w, lane_base);
}

template <Space SP, bool LOAD, int ESZ, bool SEXT>
void BlockRunner::MemOp(BlockRunner& R, const Instr& i, Warp& w, unsigned lane_base) {
  static_assert(SP != Space::kConst || LOAD, "const stores take the generic path");
  std::uint64_t addrs[32];
  const LaneSrc aop = R.Src(i.a, lane_base);
  const std::uint64_t off = static_cast<std::uint64_t>(static_cast<std::int64_t>(i.b.imm));
  const int lane0 = std::countr_zero(w.mask);
  const std::uint64_t a0 = aop[lane0] + off;
  std::uint64_t lo = a0, hi = a0;
  bool all_same = true, linear4 = true;
  addrs[lane0] = a0;
  {
    std::uint32_t m = w.mask & (w.mask - 1);  // lanes after the first
    while (m) {
      const int lane = std::countr_zero(m);
      m &= m - 1;
      const std::uint64_t addr = aop[lane] + off;
      addrs[lane] = addr;
      lo = std::min(lo, addr);
      hi = std::max(hi, addr);
      if constexpr (SP == Space::kShared) {
        all_same &= (addr == a0);
        linear4 &= (addr - a0 == 4ull * static_cast<unsigned>(lane - lane0));
      }
    }
  }
  if constexpr (SP == Space::kGlobal) {
    R.ChargeGlobal(addrs, w.mask, lo, hi);
  } else if constexpr (SP == Space::kShared) {
    const unsigned lane_span =
        static_cast<unsigned>(31 - std::countl_zero(w.mask)) - static_cast<unsigned>(lane0);
    R.ChargeShared(addrs, w.mask,
                   all_same || (linear4 && lane_span < R.dev_.shared_mem_banks));
  }

  unsigned char* base;
  std::uint64_t rebase = 0;
  if constexpr (SP == Space::kGlobal) {
    base = const_cast<unsigned char*>(R.gmem_->TryAccess(lo, hi + ESZ - lo));
    rebase = lo;
  } else if constexpr (SP == Space::kShared) {
    base = hi + ESZ <= R.shared_.size() ? R.shared_.data() : nullptr;
  } else {
    base = hi + ESZ <= R.const_mem_.size()
               ? const_cast<unsigned char*>(R.const_mem_.data())
               : nullptr;
  }
  if (!base) [[unlikely]] {
    R.MemSlowLoop(i, w, lane_base, addrs);  // precise per-lane diagnostics
    return;
  }

  auto load1 = [&](int lane) {
    std::uint64_t raw = 0;
    std::memcpy(&raw, base + (addrs[lane] - rebase), ESZ);
    if constexpr (SEXT) raw = EncodeI32(static_cast<std::int32_t>(raw));  // sign handling
    return raw;
  };
  if constexpr (LOAD) {
    std::uint64_t* dst = R.Row(i.dst) + lane_base;
    if (w.mask == kFullMask) {
      for (int lane = 0; lane < 32; ++lane) dst[lane] = load1(lane);
    } else {
      std::uint32_t m = w.mask;
      while (m) {
        const int lane = std::countr_zero(m);
        m &= m - 1;
        dst[lane] = load1(lane);
      }
    }
  } else {
    const LaneSrc cop = R.Src(i.c, lane_base);
    auto store1 = [&](int lane) {
      const std::uint64_t raw = cop[lane];
      std::memcpy(base + (addrs[lane] - rebase), &raw, ESZ);
    };
    if (w.mask == kFullMask) {
      for (int lane = 0; lane < 32; ++lane) store1(lane);
    } else {
      std::uint32_t m = w.mask;
      while (m) {
        const int lane = std::countr_zero(m);
        m &= m - 1;
        store1(lane);
      }
    }
  }
}

namespace {

// The atomic's new value as a function of the old — identical arithmetic to
// the serial interpreter, shared by the lock-free global path (inside the CAS
// retry loop) and the plain shared-memory path.
template <typename U>
U AtomicCombine(const Instr& i, U old, U operand, U cval) {
  static_assert(sizeof(U) == 4 || sizeof(U) == 8);
  constexpr bool is32 = sizeof(U) == 4;
  switch (i.op) {
    case Opcode::kAtomAdd:
      if (i.type == Type::kF32) {
        if constexpr (is32) return EncodeF32(DecodeF32(old) + DecodeF32(operand));
      } else if (i.type == Type::kF64) {
        if constexpr (!is32) return EncodeF64(DecodeF64(old) + DecodeF64(operand));
      }
      return old + operand;
    case Opcode::kAtomMin:
    case Opcode::kAtomMax: {
      const bool want_min = i.op == Opcode::kAtomMin;
      if (i.type == Type::kI32 || i.type == Type::kI64) {
        using S = std::conditional_t<is32, std::int32_t, std::int64_t>;
        const S x = static_cast<S>(old), y = static_cast<S>(operand);
        return static_cast<U>(want_min ? std::min(x, y) : std::max(x, y));
      }
      if (i.type == Type::kF32) {
        if constexpr (is32) {
          const float x = DecodeF32(old), y = DecodeF32(operand);
          return EncodeF32(want_min ? std::min(x, y) : std::max(x, y));
        }
      }
      return want_min ? std::min(old, operand) : std::max(old, operand);
    }
    case Opcode::kAtomExch:
      return operand;
    case Opcode::kAtomCas:
      return old == operand ? cval : old;
    default:
      throw InternalError("bad atomic opcode");
  }
}

template <typename U>
std::uint64_t AtomicRmwTyped(const Instr& i, unsigned char* p, std::uint64_t operand,
                             std::uint64_t cval) {
  std::atomic_ref<U> ref(*reinterpret_cast<U*>(p));
  U old = ref.load(std::memory_order_relaxed);
  for (;;) {
    const U desired =
        AtomicCombine<U>(i, old, static_cast<U>(operand), static_cast<U>(cval));
    if (ref.compare_exchange_weak(old, desired, std::memory_order_relaxed)) break;
  }
  return old;  // zero-extended, matching the serial memcpy read-back
}

}  // namespace

std::uint64_t BlockRunner::AtomicRmwGlobal(const Instr& i, unsigned char* p,
                                           std::uint64_t operand, std::uint64_t cval) {
  if (TypeSize(i.type) == 4) return AtomicRmwTyped<std::uint32_t>(i, p, operand, cval);
  return AtomicRmwTyped<std::uint64_t>(i, p, operand, cval);
}

std::uint64_t BlockRunner::PlainRmw(const Instr& i, unsigned char* p, std::uint64_t operand,
                                    std::uint64_t cval) {
  const std::size_t esz = TypeSize(i.type);
  std::uint64_t old = 0;
  std::memcpy(&old, p, esz);
  std::uint64_t result;
  if (esz == 4) {
    result = AtomicCombine<std::uint32_t>(i, static_cast<std::uint32_t>(old),
                                          static_cast<std::uint32_t>(operand),
                                          static_cast<std::uint32_t>(cval));
  } else {
    result = AtomicCombine<std::uint64_t>(i, old, operand, cval);
  }
  std::memcpy(p, &result, esz);
  return old;
}

void BlockRunner::ExecAtomic(const Instr& i, Warp& w, unsigned lane_base) {
  std::uint32_t m = w.mask;
  const std::size_t esz = TypeSize(i.type);
  // Atomics serialize: one transaction per active lane.
  const int lanes = std::popcount(m);
  if (i.space == Space::kGlobal) {
    bstats_->mem_transactions += lanes;
    bstats_->memory_cycles += lanes * dev_.cycles_per_global_tx;
    ++bstats_->global_instrs;
  } else {
    bstats_->issue_cycles += lanes;
  }
  std::uint64_t* dst = i.dst >= 0 ? Row(i.dst) + lane_base : nullptr;
  const LaneSrc aop = Src(i.a, lane_base);
  const LaneSrc bop = Src(i.b, lane_base);
  const LaneSrc cop = Src(i.c, lane_base);
  while (m) {
    const int lane = std::countr_zero(m);
    m &= m - 1;
    const std::uint64_t addr = aop[lane];
    std::uint64_t old;
    if (i.space == Space::kGlobal) {
      if (addr % esz != 0) {
        throw DeviceError(Format("misaligned %zu-byte atomic at 0x%llx", esz,
                                 static_cast<unsigned long long>(addr)));
      }
      unsigned char* p = gmem_->Access(addr, esz);
      old = AtomicRmwGlobal(i, p, bop[lane], cop[lane]);
    } else {
      // Shared memory is block-private and a block runs on one host thread,
      // so a plain read-modify-write suffices.
      unsigned char* p = ResolveAddress(i.space, addr, esz, true);
      old = PlainRmw(i, p, bop[lane], cop[lane]);
    }
    if (dst) dst[lane] = old;
  }
}

void BlockRunner::ExecTexture(const Instr& i, Warp& w, unsigned lane_base) {
  if (i.target < 0 || static_cast<std::size_t>(i.target) >= cfg_.textures.size()) {
    throw DeviceError(Format("texture slot %d is not bound at launch", i.target));
  }
  const TextureBinding& tex = cfg_.textures[static_cast<std::size_t>(i.target)];
  if (tex.base == 0 || tex.w <= 0 || tex.h <= 0) {
    throw DeviceError(Format("texture slot %d has an invalid binding", i.target));
  }
  // Texture reads go through the (simulated) texture cache: charge a reduced
  // per-fetch memory cost compared to uncached global loads.
  const int lanes = std::popcount(w.mask);
  bstats_->texture_fetches += static_cast<std::uint64_t>(lanes);
  bstats_->memory_cycles += 0.25 * dev_.cycles_per_global_tx * std::max(1, lanes / 8);
  ++bstats_->global_instrs;

  // Resolve the whole texture once per instruction; per-texel Access only if
  // the binding does not sit in one live allocation.
  const std::uint64_t tex_bytes =
      static_cast<std::uint64_t>(tex.w) * static_cast<std::uint64_t>(tex.h) * 4;
  const unsigned char* tbase = gmem_->TryAccess(tex.base, tex_bytes);

  auto fetch = [&](int x, int y) -> float {
    x = std::clamp(x, 0, tex.w - 1);
    y = std::clamp(y, 0, tex.h - 1);
    const std::uint64_t texel =
        (static_cast<std::uint64_t>(y) * tex.w + static_cast<std::uint64_t>(x)) * 4;
    const unsigned char* p = tbase ? tbase + texel : gmem_->Access(tex.base + texel, 4);
    float v;
    std::memcpy(&v, p, 4);
    return v;
  };

  std::uint64_t* dst = Row(i.dst) + lane_base;
  const LaneSrc aop = Src(i.a, lane_base);
  const LaneSrc bop = Src(i.b, lane_base);
  std::uint32_t m = w.mask;
  while (m) {
    const int lane = std::countr_zero(m);
    m &= m - 1;
    if (i.op == Opcode::kTex1D) {
      const std::int32_t idx = DecodeI32(aop[lane]);
      dst[lane] = EncodeF32(fetch(idx % std::max(tex.w, 1), idx / std::max(tex.w, 1)));
      continue;
    }
    // tex2D with bilinear filtering, texel centers at integer coordinates
    // (matching the manual bilinear code in the CPU references).
    const float fx = DecodeF32(aop[lane]);
    const float fy = DecodeF32(bop[lane]);
    const int x0 = static_cast<int>(std::floor(fx));
    const int y0 = static_cast<int>(std::floor(fy));
    const float ax = fx - static_cast<float>(x0);
    const float ay = fy - static_cast<float>(y0);
    const float p00 = fetch(x0, y0);
    const float p01 = fetch(x0 + 1, y0);
    const float p10 = fetch(x0, y0 + 1);
    const float p11 = fetch(x0 + 1, y0 + 1);
    const float top = p00 + ax * (p01 - p00);
    const float bot = p10 + ax * (p11 - p10);
    dst[lane] = EncodeF32(top + ay * (bot - top));
  }
}

void BlockRunner::RunWarp(Warp& w) {
  const Instr* code = dk_.code.data();
  const DecodedInstr* dec = dk_.dec.data();
  const std::uint32_t ncode = static_cast<std::uint32_t>(dk_.code.size());
  const unsigned lane_base =
      static_cast<unsigned>(&w - warps_.data()) * dev_.warp_size;

  // Dynamic counters stay in registers for the whole warp run and flush once:
  // the accumulation order (per warp segment, warps in block order, blocks in
  // chunk order) is fixed, so the folded sums are reproducible bit-for-bit.
  std::uint64_t warp_instrs = 0;
  std::uint64_t lane_instrs = 0;
  double issue_cycles = 0;
  double ilp_sum = 0;
  const std::uint64_t wd_budget = dev_.watchdog_warp_instrs - wd_accum_;

  auto flush = [&] {
    bstats_->warp_instrs += warp_instrs;
    bstats_->lane_instrs += lane_instrs;
    bstats_->issue_cycles += issue_cycles;
    bstats_->ilp_sum += ilp_sum;
    wd_accum_ += warp_instrs;
  };

  while (true) {
    if (w.pc == w.rpc) {
      if (!PopState(w)) {
        w.state = Warp::State::kDone;
        flush();
        return;
      }
      continue;
    }
    if (w.pc >= ncode) {
      // Fell off the end: implicit exit of all active lanes.
      w.live &= ~w.mask;
      if (!PopState(w)) {
        w.state = Warp::State::kDone;
        flush();
        return;
      }
      continue;
    }

    if (++warp_instrs > wd_budget) {
      flush();
      throw DeviceError(
          "kernel exceeded the simulator watchdog limit (likely a non-terminating loop); "
          "raise DeviceProfile::watchdog_warp_instrs if the workload is legitimately huge");
    }
    const DecodedInstr& d = dec[w.pc];
    lane_instrs += std::popcount(w.mask);
    issue_cycles += d.issue_cost;
    ilp_sum += d.ilp;

    const Instr& inst = code[w.pc];
    switch (d.kind) {
      case DKind::kAlu:
        d.fn(*this, inst, w, lane_base);
        ++w.pc;
        continue;
      case DKind::kMem:
        d.fn(*this, inst, w, lane_base);
        ++w.pc;
        continue;
      case DKind::kBra:
        w.pc = static_cast<std::uint32_t>(inst.target);
        continue;
      case DKind::kBraPred: {
        const std::uint64_t* preds = Row(inst.a.reg) + lane_base;
        std::uint32_t taken = 0;
        std::uint32_t m = w.mask;
        while (m) {
          const int lane = std::countr_zero(m);
          m &= m - 1;
          const bool p = preds[lane] != 0;
          if (p != inst.neg) taken |= (1u << lane);
        }
        if (taken == w.mask) {
          w.pc = static_cast<std::uint32_t>(inst.target);
        } else if (taken == 0) {
          ++w.pc;
        } else {
          KSPEC_CHECK_MSG(inst.reconv >= 0, "divergent branch without reconvergence point");
          // Join continuation first, then the fall-through side; the taken
          // side executes now.
          w.stack.push_back({static_cast<std::uint32_t>(inst.reconv), w.mask, w.rpc});
          w.stack.push_back(
              {w.pc + 1, w.mask & ~taken, static_cast<std::uint32_t>(inst.reconv)});
          w.mask = taken;
          w.rpc = static_cast<std::uint32_t>(inst.reconv);
          w.pc = static_cast<std::uint32_t>(inst.target);
        }
        continue;
      }
      case DKind::kBarSync:
        if (w.mask != w.live) {
          flush();
          throw DeviceError("__syncthreads() executed in divergent control flow");
        }
        ++w.pc;
        w.state = Warp::State::kAtBarrier;
        flush();
        return;
      case DKind::kExit: {
        w.live &= ~w.mask;
        for (auto& e : w.stack) e.mask &= w.live;
        if (!PopState(w)) {
          w.state = Warp::State::kDone;
          flush();
          return;
        }
        continue;
      }
      case DKind::kAtomic:
        ExecAtomic(inst, w, lane_base);
        ++w.pc;
        continue;
      case DKind::kTex:
        ExecTexture(inst, w, lane_base);
        ++w.pc;
        continue;
      case DKind::kNop:
        ++w.pc;
        continue;
    }
  }
}

// ---- handler selection (one nested switch per *static* instruction) ----

template <Type TY>
ExecFn SelectFloatOp(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return &BlockRunner::AluOp<Opcode::kAdd, TY>;
    case Opcode::kSub: return &BlockRunner::AluOp<Opcode::kSub, TY>;
    case Opcode::kMul: return &BlockRunner::AluOp<Opcode::kMul, TY>;
    case Opcode::kDiv: return &BlockRunner::AluOp<Opcode::kDiv, TY>;
    case Opcode::kRem: return &BlockRunner::AluOp<Opcode::kRem, TY>;
    case Opcode::kMad: return &BlockRunner::AluOp<Opcode::kMad, TY>;
    case Opcode::kMin: return &BlockRunner::AluOp<Opcode::kMin, TY>;
    case Opcode::kMax: return &BlockRunner::AluOp<Opcode::kMax, TY>;
    case Opcode::kNeg: return &BlockRunner::AluOp<Opcode::kNeg, TY>;
    case Opcode::kAbs: return &BlockRunner::AluOp<Opcode::kAbs, TY>;
    case Opcode::kSqrt: return &BlockRunner::AluOp<Opcode::kSqrt, TY>;
    case Opcode::kRsqrt: return &BlockRunner::AluOp<Opcode::kRsqrt, TY>;
    case Opcode::kFloor: return &BlockRunner::AluOp<Opcode::kFloor, TY>;
    case Opcode::kCeil: return &BlockRunner::AluOp<Opcode::kCeil, TY>;
    case Opcode::kExp:
    case Opcode::kLog:
    case Opcode::kSin:
    case Opcode::kCos:
      // Transcendentals exist in f32 only, like the pre-decoded interpreter.
      if constexpr (TY == Type::kF32) {
        switch (op) {
          case Opcode::kExp: return &BlockRunner::AluOp<Opcode::kExp, TY>;
          case Opcode::kLog: return &BlockRunner::AluOp<Opcode::kLog, TY>;
          case Opcode::kSin: return &BlockRunner::AluOp<Opcode::kSin, TY>;
          default: return &BlockRunner::AluOp<Opcode::kCos, TY>;
        }
      }
      return nullptr;
    default:
      return nullptr;
  }
}

template <Type TY>
ExecFn SelectIntOp(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return &BlockRunner::AluOp<Opcode::kAdd, TY>;
    case Opcode::kSub: return &BlockRunner::AluOp<Opcode::kSub, TY>;
    case Opcode::kMul: return &BlockRunner::AluOp<Opcode::kMul, TY>;
    case Opcode::kMul24: return &BlockRunner::AluOp<Opcode::kMul24, TY>;
    case Opcode::kMad: return &BlockRunner::AluOp<Opcode::kMad, TY>;
    case Opcode::kDiv: return &BlockRunner::AluOp<Opcode::kDiv, TY>;
    case Opcode::kRem: return &BlockRunner::AluOp<Opcode::kRem, TY>;
    case Opcode::kMin: return &BlockRunner::AluOp<Opcode::kMin, TY>;
    case Opcode::kMax: return &BlockRunner::AluOp<Opcode::kMax, TY>;
    case Opcode::kNeg: return &BlockRunner::AluOp<Opcode::kNeg, TY>;
    case Opcode::kAbs: return &BlockRunner::AluOp<Opcode::kAbs, TY>;
    case Opcode::kAnd: return &BlockRunner::AluOp<Opcode::kAnd, TY>;
    case Opcode::kOr: return &BlockRunner::AluOp<Opcode::kOr, TY>;
    case Opcode::kXor: return &BlockRunner::AluOp<Opcode::kXor, TY>;
    case Opcode::kNot: return &BlockRunner::AluOp<Opcode::kNot, TY>;
    case Opcode::kShl: return &BlockRunner::AluOp<Opcode::kShl, TY>;
    case Opcode::kShr: return &BlockRunner::AluOp<Opcode::kShr, TY>;
    default:
      return nullptr;
  }
}

template <Type TY>
ExecFn SelectSetp(CmpOp cmp) {
  switch (cmp) {
    case CmpOp::kEq: return &BlockRunner::SetpOp<TY, CmpOp::kEq>;
    case CmpOp::kNe: return &BlockRunner::SetpOp<TY, CmpOp::kNe>;
    case CmpOp::kLt: return &BlockRunner::SetpOp<TY, CmpOp::kLt>;
    case CmpOp::kLe: return &BlockRunner::SetpOp<TY, CmpOp::kLe>;
    case CmpOp::kGt: return &BlockRunner::SetpOp<TY, CmpOp::kGt>;
    case CmpOp::kGe: return &BlockRunner::SetpOp<TY, CmpOp::kGe>;
  }
  return nullptr;
}

template <Type DT>
ExecFn SelectCvtFrom(Type src) {
  switch (src) {
    case Type::kPred: return &BlockRunner::CvtOp<DT, Type::kPred>;
    case Type::kI32: return &BlockRunner::CvtOp<DT, Type::kI32>;
    case Type::kU32: return &BlockRunner::CvtOp<DT, Type::kU32>;
    case Type::kI64: return &BlockRunner::CvtOp<DT, Type::kI64>;
    case Type::kU64: return &BlockRunner::CvtOp<DT, Type::kU64>;
    case Type::kF32: return &BlockRunner::CvtOp<DT, Type::kF32>;
    case Type::kF64: return &BlockRunner::CvtOp<DT, Type::kF64>;
  }
  return nullptr;
}

ExecFn SelectAlu(const Instr& i) {
  switch (i.op) {
    case Opcode::kMov: return &BlockRunner::MovOp;
    case Opcode::kSreg: return &BlockRunner::SregOp;
    case Opcode::kSel: return &BlockRunner::SelOp;
    case Opcode::kSetp:
      switch (i.type) {
        case Type::kPred: return SelectSetp<Type::kPred>(i.cmp);
        case Type::kI32: return SelectSetp<Type::kI32>(i.cmp);
        case Type::kU32: return SelectSetp<Type::kU32>(i.cmp);
        case Type::kI64: return SelectSetp<Type::kI64>(i.cmp);
        case Type::kU64: return SelectSetp<Type::kU64>(i.cmp);
        case Type::kF32: return SelectSetp<Type::kF32>(i.cmp);
        case Type::kF64: return SelectSetp<Type::kF64>(i.cmp);
      }
      return nullptr;
    case Opcode::kCvt:
      switch (i.type) {
        case Type::kPred: return SelectCvtFrom<Type::kPred>(i.type2);
        case Type::kI32: return SelectCvtFrom<Type::kI32>(i.type2);
        case Type::kU32: return SelectCvtFrom<Type::kU32>(i.type2);
        case Type::kI64: return SelectCvtFrom<Type::kI64>(i.type2);
        case Type::kU64: return SelectCvtFrom<Type::kU64>(i.type2);
        case Type::kF32: return SelectCvtFrom<Type::kF32>(i.type2);
        case Type::kF64: return SelectCvtFrom<Type::kF64>(i.type2);
      }
      return nullptr;
    default:
      switch (i.type) {
        case Type::kF32: return SelectFloatOp<Type::kF32>(i.op);
        case Type::kF64: return SelectFloatOp<Type::kF64>(i.op);
        case Type::kI32: return SelectIntOp<Type::kI32>(i.op);
        case Type::kI64: return SelectIntOp<Type::kI64>(i.op);
        case Type::kU64: return SelectIntOp<Type::kU64>(i.op);
        case Type::kU32:
        case Type::kPred:
          // Predicates use unsigned-32 ALU semantics (the logical ops the
          // front end emits for !, &&, ||).
          return SelectIntOp<Type::kU32>(i.op);
      }
      return nullptr;
  }
}

template <Space SP>
ExecFn PickMemSized(bool load, std::size_t esz, bool sext) {
  if (load) {
    switch (esz) {
      case 1: return &BlockRunner::MemOp<SP, true, 1, false>;
      case 2: return &BlockRunner::MemOp<SP, true, 2, false>;
      case 4:
        return sext ? ExecFn(&BlockRunner::MemOp<SP, true, 4, true>)
                    : ExecFn(&BlockRunner::MemOp<SP, true, 4, false>);
      case 8: return &BlockRunner::MemOp<SP, true, 8, false>;
    }
  } else if constexpr (SP != Space::kConst) {  // const stores: generic path throws
    switch (esz) {
      case 1: return &BlockRunner::MemOp<SP, false, 1, false>;
      case 2: return &BlockRunner::MemOp<SP, false, 2, false>;
      case 4: return &BlockRunner::MemOp<SP, false, 4, false>;
      case 8: return &BlockRunner::MemOp<SP, false, 8, false>;
    }
  }
  return nullptr;
}

ExecFn SelectMem(const Instr& i) {
  const bool load = i.op == Opcode::kLd;
  const std::size_t esz = TypeSize(i.type);
  const bool sext = load && i.type == Type::kI32;
  switch (i.space) {
    case Space::kGlobal: return PickMemSized<Space::kGlobal>(load, esz, sext);
    case Space::kShared: return PickMemSized<Space::kShared>(load, esz, sext);
    case Space::kConst: return PickMemSized<Space::kConst>(load, esz, sext);
    default: return nullptr;  // unsupported space: generic path throws at exec
  }
}

}  // namespace interp_detail

std::shared_ptr<const DecodedKernel> DecodeKernel(const CompiledKernel& kernel,
                                                  const DeviceProfile& dev) {
  auto dk = std::make_shared<DecodedKernel>();
  dk->name = kernel.name;
  dk->code = kernel.code;
  dk->num_params = kernel.params.size();
  dk->num_vregs = kernel.num_vregs;
  dk->static_smem_bytes = kernel.static_smem_bytes;
  dk->reg_count = kernel.stats.reg_count;
  const bool has_ilp = kernel.ilp_at_pc.size() == kernel.code.size();
  dk->dec.resize(kernel.code.size());
  for (std::size_t pc = 0; pc < kernel.code.size(); ++pc) {
    const Instr& i = kernel.code[pc];
    DecodedInstr& d = dk->dec[pc];
    d.issue_cost = IssueCost(dev, i);
    d.ilp = has_ilp ? kernel.ilp_at_pc[pc] : 0.0f;
    switch (i.op) {
      case Opcode::kBra: d.kind = DKind::kBra; break;
      case Opcode::kBraPred: d.kind = DKind::kBraPred; break;
      case Opcode::kBarSync: d.kind = DKind::kBarSync; break;
      case Opcode::kExit: d.kind = DKind::kExit; break;
      case Opcode::kLd:
      case Opcode::kSt:
        d.kind = DKind::kMem;
        d.fn = SelectMem(i);
        if (!d.fn) d.fn = &BlockRunner::GenericMemOp;
        break;
      case Opcode::kAtomAdd:
      case Opcode::kAtomMin:
      case Opcode::kAtomMax:
      case Opcode::kAtomExch:
      case Opcode::kAtomCas:
        d.kind = DKind::kAtomic;
        if (i.space == Space::kGlobal) dk->has_global_atomic = true;
        break;
      case Opcode::kTex2D:
      case Opcode::kTex1D: d.kind = DKind::kTex; break;
      case Opcode::kNop: d.kind = DKind::kNop; break;
      default:
        d.kind = DKind::kAlu;
        d.fn = SelectAlu(i);
        if (!d.fn) d.fn = &BlockRunner::BadOp;
        break;
    }
  }
  return dk;
}

LaunchStats Interpreter::Launch(const CompiledKernel& kernel, const LaunchConfig& cfg,
                                std::span<const unsigned char> const_mem) {
  return Launch(*DecodeKernel(kernel, dev_), cfg, const_mem);
}

LaunchStats Interpreter::Launch(const DecodedKernel& kernel, const LaunchConfig& cfg,
                                std::span<const unsigned char> const_mem) {
  // Validation, spill clamping, policy resolution, and the chunk plan are the
  // tier-shared launch shell (vgpu/tier.hpp) — the native backend runs the
  // exact same code, which is half of the bit-identical-stats guarantee.
  LaunchShell shell = PrepareLaunch(dev_, cfg, kernel.reg_count, kernel.static_smem_bytes,
                                    kernel.has_global_atomic);
  std::vector<BlockStats> parts(shell.nparts);

  auto run_chunk = [&](BlockRunner& runner, std::size_t ci) {
    runner.set_stats(&parts[ci]);
    const std::uint64_t b0 = static_cast<std::uint64_t>(ci) * shell.chunk;
    const std::uint64_t b1 = std::min<std::uint64_t>(shell.nblocks, b0 + shell.chunk);
    for (std::uint64_t b = b0; b < b1; ++b) runner.RunBlock(LinearToCta(cfg.grid, b));
  };

  if (!shell.parallel) {
    BlockRunner runner(dev_, gmem_, kernel, cfg, const_mem);
    for (std::size_t ci = 0; ci < shell.nparts; ++ci) run_chunk(runner, ci);
  } else {
    // Per-worker runners come from a free-list so the pool can reuse the
    // register file and shared-memory arrays across chunks.
    std::mutex mu;
    std::vector<std::unique_ptr<BlockRunner>> idle;
    std::function<void(std::size_t)> fn = [&](std::size_t ci) {
      std::unique_ptr<BlockRunner> runner;
      {
        std::lock_guard<std::mutex> lk(mu);
        if (!idle.empty()) {
          runner = std::move(idle.back());
          idle.pop_back();
        }
      }
      if (!runner) {
        runner = std::make_unique<BlockRunner>(dev_, gmem_, kernel, cfg, const_mem);
      }
      run_chunk(*runner, ci);
      std::lock_guard<std::mutex> lk(mu);
      idle.push_back(std::move(runner));
    };
    ExecPool::Instance().ParallelFor(shell.workers, shell.nparts, fn);
  }

  FinalizeLaunchStats(dev_, shell, parts);
  return shell.stats;
}

}  // namespace kspec::vgpu
