// MiniPTX: the typed, virtual-register, load/store intermediate representation
// executed by the vgpu interpreter.
//
// MiniPTX stands in for NVIDIA's PTX (Section 2.4 of the dissertation): it is
// the target of the kcc compiler front-end, it has a printable textual form so
// that run-time-evaluated vs specialized code can be compared side by side
// (Appendices C/D), and register assignment happens when it is "translated"
// (here: register-allocated) for a device.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vgpu/types.hpp"

namespace kspec::vgpu {

enum class Opcode : std::uint8_t {
  kNop,
  // Data movement.
  kMov,       // dst = a
  kSreg,      // dst = special register (a.imm selects SpecialReg)
  // Integer / float arithmetic. Operand types given by Instr::type.
  kAdd, kSub, kMul, kDiv, kRem,
  kMul24,     // 24-bit integer multiply intrinsic (__[u]mul24)
  kMad,       // dst = a * b + c (integer MAD or float FMA)
  kMin, kMax,
  kNeg, kAbs,
  kAnd, kOr, kXor, kNot,
  kShl, kShr,  // shift; kShr is arithmetic for signed types, logical otherwise
  // Float-only unary math.
  kSqrt, kRsqrt, kFloor, kCeil, kExp, kLog, kSin, kCos,
  // Comparison -> predicate register. CmpOp in Instr::cmp.
  kSetp,
  // dst = pred ? a : b
  kSel,
  // Type conversion: dst type = Instr::type, source type = Instr::type2.
  kCvt,
  // Memory. Address operand a (+ b immediate byte offset). Space in Instr::space.
  kLd, kSt,
  // Control flow.
  kBra,       // unconditional branch to Instr::target
  kBraPred,   // branch to target if pred (negated when Instr::neg); carries
              // the structured reconvergence pc in Instr::reconv
  kBarSync,   // __syncthreads()
  kExit,      // thread retires (also used for early return)
  // Atomics on global/shared memory (returns old value).
  kAtomAdd, kAtomMin, kAtomMax, kAtomExch, kAtomCas,
  // Texture sampling: dst = tex2D(texture[target], a, b) with bilinear
  // filtering and clamp addressing; kTex1D fetches element a of the bound
  // buffer (no filtering). The texture slot index lives in Instr::target.
  kTex2D, kTex1D,
};

const char* OpcodeName(Opcode op);

enum class CmpOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
const char* CmpOpName(CmpOp op);

enum class SpecialReg : std::uint8_t {
  kTidX, kTidY, kTidZ,
  kNtidX, kNtidY, kNtidZ,
  kCtaidX, kCtaidY, kCtaidZ,
  kNctaidX, kNctaidY, kNctaidZ,
  kLaneId, kWarpId,
};
const char* SpecialRegName(SpecialReg r);

// An operand is either a virtual register index or an immediate value encoded
// in a 64-bit slot (interpretation depends on the instruction type).
struct Operand {
  enum class Kind : std::uint8_t { kNone, kReg, kImm };
  Kind kind = Kind::kNone;
  std::int32_t reg = -1;
  std::uint64_t imm = 0;

  static Operand Reg(std::int32_t r) { return {Kind::kReg, r, 0}; }
  static Operand Imm(std::uint64_t v) { return {Kind::kImm, -1, v}; }
  static Operand ImmF32(float v) { return Imm(EncodeF32(v)); }
  static Operand ImmI32(std::int32_t v) { return Imm(EncodeI32(v)); }
  static Operand None() { return {}; }

  bool is_reg() const { return kind == Kind::kReg; }
  bool is_imm() const { return kind == Kind::kImm; }
  bool is_none() const { return kind == Kind::kNone; }
};

struct Instr {
  Opcode op = Opcode::kNop;
  Type type = Type::kI32;   // primary operand type
  Type type2 = Type::kI32;  // source type for kCvt
  CmpOp cmp = CmpOp::kEq;   // for kSetp
  Space space = Space::kGlobal;  // for kLd/kSt/atomics
  bool neg = false;         // for kBraPred: branch when predicate is false
  std::int32_t dst = -1;    // destination virtual register (or pred reg)
  Operand a, b, c;
  std::int32_t target = -1;  // branch target pc
  std::int32_t reconv = -1;  // reconvergence pc for divergent branches

  static Instr Make(Opcode op, Type t, std::int32_t dst, Operand a = Operand::None(),
                    Operand b = Operand::None(), Operand c = Operand::None()) {
    Instr i;
    i.op = op;
    i.type = t;
    i.dst = dst;
    i.a = a;
    i.b = b;
    i.c = c;
    return i;
  }
};

// Renders one instruction in MiniPTX textual syntax, e.g.
//   "mad.f32 %r12, %r3, %r7, %r11" or "ld.global.f32 %r4, [%r2+16]".
std::string Disassemble(const Instr& instr, std::size_t pc);

// Renders a whole instruction stream with pc labels.
std::string Disassemble(const std::vector<Instr>& code);

}  // namespace kspec::vgpu
