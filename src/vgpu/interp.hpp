// The SIMT interpreter.
//
// Executes a CompiledKernel over a grid of thread blocks, warp by warp, with
// the classic reconvergence-stack treatment of divergent branches: every
// divergent branch carries its structured reconvergence pc (emitted by the
// kcc lowering), the taken side runs first, and the join continuation restores
// the full mask. Early `return` is implemented as lane retirement (the lane is
// removed from the current mask and every stack entry), which handles the
// ubiquitous `if (out_of_range) return;` guard pattern exactly.
//
// Execution engine (DESIGN.md section 8):
//   - Each kernel is pre-decoded once into a DecodedKernel: a per-instruction
//     table of handler function pointers, issue costs, and static ILP, so the
//     dynamic-instruction inner loop does a single indirect call instead of
//     re-running the opcode/type/issue-cost switches per issue.
//   - Thread blocks are independent, so the grid is partitioned into chunks
//     and executed either serially or across a persistent host worker pool
//     (LaunchConfig::exec, overridable process-wide with VGPU_WORKERS).
//     Chunking depends only on the grid, each chunk folds its own partial
//     counters in block order, and partials merge in chunk order — LaunchStats
//     are bit-identical for any worker count. Global-space atomics execute as
//     real std::atomic RMW on the arena.
//   - Warps within a block are scheduled round-robin between barriers, which
//     makes producer/consumer warp specialization (Section 5.2) deterministic.
#pragma once

#include <memory>
#include <span>

#include "vgpu/device.hpp"
#include "vgpu/launch.hpp"
#include "vgpu/memory.hpp"
#include "vgpu/module.hpp"

namespace kspec::vgpu {

// A CompiledKernel pre-decoded for one device profile: handler table, issue
// costs, ILP row, and the flags the auto execution policy consults. Opaque —
// produced by DecodeKernel, consumed by Interpreter::Launch. Decoding is
// cheap (one pass over the static code), but callers that launch the same
// kernel repeatedly should cache the result (vcuda::Module does).
struct DecodedKernel;

std::shared_ptr<const DecodedKernel> DecodeKernel(const CompiledKernel& kernel,
                                                  const DeviceProfile& dev);

// Process-wide execution-policy override for tests and tools: while set, it
// wins over both VGPU_WORKERS and LaunchConfig::exec. Pass nullptr to clear.
// The pointed-to policy is copied. Not thread-safe against concurrent
// launches — set it from the test main thread between runs.
void SetExecPolicyOverride(const ExecPolicy* policy);

class Interpreter {
 public:
  Interpreter(const DeviceProfile& dev, GlobalMemory* gmem)
      : dev_(dev), gmem_(gmem) {}

  // Runs the kernel to completion and returns the dynamic statistics with the
  // cost model applied. `const_mem` is the module's constant-memory segment.
  // Throws DeviceError on invalid configurations, out-of-bounds accesses,
  // barrier divergence, or deadlock — including when the failing block ran on
  // a pool worker. The CompiledKernel overload decodes on the fly.
  LaunchStats Launch(const CompiledKernel& kernel, const LaunchConfig& cfg,
                     std::span<const unsigned char> const_mem = {});
  LaunchStats Launch(const DecodedKernel& kernel, const LaunchConfig& cfg,
                     std::span<const unsigned char> const_mem = {});

 private:
  const DeviceProfile& dev_;
  GlobalMemory* gmem_;
};

}  // namespace kspec::vgpu
