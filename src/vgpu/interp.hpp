// The SIMT interpreter.
//
// Executes a CompiledKernel over a grid of thread blocks, warp by warp, with
// the classic reconvergence-stack treatment of divergent branches: every
// divergent branch carries its structured reconvergence pc (emitted by the
// kcc lowering), the taken side runs first, and the join continuation restores
// the full mask. Early `return` is implemented as lane retirement (the lane is
// removed from the current mask and every stack entry), which handles the
// ubiquitous `if (out_of_range) return;` guard pattern exactly.
//
// Blocks execute sequentially (the host has no real parallelism to offer) but
// the cost model accounts for them as if distributed across the device's SMs.
// Warps within a block are scheduled round-robin between barriers, which makes
// producer/consumer warp specialization (Section 5.2) deterministic.
#pragma once

#include <span>

#include "vgpu/device.hpp"
#include "vgpu/launch.hpp"
#include "vgpu/memory.hpp"
#include "vgpu/module.hpp"

namespace kspec::vgpu {

class Interpreter {
 public:
  Interpreter(const DeviceProfile& dev, GlobalMemory* gmem)
      : dev_(dev), gmem_(gmem) {}

  // Runs the kernel to completion and returns the dynamic statistics with the
  // cost model applied. `const_mem` is the module's constant-memory segment.
  // Throws DeviceError on invalid configurations, out-of-bounds accesses,
  // barrier divergence, or deadlock.
  LaunchStats Launch(const CompiledKernel& kernel, const LaunchConfig& cfg,
                     std::span<const unsigned char> const_mem = {});

 private:
  const DeviceProfile& dev_;
  GlobalMemory* gmem_;
};

}  // namespace kspec::vgpu
