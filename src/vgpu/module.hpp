// Compiled-kernel container: the output of the kcc compiler and the input to
// the vgpu interpreter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vgpu/isa.hpp"
#include "vgpu/types.hpp"

namespace kspec::vgpu {

struct KernelParam {
  std::string name;
  Type type = Type::kI32;
};

// Statistics produced at compile time, used by benchmarks and the occupancy
// model. `reg_count` is the headline number the dissertation tracks: the
// per-thread register count after allocation (specialized kernels need fewer
// registers because folded constants never occupy one).
struct CompileStats {
  int reg_count = 0;          // allocated physical registers per thread
  int static_instrs = 0;      // static instruction count
  int unrolled_loops = 0;     // loops fully unrolled by the front-end
  int folded_consts = 0;      // constant-folding rewrites applied
  int strength_reduced = 0;   // div/mod/mul -> shift/mask rewrites
  // Compile wall time lives on kcc::CompiledModule::compile_millis (it is a
  // whole-module cost, not a per-kernel one).
};

struct CompiledKernel {
  std::string name;
  std::vector<Instr> code;

  // Parameter i is pre-loaded into virtual register i at thread start.
  std::vector<KernelParam> params;

  int num_vregs = 0;           // virtual register file size per thread
  unsigned static_smem_bytes = 0;

  // Per-pc static ILP estimate of the enclosing basic block (instructions /
  // critical-path length); feeds the latency-hiding cost model.
  std::vector<float> ilp_at_pc;

  CompileStats stats;

  // MiniPTX listing (the Appendix C/D artifact).
  std::string listing;
};

}  // namespace kspec::vgpu
