#include "vgpu/isa.hpp"

#include "support/str.hpp"

namespace kspec::vgpu {

const char* TypeName(Type t) {
  switch (t) {
    case Type::kPred: return "pred";
    case Type::kI32: return "s32";
    case Type::kU32: return "u32";
    case Type::kI64: return "s64";
    case Type::kU64: return "u64";
    case Type::kF32: return "f32";
    case Type::kF64: return "f64";
  }
  return "?";
}

std::size_t TypeSize(Type t) {
  switch (t) {
    case Type::kPred: return 1;
    case Type::kI32:
    case Type::kU32:
    case Type::kF32: return 4;
    case Type::kI64:
    case Type::kU64:
    case Type::kF64: return 8;
  }
  return 0;
}

bool IsFloatType(Type t) { return t == Type::kF32 || t == Type::kF64; }
bool IsSignedInt(Type t) { return t == Type::kI32 || t == Type::kI64; }
bool IsIntType(Type t) {
  return t == Type::kI32 || t == Type::kU32 || t == Type::kI64 || t == Type::kU64;
}

std::string Dim3::ToString() const { return Format("(%u,%u,%u)", x, y, z); }

const char* SpaceName(Space s) {
  switch (s) {
    case Space::kGlobal: return "global";
    case Space::kShared: return "shared";
    case Space::kConst: return "const";
    case Space::kLocal: return "local";
    case Space::kParam: return "param";
  }
  return "?";
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kMov: return "mov";
    case Opcode::kSreg: return "sreg";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kRem: return "rem";
    case Opcode::kMul24: return "mul24";
    case Opcode::kMad: return "mad";
    case Opcode::kMin: return "min";
    case Opcode::kMax: return "max";
    case Opcode::kNeg: return "neg";
    case Opcode::kAbs: return "abs";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kNot: return "not";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kSqrt: return "sqrt";
    case Opcode::kRsqrt: return "rsqrt";
    case Opcode::kFloor: return "floor";
    case Opcode::kCeil: return "ceil";
    case Opcode::kExp: return "exp";
    case Opcode::kLog: return "log";
    case Opcode::kSin: return "sin";
    case Opcode::kCos: return "cos";
    case Opcode::kSetp: return "setp";
    case Opcode::kSel: return "sel";
    case Opcode::kCvt: return "cvt";
    case Opcode::kLd: return "ld";
    case Opcode::kSt: return "st";
    case Opcode::kBra: return "bra";
    case Opcode::kBraPred: return "bra.pred";
    case Opcode::kBarSync: return "bar.sync";
    case Opcode::kExit: return "exit";
    case Opcode::kAtomAdd: return "atom.add";
    case Opcode::kAtomMin: return "atom.min";
    case Opcode::kAtomMax: return "atom.max";
    case Opcode::kAtomExch: return "atom.exch";
    case Opcode::kAtomCas: return "atom.cas";
    case Opcode::kTex2D: return "tex.2d";
    case Opcode::kTex1D: return "tex.1d";
  }
  return "?";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "eq";
    case CmpOp::kNe: return "ne";
    case CmpOp::kLt: return "lt";
    case CmpOp::kLe: return "le";
    case CmpOp::kGt: return "gt";
    case CmpOp::kGe: return "ge";
  }
  return "?";
}

const char* SpecialRegName(SpecialReg r) {
  switch (r) {
    case SpecialReg::kTidX: return "%tid.x";
    case SpecialReg::kTidY: return "%tid.y";
    case SpecialReg::kTidZ: return "%tid.z";
    case SpecialReg::kNtidX: return "%ntid.x";
    case SpecialReg::kNtidY: return "%ntid.y";
    case SpecialReg::kNtidZ: return "%ntid.z";
    case SpecialReg::kCtaidX: return "%ctaid.x";
    case SpecialReg::kCtaidY: return "%ctaid.y";
    case SpecialReg::kCtaidZ: return "%ctaid.z";
    case SpecialReg::kNctaidX: return "%nctaid.x";
    case SpecialReg::kNctaidY: return "%nctaid.y";
    case SpecialReg::kNctaidZ: return "%nctaid.z";
    case SpecialReg::kLaneId: return "%laneid";
    case SpecialReg::kWarpId: return "%warpid";
  }
  return "?";
}

namespace {

std::string OperandStr(const Operand& op, Type type) {
  switch (op.kind) {
    case Operand::Kind::kNone: return "_";
    case Operand::Kind::kReg: return Format("%%r%d", op.reg);
    case Operand::Kind::kImm:
      if (type == Type::kF32) return Format("0f%08X /*%g*/", static_cast<unsigned>(op.imm), DecodeF32(op.imm));
      if (type == Type::kF64) return Format("0d%016llX /*%g*/", static_cast<unsigned long long>(op.imm), DecodeF64(op.imm));
      if (IsSignedInt(type)) return Format("%lld", static_cast<long long>(static_cast<std::int64_t>(op.imm)));
      return Format("%llu", static_cast<unsigned long long>(op.imm));
  }
  return "?";
}

}  // namespace

std::string Disassemble(const Instr& i, std::size_t pc) {
  std::string out = Format("%4zu:  ", pc);
  switch (i.op) {
    case Opcode::kSreg:
      out += Format("mov.u32 %%r%d, %s", i.dst,
                    SpecialRegName(static_cast<SpecialReg>(i.a.imm)));
      return out;
    case Opcode::kSetp:
      out += Format("setp.%s.%s %%p%d, %s, %s", CmpOpName(i.cmp), TypeName(i.type), i.dst,
                    OperandStr(i.a, i.type).c_str(), OperandStr(i.b, i.type).c_str());
      return out;
    case Opcode::kSel:
      out += Format("selp.%s %%r%d, %s, %s, %%p%d", TypeName(i.type), i.dst,
                    OperandStr(i.a, i.type).c_str(), OperandStr(i.b, i.type).c_str(), i.c.reg);
      return out;
    case Opcode::kCvt:
      out += Format("cvt.%s.%s %%r%d, %s", TypeName(i.type), TypeName(i.type2), i.dst,
                    OperandStr(i.a, i.type2).c_str());
      return out;
    case Opcode::kLd:
      out += Format("ld.%s.%s %%r%d, [%s%+lld]", SpaceName(i.space), TypeName(i.type), i.dst,
                    OperandStr(i.a, Type::kU64).c_str(),
                    static_cast<long long>(static_cast<std::int64_t>(i.b.imm)));
      return out;
    case Opcode::kSt:
      out += Format("st.%s.%s [%s%+lld], %s", SpaceName(i.space), TypeName(i.type),
                    OperandStr(i.a, Type::kU64).c_str(),
                    static_cast<long long>(static_cast<std::int64_t>(i.b.imm)),
                    OperandStr(i.c, i.type).c_str());
      return out;
    case Opcode::kAtomAdd:
    case Opcode::kAtomMin:
    case Opcode::kAtomMax:
    case Opcode::kAtomExch:
      out += Format("%s.%s.%s %%r%d, [%s], %s", OpcodeName(i.op), SpaceName(i.space),
                    TypeName(i.type), i.dst, OperandStr(i.a, Type::kU64).c_str(),
                    OperandStr(i.b, i.type).c_str());
      return out;
    case Opcode::kAtomCas:
      out += Format("atom.cas.%s.%s %%r%d, [%s], %s, %s", SpaceName(i.space), TypeName(i.type),
                    i.dst, OperandStr(i.a, Type::kU64).c_str(), OperandStr(i.b, i.type).c_str(),
                    OperandStr(i.c, i.type).c_str());
      return out;
    case Opcode::kTex2D:
      out += Format("tex.2d.f32 %%r%d, [tex%d, {%s, %s}]", i.dst, i.target,
                    OperandStr(i.a, Type::kF32).c_str(), OperandStr(i.b, Type::kF32).c_str());
      return out;
    case Opcode::kTex1D:
      out += Format("tex.1d.f32 %%r%d, [tex%d, %s]", i.dst, i.target,
                    OperandStr(i.a, Type::kI32).c_str());
      return out;
    case Opcode::kBra:
      out += Format("bra L%d", i.target);
      return out;
    case Opcode::kBraPred:
      out += Format("@%s%%p%d bra L%d  // reconv L%d", i.neg ? "!" : "", i.a.reg, i.target,
                    i.reconv);
      return out;
    case Opcode::kBarSync:
      out += "bar.sync 0";
      return out;
    case Opcode::kExit:
      out += "exit";
      return out;
    case Opcode::kNop:
      out += "nop";
      return out;
    default:
      break;
  }
  // Generic ALU form.
  out += Format("%s.%s %%r%d", OpcodeName(i.op), TypeName(i.type), i.dst);
  if (!i.a.is_none()) out += ", " + OperandStr(i.a, i.type);
  if (!i.b.is_none()) out += ", " + OperandStr(i.b, i.type);
  if (!i.c.is_none()) out += ", " + OperandStr(i.c, i.type);
  return out;
}

std::string Disassemble(const std::vector<Instr>& code) {
  std::string out;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    out += Disassemble(code[pc], pc);
    out += "\n";
  }
  return out;
}

}  // namespace kspec::vgpu
