#include "vgpu/memory.hpp"

#include <algorithm>

#include "support/math.hpp"
#include "support/str.hpp"

namespace kspec::vgpu {

namespace {
// Per-thread cache of recently hit allocations. Four entries cover the usual
// kernel working set (a couple of inputs, an output, a table) with a trivial
// round-robin replacement; the generation check makes stale entries miss.
constexpr int kCacheWays = 4;
struct ThreadCache {
  GlobalMemory const* owner[kCacheWays] = {};
  std::uint64_t gen[kCacheWays] = {};
  std::uint64_t base[kCacheWays] = {};
  std::uint64_t end[kCacheWays] = {};
  int victim = 0;
};
thread_local ThreadCache t_cache;
}  // namespace

GlobalMemory::GlobalMemory(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes), bump_(kBase) {
  // Reserve the whole arena up front so growth never reallocates: workers
  // may hold raw pointers into data_ across an Alloc on another thread.
  // reserve() maps address space without touching it, so a multi-GB heap is
  // still cheap to create; resize (below, under the lock) commits pages on
  // demand exactly like the pre-parallel version did.
  data_.reserve(kBase + capacity_);
  data_.resize(kBase + 4096);
  limit_.store(data_.size(), std::memory_order_release);
}

DevPtr GlobalMemory::Alloc(std::uint64_t bytes) {
  // 256-byte granularity, like cuMemAlloc's alignment guarantee. This also
  // makes the cost model's transaction counts independent of allocation
  // history: every block base — fresh bump or first-fit reuse — is segment-
  // aligned, so identical access patterns charge identically no matter which
  // block they land in (the autotuner's exact-regret claim relies on it).
  bytes = AlignUp<std::uint64_t>(std::max<std::uint64_t>(bytes, 1), 256);
  std::lock_guard<std::mutex> lk(mu_);
  alloc_gen_.fetch_add(1, std::memory_order_relaxed);
  // First-fit reuse of freed blocks keeps long-running pipelines bounded.
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->second >= bytes) {
      DevPtr ptr = it->first;
      std::uint64_t size = it->second;
      free_list_.erase(it);
      live_[ptr] = size;
      in_use_ += size;
      peak_in_use_ = std::max(peak_in_use_, in_use_);
      return ptr;
    }
  }
  if (bump_ + bytes > capacity_ + kBase) {
    throw DeviceError(Format("out of device memory: requested %llu bytes, %llu in use",
                             static_cast<unsigned long long>(bytes),
                             static_cast<unsigned long long>(in_use_)));
  }
  if (bump_ + bytes > data_.size()) {
    std::uint64_t want = std::max<std::uint64_t>(bump_ + bytes, data_.size() * 2);
    data_.resize(std::min<std::uint64_t>(want, capacity_ + kBase));
    limit_.store(data_.size(), std::memory_order_release);
  }
  DevPtr ptr = bump_;
  bump_ += bytes;
  live_[ptr] = bytes;
  in_use_ += bytes;
  peak_in_use_ = std::max(peak_in_use_, in_use_);
  return ptr;
}

void GlobalMemory::Free(DevPtr ptr) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = live_.find(ptr);
  if (it == live_.end()) throw DeviceError("free of unknown device pointer");
  alloc_gen_.fetch_add(1, std::memory_order_relaxed);
  in_use_ -= it->second;
  free_list_.emplace_back(it->first, it->second);
  live_.erase(it);
}

std::uint64_t GlobalMemory::bytes_in_use() const {
  std::lock_guard<std::mutex> lk(mu_);
  return in_use_;
}

std::size_t GlobalMemory::allocation_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_.size();
}

std::uint64_t GlobalMemory::peak_bytes_in_use() const {
  std::lock_guard<std::mutex> lk(mu_);
  return peak_in_use_;
}

std::pair<DevPtr, std::uint64_t> GlobalMemory::LookupSlow(DevPtr addr) const {
  std::uint64_t gen;
  DevPtr base = 0;
  std::uint64_t end = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    gen = alloc_gen_.load(std::memory_order_relaxed);
    auto it = live_.upper_bound(addr);
    if (it != live_.begin()) {
      --it;
      if (addr < it->first + it->second) {
        base = it->first;
        end = it->first + it->second;
      }
    }
  }
  if (end != 0) {
    ThreadCache& c = t_cache;
    int v = c.victim;
    c.victim = (v + 1) % kCacheWays;
    c.owner[v] = this;
    c.gen[v] = gen;
    c.base[v] = base;
    c.end[v] = end;
  }
  return {base, end};
}

[[noreturn]] void GlobalMemory::ThrowBadAccess(DevPtr addr, std::uint64_t bytes) const {
  throw DeviceError(Format("out-of-bounds device access at 0x%llx (%llu bytes)",
                           static_cast<unsigned long long>(addr),
                           static_cast<unsigned long long>(bytes)));
}

const unsigned char* GlobalMemory::CheckedPointer(DevPtr addr, std::uint64_t bytes) const {
  // Arena-level guard first: cheap, catches null/garbage pointers, and keeps
  // addr + bytes overflow out of the allocation check below.
  if (addr < kBase || bytes > limit_.load(std::memory_order_relaxed) ||
      addr + bytes > limit_.load(std::memory_order_relaxed)) {
    ThrowBadAccess(addr, bytes);
  }
  const std::uint64_t gen = alloc_gen_.load(std::memory_order_relaxed);
  const ThreadCache& c = t_cache;
  for (int v = 0; v < kCacheWays; ++v) {
    if (c.owner[v] == this && c.gen[v] == gen && addr >= c.base[v] &&
        addr + bytes <= c.end[v]) {
      return data_.data() + addr;
    }
  }
  auto [base, end] = LookupSlow(addr);
  if (end == 0 || addr + bytes > end) ThrowBadAccess(addr, bytes);
  return data_.data() + addr;
}

unsigned char* GlobalMemory::Access(DevPtr addr, std::uint64_t bytes) {
  return const_cast<unsigned char*>(CheckedPointer(addr, bytes));
}

const unsigned char* GlobalMemory::Access(DevPtr addr, std::uint64_t bytes) const {
  return CheckedPointer(addr, bytes);
}

const unsigned char* GlobalMemory::TryAccess(DevPtr addr, std::uint64_t bytes) const {
  if (addr < kBase || bytes > limit_.load(std::memory_order_relaxed) ||
      addr + bytes > limit_.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  const std::uint64_t gen = alloc_gen_.load(std::memory_order_relaxed);
  const ThreadCache& c = t_cache;
  for (int v = 0; v < kCacheWays; ++v) {
    if (c.owner[v] == this && c.gen[v] == gen && addr >= c.base[v] &&
        addr + bytes <= c.end[v]) {
      return data_.data() + addr;
    }
  }
  auto [base, end] = LookupSlow(addr);
  if (end == 0 || addr + bytes > end) return nullptr;
  return data_.data() + addr;
}

void GlobalMemory::Write(DevPtr dst, const void* src, std::uint64_t bytes) {
  std::memcpy(Access(dst, bytes), src, bytes);
}

void GlobalMemory::Read(void* dst, DevPtr src, std::uint64_t bytes) const {
  std::memcpy(dst, Access(src, bytes), bytes);
}

void GlobalMemory::Memset(DevPtr dst, unsigned char value, std::uint64_t bytes) {
  std::memset(Access(dst, bytes), value, bytes);
}

}  // namespace kspec::vgpu
