#include "vgpu/memory.hpp"

#include <algorithm>

#include "support/math.hpp"
#include "support/str.hpp"

namespace kspec::vgpu {

GlobalMemory::GlobalMemory(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes), bump_(kBase) {
  // The backing store grows on demand (capacity_ is the cap, not the initial
  // allocation) so that creating a context with a multi-GB heap stays cheap.
  data_.resize(kBase + 4096);
}

DevPtr GlobalMemory::Alloc(std::uint64_t bytes) {
  bytes = AlignUp<std::uint64_t>(std::max<std::uint64_t>(bytes, 1), 16);
  // First-fit reuse of freed blocks keeps long-running pipelines bounded.
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->second >= bytes) {
      DevPtr ptr = it->first;
      std::uint64_t size = it->second;
      free_list_.erase(it);
      live_[ptr] = size;
      in_use_ += size;
      return ptr;
    }
  }
  if (bump_ + bytes > capacity_ + kBase) {
    throw DeviceError(Format("out of device memory: requested %llu bytes, %llu in use",
                             static_cast<unsigned long long>(bytes),
                             static_cast<unsigned long long>(in_use_)));
  }
  if (bump_ + bytes > data_.size()) {
    std::uint64_t want = std::max<std::uint64_t>(bump_ + bytes, data_.size() * 2);
    data_.resize(std::min<std::uint64_t>(want, capacity_ + kBase));
  }
  DevPtr ptr = bump_;
  bump_ += bytes;
  live_[ptr] = bytes;
  in_use_ += bytes;
  return ptr;
}

void GlobalMemory::Free(DevPtr ptr) {
  auto it = live_.find(ptr);
  if (it == live_.end()) throw DeviceError("free of unknown device pointer");
  in_use_ -= it->second;
  free_list_.emplace_back(it->first, it->second);
  live_.erase(it);
}

void GlobalMemory::CheckRange(DevPtr addr, std::uint64_t bytes) const {
  // A fast path covers the vast majority of accesses: inside the arena and
  // above the guard region.
  if (addr < kBase || addr + bytes > data_.size()) {
    throw DeviceError(Format("out-of-bounds device access at 0x%llx (%llu bytes)",
                             static_cast<unsigned long long>(addr),
                             static_cast<unsigned long long>(bytes)));
  }
}

unsigned char* GlobalMemory::Access(DevPtr addr, std::uint64_t bytes) {
  CheckRange(addr, bytes);
  return data_.data() + addr;
}

const unsigned char* GlobalMemory::Access(DevPtr addr, std::uint64_t bytes) const {
  CheckRange(addr, bytes);
  return data_.data() + addr;
}

void GlobalMemory::Write(DevPtr dst, const void* src, std::uint64_t bytes) {
  std::memcpy(Access(dst, bytes), src, bytes);
}

void GlobalMemory::Read(void* dst, DevPtr src, std::uint64_t bytes) const {
  std::memcpy(dst, Access(src, bytes), bytes);
}

void GlobalMemory::Memset(DevPtr dst, unsigned char value, std::uint64_t bytes) {
  std::memset(Access(dst, bytes), value, bytes);
}

}  // namespace kspec::vgpu
