// The execution-tier abstraction and the shared launch shell.
//
// The vgpu executes a kernel through one of three tiers, trading setup cost
// for steady-state speed exactly the way the dissertation trades compile time
// for specialized-kernel speed:
//
//   kInterp  — decode-per-launch interpretation: no per-kernel state, pays
//              the full decode on every launch. Reference semantics.
//   kDecoded — decode-once dispatch (the PR 5 fast path): a cached
//              DecodedKernel with pre-selected handlers and issue costs.
//   kNative  — a specialized C++ translation unit emitted from the decoded
//              module, compiled by the host toolchain, and dlopen'd
//              (src/native/). Built once per ModuleCacheKey, reused across
//              launches and processes.
//
// All three tiers produce bit-identical LaunchStats: the cost-model charges
// are defined by the instruction stream, never by how it is executed. This
// header also hosts the launch shell that guarantees it — validation,
// occupancy, register-spill clamping, execution-policy resolution, the
// grid-chunking rule, and the final fold/spill/cost-model steps are shared
// code, so the interpreter and the native backend cannot drift apart.
//
// Tier selection mirrors the VGPU_WORKERS precedence chain: test override >
// VGPU_TIER environment variable > per-launch request > context default.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "vgpu/device.hpp"
#include "vgpu/launch.hpp"

namespace kspec::vgpu {

enum class ExecutionTier : std::uint8_t {
  kAuto = 0,  // let the runtime pick: decoded now, native once it is ready
  kInterp,
  kDecoded,
  kNative,
};

// How the native tier treats launch-shape-specialized variants. The shape
// (block and grid dimensions) is a launch-time constant exactly like the
// kernel's `#define` parameters, so the native backend can bake it into the
// emitted TU: `ntid`/`nctaid` become `constexpr`, boundary-warp masks become
// provable constants, and per-lane bit-scan loops collapse to straight-line
// full-mask code where the mask-constant-propagation pass proves them full.
enum class ShapeMode : std::uint8_t {
  kOff = 0,   // serve only the shape-generic TU; never build variants
  kAuto,      // serve generic immediately, promote hot shapes in background
  kEager,     // build the shape variant inline on first use (tests, benches)
};

// Stable lower-case name ("off", "auto", "eager") for logs and reports.
const char* ShapeModeName(ShapeMode mode);

// Parses a shape-mode name (as accepted in KSPEC_NATIVE_SHAPE). Returns false
// on anything unrecognized; `out` is untouched then.
bool ParseShapeMode(std::string_view text, ShapeMode* out);

// KSPEC_NATIVE_SHAPE: "off" / "auto" / "eager"; unset or garbage = kAuto.
// Parsed once, like VGPU_TIER.
ShapeMode EnvShapeMode();

// Process-wide shape-mode override for tests and tools: while set, it wins
// over KSPEC_NATIVE_SHAPE and the engine default. Pass nullptr to clear. Not
// thread-safe against concurrent launches — set it between runs.
void SetShapeModeOverride(const ShapeMode* mode);

// Precedence chain: test override > KSPEC_NATIVE_SHAPE > `fallback`.
ShapeMode ResolveShapeMode(ShapeMode fallback = ShapeMode::kAuto);

// Stable lower-case name ("auto", "interp", "decoded", "native") for logs,
// reports, and JSON.
const char* TierName(ExecutionTier tier);

// Parses a tier name (as accepted in VGPU_TIER / --tier). Returns false on
// anything unrecognized; `out` is untouched then.
bool ParseTier(std::string_view text, ExecutionTier* out);

// VGPU_TIER: "interp" / "decoded" / "native" force that tier, "auto" / unset /
// garbage = no override. Parsed once, like VGPU_WORKERS.
ExecutionTier EnvTier();

// Process-wide tier override for tests and tools: while set, it wins over
// VGPU_TIER and every per-launch request. Pass nullptr to clear. The
// pointed-to value is copied. Not thread-safe against concurrent launches —
// set it from the test main thread between runs.
void SetTierOverride(const ExecutionTier* tier);

// Applies the precedence chain: test override > VGPU_TIER > `request` >
// `context_default`. A kAuto at every level resolves to kAuto — the caller
// (vcuda::Context) then picks decoded-or-native by artifact readiness.
ExecutionTier ResolveTier(ExecutionTier request,
                          ExecutionTier context_default = ExecutionTier::kAuto);

// Resolves the block-level execution policy for one launch: test override
// (SetExecPolicyOverride) > VGPU_WORKERS > `requested` (LaunchConfig::exec).
ExecPolicy ResolveExecPolicy(const ExecPolicy& requested);

// Everything a tier backend needs to run a launch the standard way, computed
// by PrepareLaunch before any block executes. The stats member arrives with
// the configuration echo and occupancy filled in; the backend executes
// `nparts` chunks of `chunk` blocks into a BlockStats array and hands the
// shell to FinalizeLaunchStats.
struct LaunchShell {
  LaunchStats stats;
  unsigned wanted_regs = 1;  // pre-clamp register demand (spill accounting)
  unsigned spilled = 0;
  std::uint64_t nblocks = 0;
  std::uint64_t chunk = 1;   // blocks per chunk; depends only on the grid
  std::size_t nparts = 0;
  unsigned workers = 1;      // resolved worker count (>= 1)
  bool parallel = false;     // run chunks on the worker pool?
};

// Validates the configuration (empty launch, block size, shared-memory and
// occupancy limits — throws DeviceError exactly like the interpreter always
// did), clamps register demand to the device limit, resolves the execution
// policy, and fixes the grid-chunking plan. `has_global_atomic` keeps kAuto
// launches of schedule-dependent kernels on the serial reference schedule.
LaunchShell PrepareLaunch(const DeviceProfile& dev, const LaunchConfig& cfg,
                          int reg_count, unsigned static_smem_bytes,
                          bool has_global_atomic);

// Folds the per-chunk partials (in chunk order — this is what makes the
// result independent of which worker ran which chunk), applies the register
// spill charge, and runs the cost model. Leaves the final LaunchStats in
// shell.stats.
void FinalizeLaunchStats(const DeviceProfile& dev, LaunchShell& shell,
                         std::span<const BlockStats> parts);

// Linear block index -> CTA coordinates, row-major in x then y then z.
Dim3 LinearToCta(const Dim3& grid, std::uint64_t b);

}  // namespace kspec::vgpu
