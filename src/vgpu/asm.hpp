// MiniPTX assembler: parses the textual form produced by Disassemble() back
// into an instruction stream.
//
// Two uses: (1) round-trip property testing of the ISA layer — for any
// compiled kernel, Assemble(Disassemble(code)) must reproduce `code`
// exactly; (2) hand-written instruction sequences in simulator tests and
// golden files, without going through the compiler.
#pragma once

#include <string>
#include <vector>

#include "vgpu/isa.hpp"

namespace kspec::vgpu {

// Parses one instruction per non-empty line. Accepts the exact Disassemble()
// syntax, including the "  12:  " pc prefix (optional) and trailing
// "// reconv L7" comments. Throws DeviceError with line context on syntax
// errors.
std::vector<Instr> Assemble(const std::string& text);

}  // namespace kspec::vgpu
