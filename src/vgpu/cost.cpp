#include "vgpu/cost.hpp"

#include <algorithm>
#include <cmath>

#include "support/math.hpp"
#include "support/str.hpp"

namespace kspec::vgpu {

void ApplyCostModel(const DeviceProfile& dev, LaunchStats& stats,
                    const CostModelConstants& constants) {
  if (stats.blocks == 0) {
    stats.sim_cycles = 0;
    stats.sim_millis = 0;
    return;
  }

  // How much of the launch lands on the busiest SM (blocks are distributed
  // round-robin).
  const double max_blocks_on_sm =
      static_cast<double>(CeilDiv<unsigned>(stats.blocks, dev.num_sms));
  const double busiest_share = max_blocks_on_sm / static_cast<double>(stats.blocks);

  const double ilp =
      std::clamp(stats.avg_ilp, constants.min_ilp, constants.max_ilp);

  // Latency hiding: resident warps per SM relative to what the pipeline needs.
  const double active_warps = std::max(1u, stats.occupancy.active_warps);
  const double hide = std::min(1.0, active_warps / dev.latency_hiding_warps);

  // Compute pipe: when latency is not hidden by other warps, each issue from a
  // dependent chain stalls ~dependent_latency/ILP cycles.
  const double chain_stall = std::max(0.0, dev.dependent_latency / ilp - 1.0);
  const double compute_inflation = 1.0 + chain_stall * (1.0 - hide);
  const double compute = stats.issue_cycles * compute_inflation;

  // Exposed global-memory latency: charged per global warp-instruction when
  // occupancy is too low, amortized by memory-level parallelism (~ILP).
  const double mem_exposed = static_cast<double>(stats.global_instrs) *
                             constants.memory_latency * (1.0 - hide) / ilp;

  // Compute and memory pipes overlap, but not perfectly: the issue stage is
  // shared, so the shorter pipe still contributes a fraction of its cycles.
  constexpr double kOverlapLeak = 0.15;
  const double a = compute + mem_exposed;
  const double b = stats.memory_cycles;
  const double sm_cycles = (std::max(a, b) + kOverlapLeak * std::min(a, b)) * busiest_share;

  stats.sim_cycles = sm_cycles;
  stats.sim_millis = sm_cycles / (dev.clock_ghz * 1e6);
}

std::string LaunchStats::ToString() const {
  return Format(
      "blocks=%u threads=%u regs=%u smem=%u occ=%.2f (%s) warp_instrs=%llu "
      "tx=%llu ilp=%.2f sim=%.4f ms",
      blocks, threads_per_block, regs_per_thread, smem_per_block, occupancy.occupancy,
      occupancy.limiter, static_cast<unsigned long long>(warp_instrs),
      static_cast<unsigned long long>(mem_transactions), avg_ilp, sim_millis);
}

}  // namespace kspec::vgpu
