#include "vgpu/cost.hpp"

#include <algorithm>
#include <cmath>

#include "support/math.hpp"
#include "support/str.hpp"

namespace kspec::vgpu {

double IssueCost(const DeviceProfile& dev, const Instr& i) {
  const bool f64 = i.type == Type::kF64;
  switch (i.op) {
    case Opcode::kMul:
    case Opcode::kMad:
      if (i.type == Type::kI32 || i.type == Type::kU32) return dev.IsFermi() ? 1.0 : 2.0;
      if (f64) return dev.IsFermi() ? 2.0 : 8.0;
      return 1.0;
    case Opcode::kMul24:
      return dev.IsFermi() ? 3.0 : 1.0;
    case Opcode::kDiv:
    case Opcode::kRem:
      if (IsIntType(i.type)) return 16.0;
      return f64 ? 24.0 : 8.0;
    case Opcode::kSqrt:
    case Opcode::kRsqrt:
    case Opcode::kExp:
    case Opcode::kLog:
    case Opcode::kSin:
    case Opcode::kCos:
      return f64 ? 24.0 : 8.0;
    case Opcode::kBarSync:
      return 2.0;
    case Opcode::kAdd:
    case Opcode::kSub:
      if (f64) return dev.IsFermi() ? 2.0 : 8.0;
      return 1.0;
    default:
      return 1.0;
  }
}

void ApplyCostModel(const DeviceProfile& dev, LaunchStats& stats,
                    const CostModelConstants& constants) {
  if (stats.blocks == 0) {
    stats.sim_cycles = 0;
    stats.sim_millis = 0;
    return;
  }

  // How much of the launch lands on the busiest SM (blocks are distributed
  // round-robin).
  const double max_blocks_on_sm =
      static_cast<double>(CeilDiv<unsigned>(stats.blocks, dev.num_sms));
  const double busiest_share = max_blocks_on_sm / static_cast<double>(stats.blocks);

  const double ilp =
      std::clamp(stats.avg_ilp, constants.min_ilp, constants.max_ilp);

  // Latency hiding: resident warps per SM relative to what the pipeline needs.
  const double active_warps = std::max(1u, stats.occupancy.active_warps);
  const double hide = std::min(1.0, active_warps / dev.latency_hiding_warps);

  // Compute pipe: when latency is not hidden by other warps, each issue from a
  // dependent chain stalls ~dependent_latency/ILP cycles.
  const double chain_stall = std::max(0.0, dev.dependent_latency / ilp - 1.0);
  const double compute_inflation = 1.0 + chain_stall * (1.0 - hide);
  const double compute = stats.issue_cycles * compute_inflation;

  // Exposed global-memory latency: charged per global warp-instruction when
  // occupancy is too low, amortized by memory-level parallelism (~ILP).
  const double mem_exposed = static_cast<double>(stats.global_instrs) *
                             constants.memory_latency * (1.0 - hide) / ilp;

  // Compute and memory pipes overlap, but not perfectly: the issue stage is
  // shared, so the shorter pipe still contributes a fraction of its cycles.
  constexpr double kOverlapLeak = 0.15;
  const double a = compute + mem_exposed;
  const double b = stats.memory_cycles;
  const double sm_cycles = (std::max(a, b) + kOverlapLeak * std::min(a, b)) * busiest_share;

  stats.sim_cycles = sm_cycles;
  stats.sim_millis = sm_cycles / (dev.clock_ghz * 1e6);
}

void FoldBlockStats(std::span<const BlockStats> parts, LaunchStats& into) {
  // Fold strictly in chunk-index order: the floating-point sums below are not
  // associative, and this fixed order is what makes LaunchStats bit-identical
  // regardless of which host thread produced which partial.
  std::uint64_t warp_instrs = 0;
  double ilp_sum = 0;
  for (const BlockStats& p : parts) {
    warp_instrs += p.warp_instrs;
    into.lane_instrs += p.lane_instrs;
    into.global_instrs += p.global_instrs;
    into.mem_transactions += p.mem_transactions;
    into.texture_fetches += p.texture_fetches;
    into.shared_conflict_cycles += p.shared_conflict_cycles;
    into.barriers += p.barriers;
    into.issue_cycles += p.issue_cycles;
    into.memory_cycles += p.memory_cycles;
    ilp_sum += p.ilp_sum;
  }
  into.warp_instrs += warp_instrs;
  // Dynamic-instruction-weighted average, not a mean of per-chunk means: each
  // warp issue contributes its pc's static ILP once, so the weight of a chunk
  // is exactly the number of instructions it issued.
  if (warp_instrs > 0 && ilp_sum > 0) {
    into.avg_ilp = ilp_sum / static_cast<double>(warp_instrs);
  }
}

bool StatsBitIdentical(const LaunchStats& a, const LaunchStats& b) {
  return a.warp_instrs == b.warp_instrs && a.lane_instrs == b.lane_instrs &&
         a.global_instrs == b.global_instrs && a.mem_transactions == b.mem_transactions &&
         a.texture_fetches == b.texture_fetches &&
         a.shared_conflict_cycles == b.shared_conflict_cycles && a.barriers == b.barriers &&
         a.issue_cycles == b.issue_cycles && a.memory_cycles == b.memory_cycles &&
         a.avg_ilp == b.avg_ilp && a.blocks == b.blocks &&
         a.threads_per_block == b.threads_per_block && a.regs_per_thread == b.regs_per_thread &&
         a.spilled_regs == b.spilled_regs && a.smem_per_block == b.smem_per_block &&
         a.sim_cycles == b.sim_cycles && a.sim_millis == b.sim_millis;
}

std::string LaunchStats::ToString() const {
  return Format(
      "blocks=%u threads=%u regs=%u smem=%u occ=%.2f (%s) warp_instrs=%llu "
      "tx=%llu ilp=%.2f sim=%.4f ms",
      blocks, threads_per_block, regs_per_thread, smem_per_block, occupancy.occupancy,
      occupancy.limiter, static_cast<unsigned long long>(warp_instrs),
      static_cast<unsigned long long>(mem_transactions), avg_ilp, sim_millis);
}

}  // namespace kspec::vgpu
