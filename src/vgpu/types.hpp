// Core value and geometry types shared by the vgpu simulator and the kcc
// compiler. Registers are 64-bit slots reinterpreted according to the static
// type carried by each instruction (as in PTX, where virtual registers are
// typed by the instruction that uses them).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace kspec::vgpu {

enum class Type : std::uint8_t {
  kPred,  // boolean predicate
  kI32,
  kU32,
  kI64,
  kU64,  // also pointer type
  kF32,
  kF64,
};

const char* TypeName(Type t);

// Size in bytes of a value of type `t` in memory.
std::size_t TypeSize(Type t);

bool IsFloatType(Type t);
bool IsSignedInt(Type t);
bool IsIntType(Type t);

// A 64-bit register slot. Helpers encode/decode typed values.
union Slot {
  std::uint64_t raw;
  struct {
  } _;
};

inline std::uint64_t EncodeF32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  return bits;
}
inline float DecodeF32(std::uint64_t raw) {
  std::uint32_t bits = static_cast<std::uint32_t>(raw);
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}
inline std::uint64_t EncodeF64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  return bits;
}
inline double DecodeF64(std::uint64_t raw) {
  double v;
  std::memcpy(&v, &raw, 8);
  return v;
}
inline std::uint64_t EncodeI32(std::int32_t v) {
  return static_cast<std::uint32_t>(v);
}
inline std::int32_t DecodeI32(std::uint64_t raw) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(raw));
}

struct Dim3 {
  unsigned x = 1, y = 1, z = 1;

  constexpr Dim3() = default;
  constexpr Dim3(unsigned x_, unsigned y_ = 1, unsigned z_ = 1) : x(x_), y(y_), z(z_) {}

  constexpr unsigned long long Count() const {
    return static_cast<unsigned long long>(x) * y * z;
  }
  bool operator==(const Dim3&) const = default;

  std::string ToString() const;
};

// Memory address spaces, mirroring the CUDA memory hierarchy relevant to the
// dissertation (Section 2.1).
enum class Space : std::uint8_t { kGlobal, kShared, kConst, kLocal, kParam };

const char* SpaceName(Space s);

}  // namespace kspec::vgpu
