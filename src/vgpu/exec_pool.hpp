// A process-wide pool of host worker threads for the parallel execution
// engine.
//
// The pool hands out *work tickets*, not tasks: ParallelFor publishes one job
// (an index space plus a callback) and queues one ticket per helper thread.
// Each participant — helpers and the calling thread alike — claims indices
// from a shared atomic cursor until the space is exhausted, which gives
// dynamic load balancing without per-index queue traffic (the same
// backpressure-free idiom as serve/compile_executor, minus the result
// plumbing that launches don't need).
//
// Threads are created lazily, grow to the largest worker count ever
// requested, and persist for the life of the process; an idle pool costs a
// few parked threads. Exceptions thrown by the callback are captured
// (first one wins), remaining indices are drained without running, and the
// exception is rethrown on the calling thread — so a DeviceError from block
// 977 surfaces exactly like it would from a serial loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace kspec::vgpu {

class ExecPool {
 public:
  static ExecPool& Instance();

  // Runs fn(i) for every i in [0, n), on up to `workers` threads including
  // the caller. Blocks until all indices completed; rethrows the first
  // exception any participant saw. workers <= 1 degenerates to a plain loop.
  void ParallelFor(unsigned workers, std::size_t n, const std::function<void(std::size_t)>& fn);

  // Threads currently alive (for tests / introspection).
  unsigned thread_count() const;

  ExecPool(const ExecPool&) = delete;
  ExecPool& operator=(const ExecPool&) = delete;

 private:
  struct Job;

  ExecPool() = default;
  ~ExecPool();

  void EnsureThreads(unsigned want);
  void WorkerLoop();
  static void Participate(Job& job);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Job>> tickets_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

}  // namespace kspec::vgpu
