#include "vgpu/device.hpp"

#include <algorithm>

#include "support/math.hpp"
#include "support/status.hpp"

namespace kspec::vgpu {

DeviceProfile TeslaC1060() {
  DeviceProfile d;
  d.name = "VC1060";
  d.compute_major = 1;
  d.compute_minor = 3;
  d.max_threads_per_block = 512;
  d.max_warps_per_sm = 32;
  d.max_blocks_per_sm = 8;
  d.registers_per_sm = 16 * 1024;
  d.shared_mem_per_sm = 16 * 1024;
  d.max_regs_per_thread = 124;
  d.shared_mem_banks = 16;
  d.register_alloc_unit = 512;
  d.num_sms = 30;
  d.clock_ghz = 1.30;
  d.global_mem_bytes = 4096ull << 20;
  d.cycles_per_global_tx = 44.0;     // no L1; half-warp segment transactions
  d.dependent_latency = 24.0;
  d.latency_hiding_warps = 20.0;
  d.shared_access_cost = 1.0;        // shared throughput matches register file
  return d;
}

DeviceProfile TeslaC2070() {
  DeviceProfile d;
  d.name = "VC2070";
  d.compute_major = 2;
  d.compute_minor = 0;
  d.max_threads_per_block = 1024;
  d.max_warps_per_sm = 48;
  d.max_blocks_per_sm = 8;
  d.registers_per_sm = 32 * 1024;
  d.shared_mem_per_sm = 48 * 1024;
  d.max_regs_per_thread = 63;
  d.shared_mem_banks = 32;
  d.register_alloc_unit = 64;
  d.num_sms = 14;
  d.clock_ghz = 1.15;
  d.global_mem_bytes = 6144ull << 20;
  d.cycles_per_global_tx = 30.0;     // L1-cached 128-byte lines
  d.dependent_latency = 18.0;
  d.latency_hiding_warps = 24.0;
  d.shared_access_cost = 2.0;        // shared slower relative to registers (Sec 2.4)
  return d;
}

DeviceProfile ProfileByName(const std::string& name) {
  if (name == "VC1060" || name == "C1060" || name == "c1060") return TeslaC1060();
  if (name == "VC2070" || name == "C2070" || name == "c2070") return TeslaC2070();
  throw DeviceError("unknown device profile: " + name);
}

Occupancy ComputeOccupancy(const DeviceProfile& dev, Dim3 block, unsigned regs_per_thread,
                           unsigned smem_per_block) {
  Occupancy occ;
  unsigned long long threads = block.Count();
  KSPEC_CHECK_MSG(threads > 0, "empty block");
  if (threads > dev.max_threads_per_block) {
    occ.limiter = "threads-per-block";
    return occ;
  }
  unsigned warps_per_block =
      static_cast<unsigned>(CeilDiv<unsigned long long>(threads, dev.warp_size));

  // Warp limit.
  unsigned by_warps = dev.max_warps_per_sm / warps_per_block;

  // Register limit: registers are allocated per warp in units of
  // register_alloc_unit (matches the coarse allocation granularity of real
  // devices).
  unsigned regs = std::max(regs_per_thread, 1u);
  if (regs > dev.max_regs_per_thread) {
    occ.limiter = "regs-per-thread";
    return occ;
  }
  unsigned regs_per_warp = AlignUp(regs * dev.warp_size, dev.register_alloc_unit);
  unsigned regs_per_block = regs_per_warp * warps_per_block;
  unsigned by_regs = dev.registers_per_sm / regs_per_block;

  // Shared memory limit (allocation granularity 128 bytes).
  unsigned smem = AlignUp(std::max(smem_per_block, 1u), 128u);
  if (smem > dev.shared_mem_per_sm) {
    occ.limiter = "shared-mem";
    return occ;
  }
  unsigned by_smem = dev.shared_mem_per_sm / smem;

  unsigned blocks = std::min({by_warps, by_regs, by_smem, dev.max_blocks_per_sm});
  occ.blocks_per_sm = blocks;
  occ.active_warps = blocks * warps_per_block;
  occ.occupancy = static_cast<double>(occ.active_warps) / dev.max_warps_per_sm;
  if (blocks == by_warps && by_warps <= by_regs && by_warps <= by_smem &&
      by_warps <= dev.max_blocks_per_sm) {
    occ.limiter = "warps";
  } else if (blocks == dev.max_blocks_per_sm && dev.max_blocks_per_sm <= by_regs &&
             dev.max_blocks_per_sm <= by_smem) {
    occ.limiter = "blocks";
  } else if (blocks == by_regs && by_regs <= by_smem) {
    occ.limiter = "registers";
  } else {
    occ.limiter = "shared-mem";
  }
  return occ;
}

}  // namespace kspec::vgpu
