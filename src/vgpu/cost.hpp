// The analytic execution-time model.
//
// The interpreter gathers exact dynamic counts (instruction issues, memory
// transactions after coalescing, bank-conflict cycles); this model turns them
// into simulated time for a device profile. It is intentionally simple but
// captures the performance mechanisms the dissertation's results depend on:
//
//  * dynamic instruction count — specialization removes loop overhead,
//    folded arithmetic, and parameter loads, directly shrinking issue cycles;
//  * occupancy — register usage and shared-memory footprint bound resident
//    warps per SM; too few warps expose pipeline and memory latency;
//  * ILP — register-blocked/unrolled code has more independent instructions
//    per thread, hiding latency even at low occupancy (Section 2.3);
//  * coalescing and bank conflicts — memory-system behaviour feeds the
//    throughput term.
#pragma once

#include "vgpu/device.hpp"
#include "vgpu/isa.hpp"
#include "vgpu/launch.hpp"

namespace kspec::vgpu {

// Issue cost in compute-pipe cycles for one static instruction. Device
// dependent where the dissertation calls out generation differences (Section
// 2.4: the relative throughput of `*` and __[u]mul24() inverted between cc
// 1.3 and cc 2.0; double precision rates differ strongly). Shared by every
// execution tier — the decoded interpreter evaluates it once per static
// instruction at decode, the native backend bakes the summed per-basic-block
// costs into the emitted translation unit.
double IssueCost(const DeviceProfile& dev, const Instr& i);

// Model constants shared by both device profiles.
struct CostModelConstants {
  double memory_latency = 320.0;  // cycles of exposed global-memory latency
  double min_ilp = 1.0;
  double max_ilp = 8.0;
};

// Fills stats.sim_cycles / stats.sim_millis from the raw counters. `stats`
// must already contain occupancy and configuration fields.
void ApplyCostModel(const DeviceProfile& dev, LaunchStats& stats,
                    const CostModelConstants& constants = {});

}  // namespace kspec::vgpu
