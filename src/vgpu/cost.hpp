// The analytic execution-time model.
//
// The interpreter gathers exact dynamic counts (instruction issues, memory
// transactions after coalescing, bank-conflict cycles); this model turns them
// into simulated time for a device profile. It is intentionally simple but
// captures the performance mechanisms the dissertation's results depend on:
//
//  * dynamic instruction count — specialization removes loop overhead,
//    folded arithmetic, and parameter loads, directly shrinking issue cycles;
//  * occupancy — register usage and shared-memory footprint bound resident
//    warps per SM; too few warps expose pipeline and memory latency;
//  * ILP — register-blocked/unrolled code has more independent instructions
//    per thread, hiding latency even at low occupancy (Section 2.3);
//  * coalescing and bank conflicts — memory-system behaviour feeds the
//    throughput term.
#pragma once

#include "vgpu/device.hpp"
#include "vgpu/launch.hpp"

namespace kspec::vgpu {

// Model constants shared by both device profiles.
struct CostModelConstants {
  double memory_latency = 320.0;  // cycles of exposed global-memory latency
  double min_ilp = 1.0;
  double max_ilp = 8.0;
};

// Fills stats.sim_cycles / stats.sim_millis from the raw counters. `stats`
// must already contain occupancy and configuration fields.
void ApplyCostModel(const DeviceProfile& dev, LaunchStats& stats,
                    const CostModelConstants& constants = {});

}  // namespace kspec::vgpu
