#include "vgpu/asm.hpp"

#include <cctype>
#include <cstdlib>
#include <map>

#include "support/status.hpp"
#include "support/str.hpp"

namespace kspec::vgpu {

namespace {

// Cursor over one instruction line.
class LineParser {
 public:
  LineParser(std::string_view line, int line_no) : s_(line), line_no_(line_no) {}

  [[noreturn]] void Fail(const std::string& msg) {
    throw DeviceError(Format("miniptx line %d: %s (near '%.*s')", line_no_, msg.c_str(),
                             static_cast<int>(std::min<std::size_t>(16, s_.size() - pos_)),
                             s_.data() + pos_));
  }

  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool AtEnd() {
    SkipWs();
    // Trailing comments terminate the instruction.
    return pos_ >= s_.size() || (pos_ + 1 < s_.size() && s_[pos_] == '/' && s_[pos_ + 1] == '/');
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void Expect(char c) {
    if (!Consume(c)) Fail(Format("expected '%c'", c));
  }

  char Peek() {
    SkipWs();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  // Reads an identifier-ish token (letters, digits, '.', '_', '%', '!', '@').
  std::string Token() {
    SkipWs();
    std::size_t start = pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '_' || c == '%' ||
          c == '!' || c == '@') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) Fail("expected a token");
    return std::string(s_.substr(start, pos_ - start));
  }

  // Register: %r12 or %p7.
  std::int32_t Reg() {
    SkipWs();
    if (Peek() != '%') Fail("expected a register");
    std::string t = Token();
    if (t.size() < 3 || (t[1] != 'r' && t[1] != 'p')) Fail("bad register name " + t);
    return static_cast<std::int32_t>(std::strtol(t.c_str() + 2, nullptr, 10));
  }

  // Operand: register, float bit pattern (0f... / 0d...), or decimal.
  Operand Op() {
    SkipWs();
    if (Peek() == '%') return Operand::Reg(Reg());
    std::string t = Token();
    SkipComment();
    if (t.size() > 2 && t[0] == '0' && (t[1] == 'f' || t[1] == 'd')) {
      return Operand::Imm(std::strtoull(t.c_str() + 2, nullptr, 16));
    }
    if (t[0] == '-') {
      return Operand::Imm(static_cast<std::uint64_t>(std::strtoll(t.c_str(), nullptr, 10)));
    }
    return Operand::Imm(std::strtoull(t.c_str(), nullptr, 10));
  }

  // Skips an inline /*...*/ comment (Disassemble annotates float imms).
  void SkipComment() {
    SkipWs();
    if (pos_ + 1 < s_.size() && s_[pos_] == '/' && s_[pos_ + 1] == '*') {
      std::size_t end = s_.find("*/", pos_ + 2);
      if (end == std::string_view::npos) Fail("unterminated comment");
      pos_ = end + 2;
    }
  }

  // Label: L12.
  std::int32_t Label() {
    std::string t = Token();
    if (t.empty() || t[0] != 'L') Fail("expected a label");
    return static_cast<std::int32_t>(std::strtol(t.c_str() + 1, nullptr, 10));
  }

  std::int64_t Integer() {
    SkipWs();
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (pos_ == start) Fail("expected an integer");
    return std::strtoll(std::string(s_.substr(start, pos_ - start)).c_str(), nullptr, 10);
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
  int line_no_;
};

Type ParseType(const std::string& name, LineParser& p) {
  if (name == "pred") return Type::kPred;
  if (name == "s32") return Type::kI32;
  if (name == "u32") return Type::kU32;
  if (name == "s64") return Type::kI64;
  if (name == "u64") return Type::kU64;
  if (name == "f32") return Type::kF32;
  if (name == "f64") return Type::kF64;
  p.Fail("unknown type ." + name);
}

Space ParseSpace(const std::string& name, LineParser& p) {
  if (name == "global") return Space::kGlobal;
  if (name == "shared") return Space::kShared;
  if (name == "const") return Space::kConst;
  if (name == "local") return Space::kLocal;
  if (name == "param") return Space::kParam;
  p.Fail("unknown space ." + name);
}

CmpOp ParseCmp(const std::string& name, LineParser& p) {
  if (name == "eq") return CmpOp::kEq;
  if (name == "ne") return CmpOp::kNe;
  if (name == "lt") return CmpOp::kLt;
  if (name == "le") return CmpOp::kLe;
  if (name == "gt") return CmpOp::kGt;
  if (name == "ge") return CmpOp::kGe;
  p.Fail("unknown comparison ." + name);
}

const std::map<std::string, SpecialReg>& SregNames() {
  static const std::map<std::string, SpecialReg> table = {
      {"%tid.x", SpecialReg::kTidX},       {"%tid.y", SpecialReg::kTidY},
      {"%tid.z", SpecialReg::kTidZ},       {"%ntid.x", SpecialReg::kNtidX},
      {"%ntid.y", SpecialReg::kNtidY},     {"%ntid.z", SpecialReg::kNtidZ},
      {"%ctaid.x", SpecialReg::kCtaidX},   {"%ctaid.y", SpecialReg::kCtaidY},
      {"%ctaid.z", SpecialReg::kCtaidZ},   {"%nctaid.x", SpecialReg::kNctaidX},
      {"%nctaid.y", SpecialReg::kNctaidY}, {"%nctaid.z", SpecialReg::kNctaidZ},
      {"%laneid", SpecialReg::kLaneId},    {"%warpid", SpecialReg::kWarpId},
  };
  return table;
}

const std::map<std::string, Opcode>& AluNames() {
  static const std::map<std::string, Opcode> table = {
      {"nop", Opcode::kNop},   {"mov", Opcode::kMov},     {"add", Opcode::kAdd},
      {"sub", Opcode::kSub},   {"mul", Opcode::kMul},     {"div", Opcode::kDiv},
      {"rem", Opcode::kRem},   {"mul24", Opcode::kMul24}, {"mad", Opcode::kMad},
      {"min", Opcode::kMin},   {"max", Opcode::kMax},     {"neg", Opcode::kNeg},
      {"abs", Opcode::kAbs},   {"and", Opcode::kAnd},     {"or", Opcode::kOr},
      {"xor", Opcode::kXor},   {"not", Opcode::kNot},     {"shl", Opcode::kShl},
      {"shr", Opcode::kShr},   {"sqrt", Opcode::kSqrt},   {"rsqrt", Opcode::kRsqrt},
      {"floor", Opcode::kFloor}, {"ceil", Opcode::kCeil}, {"exp", Opcode::kExp},
      {"log", Opcode::kLog},   {"sin", Opcode::kSin},     {"cos", Opcode::kCos},
  };
  return table;
}

Instr ParseLine(std::string_view raw, int line_no) {
  LineParser p(raw, line_no);

  // Optional "@[!]%pN bra LT // reconv LR" predicated branch.
  if (p.Peek() == '@') {
    std::string t = p.Token();  // @%p4 or @!%p4
    Instr i;
    i.op = Opcode::kBraPred;
    i.type = Type::kPred;
    std::size_t at = 1;
    if (t.size() > at && t[at] == '!') {
      i.neg = true;
      ++at;
    }
    if (t.size() < at + 3 || t[at] != '%' || t[at + 1] != 'p') p.Fail("bad predicate " + t);
    i.a = Operand::Reg(static_cast<std::int32_t>(std::strtol(t.c_str() + at + 2, nullptr, 10)));
    std::string bra = p.Token();
    if (bra != "bra") p.Fail("expected bra after predicate");
    i.target = p.Label();
    // Trailing "// reconv Lk".
    std::string rest(raw.substr(raw.find("//") != std::string::npos ? raw.find("//") : raw.size()));
    std::size_t lpos = rest.find('L');
    if (lpos != std::string::npos) {
      i.reconv = static_cast<std::int32_t>(std::strtol(rest.c_str() + lpos + 1, nullptr, 10));
    }
    return i;
  }

  std::string head = p.Token();  // e.g. "ld.global.f32", "add.s32", "bar.sync"
  std::vector<std::string> parts = Split(head, '.');

  if (parts[0] == "exit") return Instr::Make(Opcode::kExit, Type::kI32, -1);
  if (parts[0] == "bra") {
    Instr i = Instr::Make(Opcode::kBra, Type::kI32, -1);
    i.target = p.Label();
    return i;
  }
  if (parts[0] == "bar") {
    p.Integer();  // barrier id (always 0)
    return Instr::Make(Opcode::kBarSync, Type::kI32, -1);
  }
  if (parts[0] == "nop") return Instr::Make(Opcode::kNop, Type::kI32, -1);

  if (parts[0] == "setp") {
    if (parts.size() != 3) p.Fail("setp needs .cmp.type");
    Instr i;
    i.op = Opcode::kSetp;
    i.cmp = ParseCmp(parts[1], p);
    i.type = ParseType(parts[2], p);
    i.dst = p.Reg();
    p.Expect(',');
    i.a = p.Op();
    p.Expect(',');
    i.b = p.Op();
    return i;
  }
  if (parts[0] == "selp") {
    Instr i;
    i.op = Opcode::kSel;
    i.type = ParseType(parts[1], p);
    i.dst = p.Reg();
    p.Expect(',');
    i.a = p.Op();
    p.Expect(',');
    i.b = p.Op();
    p.Expect(',');
    i.c = Operand::Reg(p.Reg());
    return i;
  }
  if (parts[0] == "cvt") {
    if (parts.size() != 3) p.Fail("cvt needs .dst.src types");
    Instr i;
    i.op = Opcode::kCvt;
    i.type = ParseType(parts[1], p);
    i.type2 = ParseType(parts[2], p);
    i.dst = p.Reg();
    p.Expect(',');
    i.a = p.Op();
    return i;
  }
  if (parts[0] == "ld" || parts[0] == "st") {
    if (parts.size() != 3) p.Fail("ld/st need .space.type");
    Instr i;
    i.op = parts[0] == "ld" ? Opcode::kLd : Opcode::kSt;
    i.space = ParseSpace(parts[1], p);
    i.type = ParseType(parts[2], p);
    if (i.op == Opcode::kLd) {
      i.dst = p.Reg();
      p.Expect(',');
    }
    p.Expect('[');
    i.a = p.Op();
    std::int64_t off = 0;
    if (p.Peek() == '+' || p.Peek() == '-') off = p.Integer();  // %+lld form: "+8" / "-8"
    i.b = Operand::Imm(static_cast<std::uint64_t>(off));
    p.Expect(']');
    if (i.op == Opcode::kSt) {
      p.Expect(',');
      i.c = p.Op();
    }
    return i;
  }
  if (parts[0] == "atom") {
    if (parts.size() != 4) p.Fail("atomics need .op.space.type");
    Instr i;
    if (parts[1] == "add") i.op = Opcode::kAtomAdd;
    else if (parts[1] == "min") i.op = Opcode::kAtomMin;
    else if (parts[1] == "max") i.op = Opcode::kAtomMax;
    else if (parts[1] == "exch") i.op = Opcode::kAtomExch;
    else if (parts[1] == "cas") i.op = Opcode::kAtomCas;
    else p.Fail("unknown atomic ." + parts[1]);
    i.space = ParseSpace(parts[2], p);
    i.type = ParseType(parts[3], p);
    i.dst = p.Reg();
    p.Expect(',');
    p.Expect('[');
    i.a = p.Op();
    p.Expect(']');
    p.Expect(',');
    i.b = p.Op();
    if (i.op == Opcode::kAtomCas) {
      p.Expect(',');
      i.c = p.Op();
    }
    return i;
  }
  if (parts[0] == "tex") {
    Instr i;
    i.op = parts[1] == "2d" ? Opcode::kTex2D : Opcode::kTex1D;
    i.type = Type::kF32;
    i.dst = p.Reg();
    p.Expect(',');
    p.Expect('[');
    std::string tex = p.Token();  // tex<N>
    if (tex.rfind("tex", 0) != 0) p.Fail("expected texN");
    i.target = static_cast<std::int32_t>(std::strtol(tex.c_str() + 3, nullptr, 10));
    p.Expect(',');
    if (i.op == Opcode::kTex2D) {
      p.Expect('{');
      i.a = p.Op();
      p.Expect(',');
      i.b = p.Op();
      p.Expect('}');
    } else {
      i.a = p.Op();
    }
    p.Expect(']');
    return i;
  }
  if (parts[0] == "mov" && parts.size() == 2) {
    // Either "mov.u32 %rD, %tid.x" (sreg) or a plain move.
    Instr i;
    i.type = ParseType(parts[1], p);
    i.dst = p.Reg();
    p.Expect(',');
    if (p.Peek() == '%') {
      // Lookahead: special registers start with %tid/%ctaid/... while plain
      // registers are %rN / %pN.
      std::string t = p.Token();
      auto sr = SregNames().find(t);
      if (sr != SregNames().end()) {
        i.op = Opcode::kSreg;
        i.a = Operand::Imm(static_cast<std::uint64_t>(sr->second));
        return i;
      }
      if (t.size() > 2 && (t[1] == 'r' || t[1] == 'p')) {
        i.op = Opcode::kMov;
        i.a = Operand::Reg(static_cast<std::int32_t>(std::strtol(t.c_str() + 2, nullptr, 10)));
        return i;
      }
      p.Fail("bad mov source " + t);
    }
    i.op = Opcode::kMov;
    i.a = p.Op();
    return i;
  }

  // Generic ALU: op.type dst [, a [, b [, c]]]
  auto alu = AluNames().find(parts[0]);
  if (alu == AluNames().end() || parts.size() != 2) p.Fail("unknown instruction " + head);
  Instr i;
  i.op = alu->second;
  i.type = ParseType(parts[1], p);
  i.dst = p.Reg();
  while (p.Consume(',')) {
    Operand o = p.Op();
    if (i.a.is_none()) i.a = o;
    else if (i.b.is_none()) i.b = o;
    else if (i.c.is_none()) i.c = o;
    else p.Fail("too many operands");
  }
  return i;
}

}  // namespace

std::vector<Instr> Assemble(const std::string& text) {
  std::vector<Instr> out;
  int line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw_line);
    if (line.empty() || StartsWith(line, "//") || StartsWith(line, ".") ||
        StartsWith(line, "{") || StartsWith(line, "}")) {
      continue;  // comments, directives, braces from full listings
    }
    // Strip the "  12:  " pc prefix Disassemble adds.
    std::size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      bool all_digits = colon > 0;
      for (std::size_t k = 0; k < colon; ++k) {
        if (!std::isdigit(static_cast<unsigned char>(line[k]))) {
          all_digits = false;
          break;
        }
      }
      if (all_digits) line = Trim(line.substr(colon + 1));
    }
    if (line.empty()) continue;
    out.push_back(ParseLine(line, line_no));
  }
  return out;
}

}  // namespace kspec::vgpu
