#include "vgpu/exec_pool.hpp"

#include <algorithm>
#include <atomic>

namespace kspec::vgpu {

namespace {
// Upper bound on pool threads; requests beyond it still complete, just with
// fewer helpers. Keeps a pathological workers value from spawning hundreds of
// threads.
constexpr unsigned kMaxThreads = 64;
}  // namespace

struct ExecPool::Job {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> failed{false};
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr err;
};

ExecPool& ExecPool::Instance() {
  static ExecPool pool;
  return pool;
}

ExecPool::~ExecPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

unsigned ExecPool::thread_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<unsigned>(threads_.size());
}

void ExecPool::EnsureThreads(unsigned want) {
  std::lock_guard<std::mutex> lk(mu_);
  want = std::min(want, kMaxThreads);
  while (threads_.size() < want) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void ExecPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || !tickets_.empty(); });
      if (tickets_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(tickets_.front());
      tickets_.pop_front();
    }
    Participate(*job);
  }
}

void ExecPool::Participate(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) return;
    // After a failure the remaining indices are claimed but not run, so the
    // completion count still converges and the caller wakes promptly.
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        (*job.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(job.mu);
        if (!job.err) job.err = std::current_exception();
        job.failed.store(true, std::memory_order_relaxed);
      }
    }
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
      std::lock_guard<std::mutex> lk(job.mu);  // pairs with the caller's wait
      job.done_cv.notify_all();
    }
  }
}

void ExecPool::ParallelFor(unsigned workers, std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const unsigned helpers =
      std::min<unsigned>({workers - 1, kMaxThreads, static_cast<unsigned>(n - 1)});
  EnsureThreads(helpers);

  auto job = std::make_shared<Job>();
  job->n = n;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (unsigned i = 0; i < helpers; ++i) tickets_.push_back(job);
  }
  work_cv_.notify_all();

  Participate(*job);
  {
    std::unique_lock<std::mutex> lk(job->mu);
    job->done_cv.wait(lk, [&] { return job->completed.load(std::memory_order_acquire) == n; });
  }
  if (job->err) std::rethrow_exception(job->err);
}

}  // namespace kspec::vgpu
