#include "vcuda/module_cache.hpp"

#include <algorithm>

#include "kcc/serialize.hpp"
#include "support/log.hpp"
#include "support/status.hpp"

namespace kspec::vcuda {

std::shared_ptr<const kcc::CompiledModule> ModuleCache::Get(std::uint64_t hash,
                                                            const kcc::ModuleCacheKey& key) {
  auto bucket = buckets_.find(hash);
  if (bucket == buckets_.end()) return nullptr;
  bool collided = false;
  for (auto it : bucket->second) {
    if (it->key == key) {
      lru_.splice(lru_.begin(), lru_, it);  // bump to most recently used
      return it->module;
    }
    collided = true;
  }
  if (collided) {
    ++collisions_detected_;
    KSPEC_LOG_WARN << "specialization cache: hash collision detected on "
                   << key.Describe() << " — treating as a miss";
  }
  return nullptr;
}

bool ModuleCache::Contains(std::uint64_t hash, const kcc::ModuleCacheKey& key) const {
  auto bucket = buckets_.find(hash);
  if (bucket == buckets_.end()) return false;
  for (auto it : bucket->second) {
    if (it->key == key) return true;
  }
  return false;
}

std::shared_ptr<const kcc::CompiledModule> ModuleCache::Put(
    std::uint64_t hash, const kcc::ModuleCacheKey& key,
    std::shared_ptr<const kcc::CompiledModule> module) {
  auto& bucket = buckets_[hash];
  for (auto it : bucket) {
    if (it->key == key) return it->module;  // lost a compile race; reuse theirs
  }
  Entry entry;
  entry.hash = hash;
  entry.key = key;
  entry.module = std::move(module);
  entry.bytes = kcc::ApproxModuleBytes(*entry.module);
  bytes_cached_ += entry.bytes;
  lru_.push_front(std::move(entry));
  bucket.push_back(lru_.begin());
  EvictOverBudget();
  return lru_.front().module;
}

void ModuleCache::set_byte_budget(std::size_t bytes) {
  byte_budget_ = bytes;
  EvictOverBudget();
}

void ModuleCache::EvictOverBudget() {
  // Keep at least the most recently used entry so a single over-budget module
  // still caches (evicting it would force a recompile on every load).
  while (bytes_cached_ > byte_budget_ && lru_.size() > 1) {
    auto victim = std::prev(lru_.end());
    auto bucket = buckets_.find(victim->hash);
    KSPEC_CHECK(bucket != buckets_.end());
    auto& entries = bucket->second;
    entries.erase(std::find(entries.begin(), entries.end(), victim));
    if (entries.empty()) buckets_.erase(bucket);
    bytes_cached_ -= victim->bytes;
    ++evictions_;
    KSPEC_LOG_DEBUG << "specialization cache: evicted " << victim->key.Describe() << " ("
                    << victim->bytes << " bytes)";
    lru_.erase(victim);
  }
}

}  // namespace kspec::vcuda
