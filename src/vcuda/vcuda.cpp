#include "vcuda/vcuda.hpp"

#include <filesystem>

#include "kcc/serialize.hpp"
#include "support/log.hpp"
#include "support/serialize.hpp"
#include "support/status.hpp"
#include "support/str.hpp"

namespace kspec::vcuda {

Module::Module(std::shared_ptr<const kcc::CompiledModule> compiled,
               std::shared_ptr<const kcc::ModuleCacheKey> key)
    : compiled_(std::move(compiled)), key_(std::move(key)) {
  const_mem_.assign(compiled_->const_bytes, 0);
  textures_.resize(compiled_->textures.size());
}

void Module::BindTexture(const std::string& name, DevPtr base, int w, int h) {
  for (std::size_t i = 0; i < compiled_->textures.size(); ++i) {
    if (compiled_->textures[i] == name) {
      if (w <= 0 || h <= 0) throw DeviceError("texture dimensions must be positive");
      textures_[i] = {base, w, h};
      return;
    }
  }
  throw DeviceError("module has no __texture named '" + name + "'");
}

const vgpu::CompiledKernel& Module::GetKernel(const std::string& name) const {
  const vgpu::CompiledKernel* k = compiled_->FindKernel(name);
  if (!k) throw DeviceError("module has no kernel named '" + name + "'");
  return *k;
}

bool Module::HasKernel(const std::string& name) const {
  return compiled_->FindKernel(name) != nullptr;
}

std::shared_ptr<const vgpu::DecodedKernel> Module::Decoded(
    const vgpu::CompiledKernel& kernel, const vgpu::DeviceProfile& dev) const {
  // Issue costs are device dependent, so the cache key carries the device
  // name alongside the kernel (one module may serve several contexts).
  const std::string key = dev.name + "/" + kernel.name;
  std::lock_guard<std::mutex> lk(decoded_mutex_);
  auto it = decoded_.find(key);
  if (it != decoded_.end()) return it->second;
  auto dk = vgpu::DecodeKernel(kernel, dev);
  decoded_.emplace(key, dk);
  return dk;
}

void Module::SetConstant(const std::string& name, const void* data, std::size_t bytes) {
  const kcc::ConstantInfo* c = compiled_->FindConstant(name);
  if (!c) throw DeviceError("module has no __constant named '" + name + "'");
  if (bytes > c->bytes) {
    throw DeviceError(Format("constant '%s' holds %u bytes; %zu provided", name.c_str(),
                             c->bytes, bytes));
  }
  std::memcpy(const_mem_.data() + c->offset, data, bytes);
}

ArgPack& ArgPack::Int(std::int32_t v) {
  values_.push_back(vgpu::EncodeI32(v));
  types_.push_back(vgpu::Type::kI32);
  return *this;
}
ArgPack& ArgPack::Uint(std::uint32_t v) {
  values_.push_back(v);
  types_.push_back(vgpu::Type::kU32);
  return *this;
}
ArgPack& ArgPack::Long(std::int64_t v) {
  values_.push_back(static_cast<std::uint64_t>(v));
  types_.push_back(vgpu::Type::kI64);
  return *this;
}
ArgPack& ArgPack::Ulong(std::uint64_t v) {
  values_.push_back(v);
  types_.push_back(vgpu::Type::kU64);
  return *this;
}
ArgPack& ArgPack::Float(float v) {
  values_.push_back(vgpu::EncodeF32(v));
  types_.push_back(vgpu::Type::kF32);
  return *this;
}
ArgPack& ArgPack::Double(double v) {
  values_.push_back(vgpu::EncodeF64(v));
  types_.push_back(vgpu::Type::kF64);
  return *this;
}
ArgPack& ArgPack::Ptr(DevPtr p) {
  values_.push_back(p);
  types_.push_back(vgpu::Type::kU64);
  return *this;
}

Context::Context(vgpu::DeviceProfile profile, std::uint64_t heap_bytes)
    : device_(std::move(profile)), memory_(heap_bytes) {}

void Context::set_cache_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_dir_ = dir;
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      KSPEC_LOG_WARN << "specialization cache: cannot create cache_dir '" << dir
                     << "': " << ec.message() << " — persistence disabled";
      cache_dir_.clear();
    }
  }
}

void Context::set_cache_byte_budget(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.set_byte_budget(bytes);
}

CacheStats Context::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  CacheStats stats = cache_stats_;
  stats.evictions = cache_.evictions();
  stats.collisions_detected = cache_.collisions_detected();
  stats.bytes_cached = cache_.bytes_cached();
  return stats;
}

std::shared_ptr<const kcc::CompiledModule> Context::TryLoadFromDisk(
    const std::string& dir, const kcc::ModuleCacheKey& key) {
  std::string path = dir + "/" + key.FileName();
  std::vector<std::uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes)) return nullptr;  // no artifact: plain miss
  try {
    std::string stored_key;
    auto mod = std::make_shared<const kcc::CompiledModule>(kcc::Deserialize(bytes, &stored_key));
    if (stored_key != key.CanonicalText()) {
      // The artifact's hash-derived file name matched but its full key does
      // not: an on-disk collision. Recompile (and overwrite it) rather than
      // serve the wrong specialization.
      std::lock_guard<std::mutex> lock(cache_mutex_);
      ++cache_stats_.collisions_detected;
      KSPEC_LOG_WARN << "specialization cache: disk artifact " << path
                     << " belongs to a different key (hash collision) — recompiling";
      return nullptr;
    }
    return mod;
  } catch (const SerializeError& e) {
    KSPEC_LOG_WARN << "specialization cache: discarding unreadable artifact " << path << " ("
                   << e.what() << ") — recompiling";
    return nullptr;
  }
}

void Context::StoreToDisk(const std::string& dir, const kcc::ModuleCacheKey& key,
                          const kcc::CompiledModule& mod) {
  std::string path = dir + "/" + key.FileName();
  std::vector<std::uint8_t> bytes = kcc::Serialize(mod, key.CanonicalText());
  if (!WriteFileAtomic(path, bytes)) {
    KSPEC_LOG_WARN << "specialization cache: failed to write " << path
                   << " — continuing without persistence for this module";
  }
}

std::shared_ptr<Module> Context::LoadModule(const std::string& source,
                                            const kcc::CompileOptions& opts) {
  auto key = std::make_shared<const kcc::ModuleCacheKey>(
      kcc::ModuleCacheKey::Make(source, opts, device_.name));
  const std::uint64_t hash = key->Hash();

  std::string dir;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (auto cached = cache_.Get(hash, *key)) {
      ++cache_stats_.hits;
      KSPEC_LOG_DEBUG << "module cache hit (" << key->Describe() << ")";
      return std::make_shared<Module>(std::move(cached), std::move(key));
    }
    dir = cache_dir_;
  }

  // Disk tier (outside the lock: file I/O + deserialization).
  if (!dir.empty()) {
    if (auto from_disk = TryLoadFromDisk(dir, *key)) {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      ++cache_stats_.disk_hits;
      KSPEC_LOG_DEBUG << "module disk cache hit (" << key->Describe() << ")";
      return std::make_shared<Module>(cache_.Put(hash, *key, std::move(from_disk)),
                                      std::move(key));
    }
  }

  // Compile outside the lock so independent specializations build in
  // parallel; a lost race is resolved by Put reusing the winner's module.
  auto compiled = std::make_shared<const kcc::CompiledModule>(kcc::CompileModule(source, opts));
  if (!dir.empty()) StoreToDisk(dir, *key, *compiled);
  KSPEC_LOG_DEBUG << "compiled module (" << key->Describe() << ") in "
                  << compiled->compile_millis << " ms";

  std::lock_guard<std::mutex> lock(cache_mutex_);
  ++cache_stats_.misses;
  cache_stats_.compile_millis_total += compiled->compile_millis;
  return std::make_shared<Module>(cache_.Put(hash, *key, std::move(compiled)), std::move(key));
}

std::shared_ptr<Module> Context::AdoptCompiledModule(
    const kcc::ModuleCacheKey& key, std::shared_ptr<const kcc::CompiledModule> compiled) {
  KSPEC_CHECK(compiled != nullptr);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  ++cache_stats_.adopted;
  return std::make_shared<Module>(cache_.Put(key.Hash(), key, std::move(compiled)),
                                  std::make_shared<const kcc::ModuleCacheKey>(key));
}

bool Context::HasCachedModule(const std::string& source, const kcc::CompileOptions& opts) const {
  kcc::ModuleCacheKey key = kcc::ModuleCacheKey::Make(source, opts, device_.name);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.Contains(key.Hash(), key);
}

SubmitResult Context::LoadModuleAsync(const std::string& source,
                                      const kcc::CompileOptions& opts,
                                      std::chrono::milliseconds deadline) {
  CompileRequest req;
  req.source = source;
  req.opts = opts;
  if (deadline.count() > 0) req.deadline = std::chrono::steady_clock::now() + deadline;
  if (AsyncCompileService* svc = async_service_.load()) {
    return svc->SubmitLoad(*this, req);
  }
  // No service attached: compile inline, but still deliver the result (or the
  // compile error) through the future so callers handle one channel.
  std::promise<std::shared_ptr<Module>> promise;
  SubmitResult result;
  result.status = SubmitStatus::kInline;
  result.future = promise.get_future().share();
  try {
    promise.set_value(LoadModule(source, opts));
  } catch (...) {
    promise.set_exception(std::current_exception());
  }
  return result;
}

TierStats Context::tier_stats() const {
  TierStats s;
  s.launches_interp = tier_interp_.load();
  s.launches_decoded = tier_decoded_.load();
  s.launches_native = tier_native_.load();
  s.launches_native_shape = tier_native_shape_.load();
  s.native_fallbacks = tier_fallbacks_.load();
  return s;
}

vgpu::LaunchStats Context::Launch(const Module& module, const std::string& kernel,
                                  vgpu::Dim3 grid, vgpu::Dim3 block, const ArgPack& args,
                                  unsigned dynamic_smem_bytes, LaunchExecution* exec) {
  const vgpu::CompiledKernel& k = module.GetKernel(kernel);
  if (args.values().size() != k.params.size()) {
    throw DeviceError(Format("kernel %s takes %zu arguments; %zu supplied", kernel.c_str(),
                             k.params.size(), args.values().size()));
  }
  for (std::size_t i = 0; i < k.params.size(); ++i) {
    vgpu::Type want = k.params[i].type;
    vgpu::Type got = args.types()[i];
    bool ok = want == got ||
              // signed/unsigned of the same width are interchangeable slots
              (vgpu::TypeSize(want) == vgpu::TypeSize(got) && vgpu::IsIntType(want) &&
               vgpu::IsIntType(got));
    if (!ok) {
      throw DeviceError(Format("kernel %s argument %zu ('%s') expects %s, got %s",
                               kernel.c_str(), i, k.params[i].name.c_str(),
                               vgpu::TypeName(want), vgpu::TypeName(got)));
    }
  }
  vgpu::LaunchConfig cfg;
  cfg.grid = grid;
  cfg.block = block;
  cfg.dynamic_smem_bytes = dynamic_smem_bytes;
  cfg.args = args.values();
  cfg.textures = module.texture_bindings();
  cfg.exec = exec_policy_;

  // Resolve the execution tier: test override > VGPU_TIER > per-launch
  // request > context policy. kAuto means "decoded now, native when ready".
  const vgpu::ExecutionTier tier = vgpu::ResolveTier(
      exec ? exec->request : vgpu::ExecutionTier::kAuto, tier_policy_);
  NativeExecutionService* native = native_service_.load();
  const bool want_native =
      tier == vgpu::ExecutionTier::kNative ||
      (tier == vgpu::ExecutionTier::kAuto && native != nullptr);

  vgpu::LaunchStats stats;
  vgpu::ExecutionTier served = vgpu::ExecutionTier::kDecoded;
  bool ran = false;
  bool served_shape = false;
  if (want_native && native != nullptr && module.cache_key() != nullptr) {
    NativeLaunchRequest req;
    req.key = module.cache_key().get();
    req.module = module.compiled_ptr();
    req.kernel = &k;
    req.cfg = &cfg;
    req.const_mem = module.const_mem();
    req.require = tier == vgpu::ExecutionTier::kNative;
    req.served_shape = &served_shape;
    if (native->TryLaunch(*this, req, &stats)) {
      served = vgpu::ExecutionTier::kNative;
      ran = true;
    }
  }
  if (!ran) {
    vgpu::Interpreter interp(device_, &memory_);
    if (tier == vgpu::ExecutionTier::kInterp) {
      // Decode-per-launch reference tier.
      stats = interp.Launch(k, cfg, module.const_mem());
      served = vgpu::ExecutionTier::kInterp;
    } else {
      stats = interp.Launch(*module.Decoded(k, device_), cfg, module.const_mem());
      served = vgpu::ExecutionTier::kDecoded;
    }
  }

  const bool fallback =
      tier == vgpu::ExecutionTier::kNative && served != vgpu::ExecutionTier::kNative;
  switch (served) {
    case vgpu::ExecutionTier::kInterp: ++tier_interp_; break;
    case vgpu::ExecutionTier::kNative:
      ++tier_native_;
      if (served_shape) ++tier_native_shape_;
      break;
    default: ++tier_decoded_; break;
  }
  if (fallback) ++tier_fallbacks_;
  if (exec) {
    exec->served = served;
    exec->native_fallback = fallback;
    exec->native_shape = served == vgpu::ExecutionTier::kNative && served_shape;
  }
  total_sim_millis_ += stats.sim_millis;
  return stats;
}

}  // namespace kspec::vcuda
