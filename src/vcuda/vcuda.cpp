#include "vcuda/vcuda.hpp"

#include "support/log.hpp"
#include "support/status.hpp"
#include "support/str.hpp"

namespace kspec::vcuda {

Module::Module(std::shared_ptr<const kcc::CompiledModule> compiled)
    : compiled_(std::move(compiled)) {
  const_mem_.assign(compiled_->const_bytes, 0);
  textures_.resize(compiled_->textures.size());
}

void Module::BindTexture(const std::string& name, DevPtr base, int w, int h) {
  for (std::size_t i = 0; i < compiled_->textures.size(); ++i) {
    if (compiled_->textures[i] == name) {
      if (w <= 0 || h <= 0) throw DeviceError("texture dimensions must be positive");
      textures_[i] = {base, w, h};
      return;
    }
  }
  throw DeviceError("module has no __texture named '" + name + "'");
}

const vgpu::CompiledKernel& Module::GetKernel(const std::string& name) const {
  const vgpu::CompiledKernel* k = compiled_->FindKernel(name);
  if (!k) throw DeviceError("module has no kernel named '" + name + "'");
  return *k;
}

bool Module::HasKernel(const std::string& name) const {
  return compiled_->FindKernel(name) != nullptr;
}

void Module::SetConstant(const std::string& name, const void* data, std::size_t bytes) {
  const kcc::ConstantInfo* c = compiled_->FindConstant(name);
  if (!c) throw DeviceError("module has no __constant named '" + name + "'");
  if (bytes > c->bytes) {
    throw DeviceError(Format("constant '%s' holds %u bytes; %zu provided", name.c_str(),
                             c->bytes, bytes));
  }
  std::memcpy(const_mem_.data() + c->offset, data, bytes);
}

ArgPack& ArgPack::Int(std::int32_t v) {
  values_.push_back(vgpu::EncodeI32(v));
  types_.push_back(vgpu::Type::kI32);
  return *this;
}
ArgPack& ArgPack::Uint(std::uint32_t v) {
  values_.push_back(v);
  types_.push_back(vgpu::Type::kU32);
  return *this;
}
ArgPack& ArgPack::Long(std::int64_t v) {
  values_.push_back(static_cast<std::uint64_t>(v));
  types_.push_back(vgpu::Type::kI64);
  return *this;
}
ArgPack& ArgPack::Ulong(std::uint64_t v) {
  values_.push_back(v);
  types_.push_back(vgpu::Type::kU64);
  return *this;
}
ArgPack& ArgPack::Float(float v) {
  values_.push_back(vgpu::EncodeF32(v));
  types_.push_back(vgpu::Type::kF32);
  return *this;
}
ArgPack& ArgPack::Double(double v) {
  values_.push_back(vgpu::EncodeF64(v));
  types_.push_back(vgpu::Type::kF64);
  return *this;
}
ArgPack& ArgPack::Ptr(DevPtr p) {
  values_.push_back(p);
  types_.push_back(vgpu::Type::kU64);
  return *this;
}

Context::Context(vgpu::DeviceProfile profile, std::uint64_t heap_bytes)
    : device_(std::move(profile)), memory_(heap_bytes) {}

std::shared_ptr<Module> Context::LoadModule(const std::string& source,
                                            const kcc::CompileOptions& opts) {
  std::string key_text = source;
  key_text += '\x1f';
  key_text += kcc::DefinesToString(opts.defines);
  key_text += Format("|unroll=%d|opt=%d%d%d%d|dev=%s", opts.max_unroll, opts.optimize ? 1 : 0,
                     opts.enable_unroll ? 1 : 0, opts.enable_strength_reduction ? 1 : 0,
                     opts.enable_cse ? 1 : 0, device_.name.c_str());
  std::uint64_t key = Fnv1a(key_text);

  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cache_stats_.hits;
    KSPEC_LOG_DEBUG << "module cache hit (" << kcc::DefinesToString(opts.defines) << ")";
    return std::make_shared<Module>(it->second);
  }
  ++cache_stats_.misses;
  auto compiled = std::make_shared<const kcc::CompiledModule>(kcc::CompileModule(source, opts));
  if (!compiled->kernels.empty()) {
    cache_stats_.compile_millis_total += compiled->kernels.front().stats.compile_millis;
  }
  cache_[key] = compiled;
  KSPEC_LOG_DEBUG << "compiled module (" << kcc::DefinesToString(opts.defines) << ") in "
                  << (compiled->kernels.empty() ? 0.0
                                                : compiled->kernels.front().stats.compile_millis)
                  << " ms";
  return std::make_shared<Module>(compiled);
}

vgpu::LaunchStats Context::Launch(const Module& module, const std::string& kernel,
                                  vgpu::Dim3 grid, vgpu::Dim3 block, const ArgPack& args,
                                  unsigned dynamic_smem_bytes) {
  const vgpu::CompiledKernel& k = module.GetKernel(kernel);
  if (args.values().size() != k.params.size()) {
    throw DeviceError(Format("kernel %s takes %zu arguments; %zu supplied", kernel.c_str(),
                             k.params.size(), args.values().size()));
  }
  for (std::size_t i = 0; i < k.params.size(); ++i) {
    vgpu::Type want = k.params[i].type;
    vgpu::Type got = args.types()[i];
    bool ok = want == got ||
              // signed/unsigned of the same width are interchangeable slots
              (vgpu::TypeSize(want) == vgpu::TypeSize(got) && vgpu::IsIntType(want) &&
               vgpu::IsIntType(got));
    if (!ok) {
      throw DeviceError(Format("kernel %s argument %zu ('%s') expects %s, got %s",
                               kernel.c_str(), i, k.params[i].name.c_str(),
                               vgpu::TypeName(want), vgpu::TypeName(got)));
    }
  }
  vgpu::LaunchConfig cfg;
  cfg.grid = grid;
  cfg.block = block;
  cfg.dynamic_smem_bytes = dynamic_smem_bytes;
  cfg.args = args.values();
  cfg.textures = module.texture_bindings();

  vgpu::Interpreter interp(device_, &memory_);
  vgpu::LaunchStats stats = interp.Launch(k, cfg, module.const_mem());
  total_sim_millis_ += stats.sim_millis;
  return stats;
}

}  // namespace kspec::vcuda
