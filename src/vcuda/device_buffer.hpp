// RAII ownership for device allocations.
//
// Every raw Malloc/Free pair in a host driver is a leak on any throwing path
// between the two calls (a mid-pipeline DeviceError used to strand every
// buffer already uploaded). DeviceBuffer ties the allocation's lifetime to a
// C++ scope: move-only, frees on destruction, and `release()` for the rare
// hand-off. TypedBuffer<T> adds element counts and host<->device copies;
// UploadBuffer is the one-line "allocate + copy host data" idiom.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "support/status.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec::vcuda {

class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  // Allocates `bytes` from the context's global memory (zero bytes = empty
  // buffer, no allocation). Throws DeviceError when the heap is exhausted.
  DeviceBuffer(Context& ctx, std::uint64_t bytes) : ctx_(&ctx), bytes_(bytes) {
    if (bytes_ > 0) ptr_ = ctx_->Malloc(bytes_);
  }
  ~DeviceBuffer() { Reset(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      Reset();
      ctx_ = std::exchange(other.ctx_, nullptr);
      ptr_ = std::exchange(other.ptr_, 0);
      bytes_ = std::exchange(other.bytes_, 0);
    }
    return *this;
  }

  DevPtr get() const { return ptr_; }
  std::uint64_t bytes() const { return bytes_; }
  explicit operator bool() const { return ptr_ != 0; }

  // Relinquishes ownership: the caller becomes responsible for Free.
  DevPtr release() {
    ctx_ = nullptr;
    bytes_ = 0;
    return std::exchange(ptr_, 0);
  }

  // Frees the allocation now (also called by the destructor).
  void Reset() {
    if (ptr_ != 0 && ctx_ != nullptr) ctx_->Free(ptr_);
    ctx_ = nullptr;
    ptr_ = 0;
    bytes_ = 0;
  }

 private:
  Context* ctx_ = nullptr;
  DevPtr ptr_ = 0;
  std::uint64_t bytes_ = 0;
};

// A DeviceBuffer that knows its element type and count.
template <typename T>
class TypedBuffer {
 public:
  TypedBuffer() = default;
  TypedBuffer(Context& ctx, std::size_t count)
      : buf_(ctx, count * sizeof(T)), ctx_(&ctx), count_(count) {}

  DevPtr get() const { return buf_.get(); }
  std::size_t count() const { return count_; }
  std::uint64_t bytes() const { return buf_.bytes(); }
  explicit operator bool() const { return static_cast<bool>(buf_); }

  void Upload(std::span<const T> host) {
    KSPEC_CHECK_MSG(host.size() == count_, "upload size mismatches buffer element count");
    if (!host.empty()) ctx_->MemcpyHtoD(buf_.get(), host.data(), host.size_bytes());
  }

  std::vector<T> Download() const {
    std::vector<T> out(count_);
    if (count_ > 0) ctx_->MemcpyDtoH(out.data(), buf_.get(), count_ * sizeof(T));
    return out;
  }

  void Reset() {
    buf_.Reset();
    ctx_ = nullptr;
    count_ = 0;
  }

 private:
  DeviceBuffer buf_;
  Context* ctx_ = nullptr;
  std::size_t count_ = 0;
};

// Allocates a device buffer sized for `host` and copies the data in.
template <typename T>
TypedBuffer<T> UploadBuffer(Context& ctx, std::span<const T> host) {
  TypedBuffer<T> buf(ctx, host.size());
  buf.Upload(host);
  return buf;
}

}  // namespace kspec::vcuda
