// Asynchronous module loading: the seam between the driver layer and the
// specialization service (src/serve/).
//
// Run-time compilation costs ~hundreds of milliseconds (Section 4.3) and must
// stay off the launch path under concurrent traffic, so compiles are handed to
// an AsyncCompileService — in production the bounded worker pool in
// src/serve/compile_executor.hpp — which returns a shared future. vcuda only
// sees this interface; the dependency points serve -> vcuda and the driver
// layer stays free of threading policy.
#pragma once

#include <chrono>
#include <future>
#include <memory>
#include <string>

#include "kcc/compiler.hpp"

namespace kspec::vcuda {

class Context;
class Module;

// Shared so that coalesced requests (N callers awaiting one in-flight
// compile of the same key) all observe the same result.
using ModuleFuture = std::shared_future<std::shared_ptr<Module>>;

enum class SubmitStatus {
  kScheduled,  // a new background flight was created for this key
  kCoalesced,  // joined an already-in-flight compile of the same key
  kRejected,   // bounded queue full: no future, the caller must fall back
  kInline,     // no service attached: compiled synchronously, future ready
};

struct SubmitResult {
  SubmitStatus status = SubmitStatus::kRejected;
  ModuleFuture future;  // invalid iff status == kRejected

  bool ok() const { return future.valid(); }
};

struct CompileRequest {
  std::string source;
  kcc::CompileOptions opts;
  // Accounting identity of the requester: the service's per-tenant counters
  // and the specialization daemon's admission control (quotas, fair dequeue)
  // are keyed by it. Empty = anonymous local caller.
  std::string tenant;
  // Default-constructed = no deadline. A flight still queued when its
  // deadline passes is completed with a null module instead of being
  // compiled; waiters keep serving whatever they fell back to.
  std::chrono::steady_clock::time_point deadline{};

  bool HasDeadline() const {
    return deadline != std::chrono::steady_clock::time_point{};
  }
};

// Implemented by serve::CompileExecutor. Attached to a Context with
// Context::set_async_service; not owned by the Context.
class AsyncCompileService {
 public:
  virtual ~AsyncCompileService() = default;

  // Schedules (or coalesces, or rejects) a compile of `req` against `ctx`'s
  // module cache. Compile failures propagate through the future: get()
  // rethrows the CompileError.
  virtual SubmitResult SubmitLoad(Context& ctx, const CompileRequest& req) = 0;
};

}  // namespace kspec::vcuda
