// vcuda: a CUDA-driver-API-shaped layer over kcc + vgpu.
//
// Mirrors the machinery the dissertation's GPU-PF framework drives
// (Section 4.4): contexts own a device and its memory; modules are compiled
// *at run time* from Kernel-C source plus -D definitions (the kernel
// specialization step); compiled binaries are cached so that re-encountering
// a parameter set loads "with speed similar to loading a dynamically linked
// shared object" (Section 4.3); launches return the simulated execution
// statistics.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "kcc/cache_key.hpp"
#include "kcc/compiler.hpp"
#include "vcuda/async.hpp"
#include "vcuda/module_cache.hpp"
#include "vcuda/native_hook.hpp"
#include "vgpu/device.hpp"
#include "vgpu/interp.hpp"
#include "vgpu/memory.hpp"
#include "vgpu/tier.hpp"

namespace kspec::vcuda {

using vgpu::DevPtr;

class Context;

// A loaded module: immutable compiled code (possibly shared through the
// specialization cache) plus this instance's own constant-memory segment.
class Module {
 public:
  // `key` is the specialization identity the module was compiled/served
  // under; Modules created through Context::LoadModule / AdoptCompiledModule
  // always carry one. A keyless Module (direct construction) still runs on
  // the interp/decoded tiers — only the content-addressed native tier needs
  // the key and degrades to decoded without it.
  explicit Module(std::shared_ptr<const kcc::CompiledModule> compiled,
                  std::shared_ptr<const kcc::ModuleCacheKey> key = nullptr);

  const kcc::CompiledModule& compiled() const { return *compiled_; }
  // Identity of the underlying compiled binary: two Modules served from the
  // same cache entry (or the same tiered promotion) share one pointer.
  const std::shared_ptr<const kcc::CompiledModule>& compiled_ptr() const { return compiled_; }

  // The specialization cache key the module was loaded under, or nullptr for
  // a keyless Module (see the constructor comment).
  const std::shared_ptr<const kcc::ModuleCacheKey>& cache_key() const { return key_; }

  // Returns the kernel or throws DeviceError if absent.
  const vgpu::CompiledKernel& GetKernel(const std::string& name) const;
  bool HasKernel(const std::string& name) const;

  // Copies `bytes` of host data into the constant array `name`.
  void SetConstant(const std::string& name, const void* data, std::size_t bytes);

  // Binds the named __texture to linear device memory holding w x h floats
  // (cudaBindTexture2D-style). Bindings persist until rebound.
  void BindTexture(const std::string& name, DevPtr base, int w, int h = 1);

  std::span<const unsigned char> const_mem() const { return const_mem_; }
  const std::vector<vgpu::TextureBinding>& texture_bindings() const { return textures_; }

  // Returns the kernel pre-decoded for `dev` (handler table + issue costs),
  // decoding at most once per (device, kernel) over the module's lifetime.
  // Thread-safe; Context::Launch goes through this so repeated launches skip
  // the per-launch decode entirely.
  std::shared_ptr<const vgpu::DecodedKernel> Decoded(const vgpu::CompiledKernel& kernel,
                                                     const vgpu::DeviceProfile& dev) const;

 private:
  std::shared_ptr<const kcc::CompiledModule> compiled_;
  std::shared_ptr<const kcc::ModuleCacheKey> key_;
  std::vector<unsigned char> const_mem_;
  std::vector<vgpu::TextureBinding> textures_;
  mutable std::mutex decoded_mutex_;
  mutable std::map<std::string, std::shared_ptr<const vgpu::DecodedKernel>> decoded_;
};

// Typed argument pack checked against the kernel's parameter list at launch.
class ArgPack {
 public:
  ArgPack& Int(std::int32_t v);
  ArgPack& Uint(std::uint32_t v);
  ArgPack& Long(std::int64_t v);
  ArgPack& Ulong(std::uint64_t v);
  ArgPack& Float(float v);
  ArgPack& Double(double v);
  ArgPack& Ptr(DevPtr p);

  const std::vector<std::uint64_t>& values() const { return values_; }
  const std::vector<vgpu::Type>& types() const { return types_; }

 private:
  std::vector<std::uint64_t> values_;
  std::vector<vgpu::Type> types_;
};

// Per-tier launch accounting: which execution tier actually served each
// Launch from this context, and how often a native request degraded.
struct TierStats {
  std::size_t launches_interp = 0;
  std::size_t launches_decoded = 0;
  std::size_t launches_native = 0;
  // Of launches_native, how many were served by a shape-specialized variant
  // rather than the module's generic artifact.
  std::size_t launches_native_shape = 0;
  // Launches where the native tier was requested (forced, or picked by kAuto
  // with a service attached) but the decoded tier had to serve instead.
  std::size_t native_fallbacks = 0;
};

// Optional in/out channel for a single Launch: callers that care which tier
// runs (StageRunner, tests, kccc) pass one; everyone else keeps the old
// signature. `request` feeds the precedence chain in vgpu::ResolveTier.
struct LaunchExecution {
  vgpu::ExecutionTier request = vgpu::ExecutionTier::kAuto;  // in
  vgpu::ExecutionTier served = vgpu::ExecutionTier::kDecoded;  // out
  bool native_fallback = false;  // out: native wanted, decoded served
  bool native_shape = false;     // out: served by a shape-specialized variant
};

struct CacheStats {
  std::size_t hits = 0;        // served from the in-memory cache
  std::size_t misses = 0;      // compiled from source (== compile count)
  std::size_t disk_hits = 0;   // deserialized from cache_dir, no compile
  std::size_t adopted = 0;     // installed pre-compiled (daemon/store fetch)
  std::size_t evictions = 0;   // entries dropped by the LRU byte budget
  std::size_t collisions_detected = 0;  // hash matches with unequal full keys
  std::size_t bytes_cached = 0;         // approximate in-memory footprint
  double compile_millis_total = 0;
};

class Context {
 public:
  explicit Context(vgpu::DeviceProfile profile,
                   std::uint64_t heap_bytes = 1ull << 30);

  const vgpu::DeviceProfile& device() const { return device_; }
  vgpu::GlobalMemory& memory() { return memory_; }

  // -------- memory --------
  DevPtr Malloc(std::uint64_t bytes) { return memory_.Alloc(bytes); }
  void Free(DevPtr p) { memory_.Free(p); }
  void MemcpyHtoD(DevPtr dst, const void* src, std::uint64_t bytes) {
    memory_.Write(dst, src, bytes);
  }
  void MemcpyDtoH(void* dst, DevPtr src, std::uint64_t bytes) const {
    memory_.Read(dst, src, bytes);
  }
  void Memset(DevPtr dst, unsigned char v, std::uint64_t bytes) {
    memory_.Memset(dst, v, bytes);
  }

  // -------- modules --------
  // Compiles (or retrieves from the specialization cache) a module. The cache
  // key covers the source text, every -D definition, every compile option,
  // and the device name; lookups verify the full key, not just its hash.
  // Thread-safe: concurrent LoadModule calls are allowed, and compilation
  // runs outside the cache lock.
  std::shared_ptr<Module> LoadModule(const std::string& source,
                                     const kcc::CompileOptions& opts = {});

  // Installs an externally obtained compiled binary (a daemon response or a
  // shared-store artifact) into the in-memory cache under `key`, as if it had
  // been compiled here — subsequent LoadModule calls for the same key are
  // cache hits. The caller is responsible for having verified the artifact
  // against the key (the netd deserialization path does). Counts in
  // CacheStats::adopted, never in misses: no compile ran in this process.
  std::shared_ptr<Module> AdoptCompiledModule(
      const kcc::ModuleCacheKey& key,
      std::shared_ptr<const kcc::CompiledModule> compiled);

  // Shard-visible cache residency probe: true when the specialization for
  // (source, opts, this device) is resident in the in-memory tier right now.
  // No compile, no disk probe, no LRU bump — safe and cheap to call from a
  // scheduler's routing loop against every shard. A true answer means a
  // LoadModule for the same key will be a ~microseconds cache hit.
  bool HasCachedModule(const std::string& source,
                       const kcc::CompileOptions& opts = {}) const;

  // Attaches (or detaches, with nullptr) the background compile service used
  // by LoadModuleAsync and by TieredLoader's non-blocking promotion. The
  // service is not owned and must outlive every Context it is attached to.
  void set_async_service(AsyncCompileService* svc) { async_service_.store(svc); }
  AsyncCompileService* async_service() const { return async_service_.load(); }

  // Non-blocking load: schedules compilation through the attached service and
  // returns a shared future immediately (status kScheduled, or kCoalesced if
  // an equal request is already in flight), or kRejected when the service's
  // bounded queue is full. Without a service the module is compiled inline
  // and the returned future is already ready (status kInline). Compile
  // failures surface through the future on every path. `deadline` (zero =
  // none) bounds how long the request may wait for a worker; an expired
  // flight resolves to a null module.
  SubmitResult LoadModuleAsync(const std::string& source,
                               const kcc::CompileOptions& opts = {},
                               std::chrono::milliseconds deadline = {});

  // Enables the persistent cache tier: compiled specializations are written
  // to `dir` (created if absent) and later Contexts — including ones in other
  // processes — load them from disk instead of recompiling. Corrupt, stale,
  // or version-mismatched artifacts are recompiled with a warning, never
  // fatal. Empty string disables persistence.
  void set_cache_dir(const std::string& dir);
  const std::string& cache_dir() const { return cache_dir_; }

  // Byte budget for the in-memory tier (LRU eviction beyond it).
  void set_cache_byte_budget(std::size_t bytes);

  CacheStats cache_stats() const;

  // -------- execution --------
  // Launches and runs to completion; returns simulated statistics (including
  // sim_millis from the cost model). Argument types are validated. The
  // execution tier resolves as test override > VGPU_TIER > exec->request >
  // tier_policy(); all tiers produce bit-identical LaunchStats. When `exec`
  // is non-null its out fields report which tier actually served.
  vgpu::LaunchStats Launch(const Module& module, const std::string& kernel, vgpu::Dim3 grid,
                           vgpu::Dim3 block, const ArgPack& args,
                           unsigned dynamic_smem_bytes = 0, LaunchExecution* exec = nullptr);

  // Attaches (or detaches, with nullptr) the native execution tier. The
  // service is not owned and must outlive every Context it is attached to.
  // Without one, native-tier requests degrade to the decoded tier (counted
  // in TierStats::native_fallbacks).
  void set_native_service(NativeExecutionService* svc) { native_service_.store(svc); }
  NativeExecutionService* native_service() const { return native_service_.load(); }

  // Default execution tier for launches from this context (still subject to
  // the VGPU_TIER environment override, the test override, and per-launch
  // LaunchExecution::request).
  void set_tier_policy(vgpu::ExecutionTier tier) { tier_policy_ = tier; }
  vgpu::ExecutionTier tier_policy() const { return tier_policy_; }

  TierStats tier_stats() const;

  // Total simulated GPU milliseconds accumulated across launches (the
  // "GPU time" the benchmark tables report).
  double total_sim_millis() const { return total_sim_millis_; }
  void reset_sim_clock() { total_sim_millis_ = 0; }

  // Execution policy applied to every launch from this context (still subject
  // to the VGPU_WORKERS environment override and the test override).
  void set_exec_policy(vgpu::ExecPolicy policy) { exec_policy_ = policy; }
  vgpu::ExecPolicy exec_policy() const { return exec_policy_; }

 private:
  // Returns the module for `key` from the disk tier, or nullptr if absent,
  // corrupt, version-mismatched, or keyed differently (hash collision).
  std::shared_ptr<const kcc::CompiledModule> TryLoadFromDisk(const std::string& dir,
                                                             const kcc::ModuleCacheKey& key);
  void StoreToDisk(const std::string& dir, const kcc::ModuleCacheKey& key,
                   const kcc::CompiledModule& mod);

  vgpu::DeviceProfile device_;
  vgpu::GlobalMemory memory_;
  mutable std::mutex cache_mutex_;  // guards cache_, cache_stats_
  ModuleCache cache_;
  CacheStats cache_stats_;
  std::string cache_dir_;
  std::atomic<AsyncCompileService*> async_service_{nullptr};
  std::atomic<NativeExecutionService*> native_service_{nullptr};
  vgpu::ExecutionTier tier_policy_ = vgpu::ExecutionTier::kAuto;
  std::atomic<std::size_t> tier_interp_{0};
  std::atomic<std::size_t> tier_decoded_{0};
  std::atomic<std::size_t> tier_native_{0};
  std::atomic<std::size_t> tier_native_shape_{0};
  std::atomic<std::size_t> tier_fallbacks_{0};
  double total_sim_millis_ = 0;
  vgpu::ExecPolicy exec_policy_;
};

// Convenience: uploads a host vector and returns the device pointer.
template <typename T>
DevPtr Upload(Context& ctx, std::span<const T> host) {
  DevPtr p = ctx.Malloc(host.size_bytes());
  ctx.MemcpyHtoD(p, host.data(), host.size_bytes());
  return p;
}

template <typename T>
std::vector<T> Download(Context& ctx, DevPtr p, std::size_t count) {
  std::vector<T> out(count);
  ctx.MemcpyDtoH(out.data(), p, count * sizeof(T));
  return out;
}

}  // namespace kspec::vcuda
