#include "vcuda/tiered.hpp"

namespace kspec::vcuda {

std::shared_ptr<Module> TieredLoader::Get(const kcc::CompileOptions& specialized_opts) {
  std::string key = Key(specialized_opts);
  int& heat = heat_[key];
  ++heat;
  if (heat < hot_threshold_) {
    ++stats_.re_served;
    if (!re_module_) {
      re_module_ = ctx_->LoadModule(source_, {});  // one RE build for all sets
    }
    return re_module_;
  }
  if (heat == hot_threshold_) ++stats_.specializations;
  ++stats_.sk_served;
  // The context's cache makes repeated loads of the same specialization
  // cheap; this call compiles only on the promotion request.
  return ctx_->LoadModule(source_, specialized_opts);
}

bool TieredLoader::IsSpecialized(const kcc::CompileOptions& specialized_opts) const {
  auto it = heat_.find(Key(specialized_opts));
  return it != heat_.end() && it->second >= hot_threshold_;
}

}  // namespace kspec::vcuda
