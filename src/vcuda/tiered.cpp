#include "vcuda/tiered.hpp"

#include <chrono>

#include "support/log.hpp"

namespace kspec::vcuda {

namespace {

bool Ready(const ModuleFuture& f) {
  return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
}

}  // namespace

std::shared_ptr<Module> TieredLoader::ReModule() {
  // One RE build for all sets. call_once (not mu_) guards the compile:
  // concurrent first users all wait here, but threads that don't need the RE
  // build never queue behind a cold compile.
  std::call_once(re_once_, [&] {
    if (re_compile_hook_) re_compile_hook_();
    re_module_ = ctx_->LoadModule(source_, {});
  });
  return re_module_;
}

std::shared_ptr<Module> TieredLoader::Get(const kcc::CompileOptions& specialized_opts) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::string key = KeyFor(specialized_opts);
  SetState& s = state_[key];
  ++s.heat;

  if (s.specialized) {
    ++stats_.sk_served;
    return s.specialized;
  }

  // A background promotion is in flight: swap it in if it finished, keep
  // serving the RE build if not.
  if (s.pending.valid()) {
    if (!Ready(s.pending)) {
      ++stats_.re_served;
      ++stats_.re_served_while_compiling;
      lock.unlock();  // a cold RE build must not run under mu_
      return ReModule();
    }
    ModuleFuture done = std::move(s.pending);
    s.pending = {};
    --stats_.promotions_pending;
    try {
      if (std::shared_ptr<Module> mod = done.get()) {
        s.specialized = std::move(mod);
        ++stats_.specializations;
        ++stats_.sk_served;
        return s.specialized;
      }
      // Null module: the flight's deadline expired before a worker picked it
      // up. Fall through — heat is already past the threshold, so the
      // promotion is rescheduled below.
    } catch (const std::exception& e) {
      s.failed = true;
      ++stats_.failed_promotions;
      KSPEC_LOG_WARN << "tiered: background specialization failed (" << e.what()
                     << ") — continuing to serve the RE build";
    }
  }

  if (s.heat >= hot_threshold_ && !s.failed) {
    if (AsyncCompileService* svc = ctx_->async_service()) {
      // Non-blocking promotion: schedule the specialized build and answer
      // this request with the RE build. (Workers never take mu_, so calling
      // into the service under the lock cannot deadlock.)
      CompileRequest req;
      req.source = source_;
      req.opts = specialized_opts;
      if (promotion_deadline_.count() > 0) {
        req.deadline = std::chrono::steady_clock::now() + promotion_deadline_;
      }
      SubmitResult r = svc->SubmitLoad(*ctx_, req);
      if (r.ok()) {
        s.pending = r.future;
        ++stats_.background_compiles;
        ++stats_.promotions_pending;
        ++stats_.re_served_while_compiling;
      }
      // Rejected (service backpressure): serve RE now; the next Get retries.
      ++stats_.re_served;
      lock.unlock();
      return ReModule();
    }

    // Blocking fallback (no service attached) — the original inline
    // promotion. Compile outside the lock: LoadModule is thread-safe and
    // other parameter sets should not stall behind this one's compile. The
    // compile itself is guarded by a per-key single-flight latch (the
    // re_once_ idiom, per parameter set): M threads crossing the hot
    // threshold together run exactly one compile, the other M-1 wait on the
    // same latch and share its module instead of burning M-1 discarded
    // builds.
    if (!s.blocking) s.blocking = std::make_shared<BlockingFlight>();
    std::shared_ptr<BlockingFlight> flight = s.blocking;
    lock.unlock();
    std::call_once(flight->once, [&] {
      try {
        flight->module = ctx_->LoadModule(source_, specialized_opts);
      } catch (...) {
        flight->error = std::current_exception();
      }
    });
    lock.lock();
    SetState& again = state_[key];
    if (again.blocking == flight) again.blocking.reset();  // latch resolved
    if (flight->error) {
      // Propagate like the original inline promotion did; heat stays above
      // the threshold, so a later Get may retry with a fresh latch.
      std::rethrow_exception(flight->error);
    }
    if (!again.specialized) {
      again.specialized = flight->module;
      ++stats_.specializations;
    }
    ++stats_.sk_served;
    return again.specialized;
  }

  ++stats_.re_served;
  lock.unlock();
  return ReModule();
}

bool TieredLoader::IsSpecialized(const kcc::CompileOptions& specialized_opts) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = state_.find(KeyFor(specialized_opts));
  if (it == state_.end()) return false;
  const SetState& s = it->second;
  if (s.specialized) return true;
  // A finished background promotion counts even though only Get swaps it in:
  // a caller that polls after CompileExecutor::Drain() must observe
  // completion without having to issue another Get first. Peek the ready
  // future; a failed or expired (null) flight is still "not specialized".
  if (s.pending.valid() && Ready(s.pending)) {
    try {
      return s.pending.get() != nullptr;
    } catch (...) {
      return false;
    }
  }
  return false;
}

TieredLoader::Stats TieredLoader::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace kspec::vcuda
