// The native execution tier's seam into the driver layer.
//
// The native backend (src/native/) compiles specialized modules into host
// shared objects — too heavy a dependency (toolchain discovery, subprocesses,
// dlopen) for the driver layer to own. Mirroring the AsyncCompileService
// pattern in async.hpp, vcuda only sees this interface: the dependency points
// native -> vcuda, and Context::Launch consults the attached service when the
// resolved ExecutionTier asks for (or allows) native execution.
#pragma once

#include <memory>
#include <span>

#include "kcc/cache_key.hpp"
#include "kcc/compiler.hpp"
#include "vgpu/launch.hpp"

namespace kspec::vcuda {

class Context;

// One launch the driver would like served on the native tier. The key is the
// module's specialization identity (the same ModuleCacheKey that names its
// .kmod artifact); the native tier content-addresses its shared objects by
// it. All pointers are borrowed for the duration of the call.
struct NativeLaunchRequest {
  const kcc::ModuleCacheKey* key = nullptr;
  std::shared_ptr<const kcc::CompiledModule> module;
  const vgpu::CompiledKernel* kernel = nullptr;
  const vgpu::LaunchConfig* cfg = nullptr;
  std::span<const unsigned char> const_mem;
  // true (forced native tier): build the artifact inline if it is not ready
  // yet. false (kAuto promotion): serve only an already-loaded artifact and
  // at most kick off a background build — never block the launch.
  bool require = false;
  // Out-channel (borrowed, optional): set to true when the launch was served
  // by a shape-specialized variant rather than the generic artifact.
  bool* served_shape = nullptr;
};

// Implemented by native::NativeEngine. Attached to a Context with
// Context::set_native_service; not owned by the Context and must outlive
// every Context it is attached to.
class NativeExecutionService {
 public:
  virtual ~NativeExecutionService() = default;

  // Runs the launch on the native tier if an artifact is (or, with
  // require=true, can be made) available. Returns true with *out filled on
  // success; false means the caller should run the decoded tier. Tier
  // availability problems (no host toolchain, corrupt artifact, failed
  // build) are never exceptions — they are `false`, i.e. "degrade to
  // decoded". Exceptions out of this call are the kernel's own faults
  // (DeviceError and friends), which the decoded tier would raise too.
  virtual bool TryLaunch(Context& ctx, const NativeLaunchRequest& req,
                         vgpu::LaunchStats* out) = 0;
};

}  // namespace kspec::vcuda
