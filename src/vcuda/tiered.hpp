// Tiered (lazy) specialization — the dissertation's future-work direction of
// deciding *when* specialization pays (Sections 4.3 / 7.2.3).
//
// Run-time compilation has a cost; for a kernel launched once on a given
// parameter set, the adaptable run-time-evaluated binary may win overall.
// TieredLoader implements the classic JIT tiering policy: the first
// `hot_threshold` requests for a parameter set are served by the RE build
// (compiled once, shared by every parameter set); once a set proves hot, the
// specialized build is compiled and served from then on. The break-even
// arithmetic is exactly Section 4.3's: compile overhead is amortized when
//   launches * (re_time - sk_time) > compile_time.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "kcc/cache_key.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec::vcuda {

class TieredLoader {
 public:
  // `source` must compile in a fully run-time-evaluated configuration when
  // no defines are provided (the Appendix B single-source pattern).
  TieredLoader(Context* ctx, std::string source, int hot_threshold = 3)
      : ctx_(ctx), source_(std::move(source)), hot_threshold_(hot_threshold) {}

  // Returns the module to use for this parameter set: the shared RE build
  // while the set is cold, the specialized build once it is hot.
  std::shared_ptr<Module> Get(const kcc::CompileOptions& specialized_opts);

  // True if the given parameter set is currently served specialized.
  bool IsSpecialized(const kcc::CompileOptions& specialized_opts) const;

  struct Stats {
    std::uint64_t re_served = 0;
    std::uint64_t sk_served = 0;
    std::uint64_t specializations = 0;  // parameter sets promoted
  };
  const Stats& stats() const { return stats_; }

 private:
  // Heat is tracked per full parameter set. The key must cover every
  // CompileOptions field, not just the defines: two option sets with equal
  // defines but different max_unroll/pass flags compile to different
  // binaries, so they must heat up — and report IsSpecialized — separately.
  std::string Key(const kcc::CompileOptions& opts) const {
    return kcc::ModuleCacheKey::Make(source_, opts, ctx_->device().name).CanonicalText();
  }

  Context* ctx_;
  std::string source_;
  int hot_threshold_;
  std::shared_ptr<Module> re_module_;
  std::map<std::string, int> heat_;
  Stats stats_;
};

}  // namespace kspec::vcuda
