// Tiered (lazy) specialization — the dissertation's future-work direction of
// deciding *when* specialization pays (Sections 4.3 / 7.2.3).
//
// Run-time compilation has a cost; for a kernel launched once on a given
// parameter set, the adaptable run-time-evaluated binary may win overall.
// TieredLoader implements the classic JIT tiering policy: the first
// `hot_threshold` requests for a parameter set are served by the RE build
// (compiled once, shared by every parameter set); once a set proves hot, the
// specialized build is compiled and served from then on. The break-even
// arithmetic is exactly Section 4.3's: compile overhead is amortized when
//   launches * (re_time - sk_time) > compile_time.
//
// Promotion is *non-blocking* when the Context has an AsyncCompileService
// attached (Context::set_async_service): the hot request schedules the
// specialized build on the service and keeps being served the RE build while
// it compiles in the background, then the specialized module is swapped in
// atomically — the launch that triggers promotion never stalls for the
// ~hundreds-of-ms compile. Without a service the loader falls back to the
// original blocking promotion. All entry points are thread-safe.
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "kcc/cache_key.hpp"
#include "vcuda/async.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec::vcuda {

class TieredLoader {
 public:
  // `source` must compile in a fully run-time-evaluated configuration when
  // no defines are provided (the Appendix B single-source pattern).
  TieredLoader(Context* ctx, std::string source, int hot_threshold = 3)
      : ctx_(ctx), source_(std::move(source)), hot_threshold_(hot_threshold) {}

  // Returns the module to use for this parameter set: the shared RE build
  // while the set is cold (or while its specialized build is still compiling
  // in the background), the specialized build once it is ready.
  std::shared_ptr<Module> Get(const kcc::CompileOptions& specialized_opts);

  // True if the given parameter set is currently served specialized (i.e. its
  // specialized build finished and was swapped in).
  bool IsSpecialized(const kcc::CompileOptions& specialized_opts) const;

  // Bounds how long a scheduled promotion may sit in the service's queue; an
  // expired promotion resolves to the RE build and is rescheduled by the next
  // hot request. Zero (the default) = no deadline.
  void set_promotion_deadline(std::chrono::milliseconds d) {
    std::lock_guard<std::mutex> lock(mu_);
    promotion_deadline_ = d;
  }

  // Adjusts the promotion threshold at run time (e.g. threshold 1 promotes
  // every set on first use; a large value pins everything to the RE build).
  void set_hot_threshold(int t) {
    std::lock_guard<std::mutex> lock(mu_);
    hot_threshold_ = t;
  }

  // Test-only: runs at the start of the one-time RE compile, outside mu_.
  // Lets tests hold the RE build open and prove that concurrent Gets for
  // already-specialized sets are not serialized behind it. Must be set
  // before the loader is used concurrently.
  void set_test_compile_hook(std::function<void()> hook) {
    re_compile_hook_ = std::move(hook);
  }

  struct Stats {
    std::uint64_t re_served = 0;
    std::uint64_t sk_served = 0;
    std::uint64_t specializations = 0;  // parameter sets promoted
    // Non-blocking promotion accounting:
    std::uint64_t background_compiles = 0;        // promotions scheduled async
    std::uint64_t promotions_pending = 0;         // gauge: scheduled, not yet swapped
    std::uint64_t re_served_while_compiling = 0;  // hot Gets answered RE meanwhile
    std::uint64_t failed_promotions = 0;          // background compiles that threw
  };
  Stats stats() const;

 private:
  // One in-flight *blocking* promotion (the no-service path): the first
  // hot thread compiles inside the once_flag, concurrent hot threads for the
  // same key wait on it and share the module — never duplicate the compile.
  struct BlockingFlight {
    std::once_flag once;
    std::shared_ptr<Module> module;
    std::exception_ptr error;
  };

  // Per-parameter-set promotion state. `specialized` is written exactly once,
  // under mu_ — readers either see the RE build or the complete specialized
  // module, never a torn promotion.
  struct SetState {
    int heat = 0;
    bool failed = false;                  // background compile threw; stay on RE
    std::shared_ptr<Module> specialized;  // serve this once set
    ModuleFuture pending;                 // valid while a background compile runs
    std::shared_ptr<BlockingFlight> blocking;  // in-flight blocking promotion
  };

  // Heat is tracked per full parameter set. The key must cover every
  // CompileOptions field, not just the defines: two option sets with equal
  // defines but different max_unroll/pass flags compile to different
  // binaries, so they must heat up — and report IsSpecialized — separately.
  std::string KeyFor(const kcc::CompileOptions& opts) const {
    return kcc::ModuleCacheKey::Make(source_, opts, ctx_->device().name).CanonicalText();
  }

  // Serves the shared RE build, compiling it on first use. Must be called
  // WITHOUT mu_ held: the compile is guarded by re_once_ instead, so a cold
  // RE build (a real kcc compile, potentially hundreds of ms) never blocks
  // unrelated Gets that only need mu_ for their own bookkeeping. After the
  // call_once completes, re_module_ is immutable and safe to read lock-free.
  std::shared_ptr<Module> ReModule();

  Context* ctx_;
  std::string source_;
  std::function<void()> re_compile_hook_;  // test-only; set before concurrency

  mutable std::mutex mu_;  // guards everything below except re_module_
  int hot_threshold_;
  std::chrono::milliseconds promotion_deadline_{0};
  std::map<std::string, SetState> state_;
  Stats stats_;

  // The shared RE build: written exactly once inside re_once_, read only
  // after call_once returns (which synchronizes), so it needs no mutex and
  // its compile happens outside mu_.
  std::once_flag re_once_;
  std::shared_ptr<Module> re_module_;
};

}  // namespace kspec::vcuda
