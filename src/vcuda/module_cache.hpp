// In-memory tier of the specialization cache: collision-safe, LRU-bounded.
//
// Entries are bucketed by the key's 64-bit hash, but a lookup only returns a
// module whose *full* ModuleCacheKey matches — an FNV-1a collision is detected
// (counted in collisions_detected) and reported as a miss instead of silently
// serving the wrong specialized binary. Eviction is least-recently-used
// against a configurable byte budget so long-running many-parameter-set
// processes (the GPU-PF streaming case) don't grow without bound.
//
// ModuleCache is not internally synchronized; Context guards it with its
// cache mutex.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kcc/cache_key.hpp"

namespace kspec::vcuda {

class ModuleCache {
 public:
  static constexpr std::size_t kDefaultByteBudget = 256ull << 20;  // 256 MiB

  explicit ModuleCache(std::size_t byte_budget = kDefaultByteBudget)
      : byte_budget_(byte_budget) {}

  // Returns the cached module for `key` (bumping it to most-recently-used),
  // or nullptr on miss. `hash` must be key.Hash() in production; tests pass
  // forged hashes to exercise collision handling.
  std::shared_ptr<const kcc::CompiledModule> Get(std::uint64_t hash,
                                                 const kcc::ModuleCacheKey& key);

  // True when an entry with this exact key is resident, WITHOUT bumping its
  // LRU recency — a scheduler's affinity probe must be able to ask "is this
  // specialization here?" across every shard without distorting the eviction
  // order of the shards it does not pick.
  bool Contains(std::uint64_t hash, const kcc::ModuleCacheKey& key) const;

  // Inserts `module` under `key`, evicting LRU entries beyond the byte
  // budget. If an entry with an equal key already exists (a concurrent
  // compile raced us), the existing module is kept and returned; otherwise
  // returns `module`.
  std::shared_ptr<const kcc::CompiledModule> Put(
      std::uint64_t hash, const kcc::ModuleCacheKey& key,
      std::shared_ptr<const kcc::CompiledModule> module);

  // Shrinks the budget (evicting immediately if over) or grows it.
  void set_byte_budget(std::size_t bytes);
  std::size_t byte_budget() const { return byte_budget_; }

  std::size_t entry_count() const { return lru_.size(); }
  std::size_t bytes_cached() const { return bytes_cached_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t collisions_detected() const { return collisions_detected_; }

 private:
  struct Entry {
    std::uint64_t hash = 0;
    kcc::ModuleCacheKey key;
    std::shared_ptr<const kcc::CompiledModule> module;
    std::size_t bytes = 0;
  };
  using LruList = std::list<Entry>;  // front = most recently used

  void EvictOverBudget();

  std::size_t byte_budget_;
  std::size_t bytes_cached_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t collisions_detected_ = 0;
  LruList lru_;
  // Hash buckets; a bucket holds >1 entry only under an FNV-1a collision.
  std::unordered_map<std::uint64_t, std::vector<LruList::iterator>> buckets_;
};

}  // namespace kspec::vcuda
