// SpecBuilder: the one place -D define sets are built and stringified.
//
// Every app driver used to hand-roll `opts.defines["..."] = std::to_string(...)`
// and gpupf kept its own stringification rules; SpecBuilder replaces both with
// a fluent builder:
//
//   launch::SpecBuilder spec(cfg.specialize, &MatcherParams());
//   spec.Flag("CT_SHIFT").Value("K_SHIFT_W", p.shift_w)
//       .Value("K_N_SHIFTS", p.n_shifts());
//   auto mod = ctx.LoadModule(source, spec.Build());
//
// The builder validates against a per-app declared ParamTable (the Table 4.1
// analogue: the specialization parameters an application exposes), rejects
// duplicate defines, and — when constructed in run-time-evaluated mode —
// records the set for validation but emits an *empty* define set, so the RE
// build of the single adaptable source (Appendix B) falls out of the same
// call sites. Stringification matches the GPU-PF rules exactly: integers via
// %lld/%llu, booleans as 1/0, floats as %.9g with an 'f' suffix, pointers as
// hex literals.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <type_traits>

#include "kcc/compiler.hpp"
#include "support/status.hpp"

namespace kspec::launch {

// Misuse of the specialization-parameter API (duplicate define, undeclared
// macro, kind mismatch against the ParamTable).
class SpecError : public Error {
 public:
  explicit SpecError(const std::string& what) : Error("spec error: " + what) {}
};

// An application's declared specialization parameters: which macros exist and
// whether each is a flag (CT_*, present/absent) or carries a value (K_*).
class ParamTable {
 public:
  explicit ParamTable(std::string app = {}) : app_(std::move(app)) {}

  ParamTable& Flag(std::string macro, std::string doc = {});
  ParamTable& Value(std::string macro, std::string doc = {});

  bool Knows(const std::string& macro) const { return entries_.count(macro) != 0; }
  bool IsFlag(const std::string& macro) const;
  const std::string& app() const { return app_; }

  // Human-readable parameter listing (macro, kind, doc) for docs and demos.
  std::string Describe() const;

 private:
  struct Entry {
    bool is_flag = false;
    std::string doc;
  };
  std::string app_;
  std::map<std::string, Entry> entries_;
};

class SpecBuilder {
 public:
  // `specialize` false = RE mode: calls are validated and recorded but Build()
  // produces no defines. `table`, when given, validates every macro.
  explicit SpecBuilder(bool specialize = true, const ParamTable* table = nullptr)
      : specialize_(specialize), table_(table) {}

  // Defines `macro` to 1 (a CT_* capability flag).
  SpecBuilder& Flag(const std::string& macro);

  // Defines `macro` to a stringified value (a K_* parameter).
  template <typename T, typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  SpecBuilder& Value(const std::string& macro, T v) {
    if constexpr (std::is_same_v<T, bool>) {
      return Set(macro, StringifyBool(v), /*is_flag=*/false);
    } else if constexpr (std::is_floating_point_v<T>) {
      return Set(macro, Stringify(static_cast<double>(v)), false);
    } else if constexpr (std::is_signed_v<T>) {
      return Set(macro, Stringify(static_cast<long long>(v)), false);
    } else {
      return Set(macro, Stringify(static_cast<unsigned long long>(v)), false);
    }
  }
  // Verbatim textual value (e.g. SRC_T=float — the -D type substitution).
  SpecBuilder& Value(const std::string& macro, const std::string& text) {
    return Set(macro, text, /*is_flag=*/false);
  }
  SpecBuilder& Value(const std::string& macro, const char* text) {
    return Set(macro, std::string(text), /*is_flag=*/false);
  }

  // Defines `macro` to a device address as a hex literal.
  SpecBuilder& Pointer(const std::string& macro, std::uint64_t address) {
    return Set(macro, StringifyPointer(address), /*is_flag=*/false);
  }

  // Documents that a later stage deliberately reads a macro an earlier call
  // already defined (e.g. the summation kernel reusing CT_SHIFT's K_N_SHIFTS).
  // Throws if the macro is NOT already defined — the reuse must be real.
  SpecBuilder& Reuse(const std::string& macro);

  bool specializing() const { return specialize_; }
  const std::map<std::string, std::string>& defines() const { return defines_; }

  // Compile options carrying the accumulated defines. Non-define fields come
  // from `base` so callers can combine specialization with optimizer
  // settings (ablations, unroll budgets).
  kcc::CompileOptions Build(kcc::CompileOptions base = {}) const;

  // The canonical stringifications (shared with gpupf — exactly one
  // implementation of define formatting exists).
  static std::string Stringify(long long v);
  static std::string Stringify(unsigned long long v);
  static std::string Stringify(double v);  // %.9g + 'f' suffix
  static std::string StringifyBool(bool v);
  static std::string StringifyPointer(std::uint64_t address);  // 0x%llx

 private:
  SpecBuilder& Set(const std::string& macro, std::string value, bool is_flag);

  bool specialize_;
  const ParamTable* table_;
  std::set<std::string> seen_;  // duplicates rejected even in RE mode
  std::map<std::string, std::string> defines_;
};

}  // namespace kspec::launch
