// StageRunner: one call site for module load + launch + accounting.
//
// The app drivers each repeated the same four chores per pipeline stage:
// build defines, LoadModule, Launch, then copy sim_millis / reg_count /
// transfer costs into an app-specific stats struct. StageRunner owns all of
// it behind a load *policy*:
//
//   kInline        — Context::LoadModule (blocking compile + two-tier cache),
//                    the exact pre-refactor behavior;
//   kTiered        — TieredLoader per source: the run-time-evaluated build
//                    serves cold parameter sets, specialization happens at
//                    the hot threshold (blocking, or in the background when
//                    the Context has an AsyncCompileService attached);
//   kAsyncPromote  — kTiered, but requires the async service so promotion is
//                    guaranteed non-blocking (the PR 2-3 serving stack).
//
// Per-stage records accumulate into a LaunchBreakdown (compile / transfer /
// sim millis plus per-stage reg counts) that every app's result struct now
// carries; transfers charged through Upload/Download/Account* use the shared
// TransferModel. TakeBreakdown() hands the accumulated numbers over and
// clears them, so one long-lived runner (with its tiered heat state intact)
// yields a fresh breakdown per app call.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "launch/spec_builder.hpp"
#include "launch/transfer_model.hpp"
#include "vcuda/device_buffer.hpp"
#include "vcuda/tiered.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/launch.hpp"

namespace kspec::launch {

// Per-stage accounting (the app-side StageStats, unified).
struct StageRecord {
  std::string name;
  vgpu::LaunchStats launch;   // last launch of the stage
  int reg_count = 0;          // registers/thread of the last kernel launched
  double sim_millis = 0;      // accumulated over the stage's launches
  double compile_millis = 0;  // build cost of the modules the stage loaded
  double wall_millis = 0;     // host wall-clock time spent inside Launch
};

// The unified timing story of one app call.
struct LaunchBreakdown {
  double compile_millis = 0;   // sum of loaded modules' build costs
  double transfer_millis = 0;  // modeled host<->device transfer time
  double sim_millis = 0;       // simulated GPU execution time
  double wall_millis = 0;      // host wall-clock time spent inside Launch
  // Which execution tier actually served each launch this runner issued
  // (vcuda::LaunchExecution out-fields, accumulated).
  std::size_t launches_interp = 0;
  std::size_t launches_decoded = 0;
  std::size_t launches_native = 0;
  // Of launches_native, served by a shape-specialized variant (the rest ran
  // the module's shape-generic artifact).
  std::size_t launches_native_shape = 0;
  std::size_t native_fallbacks = 0;  // native requested, decoded served
  std::vector<StageRecord> stages;

  const StageRecord* Stage(const std::string& name) const;
};

enum class LoadPolicy {
  kInline,
  kTiered,
  kAsyncPromote,
};

struct RunnerOptions {
  LoadPolicy policy = LoadPolicy::kInline;
  int hot_threshold = 3;  // tiered policies: promote after this many requests
  TransferModel transfer;
  // Execution-tier request forwarded with every launch (still subject to the
  // test override and VGPU_TIER; see vgpu::ResolveTier). kAuto lets the
  // context pick decoded-or-native by artifact readiness.
  vgpu::ExecutionTier tier = vgpu::ExecutionTier::kAuto;
};

class StageRunner {
 public:
  explicit StageRunner(vcuda::Context& ctx, RunnerOptions opts = {});

  vcuda::Context& ctx() { return *ctx_; }
  const RunnerOptions& options() const { return opts_; }
  const TransferModel& transfer_model() const { return opts_.transfer; }

  // Loads the stage's module under the configured policy and charges its
  // build cost to the stage record — once per distinct compiled binary per
  // breakdown, however many launches reload it. Under a tiered policy a cold
  // parameter set is answered with the shared RE build of `source`.
  std::shared_ptr<vcuda::Module> LoadStage(const std::string& stage, const std::string& source,
                                           const SpecBuilder& spec);

  // The fleet entry point: identical contract, but takes the canonical
  // CompileOptions directly — a sched::LaunchRequest carries its
  // specialization as options (built once, client-side, from a SpecBuilder)
  // so whichever shard the request lands on can load it without re-deriving
  // the define set.
  std::shared_ptr<vcuda::Module> LoadStage(const std::string& stage, const std::string& source,
                                           const kcc::CompileOptions& opts);

  // Launches and folds the statistics into the stage record.
  vgpu::LaunchStats Launch(const std::string& stage, const vcuda::Module& module,
                           const std::string& kernel, vgpu::Dim3 grid, vgpu::Dim3 block,
                           const vcuda::ArgPack& args, unsigned dynamic_smem_bytes = 0);

  // LoadStage + Launch in one call for single-kernel stages.
  vgpu::LaunchStats Run(const std::string& stage, const std::string& source,
                        const SpecBuilder& spec, const std::string& kernel, vgpu::Dim3 grid,
                        vgpu::Dim3 block, const vcuda::ArgPack& args,
                        unsigned dynamic_smem_bytes = 0);

  // -------- device memory with transfer accounting --------
  template <typename T>
  vcuda::TypedBuffer<T> Alloc(std::size_t count) {
    return vcuda::TypedBuffer<T>(*ctx_, count);
  }
  template <typename T>
  vcuda::TypedBuffer<T> Upload(std::span<const T> host) {
    vcuda::TypedBuffer<T> buf = vcuda::UploadBuffer<T>(*ctx_, host);
    AccountHtoD(host.size_bytes());
    return buf;
  }
  template <typename T>
  std::vector<T> Download(const vcuda::TypedBuffer<T>& buf) {
    AccountDtoH(buf.bytes());
    return buf.Download();
  }

  // Charges modeled transfer time for copies done outside Upload/Download
  // (constant-memory tables, texture uploads).
  void AccountHtoD(std::uint64_t bytes);
  void AccountDtoH(std::uint64_t bytes);

  // -------- accounting --------
  const LaunchBreakdown& breakdown() const { return breakdown_; }
  // Returns the accumulated breakdown and starts a fresh one. Tiered loader
  // state (heat, promotions) persists across calls.
  LaunchBreakdown TakeBreakdown();

  // -------- tiered introspection --------
  // Aggregated TieredLoader statistics over every source this runner loads.
  vcuda::TieredLoader::Stats tiered_stats() const;
  // True when the given (source, parameter set) is currently served by its
  // specialized build. Always true under kInline (loads always specialize).
  bool IsSpecialized(const std::string& source, const SpecBuilder& spec) const;
  bool IsSpecialized(const std::string& source, const kcc::CompileOptions& opts) const;

  // Cache-affinity probe for fleet routing: true when loading this
  // (source, parameter set) here would be served specialized without a fresh
  // compile — either the tiered loader already promoted it (a finished
  // background promotion counts) or the context's module cache holds the
  // specialized binary.
  bool IsResident(const std::string& source, const kcc::CompileOptions& opts) const;

 private:
  StageRecord& StageFor(const std::string& name);
  vcuda::TieredLoader& LoaderFor(const std::string& source);

  vcuda::Context* ctx_;
  RunnerOptions opts_;
  LaunchBreakdown breakdown_;
  // (stage, compiled binary) pairs whose build cost is already in the current
  // breakdown. Repeated LoadStage calls for the same binary — one per launch
  // in every multi-launch stage — must not re-charge its compile time.
  // Cleared by TakeBreakdown; a tiered promotion swaps in a new binary and is
  // charged as such.
  std::set<std::pair<std::string, const kcc::CompiledModule*>> charged_;
  std::map<std::string, std::unique_ptr<vcuda::TieredLoader>> loaders_;  // by source
};

}  // namespace kspec::launch
