// The analytic host<->device transfer cost model, shared by every consumer.
//
// This is the companion of the kernel-side analytic model in
// src/apps/cpu_model.hpp: benchmark tables that report "GPU time including
// transfers" (Section 6.1) need one consistent model, not the three
// different ad-hoc constants the app drivers used to inline. The numbers
// model a PCIe 2.0 x16-generation part: ~6 GB/s effective host<->device
// bandwidth plus ~8 microseconds of per-transfer launch/setup latency, and
// device-to-device copies at roughly device bandwidth (a read and a write),
// PCIe-free.
#pragma once

#include <cstdint>

namespace kspec::launch {

struct TransferModel {
  double latency_millis = 0.008;           // fixed per-transfer setup cost
  double host_bytes_per_milli = 6.0e6;     // host<->device (PCIe)
  double device_bytes_per_milli = 40.0e6;  // device<->device

  double HtoDMillis(std::uint64_t bytes) const {
    return latency_millis + static_cast<double>(bytes) / host_bytes_per_milli;
  }
  double DtoHMillis(std::uint64_t bytes) const { return HtoDMillis(bytes); }
  double DtoDMillis(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / device_bytes_per_milli;
  }
};

}  // namespace kspec::launch
