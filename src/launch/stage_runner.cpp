#include "launch/stage_runner.hpp"

#include <chrono>

namespace kspec::launch {

const StageRecord* LaunchBreakdown::Stage(const std::string& name) const {
  for (const StageRecord& s : stages) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

StageRunner::StageRunner(vcuda::Context& ctx, RunnerOptions opts)
    : ctx_(&ctx), opts_(opts) {
  if (opts_.policy == LoadPolicy::kAsyncPromote) {
    KSPEC_CHECK_MSG(ctx_->async_service() != nullptr,
                    "kAsyncPromote requires an AsyncCompileService attached to the context "
                    "(Context::set_async_service)");
  }
}

StageRecord& StageRunner::StageFor(const std::string& name) {
  for (StageRecord& s : breakdown_.stages) {
    if (s.name == name) return s;
  }
  breakdown_.stages.emplace_back();
  breakdown_.stages.back().name = name;
  return breakdown_.stages.back();
}

vcuda::TieredLoader& StageRunner::LoaderFor(const std::string& source) {
  auto it = loaders_.find(source);
  if (it == loaders_.end()) {
    it = loaders_
             .emplace(source, std::make_unique<vcuda::TieredLoader>(ctx_, source,
                                                                    opts_.hot_threshold))
             .first;
  }
  return *it->second;
}

std::shared_ptr<vcuda::Module> StageRunner::LoadStage(const std::string& stage,
                                                      const std::string& source,
                                                      const SpecBuilder& spec) {
  return LoadStage(stage, source, spec.Build());
}

std::shared_ptr<vcuda::Module> StageRunner::LoadStage(const std::string& stage,
                                                      const std::string& source,
                                                      const kcc::CompileOptions& opts) {
  std::shared_ptr<vcuda::Module> mod;
  if (opts_.policy == LoadPolicy::kInline) {
    mod = ctx_->LoadModule(source, opts);
  } else {
    mod = LoaderFor(source).Get(opts);
  }
  // Charge the module's (possibly amortized) build cost once per (stage,
  // binary) per breakdown. A cached load still reports the original compile
  // time — but a stage that loads the same binary on every frame must not
  // multiply that one compile by the launch count.
  if (charged_.insert({stage, mod->compiled_ptr().get()}).second) {
    const double compile = mod->compiled().compile_millis;
    StageFor(stage).compile_millis += compile;
    breakdown_.compile_millis += compile;
  }
  return mod;
}

vgpu::LaunchStats StageRunner::Launch(const std::string& stage, const vcuda::Module& module,
                                      const std::string& kernel, vgpu::Dim3 grid,
                                      vgpu::Dim3 block, const vcuda::ArgPack& args,
                                      unsigned dynamic_smem_bytes) {
  const auto t0 = std::chrono::steady_clock::now();
  vcuda::LaunchExecution exec;
  exec.request = opts_.tier;
  vgpu::LaunchStats st =
      ctx_->Launch(module, kernel, grid, block, args, dynamic_smem_bytes, &exec);
  const double wall =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  switch (exec.served) {
    case vgpu::ExecutionTier::kInterp: ++breakdown_.launches_interp; break;
    case vgpu::ExecutionTier::kNative:
      ++breakdown_.launches_native;
      if (exec.native_shape) ++breakdown_.launches_native_shape;
      break;
    default: ++breakdown_.launches_decoded; break;
  }
  if (exec.native_fallback) ++breakdown_.native_fallbacks;
  StageRecord& rec = StageFor(stage);
  rec.launch = st;
  rec.reg_count = module.GetKernel(kernel).stats.reg_count;
  rec.sim_millis += st.sim_millis;
  rec.wall_millis += wall;
  breakdown_.sim_millis += st.sim_millis;
  breakdown_.wall_millis += wall;
  return st;
}

vgpu::LaunchStats StageRunner::Run(const std::string& stage, const std::string& source,
                                   const SpecBuilder& spec, const std::string& kernel,
                                   vgpu::Dim3 grid, vgpu::Dim3 block,
                                   const vcuda::ArgPack& args, unsigned dynamic_smem_bytes) {
  std::shared_ptr<vcuda::Module> mod = LoadStage(stage, source, spec);
  return Launch(stage, *mod, kernel, grid, block, args, dynamic_smem_bytes);
}

void StageRunner::AccountHtoD(std::uint64_t bytes) {
  breakdown_.transfer_millis += opts_.transfer.HtoDMillis(bytes);
}

void StageRunner::AccountDtoH(std::uint64_t bytes) {
  breakdown_.transfer_millis += opts_.transfer.DtoHMillis(bytes);
}

LaunchBreakdown StageRunner::TakeBreakdown() {
  LaunchBreakdown out = std::move(breakdown_);
  breakdown_ = LaunchBreakdown{};
  charged_.clear();  // next breakdown charges each binary's compile afresh
  return out;
}

vcuda::TieredLoader::Stats StageRunner::tiered_stats() const {
  vcuda::TieredLoader::Stats total;
  for (const auto& [source, loader] : loaders_) {
    vcuda::TieredLoader::Stats s = loader->stats();
    total.re_served += s.re_served;
    total.sk_served += s.sk_served;
    total.specializations += s.specializations;
    total.background_compiles += s.background_compiles;
    total.promotions_pending += s.promotions_pending;
    total.re_served_while_compiling += s.re_served_while_compiling;
    total.failed_promotions += s.failed_promotions;
  }
  return total;
}

bool StageRunner::IsSpecialized(const std::string& source, const SpecBuilder& spec) const {
  return IsSpecialized(source, spec.Build());
}

bool StageRunner::IsSpecialized(const std::string& source,
                                const kcc::CompileOptions& opts) const {
  if (opts_.policy == LoadPolicy::kInline) return true;
  auto it = loaders_.find(source);
  return it != loaders_.end() && it->second->IsSpecialized(opts);
}

bool StageRunner::IsResident(const std::string& source, const kcc::CompileOptions& opts) const {
  if (opts_.policy != LoadPolicy::kInline) {
    auto it = loaders_.find(source);
    if (it != loaders_.end() && it->second->IsSpecialized(opts)) return true;
  }
  return ctx_->HasCachedModule(source, opts);
}

}  // namespace kspec::launch
