#include "launch/spec_builder.hpp"

#include "support/str.hpp"

namespace kspec::launch {

ParamTable& ParamTable::Flag(std::string macro, std::string doc) {
  entries_[std::move(macro)] = Entry{true, std::move(doc)};
  return *this;
}

ParamTable& ParamTable::Value(std::string macro, std::string doc) {
  entries_[std::move(macro)] = Entry{false, std::move(doc)};
  return *this;
}

bool ParamTable::IsFlag(const std::string& macro) const {
  auto it = entries_.find(macro);
  KSPEC_CHECK_MSG(it != entries_.end(), "macro not in parameter table: " + macro);
  return it->second.is_flag;
}

std::string ParamTable::Describe() const {
  std::string out = app_.empty() ? "specialization parameters:\n"
                                 : app_ + " specialization parameters:\n";
  for (const auto& [macro, e] : entries_) {
    out += Format("  %-14s %-5s %s\n", macro.c_str(), e.is_flag ? "flag" : "value",
                  e.doc.c_str());
  }
  return out;
}

SpecBuilder& SpecBuilder::Flag(const std::string& macro) {
  return Set(macro, "1", /*is_flag=*/true);
}

SpecBuilder& SpecBuilder::Reuse(const std::string& macro) {
  if (table_ != nullptr && !table_->Knows(macro)) {
    throw SpecError("Reuse of macro not in the " + table_->app() + " parameter table: " + macro);
  }
  if (seen_.count(macro) == 0) {
    throw SpecError("Reuse(" + macro + ") but the macro was never defined on this builder");
  }
  return *this;
}

SpecBuilder& SpecBuilder::Set(const std::string& macro, std::string value, bool is_flag) {
  if (macro.empty()) throw SpecError("empty macro name");
  if (table_ != nullptr) {
    if (!table_->Knows(macro)) {
      throw SpecError("macro not in the " + table_->app() + " parameter table: " + macro);
    }
    if (table_->IsFlag(macro) != is_flag) {
      throw SpecError(macro + (is_flag ? " is a value parameter, use Value()"
                                       : " is a capability flag, use Flag()"));
    }
  }
  if (!seen_.insert(macro).second) {
    throw SpecError("duplicate define: " + macro +
                    " (use Reuse() to document an intentional cross-stage reuse)");
  }
  if (specialize_) defines_[macro] = std::move(value);
  return *this;
}

kcc::CompileOptions SpecBuilder::Build(kcc::CompileOptions base) const {
  base.defines = defines_;
  return base;
}

std::string SpecBuilder::Stringify(long long v) { return Format("%lld", v); }

std::string SpecBuilder::Stringify(unsigned long long v) { return Format("%llu", v); }

std::string SpecBuilder::Stringify(double v) { return Format("%.9gf", v); }

std::string SpecBuilder::StringifyBool(bool v) { return v ? "1" : "0"; }

std::string SpecBuilder::StringifyPointer(std::uint64_t address) {
  return Format("0x%llx", static_cast<unsigned long long>(address));
}

}  // namespace kspec::launch
