// Autotuning wiring for the PIV register-blocking kernel: the (threads, rb)
// implementation-parameter space, its evaluator, its static feasibility
// pre-pass, and a cache-first entry point that skips the search when a
// persisted TuningCache already knows this (device, problem) pair.
#pragma once

#include <string>
#include <vector>

#include "apps/piv/gpu.hpp"
#include "apps/piv/problem.hpp"
#include "tune/tuner.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec::apps::piv {

// The kRegBlock tuning space. `max_rb` bounds the register-blocking axis;
// thread counts are the PIV-legal powers of two.
std::vector<tune::ParamRange> RegBlockSpace(int max_rb = 48);

// Measures one configuration: specialize, launch, return simulated ms.
// Throws (-> skipped) on configurations GpuPiv rejects.
tune::EvalFn RegBlockEval(vcuda::Context& ctx, const Problem& p);

// Static pre-pass over the same space: coverage arithmetic (rb * threads
// must tile the mask) plus the occupancy screen of tune::OccupancyPrune.
// Register counts come from MiniPTX via memoized reference compiles — and
// only for configurations where the device profile says registers could
// actually zero out occupancy, so the common case costs no compile at all.
// The returned callable borrows `ctx` and `p`; both must outlive it.
tune::PruneFn RegBlockPrune(vcuda::Context& ctx, const Problem& p);

// (kernel, device, problem-geometry) key for the persistent TuningCache.
std::string RegBlockCacheKey(const vcuda::Context& ctx, const Problem& p);

// Cache-first autotuned configuration: answers from `cache` when it already
// holds this key (zero evaluations), otherwise runs PredictiveSearch with
// the pre-pass and stores the winner. Throws Error when the space holds no
// feasible configuration. `result`, when given, receives the full TuneResult
// (cache_hit = true and evaluated = 0 on the cache path).
PivConfig TunedRegBlock(vcuda::Context& ctx, const Problem& p,
                        tune::TuningCache* cache = nullptr,
                        tune::TuneResult* result = nullptr,
                        tune::PredictiveOptions opts = {});

}  // namespace kspec::apps::piv
