// Streaming PIV on GPU-PF (the dissertation's target deployment: GPU-PF "is
// designed for rapidly constructing applications with streaming processing
// pipelines", Section 4.4.1).
//
// A recording of frame pairs streams through the pipeline one pair per
// iteration via subset windows; the PIV kernel is specialized once for the
// mask/search geometry and reused across the recording. Changing the mask
// size mid-stream (an operator retuning the interrogation windows) re-enters
// the refresh phase: the module recompiles, buffers reallocate, and the
// stream continues.
#pragma once

#include <memory>
#include <vector>

#include "apps/piv/problem.hpp"
#include "gpupf/pipeline.hpp"

namespace kspec::apps::piv {

// A deterministic synthetic recording: `n_pairs` frame pairs, each with its
// own planted displacement.
struct Recording {
  int img = 0;
  int n_pairs = 0;
  std::vector<float> frames_a;  // n_pairs * img * img
  std::vector<float> frames_b;
  std::vector<int> true_dy, true_dx;
};

Recording GenerateRecording(int img, int n_pairs, int range, std::uint64_t seed);

// GPU-PF pipeline wrapper around the warp-specialized PIV kernel.
class PivStream {
 public:
  // `mask` and `range`/`stride` define the interrogation geometry; bound as
  // specialization constants, so SetMaskSize() triggers re-specialization.
  PivStream(vcuda::Context* ctx, const Recording& rec, int mask, int range, int stride);

  // Processes the next `n` frame pairs; appends one VectorField-worth of
  // best offsets per pair to results().
  void Run(int n);

  // Operator retuning: changes the interrogation window size. Takes effect
  // (recompile + reallocation) on the next Run().
  void SetMaskSize(int mask);

  int masks_per_pair() const;
  int search_w() const;
  const std::vector<std::vector<int>>& results() const { return results_; }
  gpupf::Pipeline& pipeline() { return *pipe_; }

 private:
  const Recording& rec_;
  std::unique_ptr<gpupf::Pipeline> pipe_;
  // Geometry parameters (owned by the pipeline).
  gpupf::IntParam* mask_ = nullptr;
  gpupf::IntParam* mask_area_ = nullptr;
  gpupf::IntParam* search_w_ = nullptr;
  gpupf::IntParam* n_offsets_ = nullptr;
  gpupf::IntParam* masks_x_ = nullptr;
  gpupf::IntParam* n_masks_param_ = nullptr;
  gpupf::TripletParam* grid_ = nullptr;
  gpupf::ExtentParam* best_extent_ = nullptr;
  gpupf::MemoryRes* best_host_ = nullptr;
  int range_ = 0, stride_ = 0;
  std::vector<std::vector<int>> results_;

  void UpdateGeometry();
};

}  // namespace kspec::apps::piv
