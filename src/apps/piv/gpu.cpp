#include "apps/piv/gpu.hpp"

#include <algorithm>

#include "apps/piv/kernels.hpp"
#include "support/math.hpp"
#include "support/status.hpp"
#include "support/str.hpp"

namespace kspec::apps::piv {

namespace {

using vcuda::ArgPack;
using vgpu::Dim3;

std::string SourceFor(Variant v) {
  std::string body;
  switch (v) {
    case Variant::kBasic: body = kPivBasicSource; break;
    case Variant::kRegBlock: body = kPivRegBlockSource; break;
    case Variant::kWarpSpec: body = kPivWarpSpecSource; break;
    case Variant::kMultiMask: body = kPivMultiMaskSource; break;
  }
  const std::string tag = "__COMMON__";
  std::size_t pos = body.find(tag);
  KSPEC_CHECK(pos != std::string::npos);
  body.replace(pos, tag.size(), kPivCommonHeader);
  return body;
}

const char* KernelName(Variant v) {
  switch (v) {
    case Variant::kBasic: return "pivBasic";
    case Variant::kRegBlock: return "pivRegBlock";
    case Variant::kWarpSpec: return "pivWarpSpec";
    case Variant::kMultiMask: return "pivMultiMask";
  }
  return "?";
}

}  // namespace

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kBasic: return "basic";
    case Variant::kRegBlock: return "regblock";
    case Variant::kWarpSpec: return "warpspec";
    case Variant::kMultiMask: return "multimask";
  }
  return "?";
}

PivGpuResult GpuPiv(vcuda::Context& ctx, const Problem& p, const PivConfig& cfg) {
  KSPEC_CHECK_MSG(IsPow2(static_cast<std::uint64_t>(cfg.threads)) && cfg.threads >= 32 &&
                      cfg.threads <= 256,
                  "PIV thread count must be a power of two in [32, 256]");
  if (cfg.variant == Variant::kRegBlock && !cfg.specialize) {
    throw DeviceError(
        "register blocking requires kernel specialization: register arrays need "
        "compile-time bounds (Section 2.3 of the dissertation)");
  }
  if (!cfg.specialize && p.mask_area() > 1024 && cfg.variant == Variant::kWarpSpec) {
    throw DeviceError("RE warp-spec kernel caps masks at 1024 pixels (fixed shared allocation)");
  }

  const int rb = cfg.rb > 0 ? cfg.rb
                            : static_cast<int>(CeilDiv(p.mask_area(), cfg.threads));
  KSPEC_CHECK_MSG(rb * cfg.threads >= p.mask_area(),
                  "register blocking depth too small to cover the mask");

  kcc::CompileOptions opts;
  if (cfg.specialize) {
    opts.defines["CT_MASK"] = "1";
    opts.defines["K_MASK_W"] = std::to_string(p.mask_w);
    opts.defines["K_MASK_AREA"] = std::to_string(p.mask_area());
    opts.defines["CT_SEARCH"] = "1";
    opts.defines["K_SEARCH_W"] = std::to_string(p.search_w());
    opts.defines["K_N_OFFSETS"] = std::to_string(p.n_offsets());
    opts.defines["CT_THREADS"] = "1";
    opts.defines["K_THREADS"] = std::to_string(cfg.threads);
    if (cfg.variant == Variant::kRegBlock) {
      opts.defines["K_RB"] = std::to_string(rb);
      // The striped index k*NTHREADS+tid is provably in range only when the
      // register file tiles the mask exactly.
      opts.defines["K_GUARD"] = (rb * cfg.threads == p.mask_area()) ? "0" : "1";
    }
  }

  auto mod = ctx.LoadModule(SourceFor(cfg.variant), opts);
  const vgpu::CompiledKernel& kernel = mod->GetKernel(KernelName(cfg.variant));

  auto d_a = vcuda::Upload<float>(ctx, std::span<const float>(p.frame_a));
  auto d_b = vcuda::Upload<float>(ctx, std::span<const float>(p.frame_b));
  const int n_masks = p.n_masks();
  auto d_best = ctx.Malloc(static_cast<std::uint64_t>(n_masks) * sizeof(int));
  auto d_score = ctx.Malloc(static_cast<std::uint64_t>(n_masks) * sizeof(float));

  ArgPack args;
  args.Ptr(d_a).Ptr(d_b).Ptr(d_best).Ptr(d_score)
      .Int(p.img_w).Int(p.mask_w).Int(p.mask_area())
      .Int(p.stride_x).Int(p.stride_y).Int(p.masks_x())
      .Int(p.search_w()).Int(p.n_offsets())
      .Int(p.origin_x()).Int(p.origin_y())
      .Int(-p.range_x).Int(-p.range_y);

  unsigned grid_x = static_cast<unsigned>(n_masks);
  if (cfg.variant == Variant::kMultiMask) {
    args.Int(n_masks);
    unsigned masks_per_block = static_cast<unsigned>(cfg.threads) / 32;
    grid_x = static_cast<unsigned>(CeilDiv<unsigned>(n_masks, masks_per_block));
  }

  PivGpuResult out;
  out.stats = ctx.Launch(*mod, KernelName(cfg.variant),
                         Dim3(grid_x),
                         Dim3(static_cast<unsigned>(cfg.threads)), args);
  out.reg_count = kernel.stats.reg_count;
  out.compile_millis = mod->compiled().compile_millis;
  out.kernel_listing = kernel.listing;

  out.field.best_offset = vcuda::Download<int>(ctx, d_best, n_masks);
  out.field.best_score = vcuda::Download<float>(ctx, d_score, n_masks);
  out.field.millis = out.stats.sim_millis;

  ctx.Free(d_a);
  ctx.Free(d_b);
  ctx.Free(d_best);
  ctx.Free(d_score);
  return out;
}

}  // namespace kspec::apps::piv
