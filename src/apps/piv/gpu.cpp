#include "apps/piv/gpu.hpp"

#include <algorithm>

#include "apps/piv/kernels.hpp"
#include "support/math.hpp"
#include "support/status.hpp"

namespace kspec::apps::piv {

namespace {

using vcuda::ArgPack;
using vgpu::Dim3;

std::string SourceFor(Variant v) {
  std::string body;
  switch (v) {
    case Variant::kBasic: body = kPivBasicSource; break;
    case Variant::kRegBlock: body = kPivRegBlockSource; break;
    case Variant::kWarpSpec: body = kPivWarpSpecSource; break;
    case Variant::kMultiMask: body = kPivMultiMaskSource; break;
  }
  const std::string tag = "__COMMON__";
  std::size_t pos = body.find(tag);
  KSPEC_CHECK(pos != std::string::npos);
  body.replace(pos, tag.size(), kPivCommonHeader);
  return body;
}

}  // namespace

const char* KernelName(Variant v) {
  switch (v) {
    case Variant::kBasic: return "pivBasic";
    case Variant::kRegBlock: return "pivRegBlock";
    case Variant::kWarpSpec: return "pivWarpSpec";
    case Variant::kMultiMask: return "pivMultiMask";
  }
  return "?";
}

std::string KernelSource(Variant v) { return SourceFor(v); }

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kBasic: return "basic";
    case Variant::kRegBlock: return "regblock";
    case Variant::kWarpSpec: return "warpspec";
    case Variant::kMultiMask: return "multimask";
  }
  return "?";
}

const launch::ParamTable& PivParams() {
  static const launch::ParamTable table = [] {
    launch::ParamTable t("piv");
    t.Flag("CT_MASK", "mask geometry fixed at compile time");
    t.Value("K_MASK_W", "interrogation mask width");
    t.Value("K_MASK_AREA", "mask pixel count");
    t.Flag("CT_SEARCH", "search geometry fixed at compile time");
    t.Value("K_SEARCH_W", "search window width");
    t.Value("K_N_OFFSETS", "candidate offsets per mask");
    t.Flag("CT_THREADS", "block size fixed at compile time");
    t.Value("K_THREADS", "threads per block");
    t.Value("K_RB", "register blocking depth (kRegBlock only)");
    t.Value("K_GUARD", "bounds guard needed when RB*THREADS != MASK_AREA");
    return t;
  }();
  return table;
}

PivGpuResult GpuPiv(launch::StageRunner& runner, const Problem& p, const PivConfig& cfg) {
  KSPEC_CHECK_MSG(IsPow2(static_cast<std::uint64_t>(cfg.threads)) && cfg.threads >= 32 &&
                      cfg.threads <= 256,
                  "PIV thread count must be a power of two in [32, 256]");
  if (cfg.variant == Variant::kRegBlock && !cfg.specialize) {
    throw DeviceError(
        "register blocking requires kernel specialization: register arrays need "
        "compile-time bounds (Section 2.3 of the dissertation)");
  }
  if (!cfg.specialize && p.mask_area() > 1024 && cfg.variant == Variant::kWarpSpec) {
    throw DeviceError("RE warp-spec kernel caps masks at 1024 pixels (fixed shared allocation)");
  }

  const int rb = cfg.rb > 0 ? cfg.rb
                            : static_cast<int>(CeilDiv(p.mask_area(), cfg.threads));
  KSPEC_CHECK_MSG(rb * cfg.threads >= p.mask_area(),
                  "register blocking depth too small to cover the mask");

  launch::SpecBuilder spec(cfg.specialize, &PivParams());
  spec.Flag("CT_MASK").Value("K_MASK_W", p.mask_w).Value("K_MASK_AREA", p.mask_area())
      .Flag("CT_SEARCH").Value("K_SEARCH_W", p.search_w()).Value("K_N_OFFSETS", p.n_offsets())
      .Flag("CT_THREADS").Value("K_THREADS", cfg.threads);
  if (cfg.variant == Variant::kRegBlock) {
    // The striped index k*NTHREADS+tid is provably in range only when the
    // register file tiles the mask exactly.
    spec.Value("K_RB", rb).Value("K_GUARD", rb * cfg.threads == p.mask_area() ? 0 : 1);
  }

  auto mod = runner.LoadStage("piv", SourceFor(cfg.variant), spec);
  const vgpu::CompiledKernel& kernel = mod->GetKernel(KernelName(cfg.variant));

  auto d_a = runner.Upload<float>(std::span<const float>(p.frame_a));
  auto d_b = runner.Upload<float>(std::span<const float>(p.frame_b));
  const int n_masks = p.n_masks();
  auto d_best = runner.Alloc<int>(n_masks);
  auto d_score = runner.Alloc<float>(n_masks);

  ArgPack args;
  args.Ptr(d_a.get()).Ptr(d_b.get()).Ptr(d_best.get()).Ptr(d_score.get())
      .Int(p.img_w).Int(p.mask_w).Int(p.mask_area())
      .Int(p.stride_x).Int(p.stride_y).Int(p.masks_x())
      .Int(p.search_w()).Int(p.n_offsets())
      .Int(p.origin_x()).Int(p.origin_y())
      .Int(-p.range_x).Int(-p.range_y);

  unsigned grid_x = static_cast<unsigned>(n_masks);
  if (cfg.variant == Variant::kMultiMask) {
    args.Int(n_masks);
    unsigned masks_per_block = static_cast<unsigned>(cfg.threads) / 32;
    grid_x = static_cast<unsigned>(CeilDiv<unsigned>(n_masks, masks_per_block));
  }

  PivGpuResult out;
  out.stats = runner.Launch("piv", *mod, KernelName(cfg.variant), Dim3(grid_x),
                            Dim3(static_cast<unsigned>(cfg.threads)), args);
  out.reg_count = kernel.stats.reg_count;
  out.kernel_listing = kernel.listing;

  out.field.best_offset = runner.Download(d_best);
  out.field.best_score = runner.Download(d_score);
  out.field.millis = out.stats.sim_millis;

  out.breakdown = runner.TakeBreakdown();
  out.compile_millis = out.breakdown.compile_millis;
  out.transfer_millis = out.breakdown.transfer_millis;
  return out;
}

PivGpuResult GpuPiv(vcuda::Context& ctx, const Problem& p, const PivConfig& cfg) {
  launch::StageRunner runner(ctx);
  return GpuPiv(runner, p, cfg);
}

}  // namespace kspec::apps::piv
