#include "apps/piv/stream.hpp"

#include "apps/piv/kernels.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace kspec::apps::piv {

Recording GenerateRecording(int img, int n_pairs, int range, std::uint64_t seed) {
  Recording rec;
  rec.img = img;
  rec.n_pairs = n_pairs;
  const std::size_t frame = static_cast<std::size_t>(img) * img;
  rec.frames_a.resize(frame * n_pairs);
  rec.frames_b.resize(frame * n_pairs);
  for (int f = 0; f < n_pairs; ++f) {
    // Each pair reuses the single-problem generator with its own seed.
    Problem p = Generate("rec", img, 8, range, 8, seed + 1000 * f);
    std::copy(p.frame_a.begin(), p.frame_a.end(), rec.frames_a.begin() + f * frame);
    std::copy(p.frame_b.begin(), p.frame_b.end(), rec.frames_b.begin() + f * frame);
    rec.true_dy.push_back(p.true_dy);
    rec.true_dx.push_back(p.true_dx);
  }
  return rec;
}

namespace {

std::string WarpSpecSource() {
  std::string body = kPivWarpSpecSource;
  const std::string tag = "__COMMON__";
  body.replace(body.find(tag), tag.size(), kPivCommonHeader);
  return body;
}

constexpr int kThreads = 64;

}  // namespace

PivStream::PivStream(vcuda::Context* ctx, const Recording& rec, int mask, int range, int stride)
    : rec_(rec), pipe_(std::make_unique<gpupf::Pipeline>(ctx)), range_(range), stride_(stride) {
  using namespace gpupf;
  Pipeline& p = *pipe_;
  const int img = rec.img;
  const std::size_t frame_elems = static_cast<std::size_t>(img) * img;

  // --- parameters ---
  mask_ = p.AddInt("mask", mask);
  mask_area_ = p.AddInt("mask-area", mask * mask);
  search_w_ = p.AddInt("search-w", 2 * range + 1);
  n_offsets_ = p.AddInt("n-offsets", (2 * range + 1) * (2 * range + 1));
  masks_x_ = p.AddInt("masks-x", 1);
  n_masks_param_ = p.AddInt("n-masks", 1);
  auto* img_w = p.AddInt("img-w", img);
  auto* stride_p = p.AddInt("stride", stride);
  auto* origin = p.AddInt("origin", range);
  auto* off0 = p.AddInt("off0", -range);
  auto* threads_param = p.AddInt("threads", kThreads);
  grid_ = p.AddTriplet("grid", vgpu::Dim3(1));
  auto* block = p.AddTriplet("block", vgpu::Dim3(kThreads));
  auto* every = p.AddSchedule("every", 1);

  // --- resources ---
  auto* rec_extent = p.AddExtent("recording", sizeof(float), frame_elems * rec.n_pairs);
  auto* frame_extent = p.AddExtent("frame", sizeof(float), frame_elems);
  auto* host_a = p.AddHostMemory("host-a", rec_extent);
  auto* host_b = p.AddHostMemory("host-b", rec_extent);
  auto* dev_a = p.AddGlobalMemory("dev-a", frame_extent);
  auto* dev_b = p.AddGlobalMemory("dev-b", frame_extent);
  auto* stream_a = p.AddSubset("stream-a", host_a, frame_extent,
                               static_cast<std::int64_t>(frame_elems), rec.n_pairs);
  auto* stream_b = p.AddSubset("stream-b", host_b, frame_extent,
                               static_cast<std::int64_t>(frame_elems), rec.n_pairs);

  best_extent_ = p.AddExtent("vectors", sizeof(int), 1);
  auto* best_dev = p.AddGlobalMemory("best-dev", best_extent_);
  auto* score_dev = p.AddGlobalMemory("score-dev", best_extent_);
  best_host_ = p.AddHostMemory("best-host", best_extent_);

  auto* mod = p.AddModule("piv-mod", WarpSpecSource());
  mod->SetDefine("CT_MASK", "1");
  mod->BindDefine("K_MASK_W", mask_);
  mod->BindDefine("K_MASK_AREA", mask_area_);
  mod->SetDefine("CT_SEARCH", "1");
  mod->BindDefine("K_SEARCH_W", search_w_);
  mod->BindDefine("K_N_OFFSETS", n_offsets_);
  mod->SetDefine("CT_THREADS", "1");
  mod->BindDefine("K_THREADS", threads_param);
  auto* kernel = p.AddKernel("piv-kernel", mod, "pivWarpSpec");

  // --- actions ---
  p.AddCopy("upload-a", every, stream_a, dev_a);
  p.AddCopy("upload-b", every, stream_b, dev_b);
  p.AddKernelExec("piv", every, kernel, grid_, block,
                  {dev_a, dev_b, best_dev, score_dev,
                   img_w, mask_, mask_area_,
                   stride_p, stride_p, masks_x_,
                   search_w_, n_offsets_,
                   origin, origin, off0, off0});
  p.AddCopy("download", every, best_dev, best_host_);
  p.AddUserFn("collect", every, [this](gpupf::Pipeline&, std::uint64_t) {
    auto span = best_host_->host_span<int>();
    results_.emplace_back(span.begin(), span.end());
  });

  UpdateGeometry();
  p.Refresh();
  std::copy(rec.frames_a.begin(), rec.frames_a.end(), host_a->host_span<float>().begin());
  std::copy(rec.frames_b.begin(), rec.frames_b.end(), host_b->host_span<float>().begin());
}

int PivStream::masks_per_pair() const {
  int mx = (rec_.img - mask_->value() - 2 * range_) / stride_ + 1;
  return mx * mx;
}

int PivStream::search_w() const { return static_cast<int>(search_w_->value()); }

void PivStream::UpdateGeometry() {
  const int mask = static_cast<int>(mask_->value());
  KSPEC_CHECK_MSG(rec_.img > mask + 2 * range_, "mask too large for the recording frames");
  mask_area_->Set(mask * mask);
  int mx = (rec_.img - mask - 2 * range_) / stride_ + 1;
  masks_x_->Set(mx);
  n_masks_param_->Set(static_cast<std::int64_t>(mx) * mx);
  grid_->Set(vgpu::Dim3(static_cast<unsigned>(mx * mx)));
  best_extent_->Set(static_cast<std::uint64_t>(mx) * mx);
}

void PivStream::SetMaskSize(int mask) {
  mask_->Set(mask);
  UpdateGeometry();
}

void PivStream::Run(int n) { pipe_->Run(static_cast<std::uint64_t>(n)); }

}  // namespace kspec::apps::piv
