// Kernel-C sources for the PIV kernel variants (Section 5.2.1/5.2.2).
//
// Three implementations of the same mask/offset SSD search, matching the
// variants the dissertation compares (Table 6.14):
//
//  * pivBasic     — one block per mask; threads striped across the mask area
//                   (Figure 5.11); a full block-wide shared-memory tree
//                   reduction per search offset. The reduction (and its
//                   __syncthreads) is the bottleneck this ordering exposes.
//  * pivRegBlock  — adds register blocking: each thread caches its RB mask
//                   pixels in a register array. Requires specialization:
//                   registers cannot be indirectly addressed, so RB and the
//                   loop bounds must be compile-time constants (Section 2.3).
//  * pivWarpSpec  — warp specialization (Figure 5.12): each warp owns a
//                   subset of offsets and reduces within the warp's
//                   synchronous lanes, eliminating block-wide barriers from
//                   the inner loop.
#pragma once

namespace kspec::apps::piv {

inline constexpr const char* kPivCommonHeader = R"KC(
#ifdef CT_MASK
#define MASK_W K_MASK_W
#define MASK_AREA K_MASK_AREA
#else
#define MASK_W maskW
#define MASK_AREA maskArea
#endif

#ifdef CT_SEARCH
#define SEARCH_W K_SEARCH_W
#define N_OFFSETS K_N_OFFSETS
#else
#define SEARCH_W searchW
#define N_OFFSETS nOffsets
#endif

#ifdef CT_THREADS
#define NTHREADS K_THREADS
#define NT_ALLOC K_THREADS
#else
#define NTHREADS blockDim.x
#define NT_ALLOC 256
#endif
)KC";

inline constexpr const char* kPivBasicSource = R"KC(
__COMMON__

__kernel void pivBasic(float* frameA, float* frameB, int* bestOff, float* bestScore,
                       int imgW, int maskW, int maskArea,
                       int strideX, int strideY, int masksX,
                       int searchW, int nOffsets,
                       int originX, int originY, int offX0, int offY0) {
  __shared float red[NT_ALLOC];

  unsigned int tid = threadIdx.x;
  int maskIdx = blockIdx.x;
  int mx = originX + (maskIdx % masksX) * strideX;
  int my = originY + (maskIdx / masksX) * strideY;

  float best = 1.0e30f;
  int bestIdx = 0;
  for (int off = 0; off < N_OFFSETS; off++) {
    int oy = off / SEARCH_W + offY0;
    int ox = off % SEARCH_W + offX0;
    float partial = 0.0f;
    for (int i = tid; i < MASK_AREA; i += NTHREADS) {
      int yy = i / MASK_W;
      int xx = i % MASK_W;
      float a = frameA[(my + yy) * imgW + (mx + xx)];
      float b = frameB[(my + yy + oy) * imgW + (mx + xx + ox)];
      float d = a - b;
      partial += d * d;
    }
    red[tid] = partial;
    __syncthreads();
    for (unsigned int step = NTHREADS / 2; step > 0; step = step >> 1) {
      if (tid < step) {
        red[tid] += red[tid + step];
      }
      __syncthreads();
    }
    float total = red[0];
    if (total < best) {
      best = total;
      bestIdx = off;
    }
    __syncthreads();
  }
  if (tid == 0) {
    bestOff[maskIdx] = bestIdx;
    bestScore[maskIdx] = best;
  }
}
)KC";

// Register-blocked variant. Compiles ONLY with CT_MASK, CT_THREADS, and K_RB
// defined: the register array needs constant bounds to live in registers.
// K_GUARD is 0 when NTHREADS divides MASK_AREA (the striped index is then
// provably in range and the guard disappears from the generated code).
inline constexpr const char* kPivRegBlockSource = R"KC(
__COMMON__

#ifndef K_RB
#error pivRegBlock requires specialization: define K_RB (and CT_MASK/CT_THREADS)
#endif
#ifndef K_GUARD
#define K_GUARD 1
#endif

__kernel void pivRegBlock(float* frameA, float* frameB, int* bestOff, float* bestScore,
                          int imgW, int maskW, int maskArea,
                          int strideX, int strideY, int masksX,
                          int searchW, int nOffsets,
                          int originX, int originY, int offX0, int offY0) {
  __shared float red[NT_ALLOC];

  unsigned int tid = threadIdx.x;
  int maskIdx = blockIdx.x;
  int mx = originX + (maskIdx % masksX) * strideX;
  int my = originY + (maskIdx / masksX) * strideY;

  // Register blocking: cache this thread's striped mask pixels (Section 2.3).
  float mreg[K_RB];
  for (int k = 0; k < K_RB; k++) {
    int i = k * NTHREADS + (int)tid;
#if K_GUARD
    if (i < MASK_AREA) {
#endif
      int yy = i / MASK_W;
      int xx = i % MASK_W;
      mreg[k] = frameA[(my + yy) * imgW + (mx + xx)];
#if K_GUARD
    }
#endif
  }

  float best = 1.0e30f;
  int bestIdx = 0;
  for (int off = 0; off < N_OFFSETS; off++) {
    int oy = off / SEARCH_W + offY0;
    int ox = off % SEARCH_W + offX0;
    float partial = 0.0f;
    for (int k = 0; k < K_RB; k++) {
      int i = k * NTHREADS + (int)tid;
#if K_GUARD
      if (i < MASK_AREA) {
#endif
        int yy = i / MASK_W;
        int xx = i % MASK_W;
        float b = frameB[(my + yy + oy) * imgW + (mx + xx + ox)];
        float d = mreg[k] - b;
        partial += d * d;
#if K_GUARD
      }
#endif
    }
    red[tid] = partial;
    __syncthreads();
    for (unsigned int step = NTHREADS / 2; step > 0; step = step >> 1) {
      if (tid < step) {
        red[tid] += red[tid + step];
      }
      __syncthreads();
    }
    float total = red[0];
    if (total < best) {
      best = total;
      bestIdx = off;
    }
    __syncthreads();
  }
  if (tid == 0) {
    bestOff[maskIdx] = bestIdx;
    bestScore[maskIdx] = best;
  }
}
)KC";

// Warp-specialized variant: the mask loads into shared memory once; then
// each warp sweeps its own offsets and reduces among its 32 synchronous
// lanes without any block-wide barrier (Figure 5.12's removal of the
// reduction bottleneck). MASK_ALLOC caps the run-time-evaluated build the
// same way the fixed OpenCV constant buffer does (Section 2.6).
inline constexpr const char* kPivWarpSpecSource = R"KC(
__COMMON__

#ifdef CT_MASK
#define MASK_ALLOC K_MASK_AREA
#else
#define MASK_ALLOC 1024
#endif

__kernel void pivWarpSpec(float* frameA, float* frameB, int* bestOff, float* bestScore,
                          int imgW, int maskW, int maskArea,
                          int strideX, int strideY, int masksX,
                          int searchW, int nOffsets,
                          int originX, int originY, int offX0, int offY0) {
  __shared float smask[MASK_ALLOC];
  __shared float swred[NT_ALLOC];
  __shared float wBest[8];
  __shared int wBestIdx[8];

  unsigned int tid = threadIdx.x;
  unsigned int lane = tid % 32;
  unsigned int warp = tid / 32;
  unsigned int nwarps = NTHREADS / 32;

  int maskIdx = blockIdx.x;
  int mx = originX + (maskIdx % masksX) * strideX;
  int my = originY + (maskIdx / masksX) * strideY;

  for (int i = tid; i < MASK_AREA; i += NTHREADS) {
    int yy = i / MASK_W;
    int xx = i % MASK_W;
    smask[i] = frameA[(my + yy) * imgW + (mx + xx)];
  }
  __syncthreads();

  float best = 1.0e30f;
  int bestIdx = 0;
  for (int off = warp; off < N_OFFSETS; off += nwarps) {
    int oy = off / SEARCH_W + offY0;
    int ox = off % SEARCH_W + offX0;
    float partial = 0.0f;
    for (int i = lane; i < MASK_AREA; i += 32) {
      int yy = i / MASK_W;
      int xx = i % MASK_W;
      float b = frameB[(my + yy + oy) * imgW + (mx + xx + ox)];
      float d = smask[i] - b;
      partial += d * d;
    }
    // Intra-warp tree reduction: lanes are synchronous, no barrier needed.
    swred[tid] = partial;
    if (lane < 16) { swred[tid] += swred[tid + 16]; }
    if (lane < 8) { swred[tid] += swred[tid + 8]; }
    if (lane < 4) { swred[tid] += swred[tid + 4]; }
    if (lane < 2) { swred[tid] += swred[tid + 2]; }
    if (lane < 1) { swred[tid] += swred[tid + 1]; }
    float total = swred[warp * 32];
    if (total < best) {
      best = total;
      bestIdx = off;
    }
  }

  if (lane == 0) {
    wBest[warp] = best;
    wBestIdx[warp] = bestIdx;
  }
  __syncthreads();
  if (tid == 0) {
    float b0 = wBest[0];
    int i0 = wBestIdx[0];
    for (unsigned int w = 1; w < nwarps; w++) {
      if (wBest[w] < b0) {
        b0 = wBest[w];
        i0 = wBestIdx[w];
      }
    }
    bestOff[maskIdx] = i0;
    bestScore[maskIdx] = b0;
  }
}
)KC";

// Multi-mask variant (the dissertation's Section 7.2.1 extension direction:
// more work per block for problems whose mask count is too small to fill the
// device). Each warp owns ONE mask and sweeps every offset with intra-warp
// reductions; a block carries NTHREADS/32 masks. No block-wide barriers at
// all — warps never interact.
inline constexpr const char* kPivMultiMaskSource = R"KC(
__COMMON__

__kernel void pivMultiMask(float* frameA, float* frameB, int* bestOff, float* bestScore,
                           int imgW, int maskW, int maskArea,
                           int strideX, int strideY, int masksX,
                           int searchW, int nOffsets,
                           int originX, int originY, int offX0, int offY0,
                           int nMasks) {
  __shared float swred[NT_ALLOC];

  unsigned int tid = threadIdx.x;
  unsigned int lane = tid % 32;
  unsigned int warp = tid / 32;
  unsigned int warpsPerBlock = NTHREADS / 32;

  int maskIdx = (int)(blockIdx.x * warpsPerBlock + warp);
  if (maskIdx >= nMasks) {
    return;
  }
  int mx = originX + (maskIdx % masksX) * strideX;
  int my = originY + (maskIdx / masksX) * strideY;

  float best = 1.0e30f;
  int bestIdx = 0;
  for (int off = 0; off < N_OFFSETS; off++) {
    int oy = off / SEARCH_W + offY0;
    int ox = off % SEARCH_W + offX0;
    float partial = 0.0f;
    for (int i = lane; i < MASK_AREA; i += 32) {
      int yy = i / MASK_W;
      int xx = i % MASK_W;
      float a = frameA[(my + yy) * imgW + (mx + xx)];
      float b = frameB[(my + yy + oy) * imgW + (mx + xx + ox)];
      float d = a - b;
      partial += d * d;
    }
    swred[tid] = partial;
    if (lane < 16) { swred[tid] += swred[tid + 16]; }
    if (lane < 8) { swred[tid] += swred[tid + 8]; }
    if (lane < 4) { swred[tid] += swred[tid + 4]; }
    if (lane < 2) { swred[tid] += swred[tid + 2]; }
    if (lane < 1) { swred[tid] += swred[tid + 1]; }
    float total = swred[warp * 32];
    if (total < best) {
      best = total;
      bestIdx = off;
    }
  }
  if (lane == 0) {
    bestOff[maskIdx] = bestIdx;
    bestScore[maskIdx] = best;
  }
}
)KC";

}  // namespace kspec::apps::piv
