#include "apps/piv/problem.hpp"

#include "support/rng.hpp"
#include "support/status.hpp"

namespace kspec::apps::piv {

Problem Generate(std::string name, int img, int mask, int range, int stride,
                 std::uint64_t seed) {
  KSPEC_CHECK_MSG(img > mask + 2 * range, "image too small for mask + search range");
  KSPEC_CHECK_MSG(stride > 0, "stride must be positive");
  Problem p;
  p.name = std::move(name);
  p.img_h = p.img_w = img;
  p.mask_h = p.mask_w = mask;
  p.range_y = p.range_x = range;
  p.stride_y = p.stride_x = stride;
  p.seed = seed;

  Rng rng(seed);
  p.true_dy = range > 0 ? static_cast<int>(rng.NextInt(-range, range)) : 0;
  p.true_dx = range > 0 ? static_cast<int>(rng.NextInt(-range, range)) : 0;

  // Frame A: sparse bright particles over a dark background (PIV-like).
  p.frame_a.assign(static_cast<std::size_t>(img) * img, 0.0f);
  const int particles = img * img / 12;
  for (int i = 0; i < particles; ++i) {
    int y = static_cast<int>(rng.NextInt(0, img - 1));
    int x = static_cast<int>(rng.NextInt(0, img - 1));
    p.frame_a[static_cast<std::size_t>(y) * img + x] = 0.5f + 0.5f * rng.NextFloat();
  }

  // Frame B: frame A displaced by the planted vector plus mild noise.
  p.frame_b.assign(static_cast<std::size_t>(img) * img, 0.0f);
  for (int y = 0; y < img; ++y) {
    for (int x = 0; x < img; ++x) {
      int sy = y - p.true_dy;
      int sx = x - p.true_dx;
      float v = 0.0f;
      if (sy >= 0 && sy < img && sx >= 0 && sx < img) {
        v = p.frame_a[static_cast<std::size_t>(sy) * img + sx];
      } else {
        v = rng.NextFloat() < 0.08 ? 0.5f + 0.5f * rng.NextFloat() : 0.0f;
      }
      p.frame_b[static_cast<std::size_t>(y) * img + x] = v + 0.01f * rng.NextFloat();
    }
  }
  return p;
}

std::vector<Problem> FpgaBenchmarkSet() {
  // Tables 6.2/6.3 varied interrogation-window and search geometry across
  // image sizes; these keep the same relative spreads at interpreter scale.
  return {
      Generate("fpga_s16_r2", 72, 16, 2, 8, 11),
      Generate("fpga_s16_r4", 80, 16, 4, 8, 12),
      Generate("fpga_s24_r3", 96, 24, 3, 12, 13),
      Generate("fpga_s32_r4", 112, 32, 4, 16, 14),
  };
}

std::vector<Problem> MaskSizeSet() {
  // Table 6.4: mask size sweep, fixed search range and overlap ratio.
  return {
      Generate("mask8", 80, 8, 3, 4, 21),
      Generate("mask12", 80, 12, 3, 6, 22),
      Generate("mask16", 80, 16, 3, 8, 23),
      Generate("mask24", 96, 24, 3, 12, 24),
      Generate("mask32", 112, 32, 3, 16, 25),
  };
}

std::vector<Problem> SearchSizeSet() {
  // Table 6.5: search-offset sweep, fixed mask.
  return {
      Generate("search1", 80, 16, 1, 8, 31),
      Generate("search2", 80, 16, 2, 8, 32),
      Generate("search4", 80, 16, 4, 8, 33),
      Generate("search6", 96, 16, 6, 8, 34),
  };
}

std::vector<Problem> OverlapSet() {
  // Table 6.6: overlap sweep (stride = mask, mask/2, mask/4).
  return {
      Generate("overlap0", 96, 16, 3, 16, 41),
      Generate("overlap50", 96, 16, 3, 8, 42),
      Generate("overlap75", 96, 16, 3, 4, 43),
  };
}

}  // namespace kspec::apps::piv
