// Particle image velocimetry problem definitions (dissertation Section 5.2).
//
// PIV cross-correlates interrogation windows ("masks") between two frames of
// a particle-seeded flow (Figures 5.8/5.9): for every mask position in frame
// A, the best-matching offset within a search range of frame B gives the
// local velocity vector. The similarity score is the per-offset sum of
// squared differences (Figure 5.10). Synthetic data plants a known uniform
// displacement so every implementation's vectors are verifiable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kspec::apps::piv {

struct Problem {
  std::string name;
  int img_h = 0, img_w = 0;
  int mask_h = 0, mask_w = 0;      // interrogation window size
  int range_y = 0, range_x = 0;    // search range: offsets in [-range, +range]
  int stride_y = 0, stride_x = 0;  // window grid stride (overlap = mask - stride)
  std::uint64_t seed = 1;

  // Derived.
  int search_h() const { return 2 * range_y + 1; }
  int search_w() const { return 2 * range_x + 1; }
  int n_offsets() const { return search_h() * search_w(); }
  int mask_area() const { return mask_h * mask_w; }
  // Window grid: first mask origin leaves room for the search range.
  int masks_y() const { return (img_h - mask_h - 2 * range_y) / stride_y + 1; }
  int masks_x() const { return (img_w - mask_w - 2 * range_x) / stride_x + 1; }
  int n_masks() const { return masks_y() * masks_x(); }
  int origin_y() const { return range_y; }
  int origin_x() const { return range_x; }

  // Data.
  std::vector<float> frame_a;  // img_h x img_w
  std::vector<float> frame_b;
  int true_dy = 0, true_dx = 0;  // planted displacement (|d| <= range)

  // The flat offset index every mask should select.
  int true_offset_index() const {
    return (true_dy + range_y) * search_w() + (true_dx + range_x);
  }
};

Problem Generate(std::string name, int img, int mask, int range, int stride,
                 std::uint64_t seed);

// Benchmark problem families mirroring the dissertation's tables (scaled for
// the interpreted substrate; DESIGN.md documents the scaling):
//   Tables 6.2/6.3 — the FPGA comparison set (varied window/search geometry).
std::vector<Problem> FpgaBenchmarkSet();
//   Table 6.4 — varying mask size, all else fixed.
std::vector<Problem> MaskSizeSet();
//   Table 6.5 — varying search offset counts.
std::vector<Problem> SearchSizeSet();
//   Table 6.6 — varying interrogation-window overlap.
std::vector<Problem> OverlapSet();

}  // namespace kspec::apps::piv
