// GPU PIV host (Section 5.2.1): one block per interrogation window, kernel
// variant and implementation parameters selectable per run.
#pragma once

#include <string>

#include "apps/piv/cpu_ref.hpp"
#include "apps/piv/problem.hpp"
#include "launch/spec_builder.hpp"
#include "launch/stage_runner.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/launch.hpp"

namespace kspec::apps::piv {

enum class Variant {
  kBasic,      // block-wide reduction per offset
  kRegBlock,   // + register blocking (specialization required)
  kWarpSpec,   // warp-per-offset with intra-warp reduction
  kMultiMask,  // warp-per-mask, NTHREADS/32 masks per block (Section 7.2.1)
};

const char* VariantName(Variant v);

// The variant's single-source kernel text (common header spliced in) and its
// kernel name. Exposed so the autotuner's occupancy pre-pass can reference-
// compile a variant and read MiniPTX register counts without launching.
std::string KernelSource(Variant v);
const char* KernelName(Variant v);

struct PivConfig {
  Variant variant = Variant::kWarpSpec;
  int threads = 64;        // power of two, multiple of 32, <= 256
  bool specialize = true;  // kRegBlock requires true
  // Register blocking depth; 0 = automatic ceil(mask_area / threads).
  int rb = 0;
};

struct PivGpuResult {
  VectorField field;            // per-mask vectors; millis = simulated time
  vgpu::LaunchStats stats;      // the launch's statistics
  int reg_count = 0;            // kernel registers/thread
  double compile_millis = 0;    // == breakdown.compile_millis
  double transfer_millis = 0;   // == breakdown.transfer_millis
  std::string kernel_listing;   // MiniPTX of the kernel that ran
  launch::LaunchBreakdown breakdown;
};

// The PIV kernels' declared specialization parameters (Table 4.1 analogue).
const launch::ParamTable& PivParams();

// The StageRunner overload lets callers share a runner (and its tiered
// promotion state) across calls; the Context overload uses a private inline
// runner, the exact pre-refactor behavior.
PivGpuResult GpuPiv(launch::StageRunner& runner, const Problem& p, const PivConfig& cfg);
PivGpuResult GpuPiv(vcuda::Context& ctx, const Problem& p, const PivConfig& cfg);

}  // namespace kspec::apps::piv
