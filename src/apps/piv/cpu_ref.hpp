// Reference implementations for PIV: a direct multi-threaded CPU version and
// the FPGA stand-in.
//
// The dissertation compared against Bennis's FPGA implementation (Figure
// 5.9), a deep fixed-function pipeline with deterministic throughput. No
// FPGA exists here, so FpgaModel computes the same answers functionally and
// reports time from an analytic pipeline model: `pipelines` SSD units each
// retiring one mask-pixel-offset per cycle at `clock_mhz` (DESIGN.md records
// this substitution).
#pragma once

#include <vector>

#include "apps/piv/problem.hpp"

namespace kspec::apps::piv {

struct VectorField {
  std::vector<int> best_offset;   // per mask: flat offset index
  std::vector<float> best_score;  // per mask: SSD at the best offset
  double millis = 0;              // wall (CPU) or modeled (FPGA) time
};

// Direct SSD search on the host, threaded over masks.
VectorField CpuPiv(const Problem& p, int num_threads = 4);

struct FpgaModelConfig {
  int pipelines = 4;
  double clock_mhz = 133.0;
};

// Functional FPGA stand-in with analytic timing.
VectorField FpgaModel(const Problem& p, const FpgaModelConfig& cfg = {});

}  // namespace kspec::apps::piv
