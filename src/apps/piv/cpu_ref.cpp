#include "apps/piv/cpu_ref.hpp"

#include <algorithm>
#include <thread>

#include "support/timer.hpp"

namespace kspec::apps::piv {

namespace {

// SSD of the mask at (my,mx) in frame A vs the window displaced by (oy,ox)
// in frame B.
float MaskSsd(const Problem& p, int my, int mx, int oy, int ox) {
  float acc = 0;
  for (int y = 0; y < p.mask_h; ++y) {
    const float* a = &p.frame_a[static_cast<std::size_t>(my + y) * p.img_w + mx];
    const float* b = &p.frame_b[static_cast<std::size_t>(my + y + oy) * p.img_w + (mx + ox)];
    for (int x = 0; x < p.mask_w; ++x) {
      float d = a[x] - b[x];
      acc += d * d;
    }
  }
  return acc;
}

void SearchMasks(const Problem& p, int begin, int end, VectorField* out) {
  const int mx_count = p.masks_x();
  for (int m = begin; m < end; ++m) {
    int my = p.origin_y() + (m / mx_count) * p.stride_y;
    int mx = p.origin_x() + (m % mx_count) * p.stride_x;
    float best = 1e30f;
    int best_idx = 0;
    for (int off = 0; off < p.n_offsets(); ++off) {
      int oy = off / p.search_w() - p.range_y;
      int ox = off % p.search_w() - p.range_x;
      float ssd = MaskSsd(p, my, mx, oy, ox);
      if (ssd < best) {
        best = ssd;
        best_idx = off;
      }
    }
    out->best_offset[m] = best_idx;
    out->best_score[m] = best;
  }
}

}  // namespace

VectorField CpuPiv(const Problem& p, int num_threads) {
  WallTimer timer;
  VectorField out;
  const int n = p.n_masks();
  out.best_offset.assign(n, 0);
  out.best_score.assign(n, 0);

  num_threads = std::max(1, num_threads);
  if (num_threads == 1) {
    SearchMasks(p, 0, n, &out);
  } else {
    std::vector<std::thread> threads;
    int chunk = (n + num_threads - 1) / num_threads;
    for (int t = 0; t < num_threads; ++t) {
      int begin = t * chunk;
      int end = std::min(n, begin + chunk);
      if (begin >= end) break;
      threads.emplace_back(SearchMasks, std::cref(p), begin, end, &out);
    }
    for (auto& th : threads) th.join();
  }
  out.millis = timer.ElapsedMillis();
  return out;
}

VectorField FpgaModel(const Problem& p, const FpgaModelConfig& cfg) {
  // Functionally identical to the single-threaded CPU search.
  VectorField out;
  out.best_offset.assign(p.n_masks(), 0);
  out.best_score.assign(p.n_masks(), 0);
  SearchMasks(p, 0, p.n_masks(), &out);

  // Analytic pipeline throughput: one mask-pixel-offset per cycle per
  // pipeline, plus a per-mask drain overhead.
  const double work = static_cast<double>(p.n_masks()) * p.n_offsets() * p.mask_area();
  const double cycles = work / cfg.pipelines + 64.0 * p.n_masks();
  out.millis = cycles / (cfg.clock_mhz * 1e3);
  return out;
}

}  // namespace kspec::apps::piv
