#include "apps/piv/tune.hpp"

#include <map>
#include <memory>
#include <utility>

#include "launch/spec_builder.hpp"
#include "support/math.hpp"
#include "support/status.hpp"
#include "tune/prepass.hpp"
#include "vgpu/device.hpp"

namespace kspec::apps::piv {

namespace {

// The exact specialization defines GpuPiv would emit for this configuration,
// so reference compiles hit the same module-cache entries real evaluations do.
kcc::CompileOptions RegBlockOpts(const Problem& p, int threads, int rb) {
  launch::SpecBuilder spec(/*specialize=*/true, &PivParams());
  spec.Flag("CT_MASK").Value("K_MASK_W", p.mask_w).Value("K_MASK_AREA", p.mask_area())
      .Flag("CT_SEARCH").Value("K_SEARCH_W", p.search_w()).Value("K_N_OFFSETS", p.n_offsets())
      .Flag("CT_THREADS").Value("K_THREADS", threads)
      .Value("K_RB", rb).Value("K_GUARD", rb * threads == p.mask_area() ? 0 : 1);
  return spec.Build();
}

}  // namespace

std::vector<tune::ParamRange> RegBlockSpace(int max_rb) {
  std::vector<std::int64_t> rb;
  for (int r = 1; r <= max_rb; ++r) rb.push_back(r);
  return {{"threads", {32, 64, 128, 256}}, {"rb", std::move(rb)}};
}

tune::EvalFn RegBlockEval(vcuda::Context& ctx, const Problem& p) {
  return [ctx = &ctx, p = &p](const tune::Config& c) -> double {
    PivConfig cfg;
    cfg.variant = Variant::kRegBlock;
    cfg.specialize = true;
    cfg.threads = static_cast<int>(c.at("threads"));
    cfg.rb = static_cast<int>(c.at("rb"));
    return GpuPiv(*ctx, *p, cfg).stats.sim_millis;
  };
}

tune::PruneFn RegBlockPrune(vcuda::Context& ctx, const Problem& p) {
  const vgpu::DeviceProfile dev = ctx.device();
  // Register counts per (threads, rb), read from MiniPTX on first use. The
  // map is shared across copies of the returned std::function.
  auto reg_memo = std::make_shared<std::map<std::pair<int, int>, unsigned>>();

  tune::ResourceFn resources = [ctx = &ctx, p = &p, dev, reg_memo](const tune::Config& c)
      -> std::optional<tune::ResourceEstimate> {
    const auto threads = c.at("threads");
    const auto rb = c.at("rb");
    // Structural screens mirroring GpuPiv's own admission.
    if (threads < 32 || threads > 256 || !IsPow2(static_cast<std::uint64_t>(threads))) {
      return std::nullopt;
    }
    if (rb * threads < p->mask_area()) return std::nullopt;  // uncoverable mask

    tune::ResourceEstimate est;
    est.threads = static_cast<unsigned>(threads);
    est.smem_per_block = est.threads * 4;  // pivRegBlock: __shared float red[NTHREADS]

    // Registers can only decide feasibility when even the device's per-thread
    // maximum would zero out occupancy at this block size — for every other
    // configuration the answer is already "launchable" and the MiniPTX count
    // is not worth a compile.
    est.regs_per_thread = 1;
    if (vgpu::ComputeOccupancy(dev, vgpu::Dim3(est.threads), dev.max_regs_per_thread,
                               est.smem_per_block)
            .blocks_per_sm > 0) {
      return est;
    }
    auto key = std::make_pair(static_cast<int>(threads), static_cast<int>(rb));
    auto it = reg_memo->find(key);
    if (it == reg_memo->end()) {
      auto mod = ctx->LoadModule(KernelSource(Variant::kRegBlock),
                                 RegBlockOpts(*p, key.first, key.second));
      it = reg_memo
               ->emplace(key, static_cast<unsigned>(
                                  mod->GetKernel(KernelName(Variant::kRegBlock)).stats.reg_count))
               .first;
    }
    est.regs_per_thread = it->second;
    return est;
  };
  return tune::OccupancyPrune(dev, std::move(resources));
}

std::string RegBlockCacheKey(const vcuda::Context& ctx, const Problem& p) {
  // The signature covers exactly the shape the kernel specializes on (mask
  // and search dimensions); the mask *count* only scales the launch grid and
  // produces the same binary, so same-shape problems share the tuned entry.
  return tune::TuningCache::MakeKey(
      "piv/regblock", ctx.device().name,
      "mask" + std::to_string(p.mask_h) + "x" + std::to_string(p.mask_w) + "/search" +
          std::to_string(p.search_h()) + "x" + std::to_string(p.search_w()));
}

PivConfig TunedRegBlock(vcuda::Context& ctx, const Problem& p, tune::TuningCache* cache,
                        tune::TuneResult* result, tune::PredictiveOptions opts) {
  const std::string key = RegBlockCacheKey(ctx, p);
  auto to_config = [](const tune::Config& c) {
    PivConfig cfg;
    cfg.variant = Variant::kRegBlock;
    cfg.specialize = true;
    cfg.threads = static_cast<int>(c.at("threads"));
    cfg.rb = static_cast<int>(c.at("rb"));
    return cfg;
  };

  if (cache) {
    if (std::optional<tune::Config> hit = cache->Lookup(key)) {
      if (result) {
        *result = tune::TuneResult{};
        result->best = *hit;
        result->status = tune::TuneStatus::kOk;
        result->cache_hit = true;
      }
      return to_config(*hit);
    }
  }

  if (!opts.prune) opts.prune = RegBlockPrune(ctx, p);
  tune::TuneResult r = tune::PredictiveSearch(RegBlockSpace(), RegBlockEval(ctx, p), opts);
  if (!r.ok()) throw Error("piv autotune: no feasible (threads, rb) configuration for " + key);
  if (cache) cache->Store(key, r.best);
  if (result) *result = r;
  return to_config(r.best);
}

}  // namespace kspec::apps::piv
