// Autotuning wiring for the template matcher: the (threads, tile_h, tile_w)
// implementation-parameter space, its evaluator, its static feasibility
// pre-pass, and a cache-first entry point mirroring apps/piv/tune.hpp.
#pragma once

#include <string>
#include <vector>

#include "apps/matching/gpu.hpp"
#include "apps/matching/problem.hpp"
#include "tune/tuner.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec::apps::matching {

// The matcher tuning space. The thread axis deliberately includes 1024 —
// legal on neither the kernels' reduction scratch nor (for the C1060) the
// device — so the pre-pass has real work on every device.
std::vector<tune::ParamRange> MatcherSpace();

// Measures one configuration: run the four-stage pipeline, return the
// summed simulated ms. Throws (-> skipped) on configurations GpuMatch
// rejects.
tune::EvalFn MatcherEval(vcuda::Context& ctx, const Problem& p);

// Static pre-pass: the matcher's structural admission (power-of-two thread
// counts within the reduction scratch, non-degenerate tiling) plus the
// occupancy screen over the pipeline's hungriest stages — the tiled
// numerator (shared tile of tile_area floats) and the score/peak reduction
// (two scratch arrays of `threads` entries). The returned callable borrows
// `ctx` and `p`; both must outlive it.
tune::PruneFn MatcherPrune(vcuda::Context& ctx, const Problem& p);

// (kernel, device, problem-geometry) key for the persistent TuningCache.
std::string MatcherCacheKey(const vcuda::Context& ctx, const Problem& p);

// Cache-first autotuned configuration; see piv::TunedRegBlock for the
// contract. Throws Error when the space holds no feasible configuration.
MatcherConfig TunedMatcher(vcuda::Context& ctx, const Problem& p,
                           tune::TuningCache* cache = nullptr,
                           tune::TuneResult* result = nullptr,
                           tune::PredictiveOptions opts = {});

}  // namespace kspec::apps::matching
