// Frame-sequence driver for template matching (Section 5.1.3.4, "Runtime
// Operation").
//
// The clinical application processed image sequences: per frame, the same
// template is matched against the frame's region of interest, and the found
// shift tracks the anatomy over time. Specialization's run-time cost
// amortizes exactly here: the kernels are compiled (per template/shift
// geometry) once when the first frame arrives, and every later frame reuses
// the cached binaries — only data moves.
#pragma once

#include <vector>

#include "apps/matching/gpu.hpp"
#include "apps/matching/problem.hpp"

namespace kspec::apps::matching {

struct SequenceProblem {
  std::string name;
  int tpl_h = 0, tpl_w = 0;
  int shift_h = 0, shift_w = 0;
  int n_frames = 0;

  // Per frame: a full ROI plus the planted shift (the template drifts along
  // a deterministic path so tracking is verifiable).
  std::vector<std::vector<float>> frames;
  std::vector<float> tpl;
  std::vector<int> true_sy, true_sx;

  int roi_h() const { return tpl_h + shift_h - 1; }
  int roi_w() const { return tpl_w + shift_w - 1; }
  int n_shifts() const { return shift_h * shift_w; }
};

SequenceProblem GenerateSequence(std::string name, int tpl_h, int tpl_w, int shift_h,
                                 int shift_w, int n_frames, std::uint64_t seed);

struct SequenceResult {
  std::vector<int> best_idx;     // per frame
  double sim_millis = 0;         // kernels, all frames
  double transfer_millis = 0;    // modeled frame uploads
  std::size_t compiles = 0;      // cold compilations over the whole sequence
  std::size_t cache_hits = 0;
};

// Processes every frame with the given configuration, reusing device buffers
// and cached kernels across frames.
SequenceResult RunSequence(vcuda::Context& ctx, const SequenceProblem& seq,
                           const MatcherConfig& cfg);

}  // namespace kspec::apps::matching
