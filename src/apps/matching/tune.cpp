#include "apps/matching/tune.hpp"

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "apps/matching/kernels.hpp"
#include "launch/spec_builder.hpp"
#include "support/math.hpp"
#include "support/status.hpp"
#include "tune/prepass.hpp"
#include "vgpu/device.hpp"

namespace kspec::apps::matching {

namespace {

// Mirrors CommonSpec in gpu.cpp so reference compiles hit the same
// module-cache entries real evaluations do.
launch::SpecBuilder CommonSpec(const Problem& p, int threads) {
  launch::SpecBuilder spec(/*specialize=*/true, &MatcherParams());
  spec.Flag("CT_SHIFT")
      .Value("K_SHIFT_W", p.shift_w)
      .Value("K_N_SHIFTS", p.n_shifts())
      .Flag("CT_THREADS")
      .Value("K_THREADS", threads);
  return spec;
}

// Per-stage register counts, read from MiniPTX on first use and shared
// across copies of the PruneFn.
using RegMemo = std::map<std::string, unsigned>;

// Screens one stage launch: no compile at all when even the device's
// per-thread register maximum keeps the launch admissible; otherwise the
// stage is reference-compiled (memoized) and judged on its exact count.
bool StageRejected(vcuda::Context& ctx, const vgpu::DeviceProfile& dev, RegMemo& memo,
                   const std::string& memo_key, const char* source, const char* kernel,
                   const kcc::CompileOptions& opts, unsigned threads, unsigned smem) {
  tune::ResourceEstimate est{threads, 1, smem};
  if (!tune::AdmitsLaunch(dev, est)) return true;  // regs irrelevant
  est.regs_per_thread = dev.max_regs_per_thread;
  if (tune::AdmitsLaunch(dev, est)) return false;  // no register count can sink it
  auto it = memo.find(memo_key);
  if (it == memo.end()) {
    auto mod = ctx.LoadModule(source, opts);
    it = memo.emplace(memo_key,
                      static_cast<unsigned>(mod->GetKernel(kernel).stats.reg_count))
             .first;
  }
  est.regs_per_thread = it->second;
  return !tune::AdmitsLaunch(dev, est);
}

}  // namespace

std::vector<tune::ParamRange> MatcherSpace() {
  return {{"threads", {32, 64, 128, 256, 512, 1024}},
          {"tile_h", {2, 4, 6, 8, 12, 16}},
          {"tile_w", {2, 4, 6, 8, 12, 16}}};
}

tune::EvalFn MatcherEval(vcuda::Context& ctx, const Problem& p) {
  return [ctx = &ctx, p = &p](const tune::Config& c) -> double {
    MatcherConfig cfg;
    cfg.specialize = true;
    cfg.threads = static_cast<int>(c.at("threads"));
    cfg.tile_h = static_cast<int>(c.at("tile_h"));
    cfg.tile_w = static_cast<int>(c.at("tile_w"));
    return GpuMatch(*ctx, *p, cfg).sim_millis;
  };
}

tune::PruneFn MatcherPrune(vcuda::Context& ctx, const Problem& p) {
  const vgpu::DeviceProfile dev = ctx.device();
  auto memo = std::make_shared<RegMemo>();

  return [ctx = &ctx, p = &p, dev, memo](const tune::Config& c) -> bool {
    const auto threads = c.at("threads");
    const int tile_h = static_cast<int>(c.at("tile_h"));
    const int tile_w = static_cast<int>(c.at("tile_w"));
    // Structural screens mirroring GpuMatch's own admission: power-of-two
    // block for the reduction, the scratch allocation ceiling, and a tiling
    // that covers the template with at least one full row or column.
    if (threads < 1 || !IsPow2(static_cast<std::uint64_t>(threads)) || threads > 512) {
      return true;
    }
    if (p->tpl_h / tile_h == 0 && p->tpl_w / tile_w == 0) return true;  // degenerate tiling
    const unsigned t = static_cast<unsigned>(threads);

    // Every stage of the pipeline must launch; screen each with its exact
    // specialization. Stage 1 runs one launch per tile-region geometry.
    MatcherConfig mc;
    mc.specialize = true;
    mc.threads = static_cast<int>(threads);
    mc.tile_h = tile_h;
    mc.tile_w = tile_w;
    int total_tiles = 0;
    for (const TileRegion& r : MakeRegions(*p, mc)) {
      total_tiles += r.tiles();
      launch::SpecBuilder spec = CommonSpec(*p, mc.threads);
      spec.Flag("CT_TILE").Value("K_TILE_H", r.th).Value("K_TILE_W", r.tw);
      const std::string key = "num/" + std::to_string(threads) + "/" + std::to_string(r.th) +
                              "x" + std::to_string(r.tw);
      const unsigned smem = static_cast<unsigned>(r.th * r.tw) * 4;  // shared tile
      if (StageRejected(*ctx, dev, *memo, key, kNumeratorSource, "numeratorTiles",
                        spec.Build(), t, smem)) {
        return true;
      }
    }
    {
      launch::SpecBuilder spec = CommonSpec(*p, mc.threads);
      spec.Flag("CT_TEMPLATE").Value("K_TPL_H", p->tpl_h).Value("K_TPL_W", p->tpl_w);
      if (StageRejected(*ctx, dev, *memo, "stats/" + std::to_string(threads),
                        kWindowStatsSource, "windowStats", spec.Build(), t, /*smem=*/0)) {
        return true;
      }
    }
    {
      launch::SpecBuilder spec = CommonSpec(*p, mc.threads);
      // scorePeak: __shared float sVal[K_THREADS] + __shared int sIdx[K_THREADS].
      if (StageRejected(*ctx, dev, *memo, "peak/" + std::to_string(threads),
                        kScorePeakSource, "scorePeak", spec.Build(), t, t * 8)) {
        return true;
      }
    }
    {
      launch::SpecBuilder spec = CommonSpec(*p, mc.threads);
      spec.Flag("CT_SUM").Value("K_N_TILES", total_tiles).Reuse("K_N_SHIFTS");
      if (StageRejected(*ctx, dev, *memo,
                        "sum/" + std::to_string(threads) + "/" + std::to_string(total_tiles),
                        kSummationSource, "sumPartials", spec.Build(), t, /*smem=*/0)) {
        return true;
      }
    }
    return false;
  };
}

std::string MatcherCacheKey(const vcuda::Context& ctx, const Problem& p) {
  return tune::TuningCache::MakeKey(
      "matching/pipeline", ctx.device().name,
      "tpl" + std::to_string(p.tpl_h) + "x" + std::to_string(p.tpl_w) + "/shift" +
          std::to_string(p.shift_h) + "x" + std::to_string(p.shift_w));
}

MatcherConfig TunedMatcher(vcuda::Context& ctx, const Problem& p, tune::TuningCache* cache,
                           tune::TuneResult* result, tune::PredictiveOptions opts) {
  const std::string key = MatcherCacheKey(ctx, p);
  auto to_config = [](const tune::Config& c) {
    MatcherConfig cfg;
    cfg.specialize = true;
    cfg.threads = static_cast<int>(c.at("threads"));
    cfg.tile_h = static_cast<int>(c.at("tile_h"));
    cfg.tile_w = static_cast<int>(c.at("tile_w"));
    return cfg;
  };

  if (cache) {
    if (std::optional<tune::Config> hit = cache->Lookup(key)) {
      if (result) {
        *result = tune::TuneResult{};
        result->best = *hit;
        result->status = tune::TuneStatus::kOk;
        result->cache_hit = true;
      }
      return to_config(*hit);
    }
  }

  if (!opts.prune) opts.prune = MatcherPrune(ctx, p);
  tune::TuneResult r = tune::PredictiveSearch(MatcherSpace(), MatcherEval(ctx, p), opts);
  if (!r.ok()) {
    throw Error("matching autotune: no feasible (threads, tile) configuration for " + key);
  }
  if (cache) cache->Store(key, r.best);
  if (result) *result = r;
  return to_config(r.best);
}

}  // namespace kspec::apps::matching
