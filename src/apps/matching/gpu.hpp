// GPU template matcher (Section 5.1.3): four-stage pipeline over the shared
// launch layer.
//
// Stage 1 computes tiled numerator partial sums, launched once per tile
// region (main / right-edge / bottom-edge / corner, Figure 5.4) so that a
// specialized build compiles a dedicated kernel per tile geometry — the
// paper's "variable tile sizes via kernel specialization" (Section 5.1.3.2,
// Table 5.2). Stages 2-4 sum partials, compute per-shift window statistics,
// and produce normalized scores plus the peak via an in-block reduction.
#pragma once

#include <vector>

#include "apps/matching/problem.hpp"
#include "launch/spec_builder.hpp"
#include "launch/stage_runner.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/launch.hpp"

namespace kspec::apps::matching {

struct MatcherConfig {
  int tile_h = 8;
  int tile_w = 8;
  int threads = 128;       // per block; power of two required
  bool specialize = true;  // SK when true, fully run-time evaluated when false
};

// Per-stage statistics are the launch layer's unified record.
using StageStats = launch::StageRecord;

struct MatchResult {
  std::vector<float> scores;
  int best_idx = -1;
  float best_score = 0;
  double sim_millis = 0;       // == breakdown.sim_millis
  double transfer_millis = 0;  // == breakdown.transfer_millis
  launch::LaunchBreakdown breakdown;  // compile/transfer/sim + per-stage records
};

// The matcher's declared specialization parameters (Table 4.1 analogue).
const launch::ParamTable& MatcherParams();

// The tiling decomposition stage 1 launches over. Exposed for testing.
struct TileRegion {
  int th, tw;        // tile dimensions
  int off_y, off_x;  // region origin within the template
  int tiles_y, tiles_x;
  int tiles() const { return tiles_y * tiles_x; }
};
std::vector<TileRegion> MakeRegions(const Problem& p, const MatcherConfig& cfg);

// Runs the full pipeline for one problem. Throws on invalid configurations
// (e.g. RE tile larger than the fixed worst-case shared allocation — the
// exact adaptability ceiling the paper's OpenCV example suffers from).
// The StageRunner overload lets callers share a runner (and its tiered
// promotion state) across calls; the Context overload uses a private inline
// runner, the exact pre-refactor behavior.
MatchResult GpuMatch(launch::StageRunner& runner, const Problem& p, const MatcherConfig& cfg);
MatchResult GpuMatch(vcuda::Context& ctx, const Problem& p, const MatcherConfig& cfg);

}  // namespace kspec::apps::matching
