// GPU template matcher (Section 5.1.3): four-stage pipeline over vcuda.
//
// Stage 1 computes tiled numerator partial sums, launched once per tile
// region (main / right-edge / bottom-edge / corner, Figure 5.4) so that a
// specialized build compiles a dedicated kernel per tile geometry — the
// paper's "variable tile sizes via kernel specialization" (Section 5.1.3.2,
// Table 5.2). Stages 2-4 sum partials, compute per-shift window statistics,
// and produce normalized scores plus the peak via an in-block reduction.
#pragma once

#include <vector>

#include "apps/matching/problem.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/launch.hpp"

namespace kspec::apps::matching {

struct MatcherConfig {
  int tile_h = 8;
  int tile_w = 8;
  int threads = 128;       // per block; power of two required
  bool specialize = true;  // SK when true, fully run-time evaluated when false
};

struct StageStats {
  std::string name;
  vgpu::LaunchStats launch;   // last launch of the stage
  int reg_count = 0;
  double sim_millis = 0;      // accumulated over the stage's launches
};

struct MatchResult {
  std::vector<float> scores;
  int best_idx = -1;
  float best_score = 0;
  double sim_millis = 0;       // total simulated GPU time
  double transfer_millis = 0;  // modeled host<->device transfer time
  std::vector<StageStats> stages;
};

// Runs the full pipeline for one problem. Throws on invalid configurations
// (e.g. RE tile larger than the fixed worst-case shared allocation — the
// exact adaptability ceiling the paper's OpenCV example suffers from).
MatchResult GpuMatch(vcuda::Context& ctx, const Problem& p, const MatcherConfig& cfg);

}  // namespace kspec::apps::matching
