#include "apps/matching/sequence.hpp"

#include <algorithm>

#include "support/rng.hpp"
#include "support/status.hpp"

namespace kspec::apps::matching {

SequenceProblem GenerateSequence(std::string name, int tpl_h, int tpl_w, int shift_h,
                                 int shift_w, int n_frames, std::uint64_t seed) {
  KSPEC_CHECK_MSG(n_frames > 0, "need at least one frame");
  SequenceProblem seq;
  seq.name = std::move(name);
  seq.tpl_h = tpl_h;
  seq.tpl_w = tpl_w;
  seq.shift_h = shift_h;
  seq.shift_w = shift_w;
  seq.n_frames = n_frames;

  Rng rng(seed);
  const int rh = seq.roi_h(), rw = seq.roi_w();

  // The template itself: a fixed random patch.
  seq.tpl.resize(static_cast<std::size_t>(tpl_h) * tpl_w);
  rng.FillUniform(seq.tpl, 0.0f, 1.0f);

  // Per frame: background noise with the template composited at a drifting
  // shift (a bounded random walk).
  int sy = shift_h / 2, sx = shift_w / 2;
  for (int f = 0; f < n_frames; ++f) {
    sy = std::clamp(sy + static_cast<int>(rng.NextInt(-1, 1)), 0, shift_h - 1);
    sx = std::clamp(sx + static_cast<int>(rng.NextInt(-1, 1)), 0, shift_w - 1);
    seq.true_sy.push_back(sy);
    seq.true_sx.push_back(sx);

    std::vector<float> roi(static_cast<std::size_t>(rh) * rw);
    rng.FillUniform(roi, 0.0f, 1.0f);
    for (int y = 0; y < tpl_h; ++y) {
      for (int x = 0; x < tpl_w; ++x) {
        roi[static_cast<std::size_t>(y + sy) * rw + (x + sx)] =
            seq.tpl[static_cast<std::size_t>(y) * tpl_w + x] +
            0.02f * (rng.NextFloat() - 0.5f);
      }
    }
    seq.frames.push_back(std::move(roi));
  }
  return seq;
}

SequenceResult RunSequence(vcuda::Context& ctx, const SequenceProblem& seq,
                           const MatcherConfig& cfg) {
  SequenceResult out;
  const std::size_t misses0 = ctx.cache_stats().misses;
  const std::size_t hits0 = ctx.cache_stats().hits;

  // Reuse the single-frame pipeline per frame; the context-level module cache
  // makes every post-first-frame compile a hit, which is the point being
  // demonstrated (Section 4.3 amortization).
  Problem frame_problem;
  frame_problem.name = seq.name;
  frame_problem.tpl_h = seq.tpl_h;
  frame_problem.tpl_w = seq.tpl_w;
  frame_problem.shift_h = seq.shift_h;
  frame_problem.shift_w = seq.shift_w;
  frame_problem.tpl = seq.tpl;

  for (int f = 0; f < seq.n_frames; ++f) {
    frame_problem.roi = seq.frames[f];
    frame_problem.true_sy = seq.true_sy[f];
    frame_problem.true_sx = seq.true_sx[f];
    MatchResult r = GpuMatch(ctx, frame_problem, cfg);
    out.best_idx.push_back(r.best_idx);
    out.sim_millis += r.sim_millis;
    out.transfer_millis += r.transfer_millis;
  }
  out.compiles = ctx.cache_stats().misses - misses0;
  out.cache_hits = ctx.cache_stats().hits - hits0;
  return out;
}

}  // namespace kspec::apps::matching
