#include "apps/matching/cpu_ref.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "support/timer.hpp"

namespace kspec::apps::matching {

float TemplateMean(const Problem& p) {
  double sum = 0;
  for (float v : p.tpl) sum += v;
  return static_cast<float>(sum / static_cast<double>(p.tpl.size()));
}

float TemplateDenom(const Problem& p) {
  float mean = TemplateMean(p);
  double acc = 0;
  for (float v : p.tpl) {
    double d = v - mean;
    acc += d * d;
  }
  return static_cast<float>(acc);
}

CpuResult CpuMatch(const Problem& p, int num_threads) {
  WallTimer timer;
  CpuResult out;
  const int n_shifts = p.n_shifts();
  out.scores.assign(n_shifts, 0.0f);

  const float mean = TemplateMean(p);
  const float tpl_denom = TemplateDenom(p);
  const float inv_n = 1.0f / static_cast<float>(p.tpl_h * p.tpl_w);
  const int rw = p.roi_w();

  auto worker = [&](int begin, int end) {
    for (int shift = begin; shift < end; ++shift) {
      int sy = shift / p.shift_w;
      int sx = shift % p.shift_w;
      float num = 0, s = 0, s2 = 0;
      for (int y = 0; y < p.tpl_h; ++y) {
        const float* trow = &p.tpl[static_cast<std::size_t>(y) * p.tpl_w];
        const float* irow = &p.roi[static_cast<std::size_t>(y + sy) * rw + sx];
        for (int x = 0; x < p.tpl_w; ++x) {
          float tv = trow[x] - mean;
          float iv = irow[x];
          num += tv * iv;
          s += iv;
          s2 += iv * iv;
        }
      }
      float var = s2 - s * s * inv_n;
      float denom = std::sqrt(std::max(var, 0.0f) * tpl_denom);
      out.scores[shift] = num / std::max(denom, 1e-12f);
    }
  };

  num_threads = std::max(1, num_threads);
  if (num_threads == 1) {
    worker(0, n_shifts);
  } else {
    std::vector<std::thread> threads;
    int chunk = (n_shifts + num_threads - 1) / num_threads;
    for (int t = 0; t < num_threads; ++t) {
      int begin = t * chunk;
      int end = std::min(n_shifts, begin + chunk);
      if (begin >= end) break;
      threads.emplace_back(worker, begin, end);
    }
    for (auto& th : threads) th.join();
  }

  auto it = std::max_element(out.scores.begin(), out.scores.end());
  out.best_idx = static_cast<int>(it - out.scores.begin());
  out.best_score = *it;
  out.wall_millis = timer.ElapsedMillis();
  return out;
}

}  // namespace kspec::apps::matching
