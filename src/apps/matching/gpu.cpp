#include "apps/matching/gpu.hpp"

#include <algorithm>
#include <cmath>

#include "apps/matching/cpu_ref.hpp"
#include "apps/matching/kernels.hpp"
#include "support/math.hpp"
#include "support/status.hpp"
#include "support/str.hpp"

namespace kspec::apps::matching {

namespace {

using vcuda::ArgPack;
using vgpu::Dim3;

struct TileRegion {
  int th, tw;       // tile dimensions
  int off_y, off_x; // region origin within the template
  int tiles_y, tiles_x;
  int tiles() const { return tiles_y * tiles_x; }
};

std::vector<TileRegion> MakeRegions(const Problem& p, const MatcherConfig& cfg) {
  const int mh = p.tpl_h / cfg.tile_h;
  const int mw = p.tpl_w / cfg.tile_w;
  const int rem_h = p.tpl_h % cfg.tile_h;
  const int rem_w = p.tpl_w % cfg.tile_w;
  std::vector<TileRegion> regions;
  if (mh > 0 && mw > 0) regions.push_back({cfg.tile_h, cfg.tile_w, 0, 0, mh, mw});
  if (rem_w > 0 && mh > 0) regions.push_back({cfg.tile_h, rem_w, 0, mw * cfg.tile_w, mh, 1});
  if (rem_h > 0 && mw > 0) regions.push_back({rem_h, cfg.tile_w, mh * cfg.tile_h, 0, 1, mw});
  if (rem_h > 0 && rem_w > 0) {
    regions.push_back({rem_h, rem_w, mh * cfg.tile_h, mw * cfg.tile_w, 1, 1});
  }
  KSPEC_CHECK_MSG(!regions.empty(), "template smaller than a single tile row/column");
  return regions;
}

kcc::CompileOptions CommonDefines(const Problem& p, const MatcherConfig& cfg) {
  kcc::CompileOptions opts;
  if (!cfg.specialize) return opts;
  opts.defines["CT_SHIFT"] = "1";
  opts.defines["K_SHIFT_W"] = std::to_string(p.shift_w);
  opts.defines["K_N_SHIFTS"] = std::to_string(p.n_shifts());
  opts.defines["CT_THREADS"] = "1";
  opts.defines["K_THREADS"] = std::to_string(cfg.threads);
  return opts;
}

}  // namespace

MatchResult GpuMatch(vcuda::Context& ctx, const Problem& p, const MatcherConfig& cfg) {
  KSPEC_CHECK_MSG(IsPow2(static_cast<std::uint64_t>(cfg.threads)),
                  "thread count must be a power of two (in-block reduction)");
  KSPEC_CHECK_MSG(cfg.threads <= 512, "thread count above reduction scratch allocation");
  if (!cfg.specialize && cfg.tile_h * cfg.tile_w > 1024) {
    throw DeviceError(
        "run-time evaluated numerator kernel caps tiles at 1024 pixels (fixed shared "
        "allocation); specialize the kernel to lift the ceiling");
  }

  MatchResult out;
  const int n_shifts = p.n_shifts();
  const int n_blocks_shift = static_cast<int>(CeilDiv(n_shifts, cfg.threads));

  // ---- host-side template preparation (mean subtraction, Figure 5.3) ----
  const float mean = TemplateMean(p);
  std::vector<float> tplc(p.tpl.size());
  for (std::size_t i = 0; i < tplc.size(); ++i) tplc[i] = p.tpl[i] - mean;
  const float tpl_denom = TemplateDenom(p);
  const float inv_n = 1.0f / static_cast<float>(p.tpl_h * p.tpl_w);

  // ---- device buffers ----
  auto d_roi = vcuda::Upload<float>(ctx, std::span<const float>(p.roi));
  auto d_tplc = vcuda::Upload<float>(ctx, std::span<const float>(tplc));
  std::vector<TileRegion> regions = MakeRegions(p, cfg);
  int total_tiles = 0;
  for (const auto& r : regions) total_tiles += r.tiles();

  auto d_partials = ctx.Malloc(static_cast<std::uint64_t>(total_tiles) * n_shifts * sizeof(float));
  auto d_numerators = ctx.Malloc(static_cast<std::uint64_t>(n_shifts) * sizeof(float));
  auto d_sums = ctx.Malloc(static_cast<std::uint64_t>(n_shifts) * sizeof(float));
  auto d_sumsqs = ctx.Malloc(static_cast<std::uint64_t>(n_shifts) * sizeof(float));
  auto d_scores = ctx.Malloc(static_cast<std::uint64_t>(n_shifts) * sizeof(float));
  auto d_block_best = ctx.Malloc(static_cast<std::uint64_t>(n_blocks_shift) * sizeof(float));
  auto d_block_best_idx = ctx.Malloc(static_cast<std::uint64_t>(n_blocks_shift) * sizeof(int));

  // Modeled upload cost (ROI + template).
  out.transfer_millis +=
      0.008 + static_cast<double>((p.roi.size() + tplc.size()) * sizeof(float)) / 6.0e6;

  // ---- stage 1: numerator partials, one launch per tile region ----
  StageStats numerator_stage;
  numerator_stage.name = "numerator";
  int tile_base = 0;
  for (const auto& r : regions) {
    kcc::CompileOptions opts = CommonDefines(p, cfg);
    if (cfg.specialize) {
      opts.defines["CT_TILE"] = "1";
      opts.defines["K_TILE_H"] = std::to_string(r.th);
      opts.defines["K_TILE_W"] = std::to_string(r.tw);
    }
    auto mod = ctx.LoadModule(kNumeratorSource, opts);
    ArgPack args;
    args.Ptr(d_roi).Ptr(d_tplc).Ptr(d_partials)
        .Int(p.roi_w()).Int(p.tpl_w)
        .Int(r.th).Int(r.tw)
        .Int(r.off_y).Int(r.off_x)
        .Int(r.tiles_x).Int(tile_base)
        .Int(p.shift_w).Int(n_shifts);
    auto st = ctx.Launch(*mod, "numeratorTiles",
                         Dim3(static_cast<unsigned>(r.tiles()),
                              static_cast<unsigned>(n_blocks_shift)),
                         Dim3(static_cast<unsigned>(cfg.threads)), args);
    numerator_stage.launch = st;
    numerator_stage.reg_count = mod->GetKernel("numeratorTiles").stats.reg_count;
    numerator_stage.sim_millis += st.sim_millis;
    tile_base += r.tiles();
  }
  out.stages.push_back(numerator_stage);

  // ---- stage 2: sum partials across tiles ----
  {
    kcc::CompileOptions opts = CommonDefines(p, cfg);
    if (cfg.specialize) {
      opts.defines["CT_SUM"] = "1";
      opts.defines["K_N_TILES"] = std::to_string(total_tiles);
      // K_N_SHIFTS already present via CT_SHIFT? The summation kernel uses
      // CT_SUM's K_N_SHIFTS; reuse the common value.
    }
    auto mod = ctx.LoadModule(kSummationSource, opts);
    ArgPack args;
    args.Ptr(d_partials).Ptr(d_numerators).Int(total_tiles).Int(n_shifts);
    auto st = ctx.Launch(*mod, "sumPartials", Dim3(static_cast<unsigned>(n_blocks_shift)),
                         Dim3(static_cast<unsigned>(cfg.threads)), args);
    StageStats stage;
    stage.name = "summation";
    stage.launch = st;
    stage.reg_count = mod->GetKernel("sumPartials").stats.reg_count;
    stage.sim_millis = st.sim_millis;
    out.stages.push_back(stage);
  }

  // ---- stage 3: window statistics ----
  {
    kcc::CompileOptions opts = CommonDefines(p, cfg);
    if (cfg.specialize) {
      opts.defines["CT_TEMPLATE"] = "1";
      opts.defines["K_TPL_H"] = std::to_string(p.tpl_h);
      opts.defines["K_TPL_W"] = std::to_string(p.tpl_w);
    }
    auto mod = ctx.LoadModule(kWindowStatsSource, opts);
    ArgPack args;
    args.Ptr(d_roi).Ptr(d_sums).Ptr(d_sumsqs)
        .Int(p.roi_w()).Int(p.tpl_h).Int(p.tpl_w)
        .Int(p.shift_w).Int(n_shifts);
    auto st = ctx.Launch(*mod, "windowStats", Dim3(static_cast<unsigned>(n_blocks_shift)),
                         Dim3(static_cast<unsigned>(cfg.threads)), args);
    StageStats stage;
    stage.name = "windowStats";
    stage.launch = st;
    stage.reg_count = mod->GetKernel("windowStats").stats.reg_count;
    stage.sim_millis = st.sim_millis;
    out.stages.push_back(stage);
  }

  // ---- stage 4: score + in-block peak reduction ----
  {
    kcc::CompileOptions opts = CommonDefines(p, cfg);
    auto mod = ctx.LoadModule(kScorePeakSource, opts);
    ArgPack args;
    args.Ptr(d_numerators).Ptr(d_sums).Ptr(d_sumsqs)
        .Ptr(d_scores).Ptr(d_block_best).Ptr(d_block_best_idx)
        .Int(n_shifts).Float(tpl_denom).Float(inv_n);
    auto st = ctx.Launch(*mod, "scorePeak", Dim3(static_cast<unsigned>(n_blocks_shift)),
                         Dim3(static_cast<unsigned>(cfg.threads)), args);
    StageStats stage;
    stage.name = "scorePeak";
    stage.launch = st;
    stage.reg_count = mod->GetKernel("scorePeak").stats.reg_count;
    stage.sim_millis = st.sim_millis;
    out.stages.push_back(stage);
  }

  // ---- host-side final reduce over block results ----
  out.scores = vcuda::Download<float>(ctx, d_scores, n_shifts);
  auto best_vals = vcuda::Download<float>(ctx, d_block_best, n_blocks_shift);
  auto best_idxs = vcuda::Download<int>(ctx, d_block_best_idx, n_blocks_shift);
  out.best_idx = -1;
  out.best_score = -1e30f;
  for (int b = 0; b < n_blocks_shift; ++b) {
    if (best_vals[b] > out.best_score) {
      out.best_score = best_vals[b];
      out.best_idx = best_idxs[b];
    }
  }
  out.transfer_millis += 0.008 + static_cast<double>(n_shifts * sizeof(float)) / 6.0e6;

  for (const auto& s : out.stages) out.sim_millis += s.sim_millis;

  ctx.Free(d_roi);
  ctx.Free(d_tplc);
  ctx.Free(d_partials);
  ctx.Free(d_numerators);
  ctx.Free(d_sums);
  ctx.Free(d_sumsqs);
  ctx.Free(d_scores);
  ctx.Free(d_block_best);
  ctx.Free(d_block_best_idx);
  return out;
}

}  // namespace kspec::apps::matching
