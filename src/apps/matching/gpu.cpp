#include "apps/matching/gpu.hpp"

#include <algorithm>
#include <cmath>

#include "apps/matching/cpu_ref.hpp"
#include "apps/matching/kernels.hpp"
#include "support/math.hpp"
#include "support/status.hpp"

namespace kspec::apps::matching {

namespace {

using vcuda::ArgPack;
using vgpu::Dim3;

launch::SpecBuilder CommonSpec(const Problem& p, const MatcherConfig& cfg) {
  launch::SpecBuilder spec(cfg.specialize, &MatcherParams());
  spec.Flag("CT_SHIFT")
      .Value("K_SHIFT_W", p.shift_w)
      .Value("K_N_SHIFTS", p.n_shifts())
      .Flag("CT_THREADS")
      .Value("K_THREADS", cfg.threads);
  return spec;
}

}  // namespace

const launch::ParamTable& MatcherParams() {
  static const launch::ParamTable table = [] {
    launch::ParamTable t("matching");
    t.Flag("CT_SHIFT", "shift-grid geometry fixed at compile time");
    t.Value("K_SHIFT_W", "shift grid width");
    t.Value("K_N_SHIFTS", "total shifts (also read by CT_SUM's kernel)");
    t.Flag("CT_THREADS", "block size fixed at compile time");
    t.Value("K_THREADS", "threads per block");
    t.Flag("CT_TILE", "tile geometry fixed at compile time");
    t.Value("K_TILE_H", "tile height for this region");
    t.Value("K_TILE_W", "tile width for this region");
    t.Flag("CT_SUM", "partial-sum count fixed at compile time");
    t.Value("K_N_TILES", "total tiles across regions");
    t.Flag("CT_TEMPLATE", "template geometry fixed at compile time");
    t.Value("K_TPL_H", "template height");
    t.Value("K_TPL_W", "template width");
    return t;
  }();
  return table;
}

std::vector<TileRegion> MakeRegions(const Problem& p, const MatcherConfig& cfg) {
  const int mh = p.tpl_h / cfg.tile_h;
  const int mw = p.tpl_w / cfg.tile_w;
  // The decomposition needs at least one full tile row or column; a template
  // smaller than a single tile in both dimensions means the tiling (and the
  // per-geometry specialization it drives) is degenerate — reject it.
  KSPEC_CHECK_MSG(mh > 0 || mw > 0, "template smaller than a single tile row/column");
  const int rem_h = p.tpl_h % cfg.tile_h;
  const int rem_w = p.tpl_w % cfg.tile_w;
  std::vector<TileRegion> regions;
  if (mh > 0 && mw > 0) regions.push_back({cfg.tile_h, cfg.tile_w, 0, 0, mh, mw});
  if (rem_w > 0 && mh > 0) regions.push_back({cfg.tile_h, rem_w, 0, mw * cfg.tile_w, mh, 1});
  if (rem_h > 0 && mw > 0) regions.push_back({rem_h, cfg.tile_w, mh * cfg.tile_h, 0, 1, mw});
  if (rem_h > 0 && rem_w > 0) {
    regions.push_back({rem_h, rem_w, mh * cfg.tile_h, mw * cfg.tile_w, 1, 1});
  }
  KSPEC_CHECK_MSG(!regions.empty(), "template smaller than a single tile row/column");
  return regions;
}

MatchResult GpuMatch(launch::StageRunner& runner, const Problem& p, const MatcherConfig& cfg) {
  KSPEC_CHECK_MSG(IsPow2(static_cast<std::uint64_t>(cfg.threads)),
                  "thread count must be a power of two (in-block reduction)");
  KSPEC_CHECK_MSG(cfg.threads <= 512, "thread count above reduction scratch allocation");
  if (!cfg.specialize && cfg.tile_h * cfg.tile_w > 1024) {
    throw DeviceError(
        "run-time evaluated numerator kernel caps tiles at 1024 pixels (fixed shared "
        "allocation); specialize the kernel to lift the ceiling");
  }

  MatchResult out;
  const int n_shifts = p.n_shifts();
  const int n_blocks_shift = static_cast<int>(CeilDiv(n_shifts, cfg.threads));

  // ---- host-side template preparation (mean subtraction, Figure 5.3) ----
  const float mean = TemplateMean(p);
  std::vector<float> tplc(p.tpl.size());
  for (std::size_t i = 0; i < tplc.size(); ++i) tplc[i] = p.tpl[i] - mean;
  const float tpl_denom = TemplateDenom(p);
  const float inv_n = 1.0f / static_cast<float>(p.tpl_h * p.tpl_w);

  // ---- device buffers (RAII: a throw below this point leaks nothing) ----
  auto d_roi = runner.Upload<float>(std::span<const float>(p.roi));
  auto d_tplc = runner.Upload<float>(std::span<const float>(tplc));
  std::vector<TileRegion> regions = MakeRegions(p, cfg);
  int total_tiles = 0;
  for (const auto& r : regions) total_tiles += r.tiles();

  auto d_partials = runner.Alloc<float>(static_cast<std::size_t>(total_tiles) * n_shifts);
  auto d_numerators = runner.Alloc<float>(n_shifts);
  auto d_sums = runner.Alloc<float>(n_shifts);
  auto d_sumsqs = runner.Alloc<float>(n_shifts);
  auto d_scores = runner.Alloc<float>(n_shifts);
  auto d_block_best = runner.Alloc<float>(n_blocks_shift);
  auto d_block_best_idx = runner.Alloc<int>(n_blocks_shift);

  // ---- stage 1: numerator partials, one launch per tile region ----
  int tile_base = 0;
  for (const auto& r : regions) {
    launch::SpecBuilder spec = CommonSpec(p, cfg);
    spec.Flag("CT_TILE").Value("K_TILE_H", r.th).Value("K_TILE_W", r.tw);
    ArgPack args;
    args.Ptr(d_roi.get()).Ptr(d_tplc.get()).Ptr(d_partials.get())
        .Int(p.roi_w()).Int(p.tpl_w)
        .Int(r.th).Int(r.tw)
        .Int(r.off_y).Int(r.off_x)
        .Int(r.tiles_x).Int(tile_base)
        .Int(p.shift_w).Int(n_shifts);
    runner.Run("numerator", kNumeratorSource, spec, "numeratorTiles",
               Dim3(static_cast<unsigned>(r.tiles()), static_cast<unsigned>(n_blocks_shift)),
               Dim3(static_cast<unsigned>(cfg.threads)), args);
    tile_base += r.tiles();
  }

  // ---- stage 2: sum partials across tiles ----
  {
    launch::SpecBuilder spec = CommonSpec(p, cfg);
    spec.Flag("CT_SUM").Value("K_N_TILES", total_tiles).Reuse("K_N_SHIFTS");
    ArgPack args;
    args.Ptr(d_partials.get()).Ptr(d_numerators.get()).Int(total_tiles).Int(n_shifts);
    runner.Run("summation", kSummationSource, spec, "sumPartials",
               Dim3(static_cast<unsigned>(n_blocks_shift)),
               Dim3(static_cast<unsigned>(cfg.threads)), args);
  }

  // ---- stage 3: window statistics ----
  {
    launch::SpecBuilder spec = CommonSpec(p, cfg);
    spec.Flag("CT_TEMPLATE").Value("K_TPL_H", p.tpl_h).Value("K_TPL_W", p.tpl_w);
    ArgPack args;
    args.Ptr(d_roi.get()).Ptr(d_sums.get()).Ptr(d_sumsqs.get())
        .Int(p.roi_w()).Int(p.tpl_h).Int(p.tpl_w)
        .Int(p.shift_w).Int(n_shifts);
    runner.Run("windowStats", kWindowStatsSource, spec, "windowStats",
               Dim3(static_cast<unsigned>(n_blocks_shift)),
               Dim3(static_cast<unsigned>(cfg.threads)), args);
  }

  // ---- stage 4: score + in-block peak reduction ----
  {
    launch::SpecBuilder spec = CommonSpec(p, cfg);
    ArgPack args;
    args.Ptr(d_numerators.get()).Ptr(d_sums.get()).Ptr(d_sumsqs.get())
        .Ptr(d_scores.get()).Ptr(d_block_best.get()).Ptr(d_block_best_idx.get())
        .Int(n_shifts).Float(tpl_denom).Float(inv_n);
    runner.Run("scorePeak", kScorePeakSource, spec, "scorePeak",
               Dim3(static_cast<unsigned>(n_blocks_shift)),
               Dim3(static_cast<unsigned>(cfg.threads)), args);
  }

  // ---- host-side final reduce over block results ----
  out.scores = runner.Download(d_scores);
  auto best_vals = runner.Download(d_block_best);
  auto best_idxs = runner.Download(d_block_best_idx);
  out.best_idx = -1;
  out.best_score = -1e30f;
  for (int b = 0; b < n_blocks_shift; ++b) {
    if (best_vals[b] > out.best_score) {
      out.best_score = best_vals[b];
      out.best_idx = best_idxs[b];
    }
  }

  out.breakdown = runner.TakeBreakdown();
  out.sim_millis = out.breakdown.sim_millis;
  out.transfer_millis = out.breakdown.transfer_millis;
  return out;
}

MatchResult GpuMatch(vcuda::Context& ctx, const Problem& p, const MatcherConfig& cfg) {
  launch::StageRunner runner(ctx);
  return GpuMatch(runner, p, cfg);
}

}  // namespace kspec::apps::matching
