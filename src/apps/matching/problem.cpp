#include "apps/matching/problem.hpp"

#include "support/rng.hpp"
#include "support/status.hpp"

namespace kspec::apps::matching {

Problem Generate(std::string name, int tpl_h, int tpl_w, int shift_h, int shift_w,
                 std::uint64_t seed) {
  KSPEC_CHECK_MSG(tpl_h > 0 && tpl_w > 0 && shift_h > 0 && shift_w > 0, "bad problem geometry");
  Problem p;
  p.name = std::move(name);
  p.tpl_h = tpl_h;
  p.tpl_w = tpl_w;
  p.shift_h = shift_h;
  p.shift_w = shift_w;
  p.seed = seed;

  Rng rng(seed);
  const int rh = p.roi_h(), rw = p.roi_w();
  p.roi.resize(static_cast<std::size_t>(rh) * rw);
  // Smooth-ish texture: white noise plus a low-frequency ramp so correlation
  // surfaces are non-degenerate.
  for (int y = 0; y < rh; ++y) {
    for (int x = 0; x < rw; ++x) {
      float base = 0.35f * (static_cast<float>(y) / rh) + 0.2f * (static_cast<float>(x) / rw);
      p.roi[static_cast<std::size_t>(y) * rw + x] = base + rng.NextFloat();
    }
  }

  p.true_sy = static_cast<int>(rng.NextInt(0, shift_h - 1));
  p.true_sx = static_cast<int>(rng.NextInt(0, shift_w - 1));

  // Template = ROI window at the planted shift + small noise.
  p.tpl.resize(static_cast<std::size_t>(tpl_h) * tpl_w);
  for (int y = 0; y < tpl_h; ++y) {
    for (int x = 0; x < tpl_w; ++x) {
      float v = p.roi[static_cast<std::size_t>(y + p.true_sy) * rw + (x + p.true_sx)];
      p.tpl[static_cast<std::size_t>(y) * tpl_w + x] = v + 0.02f * (rng.NextFloat() - 0.5f);
    }
  }
  return p;
}

std::vector<Problem> PatientSets() {
  // Table 5.1 geometry scaled ~1/5 linearly; the patients differ in template
  // aspect and shift-region size the way the clinical sets did.
  return {
      Generate("patient1", 24, 20, 12, 12, 101),
      Generate("patient2", 32, 24, 10, 14, 202),
      Generate("patient3", 16, 16, 16, 16, 303),
      Generate("patient4", 31, 23, 8, 10, 404),
  };
}

}  // namespace kspec::apps::matching
