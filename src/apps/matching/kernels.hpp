// Kernel-C sources for the template matching pipeline (Section 5.1.3).
//
// Every kernel follows the dissertation's Appendix B pattern: a single source
// compiles either run-time evaluated (no CT_* macros; parameters arrive as
// kernel arguments, shared arrays use fixed worst-case allocations) or
// specialized (CT_* macros defined; loop bounds become constants, loops
// unroll, div/mod by tile widths strength-reduce, shared allocations shrink
// to exact sizes).
#pragma once

namespace kspec::apps::matching {

// Stage 1 — tiled numerator (Sections 5.1.3.1/5.1.3.2, Figures 5.4-5.6).
// One block processes one template tile against THREADS shift offsets; each
// thread accumulates the tile's contribution to a single shift offset. Edge
// tiles of different dimensions use separate launches (specialized builds
// compile one kernel per tile geometry, Table 5.2).
inline constexpr const char* kNumeratorSource = R"KC(
#ifdef CT_TILE
#define TILE_H K_TILE_H
#define TILE_W K_TILE_W
#define TILE_ALLOC (K_TILE_H * K_TILE_W)
#else
#define TILE_H tileH
#define TILE_W tileW
#define TILE_ALLOC 1024
#endif

#ifdef CT_SHIFT
#define SHIFT_W K_SHIFT_W
#define N_SHIFTS K_N_SHIFTS
#else
#define SHIFT_W shiftW
#define N_SHIFTS nShifts
#endif

#ifdef CT_THREADS
#define NTHREADS K_THREADS
#else
#define NTHREADS blockDim.x
#endif

__kernel void numeratorTiles(float* roi, float* tplc, float* partials,
                             int roiW, int tplW,
                             int tileH, int tileW,
                             int regionOffY, int regionOffX,
                             int tilesX, int tileBase,
                             int shiftW, int nShifts) {
  __shared float tile[TILE_ALLOC];

  int tileIdx = blockIdx.x;
  int tileY = tileIdx / tilesX;
  int tileX = tileIdx % tilesX;
  int baseY = regionOffY + tileY * TILE_H;
  int baseX = regionOffX + tileX * TILE_W;

  // Cooperative load of the mean-subtracted template tile into shared memory.
  int tid = threadIdx.x;
  for (int i = tid; i < TILE_H * TILE_W; i += NTHREADS) {
    int ty = i / TILE_W;
    int tx = i % TILE_W;
    tile[i] = tplc[(baseY + ty) * tplW + (baseX + tx)];
  }
  __syncthreads();

  int shift = blockIdx.y * NTHREADS + tid;
  if (shift < N_SHIFTS) {
    int sy = shift / SHIFT_W;
    int sx = shift % SHIFT_W;
    float acc = 0.0f;
    for (int ty = 0; ty < TILE_H; ty++) {
      for (int tx = 0; tx < TILE_W; tx++) {
        acc += tile[ty * TILE_W + tx] * roi[(baseY + ty + sy) * roiW + (baseX + tx + sx)];
      }
    }
    partials[(tileBase + tileIdx) * N_SHIFTS + shift] = acc;
  }
}
)KC";

// Stage 2 — partial-sum summation across tiles (the "tiled summation kernel"
// of Table 6.13). Specialization fixes the tile count so the loop unrolls.
inline constexpr const char* kSummationSource = R"KC(
#ifdef CT_SUM
#define N_TILES K_N_TILES
#define N_SHIFTS K_N_SHIFTS
#else
#define N_TILES nTiles
#define N_SHIFTS nShifts
#endif

#ifdef CT_THREADS
#define NTHREADS K_THREADS
#else
#define NTHREADS blockDim.x
#endif

__kernel void sumPartials(float* partials, float* numerators, int nTiles, int nShifts) {
  int shift = blockIdx.x * NTHREADS + threadIdx.x;
  if (shift < N_SHIFTS) {
    float acc = 0.0f;
    for (int t = 0; t < N_TILES; t++) {
      acc += partials[t * N_SHIFTS + shift];
    }
    numerators[shift] = acc;
  }
}
)KC";

// Stage 3 — per-shift window statistics for the denominator (Figure 5.2):
// sum and sum-of-squares of the ROI window at every shift offset.
inline constexpr const char* kWindowStatsSource = R"KC(
#ifdef CT_TEMPLATE
#define TPL_H K_TPL_H
#define TPL_W K_TPL_W
#else
#define TPL_H tplH
#define TPL_W tplW
#endif

#ifdef CT_SHIFT
#define SHIFT_W K_SHIFT_W
#define N_SHIFTS K_N_SHIFTS
#else
#define SHIFT_W shiftW
#define N_SHIFTS nShifts
#endif

#ifdef CT_THREADS
#define NTHREADS K_THREADS
#else
#define NTHREADS blockDim.x
#endif

__kernel void windowStats(float* roi, float* sums, float* sumsqs,
                          int roiW, int tplH, int tplW,
                          int shiftW, int nShifts) {
  int shift = blockIdx.x * NTHREADS + threadIdx.x;
  if (shift < N_SHIFTS) {
    int sy = shift / SHIFT_W;
    int sx = shift % SHIFT_W;
    float s = 0.0f;
    float s2 = 0.0f;
    for (int y = 0; y < TPL_H; y++) {
      for (int x = 0; x < TPL_W; x++) {
        float v = roi[(y + sy) * roiW + (x + sx)];
        s += v;
        s2 += v * v;
      }
    }
    sums[shift] = s;
    sumsqs[shift] = s2;
  }
}
)KC";

// Stage 4 — normalized score plus in-block max reduction (the classic shared
// memory tree of Section 2.2; thread counts must be a power of two, the kind
// of hardware-friendly value restriction Section 2.4 discusses). One result
// per block; the host reduces the block results.
inline constexpr const char* kScorePeakSource = R"KC(
#ifdef CT_THREADS
#define NTHREADS K_THREADS
#define SMEM_ALLOC K_THREADS
#else
#define NTHREADS blockDim.x
#define SMEM_ALLOC 512
#endif

#ifdef CT_SHIFT
#define N_SHIFTS K_N_SHIFTS
#else
#define N_SHIFTS nShifts
#endif

__kernel void scorePeak(float* numerators, float* sums, float* sumsqs,
                        float* scores, float* blockBest, int* blockBestIdx,
                        int nShifts, float tplDenom, float invN) {
  __shared float sVal[SMEM_ALLOC];
  __shared int sIdx[SMEM_ALLOC];

  int tid = threadIdx.x;
  int shift = blockIdx.x * NTHREADS + tid;
  float score = -1.0e30f;
  if (shift < N_SHIFTS) {
    float s = sums[shift];
    float var = sumsqs[shift] - s * s * invN;
    float denom = sqrtf(fmaxf(var, 0.0f) * tplDenom);
    score = numerators[shift] / fmaxf(denom, 1.0e-12f);
    scores[shift] = score;
  }
  sVal[tid] = score;
  sIdx[tid] = shift;
  __syncthreads();

  for (int step = NTHREADS / 2; step > 0; step = step >> 1) {
    if (tid < step) {
      if (sVal[tid + step] > sVal[tid]) {
        sVal[tid] = sVal[tid + step];
        sIdx[tid] = sIdx[tid + step];
      }
    }
    __syncthreads();
  }
  if (tid == 0) {
    blockBest[blockIdx.x] = sVal[0];
    blockBestIdx[blockIdx.x] = sIdx[0];
  }
}
)KC";

}  // namespace kspec::apps::matching
