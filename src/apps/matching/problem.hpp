// Problem definitions and synthetic data for the large template matching
// application (dissertation Section 5.1).
//
// The original evaluation used clinical image sequences (Table 5.1: per
// patient, template sizes up to 156x116 and shift regions within an ROI).
// Those are proprietary, so problems here are synthesized: a random textured
// region of interest with the template cut out of it at a known shift and
// perturbed with noise, which makes the correct answer (the planted shift)
// verifiable. Sizes are scaled down so the interpreted vgpu substrate runs
// the full pipeline in seconds; DESIGN.md documents the scaling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kspec::apps::matching {

struct Problem {
  std::string name;
  int tpl_h = 0, tpl_w = 0;      // template dimensions (pixels)
  int shift_h = 0, shift_w = 0;  // number of vertical/horizontal shifts
  std::uint64_t seed = 1;

  // Derived: region-of-interest dimensions.
  int roi_h() const { return tpl_h + shift_h - 1; }
  int roi_w() const { return tpl_w + shift_w - 1; }
  int n_shifts() const { return shift_h * shift_w; }

  // Data (filled by Generate).
  std::vector<float> roi;   // roi_h x roi_w row-major
  std::vector<float> tpl;   // tpl_h x tpl_w row-major
  int true_sy = 0, true_sx = 0;
};

// Builds a problem with the template planted at a deterministic shift.
Problem Generate(std::string name, int tpl_h, int tpl_w, int shift_h, int shift_w,
                 std::uint64_t seed);

// Scaled-down analogues of the dissertation's Table 5.1 patient data sets
// (four patients with distinct template and shift-region geometry).
std::vector<Problem> PatientSets();

}  // namespace kspec::apps::matching
