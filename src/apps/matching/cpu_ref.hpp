// Multi-threaded CPU reference for template matching (Section 5.1.4): the
// same normalized-cross-correlation decomposition the GPU pipeline uses,
// parallelized over shift offsets with std::thread (Figure 5.7's per-thread
// loop structure).
#pragma once

#include <vector>

#include "apps/matching/problem.hpp"

namespace kspec::apps::matching {

struct CpuResult {
  std::vector<float> scores;  // shift_h * shift_w
  int best_idx = -1;
  float best_score = 0;
  double wall_millis = 0;
};

CpuResult CpuMatch(const Problem& p, int num_threads = 4);

// Scalar helpers shared with tests: template mean and the template part of
// the denominator (sum of squared mean-subtracted values).
float TemplateMean(const Problem& p);
float TemplateDenom(const Problem& p);

}  // namespace kspec::apps::matching
