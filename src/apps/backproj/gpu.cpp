#include "apps/backproj/gpu.hpp"

#include "apps/backproj/kernels.hpp"
#include "support/math.hpp"
#include "support/status.hpp"

namespace kspec::apps::backproj {

using vcuda::ArgPack;
using vgpu::Dim3;

BackprojGpuResult GpuBackproject(vcuda::Context& ctx, const Problem& p,
                                 const BackprojConfig& cfg) {
  const Geometry& g = p.geo;
  KSPEC_CHECK_MSG(cfg.threads > 0 && cfg.threads <= 512, "bad thread count");
  KSPEC_CHECK_MSG(cfg.zpt >= 1 && g.vol_z % cfg.zpt == 0,
                  "voxels-per-thread must divide the volume depth");
  if (!cfg.specialize) {
    if (cfg.zpt != 1) {
      throw DeviceError(
          "z register blocking requires specialization: the accumulator array size must be "
          "a compile-time constant");
    }
    if (g.n_angles > 64) {
      throw DeviceError(
          "run-time evaluated backprojection caps angles at 64 (fixed constant-memory "
          "tables); specialize to lift the ceiling");
    }
  }

  kcc::CompileOptions opts;
  if (cfg.specialize) {
    opts.defines["CT_ANGLES"] = "1";
    opts.defines["K_N_ANGLES"] = std::to_string(g.n_angles);
    opts.defines["CT_ZPT"] = "1";
    opts.defines["K_ZPT"] = std::to_string(cfg.zpt);
    opts.defines["CT_VOL"] = "1";
    opts.defines["K_VOL_Z"] = std::to_string(g.vol_z);
    opts.defines["CT_THREADS"] = "1";
    opts.defines["K_THREADS"] = std::to_string(cfg.threads);
  }
  auto mod = ctx.LoadModule(cfg.use_texture ? kBackprojTexSource : kBackprojSource, opts);

  std::vector<float> cos_tab, sin_tab;
  AngleTables(g, &cos_tab, &sin_tab);
  mod->SetConstant("cosTab", cos_tab.data(), cos_tab.size() * sizeof(float));
  mod->SetConstant("sinTab", sin_tab.data(), sin_tab.size() * sizeof(float));

  auto d_proj = vcuda::Upload<float>(ctx, std::span<const float>(p.projections));
  if (cfg.use_texture) {
    // All angles stack vertically: one detU x (nAngles * detV) texture.
    mod->BindTexture("projTex", d_proj, g.det_u, g.n_angles * g.det_v);
  }
  auto d_vol = ctx.Malloc(p.voxel_count() * sizeof(float));
  ctx.Memset(d_vol, 0, p.voxel_count() * sizeof(float));

  const unsigned nxy = static_cast<unsigned>(g.vol_n * g.vol_n);
  const unsigned blocks = static_cast<unsigned>(CeilDiv<unsigned>(nxy, cfg.threads));

  ArgPack args;
  if (!cfg.use_texture) args.Ptr(d_proj);
  args.Ptr(d_vol)
      .Int(g.vol_n).Int(g.vol_z).Int(g.det_u).Int(g.det_v).Int(g.n_angles)
      .Float(g.du).Float(g.dv).Float(g.cu()).Float(g.cv())
      .Float(g.sad).Float(g.vox_size);

  const char* kernel_name = cfg.use_texture ? "backprojectTex" : "backproject";
  BackprojGpuResult out;
  out.stats = ctx.Launch(*mod, kernel_name, Dim3(blocks),
                         Dim3(static_cast<unsigned>(cfg.threads)), args);
  out.sim_millis = out.stats.sim_millis;
  const vgpu::CompiledKernel& k = mod->GetKernel(kernel_name);
  out.reg_count = k.stats.reg_count;
  out.kernel_listing = k.listing;
  out.volume = vcuda::Download<float>(ctx, d_vol, p.voxel_count());

  ctx.Free(d_proj);
  ctx.Free(d_vol);
  return out;
}

}  // namespace kspec::apps::backproj
