#include "apps/backproj/gpu.hpp"

#include "apps/backproj/kernels.hpp"
#include "support/math.hpp"
#include "support/status.hpp"

namespace kspec::apps::backproj {

using vcuda::ArgPack;
using vgpu::Dim3;

const launch::ParamTable& BackprojParams() {
  static const launch::ParamTable table = [] {
    launch::ParamTable t("backproj");
    t.Flag("CT_ANGLES", "projection angle count fixed at compile time");
    t.Value("K_N_ANGLES", "number of projection angles");
    t.Flag("CT_ZPT", "z register blocking depth fixed at compile time");
    t.Value("K_ZPT", "voxels per thread along z");
    t.Flag("CT_VOL", "volume depth fixed at compile time");
    t.Value("K_VOL_Z", "volume depth in voxels");
    t.Flag("CT_THREADS", "block size fixed at compile time");
    t.Value("K_THREADS", "threads per block");
    return t;
  }();
  return table;
}

BackprojGpuResult GpuBackproject(launch::StageRunner& runner, const Problem& p,
                                 const BackprojConfig& cfg) {
  const Geometry& g = p.geo;
  KSPEC_CHECK_MSG(cfg.threads > 0 && cfg.threads <= 512, "bad thread count");
  KSPEC_CHECK_MSG(cfg.zpt >= 1 && g.vol_z % cfg.zpt == 0,
                  "voxels-per-thread must divide the volume depth");
  if (!cfg.specialize) {
    if (cfg.zpt != 1) {
      throw DeviceError(
          "z register blocking requires specialization: the accumulator array size must be "
          "a compile-time constant");
    }
    if (g.n_angles > 64) {
      throw DeviceError(
          "run-time evaluated backprojection caps angles at 64 (fixed constant-memory "
          "tables); specialize to lift the ceiling");
    }
  }

  launch::SpecBuilder spec(cfg.specialize, &BackprojParams());
  spec.Flag("CT_ANGLES").Value("K_N_ANGLES", g.n_angles)
      .Flag("CT_ZPT").Value("K_ZPT", cfg.zpt)
      .Flag("CT_VOL").Value("K_VOL_Z", g.vol_z)
      .Flag("CT_THREADS").Value("K_THREADS", cfg.threads);
  auto mod = runner.LoadStage("backproject",
                              cfg.use_texture ? kBackprojTexSource : kBackprojSource, spec);

  std::vector<float> cos_tab, sin_tab;
  AngleTables(g, &cos_tab, &sin_tab);
  mod->SetConstant("cosTab", cos_tab.data(), cos_tab.size() * sizeof(float));
  mod->SetConstant("sinTab", sin_tab.data(), sin_tab.size() * sizeof(float));
  runner.AccountHtoD((cos_tab.size() + sin_tab.size()) * sizeof(float));

  auto d_proj = runner.Upload<float>(std::span<const float>(p.projections));
  if (cfg.use_texture) {
    // All angles stack vertically: one detU x (nAngles * detV) texture.
    mod->BindTexture("projTex", d_proj.get(), g.det_u, g.n_angles * g.det_v);
  }
  auto d_vol = runner.Alloc<float>(p.voxel_count());
  runner.ctx().Memset(d_vol.get(), 0, p.voxel_count() * sizeof(float));

  const unsigned nxy = static_cast<unsigned>(g.vol_n * g.vol_n);
  const unsigned blocks = static_cast<unsigned>(CeilDiv<unsigned>(nxy, cfg.threads));

  ArgPack args;
  if (!cfg.use_texture) args.Ptr(d_proj.get());
  args.Ptr(d_vol.get())
      .Int(g.vol_n).Int(g.vol_z).Int(g.det_u).Int(g.det_v).Int(g.n_angles)
      .Float(g.du).Float(g.dv).Float(g.cu()).Float(g.cv())
      .Float(g.sad).Float(g.vox_size);

  const char* kernel_name = cfg.use_texture ? "backprojectTex" : "backproject";
  BackprojGpuResult out;
  out.stats = runner.Launch("backproject", *mod, kernel_name, Dim3(blocks),
                            Dim3(static_cast<unsigned>(cfg.threads)), args);
  const vgpu::CompiledKernel& k = mod->GetKernel(kernel_name);
  out.reg_count = k.stats.reg_count;
  out.kernel_listing = k.listing;
  out.volume = runner.Download(d_vol);

  out.breakdown = runner.TakeBreakdown();
  out.sim_millis = out.breakdown.sim_millis;
  out.compile_millis = out.breakdown.compile_millis;
  out.transfer_millis = out.breakdown.transfer_millis;
  return out;
}

BackprojGpuResult GpuBackproject(vcuda::Context& ctx, const Problem& p,
                                 const BackprojConfig& cfg) {
  launch::StageRunner runner(ctx);
  return GpuBackproject(runner, p, cfg);
}

}  // namespace kspec::apps::backproj
