#include "apps/backproj/problem.hpp"

#include <cmath>

#include "support/rng.hpp"
#include "support/status.hpp"

namespace kspec::apps::backproj {

void AngleTables(const Geometry& geo, std::vector<float>* cos_tab, std::vector<float>* sin_tab) {
  cos_tab->resize(geo.n_angles);
  sin_tab->resize(geo.n_angles);
  for (int a = 0; a < geo.n_angles; ++a) {
    double theta = 2.0 * M_PI * a / geo.n_angles;
    (*cos_tab)[a] = static_cast<float>(std::cos(theta));
    (*sin_tab)[a] = static_cast<float>(std::sin(theta));
  }
}

Problem Generate(std::string name, const Geometry& geo, int n_blobs, std::uint64_t seed) {
  KSPEC_CHECK_MSG(geo.vol_n > 0 && geo.vol_z > 0 && geo.n_angles > 0, "bad geometry");
  Problem p;
  p.name = std::move(name);
  p.geo = geo;
  p.seed = seed;

  Rng rng(seed);
  const float half = 0.3f * geo.vol_n;  // keep blobs inside the field of view
  for (int b = 0; b < n_blobs; ++b) {
    Problem::Blob blob;
    blob.x = static_cast<float>(rng.NextDouble() * 2 - 1) * half;
    blob.y = static_cast<float>(rng.NextDouble() * 2 - 1) * half;
    blob.z = static_cast<float>(rng.NextDouble() * 2 - 1) * 0.3f * geo.vol_z;
    blob.amplitude = 0.5f + rng.NextFloat();
    p.blobs.push_back(blob);
  }

  // Analytic cone-beam forward projection of the Gaussian blobs: each blob
  // projects to a Gaussian splat on the detector at every angle.
  std::vector<float> cos_tab, sin_tab;
  AngleTables(geo, &cos_tab, &sin_tab);
  p.projections.assign(p.proj_count(), 0.0f);
  const float sigma2 = 2.0f * 1.8f * 1.8f;
  for (int a = 0; a < geo.n_angles; ++a) {
    float c = cos_tab[a], s = sin_tab[a];
    for (const auto& blob : p.blobs) {
      float t = blob.x * c + blob.y * s;
      float r = -blob.x * s + blob.y * c;
      float w = geo.sad / (geo.sad + r);
      float ub = t * w / geo.du + geo.cu();
      float vb = blob.z * w / geo.dv + geo.cv();
      for (int v = 0; v < geo.det_v; ++v) {
        for (int u = 0; u < geo.det_u; ++u) {
          float duv = (u - ub) * (u - ub) + (v - vb) * (v - vb);
          if (duv < 9.0f * sigma2) {
            p.projections[(static_cast<std::size_t>(a) * geo.det_v + v) * geo.det_u + u] +=
                blob.amplitude * std::exp(-duv / sigma2);
          }
        }
      }
    }
  }
  return p;
}

std::vector<Problem> BenchmarkSets() {
  Geometry v1;
  v1.vol_n = 16;
  v1.vol_z = 12;
  v1.det_u = 32;
  v1.det_v = 24;
  v1.n_angles = 12;

  Geometry v2;  // the Table 6.20 occupancy-study set
  v2.vol_n = 24;
  v2.vol_z = 16;
  v2.det_u = 48;
  v2.det_v = 32;
  v2.n_angles = 16;

  Geometry v3;
  v3.vol_n = 32;
  v3.vol_z = 16;
  v3.det_u = 64;
  v3.det_v = 32;
  v3.n_angles = 20;

  return {
      Generate("V1", v1, 2, 51),
      Generate("V2", v2, 3, 52),
      Generate("V3", v3, 3, 53),
  };
}

}  // namespace kspec::apps::backproj
