// GPU cone-beam backprojection host (Section 5.3).
#pragma once

#include <string>
#include <vector>

#include "apps/backproj/problem.hpp"
#include "launch/spec_builder.hpp"
#include "launch/stage_runner.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/launch.hpp"

namespace kspec::apps::backproj {

struct BackprojConfig {
  int threads = 64;        // per block
  int zpt = 1;             // voxels per thread in z (register blocking);
                           // values > 1 require specialization
  bool specialize = true;
  // Sample projections through a bilinear 2D texture instead of manual
  // global loads (the classic CUDA backprojection design).
  bool use_texture = false;
};

struct BackprojGpuResult {
  std::vector<float> volume;  // vol_z * vol_n * vol_n
  vgpu::LaunchStats stats;
  int reg_count = 0;
  double sim_millis = 0;       // == breakdown.sim_millis
  double compile_millis = 0;   // == breakdown.compile_millis
  double transfer_millis = 0;  // == breakdown.transfer_millis
  std::string kernel_listing;
  launch::LaunchBreakdown breakdown;
};

// The backprojector's declared specialization parameters (Table 4.1 analogue).
const launch::ParamTable& BackprojParams();

// The StageRunner overload lets callers share a runner (and its tiered
// promotion state) across calls; the Context overload uses a private inline
// runner, the exact pre-refactor behavior.
BackprojGpuResult GpuBackproject(launch::StageRunner& runner, const Problem& p,
                                 const BackprojConfig& cfg);
BackprojGpuResult GpuBackproject(vcuda::Context& ctx, const Problem& p,
                                 const BackprojConfig& cfg);

}  // namespace kspec::apps::backproj
