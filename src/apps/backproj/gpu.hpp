// GPU cone-beam backprojection host (Section 5.3).
#pragma once

#include <string>
#include <vector>

#include "apps/backproj/problem.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/launch.hpp"

namespace kspec::apps::backproj {

struct BackprojConfig {
  int threads = 64;        // per block
  int zpt = 1;             // voxels per thread in z (register blocking);
                           // values > 1 require specialization
  bool specialize = true;
  // Sample projections through a bilinear 2D texture instead of manual
  // global loads (the classic CUDA backprojection design).
  bool use_texture = false;
};

struct BackprojGpuResult {
  std::vector<float> volume;  // vol_z * vol_n * vol_n
  vgpu::LaunchStats stats;
  int reg_count = 0;
  double sim_millis = 0;
  std::string kernel_listing;
};

BackprojGpuResult GpuBackproject(vcuda::Context& ctx, const Problem& p,
                                 const BackprojConfig& cfg);

}  // namespace kspec::apps::backproj
