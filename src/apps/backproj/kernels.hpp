// Kernel-C source for the cone-beam backprojection kernel (Section 5.3).
//
// Specialization points (Section 5.3.1):
//  * the angle count — specialized builds unroll the projection loop and
//    size the constant-memory trig tables exactly; run-time evaluated builds
//    must reserve a fixed worst-case table (the CUDA constant-memory
//    compile-time-size restriction of Section 2.4);
//  * voxels per thread (Z blocking, Table 6.9) — the per-thread accumulator
//    array lives in registers, so its size is always a compile-time constant;
//    RE builds are pinned at 1 while specialized builds can register-block.
#pragma once

namespace kspec::apps::backproj {

inline constexpr const char* kBackprojSource = R"KC(
#ifdef CT_ANGLES
#define N_ANGLES K_N_ANGLES
#define ANGLE_CAP K_N_ANGLES
#else
#define N_ANGLES nAngles
#define ANGLE_CAP 64
#endif

#ifdef CT_ZPT
#define ZPT K_ZPT
#else
#define ZPT 1
#endif

#ifdef CT_VOL
#define VOL_Z K_VOL_Z
#else
#define VOL_Z volZ
#endif

#ifdef CT_THREADS
#define NTHREADS K_THREADS
#else
#define NTHREADS blockDim.x
#endif

__constant float cosTab[ANGLE_CAP];
__constant float sinTab[ANGLE_CAP];

__kernel void backproject(float* proj, float* vol,
                          int volN, int volZ, int detU, int detV, int nAngles,
                          float du, float dv, float cu, float cv,
                          float sad, float voxSize) {
  unsigned int idx = blockIdx.x * NTHREADS + threadIdx.x;
  unsigned int nxy = (unsigned int)(volN * volN);
  if (idx >= nxy) {
    return;
  }
  int ixv = (int)(idx % (unsigned int)volN);
  int iyv = (int)(idx / (unsigned int)volN);
  float xc = ((float)ixv - 0.5f * (float)volN + 0.5f) * voxSize;
  float yc = ((float)iyv - 0.5f * (float)volN + 0.5f) * voxSize;

  for (int z0 = 0; z0 < VOL_Z; z0 += ZPT) {
    float acc[ZPT];
    for (int k = 0; k < ZPT; k++) {
      acc[k] = 0.0f;
    }
    for (int a = 0; a < N_ANGLES; a++) {
      float c = cosTab[a];
      float s = sinTab[a];
      float t = xc * c + yc * s;
      float r = -xc * s + yc * c;
      float w = sad / (sad + r);
      float u = t * w / du + cu;
      int u0 = (int)floorf(u);
      float fu = u - (float)u0;
      u0 = max(0, min(u0, detU - 2));
      float w2 = w * w;
      for (int k = 0; k < ZPT; k++) {
        float zc = ((float)(z0 + k) - 0.5f * (float)VOL_Z + 0.5f) * voxSize;
        float v = zc * w / dv + cv;
        int v0 = (int)floorf(v);
        float fv = v - (float)v0;
        v0 = max(0, min(v0, detV - 2));
        int base = (a * detV + v0) * detU + u0;
        float p00 = proj[base];
        float p01 = proj[base + 1];
        float p10 = proj[base + detU];
        float p11 = proj[base + detU + 1];
        float top = p00 + fu * (p01 - p00);
        float bot = p10 + fu * (p11 - p10);
        acc[k] += (top + fv * (bot - top)) * w2;
      }
    }
    for (int k = 0; k < ZPT; k++) {
      vol[(z0 + k) * (int)nxy + (int)idx] = acc[k];
    }
  }
}
)KC";

// Texture-path variant (the classic CUDA backprojection design): projections
// are sampled through a bilinear 2D texture instead of four manual global
// loads. All angles stack vertically in one texture (height = nAngles *
// detV); each sample clamps v within its angle's band before offsetting, so
// filtering never bleeds between angles.
inline constexpr const char* kBackprojTexSource = R"KC(
#ifdef CT_ANGLES
#define N_ANGLES K_N_ANGLES
#define ANGLE_CAP K_N_ANGLES
#else
#define N_ANGLES nAngles
#define ANGLE_CAP 64
#endif

#ifdef CT_ZPT
#define ZPT K_ZPT
#else
#define ZPT 1
#endif

#ifdef CT_VOL
#define VOL_Z K_VOL_Z
#else
#define VOL_Z volZ
#endif

#ifdef CT_THREADS
#define NTHREADS K_THREADS
#else
#define NTHREADS blockDim.x
#endif

__constant float cosTab[ANGLE_CAP];
__constant float sinTab[ANGLE_CAP];

__texture float projTex;

__kernel void backprojectTex(float* vol,
                             int volN, int volZ, int detU, int detV, int nAngles,
                             float du, float dv, float cu, float cv,
                             float sad, float voxSize) {
  unsigned int idx = blockIdx.x * NTHREADS + threadIdx.x;
  unsigned int nxy = (unsigned int)(volN * volN);
  if (idx >= nxy) {
    return;
  }
  int ixv = (int)(idx % (unsigned int)volN);
  int iyv = (int)(idx / (unsigned int)volN);
  float xc = ((float)ixv - 0.5f * (float)volN + 0.5f) * voxSize;
  float yc = ((float)iyv - 0.5f * (float)volN + 0.5f) * voxSize;

  for (int z0 = 0; z0 < VOL_Z; z0 += ZPT) {
    float acc[ZPT];
    for (int k = 0; k < ZPT; k++) {
      acc[k] = 0.0f;
    }
    for (int a = 0; a < N_ANGLES; a++) {
      float c = cosTab[a];
      float s = sinTab[a];
      float t = xc * c + yc * s;
      float r = -xc * s + yc * c;
      float w = sad / (sad + r);
      float u = t * w / du + cu;
      u = fmaxf(0.0f, fminf(u, (float)(detU - 2)));
      float w2 = w * w;
      float vBase = (float)(a * detV);
      for (int k = 0; k < ZPT; k++) {
        float zc = ((float)(z0 + k) - 0.5f * (float)VOL_Z + 0.5f) * voxSize;
        float v = zc * w / dv + cv;
        v = fmaxf(0.0f, fminf(v, (float)(detV - 2)));
        acc[k] += tex2D(projTex, u, vBase + v) * w2;
      }
    }
    for (int k = 0; k < ZPT; k++) {
      vol[(z0 + k) * (int)nxy + (int)idx] = acc[k];
    }
  }
}
)KC";

}  // namespace kspec::apps::backproj
