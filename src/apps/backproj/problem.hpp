// Cone-beam backprojection problem definitions (dissertation Section 5.3).
//
// Geometry (Figure 5.13): an X-ray source and detector rotate around the
// reconstruction volume; backprojection accumulates, for every voxel and
// every projection angle, the bilinearly-sampled detector value at the
// voxel's perspective projection, weighted by the inverse-distance factor.
//
// The original evaluation used CT scanner data; projections here are
// generated analytically from a phantom of Gaussian blobs so the
// reconstruction peak locations are known, and CPU/GPU implementations can
// be compared bit-nearly on identical input.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kspec::apps::backproj {

struct Geometry {
  int vol_n = 24;     // volume is vol_n x vol_n x vol_z voxels
  int vol_z = 16;
  int det_u = 48;     // detector columns
  int det_v = 32;     // detector rows
  int n_angles = 16;  // projection angles over [0, 2*pi)
  float sad = 60.0f;  // source-axis distance (voxel units)
  float du = 1.0f;    // detector pixel pitch
  float dv = 1.0f;
  float vox_size = 1.0f;

  float cu() const { return 0.5f * static_cast<float>(det_u); }
  float cv() const { return 0.5f * static_cast<float>(det_v); }
};

struct Problem {
  std::string name;
  Geometry geo;
  std::uint64_t seed = 1;

  // Projections: n_angles x det_v x det_u.
  std::vector<float> projections;
  // Phantom blob centers in voxel-centered coordinates, for sanity checks.
  struct Blob {
    float x, y, z, amplitude;
  };
  std::vector<Blob> blobs;

  std::size_t proj_count() const {
    return static_cast<std::size_t>(geo.n_angles) * geo.det_v * geo.det_u;
  }
  std::size_t voxel_count() const {
    return static_cast<std::size_t>(geo.vol_n) * geo.vol_n * geo.vol_z;
  }
};

Problem Generate(std::string name, const Geometry& geo, int n_blobs, std::uint64_t seed);

// The dissertation's backprojection benchmark volumes (Table 6.8) scaled to
// interpreter size; "V2" is the set Table 6.20's occupancy study uses.
std::vector<Problem> BenchmarkSets();

// Per-angle cosine/sine tables (uploaded to constant memory on the GPU).
void AngleTables(const Geometry& geo, std::vector<float>* cos_tab, std::vector<float>* sin_tab);

}  // namespace kspec::apps::backproj
