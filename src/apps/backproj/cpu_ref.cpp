#include "apps/backproj/cpu_ref.hpp"

#include <algorithm>
#include <cmath>

#include "support/timer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace kspec::apps::backproj {

CpuResult CpuBackproject(const Problem& p, int num_threads) {
  WallTimer timer;
  const Geometry& g = p.geo;
  CpuResult out;
  out.volume.assign(p.voxel_count(), 0.0f);

  std::vector<float> cos_tab, sin_tab;
  AngleTables(g, &cos_tab, &sin_tab);
  const float* proj = p.projections.data();
  const int nxy = g.vol_n * g.vol_n;

#ifdef _OPENMP
#pragma omp parallel for num_threads(num_threads) schedule(static)
#endif
  for (int idx = 0; idx < nxy; ++idx) {
    int ixv = idx % g.vol_n;
    int iyv = idx / g.vol_n;
    float xc = (static_cast<float>(ixv) - 0.5f * g.vol_n + 0.5f) * g.vox_size;
    float yc = (static_cast<float>(iyv) - 0.5f * g.vol_n + 0.5f) * g.vox_size;
    for (int z = 0; z < g.vol_z; ++z) {
      float acc = 0.0f;
      for (int a = 0; a < g.n_angles; ++a) {
        float c = cos_tab[a], s = sin_tab[a];
        float t = xc * c + yc * s;
        float r = -xc * s + yc * c;
        float w = g.sad / (g.sad + r);
        float u = t * w / g.du + g.cu();
        int u0 = static_cast<int>(std::floor(u));
        float fu = u - static_cast<float>(u0);
        u0 = std::max(0, std::min(u0, g.det_u - 2));
        float w2 = w * w;
        float zc = (static_cast<float>(z) - 0.5f * g.vol_z + 0.5f) * g.vox_size;
        float v = zc * w / g.dv + g.cv();
        int v0 = static_cast<int>(std::floor(v));
        float fv = v - static_cast<float>(v0);
        v0 = std::max(0, std::min(v0, g.det_v - 2));
        std::size_t base = (static_cast<std::size_t>(a) * g.det_v + v0) * g.det_u + u0;
        float p00 = proj[base];
        float p01 = proj[base + 1];
        float p10 = proj[base + g.det_u];
        float p11 = proj[base + g.det_u + 1];
        float top = p00 + fu * (p01 - p00);
        float bot = p10 + fu * (p11 - p10);
        acc += (top + fv * (bot - top)) * w2;
      }
      out.volume[static_cast<std::size_t>(z) * nxy + idx] = acc;
    }
  }
  (void)num_threads;
  out.wall_millis = timer.ElapsedMillis();
  return out;
}

}  // namespace kspec::apps::backproj
