// OpenMP CPU reference for cone-beam backprojection (the dissertation's
// Table 6.12 baseline ran OpenMP with four threads). Math is kept
// bit-identical to the GPU kernel: same single-precision operations in the
// same order, same clamped bilinear sampling.
#pragma once

#include <vector>

#include "apps/backproj/problem.hpp"

namespace kspec::apps::backproj {

struct CpuResult {
  std::vector<float> volume;  // vol_z * vol_n * vol_n (z-major like the GPU)
  double wall_millis = 0;
};

CpuResult CpuBackproject(const Problem& p, int num_threads = 4);

}  // namespace kspec::apps::backproj
