// Analytic CPU timing model for the comparison tables.
//
// The benchmark container has a single core, so the measured wall time of the
// "4-thread" CPU references cannot show thread-level scaling. The comparison
// tables therefore report, alongside measured wall time, a modeled time for
// the dissertation-era reference CPU: a 4-core Nehalem-class Xeon at 2.8 GHz
// retiring ~2 single-precision scalar FLOPs per core-cycle on these
// memory-friendly loops (no SIMD: the paper's references are plain C/OpenMP).
//
//   modeled_ms = flops / (cores * flops_per_cycle * clock_hz) * 1e3
//
// This is deliberately simple and stated openly; EXPERIMENTS.md treats it as
// the "paper-era CPU" column while wall time remains the ground truth for
// what actually ran here.
// Its transfer-side companion — the analytic host<->device copy model every
// app and gpupf charge uniformly — is launch::TransferModel, re-exported here
// so table harnesses get both models from one include.
#pragma once

#include <cstdint>

#include "launch/transfer_model.hpp"

namespace kspec::apps {

using launch::TransferModel;

struct CpuModel {
  int cores = 4;
  double clock_ghz = 2.8;
  double flops_per_cycle = 2.0;  // scalar FMA-ish throughput per core

  double Millis(double flops, int threads_used) const {
    int eff = threads_used < cores ? threads_used : cores;
    if (eff < 1) eff = 1;
    double flops_per_ms = static_cast<double>(eff) * flops_per_cycle * clock_ghz * 1e6;
    return flops / flops_per_ms;
  }
};

// FLOP counts for the reference algorithms (multiply+add pairs counted as 2).

// Template matching: per shift, the window loop does ~6 FLOPs per pixel
// (num += tv*iv, s += iv, s2 += iv*iv).
inline double MatchingFlops(int n_shifts, int tpl_area) {
  return 6.0 * static_cast<double>(n_shifts) * tpl_area;
}

// PIV SSD: 3 FLOPs per mask pixel per offset (diff, square, accumulate).
inline double PivFlops(int n_masks, int n_offsets, int mask_area) {
  return 3.0 * static_cast<double>(n_masks) * n_offsets * mask_area;
}

// Backprojection: ~20 FLOPs per voxel per angle (rotation, weight, bilinear).
inline double BackprojFlops(std::uint64_t voxels, int n_angles) {
  return 20.0 * static_cast<double>(voxels) * n_angles;
}

}  // namespace kspec::apps
