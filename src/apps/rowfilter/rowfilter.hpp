// The OpenCV row-filter case study (dissertation Sections 2.6 and 4.2,
// Appendices E/F).
//
// OpenCV's CUDA row filter pre-compiles 800 kernel variants — every filter
// size from 1 to 32, every border mode, every source/destination type pair —
// into the binary, because each needs its loop bound, anchor, and branch
// structure fixed at compile time. This module reproduces the specialized
// alternative: ONE Kernel-C source whose filter size (KSIZE), anchor
// (ANCHOR), border mode (BORDER), and element type (SRC_T) are specialization
// constants with run-time fallbacks, compiled on demand per combination and
// cached.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "launch/spec_builder.hpp"
#include "launch/stage_runner.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/launch.hpp"

namespace kspec::apps::rowfilter {

enum class Border : int { kClamp = 0, kReflect = 1, kWrap = 2 };
const char* BorderName(Border b);

enum class ElemType : int { kFloat = 0, kInt = 1 };

struct Image {
  int w = 0, h = 0;
  std::vector<float> data;  // stored as float; ElemType controls kernel-side type
};

Image MakeTestImage(int w, int h, std::uint64_t seed);

struct FilterSpec {
  std::vector<float> taps;  // <= 32 coefficients (the constant-memory ceiling)
  int anchor = -1;          // -1 = centered
  Border border = Border::kClamp;
  ElemType elem = ElemType::kFloat;

  int ksize() const { return static_cast<int>(taps.size()); }
  int anchor_or_default() const { return anchor >= 0 ? anchor : ksize() / 2; }
};

// Normalized box / binomial test filters.
FilterSpec BoxFilter(int ksize, Border border = Border::kClamp);
FilterSpec BinomialFilter(int ksize, Border border = Border::kClamp);

struct RowFilterConfig {
  int threads = 64;
  bool specialize = true;
};

struct RowFilterResult {
  std::vector<float> out;
  vgpu::LaunchStats stats;
  int reg_count = 0;
  double sim_millis = 0;  // == breakdown.sim_millis
  launch::LaunchBreakdown breakdown;
};

// The row filter's declared specialization parameters (Table 4.1 analogue —
// the axes OpenCV pre-compiles 800 variants over).
const launch::ParamTable& RowFilterParams();

// Applies the filter along rows on the simulated GPU. The StageRunner
// overload lets callers share a runner (and its tiered promotion state);
// the Context overload uses a private inline runner.
RowFilterResult GpuRowFilter(launch::StageRunner& runner, const Image& img,
                             const FilterSpec& spec, const RowFilterConfig& cfg);
RowFilterResult GpuRowFilter(vcuda::Context& ctx, const Image& img, const FilterSpec& spec,
                             const RowFilterConfig& cfg);

// CPU reference (identical arithmetic).
std::vector<float> CpuRowFilter(const Image& img, const FilterSpec& spec);

// Number of ahead-of-time variants OpenCV-style explicit instantiation would
// need to cover what on-demand specialization serves from one source.
constexpr int kAotVariantCount = 32 /*ksize*/ * 3 /*border*/ * 2 /*types*/;

}  // namespace kspec::apps::rowfilter
