#include "apps/rowfilter/rowfilter.hpp"

#include <cmath>

#include "support/math.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace kspec::apps::rowfilter {

namespace {

// The single adaptable kernel source. Mirrors the structure of the OpenCV
// kernel in Appendix E, restructured for specialization as in Appendix F:
//  * KSIZE   — loop bound; constant -> unrolled (OpenCV's template parameter)
//  * ANCHOR  — constant folded into the index math
//  * BORDER  — selects ONE border path at compile time; the RE build keeps
//              the runtime switch over all three
//  * SRC_T   — the element type, substituted textually (the paper's
//              C++-template type specialization, done with -D)
// The 32-tap constant-memory table is the "arbitrary ceiling" Section 2.6
// points out; it applies to RE and SK builds alike because constant memory
// must be sized at compile time.
constexpr const char* kRowFilterSource = R"KC(
#ifndef SRC_T
#define SRC_T float
#endif
#ifndef KSIZE
#define KSIZE ksize
#endif
#ifndef ANCHOR
#define ANCHOR anchor
#endif

__constant float filt[32];

__kernel void rowFilter(SRC_T* in, float* out, int w, int h,
                        int ksize, int anchor, int borderMode) {
  int x = (int)(blockIdx.x * blockDim.x + threadIdx.x);
  int y = (int)blockIdx.y;
  if (x >= w) {
    return;
  }
  float acc = 0.0f;
  for (int k = 0; k < KSIZE; k++) {
    int xx = x + k - ANCHOR;
#ifdef CT_BORDER
#if CT_BORDER == 0
    xx = max(0, min(xx, w - 1));
#elif CT_BORDER == 1
    if (xx < 0) { xx = -xx; }
    if (xx >= w) { xx = 2 * w - 2 - xx; }
#else
    xx = xx + w;
    xx = xx - (xx / w) * w;
#endif
#else
    if (borderMode == 0) {
      xx = max(0, min(xx, w - 1));
    } else {
      if (borderMode == 1) {
        if (xx < 0) { xx = -xx; }
        if (xx >= w) { xx = 2 * w - 2 - xx; }
      } else {
        xx = xx + w;
        xx = xx - (xx / w) * w;
      }
    }
#endif
    acc += filt[k] * (float)in[y * w + xx];
  }
  out[y * w + x] = acc;
}
)KC";

int ApplyBorder(int xx, int w, Border border) {
  switch (border) {
    case Border::kClamp:
      return std::max(0, std::min(xx, w - 1));
    case Border::kReflect:
      if (xx < 0) xx = -xx;
      if (xx >= w) xx = 2 * w - 2 - xx;
      return xx;
    case Border::kWrap:
      xx = xx + w;
      return xx - (xx / w) * w;
  }
  return 0;
}

}  // namespace

const char* BorderName(Border b) {
  switch (b) {
    case Border::kClamp: return "clamp";
    case Border::kReflect: return "reflect";
    case Border::kWrap: return "wrap";
  }
  return "?";
}

Image MakeTestImage(int w, int h, std::uint64_t seed) {
  Image img;
  img.w = w;
  img.h = h;
  img.data.resize(static_cast<std::size_t>(w) * h);
  Rng rng(seed);
  // Integer-valued texels so the int-typed kernel sees exact values.
  for (auto& v : img.data) v = static_cast<float>(rng.NextInt(0, 255));
  return img;
}

FilterSpec BoxFilter(int ksize, Border border) {
  KSPEC_CHECK_MSG(ksize >= 1 && ksize <= 32, "filter size must be in [1, 32]");
  FilterSpec spec;
  spec.taps.assign(ksize, 1.0f / static_cast<float>(ksize));
  spec.border = border;
  return spec;
}

FilterSpec BinomialFilter(int ksize, Border border) {
  KSPEC_CHECK_MSG(ksize >= 1 && ksize <= 32, "filter size must be in [1, 32]");
  FilterSpec spec;
  spec.taps.resize(ksize);
  // Row of Pascal's triangle, normalized.
  std::vector<double> row(ksize, 1.0);
  for (int i = 1; i < ksize; ++i) {
    for (int j = i - 1; j > 0; --j) row[j] += row[j - 1];
  }
  double sum = 0;
  for (double v : row) sum += v;
  for (int i = 0; i < ksize; ++i) spec.taps[i] = static_cast<float>(row[i] / sum);
  spec.border = border;
  return spec;
}

std::vector<float> CpuRowFilter(const Image& img, const FilterSpec& spec) {
  std::vector<float> out(img.data.size());
  const int anchor = spec.anchor_or_default();
  for (int y = 0; y < img.h; ++y) {
    for (int x = 0; x < img.w; ++x) {
      float acc = 0;
      for (int k = 0; k < spec.ksize(); ++k) {
        int xx = ApplyBorder(x + k - anchor, img.w, spec.border);
        float v = img.data[static_cast<std::size_t>(y) * img.w + xx];
        if (spec.elem == ElemType::kInt) v = static_cast<float>(static_cast<int>(v));
        acc += spec.taps[k] * v;
      }
      out[static_cast<std::size_t>(y) * img.w + x] = acc;
    }
  }
  return out;
}

const launch::ParamTable& RowFilterParams() {
  static const launch::ParamTable table = [] {
    launch::ParamTable t("rowfilter");
    t.Value("KSIZE", "filter tap count (loop bound; constant -> unrolled)");
    t.Value("ANCHOR", "anchor folded into the index math");
    t.Value("CT_BORDER", "border mode selected at compile time (0/1/2)");
    t.Value("SRC_T", "source element type, substituted textually");
    return t;
  }();
  return table;
}

RowFilterResult GpuRowFilter(launch::StageRunner& runner, const Image& img,
                             const FilterSpec& spec, const RowFilterConfig& cfg) {
  KSPEC_CHECK_MSG(spec.ksize() <= 32,
                  "filter exceeds the 32-tap constant-memory ceiling (Section 2.6)");

  launch::SpecBuilder sb(cfg.specialize, &RowFilterParams());
  sb.Value("KSIZE", spec.ksize())
    .Value("ANCHOR", spec.anchor_or_default())
    .Value("CT_BORDER", static_cast<int>(spec.border))
    .Value("SRC_T", spec.elem == ElemType::kInt ? "int" : "float");
  // The RE build serves float input only (the OpenCV analogue would need a
  // pre-compiled variant per type; our RE fallback picks the default).
  if (!cfg.specialize && spec.elem != ElemType::kFloat) {
    throw DeviceError(
        "run-time evaluated rowFilter handles the default element type only; "
        "specialize SRC_T for other types (the OpenCV binary pre-compiles 800 variants "
        "to cover this)");
  }
  auto mod = runner.LoadStage("rowFilter", kRowFilterSource, sb);
  mod->SetConstant("filt", spec.taps.data(), spec.taps.size() * sizeof(float));
  runner.AccountHtoD(spec.taps.size() * sizeof(float));

  const std::size_t n = img.data.size();
  vcuda::TypedBuffer<int> d_in_int;
  vcuda::TypedBuffer<float> d_in_float;
  vcuda::DevPtr d_in = 0;
  if (spec.elem == ElemType::kInt) {
    std::vector<int> as_int(n);
    for (std::size_t i = 0; i < n; ++i) as_int[i] = static_cast<int>(img.data[i]);
    d_in_int = runner.Upload<int>(std::span<const int>(as_int));
    d_in = d_in_int.get();
  } else {
    d_in_float = runner.Upload<float>(std::span<const float>(img.data));
    d_in = d_in_float.get();
  }
  auto d_out = runner.Alloc<float>(n);

  vcuda::ArgPack args;
  args.Ptr(d_in).Ptr(d_out.get()).Int(img.w).Int(img.h)
      .Int(spec.ksize()).Int(spec.anchor_or_default()).Int(static_cast<int>(spec.border));

  RowFilterResult result;
  result.stats = runner.Launch(
      "rowFilter", *mod, "rowFilter",
      vgpu::Dim3(static_cast<unsigned>(CeilDiv(img.w, cfg.threads)),
                 static_cast<unsigned>(img.h)),
      vgpu::Dim3(static_cast<unsigned>(cfg.threads)), args);
  result.reg_count = mod->GetKernel("rowFilter").stats.reg_count;
  result.out = runner.Download(d_out);

  result.breakdown = runner.TakeBreakdown();
  result.sim_millis = result.breakdown.sim_millis;
  return result;
}

RowFilterResult GpuRowFilter(vcuda::Context& ctx, const Image& img, const FilterSpec& spec,
                             const RowFilterConfig& cfg) {
  launch::StageRunner runner(ctx);
  return GpuRowFilter(runner, img, spec, cfg);
}

}  // namespace kspec::apps::rowfilter
