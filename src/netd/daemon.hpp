// kspecd — the specialization daemon.
//
// One process per machine owns run-time kernel compilation for every client
// process (Section 4.3's hundreds-of-milliseconds cost, paid once fleet-wide
// instead of once per process):
//
//   * requests arrive over the wire protocol (netd/protocol.hpp) as canonical
//     ModuleCacheKeys; responses are .kmod artifacts,
//   * compiled artifacts are published to a shared ArtifactStore that clients
//     also read directly (the fast path needs no RPC at all),
//   * all tenants' compiles of one key coalesce onto a single flight through
//     the daemon's CompileExecutor — cross-process single-flight,
//   * per-tenant admission control (in-flight quotas with a bounded wait) on
//     top of the executor's bounded queue keeps one flooding tenant from
//     starving the rest,
//   * per-key request counts persist across restarts and drive Prewarm of the
//     hottest keys before traffic returns.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "netd/artifact_store.hpp"
#include "netd/protocol.hpp"
#include "serve/compile_executor.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec::netd {

struct DaemonOptions {
  std::string socket_path;
  std::string store_dir;
  // Compile workers and queue bound of the daemon's executor.
  int workers = 4;
  std::size_t max_queue = 256;
  // Admission control: a tenant may have at most this many un-answered
  // compile requests in the daemon at once; beyond it the request parks for
  // up to tenant_wait_cap before being bounced with kThrottled.
  std::size_t tenant_max_inflight = 8;
  std::chrono::milliseconds tenant_wait_cap{5000};
  // Hottest keys prewarmed (and published) at startup from the persisted
  // per-key counts; 0 disables.
  std::size_t prewarm_top_k = 8;
  // Device heap of the daemon's per-device compile contexts. Compilation
  // never allocates device memory, so this stays tiny.
  std::uint64_t heap_bytes = 1ull << 20;
};

struct DaemonStats {
  std::uint64_t requests = 0;       // compile requests received
  std::uint64_t store_hits = 0;     // answered straight from the store
  std::uint64_t compiled = 0;       // artifacts produced by a flight we ran
  std::uint64_t throttled = 0;      // bounced by admission control
  std::uint64_t errors = 0;         // error responses other than throttled
  std::uint64_t prewarm_submitted = 0;  // startup prewarms issued
  std::uint64_t cross_process_coalesced = 0;  // joined a flight another tenant started
};

class SpecDaemon {
 public:
  explicit SpecDaemon(DaemonOptions options);
  ~SpecDaemon();  // Stop()

  SpecDaemon(const SpecDaemon&) = delete;
  SpecDaemon& operator=(const SpecDaemon&) = delete;

  // Binds the socket, loads persisted hot-key counts, kicks off prewarming,
  // and starts accepting connections. Throws kspec::Error if the socket
  // cannot be bound.
  void Start();

  // Blocks until a kShutdownReq arrives or Stop() is called from elsewhere.
  void Wait();

  // Stops accepting, severs open connections, drains the executor, persists
  // hot-key counts, and joins every thread. Idempotent.
  void Stop();

  bool running() const;

  DaemonStats daemon_stats() const;
  StoreStats store_stats() const { return store_.stats(); }
  // Executor counters with the daemon-level fields (throttled,
  // cross_process_coalesced, per-tenant throttles) merged in.
  serve::ServeStats serve_stats() const;
  // {"serve": ..., "store": ..., "daemon": ...} — the kStatsResp body.
  std::string StatsJson() const;

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  struct TenantState {
    std::size_t inflight = 0;
    std::uint64_t throttled = 0;
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  void HandleCompile(int fd, const CompileReq& req);
  bool SendError(int fd, ErrorCode code, const std::string& message);

  // Admission control. AcquireTenant returns false when the quota stayed
  // exhausted for tenant_wait_cap (or the daemon began stopping).
  bool AcquireTenant(const std::string& tenant);
  void ReleaseTenant(const std::string& tenant);

  // The per-device compile context, created on demand. Throws DeviceError for
  // an unknown device name.
  vcuda::Context& ContextFor(const std::string& device_name);

  void LoadHotKeys();
  void SaveHotKeys() const;
  void PrewarmHotKeys(std::vector<std::string> key_texts);

  DaemonOptions options_;
  ArtifactStore store_;
  serve::CompileExecutor executor_;

  mutable std::mutex mu_;
  std::condition_variable stop_cv_;    // Wait() sleeps here
  std::condition_variable tenant_cv_;  // parked over-quota requests
  std::condition_variable conns_cv_;   // Stop() waits for handlers to finish
  bool running_ = false;
  bool stopping_ = false;
  bool shutdown_requested_ = false;  // a kShutdownReq arrived; Wait() returns
  int listen_fd_ = -1;
  DaemonStats stats_;
  std::map<std::string, TenantState> tenants_;
  std::map<std::string, std::unique_ptr<vcuda::Context>> contexts_;
  // key canonical text -> lifetime request count (persisted as hot keys).
  std::unordered_map<std::string, std::uint64_t> key_counts_;
  // key canonical text -> tenant whose request scheduled the current flight.
  std::unordered_map<std::string, std::string> flight_origin_;
  std::vector<int> conn_fds_;     // open connections, severed by Stop()
  std::size_t active_conns_ = 0;  // live handler threads (detached; counted)

  std::thread accept_thread_;
  std::thread prewarm_thread_;
};

}  // namespace kspec::netd
